GO ?= go

.PHONY: all build test test-short race cover bench figures ablations fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/pager/ ./internal/core/

cover:
	$(GO) test -cover ./internal/...

# Figure benchmarks at reduced scale; UCAT_BENCH_SCALE=1.0 for paper scale.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate the paper's figures (full scale, ~5 minutes).
figures:
	$(GO) run ./cmd/ucatbench -scale 1 -queries 20 | tee results_figures.txt

ablations:
	$(GO) run ./cmd/ucatbench -ablations -scale 1 -queries 20 | tee results_ablations.txt

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/uda/
	$(GO) test -fuzz FuzzDecodeBoundary -fuzztime 30s ./internal/pdrtree/

clean:
	$(GO) clean ./...

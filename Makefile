GO ?= go

# Fuzzing time per target; CI's smoke job overrides with FUZZTIME=10s.
FUZZTIME ?= 30s

.PHONY: all build lint lint-full test test-short race race-full cover bench bench-smoke bench-parallel bench-cache bench-cache-smoke bench-pool bench-pool-smoke obs-smoke serve-smoke flight-smoke wire-smoke ingest-smoke bench-serve bench-ingest metrics figures ablations fuzz clean

all: build lint test

build:
	$(GO) build ./...

# Static invariants: go vet plus the project's own analyzer (see DESIGN.md,
# "Static invariants"). ucatlint enforces the probability / I/O-accounting /
# determinism rules every figure depends on; the build fails on violations.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/ucatlint ./...

# Full lint sweep in machine-readable form, filtered through the committed
# baseline: exits non-zero only on *new* error-severity findings, so a new
# check can land before the tree is clean. CI's lint-full job runs this.
lint-full:
	$(GO) run ./cmd/ucatlint -format json -baseline .ucatlint-baseline.json ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

# Unabridged race sweep (no -short): slow; CI runs it nightly.
race-full:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

# Figure benchmarks at reduced scale; UCAT_BENCH_SCALE=1.0 for paper scale,
# UCAT_BENCH_WORKERS=N for the parallel query path.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Tiny-scale single-iteration pass so benchmarks can't rot (used by CI).
# Includes the allocation-regression benchmarks of the decode hot paths
# (uda Decode vs DecodeInto, pdrtree cached vs uncached node load).
bench-smoke:
	UCAT_BENCH_SCALE=0.02 $(GO) test -bench=. -benchtime=1x -short .
	$(GO) test -run - -bench 'BenchmarkDecode' -benchmem -benchtime=1000x ./internal/uda/
	$(GO) test -run - -bench 'BenchmarkReadNode' -benchmem -benchtime=100x ./internal/pdrtree/
	$(GO) test -race -run TestSharedPoolContentionDeterminism -count=1 ./internal/server/

# Sequential vs parallel wall-clock trajectory for full figure regeneration.
bench-parallel:
	$(GO) run ./cmd/ucatbench -scale 1 -queries 20 -workers 0 -benchparallel BENCH_parallel.json

# Decoded-page cache A/B on the fig4 PETQ workload (CRM1, both indexes):
# ns/q, allocs/q, cache hit rate, sequential vs parallel, plus the
# cache-on/off I/O determinism cross-check. Writes BENCH_cache.json.
bench-cache:
	$(GO) run ./cmd/ucatbench -scale 1 -queries 20 -workers 0 -benchcache BENCH_cache.json

# Tiny-scale bench-cache so the harness can't rot (used by CI).
bench-cache-smoke:
	$(GO) run ./cmd/ucatbench -scale 0.02 -queries 4 -workers 2 -benchcache /tmp/bench_cache_smoke.json

# Shared serving-pool sweep: eviction policy (clock/lru/gdsf) x stripes x
# total frames on a zipf-ish PETQ mix, against per-worker private pools at
# equal total memory, with the answers-identical cross-check. Writes
# BENCH_pool.json; on a single-CPU host read the hit rates, not wall-clock.
bench-pool:
	$(GO) run ./cmd/ucatbench -scale 0.5 -queries 16 -workers 4 -benchpool BENCH_pool.json

# Tiny-scale bench-pool so the harness can't rot (used by CI).
bench-pool-smoke:
	$(GO) run ./cmd/ucatbench -scale 0.02 -queries 4 -workers 2 -benchpool /tmp/bench_pool_smoke.json

# Execute the README serving quickstart verbatim: the command block between
# the serve-quickstart markers in README.md is extracted and run
# (ucatgen -save → ucatd → curl → graceful drain), so the documented
# quickstart cannot rot (used by CI).
serve-smoke:
	bash scripts/serve_smoke.sh

# End-to-end smoke of the binary wire protocol: boots ucatd with batching
# on, sweeps every query kind over both protocols asserting identical
# answers and zero protocol errors, checks the per-protocol /metrics
# counters moved, then re-runs the pinned encode-path allocation test
# (used by CI).
wire-smoke:
	bash scripts/wire_smoke.sh
	$(GO) test -run TestWireEncodePathAllocs -count=1 -v ./internal/server/

# End-to-end smoke of the live write path: read-only p99 baseline, then the
# same query sweep against a -wal server with concurrent ingest writers and
# the served-vs-direct determinism check running mid-ingest (bounded p99
# regression), then an acked write, SIGKILL, and recovery of the exact state
# (used by CI; DURABILITY.md is the spec this exercises from the outside).
ingest-smoke:
	bash scripts/ingest_smoke.sh

# Write-path benchmark: sustained durable ingest throughput under concurrent
# query traffic, swept across group-commit windows (one fresh -wal boot
# each), with the mid-ingest determinism check. Writes BENCH_ingest.json;
# tunables: UCAT_INGEST_{N,DUR,WRITERS,BATCH,CLIENTS,WINDOWS,OUT}.
bench-ingest:
	bash scripts/bench_ingest.sh

# Serving-layer benchmark: closed-loop and open-loop sweeps through a live
# ucatd, per protocol (JSON vs binary ucatwire) and per batcher setting
# (mixed petq/topk/window sweeps against batching-on AND batching-off
# servers), plus the three-way direct/JSON/binary determinism check. Writes
# BENCH_serve.json; OPERATIONS.md explains how to read it. Tunables:
# UCAT_SERVE_{N,DUR,CLIENTS,RATES,TAU,HOTSET,OUT}; CI runs a tiny-scale
# variant.
bench-serve:
	bash scripts/bench_serve.sh

# Zero-overhead contract for tracing (DESIGN.md §14): with no recorder
# attached, the full per-query span pattern must allocate nothing, and with
# the flight recorder ON the common (tree-dropped) path must stay within 2
# allocs/request (DESIGN.md §19). The AllocsPerRun tests fail the build on
# any regression; the benchmark runs print allocs/op for the record.
obs-smoke:
	$(GO) test -run TestDisabledPathZeroAllocs -count=1 -v ./internal/obs/
	$(GO) test -run TestFlightCommonPathAllocs -count=1 -v ./internal/obs/
	$(GO) test -run - -bench 'BenchmarkDisabled|BenchmarkFlight' -benchmem -benchtime=100000x ./internal/obs/

# End-to-end smoke of the request flight recorder: boots ucatd with
# -slowms 0 and a JSON request log, fires every query kind, and asserts the
# /debug/requests + /v1/version + ucattop -check contract from the outside
# (used by CI).
flight-smoke:
	bash scripts/flight_smoke.sh

# Dump the metrics registry from a tiny benchmark run. ucatbench re-parses
# the file with obs.ParseText before exiting, so a non-zero exit means the
# Prometheus text exposition rotted (used by CI).
metrics:
	$(GO) run ./cmd/ucatbench -fig fig4 -scale 0.02 -queries 4 -metricsout metrics.prom
	@echo "wrote metrics.prom"

# Regenerate the paper's figures (full scale, ~5 minutes).
figures:
	$(GO) run ./cmd/ucatbench -scale 1 -queries 20 | tee results_figures.txt

ablations:
	$(GO) run ./cmd/ucatbench -ablations -scale 1 -queries 20 | tee results_ablations.txt

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/uda/
	$(GO) test -fuzz FuzzDecodeBoundary -fuzztime $(FUZZTIME) ./internal/pdrtree/
	$(GO) test -fuzz FuzzDecodeFrame -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz FuzzReplayWAL -fuzztime $(FUZZTIME) ./internal/wal/

clean:
	$(GO) clean ./...

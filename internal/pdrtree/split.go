package pdrtree

import (
	"ucat/internal/uda"
)

// balanceCap returns the maximum elements either side of a split may hold:
// "No cluster is allowed to contain more than 3/4 of the total elements."
func balanceCap(n int) int {
	c := (3 * n) / 4
	if c < 1 {
		c = 1
	}
	return c
}

// splitIndices partitions the entries (represented by their vectors) into
// two non-empty groups according to the configured split policy. len(vs)
// must be at least 2.
func splitIndices(vs []uda.Vector, policy SplitPolicy, div uda.Divergence) (ga, gb []int) {
	switch policy {
	case TopDown:
		return splitTopDown(vs, div)
	case BottomUp:
		return splitBottomUp(vs, div)
	default:
		panic("pdrtree: unknown split policy " + policy.String())
	}
}

// splitTopDown picks the two entries farthest apart under the divergence as
// cluster seeds and assigns every other entry to the closer seed, honouring
// the 3/4 balance cap. This is the paper's top-down algorithm as described:
// because the farthest pair tends to be outliers, the seeds can be poor and
// the resulting clusters loose — the effect Figure 10 measures.
func splitTopDown(vs []uda.Vector, div uda.Divergence) (ga, gb []int) {
	n := len(vs)
	// Farthest pair by brute force; splits are rare and n is a page's worth.
	si, sj := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := div.VecDistance(vs[i], vs[j]); d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	ga = []int{si}
	gb = []int{sj}

	cap := balanceCap(n)
	for i := 0; i < n; i++ {
		if i == si || i == sj {
			continue
		}
		preferA := div.VecDistance(vs[i], vs[si]) <= div.VecDistance(vs[i], vs[sj])
		switch {
		case preferA && len(ga) < cap, !preferA && len(gb) >= cap:
			ga = append(ga, i)
		default:
			gb = append(gb, i)
		}
	}
	return ga, gb
}

// splitBottomUp starts with singleton clusters and repeatedly merges the
// closest pair (by divergence between cluster boundary vectors) until two
// clusters remain, skipping merges that would exceed the 3/4 cap.
func splitBottomUp(vs []uda.Vector, div uda.Divergence) (ga, gb []int) {
	n := len(vs)
	type cluster struct {
		members []int
		bound   uda.Vector
		alive   bool
	}
	cs := make([]cluster, n)
	for i := range cs {
		cs[i] = cluster{members: []int{i}, bound: vs[i], alive: true}
	}
	// Distance matrix between live clusters.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := 0; j < i; j++ {
			d := div.VecDistance(cs[i].bound, cs[j].bound)
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	cap := balanceCap(n)
	alive := n
	for alive > 2 {
		bi, bj := -1, -1
		best := 0.0
		for i := 0; i < n; i++ {
			if !cs[i].alive {
				continue
			}
			for j := 0; j < i; j++ {
				if !cs[j].alive || len(cs[i].members)+len(cs[j].members) > cap {
					continue
				}
				if bi == -1 || dist[i][j] < best {
					best, bi, bj = dist[i][j], i, j
				}
			}
		}
		if bi == -1 {
			// With ≥3 clusters each ≤ cap and cap = 3n/4, some pair always
			// fits, so this is unreachable; guard anyway.
			break
		}
		// Merge bj into bi.
		cs[bi].members = append(cs[bi].members, cs[bj].members...)
		cs[bi].bound = uda.MaxVec(cs[bi].bound, cs[bj].bound)
		cs[bj].alive = false
		alive--
		for k := 0; k < n; k++ {
			if k == bi || !cs[k].alive {
				continue
			}
			d := div.VecDistance(cs[bi].bound, cs[k].bound)
			dist[bi][k] = d
			dist[k][bi] = d
		}
	}

	var groups [][]int
	for i := range cs {
		if cs[i].alive {
			groups = append(groups, cs[i].members)
		}
	}
	// alive == 2 in all reachable states; the guard above could leave more,
	// in which case fold extras into the smaller of the first two.
	ga, gb = groups[0], groups[1]
	for _, g := range groups[2:] {
		if len(ga) <= len(gb) {
			ga = append(ga, g...)
		} else {
			gb = append(gb, g...)
		}
	}
	return ga, gb
}

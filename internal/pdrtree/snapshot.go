package pdrtree

import "ucat/internal/pager"

// Snapshot is the tree's persistent metadata; the node pages live in the
// pager.Store. The configuration is part of the snapshot because boundary
// encodings (compression mode, bucket count, bit width) must match between
// writer and reader.
type Snapshot struct {
	Root   uint32
	Size   int
	Config Config
}

// Snapshot captures the tree's metadata for persistence.
func (t *Tree) Snapshot() Snapshot {
	return Snapshot{Root: uint32(t.root), Size: t.size, Config: t.cfg}
}

// Restore rebuilds a tree over the given pool from a snapshot.
func Restore(pool *pager.Pool, snap Snapshot) (*Tree, error) {
	cfg, err := snap.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tree{
		pool: pool,
		cfg:  cfg,
		root: pager.PageID(snap.Root),
		size: snap.Size,
	}, nil
}

package pdrtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

// Page layout:
//
//	offset 0: kind  byte (leafKind or innerKind)
//	offset 1: pad
//	offset 2: count uint16
//	offset 4: pad (4 bytes, reserved)
//	offset 8: payload
//
// Leaf payload: count × { tid uint32, uda encoding }. The full UDA is stored
// exactly — the leaf is the authoritative copy used to compute exact
// equality probabilities.
//
// Inner payload: count × { child uint32, blen uint16, boundary bytes }.
// Boundary bytes are the configured (possibly lossy, always over-estimating)
// encoding of the child's MBR boundary vector.
const (
	leafKind   = 1
	innerKind  = 2
	headerSize = 8
	payload    = pager.PageSize - headerSize
)

// errNodeTooBig reports that an encoded node exceeds the page payload; the
// caller must split.
var errNodeTooBig = errors.New("pdrtree: node exceeds page capacity")

// node is the in-memory image of one tree page.
type node struct {
	leaf bool
	// Leaf fields.
	tids []uint32
	udas []uda.UDA
	// Inner fields, parallel slices.
	children []pager.PageID
	bounds   []uda.Vector
}

func (n *node) count() int {
	if n.leaf {
		return len(n.tids)
	}
	return len(n.children)
}

// leafRecordSize returns the on-page size of one leaf record.
func leafRecordSize(u uda.UDA) int { return 4 + uda.EncodedSize(u) }

// encodedSize returns the payload bytes the node needs under cfg.
func (n *node) encodedSize(cfg Config) int {
	s := 0
	if n.leaf {
		for _, u := range n.udas {
			s += leafRecordSize(u)
		}
		return s
	}
	for _, b := range n.bounds {
		s += 4 + 2 + boundaryEncodedSize(b, cfg)
	}
	return s
}

// readNode fetches and decodes the page through the tree's own pool. This is
// the WRITE-SIDE read path: it always returns a freshly decoded node the
// caller may mutate in place (Insert/Delete/split do exactly that), so it
// must never serve from the decode cache, whose nodes are shared and
// immutable.
func (t *Tree) readNode(pid pager.PageID) (*node, error) {
	return t.readNodeVia(t.pool, pid)
}

// readNodeVia fetches and decodes the page through the given pool view. The
// returned node is freshly allocated and owned by the caller.
func (t *Tree) readNodeVia(v pager.View, pid pager.PageID) (*node, error) {
	pg, err := v.Fetch(pid)
	if err != nil {
		return nil, err
	}
	n := &node{}
	_, err = t.decodeNode(pid, pg.Data, n, nil)
	pg.Unpin(false)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// decodeNode decodes a page image into n, reusing n's slice capacity (the
// reader's leaf scratch path) and appending leaf pair data to arena
// (uda.DecodeInto); the possibly grown arena is returned. A nil arena simply
// grows from empty, giving a caller-owned node whose UDAs share one backing
// array instead of one allocation per tuple.
func (t *Tree) decodeNode(pid pager.PageID, data []byte, n *node, arena []uda.Pair) ([]uda.Pair, error) {
	count := int(binary.LittleEndian.Uint16(data[2:]))
	n.leaf = false
	n.tids = n.tids[:0]
	n.udas = n.udas[:0]
	n.children = n.children[:0]
	n.bounds = n.bounds[:0]
	off := headerSize
	switch data[0] {
	case leafKind:
		n.leaf = true
		for i := 0; i < count; i++ {
			tid := binary.LittleEndian.Uint32(data[off:])
			var u uda.UDA
			var sz int
			var err error
			u, arena, sz, err = uda.DecodeInto(data[off+4:], arena)
			if err != nil {
				return arena, fmt.Errorf("pdrtree: leaf %d record %d: %w", pid, i, err)
			}
			n.tids = append(n.tids, tid)
			n.udas = append(n.udas, u)
			off += 4 + sz
		}
	case innerKind:
		for i := 0; i < count; i++ {
			child := pager.PageID(binary.LittleEndian.Uint32(data[off:]))
			blen := int(binary.LittleEndian.Uint16(data[off+4:]))
			b, err := decodeBoundary(data[off+6:off+6+blen], t.cfg)
			if err != nil {
				return arena, fmt.Errorf("pdrtree: inner %d entry %d: %w", pid, i, err)
			}
			n.children = append(n.children, child)
			n.bounds = append(n.bounds, b)
			off += 6 + blen
		}
	default:
		return arena, fmt.Errorf("pdrtree: page %d has unknown kind %d", pid, data[0])
	}
	return arena, nil
}

// memSize estimates the node's in-memory footprint for the decode cache's
// byte budget: slice headers plus element payloads (uda.Pair is 16 bytes).
func (n *node) memSize() int64 {
	const base = 96 // node struct + slice headers, roughly
	s := int64(base)
	if n.leaf {
		s += int64(len(n.tids)) * 4
		for _, u := range n.udas {
			s += 24 + int64(u.Len())*16
		}
		return s
	}
	for _, b := range n.bounds {
		s += 4 + 24 + int64(len(b))*16
	}
	return s
}

// writeNode encodes the node onto its page. It returns errNodeTooBig without
// touching the page when the encoding does not fit.
func (t *Tree) writeNode(pid pager.PageID, n *node) error {
	if n.encodedSize(t.cfg) > payload {
		return errNodeTooBig
	}
	pg, err := t.pool.Fetch(pid)
	if err != nil {
		return err
	}
	data := pg.Data
	clear(data[:headerSize])
	kind := byte(innerKind)
	if n.leaf {
		kind = leafKind
	}
	data[0] = kind
	binary.LittleEndian.PutUint16(data[2:], uint16(n.count()))
	buf := data[headerSize:headerSize]
	if n.leaf {
		for i, u := range n.udas {
			buf = binary.LittleEndian.AppendUint32(buf, n.tids[i])
			buf, err = uda.AppendEncode(buf, u)
			if err != nil {
				pg.Unpin(false)
				return err
			}
		}
	} else {
		for i, b := range n.bounds {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(n.children[i]))
			enc := encodeBoundary(b, t.cfg)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(enc)))
			buf = append(buf, enc...)
		}
	}
	pg.Unpin(true)
	return nil
}

// boundaryEncodedSize returns the encoded size of a boundary under cfg.
func boundaryEncodedSize(b uda.Vector, cfg Config) int {
	if cfg.Compression == DiscretizedCompression {
		return 2 + 4*len(b) + (len(b)*int(cfg.Bits)+7)/8
	}
	return 2 + 8*len(b)
}

// roundUp32 converts p to the smallest float32 not below it. Boundary values
// are over-estimates by construction, so rounding up costs nothing but keeps
// the paper's 4-bytes-per-value accounting ("an MBR boundary may be
// described in terms of D floating-point values").
func roundUp32(p float64) float32 {
	f := float32(p)
	if float64(f) < p {
		f = math.Float32frombits(math.Float32bits(f) + 1)
	}
	return f
}

// encodeBoundary serializes a boundary vector. Values are stored as float32
// rounded up (or quantized up under discretized compression) so the stored
// boundary still dominates everything beneath it.
func encodeBoundary(b uda.Vector, cfg Config) []byte {
	out := make([]byte, 0, boundaryEncodedSize(b, cfg))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(b)))
	if cfg.Compression == DiscretizedCompression {
		for _, p := range b {
			out = binary.LittleEndian.AppendUint32(out, p.Item)
		}
		out = appendPackedLevels(out, b, cfg.Bits)
		return out
	}
	for _, p := range b {
		out = binary.LittleEndian.AppendUint32(out, p.Item)
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(roundUp32(p.Prob)))
	}
	return out
}

// decodeBoundary reverses encodeBoundary.
func decodeBoundary(buf []byte, cfg Config) (uda.Vector, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("pdrtree: short boundary encoding")
	}
	count := int(binary.LittleEndian.Uint16(buf))
	if cfg.Compression == DiscretizedCompression {
		need := 2 + 4*count + (count*int(cfg.Bits)+7)/8
		if len(buf) < need {
			return nil, fmt.Errorf("pdrtree: short discretized boundary (%d < %d)", len(buf), need)
		}
		v := make(uda.Vector, count)
		for i := 0; i < count; i++ {
			v[i].Item = binary.LittleEndian.Uint32(buf[2+4*i:])
		}
		readPackedLevels(buf[2+4*count:], v, cfg.Bits)
		if err := v.Validate(); err != nil {
			return nil, err
		}
		return v, nil
	}
	need := 2 + 8*count
	if len(buf) < need {
		return nil, fmt.Errorf("pdrtree: short boundary (%d < %d)", len(buf), need)
	}
	v := make(uda.Vector, count)
	for i := 0; i < count; i++ {
		off := 2 + 8*i
		v[i].Item = binary.LittleEndian.Uint32(buf[off:])
		v[i].Prob = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4:])))
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// appendPackedLevels quantizes each value up to level/2^bits and bit-packs
// the levels. A value p maps to level ceil(p·2^bits) ∈ [1, 2^bits], stored
// as level−1 in exactly `bits` bits.
func appendPackedLevels(dst []byte, b uda.Vector, bits uint) []byte {
	slabs := uint64(1) << bits
	var acc uint64
	var nbits uint
	for _, p := range b {
		level := uint64(math.Ceil(p.Prob * float64(slabs)))
		if level < 1 {
			level = 1
		}
		if level > slabs {
			level = slabs
		}
		acc |= (level - 1) << nbits
		nbits += bits
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// readPackedLevels fills v's probabilities from the bit-packed levels.
func readPackedLevels(buf []byte, v uda.Vector, bits uint) {
	slabs := uint64(1) << bits
	var acc uint64
	var nbits uint
	pos := 0
	mask := slabs - 1
	for i := range v {
		for nbits < bits {
			acc |= uint64(buf[pos]) << nbits
			pos++
			nbits += 8
		}
		level := (acc & mask) + 1
		acc >>= bits
		nbits -= bits
		v[i].Prob = float64(level) / float64(slabs)
	}
}

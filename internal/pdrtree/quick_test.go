package pdrtree

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

// TestQuickPETQAgainstNaive fuzzes random configurations, datasets, queries
// and thresholds: PETQ must always equal the naive answer exactly.
func TestQuickPETQAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		cfg := Config{
			Divergence: uda.Divergence(r.Intn(3)),
			Insert:     InsertPolicy(r.Intn(3)),
			Split:      SplitPolicy(r.Intn(2)),
		}
		switch r.Intn(3) {
		case 1:
			cfg.Compression = SignatureCompression
			cfg.Buckets = 2 + r.Intn(30)
		case 2:
			cfg.Compression = DiscretizedCompression
			cfg.Bits = uint(1 + r.Intn(12))
		}
		tr, err := New(pager.NewPool(pager.NewStore(), 200), cfg)
		if err != nil {
			t.Fatalf("trial %d New: %v", trial, err)
		}
		domain := 2 + r.Intn(60)
		maxPairs := 1 + r.Intn(8)
		n := 100 + r.Intn(800)
		data := make(map[uint32]uda.UDA, n)
		for i := 0; i < n; i++ {
			u := uda.Random(r, domain, maxPairs)
			data[uint32(i)] = u
			if err := tr.Insert(uint32(i), u); err != nil {
				t.Fatalf("trial %d Insert: %v", trial, err)
			}
		}
		// Random deletions.
		for i := 0; i < n/10; i++ {
			tid := uint32(r.Intn(n))
			u, ok := data[tid]
			if !ok {
				continue
			}
			if err := tr.Delete(tid, u); err != nil {
				t.Fatalf("trial %d Delete: %v", trial, err)
			}
			delete(data, tid)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("trial %d (cfg %+v): %v", trial, cfg, err)
		}

		for qi := 0; qi < 3; qi++ {
			q := uda.Random(r, domain, maxPairs)
			tau := r.Float64() * 0.3
			want := naivePETQ(data, q, tau)
			got, err := tr.PETQ(q, tau)
			if err != nil {
				t.Fatalf("trial %d PETQ: %v", trial, err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d cfg %+v tau=%g: %d matches, want %d",
					trial, cfg, tau, len(got), len(want))
			}
			for i := range want {
				if got[i].TID != want[i].TID || math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
					t.Fatalf("trial %d: match %d = %v, want %v", trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestQuickDSTQAgainstNaive fuzzes similarity queries: pruning with the
// distance lower bound must never drop answers, for all three divergences.
func TestQuickDSTQAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for _, cfg := range []Config{
		{},
		{Compression: SignatureCompression, Buckets: 8},
		{Compression: DiscretizedCompression, Bits: 4},
	} {
		tr, err := New(pager.NewPool(pager.NewStore(), 200), cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		data := make(map[uint32]uda.UDA)
		for i := 0; i < 600; i++ {
			u := uda.Random(r, 25, 5)
			data[uint32(i)] = u
			if err := tr.Insert(uint32(i), u); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		for trial := 0; trial < 5; trial++ {
			q := uda.Random(r, 25, 4)
			for _, div := range []uda.Divergence{uda.L1, uda.L2, uda.KL} {
				td := r.Float64() * 1.2
				wantCount := 0
				for _, u := range data {
					if div.Distance(q, u) <= td {
						wantCount++
					}
				}
				got, err := tr.DSTQ(q, td, div)
				if err != nil {
					t.Fatalf("DSTQ(%v): %v", div, err)
				}
				if len(got) != wantCount {
					t.Fatalf("cfg %+v DSTQ(%v, %g): %d answers, want %d",
						cfg, div, td, len(got), wantCount)
				}
				for _, nb := range got {
					if math.Abs(div.Distance(q, data[nb.TID])-nb.Dist) > 1e-9 {
						t.Fatalf("DSTQ(%v) misreports distance for %d", div, nb.TID)
					}
				}

				// DSTopK agrees with a naive nearest-k on distances.
				k := 1 + r.Intn(10)
				nk, err := tr.DSTopK(q, k, div)
				if err != nil {
					t.Fatalf("DSTopK(%v): %v", div, err)
				}
				dists := make([]float64, 0, len(data))
				for _, u := range data {
					dists = append(dists, div.Distance(q, u))
				}
				for i := 0; i < len(dists); i++ {
					for j := i + 1; j < len(dists); j++ {
						if dists[j] < dists[i] {
							dists[i], dists[j] = dists[j], dists[i]
						}
					}
					if i >= k {
						break
					}
				}
				if len(nk) != k {
					t.Fatalf("DSTopK(%v, %d) returned %d", div, k, len(nk))
				}
				for i := 0; i < k; i++ {
					if math.Abs(nk[i].Dist-dists[i]) > 1e-9 {
						t.Fatalf("DSTopK(%v) result %d dist %g, want %g", div, i, nk[i].Dist, dists[i])
					}
				}
			}
		}
	}
}

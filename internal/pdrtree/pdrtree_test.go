package pdrtree

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ucat/internal/pager"
	"ucat/internal/query"
	"ucat/internal/uda"
)

func newTestTree(t *testing.T, cfg Config, frames int) *Tree {
	t.Helper()
	tr, err := New(pager.NewPool(pager.NewStore(), frames), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func buildRandom(t *testing.T, tr *Tree, n, domain, maxPairs int, seed int64) map[uint32]uda.UDA {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	data := make(map[uint32]uda.UDA, n)
	for i := 0; i < n; i++ {
		u := uda.Random(r, domain, maxPairs)
		data[uint32(i)] = u
		if err := tr.Insert(uint32(i), u); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	return data
}

func naivePETQ(data map[uint32]uda.UDA, q uda.UDA, tau float64) []query.Match {
	var res []query.Match
	for tid, u := range data {
		if p := uda.EqualityProb(q, u); p > tau {
			res = append(res, query.Match{TID: tid, Prob: p})
		}
	}
	query.SortMatches(res)
	return res
}

// allConfigs enumerates the paper's design space for equivalence testing.
func allConfigs() []Config {
	var cfgs []Config
	for _, div := range []uda.Divergence{uda.L1, uda.L2, uda.KL} {
		for _, ins := range []InsertPolicy{CombinedPolicy, MinAreaIncrease, MostSimilar} {
			for _, sp := range []SplitPolicy{BottomUp, TopDown} {
				for _, cm := range []CompressionMode{NoCompression, SignatureCompression, DiscretizedCompression} {
					cfgs = append(cfgs, Config{
						Divergence: div, Insert: ins, Split: sp,
						Compression: cm, Buckets: 8, Bits: 6,
					})
				}
			}
		}
	}
	return cfgs
}

func TestPETQMatchesNaiveAcrossConfigs(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, cfg := range allConfigs() {
		tr := newTestTree(t, cfg, 300)
		data := buildRandom(t, tr, 800, 20, 5, 77)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("cfg %+v invariants: %v", cfg, err)
		}
		q := uda.Random(r, 20, 4)
		for _, tau := range []float64{0, 0.05, 0.2, 0.6} {
			want := naivePETQ(data, q, tau)
			got, err := tr.PETQ(q, tau)
			if err != nil {
				t.Fatalf("cfg %+v PETQ: %v", cfg, err)
			}
			if len(got) != len(want) {
				t.Fatalf("cfg div=%v ins=%v split=%v comp=%v tau=%g: %d matches, want %d",
					cfg.Divergence, cfg.Insert, cfg.Split, cfg.Compression, tau, len(got), len(want))
			}
			for i := range want {
				if got[i].TID != want[i].TID || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
					t.Fatalf("cfg %+v tau=%g: match %d = %v, want %v", cfg, tau, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTopKMatchesNaive(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Divergence: uda.L1, Split: TopDown},
		{Compression: SignatureCompression, Buckets: 8},
		{Compression: DiscretizedCompression, Bits: 4},
	} {
		tr := newTestTree(t, cfg, 300)
		data := buildRandom(t, tr, 1000, 15, 4, 13)
		r := rand.New(rand.NewSource(8))
		for trial := 0; trial < 5; trial++ {
			q := uda.Random(r, 15, 3)
			for _, k := range []int{1, 7, 50} {
				want := naivePETQ(data, q, 0)
				if len(want) > k {
					want = want[:k]
				}
				got, err := tr.TopK(q, k)
				if err != nil {
					t.Fatalf("TopK: %v", err)
				}
				if len(got) != len(want) {
					t.Fatalf("cfg %+v TopK(%d): %d results, want %d", cfg, k, len(got), len(want))
				}
				for i := range want {
					if math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
						t.Fatalf("cfg %+v TopK(%d) result %d prob %g, want %g",
							cfg, k, i, got[i].Prob, want[i].Prob)
					}
					if math.Abs(uda.EqualityProb(q, data[got[i].TID])-got[i].Prob) > 1e-12 {
						t.Fatalf("cfg %+v TopK(%d) result %d misreports probability", cfg, k, i)
					}
				}
			}
		}
	}
}

func TestTreeGrowsAndStaysSound(t *testing.T) {
	tr := newTestTree(t, Config{}, 500)
	buildRandom(t, tr, 5000, 10, 5, 3)
	d, err := tr.Depth()
	if err != nil {
		t.Fatalf("Depth: %v", err)
	}
	if d < 2 {
		t.Errorf("tree of 5000 tuples has depth %d, expected splits to occur", d)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if tr.Len() != 5000 {
		t.Errorf("Len = %d, want 5000", tr.Len())
	}
	n := 0
	if err := tr.Scan(func(uint32, uda.UDA) bool { n++; return true }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 5000 {
		t.Errorf("Scan visited %d tuples, want 5000", n)
	}
}

func TestStrictThresholdBoundary(t *testing.T) {
	tr := newTestTree(t, Config{}, 100)
	u := uda.MustNew(uda.Pair{Item: 1, Prob: 0.5}, uda.Pair{Item: 2, Prob: 0.5})
	if err := tr.Insert(0, u); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	q := uda.Certain(1)
	got, err := tr.PETQ(q, 0.5)
	if err != nil {
		t.Fatalf("PETQ: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("PETQ at exact boundary returned %v, want empty (strict >)", got)
	}
	got, err = tr.PETQ(q, 0.499)
	if err != nil {
		t.Fatalf("PETQ: %v", err)
	}
	if len(got) != 1 || got[0].Prob != 0.5 {
		t.Errorf("PETQ below boundary = %v, want one match at 0.5", got)
	}
}

func TestDelete(t *testing.T) {
	for _, cfg := range []Config{{}, {Compression: SignatureCompression, Buckets: 8}} {
		tr := newTestTree(t, cfg, 300)
		data := buildRandom(t, tr, 1500, 12, 4, 55)
		r := rand.New(rand.NewSource(2))
		// Delete a third of the tuples.
		for tid := uint32(0); tid < 1500; tid += 3 {
			if err := tr.Delete(tid, data[tid]); err != nil {
				t.Fatalf("Delete(%d): %v", tid, err)
			}
			delete(data, tid)
		}
		if tr.Len() != len(data) {
			t.Errorf("Len = %d, want %d", tr.Len(), len(data))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("invariants after deletes: %v", err)
		}
		q := uda.Random(r, 12, 3)
		want := naivePETQ(data, q, 0.05)
		got, err := tr.PETQ(q, 0.05)
		if err != nil {
			t.Fatalf("PETQ: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("after deletes: %d matches, want %d", len(got), len(want))
		}
		// Deleting a missing tuple fails cleanly.
		if err := tr.Delete(0, uda.Certain(1)); !errors.Is(err, ErrNotFound) {
			t.Errorf("Delete of absent tuple err = %v, want ErrNotFound", err)
		}
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := newTestTree(t, Config{}, 200)
	data := buildRandom(t, tr, 600, 8, 4, 9)
	for tid, u := range data {
		if err := tr.Delete(tid, u); err != nil {
			t.Fatalf("Delete(%d): %v", tid, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Tree remains usable.
	if err := tr.Insert(9999, uda.Certain(3)); err != nil {
		t.Fatalf("Insert after drain: %v", err)
	}
	got, err := tr.PETQ(uda.Certain(3), 0.5)
	if err != nil || len(got) != 1 || got[0].TID != 9999 {
		t.Errorf("PETQ after drain = (%v, %v)", got, err)
	}
}

func TestInsertValidation(t *testing.T) {
	tr := newTestTree(t, Config{}, 100)
	// Oversize record: > half a page of pairs.
	pairs := make([]uda.Pair, 400)
	for i := range pairs {
		pairs[i] = uda.Pair{Item: uint32(i), Prob: 1.0 / 500}
	}
	big := uda.MustNew(pairs...)
	if err := tr.Insert(1, big); err == nil {
		t.Errorf("oversize record accepted")
	}
	if _, err := tr.PETQ(uda.Certain(1), -1); err == nil {
		t.Errorf("negative tau accepted")
	}
	if _, err := tr.TopK(uda.Certain(1), 0); err == nil {
		t.Errorf("k=0 accepted")
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatalf("withDefaults: %v", err)
	}
	if cfg.Buckets != 64 || cfg.Bits != 8 {
		t.Errorf("defaults = %+v", cfg)
	}
	if _, err := (Config{Bits: 20}).withDefaults(); err == nil {
		t.Errorf("Bits=20 accepted")
	}
	if _, err := New(pager.NewPool(pager.NewStore(), 10), Config{Bits: 20}); err == nil {
		t.Errorf("New with bad config succeeded")
	}
}

func TestEmptyUDATuples(t *testing.T) {
	// Tuples with no mass (all values missing) are legal; they can never be
	// surfaced by equality queries but must round-trip through insert,
	// scan and delete.
	tr := newTestTree(t, Config{}, 100)
	if err := tr.Insert(1, uda.UDA{}); err != nil {
		t.Fatalf("Insert empty: %v", err)
	}
	if err := tr.Insert(2, uda.Certain(5)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err := tr.PETQ(uda.Certain(5), 0)
	if err != nil || len(got) != 1 || got[0].TID != 2 {
		t.Errorf("PETQ = (%v, %v), want only tuple 2", got, err)
	}
	n := 0
	if err := tr.Scan(func(uint32, uda.UDA) bool { n++; return true }); err != nil || n != 2 {
		t.Errorf("Scan saw %d tuples (%v), want 2", n, err)
	}
	if err := tr.Delete(1, uda.UDA{}); err != nil {
		t.Fatalf("Delete empty: %v", err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr := newTestTree(t, Config{}, 50)
	got, err := tr.PETQ(uda.Certain(1), 0)
	if err != nil || len(got) != 0 {
		t.Errorf("PETQ on empty = (%v, %v)", got, err)
	}
	top, err := tr.TopK(uda.Certain(1), 3)
	if err != nil || len(top) != 0 {
		t.Errorf("TopK on empty = (%v, %v)", top, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestCompressionShrinksBoundaries(t *testing.T) {
	// Large domain: uncompressed boundaries are wide, compression must cut
	// the stored index size (the paper's |D| = 1000 motivation).
	build := func(cfg Config) int64 {
		pool := pager.NewPool(pager.NewStore(), 500)
		tr, err := New(pool, cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		r := rand.New(rand.NewSource(12))
		for i := 0; i < 3000; i++ {
			if err := tr.Insert(uint32(i), uda.Random(r, 500, 10)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		return pool.Store().Bytes()
	}
	plain := build(Config{})
	sig := build(Config{Compression: SignatureCompression, Buckets: 32})
	disc := build(Config{Compression: DiscretizedCompression, Bits: 4})
	if sig >= plain {
		t.Errorf("signature compression grew the index: %d vs %d bytes", sig, plain)
	}
	if disc >= plain {
		t.Errorf("discretized compression grew the index: %d vs %d bytes", disc, plain)
	}
}

func TestCompressedTreeStillExact(t *testing.T) {
	// Lossy boundaries must never lose answers (over-estimation soundness).
	r := rand.New(rand.NewSource(77))
	for _, cfg := range []Config{
		{Compression: SignatureCompression, Buckets: 16},
		{Compression: DiscretizedCompression, Bits: 3},
	} {
		tr := newTestTree(t, cfg, 500)
		data := make(map[uint32]uda.UDA)
		for i := 0; i < 2000; i++ {
			u := uda.Random(r, 300, 8)
			data[uint32(i)] = u
			if err := tr.Insert(uint32(i), u); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		q := uda.Random(r, 300, 6)
		for _, tau := range []float64{0, 0.02, 0.1} {
			want := naivePETQ(data, q, tau)
			got, err := tr.PETQ(q, tau)
			if err != nil {
				t.Fatalf("PETQ: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("cfg %+v tau=%g: %d matches, want %d", cfg, tau, len(got), len(want))
			}
		}
	}
}

func TestBoundaryCodecRoundTrip(t *testing.T) {
	v := uda.Vector{{Item: 1, Prob: 0.125}, {Item: 100, Prob: 1}, {Item: 4e6, Prob: 0.33}}
	for _, cfg := range []Config{
		{Compression: NoCompression},
		{Compression: DiscretizedCompression, Bits: 8},
		{Compression: DiscretizedCompression, Bits: 3},
		{Compression: DiscretizedCompression, Bits: 16},
	} {
		cfg, err := cfg.withDefaults()
		if err != nil {
			t.Fatalf("withDefaults: %v", err)
		}
		enc := encodeBoundary(v, cfg)
		if len(enc) != boundaryEncodedSize(v, cfg) {
			t.Errorf("cfg %+v: encoded %d bytes, size says %d", cfg, len(enc), boundaryEncodedSize(v, cfg))
		}
		got, err := decodeBoundary(enc, cfg)
		if err != nil {
			t.Fatalf("decodeBoundary: %v", err)
		}
		if len(got) != len(v) {
			t.Fatalf("cfg %+v: decoded %d entries, want %d", cfg, len(got), len(v))
		}
		for i := range v {
			if got[i].Item != v[i].Item {
				t.Errorf("item %d mismatch", i)
			}
			if got[i].Prob < v[i].Prob {
				t.Errorf("cfg %+v entry %d: decoded %g underestimates %g", cfg, i, got[i].Prob, v[i].Prob)
			}
			if cfg.Compression == NoCompression && got[i].Prob-v[i].Prob > 1e-7 {
				t.Errorf("uncompressed entry %d looser than float32 round-up: %g vs %g",
					i, got[i].Prob, v[i].Prob)
			}
			slack := 1.0 / float64(uint64(1)<<cfg.Bits)
			if cfg.Compression == DiscretizedCompression && got[i].Prob-v[i].Prob > slack {
				t.Errorf("cfg %+v entry %d: over-estimate %g too loose for %g", cfg, i, got[i].Prob, v[i].Prob)
			}
		}
	}
}

func TestSignatureProjection(t *testing.T) {
	cfg, _ := Config{Compression: SignatureCompression, Buckets: 4}.withDefaults()
	v := uda.Vector{{Item: 1, Prob: 0.3}, {Item: 5, Prob: 0.7}, {Item: 9, Prob: 0.5}}
	// Items 1, 5, 9 all map to bucket 1 mod 4.
	p := cfg.project(v)
	if len(p) != 1 || p[0].Item != 1 || p[0].Prob != 0.7 {
		t.Errorf("project = %v, want [{1 0.7}]", p)
	}
	q := uda.MustNew(uda.Pair{Item: 5, Prob: 1})
	if got := cfg.queryDot(q, p); got != 0.7 {
		t.Errorf("queryDot = %g, want 0.7", got)
	}
	// The projected dot must dominate the true dot for every member.
	if got := cfg.queryDot(q, p); got < v.DotUDA(q) {
		t.Errorf("projection underestimates: %g < %g", got, v.DotUDA(q))
	}
}

func TestSplitPoliciesProduceBalancedGroups(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, pol := range []SplitPolicy{TopDown, BottomUp} {
		for trial := 0; trial < 20; trial++ {
			n := 2 + r.Intn(60)
			vs := make([]uda.Vector, n)
			for i := range vs {
				vs[i] = uda.Vec(uda.Random(r, 10, 4))
			}
			ga, gb := splitIndices(vs, pol, uda.KL)
			if len(ga) == 0 || len(gb) == 0 {
				t.Fatalf("%v: empty group (n=%d)", pol, n)
			}
			if len(ga)+len(gb) != n {
				t.Fatalf("%v: groups cover %d of %d", pol, len(ga)+len(gb), n)
			}
			cap := balanceCap(n)
			if len(ga) > cap || len(gb) > cap {
				t.Errorf("%v: group sizes %d/%d exceed 3/4 cap %d (n=%d)", pol, len(ga), len(gb), cap, n)
			}
			seen := map[int]bool{}
			for _, i := range append(append([]int{}, ga...), gb...) {
				if seen[i] {
					t.Fatalf("%v: index %d assigned twice", pol, i)
				}
				seen[i] = true
			}
		}
	}
}

func TestPDRPruningSavesIO(t *testing.T) {
	// A selective query must touch far fewer pages than the whole tree.
	tr := newTestTree(t, Config{}, 0)
	buildRandom(t, tr, 20000, 50, 5, 19)
	pool := tr.Pool()
	totalPages := pool.Store().NumPages()

	q := uda.Certain(7)
	if err := pool.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	pool.ResetStats()
	if _, err := tr.PETQ(q, 0.6); err != nil {
		t.Fatalf("PETQ: %v", err)
	}
	ios := pool.Stats().IOs()
	if ios >= uint64(totalPages)/2 {
		t.Errorf("selective PETQ read %d of %d pages; pruning ineffective", ios, totalPages)
	}
}

package pdrtree

import (
	"errors"
	"fmt"
	"sort"

	"ucat/internal/dcache"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

// Tree is a Probabilistic Distribution R-tree. It is not safe for concurrent
// use by writers; concurrent read-only queries each use their own Reader.
type Tree struct {
	pool *pager.Pool
	cfg  Config
	root pager.PageID
	size int
	// cache, when non-nil, holds decoded nodes keyed by (page id, store
	// version) and is consulted by Reader traversals AFTER the page fetch,
	// so the paper's I/O accounting is unchanged. Write paths always decode
	// fresh (readNode) because they mutate nodes in place; their only cache
	// duty is the version bump Page.Unpin(true) already performs.
	cache *dcache.Cache
}

// SetCache attaches a decoded-node cache, typically shared with the
// relation's other access methods (page ids are unique per store, so one
// cache serves all of them). A nil cache disables cached decoding; Readers
// then fall back to reader-local scratch decoding. Set it before queries
// run; swapping caches mid-query is not supported.
func (t *Tree) SetCache(c *dcache.Cache) { t.cache = c }

// New creates an empty tree whose root is a fresh leaf page.
func New(pool *pager.Pool, cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{pool: pool, cfg: cfg}
	pg, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	t.root = pg.ID
	pg.Data[0] = leafKind
	pg.Unpin(true)
	return t, nil
}

// Len returns the number of indexed UDAs.
func (t *Tree) Len() int { return t.size }

// Pool returns the buffer pool the tree performs I/O through.
func (t *Tree) Pool() *pager.Pool { return t.pool }

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Root returns the root page id.
func (t *Tree) Root() pager.PageID { return t.root }

// maxRecord is the largest leaf record Insert accepts: half a page, so any
// overfull leaf can always be split into two fitting halves.
const maxRecord = payload / 2

// splitOutcome carries a completed child split to the parent.
type splitOutcome struct {
	split    bool
	newChild pager.PageID
	newBound uda.Vector
}

// Insert adds (tid, u) to the tree. The UDA must be valid and small enough
// that two records fit on a page.
func (t *Tree) Insert(tid uint32, u uda.UDA) error {
	if err := u.Validate(); err != nil {
		return fmt.Errorf("pdrtree: insert %d: %w", tid, err)
	}
	if leafRecordSize(u) > maxRecord {
		return fmt.Errorf("pdrtree: insert %d: record of %d bytes exceeds maximum %d",
			tid, leafRecordSize(u), maxRecord)
	}
	v := t.cfg.project(uda.Vec(u))
	_, out, err := t.insert(t.root, tid, u, v)
	if err != nil {
		return err
	}
	if out.split {
		if err := t.growRoot(out); err != nil {
			return err
		}
	}
	t.size++
	return nil
}

// growRoot installs a new inner root over the old root and its new sibling.
func (t *Tree) growRoot(out splitOutcome) error {
	oldBound, err := t.nodeBound(t.root)
	if err != nil {
		return err
	}
	pg, err := t.pool.NewPage()
	if err != nil {
		return err
	}
	pid := pg.ID
	pg.Unpin(true)
	root := &node{
		children: []pager.PageID{t.root, out.newChild},
		bounds:   []uda.Vector{oldBound, out.newBound},
	}
	if err := t.writeNode(pid, root); err != nil {
		return fmt.Errorf("pdrtree: new root does not fit (boundaries too wide; enable compression): %w", err)
	}
	t.root = pid
	return nil
}

// insert descends to a leaf, returning the subtree's updated boundary and
// the split outcome if the node had to split.
func (t *Tree) insert(pid pager.PageID, tid uint32, u uda.UDA, v uda.Vector) (uda.Vector, splitOutcome, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return nil, splitOutcome{}, err
	}

	if n.leaf {
		n.tids = append(n.tids, tid)
		n.udas = append(n.udas, u)
		if err := t.writeNode(pid, n); err == nil {
			return t.leafBound(n), splitOutcome{}, nil
		} else if !errors.Is(err, errNodeTooBig) {
			return nil, splitOutcome{}, err
		}
		return t.splitNode(pid, n)
	}

	ci := t.chooseChild(n, v)
	childBound, childOut, err := t.insert(n.children[ci], tid, u, v)
	if err != nil {
		return nil, splitOutcome{}, err
	}
	n.bounds[ci] = childBound
	if childOut.split {
		n.children = append(n.children, childOut.newChild)
		n.bounds = append(n.bounds, childOut.newBound)
	}
	if err := t.writeNode(pid, n); err == nil {
		return t.innerBound(n), splitOutcome{}, nil
	} else if !errors.Is(err, errNodeTooBig) {
		return nil, splitOutcome{}, err
	}
	return t.splitNode(pid, n)
}

// chooseChild picks the child to receive a new vector under the configured
// insert policy.
func (t *Tree) chooseChild(n *node, v uda.Vector) int {
	const tie = 1e-12
	best := 0
	switch t.cfg.Insert {
	case MinAreaIncrease, CombinedPolicy:
		bestInc, bestDist := -1.0, 0.0
		for i, b := range n.bounds {
			inc := uda.MaxVec(b, v).Area() - b.Area()
			var dist float64
			if t.cfg.Insert == CombinedPolicy {
				dist = t.cfg.Divergence.VecDistance(v, b)
			}
			if bestInc < 0 || inc < bestInc-tie ||
				(t.cfg.Insert == CombinedPolicy && inc < bestInc+tie && dist < bestDist) {
				best, bestInc, bestDist = i, inc, dist
			}
		}
	case MostSimilar:
		bestDist := -1.0
		for i, b := range n.bounds {
			d := t.cfg.Divergence.VecDistance(v, b)
			if bestDist < 0 || d < bestDist {
				best, bestDist = i, d
			}
		}
	default:
		panic("pdrtree: unknown insert policy " + t.cfg.Insert.String())
	}
	return best
}

// leafBound recomputes a leaf's (projected) boundary from its contents.
func (t *Tree) leafBound(n *node) uda.Vector {
	var b uda.Vector
	for _, u := range n.udas {
		b = uda.MaxVec(b, t.cfg.project(uda.Vec(u)))
	}
	return b
}

// innerBound recomputes an inner node's boundary from its children's.
func (t *Tree) innerBound(n *node) uda.Vector {
	var b uda.Vector
	for _, cb := range n.bounds {
		b = uda.MaxVec(b, cb)
	}
	return b
}

// nodeBound reads a node and computes its boundary.
func (t *Tree) nodeBound(pid pager.PageID) (uda.Vector, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		return t.leafBound(n), nil
	}
	return t.innerBound(n), nil
}

// splitNode splits the overfull in-memory node across its page and a fresh
// one, returning the original side's boundary plus the new sibling.
func (t *Tree) splitNode(pid pager.PageID, n *node) (uda.Vector, splitOutcome, error) {
	// Cluster on the entries' vectors: projected UDAs for leaves, child
	// boundaries for inner nodes.
	var vecs []uda.Vector
	if n.leaf {
		vecs = make([]uda.Vector, len(n.udas))
		for i, u := range n.udas {
			vecs[i] = t.cfg.project(uda.Vec(u))
		}
	} else {
		vecs = n.bounds
	}
	ga, gb := splitIndices(vecs, t.cfg.Split, t.cfg.Divergence)
	left, right := n.take(ga), n.take(gb)
	if err := t.fitGroups(left, right); err != nil {
		return nil, splitOutcome{}, err
	}

	pg, err := t.pool.NewPage()
	if err != nil {
		return nil, splitOutcome{}, err
	}
	newPid := pg.ID
	pg.Unpin(true)
	if err := t.writeNode(pid, left); err != nil {
		return nil, splitOutcome{}, err
	}
	if err := t.writeNode(newPid, right); err != nil {
		return nil, splitOutcome{}, err
	}
	var lb, rb uda.Vector
	if n.leaf {
		lb, rb = t.leafBound(left), t.leafBound(right)
	} else {
		lb, rb = t.innerBound(left), t.innerBound(right)
	}
	return lb, splitOutcome{split: true, newChild: newPid, newBound: rb}, nil
}

// take builds a node holding the entries at the given indices.
func (n *node) take(idx []int) *node {
	sort.Ints(idx)
	out := &node{leaf: n.leaf}
	for _, i := range idx {
		if n.leaf {
			out.tids = append(out.tids, n.tids[i])
			out.udas = append(out.udas, n.udas[i])
		} else {
			out.children = append(out.children, n.children[i])
			out.bounds = append(out.bounds, n.bounds[i])
		}
	}
	return out
}

// fitGroups rebalances two split halves by bytes: clustering balances entry
// counts, but variable-size records can still overflow one page. Largest
// entries migrate to the other half until both fit.
func (t *Tree) fitGroups(a, b *node) error {
	for pass := 0; pass < 2; pass++ {
		from, to := a, b
		if pass == 1 {
			from, to = b, a
		}
		for from.encodedSize(t.cfg) > payload {
			i := from.largestEntry(t.cfg)
			sz := from.entrySize(i, t.cfg)
			if from.count() <= 1 || to.encodedSize(t.cfg)+sz > payload {
				return fmt.Errorf("pdrtree: cannot fit split halves (%d and %d bytes in %d-byte pages); boundaries may need compression",
					a.encodedSize(t.cfg), b.encodedSize(t.cfg), payload)
			}
			from.moveEntry(i, to)
		}
	}
	return nil
}

func (n *node) entrySize(i int, cfg Config) int {
	if n.leaf {
		return leafRecordSize(n.udas[i])
	}
	return 4 + 2 + boundaryEncodedSize(n.bounds[i], cfg)
}

func (n *node) largestEntry(cfg Config) int {
	best, bestSize := 0, -1
	for i := 0; i < n.count(); i++ {
		if s := n.entrySize(i, cfg); s > bestSize {
			best, bestSize = i, s
		}
	}
	return best
}

func (n *node) moveEntry(i int, to *node) {
	if n.leaf {
		to.tids = append(to.tids, n.tids[i])
		to.udas = append(to.udas, n.udas[i])
		n.tids = append(n.tids[:i], n.tids[i+1:]...)
		n.udas = append(n.udas[:i], n.udas[i+1:]...)
		return
	}
	to.children = append(to.children, n.children[i])
	to.bounds = append(to.bounds, n.bounds[i])
	n.children = append(n.children[:i], n.children[i+1:]...)
	n.bounds = append(n.bounds[:i], n.bounds[i+1:]...)
}

// Drop frees every page of the tree. The tree must not be used afterwards.
func (t *Tree) Drop() error {
	if err := t.drop(t.root); err != nil {
		return err
	}
	t.root = pager.InvalidPage
	t.size = 0
	return nil
}

func (t *Tree) drop(pid pager.PageID) error {
	n, err := t.readNode(pid)
	if err != nil {
		return err
	}
	for _, c := range n.children {
		if err := t.drop(c); err != nil {
			return err
		}
	}
	return t.pool.FreePage(pid)
}

// ErrNotFound is returned by Delete when the tuple is not in the tree.
var ErrNotFound = errors.New("pdrtree: tuple not found")

// Delete removes (tid, u). The caller supplies the tuple's distribution
// (normally from the relation's tuple heap); the search descends only into
// subtrees whose boundary dominates it. Boundaries are not tightened on
// delete — they remain valid over-estimates, as in classical R-trees with
// lazy maintenance.
func (t *Tree) Delete(tid uint32, u uda.UDA) error {
	v := t.cfg.project(uda.Vec(u))
	found, _, _, err := t.delete(t.root, tid, u, v)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %d", ErrNotFound, tid)
	}
	t.size--
	return t.collapseRoot()
}

// delete returns whether the tuple was found, whether the node is now empty,
// and the node's recomputed boundary.
func (t *Tree) delete(pid pager.PageID, tid uint32, u uda.UDA, v uda.Vector) (found, empty bool, bound uda.Vector, err error) {
	n, err := t.readNode(pid)
	if err != nil {
		return false, false, nil, err
	}
	if n.leaf {
		for i, got := range n.tids {
			if got == tid && n.udas[i].Equal(u) {
				n.tids = append(n.tids[:i], n.tids[i+1:]...)
				n.udas = append(n.udas[:i], n.udas[i+1:]...)
				if err := t.writeNode(pid, n); err != nil {
					return false, false, nil, err
				}
				return true, len(n.tids) == 0, t.leafBound(n), nil
			}
		}
		return false, false, nil, nil
	}
	for i := range n.children {
		if !dominatesVec(n.bounds[i], v) {
			continue
		}
		found, childEmpty, childBound, err := t.delete(n.children[i], tid, u, v)
		if err != nil {
			return false, false, nil, err
		}
		if !found {
			continue
		}
		if childEmpty {
			if err := t.pool.FreePage(n.children[i]); err != nil {
				return false, false, nil, err
			}
			n.children = append(n.children[:i], n.children[i+1:]...)
			n.bounds = append(n.bounds[:i], n.bounds[i+1:]...)
		} else {
			n.bounds[i] = childBound
		}
		if err := t.writeNode(pid, n); err != nil {
			return false, false, nil, err
		}
		return true, len(n.children) == 0, t.innerBound(n), nil
	}
	return false, false, nil, nil
}

// dominatesVec reports a ≥ b pointwise.
func dominatesVec(a, b uda.Vector) bool {
	i := 0
	for _, p := range b {
		for i < len(a) && a[i].Item < p.Item {
			i++
		}
		if i >= len(a) || a[i].Item != p.Item || a[i].Prob < p.Prob {
			return false
		}
	}
	return true
}

// collapseRoot shrinks the tree when the root is an inner node with a single
// child (or none).
func (t *Tree) collapseRoot() error {
	for {
		n, err := t.readNode(t.root)
		if err != nil {
			return err
		}
		if n.leaf || len(n.children) != 1 {
			return nil
		}
		old := t.root
		t.root = n.children[0]
		if err := t.pool.FreePage(old); err != nil {
			return err
		}
	}
}

// CheckInvariants verifies structural soundness: every stored boundary
// dominates everything beneath it and the tuple count matches. For tests.
func (t *Tree) CheckInvariants() error {
	count, _, err := t.check(t.root, nil)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("pdrtree: tree holds %d tuples, size says %d", count, t.size)
	}
	return nil
}

func (t *Tree) check(pid pager.PageID, parentBound uda.Vector) (int, uda.Vector, error) {
	n, err := t.readNode(pid)
	if err != nil {
		return 0, nil, err
	}
	if n.leaf {
		b := t.leafBound(n)
		if parentBound != nil && !dominatesVec(parentBound, b) {
			return 0, nil, fmt.Errorf("pdrtree: leaf %d escapes its parent boundary", pid)
		}
		return len(n.tids), b, nil
	}
	if len(n.children) == 0 {
		return 0, nil, fmt.Errorf("pdrtree: inner node %d has no children", pid)
	}
	total := 0
	for i := range n.children {
		c, childBound, err := t.check(n.children[i], n.bounds[i])
		if err != nil {
			return 0, nil, err
		}
		_ = childBound
		total += c
	}
	b := t.innerBound(n)
	if parentBound != nil && !dominatesVec(parentBound, b) {
		return 0, nil, fmt.Errorf("pdrtree: inner node %d escapes its parent boundary", pid)
	}
	return total, b, nil
}

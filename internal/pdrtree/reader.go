package pdrtree

import (
	"ucat/internal/obs"
	"ucat/internal/pager"
	"ucat/internal/query"
	"ucat/internal/uda"
)

// Reader binds the tree's read-only query traversals to a pool view: every
// node fetch goes through the view instead of the tree's construction pool.
// Handing each concurrent query a Reader over a private 100-frame pool
// reproduces the paper's per-query buffer-manager accounting (§4) while N
// queries run in parallel over the same store. A Reader is cheap (two words)
// and not safe for concurrent use; make one per query. Readers must not be
// used across tree mutations.
type Reader struct {
	t    *Tree
	view pager.View
	rec  *obs.Recorder // nil unless the view is obs-instrumented
}

// Reader returns a read-only query handle whose page fetches go through v.
// A nil view reads through the tree's own pool. If the view carries a trace
// recorder (obs.InstrumentView), query spans and prune/descend decisions are
// recorded; otherwise tracing calls are single-pointer-check no-ops.
func (t *Tree) Reader(v pager.View) *Reader {
	if v == nil {
		v = t.pool
	}
	return &Reader{t: t, view: v, rec: obs.RecorderOf(v)}
}

// readNode fetches and decodes the page through the reader's view.
func (r *Reader) readNode(pid pager.PageID) (*node, error) {
	return r.t.readNodeVia(r.view, pid)
}

// PETQ answers the probabilistic equality threshold query through the
// tree's own pool. See Reader.PETQ.
func (t *Tree) PETQ(q uda.UDA, tau float64) ([]query.Match, error) {
	return t.Reader(nil).PETQ(q, tau)
}

// TopK answers PETQ-top-k through the tree's own pool. See Reader.TopK.
func (t *Tree) TopK(q uda.UDA, k int) ([]query.Match, error) {
	return t.Reader(nil).TopK(q, k)
}

// Scan visits every (tid, UDA) through the tree's own pool. See Reader.Scan.
func (t *Tree) Scan(fn func(tid uint32, u uda.UDA) bool) error {
	return t.Reader(nil).Scan(fn)
}

// Depth returns the height of the tree (1 for a single leaf), reading
// through the tree's own pool. See Reader.Depth.
func (t *Tree) Depth() (int, error) { return t.Reader(nil).Depth() }

// DSTQ answers the distributional similarity threshold query through the
// tree's own pool. See Reader.DSTQ.
func (t *Tree) DSTQ(q uda.UDA, td float64, div uda.Divergence) ([]query.Neighbor, error) {
	return t.Reader(nil).DSTQ(q, td, div)
}

// DSTopK answers DSQ-top-k through the tree's own pool. See Reader.DSTopK.
func (t *Tree) DSTopK(q uda.UDA, k int, div uda.Divergence) ([]query.Neighbor, error) {
	return t.Reader(nil).DSTopK(q, k, div)
}

// WindowPETQ answers the relaxed window-equality threshold query through the
// tree's own pool. See Reader.WindowPETQ.
func (t *Tree) WindowPETQ(q uda.UDA, c uint32, tau float64) ([]query.Match, error) {
	return t.Reader(nil).WindowPETQ(q, c, tau)
}

// WindowTopK answers the relaxed window-equality top-k query through the
// tree's own pool. See Reader.WindowTopK.
func (t *Tree) WindowTopK(q uda.UDA, c uint32, k int) ([]query.Match, error) {
	return t.Reader(nil).WindowTopK(q, c, k)
}

package pdrtree

import (
	"ucat/internal/dcache"
	"ucat/internal/obs"
	"ucat/internal/pager"
	"ucat/internal/query"
	"ucat/internal/uda"
)

// Reader binds the tree's read-only query traversals to a pool view: every
// node fetch goes through the view instead of the tree's construction pool.
// Handing each concurrent query a Reader over a private 100-frame pool
// reproduces the paper's per-query buffer-manager accounting (§4) while N
// queries run in parallel over the same store. A Reader is cheap and not
// safe for concurrent use; make one per query. Readers must not be used
// across tree mutations.
//
// Node decoding is layered over the fetch (never instead of it — the I/O
// figures must not move): with a decode cache attached to the tree, readNode
// serves shared immutable nodes keyed by (page, store version); without one,
// leaf pages are decoded into reader-local scratch (zero allocations on a
// warm reader), which is safe because every traversal fully consumes a leaf
// before reading the next node, and inner nodes — which stay live across the
// recursion into their children — are still allocated fresh.
type Reader struct {
	t    *Tree
	view pager.View
	rec  *obs.Recorder // nil unless the view is obs-instrumented

	// Scratch for the cache-disabled leaf decode path.
	scratch node
	arena   []uda.Pair
}

// Reader returns a read-only query handle whose page fetches go through v.
// A nil view reads through the tree's own pool. If the view carries a trace
// recorder (obs.InstrumentView), query spans and prune/descend decisions are
// recorded; otherwise tracing calls are single-pointer-check no-ops.
func (t *Tree) Reader(v pager.View) *Reader {
	if v == nil {
		v = t.pool
	}
	return &Reader{t: t, view: v, rec: obs.RecorderOf(v)}
}

// readNode fetches the page through the reader's view (always — the fetch
// IS the I/O accounting) and returns its decoded image. The returned node
// must be treated as read-only and, on the scratch path, is only valid until
// the next readNode call; every traversal in this package consumes leaves
// immediately, which is what makes the scratch reuse safe.
func (r *Reader) readNode(pid pager.PageID) (*node, error) {
	if c := r.t.cache; c != nil {
		return r.readNodeCached(pid, c)
	}
	pg, err := r.view.Fetch(pid)
	if err != nil {
		return nil, err
	}
	if pg.Data[0] == leafKind {
		// Hot path: decode into reader-local scratch, zero allocations once
		// the scratch slices and pair arena have warmed up.
		r.arena, err = r.t.decodeNode(pid, pg.Data, &r.scratch, r.arena[:0])
		pg.Unpin(false)
		if err != nil {
			return nil, err
		}
		return &r.scratch, nil
	}
	// Inner nodes stay live across the recursion into their children (the
	// child reads would clobber scratch), so they are decoded fresh.
	n := &node{}
	_, err = r.t.decodeNode(pid, pg.Data, n, nil)
	pg.Unpin(false)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// readNodeCached is the decode-cache path: fetch first (I/O counted exactly
// as without the cache), then key the cache by the page's current store
// version. A writer's dirty unpin bumped the version, so stale entries can
// never be looked up again — no invalidation traffic exists.
func (r *Reader) readNodeCached(pid pager.PageID, c *dcache.Cache) (*node, error) {
	pg, err := r.view.Fetch(pid)
	if err != nil {
		return nil, err
	}
	ver := r.t.pool.Store().Version(pid)
	if v, ok := c.Get(pid, ver); ok {
		pg.Unpin(false)
		return v.(*node), nil
	}
	n := &node{}
	_, err = r.t.decodeNode(pid, pg.Data, n, nil)
	pg.Unpin(false)
	if err != nil {
		return nil, err
	}
	c.Put(pid, ver, n, n.memSize())
	return n, nil
}

// readNodeOwned is readNode for callers that hand node contents to code that
// may retain them past the next read (Scan's callback): cached nodes are
// shared-but-immutable and safe to retain; otherwise a fresh node is
// decoded, never scratch.
func (r *Reader) readNodeOwned(pid pager.PageID) (*node, error) {
	if c := r.t.cache; c != nil {
		return r.readNodeCached(pid, c)
	}
	return r.t.readNodeVia(r.view, pid)
}

// PETQ answers the probabilistic equality threshold query through the
// tree's own pool. See Reader.PETQ.
func (t *Tree) PETQ(q uda.UDA, tau float64) ([]query.Match, error) {
	return t.Reader(nil).PETQ(q, tau)
}

// TopK answers PETQ-top-k through the tree's own pool. See Reader.TopK.
func (t *Tree) TopK(q uda.UDA, k int) ([]query.Match, error) {
	return t.Reader(nil).TopK(q, k)
}

// Scan visits every (tid, UDA) through the tree's own pool. See Reader.Scan.
func (t *Tree) Scan(fn func(tid uint32, u uda.UDA) bool) error {
	return t.Reader(nil).Scan(fn)
}

// Depth returns the height of the tree (1 for a single leaf), reading
// through the tree's own pool. See Reader.Depth.
func (t *Tree) Depth() (int, error) { return t.Reader(nil).Depth() }

// DSTQ answers the distributional similarity threshold query through the
// tree's own pool. See Reader.DSTQ.
func (t *Tree) DSTQ(q uda.UDA, td float64, div uda.Divergence) ([]query.Neighbor, error) {
	return t.Reader(nil).DSTQ(q, td, div)
}

// DSTopK answers DSQ-top-k through the tree's own pool. See Reader.DSTopK.
func (t *Tree) DSTopK(q uda.UDA, k int, div uda.Divergence) ([]query.Neighbor, error) {
	return t.Reader(nil).DSTopK(q, k, div)
}

// WindowPETQ answers the relaxed window-equality threshold query through the
// tree's own pool. See Reader.WindowPETQ.
func (t *Tree) WindowPETQ(q uda.UDA, c uint32, tau float64) ([]query.Match, error) {
	return t.Reader(nil).WindowPETQ(q, c, tau)
}

// WindowTopK answers the relaxed window-equality top-k query through the
// tree's own pool. See Reader.WindowTopK.
func (t *Tree) WindowTopK(q uda.UDA, c uint32, k int) ([]query.Match, error) {
	return t.Reader(nil).WindowTopK(q, c, k)
}

package pdrtree

import (
	"fmt"

	"ucat/internal/pager"
)

// Stats describes a tree's physical shape.
type Stats struct {
	Tuples     int     // indexed UDAs
	Height     int     // levels including the leaf level
	LeafPages  int     // pages holding UDAs
	InnerPages int     // pages holding child entries
	FanOut     float64 // mean children per inner node
	LeafFill   float64 // mean leaf payload utilization in [0, 1]
	Bytes      int64   // total page bytes (leaf + inner)
}

func (s Stats) String() string {
	return fmt.Sprintf("tuples=%d height=%d leaves=%d inner=%d fanout=%.1f leaf-fill=%.0f%% bytes=%d",
		s.Tuples, s.Height, s.LeafPages, s.InnerPages, s.FanOut, 100*s.LeafFill, s.Bytes)
}

// Stats walks the tree and reports its shape. The walk performs I/O through
// the pool like any other operation.
func (t *Tree) Stats() (Stats, error) {
	st := Stats{Tuples: t.size}
	var children, fillSum float64
	var walk func(pid pager.PageID, depth int) error
	walk = func(pid pager.PageID, depth int) error {
		n, err := t.readNode(pid)
		if err != nil {
			return err
		}
		if depth > st.Height {
			st.Height = depth
		}
		if n.leaf {
			st.LeafPages++
			fillSum += float64(n.encodedSize(t.cfg)) / float64(payload)
			return nil
		}
		st.InnerPages++
		children += float64(len(n.children))
		for _, c := range n.children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1); err != nil {
		return Stats{}, err
	}
	if st.InnerPages > 0 {
		st.FanOut = children / float64(st.InnerPages)
	}
	if st.LeafPages > 0 {
		st.LeafFill = fillSum / float64(st.LeafPages)
	}
	st.Bytes = int64(st.LeafPages+st.InnerPages) * pager.PageSize
	return st, nil
}

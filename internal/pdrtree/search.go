package pdrtree

import (
	"fmt"
	"sort"

	"ucat/internal/pager"
	"ucat/internal/query"
	"ucat/internal/uda"
)

// PETQ answers the probabilistic equality threshold query: all tuples t with
// Pr(q = t) > tau, with exact probabilities, in descending probability
// order. A subtree is pruned when ⟨boundary, q⟩ ≤ tau (Lemma 2: the dot
// product with the pointwise-max boundary dominates the equality probability
// of everything beneath it).
func (r *Reader) PETQ(q uda.UDA, tau float64) ([]query.Match, error) {
	if tau < 0 {
		return nil, fmt.Errorf("pdrtree: negative threshold %g", tau)
	}
	sp := r.rec.StartSpan("pdrtree.petq")
	defer sp.End()
	sp.AttrF("tau", tau)
	var res []query.Match
	err := r.petq(r.t.root, q, tau, &res)
	if err != nil {
		return nil, err
	}
	query.SortMatches(res)
	return res, nil
}

func (r *Reader) petq(pid pager.PageID, q uda.UDA, tau float64, res *[]query.Match) error {
	n, err := r.readNode(pid)
	if err != nil {
		return err
	}
	r.rec.Add("pdr.nodes", 1)
	if n.leaf {
		r.rec.Add("pdr.leaves", 1)
		for i, u := range n.udas {
			if p := uda.EqualityProb(q, u); p > tau {
				*res = append(*res, query.Match{TID: n.tids[i], Prob: p})
			}
		}
		return nil
	}
	// The live frontier of this node: children whose boundary dot product
	// exceeds the threshold (Lemma 2 keeps them), versus pruned siblings.
	live := int64(0)
	for i := range n.children {
		if r.t.cfg.queryDot(q, n.bounds[i]) <= tau {
			r.rec.Add("pdr.pruned", 1)
			continue
		}
		live++
		r.rec.Add("pdr.descended", 1)
		if err := r.petq(n.children[i], q, tau, res); err != nil {
			return err
		}
	}
	r.rec.Max("pdr.frontier", live)
	return nil
}

// TopK returns the k tuples with the highest equality probability to q
// (ties at the kth position broken arbitrarily). The search descends
// greedily into the child with the largest ⟨boundary, q⟩ first so the
// dynamic threshold rises early, and prunes children whose bound cannot beat
// the current kth best probability.
func (r *Reader) TopK(q uda.UDA, k int) ([]query.Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("pdrtree: non-positive k %d", k)
	}
	sp := r.rec.StartSpan("pdrtree.topk")
	defer sp.End()
	sp.AttrF("k", float64(k))
	tk := query.NewTopK(k)
	if err := r.topk(r.t.root, q, tk); err != nil {
		return nil, err
	}
	return tk.Results(), nil
}

func (r *Reader) topk(pid pager.PageID, q uda.UDA, tk *query.TopK) error {
	n, err := r.readNode(pid)
	if err != nil {
		return err
	}
	r.rec.Add("pdr.nodes", 1)
	if n.leaf {
		r.rec.Add("pdr.leaves", 1)
		for i, u := range n.udas {
			tk.Offer(query.Match{TID: n.tids[i], Prob: uda.EqualityProb(q, u)})
		}
		return nil
	}
	type scored struct {
		child pager.PageID
		dot   float64
	}
	order := make([]scored, len(n.children))
	for i := range n.children {
		order[i] = scored{child: n.children[i], dot: r.t.cfg.queryDot(q, n.bounds[i])}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].dot > order[j].dot })
	live := int64(0)
	for oi, s := range order {
		// Children are in descending bound order: once one cannot beat the
		// threshold, none of the rest can.
		if (tk.Full() && s.dot <= tk.Threshold()) || s.dot <= 0 {
			r.rec.Add("pdr.pruned", int64(len(order)-oi))
			break
		}
		live++
		r.rec.Add("pdr.descended", 1)
		if err := r.topk(s.child, q, tk); err != nil {
			return err
		}
	}
	r.rec.Max("pdr.frontier", live)
	return nil
}

// Scan visits every (tid, UDA) in the tree in depth-first page order; fn
// returns false to stop. Useful for verification and for rebuilding.
// fn may retain the UDAs it is handed, so Scan reads owned (or cached,
// shared-immutable) nodes, never reader scratch.
func (r *Reader) Scan(fn func(tid uint32, u uda.UDA) bool) error {
	stop := false
	var walk func(pid pager.PageID) error
	walk = func(pid pager.PageID) error {
		if stop {
			return nil
		}
		n, err := r.readNodeOwned(pid)
		if err != nil {
			return err
		}
		if n.leaf {
			for i, u := range n.udas {
				if !fn(n.tids[i], u) {
					stop = true
					return nil
				}
			}
			return nil
		}
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
		return nil
	}
	return walk(r.t.root)
}

// Depth returns the height of the tree (1 for a single leaf).
func (r *Reader) Depth() (int, error) {
	d := 0
	pid := r.t.root
	for {
		n, err := r.readNode(pid)
		if err != nil {
			return 0, err
		}
		d++
		if n.leaf {
			return d, nil
		}
		pid = n.children[0]
	}
}

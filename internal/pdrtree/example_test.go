package pdrtree_test

import (
	"fmt"
	"log"

	"ucat/internal/pager"
	"ucat/internal/pdrtree"
	"ucat/internal/uda"
)

func ExampleTree_PETQ() {
	pool := pager.NewPool(pager.NewStore(), 100)
	// The zero-value Config is the paper's best combination: KL clustering,
	// combined insert criterion, bottom-up splits.
	tree, err := pdrtree.New(pool, pdrtree.Config{})
	if err != nil {
		log.Fatal(err)
	}
	tuples := []uda.UDA{
		uda.MustNew(uda.Pair{Item: 1, Prob: 0.9}, uda.Pair{Item: 2, Prob: 0.1}),
		uda.MustNew(uda.Pair{Item: 1, Prob: 0.2}, uda.Pair{Item: 3, Prob: 0.8}),
		uda.MustNew(uda.Pair{Item: 4, Prob: 1.0}),
	}
	for tid, u := range tuples {
		if err := tree.Insert(uint32(tid), u); err != nil {
			log.Fatal(err)
		}
	}
	// Measure the query against a cold cache, as the paper's evaluation does.
	if err := pool.Clear(); err != nil {
		log.Fatal(err)
	}
	pool.ResetStats()
	matches, err := tree.PETQ(uda.Certain(1), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("tuple %d: %.1f\n", m.TID, m.Prob)
	}
	fmt.Printf("query I/O: %d\n", pool.Stats().IOs())
	// Output:
	// tuple 0: 0.9
	// query I/O: 1
}

func ExampleLearnSignature() {
	// Sample data where items 0-9 carry high probabilities and 100-109 low
	// ones; the learned fold keeps the two populations in separate buckets
	// so signature compression stays tight.
	var sample []uda.UDA
	for i := uint32(0); i < 10; i++ {
		sample = append(sample, uda.MustNew(
			uda.Pair{Item: i, Prob: 0.9},
			uda.Pair{Item: 100 + i, Prob: 0.1},
		))
	}
	m, err := pdrtree.LearnSignature(sample, 110, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("item 3 and item 103 share a bucket: %v\n", m[3] == m[103])
	fmt.Printf("item 3 and item 4 share a bucket:   %v\n", m[3] == m[4])
	// Output:
	// item 3 and item 103 share a bucket: false
	// item 3 and item 4 share a bucket:   true
}

package pdrtree

import (
	"testing"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

// bigUDA builds a distribution whose leaf record is roughly the requested
// number of bytes (12 bytes per pair + 6 overhead).
func bigUDA(t *testing.T, base uint32, bytes int) uda.UDA {
	t.Helper()
	pairs := (bytes - 6) / 12
	if pairs < 1 {
		pairs = 1
	}
	ps := make([]uda.Pair, pairs)
	for i := range ps {
		ps[i] = uda.Pair{Item: base + uint32(i), Prob: 1.0 / float64(pairs+1)}
	}
	return uda.MustNew(ps...)
}

func TestFitGroupsRebalancesByBytes(t *testing.T) {
	tr := newTestTree(t, Config{}, 32)
	// Group A: two records of ~3.9 KB each — together they exceed the 8184-
	// byte payload. Group B: a handful of small records with plenty of room.
	a := &node{leaf: true}
	for i := 0; i < 2; i++ {
		u := bigUDA(t, uint32(1000*i), 4180)
		a.tids = append(a.tids, uint32(i))
		a.udas = append(a.udas, u)
	}
	b := &node{leaf: true}
	for i := 0; i < 3; i++ {
		u := bigUDA(t, uint32(5000+100*i), 60)
		b.tids = append(b.tids, uint32(10+i))
		b.udas = append(b.udas, u)
	}
	if a.encodedSize(tr.cfg) <= payload {
		t.Fatalf("test setup: group A should overflow (size %d)", a.encodedSize(tr.cfg))
	}
	if err := tr.fitGroups(a, b); err != nil {
		t.Fatalf("fitGroups: %v", err)
	}
	if a.encodedSize(tr.cfg) > payload || b.encodedSize(tr.cfg) > payload {
		t.Errorf("groups still overflow: %d and %d", a.encodedSize(tr.cfg), b.encodedSize(tr.cfg))
	}
	if a.count()+b.count() != 5 {
		t.Errorf("entries lost: %d + %d", a.count(), b.count())
	}
	seen := map[uint32]bool{}
	for _, n := range [2]*node{a, b} {
		for _, tid := range n.tids {
			if seen[tid] {
				t.Errorf("tuple %d duplicated across groups", tid)
			}
			seen[tid] = true
		}
	}
}

func TestFitGroupsReportsImpossibleSplit(t *testing.T) {
	tr := newTestTree(t, Config{}, 32)
	// Both groups over-full with maximum-size records: nothing can move.
	mk := func(base uint32) *node {
		n := &node{leaf: true}
		for i := 0; i < 3; i++ {
			n.tids = append(n.tids, base+uint32(i))
			n.udas = append(n.udas, bigUDA(t, base+uint32(1000*i), 4180))
		}
		return n
	}
	a, b := mk(0), mk(100)
	if err := tr.fitGroups(a, b); err == nil {
		t.Errorf("impossible split accepted")
	}
}

func TestSplitWithMixedRecordSizesEndToEnd(t *testing.T) {
	// Drive the byte-rebalance through the public API: insert a stream of
	// alternating large and tiny records so splits must rebalance by bytes.
	tr := newTestTree(t, Config{}, pager.DefaultPoolFrames)
	for i := 0; i < 40; i++ {
		var u uda.UDA
		if i%2 == 0 {
			// Large records share one item range so subtree boundaries stay
			// narrow enough for inner nodes.
			u = bigUDA(t, 10000, 3000)
		} else {
			u = bigUDA(t, uint32(i%5), 40)
		}
		if err := tr.Insert(uint32(i), u); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	n := 0
	if err := tr.Scan(func(uint32, uda.UDA) bool { n++; return true }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 40 {
		t.Errorf("scan saw %d tuples, want 40", n)
	}
}

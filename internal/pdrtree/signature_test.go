package pdrtree

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/uda"
)

func TestLearnSignatureShape(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	sample := make([]uda.UDA, 500)
	for i := range sample {
		sample[i] = uda.Random(r, 100, 8)
	}
	m, err := LearnSignature(sample, 100, 16)
	if err != nil {
		t.Fatalf("LearnSignature: %v", err)
	}
	if len(m) != 100 {
		t.Fatalf("map has %d entries, want 100", len(m))
	}
	used := map[uint32]int{}
	for _, b := range m {
		if b >= 16 {
			t.Fatalf("bucket %d out of range", b)
		}
		used[b]++
	}
	// Population-balanced: every bucket holds domain/buckets ± rounding.
	for b, n := range used {
		if n < 100/16 || n > 100/16+1 {
			t.Errorf("bucket %d holds %d items, want balanced", b, n)
		}
	}
}

func TestLearnSignatureGroupsSimilarMaxima(t *testing.T) {
	// Two populations: items 0-9 appear with prob ~0.9, items 10-19 with
	// ~0.05. A good map should not mix them.
	var sample []uda.UDA
	for i := 0; i < 10; i++ {
		sample = append(sample, uda.MustNew(
			uda.Pair{Item: uint32(i), Prob: 0.9},
			uda.Pair{Item: uint32(10 + i), Prob: 0.05},
		))
	}
	m, err := LearnSignature(sample, 20, 2)
	if err != nil {
		t.Fatalf("LearnSignature: %v", err)
	}
	for i := 0; i < 10; i++ {
		if m[i] != m[0] {
			t.Errorf("high-probability items split across buckets: m[%d]=%d m[0]=%d", i, m[i], m[0])
		}
		if m[10+i] == m[0] {
			t.Errorf("low item %d shares bucket with the high population", 10+i)
		}
	}
}

func TestLearnSignatureValidation(t *testing.T) {
	if _, err := LearnSignature(nil, 0, 4); err == nil {
		t.Errorf("domain 0 accepted")
	}
	if _, err := LearnSignature(nil, 10, 0); err == nil {
		t.Errorf("buckets 0 accepted")
	}
	bad := []uda.UDA{uda.Certain(50)}
	if _, err := LearnSignature(bad, 10, 4); err == nil {
		t.Errorf("out-of-domain sample accepted")
	}
	// More buckets than items degrades gracefully.
	m, err := LearnSignature([]uda.UDA{uda.Certain(1)}, 3, 10)
	if err != nil || len(m) != 3 {
		t.Errorf("buckets>domain: (%v, %v)", m, err)
	}
}

func TestLearnedSignatureStaysExact(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	sample := make([]uda.UDA, 1500)
	for i := range sample {
		sample[i] = uda.Random(r, 200, 8)
	}
	m, err := LearnSignature(sample, 200, 16)
	if err != nil {
		t.Fatalf("LearnSignature: %v", err)
	}
	cfg := Config{Compression: SignatureCompression, Buckets: 16, SignatureMap: m}
	tr := newTestTree(t, cfg, 300)
	data := make(map[uint32]uda.UDA)
	for i, u := range sample {
		data[uint32(i)] = u
		if err := tr.Insert(uint32(i), u); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	for trial := 0; trial < 5; trial++ {
		q := uda.Random(r, 200, 6)
		for _, tau := range []float64{0, 0.05, 0.2} {
			want := naivePETQ(data, q, tau)
			got, err := tr.PETQ(q, tau)
			if err != nil {
				t.Fatalf("PETQ: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("tau=%g: %d matches, want %d", tau, len(got), len(want))
			}
			for i := range want {
				if got[i].TID != want[i].TID || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
					t.Fatalf("match %d = %v, want %v", i, got[i], want[i])
				}
			}
		}
	}
}

func TestLearnedSignaturePrunesBetterThanMod(t *testing.T) {
	// Skewed data where mod-folding mixes heavy and light items: queries on
	// light items should prune far better under the learned map.
	r := rand.New(rand.NewSource(17))
	const domain = 200
	gen := func() uda.UDA {
		// Even items carry high probabilities, odd items tiny ones — and
		// mod-folding with an even bucket count would actually separate
		// them, so use skew by item *range* instead: items < 100 heavy,
		// ≥ 100 light.
		heavy := uint32(r.Intn(100))
		light := uint32(100 + r.Intn(100))
		return uda.MustNew(
			uda.Pair{Item: heavy, Prob: 0.85 + 0.1*r.Float64()},
			uda.Pair{Item: light, Prob: 0.02},
		)
	}
	sample := make([]uda.UDA, 5000)
	for i := range sample {
		sample[i] = gen()
	}
	m, err := LearnSignature(sample, domain, 16)
	if err != nil {
		t.Fatalf("LearnSignature: %v", err)
	}

	build := func(cfg Config) *Tree {
		tr := newTestTree(t, cfg, 0)
		for i, u := range sample {
			if err := tr.Insert(uint32(i), u); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		return tr
	}
	measure := func(tr *Tree) uint64 {
		pool := tr.Pool()
		var total uint64
		// Queries on light items: with mod folding they inherit heavy
		// bounds (items 100+i and i share bucket i%16).
		for i := 0; i < 10; i++ {
			q := uda.Certain(uint32(100 + 7*i))
			if err := pool.Clear(); err != nil {
				t.Fatal(err)
			}
			pool.ResetStats()
			if _, err := tr.PETQ(q, 0.1); err != nil {
				t.Fatal(err)
			}
			total += pool.Stats().IOs()
		}
		return total
	}
	modIO := measure(build(Config{Compression: SignatureCompression, Buckets: 16}))
	learnedIO := measure(build(Config{Compression: SignatureCompression, Buckets: 16, SignatureMap: m}))
	if learnedIO >= modIO {
		t.Errorf("learned signature %d I/Os, mod folding %d; expected improvement", learnedIO, modIO)
	}
}

package pdrtree

import (
	"math/rand"
	"testing"

	"ucat/internal/uda"
)

// FuzzDecodeBoundary exercises the boundary codec (both the float32 and the
// bit-packed discretized forms) with arbitrary bytes: reject or produce a
// valid vector, never panic.
func FuzzDecodeBoundary(f *testing.F) {
	r := rand.New(rand.NewSource(2))
	cfgPlain, _ := Config{}.withDefaults()
	cfgDisc, _ := Config{Compression: DiscretizedCompression, Bits: 6}.withDefaults()
	for i := 0; i < 6; i++ {
		v := uda.Vec(uda.Random(r, 200, 12))
		f.Add(encodeBoundary(v, cfgPlain), false)
		f.Add(encodeBoundary(v, cfgDisc), true)
	}
	f.Add([]byte{}, false)
	f.Add([]byte{0, 0}, true)
	f.Add([]byte{9, 0, 1}, false)

	f.Fuzz(func(t *testing.T, data []byte, disc bool) {
		cfg := cfgPlain
		if disc {
			cfg = cfgDisc
		}
		v, err := decodeBoundary(data, cfg)
		if err != nil {
			return
		}
		if verr := v.Validate(); verr != nil {
			t.Fatalf("decodeBoundary returned invalid vector: %v", verr)
		}
		// Re-encoding must produce a boundary that dominates the decoded one
		// (encoding only ever rounds up) and decodes back to itself.
		re := encodeBoundary(v, cfg)
		v2, err := decodeBoundary(re, cfg)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(v2) != len(v) {
			t.Fatalf("re-decode has %d entries, want %d", len(v2), len(v))
		}
		for i := range v {
			if v2[i].Item != v[i].Item || v2[i].Prob < v[i].Prob {
				t.Fatalf("re-decode entry %d = %v, want dominating %v", i, v2[i], v[i])
			}
		}
	})
}

// Package pdrtree implements the Probabilistic Distribution R-tree (PDR-tree)
// of §3.2 of "Indexing Uncertain Categorical Data" (Singh et al., ICDE 2007).
//
// Each uncertain attribute value (UDA) is a point in the high-dimensional
// probability simplex; the PDR-tree clusters distributionally similar UDAs
// into disk pages organized as an R-tree-like hierarchy. Every node is
// described in its parent by an MBR boundary vector — the pointwise maximum
// of the probabilities beneath it — and a probabilistic equality threshold
// query PETQ(q, τ) prunes a subtree as soon as ⟨boundary, q⟩ ≤ τ (Lemma 2).
//
// The package implements the paper's design space:
//   - insertion criteria: minimum area increase, most-similar MBR, or their
//     combination;
//   - split algorithms: top-down (farthest-pair seeds) and bottom-up
//     (agglomerative merging), both with the 3/4 balance cap;
//   - divergence measures L1, L2, KL for clustering (Figure 4 compares them);
//   - MBR boundary compression: none, set-signature (domain folding), or
//     discretized over-estimation (b-bit quantization rounded up), both of
//     which only ever over-estimate so pruning stays sound.
package pdrtree

import (
	"fmt"

	"ucat/internal/uda"
)

// InsertPolicy selects how Insert picks the child subtree for a new UDA.
type InsertPolicy int

const (
	// CombinedPolicy picks the child with minimum area increase, breaking
	// near-ties by distributional similarity — the paper suggests using a
	// combination of its two criteria.
	CombinedPolicy InsertPolicy = iota
	// MinAreaIncrease picks the child whose MBR boundary grows least in L1
	// area.
	MinAreaIncrease
	// MostSimilar picks the child whose boundary is distributionally closest
	// to the new UDA under the configured divergence.
	MostSimilar
)

func (p InsertPolicy) String() string {
	switch p {
	case CombinedPolicy:
		return "combined"
	case MinAreaIncrease:
		return "min-area"
	case MostSimilar:
		return "most-similar"
	default:
		return fmt.Sprintf("InsertPolicy(%d)", int(p))
	}
}

// SplitPolicy selects the algorithm for splitting an overfull node.
type SplitPolicy int

const (
	// BottomUp merges the closest pair of clusters agglomeratively until two
	// remain. The paper's Figure 10 finds it superior to top-down.
	BottomUp SplitPolicy = iota
	// TopDown seeds two clusters with the distributionally farthest pair of
	// entries and assigns the rest to the closer seed.
	TopDown
)

func (p SplitPolicy) String() string {
	switch p {
	case BottomUp:
		return "bottom-up"
	case TopDown:
		return "top-down"
	default:
		return fmt.Sprintf("SplitPolicy(%d)", int(p))
	}
}

// CompressionMode selects how MBR boundary vectors are stored in internal
// nodes. Both lossy modes strictly over-estimate, preserving pruning
// soundness ("the lossy representation of an MBR boundary vector must be an
// over-estimation of the actual values", §3.2).
type CompressionMode int

const (
	// NoCompression stores boundaries exactly (item + float64 per entry).
	NoCompression CompressionMode = iota
	// SignatureCompression folds the domain D onto a smaller domain C via
	// f(d) = d mod |C|, keeping the maximum per bucket — the set-signature
	// approach.
	SignatureCompression
	// DiscretizedCompression quantizes each boundary value up to the next
	// multiple of 1/2^Bits, storing only Bits bits per value.
	DiscretizedCompression
)

func (m CompressionMode) String() string {
	switch m {
	case NoCompression:
		return "none"
	case SignatureCompression:
		return "signature"
	case DiscretizedCompression:
		return "discretized"
	default:
		return fmt.Sprintf("CompressionMode(%d)", int(m))
	}
}

// Config collects the tree's tuning knobs. The zero value selects the
// paper's best-performing combination: KL divergence (Figure 4), combined
// insert criterion, bottom-up split (Figure 10), no compression.
type Config struct {
	// Divergence is the distribution distance used for clustering decisions.
	Divergence uda.Divergence
	// Insert selects the child-choice criterion.
	Insert InsertPolicy
	// Split selects the node split algorithm.
	Split SplitPolicy
	// Compression selects the MBR boundary storage format.
	Compression CompressionMode
	// Buckets is the compressed domain size |C| for SignatureCompression.
	// Default 64.
	Buckets int
	// SignatureMap optionally overrides the fold function for
	// SignatureCompression: entry d is the bucket of item d (every entry
	// must be below Buckets). Build one with LearnSignature; when nil,
	// f(d) = d mod Buckets. Items at or beyond len(SignatureMap) fold with
	// the default function.
	SignatureMap []uint32
	// Bits is the per-value width for DiscretizedCompression, in (0, 16].
	// Default 8.
	Bits uint
}

// withDefaults fills unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.Buckets == 0 {
		c.Buckets = 64
	}
	if c.Bits == 0 {
		c.Bits = 8
	}
	if c.Buckets < 1 {
		return c, fmt.Errorf("pdrtree: invalid bucket count %d", c.Buckets)
	}
	if c.Bits > 16 {
		return c, fmt.Errorf("pdrtree: invalid bit width %d", c.Bits)
	}
	for i, b := range c.SignatureMap {
		if int(b) >= c.Buckets {
			return c, fmt.Errorf("pdrtree: signature map sends item %d to bucket %d of %d", i, b, c.Buckets)
		}
	}
	return c, nil
}

// bucketOf folds a domain item onto the compressed domain.
func (c Config) bucketOf(item uint32) uint32 {
	if int(item) < len(c.SignatureMap) {
		return c.SignatureMap[item]
	}
	return item % uint32(c.Buckets)
}

// project maps a vector into the space boundaries live in: identity unless
// signature compression folds items onto buckets (keeping maxima).
func (c Config) project(v uda.Vector) uda.Vector {
	if c.Compression != SignatureCompression {
		return v
	}
	buckets := make(map[uint32]float64)
	for _, p := range v {
		b := c.bucketOf(p.Item)
		if p.Prob > buckets[b] {
			buckets[b] = p.Prob
		}
	}
	out := make(uda.Vector, 0, len(buckets))
	for b, p := range buckets {
		out = append(out, uda.Pair{Item: b, Prob: p})
	}
	sortVector(out)
	return out
}

// queryDot upper-bounds Pr(q = u) for any u under a boundary: the plain dot
// product, with query items folded onto buckets under signature compression.
func (c Config) queryDot(q uda.UDA, bound uda.Vector) float64 {
	if c.Compression != SignatureCompression {
		return bound.DotUDA(q)
	}
	var s float64
	for _, p := range q.Pairs() {
		s += p.Prob * bound.Prob(c.bucketOf(p.Item))
	}
	return s
}

func sortVector(v uda.Vector) {
	// Insertion sort: projection outputs are small (≤ Buckets entries).
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1].Item > v[j].Item; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

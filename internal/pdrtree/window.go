package pdrtree

import (
	"fmt"
	"sort"

	"ucat/internal/pager"
	"ucat/internal/query"
	"ucat/internal/uda"
)

// WindowPETQ answers the relaxed window-equality query on ordered domains
// (§2): all tuples t with Pr(|q − t| ≤ c) > tau. The window probability is
// the dot product ⟨Smear(q, c), t⟩, so ⟨boundary, Smear(q, c)⟩ dominates it
// for every tuple under an MBR boundary — the same Lemma 2 argument as plain
// PETQ, with the smeared query.
//
// Window queries are only meaningful without signature compression: domain
// folding does not preserve item adjacency.
func (r *Reader) WindowPETQ(q uda.UDA, c uint32, tau float64) ([]query.Match, error) {
	if tau < 0 {
		return nil, fmt.Errorf("pdrtree: negative threshold %g", tau)
	}
	if r.t.cfg.Compression == SignatureCompression {
		return nil, fmt.Errorf("pdrtree: window queries require an order-preserving boundary encoding (not signature compression)")
	}
	w := uda.Smear(q, c)
	var res []query.Match
	err := r.windowPETQ(r.t.root, q, c, w, tau, &res)
	if err != nil {
		return nil, err
	}
	query.SortMatches(res)
	return res, nil
}

func (r *Reader) windowPETQ(pid pager.PageID, q uda.UDA, c uint32, w uda.Vector, tau float64, res *[]query.Match) error {
	n, err := r.readNode(pid)
	if err != nil {
		return err
	}
	if n.leaf {
		for i, u := range n.udas {
			if p := uda.WithinProb(q, u, c); p > tau {
				*res = append(*res, query.Match{TID: n.tids[i], Prob: p})
			}
		}
		return nil
	}
	for i := range n.children {
		if uda.VecDot(w, n.bounds[i]) <= tau {
			continue
		}
		if err := r.windowPETQ(n.children[i], q, c, w, tau, res); err != nil {
			return err
		}
	}
	return nil
}

// WindowTopK returns the k tuples with the highest window-equality
// probability, descending greedily into the child with the largest smeared
// dot product.
func (r *Reader) WindowTopK(q uda.UDA, c uint32, k int) ([]query.Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("pdrtree: non-positive k %d", k)
	}
	if r.t.cfg.Compression == SignatureCompression {
		return nil, fmt.Errorf("pdrtree: window queries require an order-preserving boundary encoding (not signature compression)")
	}
	w := uda.Smear(q, c)
	tk := query.NewTopK(k)
	if err := r.windowTopK(r.t.root, q, c, w, tk); err != nil {
		return nil, err
	}
	return tk.Results(), nil
}

func (r *Reader) windowTopK(pid pager.PageID, q uda.UDA, c uint32, w uda.Vector, tk *query.TopK) error {
	n, err := r.readNode(pid)
	if err != nil {
		return err
	}
	if n.leaf {
		for i, u := range n.udas {
			tk.Offer(query.Match{TID: n.tids[i], Prob: uda.WithinProb(q, u, c)})
		}
		return nil
	}
	type scored struct {
		child pager.PageID
		dot   float64
	}
	order := make([]scored, len(n.children))
	for i := range n.children {
		order[i] = scored{child: n.children[i], dot: uda.VecDot(w, n.bounds[i])}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].dot > order[j].dot })
	for _, s := range order {
		if (tk.Full() && s.dot <= tk.Threshold()) || s.dot <= 0 {
			break
		}
		if err := r.windowTopK(s.child, q, c, w, tk); err != nil {
			return err
		}
	}
	return nil
}

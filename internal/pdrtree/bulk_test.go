package pdrtree

import (
	"math/rand"
	"testing"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

func TestBulkLoadInvariantsAndScan(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, cfg := range []Config{
		{},
		{Compression: DiscretizedCompression, Bits: 6},
		{Compression: SignatureCompression, Buckets: 8},
	} {
		tuples := make([]Tuple, 4000)
		for i := range tuples {
			tuples[i] = Tuple{TID: uint32(i), Value: uda.Random(r, 20, 5)}
		}
		tr, err := BulkLoad(pager.NewPool(pager.NewStore(), 256), cfg, tuples)
		if err != nil {
			t.Fatalf("cfg %+v BulkLoad: %v", cfg, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("cfg %+v invariants: %v", cfg, err)
		}
		seen := map[uint32]bool{}
		if err := tr.Scan(func(tid uint32, u uda.UDA) bool {
			seen[tid] = true
			return true
		}); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if len(seen) != len(tuples) {
			t.Fatalf("cfg %+v: scan saw %d tuples, want %d", cfg, len(seen), len(tuples))
		}
		d, err := tr.Depth()
		if err != nil || d < 2 {
			t.Errorf("cfg %+v: depth = %d (%v)", cfg, d, err)
		}
	}
}

func TestBulkLoadRejectsOversize(t *testing.T) {
	pairs := make([]uda.Pair, 400)
	for i := range pairs {
		pairs[i] = uda.Pair{Item: uint32(i), Prob: 1.0 / 500}
	}
	big := uda.MustNew(pairs...)
	_, err := BulkLoad(pager.NewPool(pager.NewStore(), 16), Config{}, []Tuple{{TID: 1, Value: big}})
	if err == nil {
		t.Errorf("oversize record accepted by BulkLoad")
	}
}

func TestBulkLoadSingleLeaf(t *testing.T) {
	tuples := []Tuple{{TID: 1, Value: uda.Certain(3)}, {TID: 2, Value: uda.Certain(4)}}
	tr, err := BulkLoad(pager.NewPool(pager.NewStore(), 16), Config{}, tuples)
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	ms, err := tr.PETQ(uda.Certain(3), 0.5)
	if err != nil || len(ms) != 1 || ms[0].TID != 1 {
		t.Errorf("PETQ = (%v, %v)", ms, err)
	}
	d, err := tr.Depth()
	if err != nil || d != 1 {
		t.Errorf("two tuples should fit one leaf: depth %d (%v)", d, err)
	}
}

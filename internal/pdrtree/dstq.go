package pdrtree

import (
	"fmt"
	"math"
	"sort"

	"ucat/internal/pager"
	"ucat/internal/query"
	"ucat/internal/uda"
)

// Distributional similarity queries (Definition 5 of the paper). The
// PDR-tree clusters distributionally similar UDAs, so a subtree can be
// pruned with a lower bound on the distance between the query and anything
// beneath the subtree's boundary: since every stored u satisfies
// u_i ≤ bound_i pointwise, each coordinate with q_i > bound_i contributes at
// least q_i − bound_i to the L1 distance (and its square to L2²). KL is not
// a metric ("hence it is not directly usable for pruning search paths",
// §2), so KL queries traverse without pruning.

// distLowerBound returns a lower bound on div(q, u) for every u dominated by
// bound. Under signature compression the query's items are folded onto
// buckets before comparing, which keeps the bound valid because
// u_i ≤ proj(u)[f(i)] ≤ bound[f(i)].
func (t *Tree) distLowerBound(q uda.UDA, bound uda.Vector, div uda.Divergence) float64 {
	if div == uda.KL {
		return 0
	}
	var l1, l2 float64
	for _, p := range q.Pairs() {
		item := p.Item
		if t.cfg.Compression == SignatureCompression {
			item = t.cfg.bucketOf(p.Item)
		}
		if d := p.Prob - bound.Prob(item); d > 0 {
			l1 += d
			l2 += d * d
		}
	}
	if div == uda.L2 {
		return math.Sqrt(l2)
	}
	return l1
}

// DSTQ returns all tuples whose distributional distance from q is at most
// td, in ascending distance order.
//
//ucatlint:hotpath
func (r *Reader) DSTQ(q uda.UDA, td float64, div uda.Divergence) ([]query.Neighbor, error) {
	if td < 0 {
		return nil, fmt.Errorf("pdrtree: negative distance threshold %g", td)
	}
	var res []query.Neighbor
	err := r.dstq(r.t.root, q, td, div, &res)
	if err != nil {
		return nil, err
	}
	query.SortNeighbors(res)
	return res, nil
}

func (r *Reader) dstq(pid pager.PageID, q uda.UDA, td float64, div uda.Divergence, res *[]query.Neighbor) error {
	n, err := r.readNode(pid)
	if err != nil {
		return err
	}
	if n.leaf {
		for i, u := range n.udas {
			if d := div.Distance(q, u); d <= td {
				*res = append(*res, query.Neighbor{TID: n.tids[i], Dist: d})
			}
		}
		return nil
	}
	for i := range n.children {
		if r.t.distLowerBound(q, n.bounds[i], div) > td {
			continue
		}
		if err := r.dstq(n.children[i], q, td, div, res); err != nil {
			return err
		}
	}
	return nil
}

// DSTopK returns the k tuples distributionally closest to q (DSQ-top-k),
// descending best-first into the child with the smallest distance lower
// bound so the pruning threshold tightens early.
//
//ucatlint:hotpath
func (r *Reader) DSTopK(q uda.UDA, k int, div uda.Divergence) ([]query.Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("pdrtree: non-positive k %d", k)
	}
	nk := query.NewNearestK(k)
	if err := r.dstopk(r.t.root, q, div, nk); err != nil {
		return nil, err
	}
	return nk.Results(), nil
}

func (r *Reader) dstopk(pid pager.PageID, q uda.UDA, div uda.Divergence, nk *query.NearestK) error {
	n, err := r.readNode(pid)
	if err != nil {
		return err
	}
	if n.leaf {
		for i, u := range n.udas {
			nk.Offer(query.Neighbor{TID: n.tids[i], Dist: div.Distance(q, u)})
		}
		return nil
	}
	type scored struct {
		child pager.PageID
		lb    float64
	}
	order := make([]scored, len(n.children))
	for i := range n.children {
		order[i] = scored{child: n.children[i], lb: r.t.distLowerBound(q, n.bounds[i], div)}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].lb < order[j].lb })
	for _, s := range order {
		if thr, full := nk.Threshold(); full && s.lb > thr {
			break // children are in ascending bound order
		}
		if err := r.dstopk(s.child, q, div, nk); err != nil {
			return err
		}
	}
	return nil
}

package pdrtree

import (
	"math/rand"
	"testing"

	"ucat/internal/dcache"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

// Benchmarks and allocation pins for the node-load hot path: uncached
// (decode on every read, leaf pages into reader scratch) versus cached
// (decode once per (page, version), then serve the shared immutable node).
// These run under `make bench-smoke`, so a regression in either path shows
// up in CI as changed allocs/op.

// benchTreeLeaf builds a small tree and returns it plus the page id of its
// leftmost leaf (the node kind whose decode cost dominates queries).
func benchTreeLeaf(b *testing.B) (*Tree, pager.PageID) {
	b.Helper()
	tr, err := New(pager.NewPool(pager.NewStore(), 4096), Config{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(uint32(i), uda.Random(r, 64, 4)); err != nil {
			b.Fatalf("Insert(%d): %v", i, err)
		}
	}
	pid := tr.root
	for {
		n, err := tr.readNodeVia(tr.pool, pid)
		if err != nil {
			b.Fatalf("readNodeVia(%d): %v", pid, err)
		}
		if n.leaf {
			return tr, pid
		}
		pid = n.children[0]
	}
}

// BenchmarkReadNodeUncached is the no-cache leaf load: one pool fetch plus a
// full decode into reader-local scratch. The scratch/arena reuse keeps the
// warm path at exactly 1 alloc/op — the *pager.Page pin handle every honest
// fetch returns; the decode itself adds zero. If this benchmark reports
// more, the scratch path regressed — fix the regression, do not accept the
// new number.
func BenchmarkReadNodeUncached(b *testing.B) {
	tr, leaf := benchTreeLeaf(b)
	rd := tr.Reader(nil)
	if _, err := rd.readNode(leaf); err != nil { // warm scratch + arena
		b.Fatalf("readNode: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.readNode(leaf); err != nil {
			b.Fatalf("readNode: %v", err)
		}
	}
}

// BenchmarkReadNodeCached is the decode-cache leaf load: the same pool fetch
// (the I/O metric must not move), then a cache hit instead of a decode. Warm
// hits allocate only the fetch's pin handle (1 alloc/op) and skip the decode
// entirely; if this reports more, the hit path regressed.
func BenchmarkReadNodeCached(b *testing.B) {
	tr, leaf := benchTreeLeaf(b)
	tr.SetCache(dcache.New(0))
	rd := tr.Reader(nil)
	if _, err := rd.readNode(leaf); err != nil { // populate the cache entry
		b.Fatalf("readNode: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.readNode(leaf); err != nil {
			b.Fatalf("readNode: %v", err)
		}
	}
}

// TestReadNodeWarmAllocs pins both paths' warm allocation counts to exactly
// one — the *pager.Page handle returned by the fetch the I/O accounting
// requires; the decode contributes zero (DESIGN.md §15). A failure means a
// decode or cache-hit path started allocating; fix the regression, do not
// relax the pin.
func TestReadNodeWarmAllocs(t *testing.T) {
	for _, cached := range []bool{false, true} {
		tr, err := New(pager.NewPool(pager.NewStore(), 4096), Config{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			if err := tr.Insert(uint32(i), uda.Random(r, 64, 4)); err != nil {
				t.Fatalf("Insert(%d): %v", i, err)
			}
		}
		if cached {
			tr.SetCache(dcache.New(0))
		}
		pid := tr.root
		for {
			n, err := tr.readNodeVia(tr.pool, pid)
			if err != nil {
				t.Fatalf("readNodeVia: %v", err)
			}
			if n.leaf {
				break
			}
			pid = n.children[0]
		}
		rd := tr.Reader(nil)
		if _, err := rd.readNode(pid); err != nil { // warm
			t.Fatalf("readNode: %v", err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := rd.readNode(pid); err != nil {
				t.Fatalf("readNode: %v", err)
			}
		})
		if allocs > 1 {
			t.Errorf("cached=%v: warm readNode allocates %.1f allocs/op, want ≤1 (the fetch's page handle)", cached, allocs)
		}
	}
}

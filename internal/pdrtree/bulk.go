package pdrtree

import (
	"fmt"
	"sort"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

// Tuple pairs a tuple id with its uncertain attribute value, for bulk
// loading.
type Tuple struct {
	TID   uint32
	Value uda.UDA
}

// BulkLoad builds a tree over the tuples in one bottom-up pass. Tuples are
// ordered by their most probable item (mode) so distributions that would
// answer the same equality queries land on the same leaves — a cheap
// clustering that approximates what incremental divergence-driven insertion
// achieves — and leaves and inner nodes are packed to ~90% of the page,
// yielding a smaller tree than repeated Insert.
func BulkLoad(pool *pager.Pool, cfg Config, tuples []Tuple) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(tuples) == 0 {
		return New(pool, cfg)
	}
	for _, tp := range tuples {
		if err := tp.Value.Validate(); err != nil {
			return nil, fmt.Errorf("pdrtree: bulk load tuple %d: %w", tp.TID, err)
		}
		if leafRecordSize(tp.Value) > maxRecord {
			return nil, fmt.Errorf("pdrtree: bulk load tuple %d: record of %d bytes exceeds maximum %d",
				tp.TID, leafRecordSize(tp.Value), maxRecord)
		}
	}
	t := &Tree{pool: pool, cfg: cfg, size: len(tuples)}

	// Order by (mode item, descending mode probability, tid).
	order := make([]int, len(tuples))
	for i := range order {
		order[i] = i
	}
	mode := make([]uda.Pair, len(tuples))
	for i, tp := range tuples {
		if tp.Value.IsEmpty() {
			mode[i] = uda.Pair{}
			continue
		}
		item, prob, _ := tp.Value.Mode()
		mode[i] = uda.Pair{Item: item, Prob: prob}
	}
	sort.Slice(order, func(a, b int) bool {
		ma, mb := mode[order[a]], mode[order[b]]
		if ma.Item != mb.Item {
			return ma.Item < mb.Item
		}
		if ma.Prob != mb.Prob { //ucatlint:ignore floatcmp exact tie-break for a deterministic sort order
			return ma.Prob > mb.Prob
		}
		return tuples[order[a]].TID < tuples[order[b]].TID
	})

	// Pack leaves to ~90%.
	budget := payload * 9 / 10
	type ref struct {
		pid   pager.PageID
		bound uda.Vector
	}
	var level []ref
	leaf := &node{leaf: true}
	flushLeaf := func() error {
		if len(leaf.tids) == 0 {
			return nil
		}
		pg, err := pool.NewPage()
		if err != nil {
			return err
		}
		pid := pg.ID
		pg.Unpin(true)
		if err := t.writeNode(pid, leaf); err != nil {
			return err
		}
		level = append(level, ref{pid: pid, bound: t.leafBound(leaf)})
		leaf = &node{leaf: true}
		return nil
	}
	used := 0
	for _, i := range order {
		tp := tuples[i]
		sz := leafRecordSize(tp.Value)
		if used+sz > budget && len(leaf.tids) > 0 {
			if err := flushLeaf(); err != nil {
				return nil, err
			}
			used = 0
		}
		leaf.tids = append(leaf.tids, tp.TID)
		leaf.udas = append(leaf.udas, tp.Value)
		used += sz
	}
	if err := flushLeaf(); err != nil {
		return nil, err
	}

	// Build inner levels, packing entries by encoded size.
	for len(level) > 1 {
		var next []ref
		inner := &node{}
		used := 0
		flushInner := func() error {
			if len(inner.children) == 0 {
				return nil
			}
			pg, err := pool.NewPage()
			if err != nil {
				return err
			}
			pid := pg.ID
			pg.Unpin(true)
			if err := t.writeNode(pid, inner); err != nil {
				return err
			}
			next = append(next, ref{pid: pid, bound: t.innerBound(inner)})
			inner = &node{}
			return nil
		}
		for _, c := range level {
			sz := 4 + 2 + boundaryEncodedSize(c.bound, cfg)
			if used+sz > budget && len(inner.children) > 0 {
				if err := flushInner(); err != nil {
					return nil, err
				}
				used = 0
			}
			inner.children = append(inner.children, c.pid)
			inner.bounds = append(inner.bounds, c.bound)
			used += sz
		}
		if err := flushInner(); err != nil {
			return nil, err
		}
		if len(next) >= len(level) {
			return nil, fmt.Errorf("pdrtree: bulk load cannot reduce %d nodes (boundaries too wide; enable compression)", len(level))
		}
		level = next
	}
	t.root = level[0].pid
	return t, nil
}

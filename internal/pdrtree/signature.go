package pdrtree

import (
	"fmt"
	"sort"

	"ucat/internal/uda"
)

// LearnSignature builds an item→bucket map for signature compression from a
// data sample. The paper leaves the fold function f : D → C open, noting
// that "good correlation detection and clustering methods ensure meaningful
// f and C"; the default f(d) = d mod |C| folds arbitrary items together, so
// a rarely-probable item that shares a bucket with a frequently-high item
// inherits its large maximum and every query on it loses pruning power.
//
// The learned map instead groups items whose observed maximum probabilities
// are similar: the signature value of a bucket (the max of its members) then
// over-estimates each member by as little as possible. This is optimal 1-D
// clustering by sorting — items are ordered by their observed maximum and
// cut into |C| contiguous, population-balanced runs.
//
// Items never seen in the sample carry no evidence; they fall back to the
// default mod fold so they cannot crowd the observed items' buckets. The
// returned slice has length domain; entry d is the bucket of item d.
func LearnSignature(sample []uda.UDA, domain, buckets int) ([]uint32, error) {
	if domain <= 0 || buckets <= 0 {
		return nil, fmt.Errorf("pdrtree: invalid signature dimensions %d/%d", domain, buckets)
	}
	if buckets > domain {
		buckets = domain
	}
	maxProb := make([]float64, domain)
	seen := make([]bool, domain)
	for _, u := range sample {
		for _, p := range u.Pairs() {
			if int(p.Item) >= domain {
				return nil, fmt.Errorf("pdrtree: sample item %d outside domain %d", p.Item, domain)
			}
			seen[p.Item] = true
			if p.Prob > maxProb[p.Item] {
				maxProb[p.Item] = p.Prob
			}
		}
	}
	var order []int
	for i := 0; i < domain; i++ {
		if seen[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if maxProb[order[a]] != maxProb[order[b]] { //ucatlint:ignore floatcmp exact tie-break for a deterministic sort order
			return maxProb[order[a]] < maxProb[order[b]]
		}
		return order[a] < order[b]
	})
	m := make([]uint32, domain)
	for i := 0; i < domain; i++ {
		if !seen[i] {
			m[i] = uint32(i % buckets) // no evidence: default fold
		}
	}
	for rank, item := range order {
		m[item] = uint32(rank * buckets / len(order))
	}
	return m, nil
}

package dcache

import (
	"fmt"
	"sync"
	"testing"

	"ucat/internal/obs"
	"ucat/internal/pager"
)

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, 0, "decoded-1", 100)
	v, ok := c.Get(1, 0)
	if !ok || v.(string) != "decoded-1" {
		t.Fatalf("Get(1,0) = %v,%v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
}

// TestVersionInvalidation is the whole point of the design: after a writer
// bumps the version, the old entry is unreachable and the new version
// misses until re-decoded.
func TestVersionInvalidation(t *testing.T) {
	c := New(1 << 20)
	c.Put(7, 3, "old", 10)
	if _, ok := c.Get(7, 4); ok {
		t.Fatal("stale entry served for newer version")
	}
	if _, ok := c.Get(7, 3); !ok {
		t.Fatal("entry for the decoded version should still hit")
	}
	c.Put(7, 4, "new", 10)
	if v, _ := c.Get(7, 4); v.(string) != "new" {
		t.Fatalf("Get(7,4) = %v", v)
	}
}

func TestRePutRefreshes(t *testing.T) {
	c := New(1 << 20)
	c.Put(1, 1, "a", 10)
	c.Put(1, 1, "b", 30)
	v, ok := c.Get(1, 1)
	if !ok || v.(string) != "b" {
		t.Fatalf("Get = %v,%v, want b", v, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 30 {
		t.Fatalf("stats after re-put: %+v", st)
	}
}

// TestEvictionBounded fills one shard past its budget and checks CLOCK
// eviction keeps bytes under the cap while the most recently touched
// entries survive.
func TestEvictionBounded(t *testing.T) {
	c := New(8 * 100) // 100 bytes per shard
	// All keys with the same pid land in one shard; use versions as the
	// distinguishing key (pid fixed → one shard exercises the clock).
	for v := uint64(0); v < 20; v++ {
		c.Put(5, v, v, 30) // shard fits 3 at a time
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("bytes %d exceed shard budget 100", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	if st.Entries == 0 {
		t.Fatal("cache emptied itself")
	}
	// The newest entry must have survived (it was just inserted).
	if _, ok := c.Get(5, 19); !ok {
		t.Fatal("most recent insert was evicted")
	}
}

func TestOversizeObjectNotCached(t *testing.T) {
	c := New(8 * 100)
	c.Put(5, 0, "big", 1000)
	if _, ok := c.Get(5, 0); ok {
		t.Fatal("object larger than shard budget was cached")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after oversize put: %+v", st)
	}
}

// TestNilCache pins the disabled path: a nil *Cache misses and drops
// without branching at call sites.
func TestNilCache(t *testing.T) {
	var c *Cache
	c.Put(1, 0, "x", 10)
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("nil cache hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	c.Instrument(obs.NewRegistry()) // must not panic
}

func TestInstrumentMirrorsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(1 << 20)
	c.Instrument(reg)
	c.Get(1, 0) // miss
	c.Put(1, 0, "x", 10)
	c.Get(1, 0) // hit
	if got := reg.Counter("ucat_dcache_hits_total").Value(); got != 1 {
		t.Fatalf("hits counter = %d, want 1", got)
	}
	if got := reg.Counter("ucat_dcache_misses_total").Value(); got != 1 {
		t.Fatalf("misses counter = %d, want 1", got)
	}
}

func TestConcurrent(t *testing.T) {
	c := New(64 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				pid := pager.PageID(i%37 + 1)
				ver := uint64(i % 3)
				if v, ok := c.Get(pid, ver); ok {
					want := fmt.Sprintf("%d@%d", pid, ver)
					if v.(string) != want {
						t.Errorf("goroutine %d: Get(%d,%d) = %q, want %q", g, pid, ver, v, want)
						return
					}
				} else {
					c.Put(pid, ver, fmt.Sprintf("%d@%d", pid, ver), 64)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 64<<10 {
		t.Fatalf("budget exceeded: %+v", st)
	}
}

// TestResize: shrinking evicts down to the new budget, growing never evicts,
// and SizeForFrames keeps its floor.
func TestResize(t *testing.T) {
	c := New(shards * 1000) // 1000 bytes per stripe
	// Ten 400-byte objects spread across stripes.
	for pid := pager.PageID(1); pid <= 10; pid++ {
		c.Put(pid, 0, "v", 400)
	}
	before := c.Stats()
	c.Resize(shards * 100) // 100 bytes per stripe: every 400-byte entry must go
	st := c.Stats()
	if st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("after shrink below entry size: %+v, want empty", st)
	}
	if st.Evictions != before.Evictions+uint64(before.Entries) {
		t.Errorf("evictions = %d, want %d", st.Evictions, before.Evictions+uint64(before.Entries))
	}
	if got := c.MaxBytes(); got != shards*100 {
		t.Errorf("MaxBytes() = %d, want %d", got, shards*100)
	}
	// Growing re-admits without evicting.
	c.Resize(shards * 1000)
	c.Put(1, 0, "v", 400)
	c.Put(2, 0, "v", 400)
	ev := c.Stats().Evictions
	c.Resize(shards * 4000)
	if got := c.Stats(); got.Entries != 2 || got.Evictions != ev {
		t.Errorf("grow evicted: %+v (evictions before %d)", got, ev)
	}
	var nilc *Cache
	nilc.Resize(1 << 20) // must not panic
	if nilc.MaxBytes() != 0 {
		t.Error("nil cache MaxBytes != 0")
	}
}

// TestSizeForFrames: page-coherent sizing with the DefaultBytes floor.
func TestSizeForFrames(t *testing.T) {
	if got := SizeForFrames(100); got != DefaultBytes {
		t.Errorf("SizeForFrames(100) = %d, want floor %d", got, DefaultBytes)
	}
	want := int64(4096) * pager.PageSize
	if got := SizeForFrames(4096); got != want {
		t.Errorf("SizeForFrames(4096) = %d, want %d", got, want)
	}
}

// Package dcache provides a size-bounded, sharded cache of decoded page
// objects layered over the buffer pool. The paper's cost model counts disk
// I/Os (pool misses), but wall-clock profiles show queries spend most of
// their CPU re-deserializing the same hot pages on every traversal. The
// decode cache removes that re-decode cost WITHOUT perturbing the I/O
// figures: callers always Fetch the page through their pool view first (so
// every read and hit is counted exactly as before) and only then consult the
// cache to skip the deserialization step.
//
// Invalidation is by version, not by notification. Entries are keyed by
// (PageID, store version); pager.Store gives every page a monotonic version
// counter that Page.Unpin(dirty=true) bumps (see Store.BumpVersion). A
// writer therefore needs no cache code at all: after any mutation the page's
// version has moved, the old (pid, version) key can never be looked up
// again, and the stale entry ages out through normal CLOCK eviction.
// Versions never rewind — not even across Free/Allocate of a recycled page
// id — so a hit is always a decode of the page's current bytes.
//
// Cached values are shared across queries and goroutines and MUST be treated
// as immutable by all readers. Write paths that mutate decoded nodes in
// place (for example pdrtree splits) must bypass the cache entirely.
package dcache

import (
	"sync"
	"sync/atomic"

	"ucat/internal/obs"
	"ucat/internal/pager"
)

// DefaultBytes is the default capacity: enough for the hot paths of the
// paper's workloads (a few thousand decoded 8 KB pages) while staying small
// next to the relation itself.
const DefaultBytes = 8 << 20

// shards is the number of lock stripes. Keys map to shards by a fixed hash
// of the page id, mirroring pager.Pool's striping, so concurrent queries
// touching different pages rarely contend.
const shards = 8

// Key identifies one decoded snapshot of a page: the page id plus the store
// version current when the bytes were decoded.
type Key struct {
	PID pager.PageID
	Ver uint64
}

type entry struct {
	key  Key
	val  any
	size int64
	ref  bool // CLOCK reference bit (second chance)
	live bool
}

type shard struct {
	mu      sync.Mutex
	entries []entry
	table   map[Key]int // key → entry index
	freeIdx []int       // dead entry slots available for reuse
	hand    int         // CLOCK hand
	bytes   int64       // sum of live entry sizes
	max     int64       // byte budget for this shard

	_ [64]byte // keep shard mutexes on separate cache lines
}

// Stats is a snapshot of the cache counters. Hits/Misses/Evictions are
// lifetime totals; Entries/Bytes are current occupancy.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a sharded (PageID, version) → decoded-object cache with CLOCK
// eviction and a byte budget. The zero value is not usable; call New. A nil
// *Cache is valid and behaves as an always-miss, drop-on-put cache, so call
// sites need no "is caching enabled" branches.
//
// Cache is safe for concurrent use.
type Cache struct {
	sh [shards]shard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	// Optional obs mirrors (set by Instrument); nil when not instrumented.
	obsHits      *obs.Counter
	obsMisses    *obs.Counter
	obsEvictions *obs.Counter
}

// New creates a cache with the given byte budget (DefaultBytes if
// maxBytes <= 0). The budget is split evenly across the lock stripes.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultBytes
	}
	c := &Cache{}
	per := maxBytes / shards
	if per < 1 {
		per = 1
	}
	for i := range c.sh {
		c.sh[i].table = make(map[Key]int)
		c.sh[i].max = per
	}
	return c
}

// SizeForFrames returns the decode-cache budget coherent with a buffer pool
// of the given frame count: one decoded object per resident page (decoded
// nodes are about the size of the 8 KB page they came from), with
// DefaultBytes as the floor so small pools keep the decode cache useful.
// The serving layer uses it to grow the relation's cache alongside the
// shared pool — a pool that keeps thousands of pages hot is wasted if their
// decoded forms still thrash an 8 MB cache.
func SizeForFrames(frames int) int64 {
	b := int64(frames) * pager.PageSize
	if b < DefaultBytes {
		return DefaultBytes
	}
	return b
}

// MaxBytes returns the cache's configured byte budget (summed over the lock
// stripes, so it may round down from the New/Resize argument by up to
// shards-1 bytes). A nil cache has no budget.
func (c *Cache) MaxBytes() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.sh {
		sh := &c.sh[i]
		sh.mu.Lock()
		total += sh.max
		sh.mu.Unlock()
	}
	return total
}

// Resize changes the cache's byte budget, re-splitting it evenly across the
// lock stripes and evicting CLOCK-style until each stripe fits its new
// budget. Growing never evicts. Resize on a nil cache is a no-op. Safe for
// concurrent use with Get/Put (stripes are resized one at a time).
func (c *Cache) Resize(maxBytes int64) {
	if c == nil {
		return
	}
	if maxBytes <= 0 {
		maxBytes = DefaultBytes
	}
	per := maxBytes / shards
	if per < 1 {
		per = 1
	}
	for i := range c.sh {
		sh := &c.sh[i]
		sh.mu.Lock()
		sh.max = per
		if sh.bytes > sh.max {
			c.evictUntil(sh, sh.max)
		}
		sh.mu.Unlock()
	}
}

// Instrument mirrors the cache's counters into the registry as
// ucat_dcache_{hits,misses,evictions}_total, so they show up in /metrics
// alongside the pager's I/O counters. Call once, before the cache is shared.
func (c *Cache) Instrument(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.obsHits = reg.Counter("ucat_dcache_hits_total")
	c.obsMisses = reg.Counter("ucat_dcache_misses_total")
	c.obsEvictions = reg.Counter("ucat_dcache_evictions_total")
}

func (c *Cache) shardFor(pid pager.PageID) *shard {
	h := uint64(pid) * 0x9E3779B97F4A7C15
	return &c.sh[(h>>32)%shards]
}

// Get returns the decoded object cached for (pid, ver), if present. The
// returned value is shared: callers must not mutate it. A nil cache always
// misses.
func (c *Cache) Get(pid pager.PageID, ver uint64) (any, bool) {
	if c == nil {
		return nil, false
	}
	k := Key{PID: pid, Ver: ver}
	sh := c.shardFor(pid)
	sh.mu.Lock()
	idx, ok := sh.table[k]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		if c.obsMisses != nil {
			c.obsMisses.Inc()
		}
		return nil, false
	}
	e := &sh.entries[idx]
	e.ref = true
	v := e.val
	sh.mu.Unlock()
	c.hits.Add(1)
	if c.obsHits != nil {
		c.obsHits.Inc()
	}
	return v, true
}

// Put stores the decoded object for (pid, ver), charging it size bytes
// against the budget and evicting older entries CLOCK-style as needed.
// Objects larger than a shard's whole budget are not cached. Put on a nil
// cache is a no-op. Re-putting an existing key refreshes its value.
func (c *Cache) Put(pid pager.PageID, ver uint64, val any, size int64) {
	if c == nil {
		return
	}
	if size < 1 {
		size = 1
	}
	k := Key{PID: pid, Ver: ver}
	sh := c.shardFor(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if size > sh.max {
		return // would evict the whole shard for one object
	}
	if idx, ok := sh.table[k]; ok {
		e := &sh.entries[idx]
		sh.bytes += size - e.size
		e.val = val
		e.size = size
		e.ref = true
		c.evictLocked(sh, k)
		return
	}
	// Make room first so the new entry cannot be its own victim.
	c.evictUntil(sh, sh.max-size)
	idx := -1
	if n := len(sh.freeIdx); n > 0 {
		idx = sh.freeIdx[n-1]
		sh.freeIdx = sh.freeIdx[:n-1]
	} else {
		sh.entries = append(sh.entries, entry{})
		idx = len(sh.entries) - 1
	}
	sh.entries[idx] = entry{key: k, val: val, size: size, ref: true, live: true}
	sh.table[k] = idx
	sh.bytes += size
}

// evictLocked trims the shard back under budget, sparing keep. Must be
// called with sh.mu held.
func (c *Cache) evictLocked(sh *shard, keep Key) {
	if sh.bytes <= sh.max {
		return
	}
	c.evictUntilSparing(sh, sh.max, &keep)
}

// evictUntil evicts CLOCK-style until the shard's bytes are <= limit.
// Must be called with sh.mu held.
func (c *Cache) evictUntil(sh *shard, limit int64) {
	c.evictUntilSparing(sh, limit, nil)
}

func (c *Cache) evictUntilSparing(sh *shard, limit int64, keep *Key) {
	if limit < 0 {
		limit = 0
	}
	n := len(sh.entries)
	if n == 0 {
		return
	}
	// Two full sweeps suffice: the first clears reference bits, the second
	// takes every remaining candidate. Guard the loop anyway so a shard full
	// of spared entries terminates.
	for sweep := 0; sh.bytes > limit && sweep < 2*n; sweep++ {
		if sh.hand >= len(sh.entries) {
			sh.hand = 0
		}
		e := &sh.entries[sh.hand]
		idx := sh.hand
		sh.hand++
		if !e.live {
			continue
		}
		if keep != nil && e.key == *keep {
			continue
		}
		if e.ref {
			e.ref = false // second chance
			continue
		}
		delete(sh.table, e.key)
		sh.bytes -= e.size
		*e = entry{}
		sh.freeIdx = append(sh.freeIdx, idx)
		c.evictions.Add(1)
		if c.obsEvictions != nil {
			c.obsEvictions.Inc()
		}
	}
}

// Stats returns a snapshot of the counters and current occupancy. Counter
// loads are atomic; occupancy is summed shard by shard under each lock.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.sh {
		sh := &c.sh[i]
		sh.mu.Lock()
		st.Bytes += sh.bytes
		st.Entries += len(sh.table)
		sh.mu.Unlock()
	}
	return st
}

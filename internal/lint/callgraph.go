// Interprocedural layer: a module-wide static call graph.
//
// The single-function checks ucatlint started with cannot see the properties
// the concurrent serving path now depends on — lock acquisition orderings
// that only deadlock across a call chain, a context dropped two frames above
// the page fetch it was supposed to bound, an allocation introduced three
// calls below an annotated hot loop. This file gives checks a whole-module
// view: every function declaration becomes a node, every call expression a
// site with its possible callees resolved.
//
// Resolution is deliberately conservative (a may-call analysis):
//
//   - direct calls and method calls on concrete receivers resolve to exactly
//     the declared function;
//   - interface method calls resolve to every module method with the same
//     name whose receiver type satisfies the interface (type-set matching
//     via types.Implements);
//   - calls through function values resolve to every address-taken module
//     function with an identical signature — a function whose identifier is
//     only ever mentioned in call position can never hide behind a value;
//   - function literals are not graph nodes: their bodies belong to the
//     enclosing declaration, so call sites inside a closure are attributed
//     to the function that syntactically contains it. This over-approximates
//     (the closure may run later, elsewhere) but never misses an edge from
//     the code that created the closure.
//
// Soundness caveats (DESIGN.md §17): calls made by package-level variable
// initializers have no enclosing declaration and carry no edges; calls that
// leave the module (stdlib callbacks like sort.Slice) re-enter only through
// the function-literal attribution above; reflection is invisible. Every
// caveat widens or narrows the graph in the conservative direction for the
// shipped checks, which all treat "no edge" as "nothing to report".
package lint

import (
	"go/ast"
	"go/types"
)

// Program is the whole-module view handed to interprocedural checks: every
// loaded package plus the call graph spanning them.
type Program struct {
	Pkgs  []*Package
	Graph *CallGraph
}

// NewProgram builds the call graph over the given packages. The packages
// must share one token.FileSet and importer (as the Loader guarantees), so
// type objects are identical across package boundaries.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs, Graph: buildCallGraph(pkgs)}
}

// FuncNode is one declared function or method in the module.
type FuncNode struct {
	Fn   *types.Func   // the declared object
	Decl *ast.FuncDecl // its syntax, Body possibly nil (external linkname stubs)
	Pkg  *Package      // the package declaring it

	// Sites are the call expressions inside Decl (including inside function
	// literals it contains), in source order.
	Sites []*CallSite

	// Callers lists every node with at least one site that may call this
	// one, deduplicated, in deterministic build order.
	Callers []*FuncNode
}

// Name returns the node's diagnostic-friendly name, qualified by receiver
// for methods ("(*Pool).Fetch") and bare for functions ("batchKey").
func (n *FuncNode) Name() string {
	if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, tn, ok := namedOrPointerTo(sig.Recv().Type()); ok {
			return "(" + tn + ")." + n.Fn.Name()
		}
	}
	return n.Fn.Name()
}

// CallSite is one call expression and its resolved module-internal callees.
// Calls that leave the module (stdlib, builtins, conversions) have no
// candidates; checks that care about them inspect the syntax directly.
type CallSite struct {
	Call    *ast.CallExpr
	Callees []*FuncNode // possible targets, deterministic order
}

// CallGraph is the module-wide may-call relation.
type CallGraph struct {
	nodes  []*FuncNode // deterministic (package, file, declaration) order
	byFunc map[*types.Func]*FuncNode
	siteOf map[*ast.CallExpr]*CallSite
}

// Nodes returns every function in deterministic order.
func (g *CallGraph) Nodes() []*FuncNode { return g.nodes }

// NodeOf returns the node for fn, or nil when fn is not declared in the
// module (stdlib, interface methods without bodies).
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode { return g.byFunc[fn] }

// SiteOf returns the call site for a call expression inside a module
// function, or nil for calls the graph does not track (package-level
// initializer expressions).
func (g *CallGraph) SiteOf(call *ast.CallExpr) *CallSite { return g.siteOf[call] }

// buildCallGraph runs the two construction passes: node discovery plus
// address-taken marking, then edge resolution.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byFunc: make(map[*types.Func]*FuncNode),
		siteOf: make(map[*ast.CallExpr]*CallSite),
	}
	// Pass 1: one node per function declaration, in deterministic order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if isTestFile(pkg, f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes = append(g.nodes, n)
				g.byFunc[fn] = n
			}
		}
	}
	addrTaken := g.collectAddressTaken(pkgs)
	// Pass 2: resolve every call site inside every node.
	for _, n := range g.nodes {
		if n.Decl.Body == nil {
			continue
		}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			site := &CallSite{Call: call, Callees: g.resolve(n.Pkg, call, addrTaken)}
			n.Sites = append(n.Sites, site)
			g.siteOf[call] = site
			return true
		})
	}
	// Reverse edges, deduplicated.
	seen := make(map[[2]*FuncNode]bool)
	for _, caller := range g.nodes {
		for _, site := range caller.Sites {
			for _, callee := range site.Callees {
				if k := [2]*FuncNode{caller, callee}; !seen[k] {
					seen[k] = true
					callee.Callers = append(callee.Callers, caller)
				}
			}
		}
	}
	return g
}

// collectAddressTaken returns the module functions whose identifier appears
// outside call position — passed as a value, assigned, or captured as a
// method value — and which a call through a function value could therefore
// reach.
func (g *CallGraph) collectAddressTaken(pkgs []*Package) map[*FuncNode]bool {
	taken := make(map[*FuncNode]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if isTestFile(pkg, f) {
				continue
			}
			// Idents in call position: Fun itself or the Sel of a selector Fun.
			inCallPos := make(map[*ast.Ident]bool)
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					inCallPos[fun] = true
				case *ast.SelectorExpr:
					inCallPos[fun.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(node ast.Node) bool {
				id, ok := node.(*ast.Ident)
				if !ok || inCallPos[id] {
					return true
				}
				if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
					if n := g.byFunc[fn]; n != nil {
						taken[n] = true
					}
				}
				return true
			})
		}
	}
	return taken
}

// resolve returns the possible module-internal targets of one call.
func (g *CallGraph) resolve(pkg *Package, call *ast.CallExpr, addrTaken map[*FuncNode]bool) []*FuncNode {
	// Conversions are not calls.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	if fn := calleeFunc(pkg, call); fn != nil {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				return g.implementationsOf(fn.Name(), iface)
			}
		}
		if n := g.byFunc[fn]; n != nil {
			return []*FuncNode{n}
		}
		return nil // external (stdlib) function
	}
	// Not a named function: a builtin, a function literal invoked in place
	// (its body is walked as part of the enclosing function anyway), or a
	// call through a function value.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := pkg.Info.Uses[fun].(*types.Builtin); ok {
			return nil
		}
	case *ast.FuncLit:
		_ = fun
		return nil
	}
	sig, ok := pkg.Info.TypeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*FuncNode
	for _, n := range g.nodes {
		if addrTaken[n] && identicalCallSig(n.Fn.Type().(*types.Signature), sig) {
			out = append(out, n)
		}
	}
	return out
}

// implementationsOf returns every module method named name whose receiver
// type satisfies iface — the conservative type-set resolution of an
// interface method call.
func (g *CallGraph) implementationsOf(name string, iface *types.Interface) []*FuncNode {
	var out []*FuncNode
	for _, n := range g.nodes {
		if n.Fn.Name() != name {
			continue
		}
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		recv := sig.Recv().Type()
		if types.Implements(recv, iface) {
			out = append(out, n)
			continue
		}
		if _, isPtr := recv.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(recv), iface) {
			out = append(out, n)
		}
	}
	return out
}

// identicalCallSig reports whether two signatures describe the same call
// shape, ignoring receivers (a method value's type already excludes its
// receiver).
func identicalCallSig(a, b *types.Signature) bool {
	return a.Variadic() == b.Variadic() &&
		types.Identical(a.Params(), b.Params()) &&
		types.Identical(a.Results(), b.Results())
}

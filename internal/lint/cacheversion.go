package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CacheVersionCheck guards the decode cache's only coherence rule. Cached
// decoded objects (tuplestore pages, B-tree leaves, PDR-tree nodes) are
// keyed by (page id, store version), and the version is bumped exactly by
// the dirty-unpin path: Page.Unpin(true). A function that writes a page's
// bytes but only ever calls Unpin(false) publishes the mutation without the
// bump — every decode cache over that page keeps serving the stale image
// forever, silently corrupting query answers.
//
// The heuristic, per function in every package except pager (which owns the
// protocol): detect direct page-byte writes — an index or slice assignment
// through pg.Data (or a local alias of it), a copy/clear whose destination
// is page data, or an encoding/binary Put* whose destination is page data —
// and report when the function also calls Unpin on a page but every such
// call passes the literal false. Functions whose Unpin argument is a
// variable are not reported (the dirty path may exist dynamically), and
// functions that write but never Unpin are out of scope: ownership of the
// pin (and of the dirty decision) lies with their caller, which the
// single-function heuristic cannot see.
func CacheVersionCheck() *Check {
	return &Check{
		Name: "cacheversion",
		Doc:  "flag functions that write page bytes but unpin with literal false only, skipping the version bump the decode cache relies on",
		Run:  runCacheVersion,
	}
}

func runCacheVersion(pkg *Package) []Diagnostic {
	if pkg.Path == pagerPath {
		// The pager implements the version protocol; its internal writes
		// (write-back, snapshot restore) are deliberately outside it.
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, cacheVersionFunc(pkg, fd)...)
		}
	}
	return diags
}

// isPageTyped reports whether the expression's static type is (a pointer
// to) pager.Page.
func isPageTyped(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	path, name, ok := namedOrPointerTo(tv.Type)
	return ok && path == pagerPath && name == "Page"
}

// cacheVersionFunc analyzes one function declaration.
func cacheVersionFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	// Aliases of page data: data := pg.Data (possibly resliced, possibly an
	// alias of an alias — two passes reach fixpoint for chains of two, which
	// is as deep as hand-written pager code goes).
	aliases := make(map[types.Object]bool)

	var isDataExpr func(e ast.Expr) bool
	isDataExpr = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			return x.Sel.Name == "Data" && isPageTyped(pkg, x.X)
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			return obj != nil && aliases[obj]
		case *ast.IndexExpr:
			return isDataExpr(x.X)
		case *ast.SliceExpr:
			return isDataExpr(x.X)
		default:
			return false
		}
	}

	collectAliases := func() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, rhs := range st.Rhs {
					if !isDataExpr(rhs) {
						continue
					}
					if ident, ok := st.Lhs[i].(*ast.Ident); ok {
						obj := pkg.Info.Defs[ident]
						if obj == nil {
							obj = pkg.Info.Uses[ident]
						}
						if obj != nil {
							aliases[obj] = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range st.Values {
					if i < len(st.Names) && isDataExpr(v) {
						if obj := pkg.Info.Defs[st.Names[i]]; obj != nil {
							aliases[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	collectAliases()
	collectAliases() // second pass catches alias-of-alias chains

	// Page-byte writes through the data expression.
	var writes []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
					if isDataExpr(l.X) {
						writes = append(writes, lhs)
					}
				}
			}
		case *ast.CallExpr:
			if len(st.Args) == 0 {
				return true
			}
			if fun, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pkg.Info.Uses[fun].(*types.Builtin); isBuiltin &&
					(fun.Name == "copy" || fun.Name == "clear") && isDataExpr(st.Args[0]) {
					writes = append(writes, st)
				}
				return true
			}
			if fn := calleeFunc(pkg, st); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "encoding/binary" &&
				strings.HasPrefix(fn.Name(), "Put") && isDataExpr(st.Args[0]) {
				writes = append(writes, st)
			}
		}
		return true
	})
	if len(writes) == 0 {
		return nil
	}

	// Unpin calls on page-typed receivers: every one must pass literal
	// false for the function to be reportable.
	sawUnpin := false
	cleanOnly := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Unpin" || !isPageTyped(pkg, sel.X) {
			return true
		}
		sawUnpin = true
		if len(call.Args) != 1 {
			return true
		}
		if ident, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if ident.Name == "false" {
				return true // clean unpin; keep looking for a dirty one
			}
		}
		cleanOnly = false // literal true, or a dynamic dirty flag
		return true
	})
	if !sawUnpin || !cleanOnly {
		return nil
	}
	return []Diagnostic{{
		Pos:   pkg.Fset.Position(writes[0].Pos()),
		Check: "cacheversion",
		Msg: fmt.Sprintf("%s writes page bytes but every Unpin passes false; Unpin(true) is what bumps the page version that invalidates decode-cache entries",
			fd.Name.Name),
	}}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// PoolViewCheck guards the concurrency model's injection boundary (DESIGN.md
// §13). Read-only query entry points — PETQ, PEQ, top-k, DSTQ and their
// window/multi variants — must execute against an injected pager.View so
// that N parallel workers can each bind a private pool view over the shared
// store, with independent I/O accounting. A query that reaches for the
// concrete *pager.Pool instead is welded to one shared cache: it still
// compiles, still returns correct results, and silently breaks both the
// per-query I/O metric and the determinism guarantee the parallel harness
// rests on.
//
// Two patterns are flagged, in any package outside internal/pager:
//
//   - a query entry point whose body calls Fetch on a concrete
//     (*)pager.Pool (calls through the pager.View interface are the
//     sanctioned path);
//   - a query entry point that declares a *pager.Pool parameter where the
//     pager.View interface would do.
//
// A function is considered a query entry point when its name contains one
// of the query-operator markers (petq, peq, topk, dstq — case-insensitive),
// which covers the exported API (PETQ, WindowTopK, DSTopK, MultiPETQ, …)
// and the unexported strategy twins (petq, nraTopK, scanPETQ, …) alike.
// Write-path code (Insert, splits, bulk load) legitimately owns a
// *pager.Pool and is not matched.
func PoolViewCheck() *Check {
	return &Check{
		Name: "poolview",
		Doc:  "flag query entry points that capture *pager.Pool directly instead of accepting a pager.View",
		Run:  runPoolView,
	}
}

// queryNameMarkers are the substrings (lowercased) that mark a function as
// part of the read-only query surface.
var queryNameMarkers = []string{"petq", "peq", "topk", "dstq"}

func isQueryEntryPoint(name string) bool {
	l := strings.ToLower(name)
	for _, m := range queryNameMarkers {
		if strings.Contains(l, m) {
			return true
		}
	}
	return false
}

func runPoolView(pkg *Package) []Diagnostic {
	if pkg.Path == pagerPath {
		return nil // the pool's own machinery may touch itself
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isQueryEntryPoint(fd.Name.Name) {
				continue
			}
			diags = append(diags, poolViewParams(pkg, fd)...)
			diags = append(diags, poolViewFetches(pkg, fd)...)
		}
	}
	return diags
}

// poolViewParams flags *pager.Pool parameters on a query entry point: the
// signature should accept the pager.View interface so callers can hand in a
// per-query view.
func poolViewParams(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	for _, field := range fd.Type.Params.List {
		t := pkg.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		path, name, ok := namedOrPointerTo(t)
		if !ok || path != pagerPath || name != "Pool" {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   pkg.Fset.Position(field.Type.Pos()),
			Check: "poolview",
			Msg: fmt.Sprintf("query entry point %s takes a *pager.Pool parameter; accept the pager.View interface so parallel readers can inject a private pool view",
				fd.Name.Name),
		})
	}
	return diags
}

// poolViewFetches flags Fetch calls on a concrete (*)pager.Pool inside a
// query entry point's body. Fetches through the pager.View interface resolve
// to the interface method and are not flagged.
func poolViewFetches(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Name() != "Fetch" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		path, name, ok := namedOrPointerTo(sig.Recv().Type())
		if !ok || path != pagerPath || name != "Pool" {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:   pkg.Fset.Position(call.Pos()),
			Check: "poolview",
			Msg: fmt.Sprintf("query entry point %s fetches through *pager.Pool directly; route page access through an injected pager.View",
				fd.Name.Name),
		})
		return true
	})
	return diags
}

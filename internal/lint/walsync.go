package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// walPath is the write-ahead-log package; its Append/Sync pair is the
// durability boundary every acknowledged write must cross.
const walPath = "ucat/internal/wal"

// WalSyncCheck enforces the durability contract of the write path
// (DURABILITY.md §4): a WAL append is not durable until a Sync covers it, so
// any function that appends records must itself reach a Sync call — through
// its own body or a callee — before it can return and let an acknowledgement
// escape. The bug it catches:
//
//	func (s *Server) handleIngest(...) {
//	        lsn, _, _ := s.wal.Append(rec)   // buffered, NOT durable
//	        writeJSON(w, ack{LSN: lsn})      // acked; a crash now loses it
//	}
//
// The check is deliberately stricter than "some caller syncs eventually":
// the append and the sync must be paired inside one function's dynamic
// extent (core.Live.Apply is the template — append, sync, only then
// publish), because a caller-side sync leaves every intermediate frame free
// to return an LSN that a crash can still erase. Reaching Sync is
// interprocedural (the call-graph ReachesAny bit, so delegating the sync to
// a helper is fine); the append being local is what pins the responsibility.
//
// The wal package itself is exempt: the log's internals buffer appends by
// design and Sync is the primitive under analysis.
func WalSyncCheck() *Check {
	return &Check{
		Name:       "walsync",
		Doc:        "a function appending WAL records must reach wal Sync before returning: un-synced appends must not become acknowledgements",
		Severity:   SeverityError,
		RunProgram: runWalSync,
	}
}

func runWalSync(prog *Program) []Diagnostic {
	g := prog.Graph

	reachesSync := g.ReachesAny(func(n *FuncNode) bool {
		return n.Decl.Body != nil && callsWalMethod(n, "Sync")
	})

	var diags []Diagnostic
	for _, n := range g.Nodes() {
		if n.Decl.Body == nil || n.Pkg.Path == walPath {
			continue
		}
		if reachesSync[n] {
			continue
		}
		for _, site := range n.Sites {
			if isWalMethod(n.Pkg, site.Call, "Append") {
				diags = append(diags, Diagnostic{
					Pos:   n.Pkg.Fset.Position(site.Call.Pos()),
					Check: "walsync",
					Msg: fmt.Sprintf("%s appends a WAL record but never reaches Sync: the append is not durable until synced, so no acknowledgement may escape this function (DURABILITY.md §4)",
						n.Name()),
				})
			}
		}
	}
	return diags
}

// callsWalMethod reports whether the function body contains a direct call to
// the named method on a wal-package type.
func callsWalMethod(n *FuncNode, name string) bool {
	found := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if ok && isWalMethod(n.Pkg, call, name) {
			found = true
		}
		return !found
	})
	return found
}

// isWalMethod reports whether call invokes a method with the given name
// declared on a type (or interface) in the wal package.
func isWalMethod(pkg *Package, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if _, ok := recv.Underlying().(*types.Interface); ok {
		return fn.Pkg() != nil && fn.Pkg().Path() == walPath
	}
	path, _, ok := namedOrPointerTo(recv)
	return ok && path == walPath
}

package lint

import "testing"

func TestCtxFlowDroppedContextChain(t *testing.T) {
	// The seeded true positive from the issue: Lookup receives a context and
	// reaches pager Fetch two frames down, but the context stops at Lookup's
	// signature. Neither Lookup nor get mentions Fetch directly — only the
	// call graph connects them.
	diags := runOn(t, CtxFlowCheck(), "snip/drop", `package drop

import (
	"context"

	"ucat/internal/pager"
)

type reader struct{ pool *pager.Pool }

func (r *reader) get(pid pager.PageID) error {
	p, err := r.pool.Fetch(pid)
	if err != nil {
		return err
	}
	p.Unpin(false)
	return nil
}

func (r *reader) Lookup(ctx context.Context, pid pager.PageID) error {
	return r.get(pid)
}
`)
	expect(t, diags, []string{
		"(reader).Lookup receives a context.Context but its call chain reaches pager Fetch without it",
	})
}

func TestCtxFlowBackgroundSubstitution(t *testing.T) {
	diags := runOn(t, CtxFlowCheck(), "snip/bg", `package bg

import (
	"context"

	"ucat/internal/pager"
)

type reader struct{ pool *pager.Pool }

func (r *reader) getCtx(ctx context.Context, pid pager.PageID) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	_, err := r.pool.Fetch(pid)
	return err
}

func (r *reader) Lookup(ctx context.Context, pid pager.PageID) error {
	_ = ctx.Err() // the parameter is "used", but not where it matters
	return r.getCtx(context.Background(), pid)
}
`)
	expect(t, diags, []string{
		"context.Background() passed down while (reader).Lookup has ctx in scope",
	})
}

func TestCtxFlowCorrectThreadingIsClean(t *testing.T) {
	diags := runOn(t, CtxFlowCheck(), "snip/okctx", `package okctx

import (
	"context"

	"ucat/internal/pager"
)

type reader struct{ pool *pager.Pool }

func (r *reader) getCtx(ctx context.Context, pid pager.PageID) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	_, err := r.pool.Fetch(pid)
	return err
}

func (r *reader) Lookup(ctx context.Context, pid pager.PageID) error {
	return r.getCtx(ctx, pid)
}
`)
	expect(t, diags, nil)
}

func TestCtxFlowNoContextParamIsOutOfScope(t *testing.T) {
	// Detaching by design is expressed by not accepting a context at all:
	// a function without the parameter may root its own context even on a
	// fetch-reaching chain (the batcher's executeBatch pattern).
	diags := runOn(t, CtxFlowCheck(), "snip/detach", `package detach

import (
	"context"

	"ucat/internal/pager"
)

type runner struct{ pool *pager.Pool }

func (r *runner) executeBatch(pid pager.PageID) error {
	ctx := context.Background()
	_ = ctx
	_, err := r.pool.Fetch(pid)
	return err
}
`)
	expect(t, diags, nil)
}

func TestCtxFlowUnrelatedFunctionsIgnored(t *testing.T) {
	// A context dropped on a chain that never reaches a fetch is not this
	// check's business.
	diags := runOn(t, CtxFlowCheck(), "snip/nofetch", `package nofetch

import "context"

func format(ctx context.Context, x int) int { return x * 2 }
`)
	expect(t, diags, nil)
}

func TestCtxFlowViewInterfaceCounts(t *testing.T) {
	// Fetch through the pager.View interface seeds the analysis the same as
	// the concrete pool: views are how workers hold the pool.
	diags := runOn(t, CtxFlowCheck(), "snip/view", `package view

import (
	"context"

	"ucat/internal/pager"
)

func scan(ctx context.Context, v pager.View, pid pager.PageID) error {
	_, err := v.Fetch(pid)
	return err
}
`)
	expect(t, diags, []string{
		"scan receives a context.Context but its call chain reaches pager Fetch without it",
	})
}

package lint

import "testing"

func TestLockOrderTwoFunctionInversion(t *testing.T) {
	// The seeded true positive from the issue: flushAll holds the shard
	// mutex and calls into the registry (which locks its own mutex), while
	// reregister takes them in the opposite order. Neither function is wrong
	// in isolation; only the call graph sees the cycle.
	diags := runOn(t, LockOrderCheck(), "snip/inv", `package inv

import "sync"

type shard struct{ mu sync.Mutex }
type registry struct{ mu sync.Mutex }

var sh shard
var reg registry

func (r *registry) note() {
	r.mu.Lock()
	defer r.mu.Unlock()
}

func flushAll() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	reg.note() // acquires registry.mu while shard.mu is held
}

func reregister() {
	reg.mu.Lock()
	sh.mu.Lock() // opposite order
	sh.mu.Unlock()
	reg.mu.Unlock()
}
`)
	expect(t, diags, []string{
		"lock order inversion: snip/inv.registry.mu acquired while holding snip/inv.shard.mu (via call to (registry).note)",
		"lock order inversion: snip/inv.shard.mu acquired while holding snip/inv.registry.mu",
	})
}

func TestLockOrderConsistentOrderIsClean(t *testing.T) {
	diags := runOn(t, LockOrderCheck(), "snip/ok", `package ok

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

var ga a
var gb b

func one() {
	ga.mu.Lock()
	gb.mu.Lock()
	gb.mu.Unlock()
	ga.mu.Unlock()
}

func two() {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	gb.mu.Lock()
	defer gb.mu.Unlock()
}
`)
	expect(t, diags, nil)
}

func TestLockOrderSelfDeadlock(t *testing.T) {
	diags := runOn(t, LockOrderCheck(), "snip/self", `package self

import "sync"

type box struct{ mu sync.Mutex }

var gbox box

func (b *box) get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return 0
}

func double() int {
	gbox.mu.Lock()
	defer gbox.mu.Unlock()
	return gbox.get() + 1 // re-enters b.mu: deadlock
}
`)
	expect(t, diags, []string{
		"call to (box).get may re-acquire snip/self.box.mu, which is already held here",
	})
}

func TestLockOrderDirectReacquire(t *testing.T) {
	diags := runOn(t, LockOrderCheck(), "snip/re", `package re

import "sync"

var mu sync.Mutex

func oops() {
	mu.Lock()
	mu.Lock() // second acquire before release
	mu.Unlock()
	mu.Unlock()
}
`)
	expect(t, diags, []string{
		"Lock of snip/re.mu while already holding it",
	})
}

func TestLockOrderUnlockReleasesHeldSet(t *testing.T) {
	// Explicit unlock before the second acquisition: the orders (a then b)
	// and (b then a) never overlap because nothing is held at the second
	// Lock.
	diags := runOn(t, LockOrderCheck(), "snip/rel", `package rel

import "sync"

var amu, bmu sync.Mutex

func one() {
	amu.Lock()
	amu.Unlock()
	bmu.Lock()
	bmu.Unlock()
}

func two() {
	bmu.Lock()
	bmu.Unlock()
	amu.Lock()
	amu.Unlock()
}
`)
	expect(t, diags, nil)
}

func TestLockOrderClosureDoesNotInheritHeldSet(t *testing.T) {
	// The closure is handed elsewhere and runs on another goroutine's stack:
	// its Lock must not be treated as nested under the creator's held set.
	diags := runOn(t, LockOrderCheck(), "snip/clos", `package clos

import "sync"

var amu, bmu sync.Mutex

var hook func()

func install() {
	amu.Lock()
	defer amu.Unlock()
	hook = func() {
		bmu.Lock()
		defer bmu.Unlock()
	}
}

func other() {
	bmu.Lock()
	amu.Lock()
	amu.Unlock()
	bmu.Unlock()
}
`)
	expect(t, diags, nil)
}

func TestLockOrderLocalMutexIgnored(t *testing.T) {
	diags := runOn(t, LockOrderCheck(), "snip/loc", `package loc

import "sync"

var gmu sync.Mutex

func scratch() {
	var local sync.Mutex
	gmu.Lock()
	local.Lock()
	local.Unlock()
	gmu.Unlock()
}

func scratch2() {
	var local sync.Mutex
	local.Lock()
	gmu.Lock()
	gmu.Unlock()
	local.Unlock()
}
`)
	expect(t, diags, nil)
}

func TestLockOrderEmbeddedMutexPromotion(t *testing.T) {
	diags := runOn(t, LockOrderCheck(), "snip/emb", `package emb

import "sync"

type table struct {
	sync.Mutex
	n int
}

type index struct{ mu sync.Mutex }

var tab table
var idx index

func one() {
	tab.Lock() // promoted: class is emb.table.Mutex
	idx.mu.Lock()
	idx.mu.Unlock()
	tab.Unlock()
}

func two() {
	idx.mu.Lock()
	tab.Lock()
	tab.Unlock()
	idx.mu.Unlock()
}
`)
	expect(t, diags, []string{
		"lock order inversion: snip/emb.index.mu acquired while holding snip/emb.table.Mutex",
		"lock order inversion: snip/emb.table.Mutex acquired while holding snip/emb.index.mu",
	})
}

func TestLockOrderRWLockSharesClass(t *testing.T) {
	// RLock and Lock of the same RWMutex are one class: a read-side
	// acquisition inverted against the write side still deadlocks once a
	// writer queues between them.
	diags := runOn(t, LockOrderCheck(), "snip/rw", `package rw

import "sync"

type store struct{ mu sync.RWMutex }
type cache struct{ mu sync.Mutex }

var st store
var ca cache

func read() {
	st.mu.RLock()
	ca.mu.Lock()
	ca.mu.Unlock()
	st.mu.RUnlock()
}

func write() {
	ca.mu.Lock()
	st.mu.Lock()
	st.mu.Unlock()
	ca.mu.Unlock()
}
`)
	expect(t, diags, []string{
		"lock order inversion: snip/rw.cache.mu acquired while holding snip/rw.store.mu",
		"lock order inversion: snip/rw.store.mu acquired while holding snip/rw.cache.mu",
	})
}

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// DroppedErrCheck flags statements that discard the error returned by a
// resource-release method: Flush*, Close, Sync, Clear, Free, FreePage and
// Unpin-like calls whose result is thrown away because the call stands alone
// as a statement (plain, deferred, or spawned with go). A swallowed
// Pool.FlushAll error means dirty pages never reached the store — the
// persisted index is corrupt while the program reports success — and a
// swallowed Close on a freshly written file can lose buffered bytes.
//
// Explicitly assigning the result to the blank identifier (`_ = f.Close()`)
// is accepted as a deliberate, greppable acknowledgment and is not flagged.
// Test files are exempt.
func DroppedErrCheck() *Check {
	return &Check{
		Name: "droppederr",
		Doc:  "flag discarded errors from Flush/Close/Sync/Clear/Free-like release methods",
		Run:  runDroppedErr,
	}
}

// releaseMethods are the method names whose errors must be observed.
var releaseMethods = map[string]bool{
	"Flush":    true,
	"FlushAll": true,
	"Close":    true,
	"Sync":     true,
	"Clear":    true,
	"Free":     true,
	"FreePage": true,
	"Unpin":    true, // returns nothing today; guards a future error-returning variant
}

func runDroppedErr(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var kind string
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
				kind = "call"
			case *ast.DeferStmt:
				call = stmt.Call
				kind = "defer"
			case *ast.GoStmt:
				call = stmt.Call
				kind = "go"
			default:
				return true
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || !releaseMethods[fn.Name()] {
				return true
			}
			if !returnsError(fn) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:   pkg.Fset.Position(call.Pos()),
				Check: "droppederr",
				Msg: fmt.Sprintf("%s %s discards its error; handle it, or assign to _ to acknowledge discarding it",
					kind, fn.Name()),
			})
			return true
		})
	}
	return diags
}

// returnsError reports whether any of the function's results is the built-in
// error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

package lint

import "testing"

func TestSpanEndDeferredIsClean(t *testing.T) {
	src := `package x

import "ucat/internal/obs"

func ok(r *obs.Recorder) {
	sp := r.StartSpan("q")
	defer sp.End()
	sp.Attr("k", "v")
}
`
	expect(t, runOn(t, SpanEndCheck(), "ucat/internal/x", src), nil)
}

func TestSpanEndMissingDefer(t *testing.T) {
	src := `package x

import "ucat/internal/obs"

func bad(r *obs.Recorder) {
	sp := r.StartSpan("q")
	sp.Attr("k", "v")
}
`
	expect(t, runOn(t, SpanEndCheck(), "ucat/internal/x", src),
		[]string{"no matching defer End()"})
}

func TestSpanEndPlainEndIsNotEnough(t *testing.T) {
	// A non-deferred End() leaks the span on early returns and panics.
	src := `package x

import "ucat/internal/obs"

func bad(r *obs.Recorder) {
	sp := r.StartSpan("q")
	sp.End()
}
`
	expect(t, runOn(t, SpanEndCheck(), "ucat/internal/x", src),
		[]string{"no matching defer End()"})
}

func TestSpanEndDiscardedResult(t *testing.T) {
	src := `package x

import "ucat/internal/obs"

func bad1(r *obs.Recorder) {
	r.StartSpan("q")
}

func bad2(r *obs.Recorder) {
	_ = r.StartSpan("q")
}
`
	expect(t, runOn(t, SpanEndCheck(), "ucat/internal/x", src),
		[]string{"result discarded in bad1", "result discarded in bad2"})
}

func TestSpanEndClosureIsSeparateScope(t *testing.T) {
	// The closure starts its own span; a defer in the outer function does not
	// satisfy it, and vice versa.
	src := `package x

import "ucat/internal/obs"

func outer(r *obs.Recorder) {
	sp := r.StartSpan("outer")
	defer sp.End()
	f := func() {
		inner := r.StartSpan("inner")
		_ = inner
	}
	f()
}
`
	expect(t, runOn(t, SpanEndCheck(), "ucat/internal/x", src),
		[]string{"no matching defer End()"})
}

func TestSpanEndClosureDeferIsClean(t *testing.T) {
	src := `package x

import "ucat/internal/obs"

func outer(r *obs.Recorder) {
	f := func() {
		sp := r.StartSpan("inner")
		defer sp.End()
		sp.Attr("k", "v")
	}
	f()
}
`
	expect(t, runOn(t, SpanEndCheck(), "ucat/internal/x", src), nil)
}

func TestSpanEndIgnoreDirective(t *testing.T) {
	src := `package x

import "ucat/internal/obs"

func tricky(r *obs.Recorder) *obs.Span {
	//ucatlint:ignore spanend caller owns the span and ends it
	sp := r.StartSpan("handoff")
	return sp
}
`
	expect(t, runOn(t, SpanEndCheck(), "ucat/internal/x", src), nil)
}

func TestSpanEndExemptsObsPackage(t *testing.T) {
	src := `package obs

type Recorder struct{}

type Span struct{}

func (r *Recorder) StartSpan(name string) *Span { return nil }
func (s *Span) End()                            {}

func internal(r *Recorder) {
	sp := r.StartSpan("q")
	_ = sp
}
`
	expect(t, runOn(t, SpanEndCheck(), "ucat/internal/obs", src), nil)
}

func TestSpanEndOtherObsCallsUnflagged(t *testing.T) {
	// Only Start*Span calls participate; constructors and other helpers don't.
	src := `package x

import "ucat/internal/obs"

func fine() *obs.Recorder {
	rec := obs.NewRecorder()
	return rec
}
`
	expect(t, runOn(t, SpanEndCheck(), "ucat/internal/x", src), nil)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMixCheck flags fields and package variables that are accessed through
// sync/atomic in one place and by plain reads or writes in another. Mixing
// the two is a data race the race detector only catches when both sides
// actually interleave under test; statically, one atomic use of a location is
// a declaration that *every* access must be atomic:
//
//	atomic.AddUint64(&s.hits, 1)   // here it is a shared counter…
//	if s.hits > limit { … }        // …and here is the unsynchronized read
//
// The analysis is program-wide, not per-package: because the Loader gives all
// packages one FileSet and importer, a field's *types.Var is the same object
// everywhere, so an atomic access in obs and a plain access in server meet in
// one table. Pass one collects every location whose address is passed to a
// sync/atomic operation (Add*, Load*, Store*, Swap*, CompareAndSwap*); pass
// two reports every plain use of those locations. Composite-literal
// initialization is exempt — construction happens-before sharing — and so are
// accesses that only take the location's address (&x.f is how the atomic
// functions themselves receive it).
//
// The typed atomic wrappers (atomic.Uint64, atomic.Bool, …) make this whole
// class of bug unrepresentable and are the preferred fix; this check exists
// for the pointer-function style that predates them and for third-party
// idioms that creep in through review.
func AtomicMixCheck() *Check {
	return &Check{
		Name:       "atomicmix",
		Doc:        "fields accessed via sync/atomic must never be read or written plainly elsewhere",
		Severity:   SeverityError,
		RunProgram: runAtomicMix,
	}
}

func runAtomicMix(prog *Program) []Diagnostic {
	// Pass 1: locations used atomically, with one representative position
	// (for the diagnostic's "declared atomic at" note).
	atomicUse := make(map[*types.Var]token.Position)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			if isTestFile(pkg, f) {
				continue
			}
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if !isAtomicOpName(fn.Name()) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					if v := varOfExpr(pkg, un.X); v != nil {
						if _, seen := atomicUse[v]; !seen {
							atomicUse[v] = pkg.Fset.Position(un.Pos())
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicUse) == 0 {
		return nil
	}

	// Pass 2: plain accesses of those locations.
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			if isTestFile(pkg, f) {
				continue
			}
			v := &plainAccessVisitor{pkg: pkg, atomicUse: atomicUse, diags: &diags}
			ast.Walk(v, f)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return posLess(diags[i].Pos, diags[j].Pos) })
	return diags
}

// isAtomicOpName reports whether name is a sync/atomic function that reads
// or writes through a pointer argument.
func isAtomicOpName(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// varOfExpr resolves an expression to the field or package-level variable it
// denotes, or nil for locals and anything more complex. Locals are excluded:
// a stack variable whose address goes to sync/atomic is almost always a
// test fixture, and cross-function aliasing of locals is beyond this
// analysis.
func varOfExpr(pkg *Package, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			return v // pkgname.Var qualified reference
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

// plainAccessVisitor reports uses of atomically-accessed locations outside
// sync/atomic calls. It tracks address-taking and composite-literal contexts
// during descent so that `&s.hits` (an atomic operand or an aliased pointer)
// and `S{hits: 0}` (construction) are not flagged.
type plainAccessVisitor struct {
	pkg       *Package
	atomicUse map[*types.Var]token.Position
	diags     *[]Diagnostic
}

func (v *plainAccessVisitor) Visit(node ast.Node) ast.Visitor {
	switch n := node.(type) {
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			// Address-of: not itself a read or write. Whatever the pointer
			// is used for, the access happens elsewhere (and if it goes to
			// sync/atomic, pass 1 already classified it).
			if varOfAccess(v.pkg, n.X) != nil {
				return nil
			}
		}
	case *ast.CompositeLit:
		// Construction: `pool{stats: 0}` happens-before sharing. Keys and
		// values may still contain reads of *other* atomic locations, so
		// only the key identifiers are skipped, which varOfAccess handles
		// by construction (keys are not Uses of fields in go/types — they
		// are recorded in Info.Uses too, so skip the whole literal's keys).
		for _, elt := range n.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				ast.Walk(v, kv.Value)
			} else {
				ast.Walk(v, elt)
			}
		}
		return nil
	case *ast.SelectorExpr:
		if fv := varOfAccess(v.pkg, n); fv != nil {
			if declPos, hot := v.atomicUse[fv]; hot {
				v.report(n, fv, declPos)
			}
			ast.Walk(v, n.X) // the receiver expression may itself contain accesses
			return nil
		}
	case *ast.Ident:
		if fv := varOfAccess(v.pkg, n); fv != nil {
			if declPos, hot := v.atomicUse[fv]; hot {
				v.report(n, fv, declPos)
			}
		}
	}
	return v
}

func (v *plainAccessVisitor) report(at ast.Node, fv *types.Var, declPos token.Position) {
	*v.diags = append(*v.diags, Diagnostic{
		Pos:   v.pkg.Fset.Position(at.Pos()),
		Check: "atomicmix",
		Msg: fmt.Sprintf("plain access of %s, which is accessed atomically at %s:%d: use sync/atomic for every access or switch to a typed atomic",
			fv.Name(), declPos.Filename, declPos.Line),
	})
}

// varOfAccess is varOfExpr for pass 2: it resolves selector and identifier
// expressions to tracked locations.
func varOfAccess(pkg *Package, e ast.Expr) *types.Var {
	return varOfExpr(pkg, e)
}

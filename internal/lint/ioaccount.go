package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// IOAccountCheck flags direct page-store access from outside the pager
// package. Every figure in the paper reports "number of I/Os", counted as
// transfers between the buffer pool and the page store; a read or write that
// goes straight to *pager.Store bypasses the pool's Reads/Writes counters
// and silently corrupts that metric. Allocation and freeing directly on the
// store are equally forbidden outside the pager: the pool's page table would
// no longer agree with the store, so a later counted access could return a
// stale or recycled frame.
//
// Only ucat/internal/pager may touch these methods; everyone else goes
// through Pool.Fetch / Pool.NewPage / Pool.FreePage.
func IOAccountCheck() *Check {
	return &Check{
		Name: "ioaccount",
		Doc:  "flag direct *pager.Store page access that bypasses the counted buffer pool",
		Run:  runIOAccount,
	}
}

// storeMethods maps the forbidden *pager.Store methods to the counted
// alternative callers should use.
var storeMethods = map[string]string{
	"ReadAt":   "Pool.Fetch",
	"WriteAt":  "Pool.Fetch + Page.Unpin(dirty)",
	"Allocate": "Pool.NewPage",
	"Free":     "Pool.FreePage",
}

func runIOAccount(pkg *Package) []Diagnostic {
	if pkg.Path == pagerPath {
		return nil // the pager implements the pool; it is the accounting boundary
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			alt, suspect := storeMethods[fn.Name()]
			if !suspect {
				return true
			}
			path, name, ok := namedOrPointerTo(sig.Recv().Type())
			if !ok || path != pagerPath || name != "Store" {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:   pkg.Fset.Position(call.Pos()),
				Check: "ioaccount",
				Msg: fmt.Sprintf("direct Store.%s bypasses the counted buffer pool (breaks the I/O metric); use %s",
					fn.Name(), alt),
			})
			return true
		})
	}
	return diags
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatcmpCheck flags exact equality comparisons (== and !=, plus switch
// statements over a float tag) between floating-point operands. Probability
// mass in this codebase is accumulated float arithmetic — Σ q_j·t_j over
// inverted lists, normalized simplex samples — so exact comparison is almost
// always a correctness bug: two mathematically equal probabilities routinely
// differ in the last ulp depending on summation order. Comparisons must go
// through an epsilon helper, or be explicitly annotated when bitwise
// equality is the point (e.g. deterministic sort tie-breaking).
//
// Exemptions: test files, constant-folded comparisons (both operands
// compile-time constants), and the bodies of approved epsilon helpers —
// functions whose name contains "approx", "almost", "near" or "eps"
// (case-insensitive), which exist precisely to encapsulate the raw
// comparison.
func FloatcmpCheck() *Check {
	return &Check{
		Name: "floatcmp",
		Doc:  "flag == and != on floating-point operands outside epsilon helpers",
		Run:  runFloatcmp,
	}
}

// epsilonHelper reports whether a function name marks an approved home for
// raw float comparison.
func epsilonHelper(name string) bool {
	lower := strings.ToLower(name)
	for _, marker := range []string{"approx", "almost", "near", "eps"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

func runFloatcmp(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && epsilonHelper(fd.Name.Name) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					// Closures inherit the enclosing declaration's scope;
					// nothing special to do, keep walking.
				case *ast.BinaryExpr:
					if d, bad := floatEquality(pkg, n); bad {
						diags = append(diags, d)
					}
				case *ast.SwitchStmt:
					if n.Tag == nil {
						return true
					}
					if tv, ok := pkg.Info.Types[n.Tag]; ok && isFloat(tv.Type) {
						diags = append(diags, Diagnostic{
							Pos:   pkg.Fset.Position(n.Switch),
							Check: "floatcmp",
							Msg:   "switch over a floating-point value compares cases exactly; use epsilon comparisons",
						})
					}
				}
				return true
			})
		}
	}
	return diags
}

// floatEquality reports a diagnostic if the expression is an exact equality
// test between float operands that is not fully constant-folded.
func floatEquality(pkg *Package, e *ast.BinaryExpr) (Diagnostic, bool) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return Diagnostic{}, false
	}
	xt, xok := pkg.Info.Types[e.X]
	yt, yok := pkg.Info.Types[e.Y]
	if !xok || !yok {
		return Diagnostic{}, false
	}
	if !isFloat(xt.Type) && !isFloat(yt.Type) {
		return Diagnostic{}, false
	}
	if xt.Value != nil && yt.Value != nil {
		return Diagnostic{}, false // constant-folded at compile time
	}
	return Diagnostic{
		Pos:   pkg.Fset.Position(e.OpPos),
		Check: "floatcmp",
		Msg: fmt.Sprintf("exact %s on floating-point operands; use an epsilon comparison or annotate why bitwise equality is intended",
			e.Op),
	}, true
}

// isFloat reports whether t's core type is float32 or float64 (complex
// kinds are excluded; the codebase has none).
func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

package lint

import (
	"fmt"
	"go/ast"
)

// SharedPoolCheck guards the serving layer's one-pool invariant (DESIGN.md
// §18). Every fetch in internal/server must flow through the server's single
// shared striped pool — constructed once with pager.NewSharedPool and handed
// to requests as per-request pager.Sessions. A private view built with
// pager.NewPool or pager.NewStripedPool inside the server silently
// reintroduces the pre-refactor regime: the hot PDR-tree root and upper
// index pages get duplicated per view, the effective cache shrinks from
// "total frames" back to "frames × views", and the shared-pool metrics on
// /metrics stop describing the traffic. The code still compiles and still
// answers correctly, which is exactly why this is a lint check and not a
// test.
//
// The check fires only in the server package; everywhere else private views
// are the sanctioned idiom (the figures path depends on them for
// bit-identical per-query I/O counts).
func SharedPoolCheck() *Check {
	return &Check{
		Name: "sharedpool",
		Doc:  "flag private pager.NewPool / NewStripedPool views inside internal/server; serving must share one pool",
		Run:  runSharedPool,
	}
}

// serverPath is the import path of the serving layer the check applies to.
const serverPath = "ucat/internal/server"

// privateViewCtors are the pager constructors that build a private
// single-owner pool. NewSharedPool is deliberately absent: it is the
// sanctioned constructor.
var privateViewCtors = map[string]bool{
	"NewPool":        true,
	"NewStripedPool": true,
}

func runSharedPool(pkg *Package) []Diagnostic {
	if pkg.Path != serverPath {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue // tests may build throwaway pools to compare against
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pagerPath ||
				!privateViewCtors[fn.Name()] {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:   pkg.Fset.Position(call.Pos()),
				Check: "sharedpool",
				Msg: fmt.Sprintf("server constructs a private pool view via pager.%s; serving must fetch through the one shared pool (pager.NewSharedPool + per-request Sessions, DESIGN.md §18)",
					fn.Name()),
			})
			return true
		})
	}
	return diags
}

package lint

import "testing"

func TestCacheVersionDirtyUnpinIsClean(t *testing.T) {
	src := `package x

import "ucat/internal/pager"

func ok(p *pager.Pool, pid pager.PageID) error {
	pg, err := p.Fetch(pid)
	if err != nil {
		return err
	}
	pg.Data[0] = 7
	pg.Unpin(true)
	return nil
}
`
	expect(t, runOn(t, CacheVersionCheck(), "ucat/internal/x", src), nil)
}

func TestCacheVersionIndexWriteCleanUnpin(t *testing.T) {
	src := `package x

import "ucat/internal/pager"

func bad(p *pager.Pool, pid pager.PageID) error {
	pg, err := p.Fetch(pid)
	if err != nil {
		return err
	}
	pg.Data[0] = 7
	pg.Unpin(false)
	return nil
}
`
	expect(t, runOn(t, CacheVersionCheck(), "ucat/internal/x", src),
		[]string{"every Unpin passes false"})
}

func TestCacheVersionBinaryPutThroughAlias(t *testing.T) {
	src := `package x

import (
	"encoding/binary"

	"ucat/internal/pager"
)

func bad(p *pager.Pool, pid pager.PageID) error {
	pg, err := p.Fetch(pid)
	if err != nil {
		return err
	}
	data := pg.Data
	binary.LittleEndian.PutUint32(data[4:], 9)
	pg.Unpin(false)
	return nil
}
`
	expect(t, runOn(t, CacheVersionCheck(), "ucat/internal/x", src),
		[]string{"every Unpin passes false"})
}

func TestCacheVersionCopyIntoPageData(t *testing.T) {
	src := `package x

import "ucat/internal/pager"

func bad(p *pager.Pool, pid pager.PageID, payload []byte) error {
	pg, err := p.Fetch(pid)
	if err != nil {
		return err
	}
	copy(pg.Data[2:], payload)
	pg.Unpin(false)
	return nil
}
`
	expect(t, runOn(t, CacheVersionCheck(), "ucat/internal/x", src),
		[]string{"every Unpin passes false"})
}

func TestCacheVersionReadOnlyIsClean(t *testing.T) {
	// Reads (index/slice on the RHS, binary.Uint32, copy FROM page data)
	// with a clean unpin are the normal query path.
	src := `package x

import (
	"encoding/binary"

	"ucat/internal/pager"
)

func ok(p *pager.Pool, pid pager.PageID, dst []byte) (uint32, error) {
	pg, err := p.Fetch(pid)
	if err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(pg.Data[4:])
	copy(dst, pg.Data)
	pg.Unpin(false)
	return v, nil
}
`
	expect(t, runOn(t, CacheVersionCheck(), "ucat/internal/x", src), nil)
}

func TestCacheVersionDynamicDirtyFlagIsClean(t *testing.T) {
	// A variable dirty flag may be true at runtime; the static check must
	// not cry wolf.
	src := `package x

import "ucat/internal/pager"

func ok(p *pager.Pool, pid pager.PageID, dirty bool) error {
	pg, err := p.Fetch(pid)
	if err != nil {
		return err
	}
	pg.Data[0] = 7
	pg.Unpin(dirty)
	return nil
}
`
	expect(t, runOn(t, CacheVersionCheck(), "ucat/internal/x", src), nil)
}

func TestCacheVersionMixedUnpinsIsClean(t *testing.T) {
	// One clean unpin on an error path plus a dirty unpin on the success
	// path is the standard writer shape.
	src := `package x

import "ucat/internal/pager"

func ok(p *pager.Pool, pid pager.PageID, fail bool) error {
	pg, err := p.Fetch(pid)
	if err != nil {
		return err
	}
	pg.Data[0] = 7
	if fail {
		pg.Unpin(false)
		return nil
	}
	pg.Unpin(true)
	return nil
}
`
	expect(t, runOn(t, CacheVersionCheck(), "ucat/internal/x", src), nil)
}

func TestCacheVersionNoUnpinIsOutOfScope(t *testing.T) {
	// Writes without any Unpin: the pin (and the dirty decision) belongs to
	// the caller; the single-function heuristic stays silent.
	src := `package x

import "ucat/internal/pager"

func helper(pg *pager.Page) {
	pg.Data[0] = 7
}
`
	expect(t, runOn(t, CacheVersionCheck(), "ucat/internal/x", src), nil)
}

func TestCacheVersionIgnoreDirective(t *testing.T) {
	src := `package x

import "ucat/internal/pager"

func scrub(p *pager.Pool, pid pager.PageID) error {
	pg, err := p.Fetch(pid)
	if err != nil {
		return err
	}
	//ucatlint:ignore cacheversion in-memory scrub of a page no cache ever decodes
	pg.Data[0] = 0
	pg.Unpin(false)
	return nil
}
`
	expect(t, runOn(t, CacheVersionCheck(), "ucat/internal/x", src), nil)
}

func TestCacheVersionPagerPackageExempt(t *testing.T) {
	// The pager owns the version protocol; its write-back path legitimately
	// writes bytes around clean unpins.
	src := `package pager

type PageID uint32

type Page struct {
	ID   PageID
	Data []byte
}

func (p *Page) Unpin(dirty bool) {}

func scrub(pg *Page) {
	pg.Data[0] = 0
	pg.Unpin(false)
}
`
	expect(t, runOn(t, CacheVersionCheck(), "ucat/internal/pager", src), nil)
}

package lint

import "testing"

func TestExportDocFlagsUndocumentedExports(t *testing.T) {
	src := `// Package server is documented.
package server

type Config struct{}

func New(c Config) error { return nil }

const QueueDepth = 64

var Default = Config{}
`
	diags := runOn(t, ExportDocCheck(), "ucat/internal/server", src)
	expect(t, diags, []string{
		"exported type Config has no doc comment",
		"exported function New has no doc comment",
		"exported const QueueDepth has no doc comment",
		"exported var Default has no doc comment",
	})
}

func TestExportDocRequiresPackageComment(t *testing.T) {
	src := `package server

// Documented is documented.
type Documented struct{}
`
	diags := runOn(t, ExportDocCheck(), "ucat/internal/server", src)
	expect(t, diags, []string{"package server has no package doc comment"})
}

func TestExportDocMethodsOnExportedTypes(t *testing.T) {
	src := `// Package server is documented.
package server

// Pool is documented.
type Pool struct{}

func (p *Pool) Fetch() error { return nil }

// internalPool is unexported; its methods are invisible in godoc.
type internalPool struct{}

func (p *internalPool) Fetch() error { return nil }

// unexported helpers need no docs either.
func helper() {}
`
	diags := runOn(t, ExportDocCheck(), "ucat/internal/server", src)
	expect(t, diags, []string{"exported method (*Pool) Fetch has no doc comment"})
}

func TestExportDocGroupDocCoversSpecs(t *testing.T) {
	src := `// Package server is documented.
package server

// Queue sizing defaults.
const (
	DefaultQueueDepth = 64
	DefaultWorkers    = 4
)

var (
	MaxBody  = 1 << 20 // trailing comments also count
	MaxBatch = 16
)
`
	diags := runOn(t, ExportDocCheck(), "ucat/internal/server", src)
	expect(t, diags, []string{
		"exported var MaxBatch has no doc comment",
	})
}

func TestExportDocScopedToAuditedPackages(t *testing.T) {
	src := `package core

type Undocumented struct{}
`
	diags := runOn(t, ExportDocCheck(), "ucat/internal/core", src)
	expect(t, diags, nil)
}

func TestExportDocCleanPackagePasses(t *testing.T) {
	src := `// Package server is documented.
package server

// Config is documented.
type Config struct{}

// New is documented.
func New(c Config) error { return nil }
`
	diags := runOn(t, ExportDocCheck(), "ucat/internal/server", src)
	expect(t, diags, nil)
}

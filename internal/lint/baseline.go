// Machine-readable output and the baseline workflow.
//
// The JSON rendering gives CI a stable schema to diff; the baseline file
// lets a new check land before the tree is clean: `ucatlint -baseline
// .ucatlint-baseline.json -writebaseline` records today's findings, CI runs
// with `-baseline` and fails only on findings not in the file, and the
// baseline shrinks as entries are fixed (a baseline entry that no longer
// matches anything is reported so it cannot linger).
//
// Baseline entries match on (check, file, message) — deliberately not on
// line numbers, so unrelated edits above a known finding do not resurrect
// it. Matching is multiset-style: one entry absorbs one finding, so a second
// identical regression in the same file is still new.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// JSONDiagnostic is the wire form of one finding (-format json).
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Check    string `json:"check"`
	Severity string `json:"severity"`
	Msg      string `json:"msg"`
}

// ToJSON converts diagnostics to their wire form, with filenames made
// root-relative (slash-separated) when they live under root.
func ToJSON(diags []Diagnostic, root string) []JSONDiagnostic {
	out := make([]JSONDiagnostic, len(diags))
	for i, d := range diags {
		sev := d.Severity
		if sev == "" {
			sev = SeverityError
		}
		out[i] = JSONDiagnostic{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Check:    d.Check,
			Severity: string(sev),
			Msg:      d.Msg,
		}
	}
	return out
}

// WriteJSON writes the diagnostics as one indented JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(diags, root))
}

// relPath maps filename under root to a slash-relative path; files outside
// root (or when root is empty) keep their original name.
func relPath(root, filename string) string {
	if root == "" {
		return filename
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

// BaselineEntry is one accepted finding: check + root-relative file + exact
// message, no line number.
type BaselineEntry struct {
	Check string `json:"check"`
	File  string `json:"file"`
	Msg   string `json:"msg"`
}

// Baseline is a checked-in set of accepted findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// NewBaseline records every given diagnostic as accepted.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	b := &Baseline{Entries: make([]BaselineEntry, 0, len(diags))}
	for _, d := range diags {
		b.Entries = append(b.Entries, BaselineEntry{
			Check: d.Check,
			File:  relPath(root, d.Pos.Filename),
			Msg:   d.Msg,
		})
	}
	return b
}

// LoadBaseline reads a baseline file. A missing file is an error: passing
// -baseline is a claim that the file exists, and a typo'd path silently
// matching nothing would fail CI with every baselined finding.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline as indented JSON, entries in their given order.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diagnostics into the ones not covered by the baseline (new
// findings) and reports how many baseline entries went unused (stale — their
// finding has been fixed and the entry should be deleted). Each entry
// absorbs at most one matching finding.
func (b *Baseline) Filter(diags []Diagnostic, root string) (fresh []Diagnostic, matched, stale int) {
	budget := make(map[BaselineEntry]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[e]++
	}
	for _, d := range diags {
		key := BaselineEntry{Check: d.Check, File: relPath(root, d.Pos.Filename), Msg: d.Msg}
		if budget[key] > 0 {
			budget[key]--
			matched++
			continue
		}
		fresh = append(fresh, d)
	}
	for _, left := range budget {
		stale += left
	}
	return fresh, matched, stale
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective marks a function declaration as a query-path entry point
// whose transitive callees hotalloc audits.
const hotpathDirective = "//ucatlint:hotpath"

// HotAllocCheck locks in the zero-alloc discipline of the decode and query
// paths. PR 4 bought a −36.7% allocs/query win by hand; this check keeps it
// from eroding one convenient fmt.Sprintf at a time.
//
// Entry points are opt-in: a `//ucatlint:hotpath` directive on a function
// declaration marks it as a query-path root, and the binary wire codec's
// encode/decode functions (see isWireEncode) are roots by construction — the
// wire path carries a pinned allocations-per-response budget, so its loops
// live under the same audit without needing a directive on every encoder.
// Everything reachable from a
// root through the call graph (a TopDown dataflow) is a hot function, and
// inside hot functions the check flags the known allocation sources when
// they appear inside a loop body — a once-per-call allocation on a query
// path is noise; a per-element one is the regression this guards against:
//
//   - any call into the fmt package (fmt always allocates: its verbs box
//     their operands and its output is a fresh string or written buffer);
//   - make() for slices and maps without a capacity hint — growth inside a
//     loop reallocates repeatedly (make with an explicit size/capacity
//     argument is deliberate and allowed);
//   - function literals — a closure that captures variables allocates its
//     environment on the heap each time the expression is evaluated;
//   - interface boxing: a non-pointer, non-interface concrete argument
//     passed to an interface-typed parameter allocates to box the value
//     (`error` parameters excluded — error paths exit the loop anyway).
//
// Loop bodies include the bodies of function literals passed as arguments
// inside a loop (a per-element callback runs per element, wherever its body
// text sits). Branches that terminate the loop — an if-body whose last
// statement is a return, break, goto or panic — are exempt: an allocation
// there happens at most once per call, which is exactly the error-path
// fmt.Errorf idiom. The check is severity warn: allocation is a performance
// property, not a correctness one, and the right fix is sometimes "accept
// it" — record those in the baseline or annotate with an ignore directive
// naming the measurement.
func HotAllocCheck() *Check {
	return &Check{
		Name:       "hotalloc",
		Doc:        "flag allocation sources in loops of functions reachable from //ucatlint:hotpath entry points and wire codec roots",
		Severity:   SeverityWarn,
		RunProgram: runHotAlloc,
	}
}

func runHotAlloc(prog *Program) []Diagnostic {
	g := prog.Graph

	var roots []*FuncNode
	for _, n := range g.Nodes() {
		if hasHotpathDirective(n) || isWireEncode(n) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	hot := g.ReachableFrom(roots)

	var diags []Diagnostic
	for _, n := range g.Nodes() {
		if !hot[n] || n.Decl.Body == nil {
			continue
		}
		diags = append(diags, hotAllocInFunc(n)...)
	}
	return diags
}

// hasHotpathDirective reports whether the function's doc comment (or a
// directive comment directly above it) carries //ucatlint:hotpath.
func hasHotpathDirective(n *FuncNode) bool {
	if n.Decl.Doc == nil {
		return false
	}
	for _, c := range n.Decl.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// hotAllocInFunc walks one hot function and flags allocation sources inside
// its loop bodies.
func hotAllocInFunc(n *FuncNode) []Diagnostic {
	var diags []Diagnostic
	report := func(pos ast.Node, what string) {
		diags = append(diags, Diagnostic{
			Pos:   n.Pkg.Fset.Position(pos.Pos()),
			Check: "hotalloc",
			Msg:   fmt.Sprintf("%s in a loop on a hot path (reachable from a //ucatlint:hotpath entry point)", what),
		})
	}
	// Collect every loop body in the function (closures included), plus the
	// loop-terminating if-bodies that the audit treats as cold.
	var loopBodies []ast.Node
	cold := make(map[ast.Node]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.ForStmt:
			loopBodies = append(loopBodies, s.Body)
		case *ast.RangeStmt:
			loopBodies = append(loopBodies, s.Body)
		case *ast.IfStmt:
			if terminalBlock(s.Body) {
				cold[s.Body] = true
			}
		}
		return true
	})
	inspected := make(map[ast.Node]bool)
	for i := 0; i < len(loopBodies); i++ {
		body := loopBodies[i]
		if inspected[body] {
			continue
		}
		inspected[body] = true
		ast.Inspect(body, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return false // its body has its own loopBodies entry
			case *ast.BlockStmt:
				if cold[e] {
					return false // terminating branch: at most one allocation per call
				}
			case *ast.CallExpr:
				checkHotCall(n.Pkg, e, report)
				// A function literal passed as an argument is a per-element
				// callback: audit its body as part of the loop.
				for _, arg := range e.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						loopBodies = append(loopBodies, lit.Body)
					}
				}
			case *ast.FuncLit:
				report(e, "function literal (closure environment allocation)")
				return false // its body was or will be queued if it is a callback
			}
			return true
		})
	}
	return diags
}

// terminalBlock reports whether the block's last statement unconditionally
// leaves the enclosing loop or function: return, break, goto, or panic.
func terminalBlock(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// isConstZero reports whether the expression is a compile-time constant
// zero.
func isConstZero(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// checkHotCall flags one call expression inside a hot loop.
func checkHotCall(pkg *Package, call *ast.CallExpr, report func(ast.Node, string)) {
	// fmt.* calls.
	if fn := calleeFunc(pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call, "call to fmt."+fn.Name()+" (always allocates)")
		return
	}
	// make without a capacity hint: make(map[K]V) / make(chan T) with no
	// size, or make([]T, 0) with no separate capacity — all of which grow by
	// reallocation under per-element appends/inserts.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
			switch {
			case len(call.Args) == 1:
				report(call, "make without a size hint (grows by reallocation)")
				return
			case len(call.Args) == 2 && isConstZero(pkg, call.Args[1]):
				report(call, "make with zero length and no capacity (grows by reallocation)")
				return
			}
		}
	}
	// Interface boxing at the call boundary.
	ft := pkg.Info.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param *types.Var
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			param = sig.Params().At(sig.Params().Len() - 1)
		case i < sig.Params().Len():
			param = sig.Params().At(i)
		default:
			continue
		}
		pt := param.Type()
		if sig.Variadic() && param == sig.Params().At(sig.Params().Len()-1) {
			if slice, ok := pt.(*types.Slice); ok {
				pt = slice.Elem()
			}
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if at == nil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			continue // already boxed, or a pointer (fits in the iface word)
		case *types.Basic:
			if at.Underlying().(*types.Basic).Kind() == types.UntypedNil {
				continue
			}
		}
		// Error-path style arguments are excluded via the error interface
		// check: passing into an `error` parameter means an exit path.
		if named, ok := pt.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			continue
		}
		report(arg, fmt.Sprintf("argument boxes %s into interface %s", at, param.Type()))
	}
}

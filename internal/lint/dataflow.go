// Dataflow driver: fixed-point propagation of per-function facts over the
// call graph.
//
// The interprocedural checks all reduce to the same engine: attach a fact to
// every function (a lockset summary, a "reaches a page fetch" bit, a "on a
// hot path" bit), then propagate along call edges until nothing changes.
// Facts must grow monotonically (sets that only gain members, booleans that
// only flip one way) so the worklist terminates even on recursive call
// chains; with that discipline the fixed point is the least solution and
// independent of visit order.
package lint

// Direction selects which way facts flow along call edges.
type Direction int

const (
	// TopDown propagates facts from callers to callees: when a function's
	// fact changes, its callees are revisited. Used for reachability from
	// entry points (hotalloc's "is this function on an annotated hot
	// path?").
	TopDown Direction = iota

	// BottomUp propagates facts from callees to callers: when a function's
	// fact changes, its callers are revisited. Used for summaries (lockorder's
	// "which locks may this call chain acquire?", ctxflow's "does this chain
	// reach a page fetch?").
	BottomUp
)

// Fixpoint runs update over every function until a fixed point: update
// returns true when it changed the node's fact, which re-queues the node's
// dependents (callers for BottomUp, callees for TopDown). update must be
// monotone — once a fact element is added it stays — or the loop may not
// terminate.
func (g *CallGraph) Fixpoint(dir Direction, update func(n *FuncNode) bool) {
	queued := make(map[*FuncNode]bool, len(g.nodes))
	queue := make([]*FuncNode, 0, len(g.nodes))
	push := func(n *FuncNode) {
		if !queued[n] {
			queued[n] = true
			queue = append(queue, n)
		}
	}
	for _, n := range g.nodes {
		push(n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		queued[n] = false
		if !update(n) {
			continue
		}
		switch dir {
		case BottomUp:
			for _, c := range n.Callers {
				push(c)
			}
		case TopDown:
			for _, site := range n.Sites {
				for _, c := range site.Callees {
					push(c)
				}
			}
		}
	}
}

// ReachableFrom returns every function reachable from the roots by following
// call edges forward (the roots themselves included) — a TopDown boolean
// dataflow.
func (g *CallGraph) ReachableFrom(roots []*FuncNode) map[*FuncNode]bool {
	reach := make(map[*FuncNode]bool, len(roots))
	for _, r := range roots {
		reach[r] = true
	}
	g.Fixpoint(TopDown, func(n *FuncNode) bool {
		if !reach[n] {
			return false
		}
		changed := false
		for _, site := range n.Sites {
			for _, c := range site.Callees {
				if !reach[c] {
					reach[c] = true
					changed = true
				}
			}
		}
		return changed
	})
	return reach
}

// ReachesAny returns every function from which a seed function is reachable
// (seeds included): seed marks the functions of interest, and the bit
// propagates BottomUp to every transitive caller.
func (g *CallGraph) ReachesAny(seed func(n *FuncNode) bool) map[*FuncNode]bool {
	reaches := make(map[*FuncNode]bool)
	g.Fixpoint(BottomUp, func(n *FuncNode) bool {
		if reaches[n] {
			return false
		}
		hit := seed(n)
		if !hit {
		sites:
			for _, site := range n.Sites {
				for _, c := range site.Callees {
					if reaches[c] {
						hit = true
						break sites
					}
				}
			}
		}
		if hit {
			reaches[n] = true
		}
		return hit
	})
	return reaches
}

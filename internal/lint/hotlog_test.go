package lint

import "testing"

func TestHotLogDirectInWorkerLoop(t *testing.T) {
	src := `package server

import "log/slog"

type Server struct{ log *slog.Logger }

func (s *Server) worker() {
	for {
		s.log.Info("picked up a task")
		s.execute()
	}
}

func (s *Server) execute() {}
`
	diags := runOn(t, HotLogCheck(), "ucat/internal/server", src)
	expect(t, diags, []string{"call to slog.Info in a hot loop"})
}

func TestHotLogTransitiveThroughHelper(t *testing.T) {
	src := `package server

import "log/slog"

type Server struct{ log *slog.Logger }

func (s *Server) worker() {
	for {
		s.execute()
	}
}

// execute logs one helper down: the worker loop's call site is what the
// check must flag.
func (s *Server) execute() {
	s.note()
}

func (s *Server) note() {
	s.log.Error("boom")
}
`
	diags := runOn(t, HotLogCheck(), "ucat/internal/server", src)
	expect(t, diags, []string{"call to (Server).execute, which logs, in a hot loop"})
}

func TestHotLogHotpathRootAndFprintfAllowed(t *testing.T) {
	src := `package scan

import "fmt"

//ucatlint:hotpath
func Search(items []int, w any) {
	for _, it := range items {
		fmt.Println("visiting", it)
		fmt.Fprintf(w, "%d", it) // caller-chosen writer: allowed
	}
}
`
	diags := runOn(t, HotLogCheck(), "ucat/internal/scan", src)
	expect(t, diags, []string{"call to fmt.Println in a hot loop"})
}

func TestHotLogOutsideLoopAndColdFunctionsClean(t *testing.T) {
	src := `package server

import (
	"log"
	"log/slog"
)

func (s *Server) worker() {
	slog.Info("worker starting") // once per worker, outside the loop
	for {
		s.execute()
	}
}

type Server struct{}

func (s *Server) execute() {}

// handleQuery is NOT reachable from the worker loop: its logging is the
// design, not a violation.
func (s *Server) handleQuery() {
	for i := 0; i < 3; i++ {
		log.Printf("retry %d", i)
	}
}
`
	diags := runOn(t, HotLogCheck(), "ucat/internal/server", src)
	expect(t, diags, nil)
}

func TestHotLogWorkerNameNeedsServerPackage(t *testing.T) {
	src := `package pool

import "log/slog"

// worker here is not the serving layer's executor: without a hotpath
// directive the check must leave other packages' worker methods alone.
func worker() {
	for {
		slog.Info("tick")
	}
}
`
	diags := runOn(t, HotLogCheck(), "ucat/internal/pool", src)
	expect(t, diags, nil)
}

func TestHotLogCallbackLiteralInLoop(t *testing.T) {
	src := `package server

import "log/slog"

type Server struct{}

func (s *Server) worker() {
	for {
		s.run(func() {
			slog.Error("inside the per-task callback")
		})
	}
}

func (s *Server) run(f func()) { f() }
`
	diags := runOn(t, HotLogCheck(), "ucat/internal/server", src)
	expect(t, diags, []string{"call to slog.Error in a hot loop"})
}

package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// HotLogCheck keeps logging off the query execution path. The serving
// design puts every request-log line on the handler goroutine (writeResult),
// never in the worker loops: a slog call formats its attributes and takes the
// handler's writer lock, which on an executor would serialize the worker pool
// behind the log sink and bill the formatting to query latency.
//
// Entry points are the //ucatlint:hotpath roots the hotalloc check already
// audits, plus every method named "worker" declared in a package whose import
// path ends in internal/server — the executor loops themselves. Inside the
// loop bodies of any function reachable from those roots (TopDown over the
// call graph), the check flags:
//
//   - any call into log/slog or the legacy log package;
//   - fmt.Print, fmt.Printf and fmt.Println — stdout logging by another name
//     (fmt.Fprint* against a caller-chosen writer stays legal: the span-tree
//     renderer writes trees through it);
//   - any call to a module function that transitively reaches one of the
//     above (BottomUp), so hiding the slog call one helper down does not
//     evade the check.
//
// Unlike hotalloc, loop-terminating branches are NOT exempt: a worker loop
// never exits per request, so "log then continue/return" still logs once per
// iteration. The fix is the one the server already implements — return the
// record to the handler (writeResult logs it) or count it in a metric.
//
// A third root family covers the binary wire protocol: the codec functions in
// internal/wire (Append*/Decode*) and the server's binary writers
// (writeBinary, writeBinaryError, appendWireResponse). Their contract is
// stricter than "no logging in loops" — the encode path is pinned at zero
// allocations per response by TestWireEncodePathAllocs, and a single
// fmt.Sprintf or json.Marshal anywhere in a reachable function breaks the
// pin once per request. Functions reachable from a wire-encode root are
// therefore scanned whole-body (not loop-scoped), and calls into
// encoding/json join fmt.* and the loggers on the forbidden list.
func HotLogCheck() *Check {
	return &Check{
		Name:       "hotlog",
		Doc:        "forbid logging (log/slog, log, fmt.Print*) in loops reachable from //ucatlint:hotpath roots and server worker loops, and any fmt/encoding/json use on the wire encode path",
		Severity:   SeverityError,
		RunProgram: runHotLog,
	}
}

func runHotLog(prog *Program) []Diagnostic {
	g := prog.Graph

	var roots, wireRoots []*FuncNode
	for _, n := range g.Nodes() {
		if hasHotpathDirective(n) || isServerWorker(n) {
			roots = append(roots, n)
		}
		if isWireEncode(n) {
			wireRoots = append(wireRoots, n)
		}
	}
	if len(roots) == 0 && len(wireRoots) == 0 {
		return nil
	}
	var hot, wireHot map[*FuncNode]bool
	if len(roots) > 0 {
		hot = g.ReachableFrom(roots)
	}
	if len(wireRoots) > 0 {
		wireHot = g.ReachableFrom(wireRoots)
	}

	// logs marks every function that reaches a logging call, seeded by the
	// functions containing one directly.
	logs := g.ReachesAny(func(n *FuncNode) bool {
		if n.Decl.Body == nil {
			return false
		}
		found := false
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok && loggingCall(n.Pkg, call) != "" {
				found = true
			}
			return !found
		})
		return found
	})

	// marshals marks every function that reaches encoding/json, seeded by the
	// functions calling into it directly. Only the wire-encode scan consults
	// it: JSON encoding is the DESIGN for the handler path, a violation only
	// where the binary codec's alloc pin holds.
	marshals := g.ReachesAny(func(n *FuncNode) bool {
		if n.Decl.Body == nil {
			return false
		}
		found := false
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok && wireFormattingCall(n.Pkg, call) != "" {
				found = true
			}
			return !found
		})
		return found
	})

	var diags []Diagnostic
	for _, n := range g.Nodes() {
		if n.Decl.Body == nil {
			continue
		}
		// The whole-body wire scan subsumes the loop scan (a loop body is part
		// of the body), so a function in both sets is scanned once.
		if wireHot[n] {
			diags = append(diags, wireLogInFunc(prog, n, logs, marshals)...)
			continue
		}
		if hot[n] {
			diags = append(diags, hotLogInFunc(prog, n, logs)...)
		}
	}
	return diags
}

// isWireEncode reports whether the function is a root of the binary wire
// codec's zero-alloc contract: any Append*/Decode* function in a package
// whose import path ends in internal/wire, or one of the server's binary
// response writers.
func isWireEncode(n *FuncNode) bool {
	name := n.Fn.Name()
	if strings.HasSuffix(n.Pkg.Path, "internal/wire") {
		return strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "Decode")
	}
	if strings.HasSuffix(n.Pkg.Path, "internal/server") {
		switch name {
		case "writeBinary", "writeBinaryError", "appendWireResponse":
			return true
		}
	}
	return false
}

// wireFormattingCall classifies one call expression against the wire encode
// path's forbidden list, returning a diagnostic-ready name when the callee is
// any fmt function or anything from encoding/json, and "" otherwise. Unlike
// loggingCall this bans ALL of fmt — Sprintf and Errorf allocate exactly like
// Println does, and the encode path has no error-path exemption because its
// errors are static sentinels.
func wireFormattingCall(pkg *Package, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return "fmt." + fn.Name()
	case "encoding/json":
		return "json." + fn.Name()
	}
	return ""
}

// wireLogInFunc flags formatting and logging machinery anywhere in one
// function on the wire encode path — whole-body, because the zero-alloc pin
// is per call, not per loop iteration.
func wireLogInFunc(prog *Program, n *FuncNode, logs, marshals map[*FuncNode]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(pos ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Pos:   n.Pkg.Fset.Position(pos.Pos()),
			Check: "hotlog",
			Msg:   msg + " (the wire encode path is allocation-free; use append-style encoders and static errors)",
		})
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := wireFormattingCall(n.Pkg, call); name != "" {
			report(call, "call to "+name+" on the wire encode path")
			return true
		}
		if name := loggingCall(n.Pkg, call); name != "" {
			report(call, "call to "+name+" on the wire encode path")
			return true
		}
		if site := prog.Graph.SiteOf(call); site != nil {
			for _, callee := range site.Callees {
				switch {
				case marshals[callee]:
					report(call, "call to "+callee.Name()+", which reaches fmt or encoding/json, on the wire encode path")
				case logs[callee]:
					report(call, "call to "+callee.Name()+", which logs, on the wire encode path")
				default:
					continue
				}
				break
			}
		}
		return true
	})
	return diags
}

// isServerWorker reports whether the function is an executor loop of the
// serving layer: a method or function named "worker" declared in a package
// whose import path ends in internal/server.
func isServerWorker(n *FuncNode) bool {
	return n.Fn.Name() == "worker" && strings.HasSuffix(n.Pkg.Path, "internal/server")
}

// loggingCall classifies one call expression, returning a diagnostic-ready
// name ("slog.Info", "(*Logger).Log", "fmt.Println") when the callee is a
// logging function and "" otherwise.
func loggingCall(pkg *Package, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "log/slog":
		return "slog." + fn.Name()
	case "log":
		return "log." + fn.Name()
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return "fmt." + fn.Name()
		}
	}
	return ""
}

// hotLogInFunc flags logging — direct or through a module callee that logs —
// inside the loop bodies of one hot function.
func hotLogInFunc(prog *Program, n *FuncNode, logs map[*FuncNode]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(pos ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Pos:   n.Pkg.Fset.Position(pos.Pos()),
			Check: "hotlog",
			Msg:   msg + " (logging belongs on the handler goroutine, not the execution path)",
		})
	}
	var loopBodies []ast.Node
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.ForStmt:
			loopBodies = append(loopBodies, s.Body)
		case *ast.RangeStmt:
			loopBodies = append(loopBodies, s.Body)
		}
		return true
	})
	inspected := make(map[ast.Node]bool)
	for i := 0; i < len(loopBodies); i++ {
		body := loopBodies[i]
		if inspected[body] {
			continue
		}
		inspected[body] = true
		ast.Inspect(body, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return false // its body has its own loopBodies entry
			case *ast.CallExpr:
				if name := loggingCall(n.Pkg, e); name != "" {
					report(e, fmt.Sprintf("call to %s in a hot loop", name))
					return true
				}
				if site := prog.Graph.SiteOf(e); site != nil {
					for _, callee := range site.Callees {
						if logs[callee] {
							report(e, fmt.Sprintf("call to %s, which logs, in a hot loop", callee.Name()))
							break
						}
					}
				}
				// A function literal passed as an argument (or invoked in
				// place) runs per element: audit its body as part of the loop.
				if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
					loopBodies = append(loopBodies, lit.Body)
				}
				for _, arg := range e.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						loopBodies = append(loopBodies, lit.Body)
					}
				}
			case *ast.FuncLit:
				// Queued above when invoked or passed along; scanning it in
				// place as well would double-report its body.
				return false
			}
			return true
		})
	}
	return diags
}

package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// HotLogCheck keeps logging off the query execution path. The serving
// design puts every request-log line on the handler goroutine (writeResult),
// never in the worker loops: a slog call formats its attributes and takes the
// handler's writer lock, which on an executor would serialize the worker pool
// behind the log sink and bill the formatting to query latency.
//
// Entry points are the //ucatlint:hotpath roots the hotalloc check already
// audits, plus every method named "worker" declared in a package whose import
// path ends in internal/server — the executor loops themselves. Inside the
// loop bodies of any function reachable from those roots (TopDown over the
// call graph), the check flags:
//
//   - any call into log/slog or the legacy log package;
//   - fmt.Print, fmt.Printf and fmt.Println — stdout logging by another name
//     (fmt.Fprint* against a caller-chosen writer stays legal: the span-tree
//     renderer writes trees through it);
//   - any call to a module function that transitively reaches one of the
//     above (BottomUp), so hiding the slog call one helper down does not
//     evade the check.
//
// Unlike hotalloc, loop-terminating branches are NOT exempt: a worker loop
// never exits per request, so "log then continue/return" still logs once per
// iteration. The fix is the one the server already implements — return the
// record to the handler (writeResult logs it) or count it in a metric.
func HotLogCheck() *Check {
	return &Check{
		Name:       "hotlog",
		Doc:        "forbid logging (log/slog, log, fmt.Print*) in loops reachable from //ucatlint:hotpath roots and server worker loops",
		Severity:   SeverityError,
		RunProgram: runHotLog,
	}
}

func runHotLog(prog *Program) []Diagnostic {
	g := prog.Graph

	var roots []*FuncNode
	for _, n := range g.Nodes() {
		if hasHotpathDirective(n) || isServerWorker(n) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	hot := g.ReachableFrom(roots)

	// logs marks every function that reaches a logging call, seeded by the
	// functions containing one directly.
	logs := g.ReachesAny(func(n *FuncNode) bool {
		if n.Decl.Body == nil {
			return false
		}
		found := false
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok && loggingCall(n.Pkg, call) != "" {
				found = true
			}
			return !found
		})
		return found
	})

	var diags []Diagnostic
	for _, n := range g.Nodes() {
		if !hot[n] || n.Decl.Body == nil {
			continue
		}
		diags = append(diags, hotLogInFunc(prog, n, logs)...)
	}
	return diags
}

// isServerWorker reports whether the function is an executor loop of the
// serving layer: a method or function named "worker" declared in a package
// whose import path ends in internal/server.
func isServerWorker(n *FuncNode) bool {
	return n.Fn.Name() == "worker" && strings.HasSuffix(n.Pkg.Path, "internal/server")
}

// loggingCall classifies one call expression, returning a diagnostic-ready
// name ("slog.Info", "(*Logger).Log", "fmt.Println") when the callee is a
// logging function and "" otherwise.
func loggingCall(pkg *Package, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "log/slog":
		return "slog." + fn.Name()
	case "log":
		return "log." + fn.Name()
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return "fmt." + fn.Name()
		}
	}
	return ""
}

// hotLogInFunc flags logging — direct or through a module callee that logs —
// inside the loop bodies of one hot function.
func hotLogInFunc(prog *Program, n *FuncNode, logs map[*FuncNode]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(pos ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Pos:   n.Pkg.Fset.Position(pos.Pos()),
			Check: "hotlog",
			Msg:   msg + " (logging belongs on the handler goroutine, not the execution path)",
		})
	}
	var loopBodies []ast.Node
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.ForStmt:
			loopBodies = append(loopBodies, s.Body)
		case *ast.RangeStmt:
			loopBodies = append(loopBodies, s.Body)
		}
		return true
	})
	inspected := make(map[ast.Node]bool)
	for i := 0; i < len(loopBodies); i++ {
		body := loopBodies[i]
		if inspected[body] {
			continue
		}
		inspected[body] = true
		ast.Inspect(body, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return false // its body has its own loopBodies entry
			case *ast.CallExpr:
				if name := loggingCall(n.Pkg, e); name != "" {
					report(e, fmt.Sprintf("call to %s in a hot loop", name))
					return true
				}
				if site := prog.Graph.SiteOf(e); site != nil {
					for _, callee := range site.Callees {
						if logs[callee] {
							report(e, fmt.Sprintf("call to %s, which logs, in a hot loop", callee.Name()))
							break
						}
					}
				}
				// A function literal passed as an argument (or invoked in
				// place) runs per element: audit its body as part of the loop.
				if lit, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
					loopBodies = append(loopBodies, lit.Body)
				}
				for _, arg := range e.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						loopBodies = append(loopBodies, lit.Body)
					}
				}
			case *ast.FuncLit:
				// Queued above when invoked or passed along; scanning it in
				// place as well would double-report its body.
				return false
			}
			return true
		})
	}
	return diags
}

package lint

import "testing"

func TestWalSyncUnsyncedAppendFlagged(t *testing.T) {
	// The seeded true positive: an ingest handler appends, acks, and never
	// syncs — the acknowledged record dies with the page cache on a crash.
	diags := runOn(t, WalSyncCheck(), "snip/ack", `package ack

import "ucat/internal/wal"

type server struct{ log *wal.Log }

func (s *server) handleIngest(recs []wal.Record) (uint64, error) {
	_, last, err := s.log.Append(recs)
	return last, err // acked un-synced
}
`)
	expect(t, diags, []string{
		"(server).handleIngest appends a WAL record but never reaches Sync",
	})
}

func TestWalSyncPairedInFunctionIsClean(t *testing.T) {
	// The core.Live.Apply template: append, sync, only then return the LSN.
	diags := runOn(t, WalSyncCheck(), "snip/paired", `package paired

import "ucat/internal/wal"

type engine struct{ log *wal.Log }

func (e *engine) apply(recs []wal.Record) (uint64, error) {
	_, last, err := e.log.Append(recs)
	if err != nil {
		return 0, err
	}
	if err := e.log.Sync(last); err != nil {
		return 0, err
	}
	return last, nil
}
`)
	expect(t, diags, nil)
}

func TestWalSyncDelegatedSyncIsClean(t *testing.T) {
	// Reaching Sync is interprocedural: delegating the barrier to a helper
	// keeps the appending function clean — the call graph connects them.
	diags := runOn(t, WalSyncCheck(), "snip/delegate", `package delegate

import "ucat/internal/wal"

type engine struct{ log *wal.Log }

func (e *engine) commit(lsn uint64) error { return e.log.Sync(lsn) }

func (e *engine) apply(recs []wal.Record) (uint64, error) {
	_, last, err := e.log.Append(recs)
	if err != nil {
		return 0, err
	}
	return last, e.commit(last)
}
`)
	expect(t, diags, nil)
}

func TestWalSyncCallerSideSyncStillFlagsTheAppender(t *testing.T) {
	// Stricter than "someone syncs eventually" on purpose: the helper that
	// appends returns an LSN a crash can still erase, and every frame between
	// it and the caller's sync is free to leak that LSN as an ack. The
	// responsibility pins to the function holding the Append call.
	diags := runOn(t, WalSyncCheck(), "snip/caller", `package caller

import "ucat/internal/wal"

type engine struct{ log *wal.Log }

func (e *engine) stage(recs []wal.Record) (uint64, error) {
	_, last, err := e.log.Append(recs)
	return last, err
}

func (e *engine) apply(recs []wal.Record) error {
	last, err := e.stage(recs)
	if err != nil {
		return err
	}
	return e.log.Sync(last)
}
`)
	expect(t, diags, []string{
		"(engine).stage appends a WAL record but never reaches Sync",
	})
}

func TestWalSyncUnrelatedAppendIgnored(t *testing.T) {
	// Only wal-package receivers seed the check: a slice append or another
	// type's Append method is not a durability boundary.
	diags := runOn(t, WalSyncCheck(), "snip/other", `package other

type buf struct{ b []byte }

func (x *buf) Append(p []byte) (int, int, error) {
	x.b = append(x.b, p...)
	return 0, len(x.b), nil
}

func use(x *buf, p []byte) {
	_, _, _ = x.Append(p)
}
`)
	expect(t, diags, nil)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// Stub dependency sources for snippet type-checking. The checks match on
// import path + type/method names, so minimal stubs under the real import
// paths exercise them without touching the real packages (or the slow
// source importer).
var stubSources = map[string]string{
	"ucat/internal/pager": `package pager

type PageID uint32

type Store struct{}

func (s *Store) ReadAt(pid PageID, dst []byte) error  { return nil }
func (s *Store) WriteAt(pid PageID, src []byte) error { return nil }
func (s *Store) Allocate() PageID                     { return 0 }
func (s *Store) Free(pid PageID) error                { return nil }
func (s *Store) NumPages() int                        { return 0 }

type Page struct {
	ID   PageID
	Data []byte
}

func (p *Page) Unpin(dirty bool) {}

type View interface {
	Fetch(pid PageID) (*Page, error)
}

type Pool struct{}

func (p *Pool) Fetch(pid PageID) (*Page, error) { return nil, nil }
func (p *Pool) NewPage() (*Page, error)         { return nil, nil }
func (p *Pool) Store() *Store                   { return nil }
func (p *Pool) FlushAll() error                 { return nil }

type Policy int

const CLOCK Policy = 0

func NewPool(store *Store, nframes int) *Pool                 { return nil }
func NewStripedPool(store *Store, nframes, nshards int) *Pool { return nil }
func NewSharedPool(store *Store, nframes, nshards int, policy Policy) *Pool {
	return nil
}

type Session struct{}

func (p *Pool) Session() *Session               { return nil }
func (s *Session) Fetch(pid PageID) (*Page, error) { return nil, nil }
`,
	"ucat/internal/wal": `package wal

type Type byte

type Record struct {
	Type Type
	TID  uint32
}

type Log struct{}

func (l *Log) Append(recs []Record) (first, last uint64, err error) { return 0, 0, nil }
func (l *Log) Sync(lsn uint64) error                                { return nil }
`,
	"ucat/internal/obs": `package obs

type Recorder struct{}

func NewRecorder() *Recorder { return &Recorder{} }

type Span struct{}

func (r *Recorder) StartSpan(name string) *Span { return nil }
func (s *Span) End()                            {}
func (s *Span) Attr(key, val string)            {}
`,
	"encoding/binary": `package binary

type byteOrder struct{}

func (byteOrder) Uint16(b []byte) uint16            { return 0 }
func (byteOrder) Uint32(b []byte) uint32            { return 0 }
func (byteOrder) Uint64(b []byte) uint64            { return 0 }
func (byteOrder) PutUint16(b []byte, v uint16)      {}
func (byteOrder) PutUint32(b []byte, v uint32)      {}
func (byteOrder) PutUint64(b []byte, v uint64)      {}

var LittleEndian byteOrder
var BigEndian byteOrder

func AppendUvarint(b []byte, v uint64) []byte { return b }
func Uvarint(b []byte) (uint64, int)          { return 0, 0 }
`,
	"encoding/json": `package json

func Marshal(v any) ([]byte, error)      { return nil, nil }
func Unmarshal(data []byte, v any) error { return nil }

type Encoder struct{}

func (e *Encoder) Encode(v any) error { return nil }
`,
	"context": `package context

import "time"

type Context interface {
	Done() <-chan struct{}
	Err() error
	Deadline() (deadline time.Time, ok bool)
	Value(key any) any
}

func Background() Context { return nil }
func TODO() Context       { return nil }

type CancelFunc func()

func WithCancel(parent Context) (Context, CancelFunc) { return parent, nil }
func WithDeadline(parent Context, d time.Time) (Context, CancelFunc) {
	return parent, nil
}
`,
	"time": `package time

type Time struct{}
type Duration int64

func Now() Time                  { return Time{} }
func (t Time) Add(d Duration) Time { return t }
`,
	"sync": `package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
`,
	"sync/atomic": `package atomic

func AddUint64(addr *uint64, delta uint64) uint64 { return 0 }
func LoadUint64(addr *uint64) uint64              { return 0 }
func StoreUint64(addr *uint64, val uint64)        {}
func AddInt64(addr *int64, delta int64) int64     { return 0 }
func LoadInt64(addr *int64) int64                 { return 0 }
func CompareAndSwapUint64(addr *uint64, old, new uint64) bool { return false }

type Uint64 struct{ v uint64 }

func (x *Uint64) Load() uint64       { return 0 }
func (x *Uint64) Store(val uint64)   {}
func (x *Uint64) Add(d uint64) uint64 { return 0 }
`,
	"fmt": `package fmt

func Sprintf(format string, a ...any) string        { return "" }
func Errorf(format string, a ...any) error          { return nil }
func Print(a ...any) (n int, err error)             { return 0, nil }
func Printf(format string, a ...any) (n int, err error) { return 0, nil }
func Println(a ...any) (n int, err error)           { return 0, nil }
func Fprintf(w any, format string, a ...any) (int, error) { return 0, nil }
`,
	"log/slog": `package slog

type Logger struct{}

func (l *Logger) Info(msg string, args ...any)  {}
func (l *Logger) Warn(msg string, args ...any)  {}
func (l *Logger) Error(msg string, args ...any) {}

func Default() *Logger                 { return nil }
func Info(msg string, args ...any)     {}
func Error(msg string, args ...any)    {}
`,
	"log": `package log

func Printf(format string, v ...any) {}
func Println(v ...any)               {}
`,
	"math/rand": `package rand

type Source interface{ Int63() int64 }

func NewSource(seed int64) Source { return nil }

type Rand struct{}

func New(src Source) *Rand       { return &Rand{} }
func (r *Rand) Intn(n int) int   { return 0 }
func (r *Rand) Float64() float64 { return 0 }

func Intn(n int) int                     { return 0 }
func Float64() float64                   { return 0 }
func Seed(seed int64)                    {}
func Shuffle(n int, swap func(i, j int)) {}
`,
}

// stubImporter resolves imports from stubSources only, so snippets
// type-check hermetically.
type stubImporter struct {
	fset  *token.FileSet
	cache map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.cache[path]; ok {
		return pkg, nil
	}
	src, ok := stubSources[path]
	if !ok {
		return nil, fmt.Errorf("stub importer: unknown import %q", path)
	}
	f, err := parser.ParseFile(si.fset, path+"/stub.go", src, 0)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: si}
	pkg, err := conf.Check(path, si.fset, []*ast.File{f}, nil)
	if err != nil {
		return nil, err
	}
	si.cache[path] = pkg
	return pkg, nil
}

// loadSnippet type-checks the given files (name → source) as one package
// under the given import path and returns it ready for the checks.
func loadSnippet(t *testing.T, path string, files map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	si := &stubImporter{fset: fset, cache: make(map[string]*types.Package)}
	var astFiles []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: si}
	tpkg, err := conf.Check(path, fset, astFiles, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: astFiles, Types: tpkg, Info: info}
}

// runOn runs one check (through the full runner, so directives apply) over a
// single-file snippet.
func runOn(t *testing.T, check *Check, path, src string) []Diagnostic {
	t.Helper()
	pkg := loadSnippet(t, path, map[string]string{"snippet.go": src})
	return Run([]*Package{pkg}, []*Check{check})
}

// expect asserts that the diagnostics match the wanted substrings, in order.
func expect(t *testing.T, diags []Diagnostic, want []string) {
	t.Helper()
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if got := diags[i].String(); !strings.Contains(got, w) {
			t.Errorf("diagnostic %d = %q, want it to contain %q", i, got, w)
		}
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// GlobalRandCheck flags uses of the global math/rand (and math/rand/v2)
// top-level functions in non-test code. The paper's figures are averages
// over randomly generated datasets and query workloads; every experiment
// path must thread an explicitly seeded *rand.Rand so a run is reproducible
// from its seed. The process-global source is shared mutable state — any
// new draw anywhere reorders every subsequent draw — so one stray
// rand.Float64() silently changes every dataset generated after it.
//
// Constructors (New, NewSource, NewZipf, ...) are allowed: they are how the
// seeded generators are built. Methods on *rand.Rand are always allowed.
func GlobalRandCheck() *Check {
	return &Check{
		Name: "globalrand",
		Doc:  "flag global math/rand functions in non-test code; thread a seeded *rand.Rand",
		Run:  runGlobalRand,
	}
}

// randConstructors are the math/rand package-level functions that build
// seeded generators rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalRand(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[ident].(*types.Func)
			if !ok || fn.Pkg() == nil || !isRandPath(fn.Pkg().Path()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand are the approved pattern
			}
			if randConstructors[fn.Name()] {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:   pkg.Fset.Position(ident.Pos()),
				Check: "globalrand",
				Msg: fmt.Sprintf("global %s.%s breaks run-for-run reproducibility; thread a seeded *rand.Rand instead",
					fn.Pkg().Path(), fn.Name()),
			})
			return true
		})
	}
	return diags
}

// Package lint implements ucatlint, a project-specific static analyzer for
// the invariants the paper's evaluation rests on. It is built only on the
// standard library's go/ast, go/parser, go/token and go/types (no
// golang.org/x/tools dependency) and follows the shape of the go/analysis
// ecosystem: a loader produces type-checked packages, independent checks run
// over each package and emit diagnostics, and a runner collects, filters and
// orders them.
//
// The checks guard three classes of invariants:
//
//   - Probability arithmetic: probability mass must sum to 1 within a
//     tolerance, so exact float comparison is almost always a bug (floatcmp).
//   - I/O accounting: the paper's headline metric is "disk I/Os per query",
//     which is only meaningful if every page access flows through the counted
//     buffer pool (ioaccount) and every flush/close error is observed
//     (droppederr) and every pinned page is released (pinleak).
//   - Determinism: experiments must thread an explicitly seeded *rand.Rand;
//     the global math/rand functions destroy reproducibility (globalrand),
//     and read-only query entry points must accept an injected pager.View so
//     parallel workers keep private, exactly-reproducible I/O accounting
//     (poolview).
//   - Documentation: the operational packages — the serving layer, the
//     observability toolkit and the decoded-page cache — must keep a
//     complete godoc surface, since OPERATIONS.md links operators straight
//     into it (exportdoc).
//
// A diagnostic can be suppressed with a directive comment on the same line or
// on the line immediately above:
//
//	//ucatlint:ignore <check> <reason>
//
// The reason is mandatory; directives without one (or naming an unknown
// check) are themselves reported under the "directive" check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is a single finding, positioned at file:line:col.
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String renders the diagnostic in the conventional file:line:col form used
// by go vet and compilers, so editors can jump to it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg, d.Check)
}

// Package is one type-checked package as seen by the checks: its syntax
// trees (non-test files only), the shared file set, and full type
// information.
type Package struct {
	Path  string // import path, e.g. "ucat/internal/uda"
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Check is one analyzer pass. Run inspects a single package and returns
// its raw diagnostics; suppression via ignore directives is handled by the
// runner, not by the check.
type Check struct {
	Name string
	Doc  string
	Run  func(pkg *Package) []Diagnostic
}

// DirectiveCheck is the name under which malformed //ucatlint:ignore
// comments are reported.
const DirectiveCheck = "directive"

// AllChecks returns every registered check, in stable order.
func AllChecks() []*Check {
	return []*Check{
		FloatcmpCheck(),
		IOAccountCheck(),
		DroppedErrCheck(),
		GlobalRandCheck(),
		PinleakCheck(),
		PoolViewCheck(),
		SpanEndCheck(),
		CacheVersionCheck(),
		ExportDocCheck(),
	}
}

// SelectChecks resolves a comma-separated list of check names ("" or "all"
// selects every check).
func SelectChecks(names string) ([]*Check, error) {
	all := AllChecks()
	if names == "" || names == "all" {
		return all, nil
	}
	byName := make(map[string]*Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*Check
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", n, strings.Join(checkNames(all), ", "))
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no checks selected from %q", names)
	}
	return out, nil
}

func checkNames(cs []*Check) []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// Run executes the checks over every package, applies ignore directives,
// validates the directives themselves, and returns the surviving diagnostics
// sorted by position.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	valid := make(map[string]bool)
	for _, c := range AllChecks() {
		valid[c.Name] = true
	}
	valid[DirectiveCheck] = true

	var out []Diagnostic
	for _, pkg := range pkgs {
		sup, dirDiags := collectDirectives(pkg, valid)
		for _, c := range checks {
			for _, d := range c.Run(pkg) {
				if sup.suppressed(d) {
					continue
				}
				out = append(out, d)
			}
		}
		out = append(out, dirDiags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// suppressions records, per file and line, which checks are ignored there.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, check string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	checks := lines[line]
	if checks == nil {
		checks = make(map[string]bool)
		lines[line] = checks
	}
	checks[check] = true
}

// suppressed reports whether d is covered by a directive on its own line or
// on the line immediately above it.
func (s suppressions) suppressed(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if lines[line][d.Check] || lines[line]["all"] {
			return true
		}
	}
	return false
}

const directivePrefix = "ucatlint:ignore"

// collectDirectives scans every comment in the package for ignore
// directives, building the suppression table and reporting malformed
// directives (missing reason, unknown check name).
func collectDirectives(pkg *Package, valid map[string]bool) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{Pos: pos, Check: DirectiveCheck,
						Msg: "ucatlint:ignore directive needs a check name and a reason"})
					continue
				}
				check := fields[0]
				if check != "all" && !valid[check] {
					diags = append(diags, Diagnostic{Pos: pos, Check: DirectiveCheck,
						Msg: fmt.Sprintf("ucatlint:ignore names unknown check %q", check)})
					continue
				}
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{Pos: pos, Check: DirectiveCheck,
						Msg: fmt.Sprintf("ucatlint:ignore %s needs a reason", check)})
					continue
				}
				sup.add(pos.Filename, pos.Line, check)
			}
		}
	}
	return sup, diags
}

// directiveText extracts the payload of a //ucatlint:ignore comment, or
// reports that the comment is not a directive.
func directiveText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // block comments are never directives
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, directivePrefix)
	if !ok {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// pagerPath is the one package allowed to touch the raw page store: all
// other packages must go through its counted buffer pool.
const pagerPath = "ucat/internal/pager"

// isTestFile reports whether the file's position name ends in _test.go. The
// loader does not feed test files to the checks, but checks also guard
// against it so they behave when driven directly in unit tests.
func isTestFile(pkg *Package, f *ast.File) bool {
	return strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
}

// namedOrPointerTo unwraps at most one pointer and reports the named type's
// package path and name, if t is (a pointer to) a named type.
func namedOrPointerTo(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// calleeFunc resolves the *types.Func a call expression invokes, whether
// through a plain identifier or a selector. It returns nil for calls through
// function values, conversions and built-ins.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

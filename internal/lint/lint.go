// Package lint implements ucatlint, a project-specific static analyzer for
// the invariants the paper's evaluation rests on. It is built only on the
// standard library's go/ast, go/parser, go/token and go/types (no
// golang.org/x/tools dependency) and follows the shape of the go/analysis
// ecosystem: a loader produces type-checked packages, independent checks run
// over each package and emit diagnostics, and a runner collects, filters and
// orders them.
//
// The checks guard three classes of invariants:
//
//   - Probability arithmetic: probability mass must sum to 1 within a
//     tolerance, so exact float comparison is almost always a bug (floatcmp).
//   - I/O accounting: the paper's headline metric is "disk I/Os per query",
//     which is only meaningful if every page access flows through the counted
//     buffer pool (ioaccount) and every flush/close error is observed
//     (droppederr) and every pinned page is released (pinleak).
//   - Determinism: experiments must thread an explicitly seeded *rand.Rand;
//     the global math/rand functions destroy reproducibility (globalrand),
//     and read-only query entry points must accept an injected pager.View so
//     parallel workers keep private, exactly-reproducible I/O accounting
//     (poolview).
//   - Documentation: the operational packages — the serving layer, the
//     observability toolkit and the decoded-page cache — must keep a
//     complete godoc surface, since OPERATIONS.md links operators straight
//     into it (exportdoc).
//
// A diagnostic can be suppressed with a directive comment on the same line or
// on the line immediately above:
//
//	//ucatlint:ignore <check> <reason>
//
// The reason is mandatory; directives without one (or naming an unknown
// check) are themselves reported under the "directive" check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity tiers a diagnostic. Errors fail the build (exit 1); warnings are
// reported but do not, which lets a new check land warn-first and be
// tightened once the tree is clean (see the baseline workflow in README).
type Severity string

const (
	// SeverityError marks findings that must be fixed or explicitly ignored.
	SeverityError Severity = "error"
	// SeverityWarn marks advisory findings (heuristic checks, new checks
	// landing warn-first).
	SeverityWarn Severity = "warn"
)

// Diagnostic is a single finding, positioned at file:line:col.
type Diagnostic struct {
	Pos      token.Position
	Check    string
	Msg      string
	Severity Severity // filled by the runner from the check when empty
}

// String renders the diagnostic in the conventional file:line:col form used
// by go vet and compilers, so editors can jump to it. Warnings carry a
// trailing marker; errors (the default tier) stay in the classic format.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg, d.Check)
	if d.Severity == SeverityWarn {
		s += " (warn)"
	}
	return s
}

// Package is one type-checked package as seen by the checks: its syntax
// trees (non-test files only), the shared file set, and full type
// information.
type Package struct {
	Path  string // import path, e.g. "ucat/internal/uda"
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Check is one analyzer pass. Exactly one of Run and RunProgram is set:
// Run inspects a single package at a time, RunProgram gets the whole module
// (all packages plus the call graph) for interprocedural analyses.
// Suppression via ignore directives is handled by the runner, not by the
// check; Severity defaults to SeverityError when empty.
type Check struct {
	Name       string
	Doc        string
	Severity   Severity
	Run        func(pkg *Package) []Diagnostic
	RunProgram func(prog *Program) []Diagnostic
}

// DirectiveCheck is the name under which malformed //ucatlint:ignore
// comments are reported.
const DirectiveCheck = "directive"

// AllChecks returns every registered check, in stable order: the original
// single-package passes first, then the interprocedural ones (DESIGN.md §17).
func AllChecks() []*Check {
	return []*Check{
		FloatcmpCheck(),
		IOAccountCheck(),
		DroppedErrCheck(),
		GlobalRandCheck(),
		PinleakCheck(),
		PoolViewCheck(),
		SharedPoolCheck(),
		SpanEndCheck(),
		CacheVersionCheck(),
		ExportDocCheck(),
		LockOrderCheck(),
		CtxFlowCheck(),
		HotAllocCheck(),
		HotLogCheck(),
		AtomicMixCheck(),
		WalSyncCheck(),
	}
}

// SelectChecks resolves a comma-separated list of check names ("" or "all"
// selects every check). An unknown name errors with the full list of valid
// names, plus a closest-match suggestion when one is near.
func SelectChecks(names string) ([]*Check, error) {
	all := AllChecks()
	if names == "" || names == "all" {
		return all, nil
	}
	byName := make(map[string]*Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*Check
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := byName[n]
		if !ok {
			valid := checkNames(all)
			sort.Strings(valid)
			hint := ""
			if s := closestName(n, valid); s != "" {
				hint = fmt.Sprintf(" (did you mean %q?)", s)
			}
			return nil, fmt.Errorf("lint: unknown check %q%s; valid checks: %s",
				n, hint, strings.Join(valid, ", "))
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no checks selected from %q", names)
	}
	return out, nil
}

func checkNames(cs []*Check) []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// closestName returns the candidate within edit distance 2 of name that is
// closest to it, or "" when nothing is near enough to suggest.
func closestName(name string, candidates []string) string {
	best, bestDist := "", 3
	for _, c := range candidates {
		if d := editDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short ASCII-ish
// strings, O(len(a)·len(b)) with a single rolling row.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Run executes the checks over every package, applies ignore directives,
// validates the directives themselves, and returns the surviving diagnostics
// sorted by position. Per-package checks run package by package;
// interprocedural checks (RunProgram) run once over the whole set, against a
// call graph built on demand. Findings in generated files (files opening
// with the standard "// Code generated ... DO NOT EDIT." comment) are
// dropped: generated code answers to its generator, not to hand-edits.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	valid := make(map[string]bool)
	for _, c := range AllChecks() {
		valid[c.Name] = true
	}
	valid[DirectiveCheck] = true

	// Suppressions are keyed by filename, so one global table collected from
	// every package serves per-package and whole-program checks alike.
	sup := make(suppressions)
	generated := make(map[string]bool)
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirDiags := collectDirectives(pkg, valid, sup)
		out = append(out, dirDiags...)
		for _, f := range pkg.Files {
			if isGeneratedFile(f) {
				generated[pkg.Fset.Position(f.Pos()).Filename] = true
			}
		}
	}
	var progChecks []*Check
	for _, c := range checks {
		if c.RunProgram != nil {
			progChecks = append(progChecks, c)
		}
	}
	raw := make([]Diagnostic, 0)
	for _, pkg := range pkgs {
		for _, c := range checks {
			if c.Run == nil {
				continue
			}
			for _, d := range c.Run(pkg) {
				raw = append(raw, fillSeverity(d, c))
			}
		}
	}
	if len(progChecks) > 0 {
		prog := NewProgram(pkgs)
		for _, c := range progChecks {
			for _, d := range c.RunProgram(prog) {
				raw = append(raw, fillSeverity(d, c))
			}
		}
	}
	for _, d := range raw {
		if sup.suppressed(d) || generated[d.Pos.Filename] {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// fillSeverity defaults a diagnostic's severity from its check (error when
// the check declares none); a check may still tier individual findings by
// setting Severity itself.
func fillSeverity(d Diagnostic, c *Check) Diagnostic {
	if d.Severity == "" {
		d.Severity = c.Severity
	}
	if d.Severity == "" {
		d.Severity = SeverityError
	}
	return d
}

// isGeneratedFile reports whether the file carries the standard generated-
// code marker (golang.org/s/generatedcode): a "// Code generated ... DO NOT
// EDIT." line comment before the package clause.
func isGeneratedFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "// Code generated ") &&
				strings.HasSuffix(c.Text, " DO NOT EDIT.") {
				return true
			}
		}
	}
	return false
}

// suppressions records, per file and line, which checks are ignored there.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, check string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	checks := lines[line]
	if checks == nil {
		checks = make(map[string]bool)
		lines[line] = checks
	}
	checks[check] = true
}

// suppressed reports whether d is covered by a directive on its own line or
// on the line immediately above it.
func (s suppressions) suppressed(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if lines[line][d.Check] || lines[line]["all"] {
			return true
		}
	}
	return false
}

const directivePrefix = "ucatlint:ignore"

// collectDirectives scans every comment in the package for ignore
// directives, adding them to the shared suppression table and reporting
// malformed directives (missing reason, unknown check name). A directive
// naming a check that is valid but not selected for this run is fine: the
// suppression simply never matches anything.
func collectDirectives(pkg *Package, valid map[string]bool, sup suppressions) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{Pos: pos, Check: DirectiveCheck, Severity: SeverityError,
						Msg: "ucatlint:ignore directive needs a check name and a reason"})
					continue
				}
				check := fields[0]
				if check != "all" && !valid[check] {
					diags = append(diags, Diagnostic{Pos: pos, Check: DirectiveCheck, Severity: SeverityError,
						Msg: fmt.Sprintf("ucatlint:ignore names unknown check %q", check)})
					continue
				}
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{Pos: pos, Check: DirectiveCheck, Severity: SeverityError,
						Msg: fmt.Sprintf("ucatlint:ignore %s needs a reason", check)})
					continue
				}
				sup.add(pos.Filename, pos.Line, check)
			}
		}
	}
	return diags
}

// directiveText extracts the payload of a //ucatlint:ignore comment, or
// reports that the comment is not a directive.
func directiveText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // block comments are never directives
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, directivePrefix)
	if !ok {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// pagerPath is the one package allowed to touch the raw page store: all
// other packages must go through its counted buffer pool.
const pagerPath = "ucat/internal/pager"

// isTestFile reports whether the file's position name ends in _test.go. The
// loader does not feed test files to the checks, but checks also guard
// against it so they behave when driven directly in unit tests.
func isTestFile(pkg *Package, f *ast.File) bool {
	return strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
}

// namedOrPointerTo unwraps at most one pointer and reports the named type's
// package path and name, if t is (a pointer to) a named type.
func namedOrPointerTo(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// calleeFunc resolves the *types.Func a call expression invokes, whether
// through a plain identifier or a selector. It returns nil for calls through
// function values, conversions and built-ins.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

package lint

import (
	"strings"
	"testing"
)

func TestDirectiveValidation(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "unknown check reported",
			src: `package p
//ucatlint:ignore nosuchcheck because reasons
func f() {}
`,
			want: []string{`unknown check "nosuchcheck"`},
		},
		{
			name: "missing reason reported",
			src: `package p
//ucatlint:ignore floatcmp
func f() {}
`,
			want: []string{"needs a reason"},
		},
		{
			name: "empty directive reported",
			src: `package p
//ucatlint:ignore
func f() {}
`,
			want: []string{"needs a check name and a reason"},
		},
		{
			name: "well-formed directive silent",
			src: `package p
//ucatlint:ignore floatcmp the comparison below is intentional
func f() {}
`,
			want: nil,
		},
		{
			name: "all with reason silent",
			src: `package p
//ucatlint:ignore all generated code
func f() {}
`,
			want: nil,
		},
		{
			name: "unrelated comments ignored",
			src: `package p
// ucatlint is great. See //ucatlint:ignore docs for syntax? No: that text
// is mid-comment, not a directive prefix.
func f() {}
`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkg := loadSnippet(t, testPkgPath, map[string]string{"snippet.go": tt.src})
			expect(t, Run([]*Package{pkg}, nil), tt.want)
		})
	}
}

func TestIgnoreAllSuppressesEveryCheck(t *testing.T) {
	src := `package p
func f(a, b float64) bool {
	return a == b //ucatlint:ignore all synthetic test fixture
}
`
	pkg := loadSnippet(t, testPkgPath, map[string]string{"snippet.go": src})
	expect(t, Run([]*Package{pkg}, AllChecks()), nil)
}

func TestRunOrdersDiagnosticsByPosition(t *testing.T) {
	src := `package p
import "math/rand"
func g() float64 { return rand.Float64() }
func f(a, b float64) bool { return a == b }
`
	pkg := loadSnippet(t, testPkgPath, map[string]string{"snippet.go": src})
	diags := Run([]*Package{pkg}, AllChecks())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Pos.Line > diags[1].Pos.Line {
		t.Errorf("diagnostics not sorted by line: %v", diags)
	}
	if diags[0].Check != "globalrand" || diags[1].Check != "floatcmp" {
		t.Errorf("unexpected check order: %v", diags)
	}
}

func TestSelectChecks(t *testing.T) {
	all, err := SelectChecks("all")
	if err != nil || len(all) != len(AllChecks()) {
		t.Fatalf("SelectChecks(all) = %d checks, err %v", len(all), err)
	}
	two, err := SelectChecks("floatcmp, pinleak")
	if err != nil {
		t.Fatalf("SelectChecks: %v", err)
	}
	if len(two) != 2 || two[0].Name != "floatcmp" || two[1].Name != "pinleak" {
		t.Errorf("SelectChecks picked %v", checkNames(two))
	}
	if _, err := SelectChecks("bogus"); err == nil {
		t.Error("SelectChecks(bogus) succeeded, want error")
	}
	if _, err := SelectChecks(","); err == nil {
		t.Error("SelectChecks(\",\") succeeded, want error")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Check: "floatcmp", Msg: "boom"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "x.go:3:7: boom [floatcmp]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDirectiveText(t *testing.T) {
	tests := []struct {
		comment string
		text    string
		ok      bool
	}{
		{"//ucatlint:ignore floatcmp reason", "floatcmp reason", true},
		{"// ucatlint:ignore floatcmp reason", "floatcmp reason", true},
		{"//ucatlint:ignore", "", true},
		{"// plain comment", "", false},
		{"/* ucatlint:ignore floatcmp reason */", "", false},
	}
	for _, tt := range tests {
		text, ok := directiveText(tt.comment)
		if ok != tt.ok || text != tt.text {
			t.Errorf("directiveText(%q) = %q, %v; want %q, %v", tt.comment, text, ok, tt.text, tt.ok)
		}
	}
}

func TestCheckDocsAndNames(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range AllChecks() {
		if c.Name == "" || c.Doc == "" || c.Run == nil {
			t.Errorf("check %+v is missing a name, doc or run function", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate check name %q", c.Name)
		}
		seen[c.Name] = true
		if strings.ToLower(c.Name) != c.Name {
			t.Errorf("check name %q must be lower-case", c.Name)
		}
	}
}

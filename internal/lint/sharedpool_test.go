package lint

import "testing"

func TestSharedPool(t *testing.T) {
	tests := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "NewPool in server flagged",
			path: "ucat/internal/server",
			src: `package server

import "ucat/internal/pager"

func build(store *pager.Store) *pager.Pool {
	return pager.NewPool(store, 100)
}
`,
			want: []string{"server constructs a private pool view via pager.NewPool"},
		},
		{
			name: "NewStripedPool in server flagged",
			path: "ucat/internal/server",
			src: `package server

import "ucat/internal/pager"

func build(store *pager.Store) *pager.Pool {
	return pager.NewStripedPool(store, 100, 4)
}
`,
			want: []string{"server constructs a private pool view via pager.NewStripedPool"},
		},
		{
			name: "NewSharedPool in server sanctioned",
			path: "ucat/internal/server",
			src: `package server

import "ucat/internal/pager"

func build(store *pager.Store) *pager.Pool {
	return pager.NewSharedPool(store, 400, 8, pager.CLOCK)
}
`,
			want: nil,
		},
		{
			name: "NewPool outside the server not flagged",
			path: "ucat/internal/exp",
			src: `package exp

import "ucat/internal/pager"

func freshView(store *pager.Store) *pager.Pool {
	return pager.NewPool(store, 100)
}
`,
			want: nil,
		},
		{
			name: "ignore directive suppresses",
			path: "ucat/internal/server",
			src: `package server

import "ucat/internal/pager"

func diagnosticView(store *pager.Store) *pager.Pool {
	//ucatlint:ignore sharedpool offline diagnostic endpoint, never on the request path
	return pager.NewPool(store, 10)
}
`,
			want: nil,
		},
	}
	check := SharedPoolCheck()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			expect(t, runOn(t, check, tt.path, tt.src), tt.want)
		})
	}
}

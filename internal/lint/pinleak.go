package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PinleakCheck is a heuristic leak detector for buffer-pool pins. A page
// obtained from Pool.Fetch or Pool.NewPage is pinned: it occupies a frame
// that the clock replacement cannot evict until Unpin. A leaked pin shrinks
// the effective pool — skewing the I/O counts the paper's figures are built
// on — and eventually exhausts the 100-frame pool entirely
// (ErrPoolExhausted).
//
// The heuristic: inside one function body, if a variable is assigned
// directly from Fetch/NewPage and the function neither calls Unpin on it
// (plain or deferred, including inside closures) nor lets it escape (returns
// it, passes it to another function, stores it in a composite, field, map,
// slice or channel), the pin can never be released — report it. Assigning
// the page to the blank identifier is reported unconditionally: the pin is
// unreachable from the moment of the call. Escaping pages are not reported;
// ownership transfer is a legitimate pattern and cross-function tracking is
// out of scope for a single-pass heuristic.
func PinleakCheck() *Check {
	return &Check{
		Name: "pinleak",
		Doc:  "flag Fetch/NewPage results that are neither Unpinned nor handed off in the same function",
		Run:  runPinleak,
	}
}

func runPinleak(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, pinleakFunc(pkg, fd)...)
		}
	}
	return diags
}

// pinMethod reports whether the call pins a page: a Fetch or NewPage method
// on (*)ucat/internal/pager.Pool.
func pinMethod(pkg *Package, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return "", false
	}
	if fn.Name() != "Fetch" && fn.Name() != "NewPage" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	path, name, ok := namedOrPointerTo(sig.Recv().Type())
	if !ok || path != pagerPath || name != "Pool" {
		return "", false
	}
	return fn.Name(), true
}

// pinleakFunc analyzes one function declaration.
func pinleakFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	parents := buildParents(fd)

	// Pass 1: find pin acquisitions bound to identifiers.
	type acquisition struct {
		obj    types.Object
		method string
		pos    ast.Node
	}
	var acqs []acquisition
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := pinMethod(pkg, call)
		if !ok {
			return true
		}
		ident, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if ident.Name == "_" {
			diags = append(diags, Diagnostic{
				Pos:   pkg.Fset.Position(call.Pos()),
				Check: "pinleak",
				Msg:   fmt.Sprintf("%s result discarded; the page stays pinned forever", method),
			})
			return true
		}
		obj := pkg.Info.Defs[ident]
		if obj == nil {
			obj = pkg.Info.Uses[ident]
		}
		if obj == nil {
			return true
		}
		acqs = append(acqs, acquisition{obj: obj, method: method, pos: call})
		return true
	})
	if len(acqs) == 0 {
		return diags
	}

	// Pass 2: classify every use of each acquired page variable.
	released := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)
	tracked := make(map[types.Object]bool, len(acqs))
	for _, a := range acqs {
		tracked[a.obj] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[ident]
		if obj == nil || !tracked[obj] {
			return true
		}
		switch use := classifyUse(parents, ident); use {
		case useUnpin:
			released[obj] = true
		case useEscape:
			escaped[obj] = true
		}
		return true
	})

	reported := make(map[types.Object]bool)
	for _, a := range acqs {
		if released[a.obj] || escaped[a.obj] || reported[a.obj] {
			continue
		}
		reported[a.obj] = true
		diags = append(diags, Diagnostic{
			Pos:   pkg.Fset.Position(a.pos.Pos()),
			Check: "pinleak",
			Msg: fmt.Sprintf("page from %s is never Unpinned in %s and does not escape; pin leaks a pool frame",
				a.method, fd.Name.Name),
		})
	}
	return diags
}

type useKind int

const (
	useNeutral useKind = iota // field access, reassignment target, declaration
	useUnpin                  // receiver of an Unpin call
	useEscape                 // handed to other code; ownership may transfer
)

// classifyUse decides what one mention of the page variable means for pin
// tracking, by looking at its syntactic parent.
func classifyUse(parents map[ast.Node]ast.Node, ident *ast.Ident) useKind {
	parent := parents[ident]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == ident && p.Sel.Name == "Unpin" {
			// pg.Unpin — whether plain, deferred, or inside a closure, the
			// release path exists.
			return useUnpin
		}
		if p.X == ident {
			return useNeutral // pg.Data, pg.ID, other method
		}
		return useNeutral
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == ident {
				return useNeutral // (re)definition
			}
		}
		return useEscape // appears on an RHS: aliased into another variable
	case *ast.ValueSpec:
		for _, n := range p.Names {
			if n == ident {
				return useNeutral
			}
		}
		return useEscape
	case *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt:
		return useNeutral // comparisons like pg != nil
	default:
		// Call argument, return value, composite literal, index expression,
		// channel send, … — the page leaves this function's control.
		return useEscape
	}
}

// buildParents records each node's immediate parent within the declaration.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

package lint

import (
	"testing"
)

// findNode locates a node by its diagnostic name ("f" or "(*T).m").
func findNode(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q; have %v", name, nodeNames(g))
	return nil
}

func nodeNames(g *CallGraph) []string {
	var out []string
	for _, n := range g.Nodes() {
		out = append(out, n.Name())
	}
	return out
}

// calleeNames flattens a node's resolved callees.
func calleeNames(n *FuncNode) map[string]bool {
	out := make(map[string]bool)
	for _, site := range n.Sites {
		for _, c := range site.Callees {
			out[c.Name()] = true
		}
	}
	return out
}

func TestCallGraphStaticAndMethodCalls(t *testing.T) {
	pkg := loadSnippet(t, "snip/cg", map[string]string{"cg.go": `package cg

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func helper() {}

func root() {
	helper()
	var c counter
	c.bump()
}
`})
	g := NewProgram([]*Package{pkg}).Graph
	root := findNode(t, g, "root")
	callees := calleeNames(root)
	if !callees["helper"] || !callees["(counter).bump"] {
		t.Errorf("root callees = %v, want helper and (counter).bump", callees)
	}
	helper := findNode(t, g, "helper")
	if len(helper.Callers) != 1 || helper.Callers[0] != root {
		t.Errorf("helper.Callers = %v, want [root]", helper.Callers)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	pkg := loadSnippet(t, "snip/iface", map[string]string{"iface.go": `package iface

type closer interface{ Close() error }

type file struct{}

func (f *file) Close() error { return nil }

type conn struct{}

func (c conn) Close() error { return nil }

type unrelated struct{}

// Close has the right name but the wrong signature, so unrelated does not
// satisfy closer and must not appear as a callee.
func (u unrelated) Close() {}

func shutdown(c closer) { _ = c.Close() }
`})
	g := NewProgram([]*Package{pkg}).Graph
	callees := calleeNames(findNode(t, g, "shutdown"))
	if !callees["(file).Close"] || !callees["(conn).Close"] {
		t.Errorf("shutdown callees = %v, want both Close implementations", callees)
	}
	if callees["(unrelated).Close"] {
		t.Errorf("shutdown callees include (unrelated).Close, which does not satisfy the interface")
	}
}

func TestCallGraphFunctionValues(t *testing.T) {
	pkg := loadSnippet(t, "snip/fv", map[string]string{"fv.go": `package fv

func double(x int) int { return 2 * x }

// onlyCalled is never mentioned outside call position, so a function value
// of its type can never reach it.
func onlyCalled(x int) int { return x }

func apply(f func(int) int, x int) int { return f(x) }

func root() int {
	_ = onlyCalled(1)
	return apply(double, 2)
}
`})
	g := NewProgram([]*Package{pkg}).Graph
	callees := calleeNames(findNode(t, g, "apply"))
	if !callees["double"] {
		t.Errorf("apply callees = %v, want double (address-taken, matching signature)", callees)
	}
	if callees["onlyCalled"] {
		t.Errorf("apply callees include onlyCalled, which is never address-taken")
	}
}

func TestCallGraphClosureAttribution(t *testing.T) {
	pkg := loadSnippet(t, "snip/clo", map[string]string{"clo.go": `package clo

func leaf() {}

func root() {
	f := func() { leaf() }
	f()
}
`})
	g := NewProgram([]*Package{pkg}).Graph
	callees := calleeNames(findNode(t, g, "root"))
	if !callees["leaf"] {
		t.Errorf("root callees = %v, want leaf (closure bodies attribute to the enclosing decl)", callees)
	}
}

func TestReachabilityHelpers(t *testing.T) {
	pkg := loadSnippet(t, "snip/reach", map[string]string{"reach.go": `package reach

func sink() {}

func mid() { sink() }

func top() { mid() }

func island() {}
`})
	g := NewProgram([]*Package{pkg}).Graph
	top, mid, sink, island := findNode(t, g, "top"), findNode(t, g, "mid"), findNode(t, g, "sink"), findNode(t, g, "island")

	down := g.ReachableFrom([]*FuncNode{top})
	if !down[top] || !down[mid] || !down[sink] || down[island] {
		t.Errorf("ReachableFrom(top) = {top:%v mid:%v sink:%v island:%v}, want true,true,true,false",
			down[top], down[mid], down[sink], down[island])
	}

	up := g.ReachesAny(func(n *FuncNode) bool { return n == sink })
	if !up[top] || !up[mid] || !up[sink] || up[island] {
		t.Errorf("ReachesAny(sink) = {top:%v mid:%v sink:%v island:%v}, want true,true,true,false",
			up[top], up[mid], up[sink], up[island])
	}
}

func TestCallGraphRecursionTerminates(t *testing.T) {
	pkg := loadSnippet(t, "snip/rec", map[string]string{"rec.go": `package rec

func ping(n int) int {
	if n == 0 {
		return 0
	}
	return pong(n - 1)
}

func pong(n int) int { return ping(n) }
`})
	g := NewProgram([]*Package{pkg}).Graph
	// A bottom-up pass over mutually recursive nodes must reach a fixed point.
	reaches := g.ReachesAny(func(n *FuncNode) bool { return n.Fn.Name() == "ping" })
	if !reaches[findNode(t, g, "pong")] {
		t.Errorf("pong should reach ping through the recursive cycle")
	}
}

// Interface satisfaction through pointer receivers must use the pointer
// type-set (a value-receiver method set never includes pointer methods).
func TestImplementationsOfPointerReceiver(t *testing.T) {
	pkg := loadSnippet(t, "snip/ptr", map[string]string{"ptr.go": `package ptr

type doer interface{ Do() }

type impl struct{}

func (i *impl) Do() {}

func run(d doer) { d.Do() }
`})
	g := NewProgram([]*Package{pkg}).Graph
	callees := calleeNames(findNode(t, g, "run"))
	if !callees["(impl).Do"] {
		t.Errorf("run callees = %v, want (impl).Do via pointer-receiver satisfaction", callees)
	}
}

package lint

import (
	"path/filepath"
	"testing"
)

func TestModulePath(t *testing.T) {
	tests := []struct {
		gomod string
		want  string
	}{
		{"module ucat\n\ngo 1.22\n", "ucat"},
		{"// a comment\nmodule example.com/x/y\n", "example.com/x/y"},
		{"module \"quoted/path\"\n", "quoted/path"},
		{"go 1.22\n", ""},
	}
	for _, tt := range tests {
		if got := modulePath(tt.gomod); got != tt.want {
			t.Errorf("modulePath(%q) = %q, want %q", tt.gomod, got, tt.want)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, mod, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	if mod != "ucat" {
		t.Errorf("module path = %q, want ucat", mod)
	}
	if filepath.Base(filepath.Join(root, "internal", "lint")) != "lint" {
		t.Errorf("unexpected root %q", root)
	}
	if _, _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Error("FindModuleRoot outside any module succeeded, want error")
	}
}

func TestLoadSinglePackage(t *testing.T) {
	if testing.Short() {
		t.Skip("loading real packages type-checks the stdlib from source; skipped in -short")
	}
	root, mod, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	loader := NewLoader(root, mod)
	pkgs, err := loader.Load([]string{"./internal/uda"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "ucat/internal/uda" {
		t.Fatalf("Load returned %d packages (%v), want exactly ucat/internal/uda", len(pkgs), pkgs)
	}
	pkg := pkgs[0]
	if len(pkg.Files) == 0 {
		t.Error("loaded package has no files")
	}
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			t.Errorf("loader included test file %s", pkg.Fset.Position(f.Pos()).Filename)
		}
	}
	if pkg.Types.Scope().Lookup("UDA") == nil {
		t.Error("type information is missing the UDA type")
	}
}

func TestLoadRejectsBadPattern(t *testing.T) {
	root, mod, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	loader := NewLoader(root, mod)
	if _, err := loader.Load([]string{"./no/such/dir"}); err == nil {
		t.Error("Load of a missing directory succeeded, want error")
	}
}

// TestSelfHost runs every check over the whole repository: the tree must
// stay lint-clean, so a PR that introduces a violation fails `go test` even
// before CI's dedicated ucatlint step.
func TestSelfHost(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo lint type-checks the stdlib from source; skipped in -short")
	}
	root, mod, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	loader := NewLoader(root, mod)
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded from ./...; expected the full repo", len(pkgs))
	}
	for _, d := range Run(pkgs, AllChecks()) {
		t.Errorf("repository is not lint-clean: %s", d)
	}
}

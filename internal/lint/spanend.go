package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// obsPath is the observability package whose span API this check guards.
// The package itself is exempt: it manipulates span lifecycles internally.
const obsPath = "ucat/internal/obs"

// SpanEndCheck enforces the span-lifecycle discipline: every call to an
// obs Start*Span function must bind its result to a variable and pair it
// with a `defer sp.End()` in the same function. An unended span corrupts the
// trace two ways: the recorder's current-span pointer stays parked on the
// dead span, so all later I/O in the query is attributed to it, and its
// duration is never stamped. The defer form is required — a plain End() call
// on some paths leaks the span on every early return and panic unwind.
//
// Function literals are separate scopes: a span started in a closure must be
// ended by a defer in that closure, not in the enclosing function (by the
// time the closure's span would be deferred-End'ed by the outer function,
// other spans may have opened and closed, interleaving the tree).
func SpanEndCheck() *Check {
	return &Check{
		Name: "spanend",
		Doc:  "require every obs.Start*Span result to be bound and defer-End()ed in the same function",
		Run:  runSpanEnd,
	}
}

func runSpanEnd(pkg *Package) []Diagnostic {
	if pkg.Path == obsPath {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Each function literal is its own scope; collect them all (the
			// declaration body is the root scope) and analyze separately.
			for _, body := range functionScopes(fd.Body) {
				diags = append(diags, spanEndScope(pkg, fd.Name.Name, body)...)
			}
		}
	}
	return diags
}

// functionScopes returns root plus the body of every function literal nested
// anywhere inside it.
func functionScopes(root *ast.BlockStmt) []*ast.BlockStmt {
	scopes := []*ast.BlockStmt{root}
	ast.Inspect(root, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			scopes = append(scopes, fl.Body)
		}
		return true
	})
	return scopes
}

// startSpanCall reports whether the call invokes an obs Start*Span function.
func startSpanCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return "", false
	}
	name := fn.Name()
	if !strings.HasPrefix(name, "Start") || !strings.HasSuffix(name, "Span") {
		return "", false
	}
	return name, true
}

// spanEndScope checks one function scope: Start*Span results must be bound
// to an identifier with a matching defer End() at this scope's level (not
// inside a nested function literal).
func spanEndScope(pkg *Package, funcName string, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic

	type started struct {
		obj  types.Object
		name string // Start function name, for the message
		pos  ast.Node
	}
	var spans []started
	ended := make(map[types.Object]bool)

	// walk visits nodes of this scope only, skipping nested FuncLit bodies.
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch node := m.(type) {
			case *ast.FuncLit:
				return false // separate scope
			case *ast.DeferStmt:
				// defer sp.End()
				if sel, ok := ast.Unparen(node.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
					if ident, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if obj := pkg.Info.Uses[ident]; obj != nil {
							ended[obj] = true
						}
					}
				}
				return true
			case *ast.AssignStmt:
				if len(node.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(node.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := startSpanCall(pkg, call)
				if !ok {
					return true
				}
				ident, ok := node.Lhs[0].(*ast.Ident)
				if !ok || ident.Name == "_" {
					diags = append(diags, Diagnostic{
						Pos:   pkg.Fset.Position(call.Pos()),
						Check: "spanend",
						Msg:   fmt.Sprintf("%s result discarded in %s; the span is never End()ed", name, funcName),
					})
					return true
				}
				obj := pkg.Info.Defs[ident]
				if obj == nil {
					obj = pkg.Info.Uses[ident]
				}
				if obj != nil {
					spans = append(spans, started{obj: obj, name: name, pos: call})
				}
				return true
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(node.X).(*ast.CallExpr); ok {
					if name, ok := startSpanCall(pkg, call); ok {
						diags = append(diags, Diagnostic{
							Pos:   pkg.Fset.Position(call.Pos()),
							Check: "spanend",
							Msg:   fmt.Sprintf("%s result discarded in %s; the span is never End()ed", name, funcName),
						})
					}
				}
				return true
			}
			return true
		})
	}
	walk(body)

	for _, s := range spans {
		if ended[s.obj] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   pkg.Fset.Position(s.pos.Pos()),
			Check: "spanend",
			Msg: fmt.Sprintf("span from %s has no matching defer End() in %s; the trace tree stays open",
				s.name, funcName),
		})
	}
	return diags
}

package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// exportDocPackages is the closed set of packages whose exported godoc
// surface the exportdoc check audits. These are the packages other code (and
// operators reading OPERATIONS.md) program against: the serving layer, the
// observability toolkit, the decoded-page cache, and the binary wire codec
// (its frame layout is a cross-process contract — clients in other repos
// decode what AppendResponse writes). Packages are opted in
// deliberately — a repo-wide doc mandate would bury the signal in noise from
// experiment scaffolding.
var exportDocPackages = map[string]bool{
	"ucat/internal/server": true,
	"ucat/internal/obs":    true,
	"ucat/internal/dcache": true,
	"ucat/internal/wire":   true,
}

// ExportDocCheck enforces a complete godoc surface on the audited packages:
// the package itself and every exported top-level declaration — functions,
// types, methods on exported types, and const/var specs — must carry a doc
// comment. A doc comment on a grouped const/var declaration covers every
// name in the group.
//
// The check exists because these packages are the repo's operational API:
// ucatd wires server, every tool wires obs, and OPERATIONS.md links straight
// into their godoc. An undocumented exported name there is a hole in the
// operator's manual, not a style nit.
func ExportDocCheck() *Check {
	return &Check{
		Name: "exportdoc",
		Doc:  "require doc comments on the package and every exported identifier in audited packages",
		Run:  runExportDoc,
	}
}

func runExportDoc(pkg *Package) []Diagnostic {
	if !exportDocPackages[pkg.Path] {
		return nil
	}
	var diags []Diagnostic
	pkgDocumented := false
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			pkgDocumented = true
		}
		for _, decl := range f.Decls {
			diags = append(diags, exportDocDecl(pkg, decl)...)
		}
	}
	if !pkgDocumented {
		// Position the finding on the first non-test file's package clause.
		for _, f := range pkg.Files {
			if isTestFile(pkg, f) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:   pkg.Fset.Position(f.Name.Pos()),
				Check: "exportdoc",
				Msg:   fmt.Sprintf("package %s has no package doc comment", pkg.Types.Name()),
			})
			break
		}
	}
	return diags
}

// exportDocDecl audits one top-level declaration.
func exportDocDecl(pkg *Package, decl ast.Decl) []Diagnostic {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		return exportDocFunc(pkg, d)
	case *ast.GenDecl:
		return exportDocGen(pkg, d)
	}
	return nil
}

// exportDocFunc audits a function or method declaration. Methods count only
// when both the method and its receiver type are exported — a method on an
// unexported type is invisible in godoc.
func exportDocFunc(pkg *Package, d *ast.FuncDecl) []Diagnostic {
	if !d.Name.IsExported() {
		return nil
	}
	what := "function"
	if d.Recv != nil && len(d.Recv.List) > 0 {
		recv := receiverTypeName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return nil
		}
		what = "method (*" + recv + ")"
	}
	if hasDoc(d.Doc) {
		return nil
	}
	return []Diagnostic{{
		Pos:   pkg.Fset.Position(d.Name.Pos()),
		Check: "exportdoc",
		Msg:   fmt.Sprintf("exported %s %s has no doc comment", what, d.Name.Name),
	}}
}

// exportDocGen audits a const, var or type declaration. A doc comment on the
// declaration group covers all of its specs; otherwise each exported spec
// needs its own.
func exportDocGen(pkg *Package, d *ast.GenDecl) []Diagnostic {
	groupDocumented := hasDoc(d.Doc)
	var diags []Diagnostic
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if groupDocumented || hasDoc(s.Doc) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:   pkg.Fset.Position(s.Name.Pos()),
				Check: "exportdoc",
				Msg:   fmt.Sprintf("exported type %s has no doc comment", s.Name.Name),
			})
		case *ast.ValueSpec:
			if groupDocumented || hasDoc(s.Doc) || hasDoc(s.Comment) {
				continue
			}
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				kind := "var"
				if d.Tok.String() == "const" {
					kind = "const"
				}
				diags = append(diags, Diagnostic{
					Pos:   pkg.Fset.Position(name.Pos()),
					Check: "exportdoc",
					Msg:   fmt.Sprintf("exported %s %s has no doc comment", kind, name.Name),
				})
			}
		}
	}
	return diags
}

// receiverTypeName unwraps a method receiver type expression ("T", "*T",
// "T[P]") to the bare type name.
func receiverTypeName(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.IndexExpr:
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return ""
}

// hasDoc reports whether a comment group carries actual text.
func hasDoc(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

package lint

import "testing"

func TestPoolView(t *testing.T) {
	tests := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "query method fetching via concrete pool flagged",
			path: testPkgPath,
			src: `package p

import "ucat/internal/pager"

type Index struct{ pool *pager.Pool }

func (ix *Index) PETQ(tau float64) error {
	pg, err := ix.pool.Fetch(1)
	if err != nil {
		return err
	}
	pg.Unpin(false)
	return nil
}
`,
			want: []string{"query entry point PETQ fetches through *pager.Pool directly"},
		},
		{
			name: "query method fetching via injected view not flagged",
			path: testPkgPath,
			src: `package p

import "ucat/internal/pager"

type Reader struct{ view pager.View }

func (r *Reader) TopK(k int) error {
	pg, err := r.view.Fetch(1)
	if err != nil {
		return err
	}
	pg.Unpin(false)
	return nil
}
`,
			want: nil,
		},
		{
			name: "pool parameter on query function flagged",
			path: testPkgPath,
			src: `package p

import "ucat/internal/pager"

func DSTQ(pool *pager.Pool, tau float64) error {
	_ = pool
	return nil
}
`,
			want: []string{"query entry point DSTQ takes a *pager.Pool parameter"},
		},
		{
			name: "view parameter on query function not flagged",
			path: testPkgPath,
			src: `package p

import "ucat/internal/pager"

func WindowPETQ(v pager.View, tau float64) error {
	pg, err := v.Fetch(1)
	if err != nil {
		return err
	}
	pg.Unpin(false)
	return nil
}
`,
			want: nil,
		},
		{
			name: "unexported strategy twin flagged",
			path: testPkgPath,
			src: `package p

import "ucat/internal/pager"

type tree struct{ pool *pager.Pool }

func (t *tree) nraTopK(k int) error {
	pg, err := t.pool.Fetch(2)
	if err != nil {
		return err
	}
	pg.Unpin(false)
	return nil
}
`,
			want: []string{"query entry point nraTopK fetches through *pager.Pool directly"},
		},
		{
			name: "write path owning the pool not flagged",
			path: testPkgPath,
			src: `package p

import "ucat/internal/pager"

type tree struct{ pool *pager.Pool }

func (t *tree) Insert(x int) error {
	pg, err := t.pool.Fetch(1)
	if err != nil {
		return err
	}
	pg.Unpin(true)
	np, err := t.pool.NewPage()
	if err != nil {
		return err
	}
	np.Unpin(true)
	return nil
}
`,
			want: nil,
		},
		{
			name: "pager package itself exempt",
			path: "ucat/internal/pager",
			src: `package pager

type PageID uint32

type Page struct{}

func (p *Page) Unpin(dirty bool) {}

type Pool struct{}

func (p *Pool) Fetch(pid PageID) (*Page, error) { return nil, nil }

func (p *Pool) selfPETQ() {
	pg, _ := p.Fetch(1)
	pg.Unpin(false)
}
`,
			want: nil,
		},
		{
			name: "both patterns in one function reported once each",
			path: testPkgPath,
			src: `package p

import "ucat/internal/pager"

func MultiPETQ(pool *pager.Pool) error {
	pg, err := pool.Fetch(3)
	if err != nil {
		return err
	}
	pg.Unpin(false)
	return nil
}
`,
			want: []string{
				"query entry point MultiPETQ takes a *pager.Pool parameter",
				"query entry point MultiPETQ fetches through *pager.Pool directly",
			},
		},
		{
			name: "ignore directive suppresses",
			path: testPkgPath,
			src: `package p

import "ucat/internal/pager"

type Index struct{ pool *pager.Pool }

func (ix *Index) PEQ() error {
	//ucatlint:ignore poolview sequential-only diagnostic helper, never run by the parallel harness
	pg, err := ix.pool.Fetch(1)
	if err != nil {
		return err
	}
	pg.Unpin(false)
	return nil
}
`,
			want: nil,
		},
	}
	check := PoolViewCheck()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			expect(t, runOn(t, check, tt.path, tt.src), tt.want)
		})
	}
}

package lint

import "testing"

func TestAtomicMixFlagsPlainFieldAccess(t *testing.T) {
	diags := runOn(t, AtomicMixCheck(), "snip/mix", `package mix

import "sync/atomic"

type stats struct{ hits uint64 }

func (s *stats) inc() { atomic.AddUint64(&s.hits, 1) }

func (s *stats) snapshot() uint64 {
	return s.hits // plain read of an atomically-written field
}
`)
	expect(t, diags, []string{
		"plain access of hits, which is accessed atomically at",
	})
}

func TestAtomicMixFlagsPlainWrite(t *testing.T) {
	diags := runOn(t, AtomicMixCheck(), "snip/mixw", `package mixw

import "sync/atomic"

type stats struct{ hits uint64 }

func (s *stats) load() uint64 { return atomic.LoadUint64(&s.hits) }

func (s *stats) reset() {
	s.hits = 0 // plain write
}
`)
	expect(t, diags, []string{
		"plain access of hits, which is accessed atomically at",
	})
}

func TestAtomicMixAllAtomicIsClean(t *testing.T) {
	diags := runOn(t, AtomicMixCheck(), "snip/okmix", `package okmix

import "sync/atomic"

type stats struct{ hits uint64 }

func (s *stats) inc() uint64  { return atomic.AddUint64(&s.hits, 1) }
func (s *stats) load() uint64 { return atomic.LoadUint64(&s.hits) }
func (s *stats) clear()       { atomic.StoreUint64(&s.hits, 0) }
`)
	expect(t, diags, nil)
}

func TestAtomicMixCompositeLiteralExempt(t *testing.T) {
	// Construction happens-before sharing: initializing the field in a
	// literal is not a racy access.
	diags := runOn(t, AtomicMixCheck(), "snip/lit", `package lit

import "sync/atomic"

type stats struct{ hits uint64 }

func newStats() *stats { return &stats{hits: 0} }

func (s *stats) inc() { atomic.AddUint64(&s.hits, 1) }
`)
	expect(t, diags, nil)
}

func TestAtomicMixPackageVar(t *testing.T) {
	diags := runOn(t, AtomicMixCheck(), "snip/gvar", `package gvar

import "sync/atomic"

var requests uint64

func inc() { atomic.AddUint64(&requests, 1) }

func current() uint64 { return requests } // plain read
`)
	expect(t, diags, []string{
		"plain access of requests, which is accessed atomically at",
	})
}

func TestAtomicMixCrossFileWithinPackage(t *testing.T) {
	// The atomic use and the plain access live in different files; the
	// location table is keyed by the field object, which both files share.
	pkg := loadSnippet(t, "snip/xfile", map[string]string{
		"a.go": `package xfile

import "sync/atomic"

type gauge struct{ v int64 }

func (g *gauge) add(d int64) { atomic.AddInt64(&g.v, d) }
`,
		"b.go": `package xfile

func (g *gauge) read() int64 { return g.v }
`,
	})
	diags := Run([]*Package{pkg}, []*Check{AtomicMixCheck()})
	expect(t, diags, []string{
		"plain access of v, which is accessed atomically at",
	})
}

func TestAtomicMixTypedAtomicsUnaffected(t *testing.T) {
	// The typed wrappers never expose the raw word, so there is nothing to
	// cross-check — and their method calls must not confuse the analysis.
	diags := runOn(t, AtomicMixCheck(), "snip/typed", `package typed

import "sync/atomic"

type stats struct{ hits atomic.Uint64 }

func (s *stats) inc() uint64  { return s.hits.Add(1) }
func (s *stats) load() uint64 { return s.hits.Load() }
`)
	expect(t, diags, nil)
}

func TestAtomicMixLocalsIgnored(t *testing.T) {
	diags := runOn(t, AtomicMixCheck(), "snip/local", `package local

import "sync/atomic"

func scratch() uint64 {
	var n uint64
	atomic.AddUint64(&n, 1)
	return n
}
`)
	expect(t, diags, nil)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FindModuleRoot walks up from dir to the enclosing go.mod and returns the
// module root directory and the module path declared in it.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, rerr := os.ReadFile(gomod); rerr == nil {
			mp := modulePath(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("lint: no module path in %s", gomod)
			}
			return dir, mp, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// Loader parses and type-checks packages of one module, resolving
// module-internal imports from source on disk and everything else (the
// standard library) through go/importer's source importer. It is stdlib-only
// by construction.
type Loader struct {
	Root    string // module root directory
	ModPath string // module path from go.mod

	fset *token.FileSet
	pkgs map[string]*Package // import path → loaded package
	std  types.Importer
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		ModPath: modPath,
		fset:    fset,
		pkgs:    make(map[string]*Package),
		std:     importer.ForCompiler(fset, "source", nil),
	}
}

// Load resolves the patterns ("./...", "./dir/...", "./dir") to package
// directories under the module root and returns the type-checked packages in
// deterministic (import path) order. Test files are not loaded: every check
// targets non-test code.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// expand turns the CLI patterns into a sorted, de-duplicated list of
// candidate package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: not a directory under %s", pat, l.Root)
		}
		if !recursive {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: directory %s is outside module root %s", dir, l.Root)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks one module package (nil if the directory holds
// no buildable Go files), caching the result.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); noGo {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal packages are loaded from
// source under the module root, everything else is delegated to the standard
// library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.load(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in package %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

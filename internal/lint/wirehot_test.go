package lint

import "testing"

// The wire-encode extension of hotlog: Append*/Decode* functions in a
// package ending internal/wire (and the server's binary writers) are roots,
// and everything they reach is scanned whole-body for fmt, encoding/json,
// and logging — not just inside loops, because the encode path's zero-alloc
// pin is per call.

func TestWireHotFmtOutsideLoopFlagged(t *testing.T) {
	src := `package wire

import "fmt"

// AppendResponse is a wire-encode root by name and package: the Sprintf
// sits outside any loop, which the plain hotpath checks would excuse but
// the whole-body wire scan must not.
func AppendResponse(dst []byte, kind int) []byte {
	dst = append(dst, byte(kind))
	dst = append(dst, fmt.Sprintf("%d", kind)...)
	return dst
}
`
	diags := runOn(t, HotLogCheck(), "ucat/internal/wire", src)
	expect(t, diags, []string{"call to fmt.Sprintf on the wire encode path"})
}

func TestWireHotJSONTransitiveThroughHelper(t *testing.T) {
	src := `package server

import "encoding/json"

// writeBinary is a wire-encode root by name in internal/server; hiding the
// marshal one helper down must not evade the check.
func writeBinary(v any) []byte {
	return encodeBody(v)
}

func encodeBody(v any) []byte {
	b, _ := json.Marshal(v)
	return b
}
`
	diags := runOn(t, HotLogCheck(), "ucat/internal/server", src)
	expect(t, diags, []string{
		"call to encodeBody, which reaches fmt or encoding/json, on the wire encode path",
		"call to json.Marshal on the wire encode path",
	})
}

func TestWireHotErrorfHasNoExemption(t *testing.T) {
	src := `package wire

import "fmt"

// DecodeFrame: fmt.Errorf on the error return is the idiom the hotalloc
// error-path exemption tolerates elsewhere, but the wire codec's errors are
// static sentinels precisely so decode stays allocation-free — Errorf is a
// violation here even on an exit path.
func DecodeFrame(b []byte) (byte, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("short frame: %d bytes", len(b))
	}
	return b[2], b[8:], nil
}
`
	diags := runOn(t, HotLogCheck(), "ucat/internal/wire", src)
	expect(t, diags, []string{"call to fmt.Errorf on the wire encode path"})
}

func TestWireHotRootsNeedWirePackageOrServerWriter(t *testing.T) {
	src := `package report

import (
	"encoding/json"
	"fmt"
)

// AppendSummary matches the wire root NAME pattern but not the package:
// ordinary code keeps its fmt and json without directives or diagnostics.
func AppendSummary(dst []byte, v any) []byte {
	b, _ := json.Marshal(v)
	dst = append(dst, b...)
	return append(dst, fmt.Sprintf("%v", v)...)
}
`
	diags := runOn(t, HotLogCheck(), "ucat/internal/report", src)
	expect(t, diags, nil)
}

func TestWireHotAllocUnsizedMakeInDecodeLoop(t *testing.T) {
	src := `package wire

// DecodeRequest is a hotalloc root without any //ucatlint:hotpath
// directive: the unsized make inside its pair loop grows by reallocation
// per element, exactly what the codec's count() pre-sizing exists to avoid.
func DecodeRequest(b []byte) [][]byte {
	var out [][]byte
	for len(b) > 0 {
		m := make([]byte, 0)
		m = append(m, b[0])
		out = append(out, m)
		b = b[1:]
	}
	return out
}
`
	diags := runOn(t, HotAllocCheck(), "ucat/internal/wire", src)
	expect(t, diags, []string{"make with zero length and no capacity"})
}

func TestWireHotCleanEncoderStaysClean(t *testing.T) {
	src := `package wire

import "encoding/binary"

// AppendRequest written the way the real codec is — append-style varints,
// sized buffers, no formatting — must produce no findings from either check.
func AppendRequest(dst []byte, pairs []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pairs)))
	for _, p := range pairs {
		dst = binary.AppendUvarint(dst, p)
	}
	return dst
}
`
	expect(t, runOn(t, HotLogCheck(), "ucat/internal/wire", src), nil)
	expect(t, runOn(t, HotAllocCheck(), "ucat/internal/wire", src), nil)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrderCheck guards against the deadlock class the shared-pool refactor
// invites: two call chains that acquire the same pair of mutexes in opposite
// orders. The striped pager (one mutex per shard), the server's drainGate
// and the PETQ batcher each own sync.Mutex/RWMutex state, and a function
// that calls into another package while holding one of them silently commits
// the whole module to an acquisition order no single file shows.
//
// The analysis is interprocedural, built on the call graph and the BottomUp
// dataflow driver (DESIGN.md §17):
//
//  1. Every mutex is classified by *where it lives*, not which instance it
//     is: a field "mu" of type shard in package pager is the class
//     "ucat/internal/pager.shard.mu", whether the shard is the first stripe
//     or the tenth. Package-level mutexes classify by variable name;
//     function-local mutexes are ignored (they cannot participate in a
//     cross-function cycle). Promoted embedded mutexes classify by the
//     embedding type's field.
//  2. A BottomUp fixed point computes each function's lockset summary: the
//     classes it — or anything it may transitively call — may acquire.
//  3. A source-order walk of each body tracks the held set (Lock/RLock add,
//     Unlock/RUnlock remove, deferred unlocks hold to function exit) and
//     records an ordered pair (held, acquired) for every direct acquisition
//     and, via the callee summaries, for every call made while holding a
//     lock. Function literals are walked as their own scopes: a closure
//     runs on its own goroutine's stack, so it does not inherit the
//     creating function's held set.
//  4. Two ordered pairs (a, b) and (b, a) between distinct classes are an
//     inversion: both acquisition sites are reported. Acquiring a class
//     that is already held (directly or through a callee that may acquire
//     it) is reported as a potential self-deadlock — Go mutexes are not
//     reentrant.
//
// The walk is linear in source order, so a branch that unlocks on one arm
// only is approximated; RLock and Lock share a class (a read lock inverted
// against a write lock still deadlocks once a writer queues up). These
// approximations and the call graph's conservative dynamic resolution can
// produce findings on orders that never interleave at run time — suppress
// those with an ignore directive naming the external ordering argument.
func LockOrderCheck() *Check {
	return &Check{
		Name:       "lockorder",
		Doc:        "flag inconsistent mutex acquisition orders across call chains (interprocedural)",
		Severity:   SeverityError,
		RunProgram: runLockOrder,
	}
}

// lockPair is one observed ordered acquisition: inner acquired (directly or
// via a call) while outer was held.
type lockPair struct {
	outer, inner string
	pos          token.Position
	via          string // callee name when the acquisition is call-mediated
}

func runLockOrder(prog *Program) []Diagnostic {
	g := prog.Graph

	// Fact: the set of lock classes each function may (transitively) acquire.
	acquires := make(map[*FuncNode]map[string]bool)
	g.Fixpoint(BottomUp, func(n *FuncNode) bool {
		set := acquires[n]
		if set == nil {
			set = directLockClasses(n)
			acquires[n] = set
		}
		before := len(set)
		for _, site := range n.Sites {
			for _, callee := range site.Callees {
				for c := range acquires[callee] {
					set[c] = true
				}
			}
		}
		return len(set) != before
	})

	var pairs []lockPair
	var diags []Diagnostic
	for _, n := range g.Nodes() {
		if n.Decl.Body == nil {
			continue
		}
		w := &lockWalker{pkg: n.Pkg, graph: g, acquires: acquires, pairs: &pairs, diags: &diags}
		w.walkScope(n.Decl.Body)
	}

	// Inversions: (a, b) and (b, a) both observed, a ≠ b. Report the first
	// site of each direction, deterministically.
	byDir := make(map[[2]string]lockPair)
	for _, p := range pairs {
		k := [2]string{p.outer, p.inner}
		if prev, ok := byDir[k]; !ok || posLess(p.pos, prev.pos) {
			byDir[k] = p
		}
	}
	keys := make([][2]string, 0, len(byDir))
	for k := range byDir {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rev := [2]string{k[1], k[0]}
		other, inverted := byDir[rev]
		if !inverted || k[0] >= k[1] { // report each unordered pair once, from its lexicographic side
			continue
		}
		p := byDir[k]
		diags = append(diags,
			lockDiag(p, other),
			lockDiag(other, p))
	}
	return diags
}

// lockDiag renders one side of an inversion.
func lockDiag(here, there lockPair) Diagnostic {
	msg := fmt.Sprintf("lock order inversion: %s acquired while holding %s", here.inner, here.outer)
	if here.via != "" {
		msg += fmt.Sprintf(" (via call to %s)", here.via)
	}
	msg += fmt.Sprintf(", but the opposite order occurs at %s:%d", there.pos.Filename, there.pos.Line)
	return Diagnostic{Pos: here.pos, Check: "lockorder", Msg: msg}
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// directLockClasses returns the classes a function's own body (closures
// included — they still acquire the class, whenever they run) may lock.
func directLockClasses(n *FuncNode) map[string]bool {
	set := make(map[string]bool)
	if n.Decl.Body == nil {
		return set
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if class, op, ok := lockOp(n.Pkg, call); ok && (op == "Lock" || op == "RLock") {
			set[class] = true
		}
		return true
	})
	return set
}

// lockOp recognizes a call as a mutex operation and classifies its lock.
// It returns the lock class, the operation name (Lock, RLock, Unlock,
// RUnlock) and whether the call is a classified mutex operation at all.
func lockOp(pkg *Package, call *ast.CallExpr) (class, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	path, name, named := namedOrPointerTo(sig.Recv().Type())
	if !named || path != "sync" || (name != "Mutex" && name != "RWMutex") {
		return "", "", false
	}
	class, ok = lockClassOf(pkg, sel)
	if !ok {
		return "", "", false
	}
	return class, fn.Name(), true
}

// lockClassOf names the lock a mutex-method selector operates on:
//
//	sh.mu.Lock()   → "<pkg>.shard.mu"   (field of a named struct)
//	poolMu.Lock()  → "<pkg>.poolMu"     (package-level variable)
//	t.Lock()       → "<pkg>.T.Mutex"    (promoted embedded mutex)
//
// Locals and unclassifiable expressions return ok=false: a function-local
// mutex cannot be acquired by two call chains in different orders.
func lockClassOf(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	// Promotion: the selection's receiver is the embedding type, and the
	// first index step names the embedded mutex field.
	if s, ok := pkg.Info.Selections[sel]; ok && len(s.Index()) > 1 {
		if path, name, named := namedOrPointerTo(s.Recv()); named {
			if st, ok := deref(s.Recv()).Underlying().(*types.Struct); ok {
				return path + "." + name + "." + st.Field(s.Index()[0]).Name(), true
			}
		}
		return "", false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		fieldObj, ok := pkg.Info.Uses[x.Sel].(*types.Var)
		if !ok || !fieldObj.IsField() {
			return "", false
		}
		if path, name, named := namedOrPointerTo(pkg.Info.TypeOf(x.X)); named {
			return path + "." + name + "." + fieldObj.Name(), true
		}
	case *ast.Ident:
		v, ok := pkg.Info.Uses[x].(*types.Var)
		if !ok || v.IsField() {
			return "", false
		}
		if v.Parent() == v.Pkg().Scope() { // package-level
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}

// deref strips one pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// lockWalker tracks the held set through one function scope in source
// order, recording ordered pairs and self-deadlock diagnostics.
type lockWalker struct {
	pkg      *Package
	graph    *CallGraph
	acquires map[*FuncNode]map[string]bool
	held     []string
	pairs    *[]lockPair
	diags    *[]Diagnostic
}

// walkScope walks one function or closure body.
func (w *lockWalker) walkScope(body ast.Node) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.FuncLit:
			// A closure runs with its own (empty) held set. Its lock classes
			// still reach the enclosing function's acquire summary via
			// directLockClasses, which inspects the whole body.
			inner := &lockWalker{pkg: w.pkg, graph: w.graph, acquires: w.acquires,
				pairs: w.pairs, diags: w.diags}
			inner.walkScope(n.Body)
			return false
		case *ast.DeferStmt:
			if _, op, ok := lockOp(w.pkg, n.Call); ok && (op == "Unlock" || op == "RUnlock") {
				return false // deferred unlock: the lock is held to function exit
			}
			return true
		case *ast.CallExpr:
			w.call(n)
			return true
		}
		return true
	})
}

// call processes one call expression against the current held set.
func (w *lockWalker) call(call *ast.CallExpr) {
	pos := w.pkg.Fset.Position(call.Pos())
	if class, op, ok := lockOp(w.pkg, call); ok {
		switch op {
		case "Lock", "RLock":
			for _, h := range w.held {
				if h == class {
					*w.diags = append(*w.diags, Diagnostic{Pos: pos, Check: "lockorder",
						Msg: fmt.Sprintf("%s of %s while already holding it: Go mutexes are not reentrant", op, class)})
					continue
				}
				*w.pairs = append(*w.pairs, lockPair{outer: h, inner: class, pos: pos})
			}
			w.held = append(w.held, class)
		case "Unlock", "RUnlock":
			for i := len(w.held) - 1; i >= 0; i-- {
				if w.held[i] == class {
					w.held = append(w.held[:i], w.held[i+1:]...)
					break
				}
			}
		}
		return
	}
	if len(w.held) == 0 {
		return
	}
	site := w.graph.SiteOf(call)
	if site == nil {
		return
	}
	// Call made while holding locks: everything the callee may acquire is
	// ordered after everything currently held.
	merged := make(map[string]*FuncNode)
	for _, callee := range site.Callees {
		for c := range w.acquires[callee] {
			if _, ok := merged[c]; !ok {
				merged[c] = callee
			}
		}
	}
	classes := make([]string, 0, len(merged))
	for c := range merged {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		via := merged[c].Name()
		for _, h := range w.held {
			if h == c {
				*w.diags = append(*w.diags, Diagnostic{Pos: pos, Check: "lockorder",
					Msg: fmt.Sprintf("call to %s may re-acquire %s, which is already held here: Go mutexes are not reentrant", via, c)})
				continue
			}
			*w.pairs = append(*w.pairs, lockPair{outer: h, inner: c, pos: pos, via: via})
		}
	}
}

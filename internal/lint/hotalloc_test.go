package lint

import "testing"

func TestHotAllocFlagsLoopAllocations(t *testing.T) {
	diags := runOn(t, HotAllocCheck(), "snip/hot", `package hot

import "fmt"

//ucatlint:hotpath
func Query(keys []int) []string {
	out := make([]string, 0, len(keys)) // sized, outside any loop: fine
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%d", k))
	}
	return out
}
`)
	expect(t, diags, []string{
		"call to fmt.Sprintf (always allocates) in a loop on a hot path",
	})
}

func TestHotAllocReachesTransitiveCallees(t *testing.T) {
	// The allocation sits two calls below the annotated entry point; only
	// call-graph reachability connects them.
	diags := runOn(t, HotAllocCheck(), "snip/deep", `package deep

//ucatlint:hotpath
func Query(keys []int) int {
	return total(keys)
}

func total(keys []int) int {
	return len(expand(keys))
}

func expand(keys []int) []int {
	var out []int
	for _, k := range keys {
		chunk := make([]int, 0) // zero length, no capacity: grows per append
		chunk = append(chunk, k, k)
		out = append(out, chunk...)
	}
	return out
}
`)
	expect(t, diags, []string{
		"make with zero length and no capacity (grows by reallocation) in a loop on a hot path",
	})
}

func TestHotAllocUnannotatedCodeIgnored(t *testing.T) {
	// Same allocation pattern, no hotpath root anywhere: nothing to report.
	diags := runOn(t, HotAllocCheck(), "snip/cold", `package cold

import "fmt"

func Query(keys []int) []string {
	var out []string
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%d", k))
	}
	return out
}
`)
	expect(t, diags, nil)
}

func TestHotAllocErrorPathOutsideLoopIsClean(t *testing.T) {
	// A once-per-call fmt.Errorf on the exit path is not a per-element
	// allocation; only loop bodies are audited.
	diags := runOn(t, HotAllocCheck(), "snip/errpath", `package errpath

import "fmt"

//ucatlint:hotpath
func Query(keys []int) (int, error) {
	if len(keys) == 0 {
		return 0, fmt.Errorf("empty key set")
	}
	n := 0
	for _, k := range keys {
		n += k
	}
	return n, nil
}
`)
	expect(t, diags, nil)
}

func TestHotAllocLoopExitBranchIsCold(t *testing.T) {
	// fmt.Errorf inside `if err != nil { return ... }` allocates at most
	// once per call — the branch leaves the loop — so it is exempt even
	// though it sits inside the loop body. The same fmt call on a
	// non-terminating branch stays flagged.
	diags := runOn(t, HotAllocCheck(), "snip/exit", `package exit

import "fmt"

func decode(k int) (int, error) { return k, nil }

//ucatlint:hotpath
func Query(keys []int) (int, error) {
	n := 0
	for _, k := range keys {
		v, err := decode(k)
		if err != nil {
			return 0, fmt.Errorf("decode %d: %v", k, err) // cold: exits the loop
		}
		if v < 0 {
			fmt.Println("negative", v) // hot: the loop keeps going
		}
		n += v
	}
	return n, nil
}
`)
	expect(t, diags, []string{
		"call to fmt.Println (always allocates) in a loop on a hot path",
	})
}

func TestHotAllocNestedLoopReportedOnce(t *testing.T) {
	diags := runOn(t, HotAllocCheck(), "snip/nest", `package nest

import "fmt"

//ucatlint:hotpath
func Query(rows [][]int) {
	for _, row := range rows {
		for _, v := range row {
			fmt.Println(v)
		}
	}
}
`)
	expect(t, diags, []string{
		"call to fmt.Println (always allocates) in a loop on a hot path",
	})
}

func TestHotAllocClosureInLoop(t *testing.T) {
	diags := runOn(t, HotAllocCheck(), "snip/clos2", `package clos2

//ucatlint:hotpath
func Query(keys []int, apply func(func() int) int) int {
	n := 0
	for _, k := range keys {
		k := k
		n += apply(func() int { return k })
	}
	return n
}
`)
	expect(t, diags, []string{
		"function literal (closure environment allocation) in a loop on a hot path",
	})
}

func TestHotAllocInterfaceBoxing(t *testing.T) {
	diags := runOn(t, HotAllocCheck(), "snip/box", `package box

type sink interface{ push(v any) }

//ucatlint:hotpath
func Query(s sink, keys []int) {
	for _, k := range keys {
		s.push(k) // k boxes into any
	}
}
`)
	expect(t, diags, []string{
		"argument boxes int into interface any in a loop on a hot path",
	})
}

func TestHotAllocIgnoreDirectiveApplies(t *testing.T) {
	// Measured-and-accepted allocations are annotated in place like any
	// other finding.
	diags := runOn(t, HotAllocCheck(), "snip/meas", `package meas

import "fmt"

//ucatlint:hotpath
func Query(keys []int) []string {
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		//ucatlint:ignore hotalloc rendering path, measured at 0.1% of query time
		out = append(out, fmt.Sprintf("%d", k))
	}
	return out
}
`)
	expect(t, diags, nil)
}

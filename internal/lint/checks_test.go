package lint

import "testing"

const testPkgPath = "ucat/internal/testpkg"

func TestFloatcmp(t *testing.T) {
	tests := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "equality on float64 flagged",
			path: testPkgPath,
			src: `package p
func f(a, b float64) bool { return a == b }
`,
			want: []string{"exact == on floating-point operands"},
		},
		{
			name: "inequality on float32 flagged",
			path: testPkgPath,
			src: `package p
func f(a, b float32) bool { return a != b }
`,
			want: []string{"exact != on floating-point operands"},
		},
		{
			name: "comparison against constant flagged",
			path: testPkgPath,
			src: `package p
func f(a float64) bool { return a == 0.3 }
`,
			want: []string{"exact == on floating-point operands"},
		},
		{
			name: "switch over float tag flagged",
			path: testPkgPath,
			src: `package p
func f(a float64) int {
	switch a {
	case 0.5:
		return 1
	}
	return 0
}
`,
			want: []string{"switch over a floating-point value"},
		},
		{
			name: "integer comparison not flagged",
			path: testPkgPath,
			src: `package p
func f(a, b int) bool { return a == b }
`,
			want: nil,
		},
		{
			name: "float ordering not flagged",
			path: testPkgPath,
			src: `package p
func f(a, b float64) bool { return a < b }
`,
			want: nil,
		},
		{
			name: "constant-folded comparison not flagged",
			path: testPkgPath,
			src: `package p
const eq = 1.0 == 2.0
`,
			want: nil,
		},
		{
			name: "epsilon helper exempt",
			path: testPkgPath,
			src: `package p
func approxEqual(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps || a == b
}
func almostZero(a float64) bool  { return a == 0 }
func nearIdentical(a, b float64) bool { return a == b }
func withinEps(a, b float64) bool     { return a == b }
`,
			want: nil,
		},
		{
			name: "ignore directive on same line",
			path: testPkgPath,
			src: `package p
func f(a, b float64) bool {
	return a == b //ucatlint:ignore floatcmp bitwise equality intended for the test
}
`,
			want: nil,
		},
		{
			name: "ignore directive on previous line",
			path: testPkgPath,
			src: `package p
func f(a, b float64) bool {
	//ucatlint:ignore floatcmp bitwise equality intended for the test
	return a == b
}
`,
			want: nil,
		},
		{
			name: "directive for other check does not suppress",
			path: testPkgPath,
			src: `package p
func f(a, b float64) bool {
	//ucatlint:ignore globalrand wrong check named here
	return a == b
}
`,
			want: []string{"exact == on floating-point operands"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			expect(t, runOn(t, FloatcmpCheck(), tt.path, tt.src), tt.want)
		})
	}
}

func TestFloatcmpSkipsTestFiles(t *testing.T) {
	pkg := loadSnippet(t, testPkgPath, map[string]string{
		"p_test.go": `package p
func f(a, b float64) bool { return a == b }
`,
	})
	expect(t, Run([]*Package{pkg}, []*Check{FloatcmpCheck()}), nil)
}

func TestIOAccount(t *testing.T) {
	tests := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "direct ReadAt flagged",
			path: "ucat/internal/tuplestore",
			src: `package tuplestore
import "ucat/internal/pager"
func f(s *pager.Store, buf []byte) error { return s.ReadAt(1, buf) }
`,
			want: []string{"direct Store.ReadAt bypasses the counted buffer pool"},
		},
		{
			name: "direct WriteAt flagged",
			path: "ucat/internal/btree",
			src: `package btree
import "ucat/internal/pager"
func f(s *pager.Store, buf []byte) error { return s.WriteAt(1, buf) }
`,
			want: []string{"direct Store.WriteAt bypasses the counted buffer pool"},
		},
		{
			name: "direct Allocate and Free flagged",
			path: testPkgPath,
			src: `package p
import "ucat/internal/pager"
func f(s *pager.Store) error {
	pid := s.Allocate()
	return s.Free(pid)
}
`,
			want: []string{"direct Store.Allocate", "direct Store.Free"},
		},
		{
			name: "store reached through the pool accessor still flagged",
			path: testPkgPath,
			src: `package p
import "ucat/internal/pager"
func f(p *pager.Pool, buf []byte) error { return p.Store().ReadAt(1, buf) }
`,
			want: []string{"direct Store.ReadAt"},
		},
		{
			name: "pager package itself exempt",
			path: pagerPath,
			src: `package pager
type Store struct{}
func (s *Store) ReadAt(pid uint32, dst []byte) error { return nil }
func f(s *Store, buf []byte) error { return s.ReadAt(1, buf) }
`,
			want: nil,
		},
		{
			name: "pool access not flagged",
			path: testPkgPath,
			src: `package p
import "ucat/internal/pager"
func f(p *pager.Pool) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	pg.Unpin(false)
	return nil
}
`,
			want: nil,
		},
		{
			name: "unrelated ReadAt method not flagged",
			path: testPkgPath,
			src: `package p
type file struct{}
func (f *file) ReadAt(pid uint32, b []byte) error { return nil }
func g(f *file, b []byte) error { return f.ReadAt(1, b) }
`,
			want: nil,
		},
		{
			name: "metadata accessors not flagged",
			path: testPkgPath,
			src: `package p
import "ucat/internal/pager"
func f(s *pager.Store) int { return s.NumPages() }
`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			expect(t, runOn(t, IOAccountCheck(), tt.path, tt.src), tt.want)
		})
	}
}

func TestDroppedErr(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "bare Close flagged",
			src: `package p
type f struct{}
func (f) Close() error { return nil }
func g(v f) { v.Close() }
`,
			want: []string{"call Close discards its error"},
		},
		{
			name: "deferred Close flagged",
			src: `package p
type f struct{}
func (f) Close() error { return nil }
func g(v f) { defer v.Close() }
`,
			want: []string{"defer Close discards its error"},
		},
		{
			name: "go Flush flagged",
			src: `package p
type f struct{}
func (f) Flush() error { return nil }
func g(v f) { go v.Flush() }
`,
			want: []string{"go Flush discards its error"},
		},
		{
			name: "FlushAll and Sync and Clear flagged",
			src: `package p
type f struct{}
func (f) FlushAll() error { return nil }
func (f) Sync() error     { return nil }
func (f) Clear() error    { return nil }
func g(v f) {
	v.FlushAll()
	v.Sync()
	v.Clear()
}
`,
			want: []string{"call FlushAll", "call Sync", "call Clear"},
		},
		{
			name: "handled error not flagged",
			src: `package p
type f struct{}
func (f) Close() error { return nil }
func g(v f) error { return v.Close() }
`,
			want: nil,
		},
		{
			name: "checked error not flagged",
			src: `package p
type f struct{}
func (f) Close() error { return nil }
func g(v f) {
	if err := v.Close(); err != nil {
		panic(err)
	}
}
`,
			want: nil,
		},
		{
			name: "explicit blank assignment not flagged",
			src: `package p
type f struct{}
func (f) Close() error { return nil }
func g(v f) { _ = v.Close() }
`,
			want: nil,
		},
		{
			name: "error-free release method not flagged",
			src: `package p
type f struct{}
func (f) Unpin(dirty bool) {}
func g(v f) { v.Unpin(true) }
`,
			want: nil,
		},
		{
			name: "non-release method not flagged",
			src: `package p
type f struct{}
func (f) Write(b []byte) error { return nil }
func g(v f) { v.Write(nil) }
`,
			want: nil,
		},
		{
			name: "annotated defer suppressed",
			src: `package p
type f struct{}
func (f) Close() error { return nil }
func g(v f) {
	defer v.Close() //ucatlint:ignore droppederr read-only handle
}
`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			expect(t, runOn(t, DroppedErrCheck(), testPkgPath, tt.src), tt.want)
		})
	}
}

func TestGlobalRand(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "global Intn flagged",
			src: `package p
import "math/rand"
func f() int { return rand.Intn(10) }
`,
			want: []string{"global math/rand.Intn"},
		},
		{
			name: "global Float64 and Seed flagged",
			src: `package p
import "math/rand"
func f() float64 {
	rand.Seed(42)
	return rand.Float64()
}
`,
			want: []string{"global math/rand.Seed", "global math/rand.Float64"},
		},
		{
			name: "aliased import still flagged",
			src: `package p
import mrand "math/rand"
func f() int { return mrand.Intn(10) }
`,
			want: []string{"global math/rand.Intn"},
		},
		{
			name: "seeded Rand not flagged",
			src: `package p
import "math/rand"
func f() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}
`,
			want: nil,
		},
		{
			name: "threaded Rand parameter not flagged",
			src: `package p
import "math/rand"
func f(r *rand.Rand) float64 { return r.Float64() }
`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			expect(t, runOn(t, GlobalRandCheck(), testPkgPath, tt.src), tt.want)
		})
	}
}

func TestGlobalRandSkipsTestFiles(t *testing.T) {
	pkg := loadSnippet(t, testPkgPath, map[string]string{
		"p_test.go": `package p
import "math/rand"
func f() int { return rand.Intn(10) }
`,
	})
	expect(t, Run([]*Package{pkg}, []*Check{GlobalRandCheck()}), nil)
}

func TestPinleak(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "fetch without unpin flagged",
			src: `package p
import "ucat/internal/pager"
func f(p *pager.Pool) ([]byte, error) {
	pg, err := p.Fetch(1)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8)
	copy(out, pg.Data)
	return out, nil
}
`,
			want: []string{"page from Fetch is never Unpinned in f"},
		},
		{
			name: "newpage without unpin flagged",
			src: `package p
import "ucat/internal/pager"
func f(p *pager.Pool) (pager.PageID, error) {
	pg, err := p.NewPage()
	if err != nil {
		return 0, err
	}
	return pg.ID, nil
}
`,
			want: []string{"page from NewPage is never Unpinned in f"},
		},
		{
			name: "discarded page flagged",
			src: `package p
import "ucat/internal/pager"
func f(p *pager.Pool) {
	_, _ = p.NewPage()
}
`,
			want: []string{"NewPage result discarded"},
		},
		{
			name: "deferred unpin not flagged",
			src: `package p
import "ucat/internal/pager"
func f(p *pager.Pool) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	defer pg.Unpin(false)
	return nil
}
`,
			want: nil,
		},
		{
			name: "plain unpin not flagged",
			src: `package p
import "ucat/internal/pager"
func f(p *pager.Pool) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	pg.Unpin(true)
	return nil
}
`,
			want: nil,
		},
		{
			name: "unpin inside closure not flagged",
			src: `package p
import "ucat/internal/pager"
func f(p *pager.Pool) (func(), error) {
	pg, err := p.Fetch(1)
	if err != nil {
		return nil, err
	}
	return func() { pg.Unpin(false) }, nil
}
`,
			want: nil,
		},
		{
			name: "page escaping via return not flagged",
			src: `package p
import "ucat/internal/pager"
func f(p *pager.Pool) (*pager.Page, error) {
	pg, err := p.Fetch(1)
	return pg, err
}
`,
			want: nil,
		},
		{
			name: "page escaping as argument not flagged",
			src: `package p
import "ucat/internal/pager"
func release(pg *pager.Page) { pg.Unpin(false) }
func f(p *pager.Pool) error {
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	release(pg)
	return nil
}
`,
			want: nil,
		},
		{
			name: "annotated leak suppressed",
			src: `package p
import "ucat/internal/pager"
func f(p *pager.Pool) error {
	//ucatlint:ignore pinleak page intentionally held for the process lifetime
	pg, err := p.Fetch(1)
	if err != nil {
		return err
	}
	_ = pg.ID
	return nil
}
`,
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			expect(t, runOn(t, PinleakCheck(), testPkgPath, tt.src), tt.want)
		})
	}
}

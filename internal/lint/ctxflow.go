package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxFlowCheck enforces the cancellation contract the serving layer depends
// on: a function that accepts a context.Context and whose call chain reaches
// a pager page fetch must actually thread that context down. The two ways to
// break the contract silently are
//
//	func (r *Reader) Lookup(ctx context.Context, k Key) { r.fetch(k) }
//	                                              // ctx never mentioned
//	func (r *Reader) Lookup(ctx context.Context, k Key) {
//	        r.fetchCtx(context.Background(), k)   // fresh root substituted
//	}
//
// Either way the caller's deadline and cancellation stop at this frame while
// the expensive work — disk reads under the pool's stripe mutexes —
// continues below it, unbounded.
//
// The "reaches a fetch" bit is a BottomUp dataflow over the call graph: the
// seed is any call to a method named Fetch whose receiver type lives in the
// pager package (Pool and the View interface both count, so the bit
// propagates through views), and the bit flows from callee to caller. Within
// the flagged set the check then reports
//
//   - a context parameter that is never used at all (not read, not passed,
//     not even stored) — severity error;
//   - a call argument that is a direct context.Background() or context.TODO()
//     call inside a function that has a context parameter it could have
//     passed instead — severity error.
//
// Functions without a context parameter are out of scope even when they
// reach a fetch: detaching from the caller by design (the batcher's
// executeBatch owns its own deadline) is expressed by not accepting a
// context, which this check deliberately leaves legal. A blank parameter
// (`_ context.Context`) is also skipped: discarding the context visibly in
// the signature is an explicit statement, not an accident.
func CtxFlowCheck() *Check {
	return &Check{
		Name:       "ctxflow",
		Doc:        "context.Context parameters on fetch-reaching call chains must flow down, not be dropped or replaced",
		Severity:   SeverityError,
		RunProgram: runCtxFlow,
	}
}

func runCtxFlow(prog *Program) []Diagnostic {
	g := prog.Graph

	reaches := g.ReachesAny(func(n *FuncNode) bool {
		if n.Decl.Body == nil {
			return false
		}
		found := false
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPagerFetch(n.Pkg, call) {
				found = true
			}
			return !found
		})
		return found
	})

	var diags []Diagnostic
	for _, n := range g.Nodes() {
		if !reaches[n] || n.Decl.Body == nil {
			continue
		}
		ctxParam := contextParam(n)
		if ctxParam == nil {
			continue
		}
		if !identUsed(n, ctxParam) {
			diags = append(diags, Diagnostic{
				Pos:   n.Pkg.Fset.Position(n.Decl.Name.Pos()),
				Check: "ctxflow",
				Msg: fmt.Sprintf("%s receives a context.Context but its call chain reaches pager Fetch without it: pass %s down or drop the parameter",
					n.Name(), ctxParam.Name()),
			})
		}
		diags = append(diags, freshRootArgs(n, ctxParam)...)
	}
	return diags
}

// isPagerFetch reports whether call invokes a method named Fetch declared on
// a type (or interface) in the pager package.
func isPagerFetch(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Name() != "Fetch" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if _, ok := recv.Underlying().(*types.Interface); ok {
		// Interface method: classify by the interface's defining package.
		return fn.Pkg() != nil && fn.Pkg().Path() == pagerPath
	}
	path, _, ok := namedOrPointerTo(recv)
	return ok && path == pagerPath
}

// contextParam returns the *types.Var for the function's first named
// context.Context parameter, or nil when there is none (or it is blank).
func contextParam(n *FuncNode) *types.Var {
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if p.Name() == "" || p.Name() == "_" {
			continue
		}
		if path, name, ok := namedOrPointerTo(p.Type()); ok && path == "context" && name == "Context" {
			return p
		}
	}
	return nil
}

// identUsed reports whether the parameter is referenced anywhere in the
// function body. Any use — passing it on, deriving a child context, storing
// it, even just reading it in a comparison — counts: the check's job is to
// catch contexts that vanish, not to audit what they are used for.
func identUsed(n *FuncNode, param *types.Var) bool {
	used := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if ok && n.Pkg.Info.Uses[id] == param {
			used = true
		}
		return !used
	})
	return used
}

// freshRootArgs flags call arguments that are direct context.Background() or
// context.TODO() calls, severing the chain from ctxParam which was available
// in scope.
func freshRootArgs(n *FuncNode, ctxParam *types.Var) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeFunc(n.Pkg, inner)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				continue
			}
			if fn.Name() != "Background" && fn.Name() != "TODO" {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:   n.Pkg.Fset.Position(inner.Pos()),
				Check: "ctxflow",
				Msg: fmt.Sprintf("context.%s() passed down while %s has %s in scope: this detaches the callee from the caller's deadline and cancellation",
					fn.Name(), n.Name(), ctxParam.Name()),
			})
		}
		return true
	})
	return diags
}

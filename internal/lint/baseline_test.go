package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkdiag(file string, line int, check, msg string, sev Severity) Diagnostic {
	d := Diagnostic{Check: check, Msg: msg, Severity: sev}
	d.Pos.Filename = file
	d.Pos.Line = line
	d.Pos.Column = 1
	return d
}

func TestBaselineRoundTripAndFilter(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, ".ucatlint-baseline.json")
	accepted := []Diagnostic{
		mkdiag(filepath.Join(root, "a.go"), 10, "hotalloc", "closure in loop", SeverityWarn),
		mkdiag(filepath.Join(root, "b.go"), 20, "lockorder", "inversion", SeverityError),
	}
	if err := NewBaseline(accepted, root).Save(path); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Entries) != 2 {
		t.Fatalf("baseline has %d entries, want 2", len(base.Entries))
	}

	// Same findings on different lines still match (line-independent), a
	// new finding does not, and the fixed lockorder entry is stale.
	current := []Diagnostic{
		mkdiag(filepath.Join(root, "a.go"), 99, "hotalloc", "closure in loop", SeverityWarn),
		mkdiag(filepath.Join(root, "c.go"), 5, "atomicmix", "plain access", SeverityError),
	}
	fresh, matched, stale := base.Filter(current, root)
	if matched != 1 || stale != 1 {
		t.Errorf("matched=%d stale=%d, want 1 and 1", matched, stale)
	}
	if len(fresh) != 1 || fresh[0].Check != "atomicmix" {
		t.Errorf("fresh = %v, want the one atomicmix finding", fresh)
	}
}

func TestBaselineMatchingIsMultiset(t *testing.T) {
	root := t.TempDir()
	d := mkdiag(filepath.Join(root, "a.go"), 10, "hotalloc", "closure in loop", SeverityWarn)
	base := NewBaseline([]Diagnostic{d}, root)

	// Two identical findings against one entry: the second is new.
	dup := d
	dup.Pos.Line = 42
	fresh, matched, stale := base.Filter([]Diagnostic{d, dup}, root)
	if matched != 1 || stale != 0 || len(fresh) != 1 {
		t.Errorf("matched=%d stale=%d fresh=%d, want 1, 0, 1", matched, stale, len(fresh))
	}
}

func TestBaselineLoadErrors(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("loading a missing baseline succeeded, want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("loading malformed JSON succeeded, want error")
	}
}

func TestJSONOutput(t *testing.T) {
	root := t.TempDir()
	diags := []Diagnostic{
		mkdiag(filepath.Join(root, "sub", "a.go"), 3, "ctxflow", "dropped ctx", ""),
		mkdiag("/elsewhere/b.go", 7, "hotalloc", "closure", SeverityWarn),
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, diags, root); err != nil {
		t.Fatal(err)
	}
	var got []JSONDiagnostic
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2", len(got))
	}
	if got[0].File != "sub/a.go" {
		t.Errorf("File = %q, want root-relative slash path", got[0].File)
	}
	if got[0].Severity != "error" {
		t.Errorf("empty severity rendered as %q, want the error default", got[0].Severity)
	}
	if got[1].File != "/elsewhere/b.go" || got[1].Severity != "warn" {
		t.Errorf("entry outside root = %+v, want original path and warn", got[1])
	}

	// An empty diagnostic list must still be a JSON array, not null: CI
	// parsers index into the result unconditionally.
	sb.Reset()
	if err := WriteJSON(&sb, nil, root); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(sb.String()); s != "[]" {
		t.Errorf("empty output = %q, want []", s)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

package exp

import (
	"fmt"

	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/invidx"
	"ucat/internal/pdrtree"
	"ucat/internal/uda"
)

// Fig4 — "L1 vs L2 vs KL (PDR-tree)": the three divergence measures as the
// PDR-tree's clustering distance, on CRM1, threshold and top-k queries.
// Expected shape: KL outperforms L1 outperforms L2 at low selectivities;
// top-k costs a roughly constant factor more than threshold.
func Fig4(p Params) (*Figure, error) {
	p = p.withDefaults()
	d := dataset.CRM1Like(p.Seed, p.scaled(dataset.CRMSize))
	fig := &Figure{ID: "fig4", Title: "L1 vs L2 vs KL (PDR-tree, CRM1)", XLabel: "selectivity %"}
	for _, div := range []uda.Divergence{uda.L1, uda.L2, uda.KL} {
		// The divergence under test must drive the clustering, so insertion
		// uses the most-similar-MBR criterion rather than the area-primary
		// default (under which the divergence only breaks ties).
		a := access{
			label: "CRM1-" + div.String(),
			opts: core.Options{Kind: core.PDRTree, PDR: pdrtree.Config{
				Divergence: div, Insert: pdrtree.MostSimilar,
			}},
		}
		ss, err := selectivitySweep(d, a, p)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, ss...)
	}
	return fig, nil
}

// Fig5 — "Inverted Index vs PDR-tree (synthetic)": both index structures on
// the Uniform and Pairwise datasets. Expected shape: the PDR-tree wins on
// both; the inverted index is far worse on Uniform (dense) than on Pairwise.
func Fig5(p Params) (*Figure, error) {
	p = p.withDefaults()
	fig := &Figure{ID: "fig5", Title: "Inverted Index vs PDR-tree (synthetic)", XLabel: "selectivity %"}
	for _, d := range []*dataset.Dataset{
		dataset.Uniform(p.Seed, p.scaled(dataset.SyntheticSize)),
		dataset.Pairwise(p.Seed, p.scaled(dataset.SyntheticSize)),
	} {
		// Both synthetic datasets are dense relative to their 5-item domain;
		// the inverted index joins lists rather than probing candidates.
		ss, err := bothIndexes(d, d.Name, p, invidx.BruteForce)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, ss...)
	}
	return fig, nil
}

// Fig6 — "Inverted Index vs PDR-tree (CRM1)". Expected: PDR-tree
// significantly outperforms the inverted index on the sparse real data.
func Fig6(p Params) (*Figure, error) {
	p = p.withDefaults()
	d := dataset.CRM1Like(p.Seed, p.scaled(dataset.CRMSize))
	fig := &Figure{ID: "fig6", Title: "Inverted Index vs PDR-tree (CRM1)", XLabel: "selectivity %"}
	// The rank-join (NRA) search handles the skewed CRM1 lists without the
	// per-candidate random accesses that make the simpler heuristics pay
	// thousands of probes on 100k tuples.
	ss, err := bothIndexes(d, "CRM1", p, invidx.NRA)
	if err != nil {
		return nil, err
	}
	fig.Series = ss
	return fig, nil
}

// Fig7 — "Inverted Index vs PDR-tree (CRM2)". Expected: same ordering as
// CRM1 but roughly an order of magnitude more I/Os, because the fuzzy-
// clustered data is dense.
func Fig7(p Params) (*Figure, error) {
	p = p.withDefaults()
	d := dataset.CRM2Like(p.Seed, p.scaled(dataset.CRMSize))
	fig := &Figure{ID: "fig7", Title: "Inverted Index vs PDR-tree (CRM2)", XLabel: "selectivity %"}
	// CRM2 is dense: random accesses perform poorly ("the random access …
	// performs poorly as against simply joining the relevant parts of
	// inverted lists", §3.1), so the rank-join search is used.
	ss, err := bothIndexes(d, "CRM2", p, invidx.NRA)
	if err != nil {
		return nil, err
	}
	fig.Series = ss
	return fig, nil
}

// bothIndexes sweeps the inverted index and the PDR-tree over one dataset.
func bothIndexes(d *dataset.Dataset, label string, p Params, def invidx.Strategy) ([]Series, error) {
	var out []Series
	for _, a := range []access{
		{label: label + "-Inv", opts: core.Options{Kind: core.InvertedIndex, InvStrategy: p.strategyOr(def)}},
		{label: label + "-PDR", opts: core.Options{Kind: core.PDRTree}},
	} {
		ss, err := selectivitySweep(d, a, p)
		if err != nil {
			return nil, err
		}
		out = append(out, ss...)
	}
	return out, nil
}

// Fig8 — "Scalability with Dataset Size": CRM2 at growing tuple counts,
// fixed 1% selectivity. Expected: the inverted index scales linearly with
// dataset size, the PDR-tree sublinearly.
func Fig8(p Params) (*Figure, error) {
	p = p.withDefaults()
	const sel = 0.01
	sizes := []int{10000, 25000, 50000, 75000, 100000}
	fig := &Figure{ID: "fig8", Title: "Scalability with Dataset Size (CRM2, sel 1%)", XLabel: "tuples x1000"}
	series := []Series{
		{Label: "CRM2-Inv-Thres"}, {Label: "CRM2-Inv-TopK"},
		{Label: "CRM2-PDR-Thres"}, {Label: "CRM2-PDR-TopK"},
	}
	for _, size := range sizes {
		n := p.scaled(size)
		d := dataset.CRM2Like(p.Seed, n)
		w := newWorkload(d, p.Queries, p.Seed)
		for ai, a := range []access{
			{opts: core.Options{Kind: core.InvertedIndex, InvStrategy: p.strategyOr(invidx.NRA)}},
			{opts: core.Options{Kind: core.PDRTree}},
		} {
			rel, err := buildRelation(d, a.opts, p)
			if err != nil {
				return nil, err
			}
			x := float64(n) / 1000
			m1, err := measure(rel, w, sel, false, p.Workers)
			if err != nil {
				return nil, err
			}
			m2, err := measure(rel, w, sel, true, p.Workers)
			if err != nil {
				return nil, err
			}
			series[2*ai].Points = append(series[2*ai].Points, m1.point(x))
			series[2*ai+1].Points = append(series[2*ai+1].Points, m2.point(x))
		}
	}
	fig.Series = series
	return fig, nil
}

// Fig9 — "Scalability with Domain Size": Gen3 with the domain growing from
// 5 to 500 (fill factor 3–10), fixed 1% selectivity. Expected: the inverted
// index improves as lists shorten; the PDR-tree first degrades then
// improves as the relative density of non-zero entries falls again.
func Fig9(p Params) (*Figure, error) {
	p = p.withDefaults()
	const sel = 0.01
	domains := []int{5, 10, 25, 50, 100, 200, 350, 500}
	fig := &Figure{ID: "fig9", Title: "Scalability with Domain Size (Gen3, sel 1%)", XLabel: "domain size"}
	series := []Series{
		{Label: "Gen3-Inv-Thres"}, {Label: "Gen3-Inv-TopK"},
		{Label: "Gen3-PDR-Thres"}, {Label: "Gen3-PDR-TopK"},
	}
	for _, domain := range domains {
		d := dataset.Gen3(p.Seed, p.scaled(dataset.SyntheticSize), domain)
		w := newWorkload(d, p.Queries, p.Seed)
		for ai, a := range []access{
			{opts: core.Options{Kind: core.InvertedIndex, InvStrategy: p.strategyOr(invidx.BruteForce)}},
			{opts: core.Options{Kind: core.PDRTree}},
		} {
			rel, err := buildRelation(d, a.opts, p)
			if err != nil {
				return nil, fmt.Errorf("fig9 domain %d: %w", domain, err)
			}
			m1, err := measure(rel, w, sel, false, p.Workers)
			if err != nil {
				return nil, err
			}
			m2, err := measure(rel, w, sel, true, p.Workers)
			if err != nil {
				return nil, err
			}
			series[2*ai].Points = append(series[2*ai].Points, m1.point(float64(domain)))
			series[2*ai+1].Points = append(series[2*ai+1].Points, m2.point(float64(domain)))
		}
	}
	fig.Series = series
	return fig, nil
}

// Fig10 — "PDR Split Algorithm": top-down vs bottom-up splitting on the
// Uniform dataset, threshold queries. Expected: bottom-up wins; top-down
// suffers from outlier seeds.
func Fig10(p Params) (*Figure, error) {
	p = p.withDefaults()
	d := dataset.Uniform(p.Seed, p.scaled(dataset.SyntheticSize))
	fig := &Figure{ID: "fig10", Title: "PDR Split Algorithm (Uniform)", XLabel: "selectivity %"}
	for _, split := range []pdrtree.SplitPolicy{pdrtree.TopDown, pdrtree.BottomUp} {
		label := "Uniform-TopDown"
		if split == pdrtree.BottomUp {
			label = "Uniform-BottomUp"
		}
		a := access{label: label, opts: core.Options{Kind: core.PDRTree, PDR: pdrtree.Config{Split: split}}}
		ss, err := selectivitySweep(d, a, p)
		if err != nil {
			return nil, err
		}
		// The paper's Figure 10 plots threshold queries.
		fig.Series = append(fig.Series, ss[0])
	}
	return fig, nil
}

// Runner ties a figure id to its generator.
type Runner struct {
	ID    string
	Title string
	Run   func(Params) (*Figure, error)
}

// Figures lists the paper's evaluation figures in order.
var Figures = []Runner{
	{ID: "fig4", Title: "L1 vs L2 vs KL (PDR-tree, CRM1)", Run: Fig4},
	{ID: "fig5", Title: "Inverted Index vs PDR-tree (synthetic)", Run: Fig5},
	{ID: "fig6", Title: "Inverted Index vs PDR-tree (CRM1)", Run: Fig6},
	{ID: "fig7", Title: "Inverted Index vs PDR-tree (CRM2)", Run: Fig7},
	{ID: "fig8", Title: "Scalability with Dataset Size (CRM2)", Run: Fig8},
	{ID: "fig9", Title: "Scalability with Domain Size (Gen3)", Run: Fig9},
	{ID: "fig10", Title: "PDR Split Algorithm (Uniform)", Run: Fig10},
}

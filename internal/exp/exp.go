// Package exp reproduces the paper's evaluation (§4): it builds the paper's
// datasets, calibrates query thresholds to target selectivities, measures
// disk I/Os per query under the paper's buffer-management discipline (8 KB
// pages, 100-frame clock pool allocated per query), and emits each figure's
// data series.
//
// Methodology notes, matching §4:
//
//   - The y-axis is always "number of disk I/Os per query"; we count buffer
//     pool misses plus write-backs.
//   - The x-axis of Figures 4–7 and 10 is query selectivity as a
//     percentage, on {0.01, 0.1, 1, 10}.
//   - Queries are drawn from the dataset itself; thresholds are calibrated
//     per query so the answer set is the target fraction of the relation,
//     and top-k queries use k = target answer size.
//   - Each point averages a configurable number of queries (default 20),
//     each run against a freshly cleared pool ("a buffer manager that
//     allocates 100 blocks to each query").
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/invidx"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

// Selectivities is the x-axis of the selectivity figures, as fractions
// (0.01% … 10%).
var Selectivities = []float64{0.0001, 0.001, 0.01, 0.1}

// Params tunes an experiment run.
type Params struct {
	// Scale multiplies the paper's dataset sizes (1.0 = full scale:
	// 10k synthetic, 100k CRM). Use smaller scales for quick runs.
	Scale float64
	// Queries is the number of queries averaged per data point.
	Queries int
	// Seed makes runs reproducible.
	Seed int64
	// InvStrategy overrides the inverted-index search strategy. When nil,
	// each figure uses the strategy the paper's discussion implies for its
	// data: frontier search (highest-prob-first) on sparse datasets, where
	// per-candidate random accesses are cheap and Lemma 1 stops early, and
	// list joining (inv-index-search) on dense datasets, where "the random
	// access … performs poorly as against simply joining the relevant parts
	// of inverted lists" (§3.1).
	InvStrategy *invidx.Strategy
	// BuildFrames sizes the buffer pool during index construction; queries
	// always run under the paper's 100 frames.
	BuildFrames int
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Queries <= 0 {
		p.Queries = 20
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.BuildFrames <= 0 {
		p.BuildFrames = 4096
	}
	return p
}

// strategyOr returns the override strategy if set, else the figure's
// data-appropriate default.
func (p Params) strategyOr(def invidx.Strategy) invidx.Strategy {
	if p.InvStrategy != nil {
		return *p.InvStrategy
	}
	return def
}

// scaled applies the scale factor with a sane floor.
func (p Params) scaled(n int) int {
	m := int(float64(n) * p.Scale)
	if m < 100 {
		m = 100
	}
	return m
}

// Point is one measured data point: an x value (selectivity fraction,
// dataset size, domain size, …) and the mean I/Os per query.
type Point struct {
	X   float64
	IOs float64
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced table/figure: its paper identity and data series.
type Figure struct {
	ID     string // e.g. "fig4"
	Title  string
	XLabel string
	Series []Series
}

// WriteCSV renders the figure as CSV (header row, then one row per x
// value), for plotting tools.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s", f.XLabel); err != nil {
		return err
	}
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%s", s.Label)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(w, ",%g", s.Points[i].IOs)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders the figure as an aligned text table, x values as rows
// and series as columns.
func (f *Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %22s", s.Label)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%-14g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(w, " %22.1f", s.Points[i].IOs)
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// workload is a dataset plus calibrated queries.
type workload struct {
	data    *dataset.Dataset
	queries []uda.UDA
	ranked  [][]float64 // per query: equality probabilities, descending
}

// newWorkload draws queries from the dataset and precomputes, in memory
// (no I/O is charged), each query's ranked probability list for threshold
// calibration.
func newWorkload(d *dataset.Dataset, numQueries int, seed int64) *workload {
	r := rand.New(rand.NewSource(seed))
	w := &workload{data: d}
	for len(w.queries) < numQueries {
		q := d.Query(r)
		probs := make([]float64, len(d.Tuples))
		for i, u := range d.Tuples {
			probs[i] = uda.EqualityProb(q, u)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(probs)))
		w.queries = append(w.queries, q)
		w.ranked = append(w.ranked, probs)
	}
	return w
}

// targetCount converts a selectivity fraction to an answer-set size.
func (w *workload) targetCount(sel float64) int {
	m := int(sel*float64(len(w.data.Tuples)) + 0.5)
	if m < 1 {
		m = 1
	}
	if m > len(w.data.Tuples) {
		m = len(w.data.Tuples)
	}
	return m
}

// tau returns the threshold for query qi that admits roughly the target
// number of tuples: the (m+1)-th highest probability, so that strictly-
// greater comparison selects about m tuples.
func (w *workload) tau(qi int, sel float64) float64 {
	m := w.targetCount(sel)
	probs := w.ranked[qi]
	if m >= len(probs) {
		return 0
	}
	return probs[m]
}

// access describes one access method under measurement.
type access struct {
	label string
	opts  core.Options
}

// buildRelation loads the dataset into a fresh relation under a large build
// pool, then shrinks the pool to the paper's 100 frames for querying.
func buildRelation(d *dataset.Dataset, opts core.Options, buildFrames int) (*core.Relation, error) {
	opts.PoolFrames = buildFrames
	rel, err := core.NewRelation(opts)
	if err != nil {
		return nil, err
	}
	for _, u := range d.Tuples {
		if _, err := rel.Insert(u); err != nil {
			return nil, err
		}
	}
	if err := rel.Pool().Resize(pager.DefaultPoolFrames); err != nil {
		return nil, err
	}
	return rel, nil
}

// measure runs every workload query at the given selectivity and returns
// the mean I/Os per query. Each query starts with a cleared pool and fresh
// counters.
func measure(rel *core.Relation, w *workload, sel float64, topk bool) (float64, error) {
	pool := rel.Pool()
	var total uint64
	for qi, q := range w.queries {
		if err := pool.Clear(); err != nil {
			return 0, err
		}
		pool.ResetStats()
		var err error
		if topk {
			_, err = rel.TopK(q, w.targetCount(sel))
		} else {
			_, err = rel.PETQ(q, w.tau(qi, sel))
		}
		if err != nil {
			return 0, err
		}
		total += pool.Stats().IOs()
	}
	return float64(total) / float64(len(w.queries)), nil
}

// selectivitySweep measures one access method across Selectivities,
// producing the "<label>-Thres" and "<label>-TopK" series the paper plots.
func selectivitySweep(d *dataset.Dataset, a access, p Params) ([]Series, error) {
	rel, err := buildRelation(d, a.opts, p.BuildFrames)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.label, err)
	}
	w := newWorkload(d, p.Queries, p.Seed)
	thres := Series{Label: a.label + "-Thres"}
	topk := Series{Label: a.label + "-TopK"}
	for _, sel := range Selectivities {
		io1, err := measure(rel, w, sel, false)
		if err != nil {
			return nil, fmt.Errorf("%s thres: %w", a.label, err)
		}
		io2, err := measure(rel, w, sel, true)
		if err != nil {
			return nil, fmt.Errorf("%s topk: %w", a.label, err)
		}
		thres.Points = append(thres.Points, Point{X: sel * 100, IOs: io1})
		topk.Points = append(topk.Points, Point{X: sel * 100, IOs: io2})
	}
	return []Series{thres, topk}, nil
}

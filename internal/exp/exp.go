// Package exp reproduces the paper's evaluation (§4): it builds the paper's
// datasets, calibrates query thresholds to target selectivities, measures
// disk I/Os per query under the paper's buffer-management discipline (8 KB
// pages, 100-frame clock pool allocated per query), and emits each figure's
// data series.
//
// Methodology notes, matching §4:
//
//   - The y-axis is always "number of disk I/Os per query"; we count buffer
//     pool misses plus write-backs.
//   - The x-axis of Figures 4–7 and 10 is query selectivity as a
//     percentage, on {0.01, 0.1, 1, 10}.
//   - Queries are drawn from the dataset itself; thresholds are calibrated
//     per query so the answer set is the target fraction of the relation,
//     and top-k queries use k = target answer size.
//   - Each point averages a configurable number of queries (default 20),
//     each run against a freshly cleared pool ("a buffer manager that
//     allocates 100 blocks to each query").
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/invidx"
	"ucat/internal/obs"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

// Selectivities is the x-axis of the selectivity figures, as fractions
// (0.01% … 10%).
var Selectivities = []float64{0.0001, 0.001, 0.01, 0.1}

// Params tunes an experiment run.
type Params struct {
	// Scale multiplies the paper's dataset sizes (1.0 = full scale:
	// 10k synthetic, 100k CRM). Use smaller scales for quick runs.
	Scale float64
	// Queries is the number of queries averaged per data point.
	Queries int
	// Seed makes runs reproducible.
	Seed int64
	// InvStrategy overrides the inverted-index search strategy. When nil,
	// each figure uses the strategy the paper's discussion implies for its
	// data: frontier search (highest-prob-first) on sparse datasets, where
	// per-candidate random accesses are cheap and Lemma 1 stops early, and
	// list joining (inv-index-search) on dense datasets, where "the random
	// access … performs poorly as against simply joining the relevant parts
	// of inverted lists" (§3.1).
	InvStrategy *invidx.Strategy
	// BuildFrames sizes the buffer pool during index construction; queries
	// always run under the paper's 100 frames.
	BuildFrames int
	// Workers is the number of goroutines that execute a point's calibrated
	// queries. Every query runs against its own fresh pool view over the
	// shared store — the paper's "100 blocks to each query" discipline —
	// so the per-point I/O numbers are bit-for-bit identical for any worker
	// count; only wall-clock time changes. 0 or 1 means sequential.
	Workers int
	// NoDecodeCache disables the relation-wide decoded-page cache for every
	// relation the run builds. The cache never skips a pool fetch, so the
	// figures' I/O counts are identical either way; this knob exists for the
	// cache A/B benchmark (ns/q and allocs/q change, I/Os do not).
	NoDecodeCache bool
	// DecodeCacheBytes bounds each relation's decode cache; 0 = default.
	DecodeCacheBytes int
	// Readahead enables sibling-leaf prefetch on inverted-list scans.
	// Prefetch reads are accounted outside pager.Stats, so I/O figures are
	// again unchanged; off by default.
	Readahead bool
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Queries <= 0 {
		p.Queries = 20
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.BuildFrames <= 0 {
		p.BuildFrames = 4096
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	return p
}

// strategyOr returns the override strategy if set, else the figure's
// data-appropriate default.
func (p Params) strategyOr(def invidx.Strategy) invidx.Strategy {
	if p.InvStrategy != nil {
		return *p.InvStrategy
	}
	return def
}

// scaled applies the scale factor with a sane floor.
func (p Params) scaled(n int) int {
	m := int(float64(n) * p.Scale)
	if m < 100 {
		m = 100
	}
	return m
}

// Point is one measured data point: an x value (selectivity fraction,
// dataset size, domain size, …) and the mean I/Os per query. The remaining
// fields carry the observability dimensions — mean wall-clock nanoseconds,
// heap allocations, buffer hit-rate, and per-query latency percentiles —
// and are informational: figure output (CSV/table) renders only the paper's
// I/O metric and the determinism pins compare only X and IOs.
type Point struct {
	X       float64 `json:"x"`
	IOs     float64 `json:"ios"`
	Ns      float64 `json:"ns"`
	Allocs  float64 `json:"allocs"`
	HitRate float64 `json:"hit_rate"`
	P50Ns   float64 `json:"p50_ns"`
	P95Ns   float64 `json:"p95_ns"`
	P99Ns   float64 `json:"p99_ns"`
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string  `json:"label"`
	Points []Point `json:"points"`
}

// Figure is a reproduced table/figure: its paper identity and data series.
type Figure struct {
	ID     string   `json:"id"` // e.g. "fig4"
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	Series []Series `json:"series"`
}

// WriteJSON renders the figure — including the observability dimensions the
// text formats omit (hit rate, latency percentiles) — as indented JSON.
func (f *Figure) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteCSV renders the figure as CSV (header row, then one row per x
// value), for plotting tools.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s", f.XLabel); err != nil {
		return err
	}
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%s", s.Label)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(w, ",%g", s.Points[i].IOs)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders the figure as an aligned text table, x values as rows
// and series as columns.
func (f *Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %22s", s.Label)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%-14g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(w, " %22.1f", s.Points[i].IOs)
		}
		fmt.Fprintln(w)
	}
	// Buffer hit rate per point (hits/(hits+reads) under the per-query
	// 100-frame pool). Deterministic like the I/O counts, and often the
	// explanation for them: a flat I/O line with a rising hit rate means the
	// working set fell under the pool size.
	fmt.Fprintf(w, "# buffer hit rate\n%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %22s", s.Label)
	}
	fmt.Fprintln(w)
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%-14g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(w, " %22.3f", s.Points[i].HitRate)
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// workload is a dataset plus calibrated queries.
type workload struct {
	data    *dataset.Dataset
	queries []uda.UDA
	ranked  [][]float64 // per query: equality probabilities, descending
}

// newWorkload draws queries from the dataset and precomputes, in memory
// (no I/O is charged), each query's ranked probability list for threshold
// calibration.
func newWorkload(d *dataset.Dataset, numQueries int, seed int64) *workload {
	r := rand.New(rand.NewSource(seed))
	w := &workload{data: d}
	for len(w.queries) < numQueries {
		q := d.Query(r)
		probs := make([]float64, len(d.Tuples))
		for i, u := range d.Tuples {
			probs[i] = uda.EqualityProb(q, u)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(probs)))
		w.queries = append(w.queries, q)
		w.ranked = append(w.ranked, probs)
	}
	return w
}

// targetCount converts a selectivity fraction to an answer-set size.
func (w *workload) targetCount(sel float64) int {
	m := int(sel*float64(len(w.data.Tuples)) + 0.5)
	if m < 1 {
		m = 1
	}
	if m > len(w.data.Tuples) {
		m = len(w.data.Tuples)
	}
	return m
}

// tau returns the threshold for query qi that admits roughly the target
// number of tuples: the (m+1)-th highest probability, so that strictly-
// greater comparison selects about m tuples.
func (w *workload) tau(qi int, sel float64) float64 {
	m := w.targetCount(sel)
	probs := w.ranked[qi]
	if m >= len(probs) {
		return 0
	}
	return probs[m]
}

// access describes one access method under measurement.
type access struct {
	label string
	opts  core.Options
}

// buildRelation loads the dataset into a fresh relation under a large build
// pool, then shrinks the pool to the paper's 100 frames for querying. The
// run-wide cache/readahead knobs are applied here so every access method in
// a figure is built under the same configuration.
func buildRelation(d *dataset.Dataset, opts core.Options, p Params) (*core.Relation, error) {
	opts.PoolFrames = p.BuildFrames
	opts.NoDecodeCache = p.NoDecodeCache
	opts.DecodeCacheBytes = p.DecodeCacheBytes
	opts.Readahead = p.Readahead
	rel, err := core.NewRelation(opts)
	if err != nil {
		return nil, err
	}
	for _, u := range d.Tuples {
		if _, err := rel.Insert(u); err != nil {
			return nil, err
		}
	}
	if err := rel.Pool().Resize(pager.DefaultPoolFrames); err != nil {
		return nil, err
	}
	return rel, nil
}

// Measurement aggregates the per-query cost of one workload batch: the
// paper's I/O metric plus the observability dimensions (wall clock,
// allocations, buffer hit rate, latency percentiles).
type Measurement struct {
	IOs     float64 // mean buffer-pool misses + write-backs per query
	Ns      float64 // mean wall-clock nanoseconds per query
	Allocs  float64 // mean heap allocations per query (process-wide delta)
	HitRate float64 // pooled buffer hit rate hits/(hits+reads) over the batch
	P50Ns   float64 // per-query wall-clock percentiles (nearest rank)
	P95Ns   float64
	P99Ns   float64
}

// point converts the measurement to a data point at x.
func (m Measurement) point(x float64) Point {
	return Point{X: x, IOs: m.IOs, Ns: m.Ns, Allocs: m.Allocs,
		HitRate: m.HitRate, P50Ns: m.P50Ns, P95Ns: m.P95Ns, P99Ns: m.P99Ns}
}

// percentileNs returns the p-th percentile (nearest rank, p in (0,100]) of
// the sorted ascending ns values.
func percentileNs(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1])
}

// measureEach runs fn once per workload query, each invocation against a
// fresh private pool view sized like the relation's pool — the paper's
// "buffer manager that allocates 100 blocks to each query" (§4) — and
// returns the mean per-query cost.
//
// Queries are hermetic (read-only, private pool, no shared mutable state),
// so their I/O counts do not depend on execution order: the worker fan-out
// changes wall-clock time only. Per-query I/Os are accumulated into a uint64
// sum in input order, making the reported means bit-for-bit identical for
// any worker count. A freshly built pool starts with every frame invalid,
// exactly like a cleared pool, and clock replacement from an all-invalid
// state is rotation-invariant — so these numbers also equal the historical
// sequential Clear-per-query discipline.
func measureEach(rel *core.Relation, w *workload, workers int, fn func(rd *core.Reader, qi int) error) (Measurement, error) {
	n := len(w.queries)
	if n == 0 {
		return Measurement{}, fmt.Errorf("exp: empty workload")
	}
	if workers <= 1 {
		workers = 1
	}
	store := rel.Pool().Store()
	frames := rel.Pool().Frames()

	type result struct {
		ios   uint64
		reads uint64
		hits  uint64
		ns    int64
		err   error
	}
	results := make([]result, n)
	run := func(qi int) {
		view := pager.NewPool(store, frames)
		rd := rel.Reader(view)
		t0 := time.Now()
		err := fn(rd, qi)
		st := view.Stats()
		results[qi] = result{ios: st.IOs(), reads: st.Reads, hits: st.Hits,
			ns: time.Since(t0).Nanoseconds(), err: err}
	}

	var mem0, mem1 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	if workers == 1 {
		for qi := 0; qi < n; qi++ {
			run(qi)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for qi := 0; qi < n; qi++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(qi int) {
				defer wg.Done()
				run(qi)
				<-sem
			}(qi)
		}
		wg.Wait()
	}
	runtime.ReadMemStats(&mem1)

	// Merge in input order. Addition over uint64 is exact, so the sums (and
	// hence the means) cannot depend on completion order.
	var totalIOs, totalReads, totalHits uint64
	var totalNs int64
	nsSorted := make([]int64, 0, n)
	for qi := range results {
		if err := results[qi].err; err != nil {
			return Measurement{}, err
		}
		totalIOs += results[qi].ios
		totalReads += results[qi].reads
		totalHits += results[qi].hits
		totalNs += results[qi].ns
		nsSorted = append(nsSorted, results[qi].ns)
	}
	sort.Slice(nsSorted, func(i, j int) bool { return nsSorted[i] < nsSorted[j] })

	// Feed the process-wide metrics registry so a live /metrics endpoint
	// (ucatbench -debugaddr) shows query throughput, I/O and latency
	// distributions as a run progresses.
	obs.Default.Counter("ucat_queries_total").Add(uint64(n))
	obs.Default.Counter("ucat_pager_reads_total").Add(totalReads)
	obs.Default.Counter("ucat_pager_hits_total").Add(totalHits)
	lat := obs.Default.Histogram("ucat_query_latency_ns")
	ioh := obs.Default.Histogram("ucat_query_ios")
	for qi := range results {
		lat.Observe(uint64(results[qi].ns))
		ioh.Observe(results[qi].ios)
	}

	m := Measurement{
		IOs:    float64(totalIOs) / float64(n),
		Ns:     float64(totalNs) / float64(n),
		Allocs: float64(mem1.Mallocs-mem0.Mallocs) / float64(n),
		P50Ns:  percentileNs(nsSorted, 50),
		P95Ns:  percentileNs(nsSorted, 95),
		P99Ns:  percentileNs(nsSorted, 99),
	}
	if t := totalHits + totalReads; t > 0 {
		m.HitRate = float64(totalHits) / float64(t)
	}
	return m, nil
}

// measure runs every workload query at the given selectivity and returns
// the mean per-query cost. Each query runs against its own fresh pool view.
func measure(rel *core.Relation, w *workload, sel float64, topk bool, workers int) (Measurement, error) {
	return measureEach(rel, w, workers, func(rd *core.Reader, qi int) error {
		var err error
		if topk {
			_, err = rd.TopK(w.queries[qi], w.targetCount(sel))
		} else {
			_, err = rd.PETQ(w.queries[qi], w.tau(qi, sel))
		}
		return err
	})
}

// selectivitySweep measures one access method across Selectivities,
// producing the "<label>-Thres" and "<label>-TopK" series the paper plots.
func selectivitySweep(d *dataset.Dataset, a access, p Params) ([]Series, error) {
	rel, err := buildRelation(d, a.opts, p)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.label, err)
	}
	w := newWorkload(d, p.Queries, p.Seed)
	thres := Series{Label: a.label + "-Thres"}
	topk := Series{Label: a.label + "-TopK"}
	for _, sel := range Selectivities {
		m1, err := measure(rel, w, sel, false, p.Workers)
		if err != nil {
			return nil, fmt.Errorf("%s thres: %w", a.label, err)
		}
		m2, err := measure(rel, w, sel, true, p.Workers)
		if err != nil {
			return nil, fmt.Errorf("%s topk: %w", a.label, err)
		}
		thres.Points = append(thres.Points, m1.point(sel*100))
		topk.Points = append(topk.Points, m2.point(sel*100))
	}
	return []Series{thres, topk}, nil
}

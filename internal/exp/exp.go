// Package exp reproduces the paper's evaluation (§4): it builds the paper's
// datasets, calibrates query thresholds to target selectivities, measures
// disk I/Os per query under the paper's buffer-management discipline (8 KB
// pages, 100-frame clock pool allocated per query), and emits each figure's
// data series.
//
// Methodology notes, matching §4:
//
//   - The y-axis is always "number of disk I/Os per query"; we count buffer
//     pool misses plus write-backs.
//   - The x-axis of Figures 4–7 and 10 is query selectivity as a
//     percentage, on {0.01, 0.1, 1, 10}.
//   - Queries are drawn from the dataset itself; thresholds are calibrated
//     per query so the answer set is the target fraction of the relation,
//     and top-k queries use k = target answer size.
//   - Each point averages a configurable number of queries (default 20),
//     each run against a freshly cleared pool ("a buffer manager that
//     allocates 100 blocks to each query").
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/invidx"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

// Selectivities is the x-axis of the selectivity figures, as fractions
// (0.01% … 10%).
var Selectivities = []float64{0.0001, 0.001, 0.01, 0.1}

// Params tunes an experiment run.
type Params struct {
	// Scale multiplies the paper's dataset sizes (1.0 = full scale:
	// 10k synthetic, 100k CRM). Use smaller scales for quick runs.
	Scale float64
	// Queries is the number of queries averaged per data point.
	Queries int
	// Seed makes runs reproducible.
	Seed int64
	// InvStrategy overrides the inverted-index search strategy. When nil,
	// each figure uses the strategy the paper's discussion implies for its
	// data: frontier search (highest-prob-first) on sparse datasets, where
	// per-candidate random accesses are cheap and Lemma 1 stops early, and
	// list joining (inv-index-search) on dense datasets, where "the random
	// access … performs poorly as against simply joining the relevant parts
	// of inverted lists" (§3.1).
	InvStrategy *invidx.Strategy
	// BuildFrames sizes the buffer pool during index construction; queries
	// always run under the paper's 100 frames.
	BuildFrames int
	// Workers is the number of goroutines that execute a point's calibrated
	// queries. Every query runs against its own fresh pool view over the
	// shared store — the paper's "100 blocks to each query" discipline —
	// so the per-point I/O numbers are bit-for-bit identical for any worker
	// count; only wall-clock time changes. 0 or 1 means sequential.
	Workers int
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Queries <= 0 {
		p.Queries = 20
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.BuildFrames <= 0 {
		p.BuildFrames = 4096
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	return p
}

// strategyOr returns the override strategy if set, else the figure's
// data-appropriate default.
func (p Params) strategyOr(def invidx.Strategy) invidx.Strategy {
	if p.InvStrategy != nil {
		return *p.InvStrategy
	}
	return def
}

// scaled applies the scale factor with a sane floor.
func (p Params) scaled(n int) int {
	m := int(float64(n) * p.Scale)
	if m < 100 {
		m = 100
	}
	return m
}

// Point is one measured data point: an x value (selectivity fraction,
// dataset size, domain size, …) and the mean I/Os per query. Ns and Allocs
// carry the wall-clock dimension (mean nanoseconds and heap allocations per
// query); they are informational — figure output (CSV/table) renders only
// the paper's I/O metric and is unaffected.
type Point struct {
	X      float64
	IOs    float64
	Ns     float64
	Allocs float64
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced table/figure: its paper identity and data series.
type Figure struct {
	ID     string // e.g. "fig4"
	Title  string
	XLabel string
	Series []Series
}

// WriteCSV renders the figure as CSV (header row, then one row per x
// value), for plotting tools.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s", f.XLabel); err != nil {
		return err
	}
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%s", s.Label)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(w, ",%g", s.Points[i].IOs)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders the figure as an aligned text table, x values as rows
// and series as columns.
func (f *Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %22s", s.Label)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return nil
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "%-14g", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(w, " %22.1f", s.Points[i].IOs)
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// workload is a dataset plus calibrated queries.
type workload struct {
	data    *dataset.Dataset
	queries []uda.UDA
	ranked  [][]float64 // per query: equality probabilities, descending
}

// newWorkload draws queries from the dataset and precomputes, in memory
// (no I/O is charged), each query's ranked probability list for threshold
// calibration.
func newWorkload(d *dataset.Dataset, numQueries int, seed int64) *workload {
	r := rand.New(rand.NewSource(seed))
	w := &workload{data: d}
	for len(w.queries) < numQueries {
		q := d.Query(r)
		probs := make([]float64, len(d.Tuples))
		for i, u := range d.Tuples {
			probs[i] = uda.EqualityProb(q, u)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(probs)))
		w.queries = append(w.queries, q)
		w.ranked = append(w.ranked, probs)
	}
	return w
}

// targetCount converts a selectivity fraction to an answer-set size.
func (w *workload) targetCount(sel float64) int {
	m := int(sel*float64(len(w.data.Tuples)) + 0.5)
	if m < 1 {
		m = 1
	}
	if m > len(w.data.Tuples) {
		m = len(w.data.Tuples)
	}
	return m
}

// tau returns the threshold for query qi that admits roughly the target
// number of tuples: the (m+1)-th highest probability, so that strictly-
// greater comparison selects about m tuples.
func (w *workload) tau(qi int, sel float64) float64 {
	m := w.targetCount(sel)
	probs := w.ranked[qi]
	if m >= len(probs) {
		return 0
	}
	return probs[m]
}

// access describes one access method under measurement.
type access struct {
	label string
	opts  core.Options
}

// buildRelation loads the dataset into a fresh relation under a large build
// pool, then shrinks the pool to the paper's 100 frames for querying.
func buildRelation(d *dataset.Dataset, opts core.Options, buildFrames int) (*core.Relation, error) {
	opts.PoolFrames = buildFrames
	rel, err := core.NewRelation(opts)
	if err != nil {
		return nil, err
	}
	for _, u := range d.Tuples {
		if _, err := rel.Insert(u); err != nil {
			return nil, err
		}
	}
	if err := rel.Pool().Resize(pager.DefaultPoolFrames); err != nil {
		return nil, err
	}
	return rel, nil
}

// Measurement aggregates the per-query cost of one workload batch: the
// paper's I/O metric plus the wall-clock dimension.
type Measurement struct {
	IOs    float64 // mean buffer-pool misses + write-backs per query
	Ns     float64 // mean wall-clock nanoseconds per query
	Allocs float64 // mean heap allocations per query (process-wide delta)
}

// point converts the measurement to a data point at x.
func (m Measurement) point(x float64) Point {
	return Point{X: x, IOs: m.IOs, Ns: m.Ns, Allocs: m.Allocs}
}

// measureEach runs fn once per workload query, each invocation against a
// fresh private pool view sized like the relation's pool — the paper's
// "buffer manager that allocates 100 blocks to each query" (§4) — and
// returns the mean per-query cost.
//
// Queries are hermetic (read-only, private pool, no shared mutable state),
// so their I/O counts do not depend on execution order: the worker fan-out
// changes wall-clock time only. Per-query I/Os are accumulated into a uint64
// sum in input order, making the reported means bit-for-bit identical for
// any worker count. A freshly built pool starts with every frame invalid,
// exactly like a cleared pool, and clock replacement from an all-invalid
// state is rotation-invariant — so these numbers also equal the historical
// sequential Clear-per-query discipline.
func measureEach(rel *core.Relation, w *workload, workers int, fn func(rd *core.Reader, qi int) error) (Measurement, error) {
	n := len(w.queries)
	if n == 0 {
		return Measurement{}, fmt.Errorf("exp: empty workload")
	}
	if workers <= 1 {
		workers = 1
	}
	store := rel.Pool().Store()
	frames := rel.Pool().Frames()

	type result struct {
		ios uint64
		ns  int64
		err error
	}
	results := make([]result, n)
	run := func(qi int) {
		view := pager.NewPool(store, frames)
		rd := rel.Reader(view)
		t0 := time.Now()
		err := fn(rd, qi)
		results[qi] = result{ios: view.Stats().IOs(), ns: time.Since(t0).Nanoseconds(), err: err}
	}

	var mem0, mem1 runtime.MemStats
	runtime.ReadMemStats(&mem0)
	if workers == 1 {
		for qi := 0; qi < n; qi++ {
			run(qi)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for qi := 0; qi < n; qi++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(qi int) {
				defer wg.Done()
				run(qi)
				<-sem
			}(qi)
		}
		wg.Wait()
	}
	runtime.ReadMemStats(&mem1)

	// Merge in input order. Addition over uint64 is exact, so the sums (and
	// hence the means) cannot depend on completion order.
	var totalIOs uint64
	var totalNs int64
	for qi := range results {
		if err := results[qi].err; err != nil {
			return Measurement{}, err
		}
		totalIOs += results[qi].ios
		totalNs += results[qi].ns
	}
	return Measurement{
		IOs:    float64(totalIOs) / float64(n),
		Ns:     float64(totalNs) / float64(n),
		Allocs: float64(mem1.Mallocs-mem0.Mallocs) / float64(n),
	}, nil
}

// measure runs every workload query at the given selectivity and returns
// the mean per-query cost. Each query runs against its own fresh pool view.
func measure(rel *core.Relation, w *workload, sel float64, topk bool, workers int) (Measurement, error) {
	return measureEach(rel, w, workers, func(rd *core.Reader, qi int) error {
		var err error
		if topk {
			_, err = rd.TopK(w.queries[qi], w.targetCount(sel))
		} else {
			_, err = rd.PETQ(w.queries[qi], w.tau(qi, sel))
		}
		return err
	})
}

// selectivitySweep measures one access method across Selectivities,
// producing the "<label>-Thres" and "<label>-TopK" series the paper plots.
func selectivitySweep(d *dataset.Dataset, a access, p Params) ([]Series, error) {
	rel, err := buildRelation(d, a.opts, p.BuildFrames)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.label, err)
	}
	w := newWorkload(d, p.Queries, p.Seed)
	thres := Series{Label: a.label + "-Thres"}
	topk := Series{Label: a.label + "-TopK"}
	for _, sel := range Selectivities {
		m1, err := measure(rel, w, sel, false, p.Workers)
		if err != nil {
			return nil, fmt.Errorf("%s thres: %w", a.label, err)
		}
		m2, err := measure(rel, w, sel, true, p.Workers)
		if err != nil {
			return nil, fmt.Errorf("%s topk: %w", a.label, err)
		}
		thres.Points = append(thres.Points, m1.point(sel*100))
		topk.Points = append(topk.Points, m2.point(sel*100))
	}
	return []Series{thres, topk}, nil
}

package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/invidx"
)

// benchcache.go measures what the decoded-page cache buys: the Figure-4
// PETQ workload (CRM1, both index structures) is run with the cache off and
// on, sequentially and with the parallel worker fan-out, and the CPU-side
// dimensions (wall-clock ns/query, heap allocations/query, decode-cache hit
// rate) are compared. The paper's metric — disk I/Os per query — must be
// bit-identical across all four variants: the cache never skips a pool
// fetch and readahead is off here, so any I/O difference is a bug (the
// report records the cross-check).

// CacheVariant is one (cache setting, worker count) measurement of the
// workload.
type CacheVariant struct {
	Label          string  `json:"label"` // e.g. "cache-off/seq"
	Cache          bool    `json:"cache"`
	Workers        int     `json:"workers"`
	NsPerQuery     float64 `json:"ns_per_query"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
	IOsPerQuery    float64 `json:"ios_per_query"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	WallNs         int64   `json:"wall_ns"`
}

// CacheAccess is the cache-off/cache-on comparison for one access method.
type CacheAccess struct {
	Label    string         `json:"label"`
	Variants []CacheVariant `json:"variants"`
	// Sequential cache-on vs cache-off deltas (positive = cache wins).
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
	NsReductionPct     float64 `json:"ns_reduction_pct"`
	// IOsIdentical is the determinism cross-check: every variant must report
	// exactly the same mean I/Os per query.
	IOsIdentical bool `json:"ios_identical"`
}

// CacheBenchReport is the BENCH_cache.json payload.
type CacheBenchReport struct {
	Generated  string        `json:"generated"`
	Scale      float64       `json:"scale"`
	Queries    int           `json:"queries"`
	Seed       int64         `json:"seed"`
	Workers    int           `json:"workers"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Readahead  bool          `json:"readahead"`
	Access     []CacheAccess `json:"access"`
}

// WriteJSON writes the report as indented JSON.
func (r *CacheBenchReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// benchCacheVariant runs the PETQ sweep over every selectivity on rel and
// aggregates the per-query means (equal query counts per point, so the mean
// of means is the overall mean).
func benchCacheVariant(rel *core.Relation, w *workload, workers int, label string, cacheOn bool) (CacheVariant, error) {
	before := rel.DecodeCache().Stats() // nil-safe: zero Stats when cache off
	t0 := time.Now()
	var ns, allocs, ios float64
	for _, sel := range Selectivities {
		m, err := measure(rel, w, sel, false, workers)
		if err != nil {
			return CacheVariant{}, fmt.Errorf("%s sel %g: %w", label, sel, err)
		}
		ns += m.Ns
		allocs += m.Allocs
		ios += m.IOs
	}
	n := float64(len(Selectivities))
	after := rel.DecodeCache().Stats()
	v := CacheVariant{
		Label:          label,
		Cache:          cacheOn,
		Workers:        workers,
		NsPerQuery:     ns / n,
		AllocsPerQuery: allocs / n,
		IOsPerQuery:    ios / n,
		CacheHits:      after.Hits - before.Hits,
		CacheMisses:    after.Misses - before.Misses,
		CacheEvictions: after.Evictions - before.Evictions,
		WallNs:         time.Since(t0).Nanoseconds(),
	}
	if t := v.CacheHits + v.CacheMisses; t > 0 {
		v.CacheHitRate = float64(v.CacheHits) / float64(t)
	}
	return v, nil
}

// BenchCache builds the Figure-4 workload (CRM1) under both index
// structures and measures the PETQ sweep cache-off vs cache-on, each
// sequentially and with p.Workers goroutines. p.NoDecodeCache is ignored
// (both settings are always measured); p.Readahead is applied to BOTH sides
// of each comparison and recorded in the report — unlike the cache, readahead
// legitimately changes demand I/Os, so holding it equal is what keeps the
// ios_identical cross-check meaningful.
func BenchCache(p Params) (*CacheBenchReport, error) {
	p = p.withDefaults()
	d := dataset.CRM1Like(p.Seed, p.scaled(dataset.CRMSize))
	w := newWorkload(d, p.Queries, p.Seed)

	report := &CacheBenchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Scale:      p.Scale,
		Queries:    p.Queries,
		Seed:       p.Seed,
		Workers:    p.Workers,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Readahead:  p.Readahead,
	}

	for _, a := range []access{
		{label: "CRM1-Inv", opts: core.Options{Kind: core.InvertedIndex, InvStrategy: p.strategyOr(invidx.NRA)}},
		{label: "CRM1-PDR", opts: core.Options{Kind: core.PDRTree}},
	} {
		// One relation per cache setting; both runs (seq then parallel) share
		// it, so the cache-on parallel numbers reflect a warm cross-query
		// cache — exactly the production shape.
		pOff, pOn := p, p
		pOff.NoDecodeCache = true
		pOn.NoDecodeCache = false
		relOff, err := buildRelation(d, a.opts, pOff)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.label, err)
		}
		relOn, err := buildRelation(d, a.opts, pOn)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.label, err)
		}

		ca := CacheAccess{Label: a.label}
		type job struct {
			rel     *core.Relation
			workers int
			label   string
			cacheOn bool
		}
		jobs := []job{
			{relOff, 1, "cache-off/seq", false},
			{relOn, 1, "cache-on/seq", true},
		}
		if p.Workers > 1 {
			jobs = append(jobs,
				job{relOff, p.Workers, "cache-off/par", false},
				job{relOn, p.Workers, "cache-on/par", true},
			)
		}
		for _, j := range jobs {
			v, err := benchCacheVariant(j.rel, w, j.workers, a.label+" "+j.label, j.cacheOn)
			if err != nil {
				return nil, err
			}
			ca.Variants = append(ca.Variants, v)
		}

		// Sequential on-vs-off deltas and the I/O determinism cross-check.
		off, on := ca.Variants[0], ca.Variants[1]
		if off.AllocsPerQuery > 0 {
			ca.AllocsReductionPct = (off.AllocsPerQuery - on.AllocsPerQuery) / off.AllocsPerQuery * 100
		}
		if off.NsPerQuery > 0 {
			ca.NsReductionPct = (off.NsPerQuery - on.NsPerQuery) / off.NsPerQuery * 100
		}
		ca.IOsIdentical = true
		for _, v := range ca.Variants[1:] {
			//ucatlint:ignore floatcmp exact cache-on/off I/O determinism is the property under test
			if v.IOsPerQuery != ca.Variants[0].IOsPerQuery {
				ca.IOsIdentical = false
			}
		}
		report.Access = append(report.Access, ca)
	}
	return report, nil
}

package exp

import (
	"testing"

	"ucat/internal/core"
	"ucat/internal/dataset"
)

// TestFiguresDeterministicUnderWorkers is the acceptance gate for the
// parallel harness: for every paper figure (4–10) at Scale=0.05, the
// per-series per-point I/O values with Workers=4 must be *exactly* equal to
// the sequential run — not approximately, bitwise. Each query runs against
// its own fresh pool view, so worker scheduling may reorder execution but
// can never change what any query pays.
func TestFiguresDeterministicUnderWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep in -short mode")
	}
	base := Params{Scale: 0.05, Queries: 4, Seed: 3}
	for _, r := range Figures {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			seq := base
			seq.Workers = 1
			figSeq, err := r.Run(seq)
			if err != nil {
				t.Fatalf("%s sequential: %v", r.ID, err)
			}
			par := base
			par.Workers = 4
			figPar, err := r.Run(par)
			if err != nil {
				t.Fatalf("%s workers=4: %v", r.ID, err)
			}
			if len(figSeq.Series) != len(figPar.Series) {
				t.Fatalf("%s: %d series sequential, %d parallel", r.ID, len(figSeq.Series), len(figPar.Series))
			}
			for si := range figSeq.Series {
				ss, sp := figSeq.Series[si], figPar.Series[si]
				if ss.Label != sp.Label {
					t.Fatalf("%s series %d: label %q vs %q", r.ID, si, ss.Label, sp.Label)
				}
				if len(ss.Points) != len(sp.Points) {
					t.Fatalf("%s %q: %d points sequential, %d parallel", r.ID, ss.Label, len(ss.Points), len(sp.Points))
				}
				for pi := range ss.Points {
					a, b := ss.Points[pi], sp.Points[pi]
					//ucatlint:ignore floatcmp exact cross-worker determinism is the contract under test
					if a.X != b.X || a.IOs != b.IOs {
						t.Errorf("%s %q point %d: sequential (x=%g, io=%g) vs workers=4 (x=%g, io=%g); must be bit-identical",
							r.ID, ss.Label, pi, a.X, a.IOs, b.X, b.IOs)
					}
				}
			}
		})
	}
}

// TestMeasureEachMergesInInputOrder pins the merge discipline at the unit
// level: per-query I/Os are identical across worker counts even when query
// costs differ wildly, because each query is hermetic and sums are exact.
func TestMeasureEachMergesInInputOrder(t *testing.T) {
	d := dataset.Uniform(9, 2000)
	rel, err := buildRelation(d, core.Options{Kind: core.PDRTree}, Params{BuildFrames: 1024}.withDefaults())
	if err != nil {
		t.Fatalf("buildRelation: %v", err)
	}
	w := newWorkload(d, 6, 9)
	for _, topk := range []bool{false, true} {
		m1, err := measure(rel, w, 0.01, topk, 1)
		if err != nil {
			t.Fatalf("measure workers=1: %v", err)
		}
		for _, workers := range []int{2, 4, 8} {
			mN, err := measure(rel, w, 0.01, topk, workers)
			if err != nil {
				t.Fatalf("measure workers=%d: %v", workers, err)
			}
			if mN.IOs != m1.IOs { //ucatlint:ignore floatcmp exact determinism is the contract under test
				t.Errorf("topk=%v workers=%d: %g I/Os, sequential %g; must be identical", topk, workers, mN.IOs, m1.IOs)
			}
		}
	}
}

// TestMeasureIOsIdenticalCacheOnOff is the layering gate for the decode
// cache (DESIGN.md §15): the cache sits above the buffer pool and only skips
// deserialization, never a fetch, so the paper's I/O metric must be
// bit-identical with the cache on or off — for both index kinds, sequential
// and parallel. Readahead is held equal on both sides of each comparison:
// unlike the cache it legitimately changes demand I/Os (prefetched pages
// turn later misses into pool hits), which is why it is off by default and
// excluded from figure runs.
func TestMeasureIOsIdenticalCacheOnOff(t *testing.T) {
	d := dataset.Uniform(11, 2000)
	w := newWorkload(d, 6, 11)
	for _, kind := range []core.Kind{core.InvertedIndex, core.PDRTree} {
		for _, readahead := range []bool{false, true} {
			pOff := Params{BuildFrames: 1024, NoDecodeCache: true, Readahead: readahead}.withDefaults()
			relOff, err := buildRelation(d, core.Options{Kind: kind}, pOff)
			if err != nil {
				t.Fatalf("build kind=%v cache=off: %v", kind, err)
			}
			pOn := Params{BuildFrames: 1024, Readahead: readahead}.withDefaults()
			relOn, err := buildRelation(d, core.Options{Kind: kind}, pOn)
			if err != nil {
				t.Fatalf("build kind=%v cache=on: %v", kind, err)
			}
			for _, workers := range []int{1, 4} {
				mOff, err := measure(relOff, w, 0.01, false, workers)
				if err != nil {
					t.Fatalf("measure cache=off: %v", err)
				}
				mOn, err := measure(relOn, w, 0.01, false, workers)
				if err != nil {
					t.Fatalf("measure cache=on: %v", err)
				}
				if mOn.IOs != mOff.IOs { //ucatlint:ignore floatcmp exact cache-on/off determinism is the contract under test
					t.Errorf("kind=%v readahead=%v workers=%d: cache-on %g I/Os, cache-off %g; cache must never change I/O counts",
						kind, readahead, workers, mOn.IOs, mOff.IOs)
				}
				if workers == 1 && kind == core.PDRTree {
					if c := relOn.DecodeCache(); c.Stats().Hits == 0 {
						t.Errorf("kind=%v: decode cache never hit; cache is not actually engaged", kind)
					}
				}
			}
		}
	}
}

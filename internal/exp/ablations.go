package exp

import (
	"fmt"

	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/invidx"
	"ucat/internal/pager"
	"ucat/internal/pdrtree"
	"ucat/internal/uda"
)

// Ablation experiments for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they isolate the effect of each knob.

// AblationInvStrategies compares all five inverted-index search strategies
// on CRM1 threshold queries across selectivities.
func AblationInvStrategies(p Params) (*Figure, error) {
	p = p.withDefaults()
	d := dataset.CRM1Like(p.Seed, p.scaled(dataset.CRMSize))
	fig := &Figure{ID: "ablation-inv", Title: "Inverted-index search strategies (CRM1)", XLabel: "selectivity %"}
	w := newWorkload(d, p.Queries, p.Seed)
	for _, s := range invidx.Strategies {
		rel, err := buildRelation(d, core.Options{Kind: core.InvertedIndex, InvStrategy: s}, p)
		if err != nil {
			return nil, err
		}
		series := Series{Label: s.String()}
		for _, sel := range Selectivities {
			m, err := measure(rel, w, sel, false, p.Workers)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, m.point(sel*100))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// AblationInsertCriterion compares the PDR-tree's child-choice criteria on
// the Uniform dataset.
func AblationInsertCriterion(p Params) (*Figure, error) {
	p = p.withDefaults()
	d := dataset.Uniform(p.Seed, p.scaled(dataset.SyntheticSize))
	fig := &Figure{ID: "ablation-insert", Title: "PDR-tree insert criterion (Uniform)", XLabel: "selectivity %"}
	for _, pol := range []pdrtree.InsertPolicy{pdrtree.CombinedPolicy, pdrtree.MinAreaIncrease, pdrtree.MostSimilar} {
		a := access{label: pol.String(), opts: core.Options{Kind: core.PDRTree, PDR: pdrtree.Config{Insert: pol}}}
		ss, err := selectivitySweep(d, a, p)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, ss[0]) // threshold series
	}
	return fig, nil
}

// AblationCompression compares MBR boundary storage formats on the
// large-domain Gen3 dataset, where uncompressed boundaries shrink fan-out.
func AblationCompression(p Params) (*Figure, error) {
	p = p.withDefaults()
	d := dataset.Gen3(p.Seed, p.scaled(dataset.SyntheticSize), 500)
	fig := &Figure{ID: "ablation-compression", Title: "PDR-tree MBR compression (Gen3-500)", XLabel: "selectivity %"}
	learned, err := pdrtree.LearnSignature(d.Tuples, 500, 64)
	if err != nil {
		return nil, err
	}
	for _, cfg := range []struct {
		label string
		pdr   pdrtree.Config
	}{
		{"none", pdrtree.Config{}},
		{"signature-64", pdrtree.Config{Compression: pdrtree.SignatureCompression, Buckets: 64}},
		{"sig-learned-64", pdrtree.Config{Compression: pdrtree.SignatureCompression, Buckets: 64, SignatureMap: learned}},
		{"discretized-8", pdrtree.Config{Compression: pdrtree.DiscretizedCompression, Bits: 8}},
	} {
		a := access{label: cfg.label, opts: core.Options{Kind: core.PDRTree, PDR: cfg.pdr}}
		ss, err := selectivitySweep(d, a, p)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, ss[0])
	}
	return fig, nil
}

// AblationBufferPool varies the per-query buffer pool size on CRM1 at 1%
// selectivity, for both index structures.
func AblationBufferPool(p Params) (*Figure, error) {
	p = p.withDefaults()
	const sel = 0.01
	d := dataset.CRM1Like(p.Seed, p.scaled(dataset.CRMSize))
	w := newWorkload(d, p.Queries, p.Seed)
	fig := &Figure{ID: "ablation-pool", Title: "Buffer pool size (CRM1, sel 1%)", XLabel: "pool frames"}
	poolSizes := []int{10, 50, 100, 500, 1000}
	for _, a := range []access{
		{label: "Inv-Thres", opts: core.Options{Kind: core.InvertedIndex, InvStrategy: p.strategyOr(invidx.HighestProbFirst)}},
		{label: "PDR-Thres", opts: core.Options{Kind: core.PDRTree}},
	} {
		rel, err := buildRelation(d, a.opts, p)
		if err != nil {
			return nil, err
		}
		series := Series{Label: a.label}
		for _, frames := range poolSizes {
			if err := rel.Pool().Resize(frames); err != nil {
				return nil, err
			}
			m, err := measure(rel, w, sel, false, p.Workers)
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, m.point(float64(frames)))
		}
		if err := rel.Pool().Resize(pager.DefaultPoolFrames); err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// AblationDSTQ measures the PDR-tree's similarity-query pruning (DSTQ,
// Definition 5) against the scan baseline on CRM1, across distance
// thresholds, for both prunable metrics. KL cannot prune (not a metric) and
// costs a full traversal by construction, so it is omitted.
func AblationDSTQ(p Params) (*Figure, error) {
	p = p.withDefaults()
	d := dataset.CRM1Like(p.Seed, p.scaled(dataset.CRMSize))
	fig := &Figure{ID: "ablation-dstq", Title: "DSTQ pruning (CRM1)", XLabel: "distance thr"}
	pdr, err := buildRelation(d, core.Options{Kind: core.PDRTree}, p)
	if err != nil {
		return nil, err
	}
	scan, err := buildRelation(d, core.Options{Kind: core.ScanOnly}, p)
	if err != nil {
		return nil, err
	}
	w := newWorkload(d, p.Queries, p.Seed)
	thresholds := []float64{0.1, 0.25, 0.5, 1.0}
	for _, cfg := range []struct {
		label string
		rel   *core.Relation
		div   uda.Divergence
	}{
		{"PDR-L1", pdr, uda.L1},
		{"PDR-L2", pdr, uda.L2},
		{"Scan-L1", scan, uda.L1},
	} {
		series := Series{Label: cfg.label}
		for _, td := range thresholds {
			rel, div := cfg.rel, cfg.div
			m, err := measureEach(rel, w, p.Workers, func(rd *core.Reader, qi int) error {
				_, err := rd.DSTQ(w.queries[qi], td, div)
				return err
			})
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, m.point(td))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// AblationJoin measures the probabilistic equality threshold join (PETJ,
// Definition 6) as an index nested-loop join: the left relation is scanned
// and each tuple queried against the right side's access method. The paper
// defines the join operators but does not evaluate them; this quantifies
// how much the right side's index matters.
func AblationJoin(p Params) (*Figure, error) {
	p = p.withDefaults()
	// Joins are quadratic-ish; half the synthetic size keeps the run short
	// while the dense CRM2 tuples make the inner relation larger than the
	// 100-frame pool — the regime where the choice of inner access method
	// matters at all (an inner side that fits the pool is read once
	// regardless of the method).
	n := p.scaled(dataset.SyntheticSize / 2)
	left := dataset.CRM2Like(p.Seed, n)
	right := dataset.CRM2Like(p.Seed+1, n)
	lrel, err := buildRelation(left, core.Options{Kind: core.ScanOnly}, p)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "ablation-join", Title: fmt.Sprintf("PETJ cost (CRM2 %d×%d)", n, n), XLabel: "join tau"}
	taus := []float64{0.08, 0.1, 0.15, 0.2}
	for _, a := range []access{
		{label: "right-scan", opts: core.Options{Kind: core.ScanOnly}},
		{label: "right-inverted", opts: core.Options{Kind: core.InvertedIndex, InvStrategy: p.strategyOr(invidx.NRA)}},
		{label: "right-pdr", opts: core.Options{Kind: core.PDRTree}},
	} {
		rrel, err := buildRelation(right, a.opts, p)
		if err != nil {
			return nil, err
		}
		series := Series{Label: a.label}
		for _, tau := range taus {
			if err := lrel.Pool().Clear(); err != nil {
				return nil, err
			}
			if err := rrel.Pool().Clear(); err != nil {
				return nil, err
			}
			lrel.Pool().ResetStats()
			rrel.Pool().ResetStats()
			if _, err := core.PETJ(lrel, rrel, tau); err != nil {
				return nil, err
			}
			total := lrel.Pool().Stats().IOs() + rrel.Pool().Stats().IOs()
			series.Points = append(series.Points, Point{X: tau, IOs: float64(total)})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Ablations lists the ablation experiments.
var Ablations = []Runner{
	{ID: "ablation-inv", Title: "Inverted-index search strategies", Run: AblationInvStrategies},
	{ID: "ablation-insert", Title: "PDR-tree insert criterion", Run: AblationInsertCriterion},
	{ID: "ablation-compression", Title: "PDR-tree MBR compression", Run: AblationCompression},
	{ID: "ablation-pool", Title: "Buffer pool size", Run: AblationBufferPool},
	{ID: "ablation-dstq", Title: "DSTQ pruning", Run: AblationDSTQ},
	{ID: "ablation-join", Title: "PETJ join cost", Run: AblationJoin},
}

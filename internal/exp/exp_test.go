package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/invidx"
	"ucat/internal/uda"
)

// small returns parameters that keep test runtime low while preserving the
// experiment structure.
func small() Params {
	return Params{Scale: 0.02, Queries: 4, Seed: 7}
}

func TestWorkloadCalibration(t *testing.T) {
	d := dataset.Uniform(3, 2000)
	w := newWorkload(d, 5, 3)
	if len(w.queries) != 5 || len(w.ranked) != 5 {
		t.Fatalf("workload has %d queries", len(w.queries))
	}
	for qi, q := range w.queries {
		for _, sel := range Selectivities {
			tau := w.tau(qi, sel)
			want := w.targetCount(sel)
			got := 0
			for _, u := range d.Tuples {
				if uda.EqualityProb(q, u) > tau {
					got++
				}
			}
			// Ties can shrink the answer set, never grow it.
			if got > want {
				t.Errorf("query %d sel %g: %d answers, want at most %d", qi, sel, got, want)
			}
			if got == 0 && tau > 0 {
				t.Errorf("query %d sel %g: calibrated threshold %g admits nothing", qi, sel, tau)
			}
		}
	}
}

func TestTargetCountBounds(t *testing.T) {
	d := dataset.Uniform(3, 500)
	w := newWorkload(d, 1, 3)
	if got := w.targetCount(0); got != 1 {
		t.Errorf("targetCount(0) = %d, want 1 (floor)", got)
	}
	if got := w.targetCount(1); got != 500 {
		t.Errorf("targetCount(1) = %d, want 500", got)
	}
	if got := w.targetCount(0.01); got != 5 {
		t.Errorf("targetCount(0.01) = %d, want 5", got)
	}
}

func TestMeasureCountsIO(t *testing.T) {
	d := dataset.Uniform(5, 2000)
	rel, err := buildRelation(d, core.Options{Kind: core.PDRTree}, Params{BuildFrames: 1024}.withDefaults())
	if err != nil {
		t.Fatalf("buildRelation: %v", err)
	}
	if rel.Pool().Frames() != 100 {
		t.Errorf("query pool has %d frames, want 100", rel.Pool().Frames())
	}
	w := newWorkload(d, 3, 5)
	m, err := measure(rel, w, 0.01, false, 1)
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	if m.IOs <= 0 {
		t.Errorf("measured %g I/Os, want positive (cold pool per query)", m.IOs)
	}
	if m.Ns <= 0 {
		t.Errorf("measured %g ns/q, want positive", m.Ns)
	}
	// Top-k must also run.
	if _, err := measure(rel, w, 0.01, true, 1); err != nil {
		t.Fatalf("measure topk: %v", err)
	}
	// The parallel path must produce the same I/O count: each query is
	// hermetic against its own fresh pool view.
	m4, err := measure(rel, w, 0.01, false, 4)
	if err != nil {
		t.Fatalf("measure workers=4: %v", err)
	}
	if m4.IOs != m.IOs { //ucatlint:ignore floatcmp exact determinism is the contract under test
		t.Errorf("workers=4 measured %g I/Os, sequential %g; must be identical", m4.IOs, m.IOs)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Scale != 1 || p.Queries != 20 || p.Seed != 1 || p.BuildFrames != 4096 {
		t.Errorf("defaults = %+v", p)
	}
	if p.strategyOr(0).String() != "inv-index-search" {
		t.Errorf("strategyOr default = %v", p.strategyOr(0))
	}
	s := invidx.NRA
	p.InvStrategy = &s
	if p.strategyOr(0) != invidx.NRA {
		t.Errorf("strategyOr override = %v", p.strategyOr(0))
	}
	if got := p.scaled(10000); got != 10000 {
		t.Errorf("scaled(10000) = %d", got)
	}
	tiny := Params{Scale: 0.001}.withDefaults()
	if got := tiny.scaled(10000); got != 100 {
		t.Errorf("scaled floor = %d, want 100", got)
	}
}

func TestAllFiguresRunAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure suite in -short mode")
	}
	for _, r := range Figures {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			fig, err := r.Run(small())
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(fig.Series) == 0 {
				t.Fatalf("%s produced no series", r.ID)
			}
			npoints := len(fig.Series[0].Points)
			if npoints == 0 {
				t.Fatalf("%s produced no points", r.ID)
			}
			for _, s := range fig.Series {
				if len(s.Points) != npoints {
					t.Errorf("%s series %q has %d points, others %d", r.ID, s.Label, len(s.Points), npoints)
				}
				for _, pt := range s.Points {
					if pt.IOs < 0 || math.IsNaN(pt.IOs) {
						t.Errorf("%s series %q has invalid point %+v", r.ID, s.Label, pt)
					}
				}
			}
			var buf bytes.Buffer
			if err := fig.WriteTable(&buf); err != nil {
				t.Fatalf("WriteTable: %v", err)
			}
			if !strings.Contains(buf.String(), fig.ID) {
				t.Errorf("table output missing figure id:\n%s", buf.String())
			}
		})
	}
}

func TestWriteCSV(t *testing.T) {
	fig := &Figure{
		ID: "t", Title: "test", XLabel: "x",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, IOs: 10}, {X: 2, IOs: 20}}},
			{Label: "b", Points: []Point{{X: 1, IOs: 30}, {X: 2, IOs: 40}}},
		},
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	want := "x,a,b\n1,10,30\n2,20,40\n"
	if buf.String() != want {
		t.Errorf("WriteCSV = %q, want %q", buf.String(), want)
	}
	empty := &Figure{ID: "e", XLabel: "x"}
	buf.Reset()
	if err := empty.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV empty: %v", err)
	}
	if buf.String() != "x\n" {
		t.Errorf("empty CSV = %q", buf.String())
	}
}

func TestAblationsRunAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite in -short mode")
	}
	for _, r := range Ablations {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			fig, err := r.Run(small())
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(fig.Series) == 0 || len(fig.Series[0].Points) == 0 {
				t.Fatalf("%s produced no data", r.ID)
			}
		})
	}
}

func TestFigureExpectedShapesAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks in -short mode")
	}
	// Fig5's datasets are the paper's full 10k tuples — cheap to build, and
	// the index-size contrast that drives the figure only shows at scale.
	p := Params{Scale: 1, Queries: 6, Seed: 11}

	// Figure 5's headline: PDR beats the inverted index on Uniform data.
	fig, err := Fig5(p)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	bySeries := map[string][]Point{}
	for _, s := range fig.Series {
		bySeries[s.Label] = s.Points
	}
	inv, pdr := bySeries["Uniform-Inv-Thres"], bySeries["Uniform-PDR-Thres"]
	if inv == nil || pdr == nil {
		t.Fatalf("missing series in Fig5: %v", bySeries)
	}
	var invTotal, pdrTotal float64
	for i := range inv {
		invTotal += inv[i].IOs
		pdrTotal += pdr[i].IOs
	}
	if pdrTotal >= invTotal {
		t.Errorf("Fig5 Uniform: PDR total %g ≥ Inverted total %g; paper expects PDR to win", pdrTotal, invTotal)
	}
}

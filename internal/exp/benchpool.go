package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"ucat/internal/core"
	"ucat/internal/dataset"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

// benchpool.go measures the serving layer's shared buffer pool: a CRM1-like
// PETQ workload with zipf-ish query repetition (half the traffic concentrated
// on a few hot distributions, the shape micro-batched serving sees) runs
// through ONE shared striped pool under a worker fan-out, sweeping eviction
// policy × stripe count × total frames. A per-worker-private-pools baseline
// at equal TOTAL memory — the pre-refactor serving configuration — anchors
// the comparison. Every variant's answers are cross-checked bit-identically
// against direct sequential execution; on a single-CPU host the number that
// matters is the hit rate (each hot page resident once instead of once per
// worker), not wall-clock speedup.

// PoolVariant is one (policy, stripes, frames) measurement of the shared
// pool under the concurrent workload.
type PoolVariant struct {
	Policy    string  `json:"policy"`
	Frames    int     `json:"frames"` // TOTAL frames across all workers
	Stripes   int     `json:"stripes"`
	Workers   int     `json:"workers"`
	WallNs    int64   `json:"wall_ns"`
	Reads     uint64  `json:"reads"`
	Hits      uint64  `json:"hits"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
	// Mismatches counts requests whose answer differed from direct
	// execution. Must be 0: the pool layer cannot change answers.
	Mismatches int `json:"mismatches"`
}

// PoolBaseline is the pre-refactor configuration at equal total memory:
// each worker owns a private CLOCK pool of Frames/Workers frames.
type PoolBaseline struct {
	Frames          int     `json:"frames"` // total across workers
	FramesPerWorker int     `json:"frames_per_worker"`
	Workers         int     `json:"workers"`
	WallNs          int64   `json:"wall_ns"`
	Reads           uint64  `json:"reads"`
	Hits            uint64  `json:"hits"`
	HitRate         float64 `json:"hit_rate"`
	Mismatches      int     `json:"mismatches"`
}

// PoolBenchReport is the BENCH_pool.json payload.
type PoolBenchReport struct {
	Generated  string         `json:"generated"`
	Scale      float64        `json:"scale"`
	Queries    int            `json:"queries"`  // distinct query distributions
	Requests   int            `json:"requests"` // total requests in the sequence
	HotQueries int            `json:"hot_queries"`
	Seed       int64          `json:"seed"`
	Workers    int            `json:"workers"`
	NumCPU     int            `json:"num_cpu"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Variants   []PoolVariant  `json:"variants"`
	Baselines  []PoolBaseline `json:"baselines"`
	// AllAnswersIdentical is the determinism cross-check over every variant
	// and baseline.
	AllAnswersIdentical bool `json:"all_answers_identical"`
}

// WriteJSON writes the report as indented JSON.
func (r *PoolBenchReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// poolSweepFrames and poolSweepStripes define the sweep grid. Frames are
// deliberately undersized relative to the relation so replacement runs
// constantly; 256 total at 4 workers is less memory than the old per-worker
// default (4 × 100).
var (
	poolSweepFrames  = []int{16, 64, 256}
	poolSweepStripes = []int{1, 2, 4}
)

// poolRequestsPerQuery sizes the request sequence relative to the distinct
// query count.
const poolRequestsPerQuery = 4

// benchPoolRun executes the request sequence under the worker fan-out, each
// worker fetching through the view newView hands it, and compares every
// answer against want. It returns wall time and the mismatch count.
func benchPoolRun(rel *core.Relation, queries []workloadQuery, reqs []int,
	want [][]core.Match, workers int, newView func(worker int) pager.View) (int64, int, error) {
	var wg sync.WaitGroup
	mismatches := make([]int, workers)
	errs := make([]error, workers)
	t0 := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rd := rel.Reader(newView(g))
			for i := g; i < len(reqs); i += workers {
				qi := reqs[i]
				got, err := rd.PETQ(queries[qi].q, queries[qi].tau)
				if err != nil {
					errs[g] = fmt.Errorf("request %d (query %d): %w", i, qi, err)
					return
				}
				if !matchesEqual(got, want[qi]) {
					mismatches[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(t0).Nanoseconds()
	var bad int
	for g := 0; g < workers; g++ {
		if errs[g] != nil {
			return 0, 0, errs[g]
		}
		bad += mismatches[g]
	}
	return wall, bad, nil
}

// workloadQuery pairs a query distribution with its calibrated threshold.
type workloadQuery struct {
	q   uda.UDA
	tau float64
}

// matchesEqual reports whether two answer slices are bit-identical.
func matchesEqual(a, b []core.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//ucatlint:ignore floatcmp bit-identical answers are the property under test
		if a[i].TID != b[i].TID || a[i].Prob != b[i].Prob {
			return false
		}
	}
	return true
}

// BenchPool builds the CRM1 PDR-tree relation, derives a zipf-ish request
// sequence over the calibrated PETQ workload, and sweeps the shared pool's
// policy × stripes × frames grid against the per-worker-private-pool
// baseline at equal total memory. See the file comment for what each number
// means.
func BenchPool(p Params) (*PoolBenchReport, error) {
	p = p.withDefaults()
	if p.Workers <= 1 {
		p.Workers = 4 // contention is the point of this benchmark
	}
	d := dataset.CRM1Like(p.Seed, p.scaled(dataset.CRMSize))
	w := newWorkload(d, p.Queries, p.Seed)
	rel, err := buildRelation(d, core.Options{Kind: core.PDRTree}, p)
	if err != nil {
		return nil, fmt.Errorf("benchpool: %w", err)
	}
	if err := rel.Pool().FlushAll(); err != nil {
		return nil, fmt.Errorf("benchpool: flush: %w", err)
	}

	// Calibrate each query at the 1% selectivity point and take direct
	// answers through the relation's own pool — the reference every
	// concurrent run must reproduce exactly.
	const sel = 0.01
	queries := make([]workloadQuery, p.Queries)
	want := make([][]core.Match, p.Queries)
	for qi := 0; qi < p.Queries; qi++ {
		queries[qi] = workloadQuery{q: w.queries[qi], tau: w.tau(qi, sel)}
		m, err := rel.PETQ(w.queries[qi], queries[qi].tau)
		if err != nil {
			return nil, fmt.Errorf("benchpool: direct query %d: %w", qi, err)
		}
		want[qi] = m
	}

	// Zipf-ish request sequence: half the traffic lands on a few hot
	// queries, the rest is uniform. Deterministic in the seed.
	hot := 4
	if hot > p.Queries {
		hot = p.Queries
	}
	rng := rand.New(rand.NewSource(p.Seed + 1))
	reqs := make([]int, p.Queries*poolRequestsPerQuery)
	for i := range reqs {
		if rng.Intn(2) == 0 {
			reqs[i] = rng.Intn(hot)
		} else {
			reqs[i] = rng.Intn(p.Queries)
		}
	}

	report := &PoolBenchReport{
		Generated:           time.Now().UTC().Format(time.RFC3339),
		Scale:               p.Scale,
		Queries:             p.Queries,
		Requests:            len(reqs),
		HotQueries:          hot,
		Seed:                p.Seed,
		Workers:             p.Workers,
		NumCPU:              runtime.NumCPU(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		AllAnswersIdentical: true,
	}
	store := rel.Pool().Store()

	for _, frames := range poolSweepFrames {
		// Baseline: the pre-refactor regime, one private CLOCK pool per
		// worker at frames/Workers each — same total memory as the shared
		// variants below.
		per := frames / p.Workers
		if per < 8 {
			per = 8
		}
		views := make([]*pager.Pool, p.Workers)
		newPrivate := func(g int) pager.View {
			views[g] = pager.NewPool(store, per)
			return views[g]
		}
		wall, bad, err := benchPoolRun(rel, queries, reqs, want, p.Workers, newPrivate)
		if err != nil {
			return nil, fmt.Errorf("benchpool: baseline frames=%d: %w", frames, err)
		}
		base := PoolBaseline{
			Frames:          per * p.Workers,
			FramesPerWorker: per,
			Workers:         p.Workers,
			WallNs:          wall,
			Mismatches:      bad,
		}
		for _, v := range views {
			st := v.Stats()
			base.Reads += st.Reads
			base.Hits += st.Hits
		}
		if t := base.Reads + base.Hits; t > 0 {
			base.HitRate = float64(base.Hits) / float64(t)
		}
		report.Baselines = append(report.Baselines, base)
		if bad > 0 {
			report.AllAnswersIdentical = false
		}

		for _, stripes := range poolSweepStripes {
			for _, pol := range pager.Policies {
				pool := pager.NewSharedPool(store, frames, stripes, pol)
				if pol == pager.GDSF {
					pool.SetCostFunc(rel.PageCostFunc())
				}
				newShared := func(g int) pager.View { return pool.Session() }
				wall, bad, err := benchPoolRun(rel, queries, reqs, want, p.Workers, newShared)
				if err != nil {
					return nil, fmt.Errorf("benchpool: %s/%d/%d: %w", pol, stripes, frames, err)
				}
				st := pool.Stats()
				v := PoolVariant{
					Policy:     pol.String(),
					Frames:     frames,
					Stripes:    stripes,
					Workers:    p.Workers,
					WallNs:     wall,
					Reads:      st.Reads,
					Hits:       st.Hits,
					Evictions:  pool.Evictions(),
					HitRate:    st.HitRate(),
					Mismatches: bad,
				}
				report.Variants = append(report.Variants, v)
				if bad > 0 {
					report.AllAnswersIdentical = false
				}
			}
		}
	}
	return report, nil
}

package tuplestore

import (
	"errors"
	"math/rand"
	"testing"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

func newTestStore(t *testing.T, frames int) *Store {
	t.Helper()
	return New(pager.NewPool(pager.NewStore(), frames))
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newTestStore(t, 20)
	u := uda.MustNew(uda.Pair{Item: 1, Prob: 0.25}, uda.Pair{Item: 9, Prob: 0.75})
	if err := s.Put(42, u); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(42)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Len() != 2 || got.Prob(1) < 0.25 || got.Prob(9) < 0.75 {
		t.Errorf("Get = %v", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if !s.Has(42) || s.Has(43) {
		t.Errorf("Has wrong: Has(42)=%v Has(43)=%v", s.Has(42), s.Has(43))
	}
}

func TestGetUnknown(t *testing.T) {
	s := newTestStore(t, 20)
	if _, err := s.Get(7); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get unknown err = %v, want ErrNotFound", err)
	}
}

func TestPutDuplicate(t *testing.T) {
	s := newTestStore(t, 20)
	u := uda.Certain(1)
	if err := s.Put(1, u); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(1, u); err == nil {
		t.Errorf("duplicate Put succeeded")
	}
}

func TestDeleteTombstones(t *testing.T) {
	s := newTestStore(t, 20)
	if err := s.Put(1, uda.Certain(5)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get deleted err = %v, want ErrNotFound", err)
	}
	if err := s.Delete(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Delete err = %v, want ErrNotFound", err)
	}
	if err := s.Put(1, uda.Certain(5)); err == nil {
		t.Errorf("Put of deleted id succeeded, ids must not be reused")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestManyTuplesAcrossPages(t *testing.T) {
	s := newTestStore(t, 20)
	r := rand.New(rand.NewSource(5))
	const n = 5000
	want := make([]uda.UDA, n)
	for i := 0; i < n; i++ {
		want[i] = uda.Random(r, 100, 10)
		if err := s.Put(uint32(i), want[i]); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if s.Pages() < 2 {
		t.Fatalf("expected multiple data pages, got %d", s.Pages())
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		got, err := s.Get(uint32(i))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if got.Len() != want[i].Len() {
			t.Errorf("Get(%d) has %d pairs, want %d", i, got.Len(), want[i].Len())
		}
	}
}

func TestScanVisitsAllLiveTuples(t *testing.T) {
	s := newTestStore(t, 20)
	r := rand.New(rand.NewSource(9))
	const n = 2000
	for i := 0; i < n; i++ {
		if err := s.Put(uint32(i), uda.Random(r, 50, 5)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Delete every third tuple.
	deleted := 0
	for i := 0; i < n; i += 3 {
		if err := s.Delete(uint32(i)); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		deleted++
	}
	seen := map[uint32]bool{}
	if err := s.Scan(func(tid uint32, u uda.UDA) bool {
		if seen[tid] {
			t.Fatalf("Scan visited tuple %d twice", tid)
		}
		if u.IsEmpty() {
			t.Fatalf("Scan produced empty UDA for %d", tid)
		}
		seen[tid] = true
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(seen) != n-deleted {
		t.Errorf("Scan visited %d tuples, want %d", len(seen), n-deleted)
	}
	for tid := range seen {
		if tid%3 == 0 {
			t.Errorf("Scan visited deleted tuple %d", tid)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := newTestStore(t, 20)
	for i := 0; i < 100; i++ {
		if err := s.Put(uint32(i), uda.Certain(uint32(i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	n := 0
	if err := s.Scan(func(uint32, uda.UDA) bool { n++; return n < 5 }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 5 {
		t.Errorf("early-stopped Scan visited %d, want 5", n)
	}
}

func TestGetCostsOnePageAccess(t *testing.T) {
	s := newTestStore(t, 4)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if err := s.Put(uint32(i), uda.Random(r, 50, 5)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	pool := s.Pool()
	if err := pool.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	pool.ResetStats()
	if _, err := s.Get(500); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got := pool.Stats().Reads; got != 1 {
		t.Errorf("cold Get cost %d reads, want 1", got)
	}
	// Warm repeat costs nothing.
	pool.ResetStats()
	if _, err := s.Get(500); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got := pool.Stats(); got.Reads != 0 || got.Hits != 1 {
		t.Errorf("warm Get stats = %+v, want pure hit", got)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	s := newTestStore(t, 4)
	// Build a UDA with more pairs than fit in a page (12 bytes per pair).
	pairs := make([]uda.Pair, 1100)
	for i := range pairs {
		pairs[i] = uda.Pair{Item: uint32(i), Prob: 1.0 / 1200}
	}
	big := uda.MustNew(pairs...)
	if err := s.Put(1, big); err == nil {
		t.Errorf("oversize Put succeeded, want error")
	}
}

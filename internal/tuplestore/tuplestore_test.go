package tuplestore

import (
	"errors"
	"math/rand"
	"testing"

	"ucat/internal/dcache"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

func newTestStore(t *testing.T, frames int) *Store {
	t.Helper()
	return New(pager.NewPool(pager.NewStore(), frames))
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newTestStore(t, 20)
	u := uda.MustNew(uda.Pair{Item: 1, Prob: 0.25}, uda.Pair{Item: 9, Prob: 0.75})
	if err := s.Put(42, u); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(42)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Len() != 2 || got.Prob(1) < 0.25 || got.Prob(9) < 0.75 {
		t.Errorf("Get = %v", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if !s.Has(42) || s.Has(43) {
		t.Errorf("Has wrong: Has(42)=%v Has(43)=%v", s.Has(42), s.Has(43))
	}
}

func TestGetUnknown(t *testing.T) {
	s := newTestStore(t, 20)
	if _, err := s.Get(7); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get unknown err = %v, want ErrNotFound", err)
	}
}

func TestPutDuplicate(t *testing.T) {
	s := newTestStore(t, 20)
	u := uda.Certain(1)
	if err := s.Put(1, u); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(1, u); err == nil {
		t.Errorf("duplicate Put succeeded")
	}
}

func TestDeleteTombstones(t *testing.T) {
	s := newTestStore(t, 20)
	if err := s.Put(1, uda.Certain(5)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Delete(1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get deleted err = %v, want ErrNotFound", err)
	}
	if err := s.Delete(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Delete err = %v, want ErrNotFound", err)
	}
	if err := s.Put(1, uda.Certain(5)); err == nil {
		t.Errorf("Put of deleted id succeeded, ids must not be reused")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestManyTuplesAcrossPages(t *testing.T) {
	s := newTestStore(t, 20)
	r := rand.New(rand.NewSource(5))
	const n = 5000
	want := make([]uda.UDA, n)
	for i := 0; i < n; i++ {
		want[i] = uda.Random(r, 100, 10)
		if err := s.Put(uint32(i), want[i]); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if s.Pages() < 2 {
		t.Fatalf("expected multiple data pages, got %d", s.Pages())
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		got, err := s.Get(uint32(i))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if got.Len() != want[i].Len() {
			t.Errorf("Get(%d) has %d pairs, want %d", i, got.Len(), want[i].Len())
		}
	}
}

func TestScanVisitsAllLiveTuples(t *testing.T) {
	s := newTestStore(t, 20)
	r := rand.New(rand.NewSource(9))
	const n = 2000
	for i := 0; i < n; i++ {
		if err := s.Put(uint32(i), uda.Random(r, 50, 5)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Delete every third tuple.
	deleted := 0
	for i := 0; i < n; i += 3 {
		if err := s.Delete(uint32(i)); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		deleted++
	}
	seen := map[uint32]bool{}
	if err := s.Scan(func(tid uint32, u uda.UDA) bool {
		if seen[tid] {
			t.Fatalf("Scan visited tuple %d twice", tid)
		}
		if u.IsEmpty() {
			t.Fatalf("Scan produced empty UDA for %d", tid)
		}
		seen[tid] = true
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(seen) != n-deleted {
		t.Errorf("Scan visited %d tuples, want %d", len(seen), n-deleted)
	}
	for tid := range seen {
		if tid%3 == 0 {
			t.Errorf("Scan visited deleted tuple %d", tid)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := newTestStore(t, 20)
	for i := 0; i < 100; i++ {
		if err := s.Put(uint32(i), uda.Certain(uint32(i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	n := 0
	if err := s.Scan(func(uint32, uda.UDA) bool { n++; return n < 5 }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 5 {
		t.Errorf("early-stopped Scan visited %d, want 5", n)
	}
}

func TestGetCostsOnePageAccess(t *testing.T) {
	s := newTestStore(t, 4)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if err := s.Put(uint32(i), uda.Random(r, 50, 5)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	pool := s.Pool()
	if err := pool.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	pool.ResetStats()
	if _, err := s.Get(500); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got := pool.Stats().Reads; got != 1 {
		t.Errorf("cold Get cost %d reads, want 1", got)
	}
	// Warm repeat costs nothing.
	pool.ResetStats()
	if _, err := s.Get(500); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got := pool.Stats(); got.Reads != 0 || got.Hits != 1 {
		t.Errorf("warm Get stats = %+v, want pure hit", got)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	s := newTestStore(t, 4)
	// Build a UDA with more pairs than fit in a page (12 bytes per pair).
	pairs := make([]uda.Pair, 1100)
	for i := range pairs {
		pairs[i] = uda.Pair{Item: uint32(i), Prob: 1.0 / 1200}
	}
	big := uda.MustNew(pairs...)
	if err := s.Put(1, big); err == nil {
		t.Errorf("oversize Put succeeded, want error")
	}
}

func TestReplace(t *testing.T) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			s := newTestStore(t, 20)
			if cached {
				s.SetCache(dcache.New(0))
			}
			for tid := uint32(1); tid <= 5; tid++ {
				if err := s.Put(tid, uda.Certain(tid)); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
			u2 := uda.MustNew(uda.Pair{Item: 100, Prob: 0.5}, uda.Pair{Item: 200, Prob: 0.5})
			if err := s.Replace(3, u2); err != nil {
				t.Fatalf("Replace: %v", err)
			}
			got, err := s.Get(3)
			if err != nil {
				t.Fatalf("Get after Replace: %v", err)
			}
			if got.Len() != 2 || got.Prob(100) != 0.5 {
				t.Errorf("Get after Replace = %v", got)
			}
			if s.Len() != 5 {
				t.Errorf("Len = %d, want 5 (Replace must not change it)", s.Len())
			}
			// The orphaned old record must be invisible to Scan: tid 3 shows
			// up exactly once, with the new distribution.
			seen := map[uint32]int{}
			err = s.Scan(func(tid uint32, u uda.UDA) bool {
				seen[tid]++
				if tid == 3 && u.Prob(100) != 0.5 {
					t.Errorf("Scan yielded stale record for tid 3: %v", u)
				}
				return true
			})
			if err != nil {
				t.Fatalf("Scan: %v", err)
			}
			for tid := uint32(1); tid <= 5; tid++ {
				if seen[tid] != 1 {
					t.Errorf("Scan saw tid %d %d times, want 1", tid, seen[tid])
				}
			}
		})
	}
}

func TestReplaceMissing(t *testing.T) {
	s := newTestStore(t, 20)
	if err := s.Replace(9, uda.Certain(1)); !errors.Is(err, ErrNotFound) {
		t.Errorf("Replace of unknown tid: %v, want ErrNotFound", err)
	}
	if err := s.Put(9, uda.Certain(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(9); err != nil {
		t.Fatal(err)
	}
	if err := s.Replace(9, uda.Certain(2)); !errors.Is(err, ErrNotFound) {
		t.Errorf("Replace of tombstoned tid: %v, want ErrNotFound", err)
	}
}

func TestReplaceThenCompact(t *testing.T) {
	s := newTestStore(t, 40)
	for tid := uint32(1); tid <= 200; tid++ {
		if err := s.Put(tid, uda.Certain(tid)); err != nil {
			t.Fatal(err)
		}
	}
	for tid := uint32(1); tid <= 200; tid += 2 {
		if err := s.Replace(tid, uda.Certain(tid+1000)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for tid := uint32(1); tid <= 200; tid++ {
		got, err := s.Get(tid)
		if err != nil {
			t.Fatalf("Get(%d) after compact: %v", tid, err)
		}
		want := tid
		if tid%2 == 1 {
			want = tid + 1000
		}
		if got.Prob(want) != 1 {
			t.Errorf("tid %d: lost replacement after compact", tid)
		}
	}
}

package tuplestore

import (
	"encoding/binary"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

// Compact rewrites the heap, dropping tombstoned records and repacking the
// survivors densely onto fresh pages; the old pages are freed. Tuple ids are
// preserved (they move to new locations, like a VACUUM FULL). It returns the
// number of pages reclaimed.
func (s *Store) Compact() (reclaimed int, err error) {
	oldPages := s.pages
	type rec struct {
		tid uint32
		u   uda.UDA
	}
	// Collect live records in page order (one sequential pass).
	var live []rec
	err = s.Scan(func(tid uint32, u uda.UDA) bool {
		live = append(live, rec{tid: tid, u: u})
		return true
	})
	if err != nil {
		return 0, err
	}

	// Reset the in-memory layout and re-append everything.
	s.loc = make(map[uint32]location, len(live))
	s.pages = nil
	s.used = 0
	for _, r := range live {
		if err := s.appendRecord(r.tid, r.u); err != nil {
			return 0, err
		}
	}
	// Tombstones are gone from the pages; keep the dead set so ids are
	// still never reused.

	for _, pid := range oldPages {
		if err := s.pool.FreePage(pid); err != nil {
			return 0, err
		}
	}
	return len(oldPages) - len(s.pages), nil
}

// appendRecord is Put without the duplicate/tombstone checks, for rebuild
// paths that re-insert known-live records.
func (s *Store) appendRecord(tid uint32, u uda.UDA) error {
	recSize := 4 + uda.EncodedSize(u)
	if len(s.pages) == 0 || s.used+recSize > pager.PageSize {
		pg, err := s.pool.NewPage()
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint16(pg.Data, pageHeader)
		s.pages = append(s.pages, pg.ID)
		s.used = pageHeader
		pg.Unpin(true)
	}
	pid := s.pages[len(s.pages)-1]
	pg, err := s.pool.Fetch(pid)
	if err != nil {
		return err
	}
	off := s.used
	binary.LittleEndian.PutUint32(pg.Data[off:], tid)
	enc, err := uda.AppendEncode(pg.Data[:off+4], u)
	if err != nil {
		pg.Unpin(false)
		return err
	}
	s.used = len(enc)
	binary.LittleEndian.PutUint16(pg.Data, uint16(s.used))
	pg.Unpin(true)
	s.loc[tid] = location{pid: pid, off: uint16(off)}
	return nil
}

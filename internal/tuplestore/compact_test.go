package tuplestore

import (
	"errors"
	"math/rand"
	"testing"

	"ucat/internal/uda"
)

func TestCompactReclaimsPages(t *testing.T) {
	s := newTestStore(t, 64)
	r := rand.New(rand.NewSource(3))
	want := make(map[uint32]uda.UDA)
	for i := 0; i < 4000; i++ {
		u := uda.Random(r, 40, 8)
		want[uint32(i)] = u
		if err := s.Put(uint32(i), u); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Delete 75% of the tuples.
	for tid := uint32(0); tid < 4000; tid++ {
		if tid%4 != 0 {
			if err := s.Delete(tid); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			delete(want, tid)
		}
	}
	before := s.Pages()
	reclaimed, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if reclaimed <= 0 || s.Pages() >= before {
		t.Fatalf("Compact reclaimed %d pages (%d → %d)", reclaimed, before, s.Pages())
	}
	if s.Len() != len(want) {
		t.Fatalf("Len after compact = %d, want %d", s.Len(), len(want))
	}

	// Every live tuple is readable at its new location.
	for tid, u := range want {
		got, err := s.Get(tid)
		if err != nil {
			t.Fatalf("Get(%d) after compact: %v", tid, err)
		}
		if !got.Equal(u) {
			t.Fatalf("Get(%d) returned wrong tuple after compact", tid)
		}
	}
	// Scans see exactly the live set, once each.
	seen := map[uint32]bool{}
	if err := s.Scan(func(tid uint32, u uda.UDA) bool {
		if seen[tid] {
			t.Fatalf("tuple %d scanned twice after compact", tid)
		}
		seen[tid] = true
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(seen) != len(want) {
		t.Fatalf("Scan saw %d tuples, want %d", len(seen), len(want))
	}

	// Deleted ids stay unusable; new inserts still work.
	if err := s.Put(1, uda.Certain(1)); err == nil {
		t.Errorf("tombstoned id reusable after compact")
	}
	if err := s.Put(99999, uda.Certain(2)); err != nil {
		t.Errorf("Put after compact: %v", err)
	}
	// The freed pages are genuinely reusable by the store.
	if _, err := s.Get(99999); err != nil {
		t.Errorf("Get of post-compact insert: %v", err)
	}
}

func TestCompactEmptyAndFull(t *testing.T) {
	s := newTestStore(t, 16)
	if n, err := s.Compact(); err != nil || n != 0 {
		t.Errorf("Compact of empty store = (%d, %v)", n, err)
	}
	// No deletions: compaction keeps everything, reclaiming nothing or a
	// page of slack at most.
	for i := 0; i < 500; i++ {
		if err := s.Put(uint32(i), uda.Certain(uint32(i%9))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	before := s.Pages()
	n, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n < 0 || s.Pages() > before {
		t.Errorf("Compact grew the heap: %d → %d", before, s.Pages())
	}
	if s.Len() != 500 {
		t.Errorf("Len = %d", s.Len())
	}
	if _, err := s.Get(250); errors.Is(err, ErrNotFound) {
		t.Errorf("live tuple lost by compact")
	}
}

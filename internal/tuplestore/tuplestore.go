// Package tuplestore implements a paged heap file mapping tuple ids to their
// uncertain attribute values.
//
// The probabilistic inverted index needs random access to tuples: its search
// heuristics produce candidate tuple ids whose exact equality probability is
// then computed by fetching the tuple ("the above methods require a random
// access for each candidate tuple", §3.1). Each such probe costs the page
// fetch a real system would pay. The store also supports a page-order full
// scan, which doubles as the paper-less baseline (answering PETQ with no
// index at all).
//
// Records are appended to 8 KB data pages and never move, so a tuple id maps
// to a stable (page, offset) pair — the moral equivalent of a DBMS record id.
// That map is kept in memory, as record ids would be inside a real heap file;
// probing it costs no I/O. Deleted records are tombstoned in memory and their
// space is not reclaimed (append-only heap); Replace appends the new version
// and repoints the map, orphaning the old record the same way.
package tuplestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"ucat/internal/dcache"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

// ErrNotFound is returned by Get for unknown or deleted tuple ids.
var ErrNotFound = errors.New("tuplestore: tuple not found")

// Page layout: uint16 used-byte count, then records packed back to back.
// Record: tid uint32, then the uda binary encoding.
const pageHeader = 2

type location struct {
	pid pager.PageID
	off uint16
}

// Store is a tid → UDA heap file. It is not safe for concurrent writers;
// concurrent read-only queries may call GetVia/ScanVia through private pool
// views.
type Store struct {
	pool  *pager.Pool
	loc   map[uint32]location
	pages []pager.PageID // data pages in append order
	used  int            // bytes used in the last page (including header)
	dead  map[uint32]struct{}
	// cache, when non-nil, holds whole decoded heap pages keyed by (page,
	// store version), consulted AFTER the fetch so probe I/O accounting is
	// unchanged. The verify-heavy inverted-index strategies probe the same
	// hot pages many times per query; one decode then serves them all.
	cache *dcache.Cache
}

// SetCache attaches a decoded-page cache (typically shared relation-wide).
// Nil disables cached decoding.
func (s *Store) SetCache(c *dcache.Cache) { s.cache = c }

// decodedPage is the cache value for one heap page: every record on the
// page, dead or alive (tombstones are in-memory state, filtered by the
// callers), in offset order. Shared across queries; immutable.
type decodedPage struct {
	offs []uint16
	tids []uint32
	udas []uda.UDA
}

func (dp *decodedPage) memSize() int64 {
	s := int64(96 + len(dp.offs)*2 + len(dp.tids)*4)
	for _, u := range dp.udas {
		s += 24 + int64(u.Len())*16
	}
	return s
}

// decodePage decodes every record on the page into one arena-backed image.
// The page header's used-count is authoritative (appendRecord maintains it
// on every append, under the same dirty-unpin that bumps the version).
func decodePage(pid pager.PageID, data []byte) (*decodedPage, error) {
	end := int(binary.LittleEndian.Uint16(data))
	dp := &decodedPage{}
	var arena []uda.Pair
	off := pageHeader
	for off < end {
		tid := binary.LittleEndian.Uint32(data[off:])
		var u uda.UDA
		var n int
		var err error
		u, arena, n, err = uda.DecodeInto(data[off+4:], arena)
		if err != nil {
			return nil, fmt.Errorf("tuplestore: page %d offset %d: %w", pid, off, err)
		}
		dp.offs = append(dp.offs, uint16(off))
		dp.tids = append(dp.tids, tid)
		dp.udas = append(dp.udas, u)
		off += 4 + n
	}
	return dp, nil
}

// find returns the record at byte offset off, or -1.
func (dp *decodedPage) find(off uint16) int {
	i := sort.Search(len(dp.offs), func(i int) bool { return dp.offs[i] >= off })
	if i < len(dp.offs) && dp.offs[i] == off {
		return i
	}
	return -1
}

// cachedPage fetches pid through v (counting the I/O exactly as an uncached
// access would) and returns its decoded image from the cache, decoding and
// inserting on miss.
func (s *Store) cachedPage(v pager.View, pid pager.PageID) (*decodedPage, error) {
	pg, err := v.Fetch(pid)
	if err != nil {
		return nil, err
	}
	ver := s.pool.Store().Version(pid)
	if cv, ok := s.cache.Get(pid, ver); ok {
		pg.Unpin(false)
		return cv.(*decodedPage), nil
	}
	dp, err := decodePage(pid, pg.Data)
	pg.Unpin(false)
	if err != nil {
		return nil, err
	}
	s.cache.Put(pid, ver, dp, dp.memSize())
	return dp, nil
}

// New creates an empty store on the given pool.
func New(pool *pager.Pool) *Store {
	return &Store{
		pool: pool,
		loc:  make(map[uint32]location),
		dead: make(map[uint32]struct{}),
	}
}

// Len returns the number of live tuples.
func (s *Store) Len() int { return len(s.loc) }

// Pool returns the buffer pool the store performs I/O through.
func (s *Store) Pool() *pager.Pool { return s.pool }

// DataPageSet returns the set of heap data-page ids, for callers that
// classify pages by role — e.g. GDSF decode-cost weighting, where heap
// pages (cheap row decodes) are distinguished from index nodes. The map is
// a copy snapshotted at call time; appends after the call are not in it.
func (s *Store) DataPageSet() map[pager.PageID]struct{} {
	set := make(map[pager.PageID]struct{}, len(s.pages))
	for _, pid := range s.pages {
		set[pid] = struct{}{}
	}
	return set
}

// Pages returns the number of data pages in the heap.
func (s *Store) Pages() int { return len(s.pages) }

// Put appends the tuple under the given id. It fails if the id is already
// present (including as a tombstone: ids are never reused) or if the encoded
// record cannot fit in a page.
func (s *Store) Put(tid uint32, u uda.UDA) error {
	if _, ok := s.loc[tid]; ok {
		return fmt.Errorf("tuplestore: duplicate tuple id %d", tid)
	}
	if _, ok := s.dead[tid]; ok {
		return fmt.Errorf("tuplestore: tuple id %d was deleted and cannot be reused", tid)
	}
	recSize := 4 + uda.EncodedSize(u)
	if pageHeader+recSize > pager.PageSize {
		return fmt.Errorf("tuplestore: record for tuple %d is %d bytes, exceeds page capacity %d",
			tid, recSize, pager.PageSize-pageHeader)
	}
	return s.appendRecord(tid, u)
}

// Get fetches the tuple's distribution, costing one page access.
func (s *Store) Get(tid uint32) (uda.UDA, error) { return s.GetVia(s.pool, tid) }

// GetVia fetches the tuple's distribution through the given pool view, so a
// concurrent read-only query can pay its page accesses against a private
// buffer pool.
func (s *Store) GetVia(v pager.View, tid uint32) (uda.UDA, error) {
	l, ok := s.loc[tid]
	if !ok {
		return uda.UDA{}, fmt.Errorf("%w: %d", ErrNotFound, tid)
	}
	if s.cache != nil {
		dp, err := s.cachedPage(v, l.pid)
		if err != nil {
			return uda.UDA{}, err
		}
		i := dp.find(l.off)
		if i < 0 || dp.tids[i] != tid {
			return uda.UDA{}, fmt.Errorf("tuplestore: page %d offset %d does not hold tuple %d",
				l.pid, l.off, tid)
		}
		return dp.udas[i], nil
	}
	pg, err := v.Fetch(l.pid)
	if err != nil {
		return uda.UDA{}, err
	}
	defer pg.Unpin(false)
	gotTID := binary.LittleEndian.Uint32(pg.Data[l.off:])
	if gotTID != tid {
		return uda.UDA{}, fmt.Errorf("tuplestore: page %d offset %d holds tuple %d, want %d",
			l.pid, l.off, gotTID, tid)
	}
	u, _, err := uda.Decode(pg.Data[l.off+4:])
	return u, err
}

// GetArena is GetVia with the decode allocation lifted out: on the uncached
// path the pairs are appended to the caller's arena (uda.DecodeInto), so a
// probe-heavy caller that keeps one arena per query performs zero decode
// allocations after warm-up. The returned UDA is valid only until the caller
// reuses the arena; on the cached path it is the shared cached copy and the
// arena is returned untouched.
func (s *Store) GetArena(v pager.View, tid uint32, arena []uda.Pair) (uda.UDA, []uda.Pair, error) {
	if s.cache != nil {
		u, err := s.GetVia(v, tid)
		return u, arena, err
	}
	l, ok := s.loc[tid]
	if !ok {
		return uda.UDA{}, arena, fmt.Errorf("%w: %d", ErrNotFound, tid)
	}
	pg, err := v.Fetch(l.pid)
	if err != nil {
		return uda.UDA{}, arena, err
	}
	defer pg.Unpin(false)
	gotTID := binary.LittleEndian.Uint32(pg.Data[l.off:])
	if gotTID != tid {
		return uda.UDA{}, arena, fmt.Errorf("tuplestore: page %d offset %d holds tuple %d, want %d",
			l.pid, l.off, gotTID, tid)
	}
	u, arena, _, err := uda.DecodeInto(pg.Data[l.off+4:], arena)
	return u, arena, err
}

// Replace repoints a live tuple id at a freshly appended record holding the
// new distribution. The old record stays on its page as an orphan — the heap
// is append-only, exactly as Delete never reclaims space — and is invisible:
// probes follow the location map, and scans yield only the record the map
// points at. The live write path uses this for in-place distribution updates
// (DESIGN.md §21).
func (s *Store) Replace(tid uint32, u uda.UDA) error {
	if _, ok := s.loc[tid]; !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, tid)
	}
	recSize := 4 + uda.EncodedSize(u)
	if pageHeader+recSize > pager.PageSize {
		return fmt.Errorf("tuplestore: record for tuple %d is %d bytes, exceeds page capacity %d",
			tid, recSize, pager.PageSize-pageHeader)
	}
	return s.appendRecord(tid, u)
}

// Has reports whether the tuple id is live, without I/O.
func (s *Store) Has(tid uint32) bool {
	_, ok := s.loc[tid]
	return ok
}

// Delete tombstones the tuple. The id cannot be reused.
func (s *Store) Delete(tid uint32) error {
	if _, ok := s.loc[tid]; !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, tid)
	}
	delete(s.loc, tid)
	s.dead[tid] = struct{}{}
	return nil
}

// Scan visits every live tuple in page order — the access pattern of a full
// table scan. fn returns false to stop early.
func (s *Store) Scan(fn func(tid uint32, u uda.UDA) bool) error {
	return s.ScanVia(s.pool, fn)
}

// ScanVia is Scan with page fetches routed through the given pool view.
func (s *Store) ScanVia(v pager.View, fn func(tid uint32, u uda.UDA) bool) error {
	if s.cache != nil {
		for _, pid := range s.pages {
			dp, err := s.cachedPage(v, pid)
			if err != nil {
				return err
			}
			for i, tid := range dp.tids {
				// A record is current only if the location map points at it:
				// this one check filters tombstoned tuples AND the orphaned
				// old versions Replace leaves behind.
				if l, ok := s.loc[tid]; !ok || l.pid != pid || l.off != dp.offs[i] {
					continue
				}
				if !fn(tid, dp.udas[i]) {
					return nil
				}
			}
		}
		return nil
	}
	for i, pid := range s.pages {
		pg, err := v.Fetch(pid)
		if err != nil {
			return err
		}
		used := int(binary.LittleEndian.Uint16(pg.Data))
		end := used
		if i == len(s.pages)-1 {
			end = s.used
		}
		off := pageHeader
		for off < end {
			recOff := off
			tid := binary.LittleEndian.Uint32(pg.Data[off:])
			u, n, err := uda.Decode(pg.Data[off+4:])
			if err != nil {
				pg.Unpin(false)
				return fmt.Errorf("tuplestore: page %d offset %d: %w", pid, off, err)
			}
			off += 4 + n
			// Location-map match filters tombstones and Replace orphans alike.
			if l, ok := s.loc[tid]; !ok || l.pid != pid || l.off != uint16(recOff) {
				continue
			}
			if !fn(tid, u) {
				pg.Unpin(false)
				return nil
			}
		}
		pg.Unpin(false)
	}
	return nil
}

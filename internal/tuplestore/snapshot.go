package tuplestore

import (
	"fmt"

	"ucat/internal/pager"
)

// Snapshot is the store's persistent metadata: everything except the page
// images themselves, which live in the pager.Store.
type Snapshot struct {
	Loc   map[uint32][2]uint32 // tid → (page id, offset)
	Pages []uint32             // data pages in append order
	Used  int                  // bytes used in the last page
	Dead  []uint32             // tombstoned tuple ids
}

// Snapshot captures the store's metadata for persistence.
func (s *Store) Snapshot() Snapshot {
	snap := Snapshot{
		Loc:  make(map[uint32][2]uint32, len(s.loc)),
		Used: s.used,
	}
	for tid, l := range s.loc {
		snap.Loc[tid] = [2]uint32{uint32(l.pid), uint32(l.off)}
	}
	for _, pid := range s.pages {
		snap.Pages = append(snap.Pages, uint32(pid))
	}
	for tid := range s.dead {
		snap.Dead = append(snap.Dead, tid)
	}
	return snap
}

// Restore rebuilds a store over the given pool from a snapshot.
func Restore(pool *pager.Pool, snap Snapshot) (*Store, error) {
	s := New(pool)
	s.used = snap.Used
	for tid, l := range snap.Loc {
		if l[1] > uint32(pager.PageSize) {
			return nil, fmt.Errorf("tuplestore: tuple %d has offset %d beyond page size", tid, l[1])
		}
		s.loc[tid] = location{pid: pager.PageID(l[0]), off: uint16(l[1])}
	}
	for _, pid := range snap.Pages {
		s.pages = append(s.pages, pager.PageID(pid))
	}
	for _, tid := range snap.Dead {
		s.dead[tid] = struct{}{}
	}
	return s, nil
}

package pager

import (
	"bytes"
	"testing"
)

// fillPage writes a recognizable pattern derived from seed into a page-sized
// buffer.
func fillPage(seed byte) []byte {
	b := make([]byte, PageSize)
	for i := range b {
		b[i] = seed + byte(i%7)
	}
	return b
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	p1 := s.Allocate()
	p2 := s.Allocate()
	p3 := s.Allocate()
	if err := s.WriteAt(p1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(p3, fillPage(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(p2); err != nil {
		t.Fatal(err)
	}

	pages, free := s.Snapshot()
	if len(pages) != 3 {
		t.Fatalf("snapshot has %d page slots, want 3", len(pages))
	}
	if pages[p2-1] != nil {
		t.Error("freed page has a snapshot image")
	}
	if len(free) != 1 || free[0] != p2 {
		t.Errorf("free list = %v, want [%v]", free, p2)
	}

	r, err := RestoreStore(pages, free)
	if err != nil {
		t.Fatalf("RestoreStore: %v", err)
	}
	if got, want := r.NumPages(), s.NumPages(); got != want {
		t.Errorf("restored NumPages = %d, want %d", got, want)
	}
	buf := make([]byte, PageSize)
	if err := r.ReadAt(p1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fillPage(1)) {
		t.Error("page 1 content corrupted by snapshot round trip")
	}
	if err := r.ReadAt(p3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fillPage(3)) {
		t.Error("page 3 content corrupted by snapshot round trip")
	}
	if err := r.ReadAt(p2, buf); err == nil {
		t.Error("reading the freed page after restore succeeded, want error")
	}
	// The freed slot must be reusable.
	if pid := r.Allocate(); pid != p2 {
		t.Errorf("restored store allocated %v, want recycled %v", pid, p2)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s := NewStore()
	pid := s.Allocate()
	if err := s.WriteAt(pid, fillPage(9)); err != nil {
		t.Fatal(err)
	}
	pages, free := s.Snapshot()
	// Mutating the snapshot must not affect the store…
	pages[0][0] ^= 0xFF
	buf := make([]byte, PageSize)
	if err := s.ReadAt(pid, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != fillPage(9)[0] {
		t.Error("mutating the snapshot image changed the live store")
	}
	// …and mutating the store must not affect a restore taken earlier.
	pages[0][0] ^= 0xFF // undo
	r, err := RestoreStore(pages, free)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(pid, fillPage(5)); err != nil {
		t.Fatal(err)
	}
	if err := r.ReadAt(pid, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fillPage(9)) {
		t.Error("restored store shares memory with the snapshot source")
	}
}

func TestRestoreStoreRejectsCorruptSnapshots(t *testing.T) {
	good := func() ([][]byte, []PageID) {
		return [][]byte{fillPage(1), nil}, []PageID{2}
	}

	t.Run("free list names out-of-range page", func(t *testing.T) {
		pages, _ := good()
		if _, err := RestoreStore(pages, []PageID{2, 99}); err == nil {
			t.Error("want error for out-of-range free entry")
		}
	})
	t.Run("free list names the invalid page", func(t *testing.T) {
		pages, _ := good()
		if _, err := RestoreStore(pages, []PageID{2, InvalidPage}); err == nil {
			t.Error("want error for InvalidPage in free list")
		}
	})
	t.Run("nil page missing from free list", func(t *testing.T) {
		pages, _ := good()
		if _, err := RestoreStore(pages, nil); err == nil {
			t.Error("want error for nil page not on the free list")
		}
	})
	t.Run("freed page with an image", func(t *testing.T) {
		pages, free := good()
		pages[1] = fillPage(2)
		if _, err := RestoreStore(pages, free); err == nil {
			t.Error("want error for an image on a freed slot")
		}
	})
	t.Run("wrong page size", func(t *testing.T) {
		pages, free := good()
		pages[0] = pages[0][:100]
		if _, err := RestoreStore(pages, free); err == nil {
			t.Error("want error for a short page image")
		}
	})
	t.Run("valid snapshot accepted", func(t *testing.T) {
		pages, free := good()
		if _, err := RestoreStore(pages, free); err != nil {
			t.Errorf("valid snapshot rejected: %v", err)
		}
	})
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := NewStore()
	pages, free := s.Snapshot()
	if len(pages) != 0 || len(free) != 0 {
		t.Errorf("empty store snapshot = %d pages, %d free; want 0, 0", len(pages), len(free))
	}
	r, err := RestoreStore(pages, free)
	if err != nil {
		t.Fatalf("RestoreStore(empty): %v", err)
	}
	if r.NumPages() != 0 {
		t.Errorf("restored empty store has %d pages", r.NumPages())
	}
}

package pager

import (
	"sync"
	"testing"
)

// TestPoolConcurrentFetch hammers a shared pool from many goroutines. Run
// with -race to catch synchronization bugs; the assertions here check pin
// accounting and content integrity.
func TestPoolConcurrentFetch(t *testing.T) {
	store := NewStore()
	pool := NewPool(store, 16)

	// Seed pages whose first byte encodes their id.
	const numPages = 64
	pids := make([]PageID, numPages)
	for i := range pids {
		pg, err := pool.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		pg.Data[0] = byte(pg.ID)
		pids[i] = pg.ID
		pg.Unpin(true)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				pid := pids[(seed*2000+i*7)%numPages]
				pg, err := pool.Fetch(pid)
				if err != nil {
					// Transient exhaustion is impossible here: 8 goroutines
					// hold at most 8 pins against 16 frames.
					errs <- err
					return
				}
				if pg.Data[0] != byte(pid) {
					errs <- errContent(pid)
					pg.Unpin(false)
					return
				}
				pg.Unpin(false)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent fetch: %v", err)
	}
	if got := pool.PinnedPages(); got != 0 {
		t.Errorf("pin leak: %d pages pinned", got)
	}
	if err := pool.FlushAll(); err != nil {
		t.Errorf("FlushAll: %v", err)
	}
}

type errContent PageID

func (e errContent) Error() string { return "page content corrupted" }

// TestPoolConcurrentMixed mixes NewPage, Fetch and FreePage across
// goroutines, each working on its own pages so the only shared state is the
// pool itself.
func TestPoolConcurrentMixed(t *testing.T) {
	store := NewStore()
	pool := NewPool(store, 32)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []PageID
			for i := 0; i < 300; i++ {
				pg, err := pool.NewPage()
				if err != nil {
					errs <- err
					return
				}
				pg.Data[1] = 0xAB
				mine = append(mine, pg.ID)
				pg.Unpin(true)
			}
			for _, pid := range mine {
				pg, err := pool.Fetch(pid)
				if err != nil {
					errs <- err
					return
				}
				if pg.Data[1] != 0xAB {
					errs <- errContent(pid)
					pg.Unpin(false)
					return
				}
				pg.Unpin(false)
				if err := pool.FreePage(pid); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent mixed: %v", err)
	}
	if store.NumPages() != 0 {
		t.Errorf("%d pages leaked", store.NumPages())
	}
}

// Package pager provides the disk substrate the paper's evaluation
// presupposes: fixed-size 8 KB pages, a page allocator, and a buffer pool
// with clock (second-chance) replacement. The paper measures index quality
// as "number of disk I/Os per query" under "a buffer manager that allocates
// 100 blocks to each query. A clock replacement algorithm is used to manage
// the buffer pool" (§4); this package implements exactly that accounting.
//
// The page store itself is in memory — the metric of interest is buffer-pool
// misses, which depend only on page size, pool size and replacement policy,
// not on the medium behind the pool.
package pager

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the size of every page in bytes. The paper's experiments use
// 8 KB pages.
const PageSize = 8192

// PageID identifies an allocated page. The zero value is never a valid page,
// so it can be used as a null pointer in on-page data structures.
type PageID uint32

// InvalidPage is the null page id.
const InvalidPage PageID = 0

// ErrInvalidPage is returned when an operation names a page that was never
// allocated or has been freed.
var ErrInvalidPage = errors.New("pager: invalid page id")

// Store is a page-granular storage device: a flat array of fixed-size pages
// with allocate/free. All access should normally go through a Pool so that
// I/O is counted; Store's own ReadAt/WriteAt are exposed for the pool and for
// tests.
//
// The store is guarded by a read-write mutex: ReadAt takes only the read
// lock, so any number of pools (for example, one per concurrent query) can
// read the same store in parallel without serializing on it.
type Store struct {
	mu    sync.RWMutex
	pages [][]byte // index pid-1; nil entries are freed pages
	free  []PageID
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Allocate reserves a new zeroed page and returns its id.
func (s *Store) Allocate() PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		pid := s.free[n-1]
		s.free = s.free[:n-1]
		s.pages[pid-1] = make([]byte, PageSize)
		return pid
	}
	s.pages = append(s.pages, make([]byte, PageSize))
	return PageID(len(s.pages))
}

// Free releases a page. Freeing an already-free or never-allocated page is
// an error: it indicates index corruption.
func (s *Store) Free(pid PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(pid); err != nil {
		return err
	}
	s.pages[pid-1] = nil
	s.free = append(s.free, pid)
	return nil
}

// ReadAt copies the page's contents into dst, which must be PageSize bytes.
// It takes only the store's read lock, so concurrent readers never contend.
func (s *Store) ReadAt(pid PageID, dst []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.check(pid); err != nil {
		return err
	}
	if len(dst) != PageSize {
		return fmt.Errorf("pager: ReadAt buffer is %d bytes, want %d", len(dst), PageSize)
	}
	copy(dst, s.pages[pid-1])
	return nil
}

// WriteAt overwrites the page's contents from src, which must be PageSize
// bytes.
func (s *Store) WriteAt(pid PageID, src []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(pid); err != nil {
		return err
	}
	if len(src) != PageSize {
		return fmt.Errorf("pager: WriteAt buffer is %d bytes, want %d", len(src), PageSize)
	}
	copy(s.pages[pid-1], src)
	return nil
}

// NumPages returns the number of currently allocated pages.
func (s *Store) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages) - len(s.free)
}

// Bytes returns the total allocated size in bytes, the on-disk footprint an
// index built on this store would occupy.
func (s *Store) Bytes() int64 {
	return int64(s.NumPages()) * PageSize
}

// check must be called with s.mu held.
func (s *Store) check(pid PageID) error {
	if pid == InvalidPage || int(pid) > len(s.pages) || s.pages[pid-1] == nil {
		return fmt.Errorf("%w: %d", ErrInvalidPage, pid)
	}
	return nil
}

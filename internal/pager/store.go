// Package pager provides the disk substrate the paper's evaluation
// presupposes: fixed-size 8 KB pages, a page allocator, and a buffer pool
// with clock (second-chance) replacement. The paper measures index quality
// as "number of disk I/Os per query" under "a buffer manager that allocates
// 100 blocks to each query. A clock replacement algorithm is used to manage
// the buffer pool" (§4); this package implements exactly that accounting.
//
// The page store itself is in memory — the metric of interest is buffer-pool
// misses, which depend only on page size, pool size and replacement policy,
// not on the medium behind the pool.
package pager

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the size of every page in bytes. The paper's experiments use
// 8 KB pages.
const PageSize = 8192

// PageID identifies an allocated page. The zero value is never a valid page,
// so it can be used as a null pointer in on-page data structures.
type PageID uint32

// InvalidPage is the null page id.
const InvalidPage PageID = 0

// ErrInvalidPage is returned when an operation names a page that was never
// allocated or has been freed.
var ErrInvalidPage = errors.New("pager: invalid page id")

// Store is a page-granular storage device: a flat array of fixed-size pages
// with allocate/free. All access should normally go through a Pool so that
// I/O is counted; Store's own ReadAt/WriteAt are exposed for the pool and for
// tests.
//
// The store is guarded by a read-write mutex: ReadAt takes only the read
// lock, so any number of pools (for example, one per concurrent query) can
// read the same store in parallel without serializing on it.
type Store struct {
	mu    sync.RWMutex
	pages [][]byte // index pid-1; nil entries are freed pages
	free  []PageID
	// versions holds a monotonic per-slot modification counter (index pid-1).
	// It is bumped whenever a page's logical contents may have changed:
	// on Page.Unpin(dirty=true), on Free, on Allocate of a recycled id, and
	// on a direct WriteAt from outside the pool. Versions never reset, even
	// across Free/Allocate of the same id, so a (PageID, version) pair is
	// unique for the store's lifetime — the decode cache's invalidation key
	// (see internal/dcache and DESIGN.md §15).
	versions []uint64
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Allocate reserves a new zeroed page and returns its id.
func (s *Store) Allocate() PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		pid := s.free[n-1]
		s.free = s.free[:n-1]
		s.pages[pid-1] = make([]byte, PageSize)
		s.versions[pid-1]++ // recycled id: zeroed contents are a new version
		return pid
	}
	s.pages = append(s.pages, make([]byte, PageSize))
	s.versions = append(s.versions, 0)
	return PageID(len(s.pages))
}

// Free releases a page. Freeing an already-free or never-allocated page is
// an error: it indicates index corruption.
func (s *Store) Free(pid PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(pid); err != nil {
		return err
	}
	s.pages[pid-1] = nil
	s.free = append(s.free, pid)
	s.versions[pid-1]++ // the old contents are gone; invalidate decoded copies
	return nil
}

// Version returns the page's current modification counter. Stale cache
// entries are detected by comparing the version captured at decode time with
// the current one; see BumpVersion for when it advances. Out-of-range ids
// return 0 (the caller's Fetch will fail anyway).
func (s *Store) Version(pid PageID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if pid == InvalidPage || int(pid) > len(s.versions) {
		return 0
	}
	return s.versions[pid-1]
}

// BumpVersion advances the page's modification counter, invalidating any
// decoded-object cache entry keyed to the previous version. Page.Unpin(true)
// calls it automatically, which is the only cache-coherence duty a writer
// has (the "writers need no cache code" contract). Bumping an out-of-range
// id is a no-op.
func (s *Store) BumpVersion(pid PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pid == InvalidPage || int(pid) > len(s.versions) {
		return
	}
	s.versions[pid-1]++
}

// ReadAt copies the page's contents into dst, which must be PageSize bytes.
// It takes only the store's read lock, so concurrent readers never contend.
func (s *Store) ReadAt(pid PageID, dst []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.check(pid); err != nil {
		return err
	}
	if len(dst) != PageSize {
		return fmt.Errorf("pager: ReadAt buffer is %d bytes, want %d", len(dst), PageSize)
	}
	copy(dst, s.pages[pid-1])
	return nil
}

// WriteAt overwrites the page's contents from src, which must be PageSize
// bytes. The page's version is bumped: a direct store write bypasses the
// pool's Unpin(dirty) protocol, so it must invalidate decoded copies itself.
func (s *Store) WriteAt(pid PageID, src []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeAt(pid, src); err != nil {
		return err
	}
	s.versions[pid-1]++
	return nil
}

// writeBack is the pool's write-back path. It does not bump the version: the
// frame being written back was already bumped when it was unpinned dirty, and
// its bytes have not changed since, so decoded copies made after that bump
// are still valid.
func (s *Store) writeBack(pid PageID, src []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeAt(pid, src)
}

// writeAt must be called with s.mu held.
func (s *Store) writeAt(pid PageID, src []byte) error {
	if err := s.check(pid); err != nil {
		return err
	}
	if len(src) != PageSize {
		return fmt.Errorf("pager: WriteAt buffer is %d bytes, want %d", len(src), PageSize)
	}
	copy(s.pages[pid-1], src)
	return nil
}

// NumPages returns the number of currently allocated pages.
func (s *Store) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages) - len(s.free)
}

// Bytes returns the total allocated size in bytes, the on-disk footprint an
// index built on this store would occupy.
func (s *Store) Bytes() int64 {
	return int64(s.NumPages()) * PageSize
}

// check must be called with s.mu held.
func (s *Store) check(pid PageID) error {
	if pid == InvalidPage || int(pid) > len(s.pages) || s.pages[pid-1] == nil {
		return fmt.Errorf("%w: %d", ErrInvalidPage, pid)
	}
	return nil
}

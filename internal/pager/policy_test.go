package pager

import (
	"strings"
	"testing"
)

// mkPages allocates n pages through a throwaway pool, stamping each page's
// first and last bytes with a pid-derived pattern, and returns their ids.
// The pattern lets readers verify a pinned frame was never recycled under
// them: a frame stolen mid-pin would carry another page's stamp.
func mkPages(t *testing.T, store *Store, n int) []PageID {
	t.Helper()
	build := NewPool(store, n+1)
	pids := make([]PageID, 0, n)
	for i := 0; i < n; i++ {
		pg, err := build.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		stampPage(pg.ID, pg.Data)
		pids = append(pids, pg.ID)
		pg.Unpin(true)
	}
	if err := build.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	return pids
}

func stampPage(pid PageID, data []byte) {
	data[0] = byte(pid)
	data[1] = byte(pid >> 8)
	data[PageSize-1] = byte(pid * 31)
}

func checkStamp(t *testing.T, pid PageID, data []byte) {
	t.Helper()
	// Errorf, not Fatalf: the stress test calls this from reader goroutines,
	// where FailNow is not allowed.
	if data[0] != byte(pid) || data[1] != byte(pid>>8) || data[PageSize-1] != byte(pid*31) {
		t.Errorf("page %d carries another page's bytes: frame recycled under a pin?", pid)
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, pol := range Policies {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", pol.String(), got, err, pol)
		}
	}
	if got, err := ParsePolicy(""); err != nil || got != CLOCK {
		t.Errorf("ParsePolicy(\"\") = %v, %v; want CLOCK", got, err)
	}
	if _, err := ParsePolicy("mru"); err == nil || !strings.Contains(err.Error(), "mru") {
		t.Errorf("ParsePolicy(\"mru\") error = %v; want an error naming the input", err)
	}
}

func TestNewSharedPoolGeometryAndPolicy(t *testing.T) {
	store := NewStore()
	p := NewSharedPool(store, 64, 4, GDSF)
	if p.Policy() != GDSF {
		t.Errorf("Policy() = %v, want GDSF", p.Policy())
	}
	if p.Shards() != 4 || p.Frames() != 64 {
		t.Errorf("geometry = %d stripes × %d frames, want 4 × 64", p.Shards(), p.Frames())
	}
	// NewPool/NewStripedPool must stay CLOCK: the figures depend on it.
	if got := NewPool(store, 8).Policy(); got != CLOCK {
		t.Errorf("NewPool policy = %v, want CLOCK", got)
	}
	if got := NewStripedPool(store, 8, 2).Policy(); got != CLOCK {
		t.Errorf("NewStripedPool policy = %v, want CLOCK", got)
	}
}

// fetchUnpin fetches and immediately releases a page, returning whether it
// was served from the pool.
func fetchUnpin(t *testing.T, p *Pool, pid PageID) bool {
	t.Helper()
	before := p.Stats()
	pg, err := p.Fetch(pid)
	if err != nil {
		t.Fatalf("Fetch(%d): %v", pid, err)
	}
	checkStamp(t, pid, pg.Data)
	pg.Unpin(false)
	return p.Stats().Sub(before).Hits == 1
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	store := NewStore()
	pids := mkPages(t, store, 8)
	p := NewSharedPool(store, 3, 1, LRU)
	a, b, c, d := pids[0], pids[1], pids[2], pids[3]
	for _, pid := range []PageID{a, b, c} {
		fetchUnpin(t, p, pid)
	}
	fetchUnpin(t, p, a) // recency now: b < c < a
	fetchUnpin(t, p, d) // full pool; strict LRU must evict b
	if !fetchUnpin(t, p, a) {
		t.Error("a was evicted; want it resident (most recently used)")
	}
	if !fetchUnpin(t, p, c) {
		t.Error("c was evicted; want it resident")
	}
	if fetchUnpin(t, p, b) {
		t.Error("b still resident; want it to have been the LRU victim")
	}
}

func TestLRUNeverEvictsPinned(t *testing.T) {
	store := NewStore()
	pids := mkPages(t, store, 8)
	p := NewSharedPool(store, 2, 1, LRU)
	pg, err := p.Fetch(pids[0]) // oldest AND pinned
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	fetchUnpin(t, p, pids[1])
	fetchUnpin(t, p, pids[2]) // must evict pids[1], not the pinned LRU frame
	checkStamp(t, pids[0], pg.Data)
	if !fetchUnpin(t, p, pids[0]) {
		t.Error("pinned page missed; its frame was recycled")
	}
	pg.Unpin(false)
	// With both frames pinned, a third fetch must fail, not steal a frame.
	pg1, _ := p.Fetch(pids[3])
	pg2, _ := p.Fetch(pids[4])
	if _, err := p.Fetch(pids[5]); err != ErrPoolExhausted {
		t.Errorf("Fetch on fully pinned stripe = %v, want ErrPoolExhausted", err)
	}
	pg1.Unpin(false)
	pg2.Unpin(false)
}

func TestGDSFKeepsExpensivePages(t *testing.T) {
	store := NewStore()
	pids := mkPages(t, store, 16)
	costly := pids[0]
	p := NewSharedPool(store, 3, 1, GDSF)
	p.SetCostFunc(func(pid PageID, data []byte) float64 {
		if pid == costly {
			return 100
		}
		return 1
	})
	fetchUnpin(t, p, costly)
	// Churn cheap pages through the two remaining frames: the costly page's
	// priority (100) dwarfs the cheap ones (inflate + 1), so it must survive
	// every one of these evictions even though it is the least recent page.
	for _, pid := range pids[1:8] {
		fetchUnpin(t, p, pid)
	}
	if !fetchUnpin(t, p, costly) {
		t.Error("high-cost page was evicted under GDSF; want it to outlive cheap churn")
	}
}

func TestGDSFInflationAgesOutStaleExpensive(t *testing.T) {
	store := NewStore()
	pids := mkPages(t, store, 40)
	costly := pids[0]
	p := NewSharedPool(store, 2, 1, GDSF)
	p.SetCostFunc(func(pid PageID, data []byte) float64 {
		if pid == costly {
			return 3
		}
		return 1
	})
	fetchUnpin(t, p, costly) // priority 3, never touched again
	// Each cheap eviction raises the stripe's inflation value toward the
	// stale page's priority; once cheap admissions exceed it, greedy-dual
	// aging must reclaim the expensive frame too.
	for _, pid := range pids[1:20] {
		fetchUnpin(t, p, pid)
	}
	if fetchUnpin(t, p, costly) {
		t.Error("stale high-cost page still resident; want inflation to age it out")
	}
}

func TestSessionStatsAttribution(t *testing.T) {
	store := NewStore()
	pids := mkPages(t, store, 4)
	p := NewSharedPool(store, 8, 2, LRU)
	base := p.Stats()
	s1, s2 := p.Session(), p.Session()
	pg, err := s1.Fetch(pids[0]) // miss, charged to s1
	if err != nil {
		t.Fatalf("s1.Fetch: %v", err)
	}
	pg.Unpin(false)
	pg, err = s2.Fetch(pids[0]) // hit, charged to s2
	if err != nil {
		t.Fatalf("s2.Fetch: %v", err)
	}
	pg.Unpin(false)
	if got := s1.Stats(); got != (Stats{Reads: 1}) {
		t.Errorf("s1.Stats() = %+v, want exactly one read", got)
	}
	if got := s2.Stats(); got != (Stats{Hits: 1}) {
		t.Errorf("s2.Stats() = %+v, want exactly one hit", got)
	}
	if got, want := p.Stats().Sub(base), s1.Stats().Add(s2.Stats()); got != want {
		t.Errorf("pool delta %+v != sum of session stats %+v", got, want)
	}
	if s1.Pool() != p {
		t.Error("Session.Pool() does not return the shared pool")
	}
}

func TestPinsCounterBalances(t *testing.T) {
	store := NewStore()
	pids := mkPages(t, store, 4)
	p := NewSharedPool(store, 8, 1, GDSF)
	pg1, _ := p.Fetch(pids[0])
	pg2, _ := p.Fetch(pids[0]) // second pin on the same frame counts too
	pg3, _ := p.Fetch(pids[1])
	if got := p.Pins(); got != 3 {
		t.Errorf("Pins() = %d, want 3", got)
	}
	pg1.Unpin(false)
	pg2.Unpin(false)
	pg3.Unpin(false)
	if got := p.Pins(); got != 0 {
		t.Errorf("Pins() after release = %d, want 0", got)
	}
	if got := p.CachedPages(); got != 2 {
		t.Errorf("CachedPages() = %d, want 2", got)
	}
}

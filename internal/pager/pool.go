package pager

import (
	"errors"
	"fmt"
	"sync"
)

// DefaultPoolFrames is the buffer pool capacity used throughout the paper's
// experiments: "all experiments are conducted with a buffer manager that
// allocates 100 blocks to each query".
const DefaultPoolFrames = 100

// ErrPoolExhausted is returned by Fetch/NewPage when every frame is pinned.
var ErrPoolExhausted = errors.New("pager: buffer pool exhausted (all frames pinned)")

// Stats counts page traffic through a Pool. Reads and Writes are transfers
// between pool and store — the paper's "disk I/Os". Hits are fetches served
// from the pool without touching the store.
type Stats struct {
	Reads  uint64 // pages read from the store (pool misses)
	Writes uint64 // dirty pages written back to the store
	Hits   uint64 // fetches satisfied inside the pool
}

// IOs returns the total I/O count Reads+Writes, the y-axis of every figure
// in the paper's evaluation.
func (s Stats) IOs() uint64 { return s.Reads + s.Writes }

// Sub returns the difference s − t, used to attribute I/Os to one query.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes, Hits: s.Hits - t.Hits}
}

// Add returns the sum s + t.
func (s Stats) Add(t Stats) Stats {
	return Stats{Reads: s.Reads + t.Reads, Writes: s.Writes + t.Writes, Hits: s.Hits + t.Hits}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d hits=%d io=%d", s.Reads, s.Writes, s.Hits, s.IOs())
}

type frame struct {
	pid   PageID
	data  []byte
	pins  int
	ref   bool // clock reference bit (second chance)
	dirty bool
}

// Pool is a buffer pool over a Store with clock replacement. Callers obtain
// pinned Pages via Fetch or NewPage and must Unpin them when done; unpinned
// frames are eligible for eviction, dirty ones being written back first.
//
// Pool is safe for concurrent use, but a Page's Data is only protected while
// the page is pinned, and concurrent writers to one page must coordinate
// among themselves.
type Pool struct {
	store  *Store
	mu     sync.Mutex
	frames []frame
	table  map[PageID]int // pid → frame index
	hand   int            // clock hand
	stats  Stats
}

// NewPool creates a pool with nframes frames (DefaultPoolFrames if
// nframes <= 0) over the given store.
func NewPool(store *Store, nframes int) *Pool {
	if nframes <= 0 {
		nframes = DefaultPoolFrames
	}
	p := &Pool{
		store:  store,
		frames: make([]frame, nframes),
		table:  make(map[PageID]int, nframes),
	}
	for i := range p.frames {
		p.frames[i].data = make([]byte, PageSize)
	}
	return p
}

// Store returns the underlying page store.
func (p *Pool) Store() *Store { return p.store }

// Frames returns the pool capacity.
func (p *Pool) Frames() int { return len(p.frames) }

// Page is a pinned page image. Data aliases the pool frame directly; it is
// valid until Unpin and must not be retained afterwards.
type Page struct {
	ID   PageID
	Data []byte
	pool *Pool
	idx  int
}

// Fetch pins the page in the pool, reading it from the store on a miss.
func (p *Pool) Fetch(pid PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx, ok := p.table[pid]; ok {
		f := &p.frames[idx]
		f.pins++
		f.ref = true
		p.stats.Hits++
		return &Page{ID: pid, Data: f.data, pool: p, idx: idx}, nil
	}
	idx, err := p.evict()
	if err != nil {
		return nil, err
	}
	f := &p.frames[idx]
	if err := p.store.ReadAt(pid, f.data); err != nil {
		// Leave the frame empty so a later fetch can reuse it.
		f.pid = InvalidPage
		return nil, err
	}
	p.stats.Reads++
	f.pid = pid
	f.pins = 1
	f.ref = true
	f.dirty = false
	p.table[pid] = idx
	return &Page{ID: pid, Data: f.data, pool: p, idx: idx}, nil
}

// NewPage allocates a fresh zeroed page in the store and pins it without a
// store read (materializing a brand-new page costs no input I/O; it will
// cost a write when evicted or flushed).
func (p *Pool) NewPage() (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, err := p.evict()
	if err != nil {
		return nil, err
	}
	pid := p.store.Allocate()
	f := &p.frames[idx]
	for i := range f.data {
		f.data[i] = 0
	}
	f.pid = pid
	f.pins = 1
	f.ref = true
	f.dirty = true
	p.table[pid] = idx
	return &Page{ID: pid, Data: f.data, pool: p, idx: idx}, nil
}

// Unpin releases one pin on the page. If dirty is true the frame is marked
// for write-back on eviction. Unpinning an unpinned page panics: it is a
// use-after-release bug in the caller.
func (pg *Page) Unpin(dirty bool) {
	p := pg.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	f := &p.frames[pg.idx]
	if f.pid != pg.ID || f.pins <= 0 {
		panic(fmt.Sprintf("pager: unpin of page %d not pinned in frame %d", pg.ID, pg.idx))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// FreePage removes the page from the pool (it must not be pinned) and
// releases it in the store.
func (p *Pool) FreePage(pid PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx, ok := p.table[pid]; ok {
		f := &p.frames[idx]
		if f.pins > 0 {
			return fmt.Errorf("pager: freeing pinned page %d", pid)
		}
		delete(p.table, pid)
		f.pid = InvalidPage
		f.dirty = false
	}
	return p.store.Free(pid)
}

// FlushAll writes every dirty unpinned frame back to the store. It returns
// an error if a dirty page is still pinned, which indicates a pin leak.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if f.pid == InvalidPage || !f.dirty {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("pager: flush with page %d still pinned", f.pid)
		}
		if err := p.store.WriteAt(f.pid, f.data); err != nil {
			return err
		}
		p.stats.Writes++
		f.dirty = false
	}
	return nil
}

// Stats returns a snapshot of the I/O counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the I/O counters (the pool contents are untouched, so a
// query following a reset runs against a warm pool, as in the paper).
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Clear writes back all dirty frames and then drops every cached page, so
// subsequent fetches run against a cold cache. The paper's evaluation
// allocates a buffer pool "to each query"; the experiment harness models that
// by clearing the pool between queries. Clearing fails if any page is pinned.
func (p *Pool) Clear() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clearLocked()
}

// Resize changes the pool capacity, clearing it in the process. It is used
// to build an index under a large pool and then query it under the paper's
// 100-frame pool.
func (p *Pool) Resize(nframes int) error {
	if nframes <= 0 {
		nframes = DefaultPoolFrames
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.clearLocked(); err != nil {
		return err
	}
	p.frames = make([]frame, nframes)
	for i := range p.frames {
		p.frames[i].data = make([]byte, PageSize)
	}
	p.table = make(map[PageID]int, nframes)
	p.hand = 0
	return nil
}

// clearLocked must be called with p.mu held.
func (p *Pool) clearLocked() error {
	for i := range p.frames {
		f := &p.frames[i]
		if f.pid == InvalidPage {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("pager: clear with page %d still pinned", f.pid)
		}
		if f.dirty {
			if err := p.store.WriteAt(f.pid, f.data); err != nil {
				return err
			}
			p.stats.Writes++
		}
		delete(p.table, f.pid)
		f.pid = InvalidPage
		f.dirty = false
		f.ref = false
	}
	return nil
}

// PinnedPages reports how many frames are currently pinned; useful for leak
// detection in tests.
func (p *Pool) PinnedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.frames {
		if p.frames[i].pid != InvalidPage && p.frames[i].pins > 0 {
			n++
		}
	}
	return n
}

// evict selects a victim frame using the clock algorithm, writing it back if
// dirty, and returns its index with the frame detached from the page table.
// Must be called with p.mu held.
func (p *Pool) evict() (int, error) {
	// An empty frame is free to take without a sweep.
	// The clock makes at most two full sweeps: the first clears reference
	// bits, the second takes the first unpinned frame.
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		f := &p.frames[p.hand]
		idx := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		if f.pid == InvalidPage {
			return idx, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false // second chance
			continue
		}
		if f.dirty {
			if err := p.store.WriteAt(f.pid, f.data); err != nil {
				return 0, err
			}
			p.stats.Writes++
		}
		delete(p.table, f.pid)
		f.pid = InvalidPage
		f.dirty = false
		return idx, nil
	}
	return 0, ErrPoolExhausted
}

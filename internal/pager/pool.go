package pager

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPoolFrames is the buffer pool capacity used throughout the paper's
// experiments: "all experiments are conducted with a buffer manager that
// allocates 100 blocks to each query".
const DefaultPoolFrames = 100

// ErrPoolExhausted is returned by Fetch/NewPage when every frame in the
// page's stripe is pinned.
var ErrPoolExhausted = errors.New("pager: buffer pool exhausted (all frames pinned)")

// Stats counts page traffic through a Pool. Reads and Writes are transfers
// between pool and store — the paper's "disk I/Os". Hits are fetches served
// from the pool without touching the store.
type Stats struct {
	Reads  uint64 // pages read from the store (pool misses)
	Writes uint64 // dirty pages written back to the store
	Hits   uint64 // fetches satisfied inside the pool
}

// IOs returns the total I/O count Reads+Writes, the y-axis of every figure
// in the paper's evaluation.
func (s Stats) IOs() uint64 { return s.Reads + s.Writes }

// HitRate returns the fraction of fetches served inside the pool,
// Hits/(Hits+Reads), or 0 when no fetch has happened. Writes are excluded:
// the rate answers "how often did a fetch avoid the store", the buffer-pool
// efficiency the paper's per-query 100-frame discipline is all about.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Reads
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Sub returns the difference s − t, used to attribute I/Os to one query.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes, Hits: s.Hits - t.Hits}
}

// Add returns the sum s + t.
func (s Stats) Add(t Stats) Stats {
	return Stats{Reads: s.Reads + t.Reads, Writes: s.Writes + t.Writes, Hits: s.Hits + t.Hits}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d hits=%d io=%d hitrate=%.3f",
		s.Reads, s.Writes, s.Hits, s.IOs(), s.HitRate())
}

// View is the read-side page-access capability a query executes through.
// Indexes capture one *Pool at construction for writes, but read-only query
// entry points accept a View so that N concurrent queries can each run
// against their own private pool (the paper's "100 blocks to each query")
// over the same shared Store, with independent I/O accounting. *Pool
// implements View.
type View interface {
	Fetch(pid PageID) (*Page, error)
}

type frame struct {
	pid   PageID
	data  []byte
	pins  int
	ref   bool // clock reference bit (second chance)
	dirty bool

	// Replacement-policy metadata, maintained under the stripe lock on every
	// admission and touch. CLOCK ignores all of it, so pools built by
	// NewPool/NewStripedPool behave exactly as before these fields existed.
	stamp uint64  // stripe tick at last touch (LRU order; GDSF tie-break)
	freq  uint64  // touches since admission (GDSF)
	cost  float64 // re-materialization cost estimate at admission (GDSF)
	prio  float64 // GDSF priority H = inflate + freq×cost at last touch
}

// shard is one lock stripe of a Pool: a private mutex, frame set, page table
// and clock hand. Pages map to shards by a fixed hash of their id, so
// concurrent Fetch/Unpin on pages in different stripes never contend.
type shard struct {
	mu     sync.Mutex
	frames []frame
	table  map[PageID]int // pid → frame index within this shard
	hand   int            // clock hand, local to the shard

	tick    uint64  // logical clock for LRU stamps, local to the shard
	inflate float64 // GDSF inflation value L: priority of the last victim

	// Pad shards apart so their mutexes do not share a cache line.
	_ [64]byte
}

// Pool is a buffer pool over a Store with clock (second-chance) replacement.
// Callers obtain pinned Pages via Fetch or NewPage and must Unpin them when
// done; unpinned frames are eligible for eviction, dirty ones being written
// back first.
//
// The pool is divided into one or more lock stripes ("shards"). Each page id
// hashes to exactly one shard, which owns a fixed subset of the frames, its
// own page table and its own clock hand. NewPool creates a single stripe,
// which reproduces the paper's global-clock replacement exactly (the figure
// harness depends on this); NewStripedPool spreads the frames over several
// stripes so concurrent access to distinct pages does not serialize on one
// mutex. Stripe invariants:
//
//   - a page id always maps to the same shard, so a page is cached at most
//     once in the whole pool;
//   - eviction is local: a Fetch evicts only within its page's shard, and
//     ErrPoolExhausted means that *stripe* is fully pinned, even if other
//     stripes have free frames;
//   - Stats counters are atomic and shared by all shards; a Stats() snapshot
//     is exact when no operation is in flight (each counter is individually
//     exact always).
//
// Pool is safe for concurrent use, but a Page's Data is only protected while
// the page is pinned, and concurrent writers to one page must coordinate
// among themselves. Clear, Resize and FlushAll lock shards one at a time and
// must not race with writers.
type Pool struct {
	store   *Store
	shards  []shard
	nframes int
	policy  Policy
	costFn  CostFunc // nil means every page costs 1 (GDSF degenerates to LFU-with-aging)

	// pins is the number of outstanding Page pins across all stripes,
	// maintained atomically on the Fetch/NewPage/Unpin hot path. It exists so
	// Resize and Clear can refuse deterministically while any page is pinned
	// without sweeping every stripe (see Resize), and so tests can assert
	// pin balance cheaply under contention.
	pins atomic.Int64

	reads  atomic.Uint64
	writes atomic.Uint64
	hits   atomic.Uint64
	// evictions counts cached pages displaced by the clock to make room for
	// another page. It is observability-only (not part of Stats, so existing
	// I/O accounting and its determinism pins are untouched).
	evictions atomic.Uint64
	// prefetches counts pages loaded by Prefetch. Like evictions it lives
	// outside Stats: a prefetch is a speculative transfer issued by the
	// opt-in readahead path, and keeping it out of Reads means the paper's
	// I/O figures are a function of demand fetches only (a later Fetch of a
	// prefetched page counts as a Hit — which is exactly the behavioural
	// change readahead exists to cause, and why it is off by default).
	prefetches atomic.Uint64
}

// NewPool creates a pool with nframes frames (DefaultPoolFrames if
// nframes <= 0) over the given store, as a single lock stripe: replacement
// behaves exactly like one global clock, which keeps per-query I/O counts
// identical to the paper's discipline.
func NewPool(store *Store, nframes int) *Pool {
	return NewStripedPool(store, nframes, 1)
}

// NewStripedPool creates a pool whose frames are spread over nshards lock
// stripes (clamped to [1, nframes]). Use more than one stripe for pools
// shared by concurrent readers and writers; use NewPool (one stripe) when
// exact global-clock replacement matters more than lock contention.
func NewStripedPool(store *Store, nframes, nshards int) *Pool {
	if nframes <= 0 {
		nframes = DefaultPoolFrames
	}
	if nshards < 1 {
		nshards = 1
	}
	if nshards > nframes {
		nshards = nframes
	}
	p := &Pool{store: store, shards: make([]shard, nshards), nframes: nframes}
	p.initShards()
	return p
}

// NewSharedPool creates a pool meant to be shared by many concurrent
// requests — the serving layer's one big hot-page cache — with the given
// replacement policy. Frame count and stripe count are clamped exactly as in
// NewStripedPool. The policy is fixed for the pool's lifetime; for GDSF,
// install a cost estimator with SetCostFunc before sharing the pool.
//
// A shared pool differs from the figures path's per-query pools only in
// policy: pin-safety, striping and I/O accounting are identical. Per-request
// I/O attribution over a shared pool uses Session views (see Session), since
// a Stats() delta on the pool itself would interleave all requests.
func NewSharedPool(store *Store, nframes, nshards int, policy Policy) *Pool {
	p := NewStripedPool(store, nframes, nshards)
	p.policy = policy
	return p
}

// Policy returns the pool's replacement policy.
func (p *Pool) Policy() Policy { return p.policy }

// SetCostFunc installs the GDSF cost estimator. It must be called before the
// pool is shared (it is not synchronized with concurrent fetches); pools
// under other policies ignore it. A nil CostFunc means every page costs 1.
func (p *Pool) SetCostFunc(fn CostFunc) { p.costFn = fn }

// pageCost evaluates the cost function for a freshly admitted page.
func (p *Pool) pageCost(pid PageID, data []byte) float64 {
	if p.costFn == nil {
		return 1
	}
	if c := p.costFn(pid, data); c > 0 {
		return c
	}
	return 1
}

// initShards distributes p.nframes frames across the shard slice and resets
// every table and clock hand.
func (p *Pool) initShards() {
	n := len(p.shards)
	base, extra := p.nframes/n, p.nframes%n
	for i := range p.shards {
		c := base
		if i < extra {
			c++
		}
		sh := &p.shards[i]
		sh.frames = make([]frame, c)
		for j := range sh.frames {
			sh.frames[j].data = make([]byte, PageSize)
		}
		sh.table = make(map[PageID]int, c)
		sh.hand = 0
	}
}

// shardFor returns the stripe owning pid. The mapping is a fixed hash: it
// must never change for the lifetime of the pool, or a page could be cached
// twice.
func (p *Pool) shardFor(pid PageID) *shard {
	if len(p.shards) == 1 {
		return &p.shards[0]
	}
	h := uint64(pid) * 0x9E3779B97F4A7C15 // Fibonacci hashing; spreads sequential pids
	return &p.shards[(h>>32)%uint64(len(p.shards))]
}

// Store returns the underlying page store.
func (p *Pool) Store() *Store { return p.store }

// Frames returns the pool capacity across all stripes.
func (p *Pool) Frames() int { return p.nframes }

// Shards returns the number of lock stripes.
func (p *Pool) Shards() int { return len(p.shards) }

// Page is a pinned page image. Data aliases the pool frame directly; it is
// valid until Unpin and must not be retained afterwards.
type Page struct {
	ID   PageID
	Data []byte
	pool *Pool
	sh   *shard
	idx  int
}

// Fetch pins the page in the pool, reading it from the store on a miss.
func (p *Pool) Fetch(pid PageID) (*Page, error) {
	pg, _, err := p.fetch(pid)
	return pg, err
}

// fetch is Fetch plus a hit indicator, so Session views can tally
// per-request I/O locally instead of diffing the pool's shared counters
// (which interleave all concurrent requests).
func (p *Pool) fetch(pid PageID) (*Page, bool, error) {
	sh := p.shardFor(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if idx, ok := sh.table[pid]; ok {
		f := &sh.frames[idx]
		f.pins++
		f.ref = true
		p.touchLocked(sh, f)
		p.pins.Add(1)
		p.hits.Add(1)
		return &Page{ID: pid, Data: f.data, pool: p, sh: sh, idx: idx}, true, nil
	}
	idx, err := p.evict(sh)
	if err != nil {
		return nil, false, err
	}
	f := &sh.frames[idx]
	if err := p.store.ReadAt(pid, f.data); err != nil {
		// Leave the shard exactly as if the fetch never happened: drop any
		// stale table entry for the page and fully reset the frame so a later
		// fetch can reuse it with no leftover dirty/ref/pin state.
		delete(sh.table, pid)
		f.pid = InvalidPage
		f.pins = 0
		f.ref = false
		f.dirty = false
		return nil, false, err
	}
	p.reads.Add(1)
	f.pid = pid
	f.pins = 1
	f.ref = true
	f.dirty = false
	p.admitLocked(sh, f)
	p.pins.Add(1)
	sh.table[pid] = idx
	return &Page{ID: pid, Data: f.data, pool: p, sh: sh, idx: idx}, false, nil
}

// touchLocked updates replacement metadata on a frame hit. Must be called
// with sh.mu held. CLOCK is handled entirely by the caller's f.ref = true —
// the exact pre-policy code path, so figure pools stay bit-identical.
func (p *Pool) touchLocked(sh *shard, f *frame) {
	switch p.policy {
	case LRU:
		sh.tick++
		f.stamp = sh.tick
	case GDSF:
		sh.tick++
		f.stamp = sh.tick
		f.freq++
		f.prio = sh.inflate + float64(f.freq)*f.cost
	}
}

// admitLocked initializes replacement metadata for a freshly installed
// frame (pid and data must already be set). Must be called with sh.mu held.
func (p *Pool) admitLocked(sh *shard, f *frame) {
	switch p.policy {
	case LRU:
		sh.tick++
		f.stamp = sh.tick
	case GDSF:
		sh.tick++
		f.stamp = sh.tick
		f.freq = 1
		f.cost = p.pageCost(f.pid, f.data)
		f.prio = sh.inflate + f.cost
	}
}

// Prefetch loads the page into the pool without pinning it and without
// counting a demand read: the transfer is recorded in the Prefetches()
// counter, not in Stats.Reads. Prefetching a page already in the pool is a
// no-op (no counter moves, reference bits untouched). The frame is installed
// unpinned with its reference bit set, so it survives one clock sweep — long
// enough for the imminent demand Fetch the caller is hinting at, which will
// then count as a Hit. Used by the opt-in B+-tree leaf readahead
// (DESIGN.md §15); never called on the default path.
func (p *Pool) Prefetch(pid PageID) error {
	sh := p.shardFor(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.table[pid]; ok {
		return nil
	}
	idx, err := p.evict(sh)
	if err != nil {
		return err
	}
	f := &sh.frames[idx]
	if err := p.store.ReadAt(pid, f.data); err != nil {
		// Same recovery as Fetch: leave the shard as if nothing happened.
		delete(sh.table, pid)
		f.pid = InvalidPage
		f.pins = 0
		f.ref = false
		f.dirty = false
		return err
	}
	p.prefetches.Add(1)
	f.pid = pid
	f.pins = 0
	f.ref = true
	f.dirty = false
	p.admitLocked(sh, f)
	sh.table[pid] = idx
	return nil
}

// NewPage allocates a fresh zeroed page in the store and pins it without a
// store read (materializing a brand-new page costs no input I/O; it will
// cost a write when evicted or flushed).
func (p *Pool) NewPage() (*Page, error) {
	pid := p.store.Allocate()
	sh := p.shardFor(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, err := p.evict(sh)
	if err != nil {
		// The new page never became visible; release it so the store is
		// unchanged by the failed call.
		if ferr := p.store.Free(pid); ferr != nil {
			return nil, errors.Join(err, ferr)
		}
		return nil, err
	}
	f := &sh.frames[idx]
	clear(f.data)
	f.pid = pid
	f.pins = 1
	f.ref = true
	f.dirty = true
	p.admitLocked(sh, f)
	p.pins.Add(1)
	sh.table[pid] = idx
	return &Page{ID: pid, Data: f.data, pool: p, sh: sh, idx: idx}, nil
}

// Unpin releases one pin on the page. If dirty is true the frame is marked
// for write-back on eviction and the page's store version is bumped, which
// invalidates any decoded-object cache entry for the page (see
// Store.BumpVersion). Unpinning an unpinned page panics: it is a
// use-after-release bug in the caller.
func (pg *Page) Unpin(dirty bool) {
	sh := pg.sh
	sh.mu.Lock()
	f := &sh.frames[pg.idx]
	if f.pid != pg.ID || f.pins <= 0 {
		sh.mu.Unlock()
		panic(fmt.Sprintf("pager: unpin of page %d not pinned in frame %d", pg.ID, pg.idx))
	}
	f.pins--
	pg.pool.pins.Add(-1)
	if dirty {
		f.dirty = true
	}
	sh.mu.Unlock()
	if dirty {
		pg.pool.store.BumpVersion(pg.ID)
	}
}

// FreePage removes the page from the pool (it must not be pinned) and
// releases it in the store.
func (p *Pool) FreePage(pid PageID) error {
	sh := p.shardFor(pid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if idx, ok := sh.table[pid]; ok {
		f := &sh.frames[idx]
		if f.pins > 0 {
			return fmt.Errorf("pager: freeing pinned page %d", pid)
		}
		delete(sh.table, pid)
		f.pid = InvalidPage
		f.dirty = false
	}
	return p.store.Free(pid)
}

// FlushAll writes every dirty unpinned frame back to the store. It returns
// an error if a dirty page is still pinned, which indicates a pin leak.
// Shards are flushed one at a time in stripe order.
func (p *Pool) FlushAll() error {
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			f := &sh.frames[i]
			if f.pid == InvalidPage || !f.dirty {
				continue
			}
			if f.pins > 0 {
				sh.mu.Unlock()
				return fmt.Errorf("pager: flush with page %d still pinned", f.pid)
			}
			if err := p.store.writeBack(f.pid, f.data); err != nil {
				sh.mu.Unlock()
				return err
			}
			p.writes.Add(1)
			f.dirty = false
		}
		sh.mu.Unlock()
	}
	return nil
}

// Stats returns a snapshot of the I/O counters. Each counter is read
// atomically; with operations in flight the three counters may be from
// slightly different instants, but each is individually exact.
func (p *Pool) Stats() Stats {
	return Stats{Reads: p.reads.Load(), Writes: p.writes.Load(), Hits: p.hits.Load()}
}

// Evictions reports how many cached pages the clock has displaced to make
// room for others over the pool's lifetime. It is an observability counter,
// deliberately outside Stats: the paper's I/O metric and its determinism
// pins never depend on it.
func (p *Pool) Evictions() uint64 { return p.evictions.Load() }

// Prefetches reports how many pages Prefetch has loaded over the pool's
// lifetime. Observability-only, outside Stats (see Prefetch).
func (p *Pool) Prefetches() uint64 { return p.prefetches.Load() }

// ResetStats zeroes the I/O counters (the pool contents are untouched, so a
// query following a reset runs against a warm pool, as in the paper).
// The eviction counter is lifetime-scoped and not reset.
func (p *Pool) ResetStats() {
	p.reads.Store(0)
	p.writes.Store(0)
	p.hits.Store(0)
}

// Clear writes back all dirty frames and then drops every cached page, so
// subsequent fetches run against a cold cache. The paper's evaluation
// allocates a buffer pool "to each query"; the experiment harness models that
// by clearing the pool between queries (or, equivalently, giving each query a
// fresh pool view). Clearing fails if any page is pinned: refusal is checked
// up front on the atomic pin counter — so a pin held across the whole call
// fails it deterministically, even under concurrency — and again per frame
// under each stripe lock, which catches pins taken after the first check.
// Shards are cleared one at a time; Clear must not race with writers.
func (p *Pool) Clear() error {
	if pins := p.pins.Load(); pins > 0 {
		return fmt.Errorf("pager: clear with %d pin(s) outstanding (pinned pages must be released first)", pins)
	}
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		err := p.clearShard(sh)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Resize changes the pool capacity, clearing it in the process. It is used
// to build an index under a large pool and then query it under the paper's
// 100-frame pool. The stripe count is preserved (clamped to the new frame
// count). Resize must not race with any other pool use.
//
// Resizing while any page is pinned is refused up front, before any shard is
// touched: a pinned Page aliases a frame that Resize would reallocate, and
// Clear's per-shard error path would otherwise leave earlier stripes emptied
// (their clock hands reset) while later ones still hold pages — a silently
// half-cleared pool. The check reads the atomic pin counter, not a stripe
// sweep, so the refusal is deterministic even while other goroutines hold
// pins: a pin acquired before Resize and released after it is guaranteed to
// be observed, and on error the pool is exactly as it was. A pin taken
// concurrently with the check may land either side of it; the per-frame
// checks inside Clear still refuse before any frame is dropped, so a pinned
// frame is never reallocated under its holder.
func (p *Pool) Resize(nframes int) error {
	if nframes <= 0 {
		nframes = DefaultPoolFrames
	}
	if pins := p.pins.Load(); pins > 0 {
		return fmt.Errorf("pager: resize with %d pin(s) outstanding (pinned pages must be released first)", pins)
	}
	if err := p.Clear(); err != nil {
		return err
	}
	n := len(p.shards)
	if n > nframes {
		n = nframes
	}
	p.shards = make([]shard, n)
	p.nframes = nframes
	p.initShards()
	return nil
}

// clearShard must be called with sh.mu held.
func (p *Pool) clearShard(sh *shard) error {
	for i := range sh.frames {
		f := &sh.frames[i]
		if f.pid == InvalidPage {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("pager: clear with page %d still pinned", f.pid)
		}
		if f.dirty {
			if err := p.store.writeBack(f.pid, f.data); err != nil {
				return err
			}
			p.writes.Add(1)
		}
		delete(sh.table, f.pid)
		f.pid = InvalidPage
		f.dirty = false
		f.ref = false
	}
	return nil
}

// PinnedPages reports how many frames are currently pinned; useful for leak
// detection in tests.
func (p *Pool) PinnedPages() int {
	n := 0
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		for i := range sh.frames {
			if sh.frames[i].pid != InvalidPage && sh.frames[i].pins > 0 {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Pins reports the number of outstanding page pins across all stripes, from
// the atomic counter the hot path maintains (no stripe locks taken).
func (p *Pool) Pins() int64 { return p.pins.Load() }

// CachedPages reports how many pages are currently resident across all
// stripes — the pool's occupancy, for the serving layer's gauges. Stripes
// are counted one at a time, so the total is exact only when no fetch is in
// flight (the same contract as Stats).
func (p *Pool) CachedPages() int {
	n := 0
	for si := range p.shards {
		sh := &p.shards[si]
		sh.mu.Lock()
		n += len(sh.table)
		sh.mu.Unlock()
	}
	return n
}

// evict selects a victim frame in the shard under the pool's replacement
// policy, writing it back if dirty, and returns its index with the frame
// detached from the shard's page table. A pinned frame is never selected,
// whatever the policy: the pin check happens under the same stripe lock
// every Fetch pins under, so a frame observed unpinned here cannot gain a
// pin before the caller overwrites it. Must be called with sh.mu held.
func (p *Pool) evict(sh *shard) (int, error) {
	if p.policy == CLOCK {
		return p.evictClock(sh)
	}
	return p.evictScan(sh)
}

// evictClock is the paper-era clock (second chance) victim selection,
// byte-for-byte the pre-policy algorithm: the figures' I/O counts depend on
// its exact sweep order. Must be called with sh.mu held.
func (p *Pool) evictClock(sh *shard) (int, error) {
	// An empty frame is free to take without a sweep.
	// The clock makes at most two full sweeps: the first clears reference
	// bits, the second takes the first unpinned frame.
	for sweep := 0; sweep < 2*len(sh.frames); sweep++ {
		f := &sh.frames[sh.hand]
		idx := sh.hand
		sh.hand = (sh.hand + 1) % len(sh.frames)
		if f.pid == InvalidPage {
			return idx, nil
		}
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false // second chance
			continue
		}
		if f.dirty {
			if err := p.store.writeBack(f.pid, f.data); err != nil {
				return 0, err
			}
			p.writes.Add(1)
		}
		delete(sh.table, f.pid)
		f.pid = InvalidPage
		f.dirty = false
		p.evictions.Add(1)
		return idx, nil
	}
	return 0, ErrPoolExhausted
}

// evictScan is victim selection for the scan policies (LRU, GDSF): a free
// frame if one exists, otherwise the unpinned frame with the lowest stamp
// (LRU) or priority (GDSF, stamp-tie-broken so selection is deterministic
// for a given access history). On a GDSF eviction the stripe's inflation
// value is raised to the victim's priority — the greedy-dual aging step that
// lets newly admitted pages compete with old high-cost residents. Must be
// called with sh.mu held.
func (p *Pool) evictScan(sh *shard) (int, error) {
	victim := -1
	for i := range sh.frames {
		f := &sh.frames[i]
		if f.pid == InvalidPage {
			return i, nil
		}
		if f.pins > 0 {
			continue
		}
		if victim < 0 || p.worseThan(f, &sh.frames[victim]) {
			victim = i
		}
	}
	if victim < 0 {
		return 0, ErrPoolExhausted
	}
	f := &sh.frames[victim]
	if p.policy == GDSF && f.prio > sh.inflate {
		sh.inflate = f.prio
	}
	if f.dirty {
		if err := p.store.writeBack(f.pid, f.data); err != nil {
			return 0, err
		}
		p.writes.Add(1)
	}
	delete(sh.table, f.pid)
	f.pid = InvalidPage
	f.dirty = false
	f.ref = false
	p.evictions.Add(1)
	return victim, nil
}

// worseThan reports whether frame f is a better eviction victim than g
// under the pool's scan policy (lower stamp/priority loses its frame).
func (p *Pool) worseThan(f, g *frame) bool {
	if p.policy == GDSF {
		//ucatlint:ignore floatcmp equal priorities must fall through to the stamp tie-break; both operands are exact sums of the same admission arithmetic
		if f.prio != g.prio {
			return f.prio < g.prio
		}
	}
	return f.stamp < g.stamp
}

package pager

import (
	"errors"
	"testing"
)

// TestFetchFailedReadLeavesPoolConsistent: a Fetch whose store read fails
// (here: the page id was never allocated) must surface the store's error and
// leave the pool exactly as if the fetch never happened — no stale table
// entry, no pinned or dirty frame, and the evicted victim's write-back
// already durable.
func TestFetchFailedReadLeavesPoolConsistent(t *testing.T) {
	store := NewStore()
	pool := NewPool(store, 1) // one frame: the failed fetch must evict the victim

	// Cache a dirty page so the failing fetch has to evict + write back.
	pid := store.Allocate()
	pg, err := pool.Fetch(pid)
	if err != nil {
		t.Fatalf("Fetch(%d): %v", pid, err)
	}
	pg.Data[0] = 0xAB
	pg.Unpin(true)

	const bogus = PageID(999)
	if _, err := pool.Fetch(bogus); !errors.Is(err, ErrInvalidPage) {
		t.Fatalf("Fetch(bogus) err = %v, want ErrInvalidPage", err)
	}

	// No pin leak, and the victim's dirty byte reached the store.
	if got := pool.PinnedPages(); got != 0 {
		t.Errorf("pin leak after failed fetch: %d", got)
	}
	var buf [PageSize]byte
	if err := store.ReadAt(pid, buf[:]); err != nil {
		t.Fatalf("store.ReadAt(%d): %v", pid, err)
	}
	if buf[0] != 0xAB {
		t.Errorf("victim write-back lost: store byte = %#x, want 0xAB", buf[0])
	}

	// The pool still works: the valid page comes back with its data, read
	// from the store again (the failed fetch must not have cached anything).
	statsBefore := pool.Stats()
	pg, err = pool.Fetch(pid)
	if err != nil {
		t.Fatalf("re-Fetch(%d): %v", pid, err)
	}
	if pg.Data[0] != 0xAB {
		t.Errorf("re-fetched page byte = %#x, want 0xAB", pg.Data[0])
	}
	pg.Unpin(false)
	if d := pool.Stats().Sub(statsBefore); d.Reads != 1 || d.Hits != 0 {
		t.Errorf("re-fetch cost %+v, want exactly one read (no stale cache entry)", d)
	}

	// If the bogus id later becomes a real page, fetching it must return the
	// store's bytes, not remnants of the failed attempt.
	var lastPid PageID
	for lastPid < bogus {
		lastPid = store.Allocate()
	}
	pg, err = pool.Fetch(bogus)
	if err != nil {
		t.Fatalf("Fetch(%d) after allocation: %v", bogus, err)
	}
	if pg.Data[0] != 0 {
		t.Errorf("new page byte = %#x, want 0", pg.Data[0])
	}
	pg.Unpin(false)
}

// TestFetchFailedReadOnFreedPage: same contract when the page existed and
// was freed behind the pool's back.
func TestFetchFailedReadOnFreedPage(t *testing.T) {
	store := NewStore()
	pool := NewPool(store, 4)
	pid := store.Allocate()
	if err := store.Free(pid); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if _, err := pool.Fetch(pid); !errors.Is(err, ErrInvalidPage) {
		t.Fatalf("Fetch(freed) err = %v, want ErrInvalidPage", err)
	}
	if got := pool.PinnedPages(); got != 0 {
		t.Errorf("pin leak after failed fetch: %d", got)
	}
	if s := pool.Stats(); s.Reads != 0 {
		t.Errorf("failed fetch counted %d reads, want 0", s.Reads)
	}
}

package pager

import (
	"sync"
	"testing"
)

// TestStripedPoolShardMapping: shard geometry and the fixed pid→shard map.
func TestStripedPoolShardMapping(t *testing.T) {
	store := NewStore()
	pool := NewStripedPool(store, 64, 8)
	if got := pool.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}
	if got := pool.Frames(); got != 64 {
		t.Fatalf("Frames() = %d, want 64", got)
	}
	// The mapping must be stable: same pid, same shard, every time.
	for pid := PageID(1); pid < 1000; pid++ {
		if pool.shardFor(pid) != pool.shardFor(pid) {
			t.Fatalf("shardFor(%d) unstable", pid)
		}
	}
	// Clamping: more stripes than frames collapses to one stripe per frame;
	// non-positive stripe counts mean one stripe.
	if got := NewStripedPool(store, 4, 99).Shards(); got != 4 {
		t.Errorf("clamped Shards() = %d, want 4", got)
	}
	if got := NewStripedPool(store, 4, 0).Shards(); got != 1 {
		t.Errorf("zero-stripe Shards() = %d, want 1", got)
	}
	// Every frame must land in some shard (sum of shard sizes = nframes).
	total := 0
	for i := range pool.shards {
		total += len(pool.shards[i].frames)
	}
	if total != 64 {
		t.Errorf("shard frames sum to %d, want 64", total)
	}
}

// TestStripedPoolResizePreservesStripes: Resize keeps the stripe count
// (clamped to the new frame count) and leaves a fully usable pool.
func TestStripedPoolResizePreservesStripes(t *testing.T) {
	store := NewStore()
	pool := NewStripedPool(store, 64, 8)
	if err := pool.Resize(16); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	if got := pool.Shards(); got != 8 {
		t.Errorf("Shards() after resize = %d, want 8", got)
	}
	if err := pool.Resize(4); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	if got := pool.Shards(); got != 4 {
		t.Errorf("Shards() after shrink = %d, want 4 (clamped)", got)
	}
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage after resize: %v", err)
	}
	pg.Unpin(true)
	if err := pool.FlushAll(); err != nil {
		t.Errorf("FlushAll after resize: %v", err)
	}
}

// TestStripedPoolConcurrentFetch is the striped twin of
// TestPoolConcurrentFetch: many goroutines hammer a shared multi-stripe
// pool. Run with -race.
func TestStripedPoolConcurrentFetch(t *testing.T) {
	store := NewStore()
	pool := NewStripedPool(store, 64, 8)

	const numPages = 256
	pids := make([]PageID, numPages)
	for i := range pids {
		pg, err := pool.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		pg.Data[0] = byte(pg.ID)
		pids[i] = pg.ID
		pg.Unpin(true)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				pid := pids[(seed*3000+i*13)%numPages]
				pg, err := pool.Fetch(pid)
				if err != nil {
					errs <- err
					return
				}
				if pg.Data[0] != byte(pid) {
					errs <- errContent(pid)
					pg.Unpin(false)
					return
				}
				pg.Unpin(false)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("striped concurrent fetch: %v", err)
	}
	if got := pool.PinnedPages(); got != 0 {
		t.Errorf("pin leak: %d pages pinned", got)
	}
	if err := pool.FlushAll(); err != nil {
		t.Errorf("FlushAll: %v", err)
	}
	// Sanity on the atomic counters: every access was either a hit or a read.
	s := pool.Stats()
	if s.Reads+s.Hits < 8*3000 {
		t.Errorf("stats undercount: %+v, want ≥ %d fetches", s, 8*3000)
	}
}

// TestStripedPoolConcurrentMixed mixes NewPage, Fetch, Unpin and FreePage
// across goroutines on a striped pool, each goroutine owning its pages.
func TestStripedPoolConcurrentMixed(t *testing.T) {
	store := NewStore()
	pool := NewStripedPool(store, 64, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []PageID
			for i := 0; i < 300; i++ {
				pg, err := pool.NewPage()
				if err != nil {
					errs <- err
					return
				}
				pg.Data[1] = 0xCD
				mine = append(mine, pg.ID)
				pg.Unpin(true)
			}
			for _, pid := range mine {
				pg, err := pool.Fetch(pid)
				if err != nil {
					errs <- err
					return
				}
				if pg.Data[1] != 0xCD {
					errs <- errContent(pid)
					pg.Unpin(false)
					return
				}
				pg.Unpin(false)
				if err := pool.FreePage(pid); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("striped concurrent mixed: %v", err)
	}
	if store.NumPages() != 0 {
		t.Errorf("%d pages leaked", store.NumPages())
	}
}

// TestManyPoolsOneStore is the per-query-view scenario: N single-stripe
// pools read the same store concurrently (the store's RWMutex read path) and
// each pool's I/O accounting is private and exact.
func TestManyPoolsOneStore(t *testing.T) {
	store := NewStore()
	build := NewPool(store, 16)
	const numPages = 64
	pids := make([]PageID, numPages)
	for i := range pids {
		pg, err := build.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		pg.Data[0] = byte(pg.ID)
		pids[i] = pg.ID
		pg.Unpin(true)
	}
	if err := build.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	stats := make([]Stats, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			view := NewPool(store, 8) // private 8-frame view per "query"
			for i := 0; i < 1000; i++ {
				pid := pids[(g*1000+i*11)%numPages]
				pg, err := view.Fetch(pid)
				if err != nil {
					errs <- err
					return
				}
				if pg.Data[0] != byte(pid) {
					errs <- errContent(pid)
					pg.Unpin(false)
					return
				}
				pg.Unpin(false)
			}
			stats[g] = view.Stats()
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("many pools: %v", err)
	}
	for g, s := range stats {
		if s.Reads+s.Hits != 1000 {
			t.Errorf("view %d accounted %d fetches, want 1000 (%+v)", g, s.Reads+s.Hits, s)
		}
		if s.Writes != 0 {
			t.Errorf("view %d wrote %d pages on a read-only run", g, s.Writes)
		}
	}
}

// TestFreshPoolEqualsClearedPool is the rotation-invariance property the
// parallel harness rests on: over an identical access trace, a freshly built
// pool and a Clear()ed pool pay exactly the same reads and hits, regardless
// of where the cleared pool's clock hand was left.
func TestFreshPoolEqualsClearedPool(t *testing.T) {
	store := NewStore()
	build := NewPool(store, 8)
	const numPages = 32
	pids := make([]PageID, numPages)
	for i := range pids {
		pg, err := build.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		pids[i] = pg.ID
		pg.Unpin(true)
	}
	if err := build.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}

	trace := func(pool *Pool) Stats {
		t.Helper()
		before := pool.Stats()
		for i := 0; i < 500; i++ {
			pid := pids[(i*i+3*i)%numPages]
			pg, err := pool.Fetch(pid)
			if err != nil {
				t.Fatalf("Fetch(%d): %v", pid, err)
			}
			pg.Unpin(false)
		}
		return pool.Stats().Sub(before)
	}

	fresh := trace(NewPool(store, 4))

	// Run the cleared pool several times; each Clear leaves the hand wherever
	// the previous trace parked it.
	reused := NewPool(store, 4)
	for round := 0; round < 3; round++ {
		if err := reused.Clear(); err != nil {
			t.Fatalf("Clear: %v", err)
		}
		got := trace(reused)
		if got != fresh {
			t.Errorf("round %d: cleared-pool trace cost %+v, fresh pool %+v; must be identical", round, got, fresh)
		}
	}
}

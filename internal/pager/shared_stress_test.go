package pager

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestSharedPoolPinSafetyUnderContention hammers an undersized shared pool
// with concurrent readers under every replacement policy. Each reader pins a
// hot page, verifies the frame still carries that page's byte pattern (a
// victim scan that recycled a pinned frame would leave another page's stamp
// under the reader), pins a second page while still holding the first (so
// evictions race against live overlapping pins), and tallies its I/O in a
// private Session. Afterwards the session tallies must sum exactly to the
// pool's Stats delta, and every pin must be balanced. Run with -race: the
// detector turns any unlocked frame recycling into a hard failure.
func TestSharedPoolPinSafetyUnderContention(t *testing.T) {
	const (
		numPages = 64
		frames   = 12 // far fewer frames than pages: constant eviction
		stripes  = 2
		readers  = 8
	)
	iters := 400
	if testing.Short() {
		iters = 150
	}
	for _, pol := range Policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			store := NewStore()
			pids := mkPages(t, store, numPages)
			p := NewSharedPool(store, frames, stripes, pol)
			p.SetCostFunc(func(pid PageID, data []byte) float64 {
				return float64(pid%7) + 1 // arbitrary but deterministic costs
			})
			base := p.Stats()
			sessions := make([]*Session, readers)
			var wg sync.WaitGroup
			errCh := make(chan error, readers)
			for r := 0; r < readers; r++ {
				sess := p.Session()
				sessions[r] = sess
				wg.Add(1)
				go func(r int, sess *Session) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(r + 1)))
					for i := 0; i < iters; i++ {
						// Zipf-ish skew: half the traffic on a few hot pages,
						// so frames are contended rather than cycled.
						var pid PageID
						if rng.Intn(2) == 0 {
							pid = pids[rng.Intn(4)]
						} else {
							pid = pids[rng.Intn(numPages)]
						}
						pg, err := sess.Fetch(pid)
						if err != nil {
							errCh <- err
							return
						}
						checkStamp(t, pid, pg.Data)
						// Overlapping pin: grab a second page while the first
						// is held, re-verify the first, then release both.
						pid2 := pids[rng.Intn(numPages)]
						pg2, err := sess.Fetch(pid2)
						if err == nil {
							checkStamp(t, pid2, pg2.Data)
							pg2.Unpin(false)
						} else if !errors.Is(err, ErrPoolExhausted) {
							errCh <- err
							return
						}
						checkStamp(t, pid, pg.Data)
						pg.Unpin(false)
					}
				}(r, sess)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatalf("reader failed: %v", err)
			}
			var sum Stats
			for _, sess := range sessions {
				sum = sum.Add(sess.Stats())
			}
			delta := p.Stats().Sub(base)
			if delta != sum {
				t.Errorf("pool stats delta %+v != Σ session stats %+v", delta, sum)
			}
			if pins := p.Pins(); pins != 0 {
				t.Errorf("Pins() = %d after all readers released, want 0", pins)
			}
			if pinned := p.PinnedPages(); pinned != 0 {
				t.Errorf("PinnedPages() = %d, want 0", pinned)
			}
			if occ := p.CachedPages(); occ > frames {
				t.Errorf("CachedPages() = %d exceeds capacity %d", occ, frames)
			}
		})
	}
}

// TestResizeFailsDeterministicallyUnderConcurrentPinners is the documented
// Resize/Clear contract (satellite of DESIGN.md §18): while any pin is held
// across the call, Resize and Clear must fail — every time, under the race
// detector, not just sequentially — and must leave the pool untouched. Once
// the pins are released they must succeed.
func TestResizeFailsDeterministicallyUnderConcurrentPinners(t *testing.T) {
	const pinners = 4
	store := NewStore()
	pids := mkPages(t, store, 16)
	p := NewSharedPool(store, 8, 2, LRU)

	pinned := make(chan struct{}, pinners) // pinner → test: pin is held
	release := make(chan struct{})         // test → pinners: let go
	var wg sync.WaitGroup
	for i := 0; i < pinners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pg, err := p.Fetch(pids[i])
			if err != nil {
				t.Errorf("pinner %d: %v", i, err)
				pinned <- struct{}{}
				return
			}
			pinned <- struct{}{}
			<-release
			checkStamp(t, pids[i], pg.Data) // frame must have survived every Resize attempt
			pg.Unpin(false)
		}(i)
	}
	for i := 0; i < pinners; i++ {
		<-pinned
	}

	// All pins are now provably held across these calls: each must refuse.
	for try := 0; try < 20; try++ {
		if err := p.Resize(4); err == nil {
			t.Fatal("Resize succeeded with pins outstanding")
		}
		if err := p.Clear(); err == nil {
			t.Fatal("Clear succeeded with pins outstanding")
		}
	}
	if p.Frames() != 8 {
		t.Errorf("failed Resize changed capacity to %d", p.Frames())
	}

	close(release)
	wg.Wait()
	if err := p.Resize(4); err != nil {
		t.Errorf("Resize after release: %v", err)
	}
	if p.Frames() != 4 {
		t.Errorf("Frames() = %d after successful resize, want 4", p.Frames())
	}
	// The resized pool must be fully usable.
	pg, err := p.Fetch(pids[9])
	if err != nil {
		t.Fatalf("Fetch after resize: %v", err)
	}
	checkStamp(t, pids[9], pg.Data)
	pg.Unpin(false)
}

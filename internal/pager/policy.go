package pager

import "fmt"

// Policy selects a Pool's replacement policy. The zero value is CLOCK, the
// second-chance policy every figure in the paper's evaluation was measured
// under; pools built with NewPool/NewStripedPool always use it, so the
// experiment harness cannot drift. LRU and GDSF exist for the serving path's
// shared pool (NewSharedPool), where the workload is a concurrent mix of
// queries rather than the paper's one-query-one-pool discipline.
type Policy int

const (
	// CLOCK is second-chance replacement: a per-stripe hand sweeps the
	// frames, clearing reference bits on the first pass and taking the first
	// unreferenced unpinned frame on the second. It is the policy the paper's
	// I/O figures were produced under and the only one the figures path uses.
	CLOCK Policy = iota

	// LRU evicts the least recently used unpinned frame, tracked by a
	// per-stripe logical tick stamped on every fetch. Strict (not
	// approximated): the victim scan compares stamps across the whole stripe.
	LRU

	// GDSF is greedy-dual size-frequency replacement: each frame carries a
	// priority H = L + frequency × cost, where L is a per-stripe inflation
	// value set to the last victim's priority. Frames whose pages are
	// expensive to re-materialize (PDR-tree and B+-tree nodes, via the pool's
	// CostFunc) outlive cheap heap pages at equal recency, and the inflation
	// term ages out one-hit wonders. See DESIGN.md §18.
	GDSF
)

// Policies lists every replacement policy, in the order benchmarks sweep
// them.
var Policies = []Policy{CLOCK, LRU, GDSF}

// String returns the flag-friendly lowercase name.
func (p Policy) String() string {
	switch p {
	case CLOCK:
		return "clock"
	case LRU:
		return "lru"
	case GDSF:
		return "gdsf"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy name as spelled by String. The empty string
// parses as CLOCK, so an unset flag or config field means the default.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "clock":
		return CLOCK, nil
	case "lru":
		return LRU, nil
	case "gdsf":
		return GDSF, nil
	default:
		return CLOCK, fmt.Errorf("pager: unknown eviction policy %q (want clock|lru|gdsf)", s)
	}
}

// CostFunc estimates the cost of re-materializing a page after eviction, for
// GDSF replacement. It is called once per admission, under the stripe lock,
// with the page id and the freshly loaded page bytes; it must be fast, pure
// and must not retain data. Return values <= 0 are treated as 1.
type CostFunc func(pid PageID, data []byte) float64

package pager

// Session is a per-request View over a shared Pool that tallies its own I/O.
//
// The figures path gives every query a private Pool, so "this query's I/O"
// is just a Stats() delta on that pool. A shared pool interleaves every
// concurrent request in its counters; a delta over it would attribute other
// requests' traffic to this one (and race in obs.InstrumentView's per-fetch
// deltas). A Session solves both: every Fetch goes through the shared pool —
// caching, pinning and the pool's global counters behave exactly as if the
// pool had been used directly — but the hit/miss outcome of each fetch is
// also recorded in session-local counters that only this request reads.
//
// Stats() reports Reads and Hits only. Writes stay zero: serving is
// read-only, and an eviction write-back is pool-level work triggered by
// whichever request happened to need a frame — attributing it to that
// request would make per-request I/O depend on the interleaving.
//
// A Session is NOT safe for concurrent use (the pool behind it is); create
// one per request. The zero value is not usable; call Pool.Session.
type Session struct {
	pool  *Pool
	stats Stats
}

// Session returns a new per-request view over the pool with zeroed local
// counters.
func (p *Pool) Session() *Session { return &Session{pool: p} }

// Fetch pins the page in the shared pool (see Pool.Fetch) and records the
// hit/miss outcome locally. Unpin the returned page on the page itself, as
// always.
func (s *Session) Fetch(pid PageID) (*Page, error) {
	pg, hit, err := s.pool.fetch(pid)
	if err != nil {
		return nil, err
	}
	if hit {
		s.stats.Hits++
	} else {
		s.stats.Reads++
	}
	return pg, nil
}

// Prefetch forwards the readahead hint to the shared pool. Prefetched
// transfers stay outside Stats by the pool's contract, so nothing is tallied
// locally.
func (s *Session) Prefetch(pid PageID) error { return s.pool.Prefetch(pid) }

// Stats returns the I/O this session has performed: exact, goroutine-local,
// and independent of every other request on the shared pool.
func (s *Session) Stats() Stats { return s.stats }

// Pool returns the shared pool the session fetches through.
func (s *Session) Pool() *Pool { return s.pool }

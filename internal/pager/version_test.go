package pager

import (
	"errors"
	"strings"
	"testing"
)

// TestVersionBumpOnDirtyUnpin is the decode-cache invalidation contract:
// Unpin(true) is the one writer-side hook, Unpin(false) must not move the
// counter.
func TestVersionBumpOnDirtyUnpin(t *testing.T) {
	s := NewStore()
	p := NewPool(s, 4)
	pg, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	pid := pg.ID
	v0 := s.Version(pid)
	pg.Unpin(false)
	if got := s.Version(pid); got != v0 {
		t.Fatalf("clean unpin moved version: %d -> %d", v0, got)
	}
	pg, err = p.Fetch(pid)
	if err != nil {
		t.Fatal(err)
	}
	pg.Data[0] = 0xAB
	pg.Unpin(true)
	if got := s.Version(pid); got != v0+1 {
		t.Fatalf("dirty unpin: version = %d, want %d", got, v0+1)
	}
	// Write-back of the dirty frame must NOT bump again: the bytes are the
	// ones decoded copies were made from after the unpin-time bump.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := s.Version(pid); got != v0+1 {
		t.Fatalf("pool write-back moved version: %d, want %d", got, v0+1)
	}
}

// TestVersionMonotonicAcrossRecycle pins the property the (pid, version)
// cache key depends on: freeing a page and re-allocating its id never
// rewinds or reuses a version.
func TestVersionMonotonicAcrossRecycle(t *testing.T) {
	s := NewStore()
	pid := s.Allocate()
	if got := s.Version(pid); got != 0 {
		t.Fatalf("fresh page version = %d, want 0", got)
	}
	if err := s.WriteAt(pid, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	afterWrite := s.Version(pid)
	if afterWrite != 1 {
		t.Fatalf("after WriteAt: version = %d, want 1", afterWrite)
	}
	if err := s.Free(pid); err != nil {
		t.Fatal(err)
	}
	afterFree := s.Version(pid)
	if afterFree <= afterWrite {
		t.Fatalf("Free did not advance version: %d -> %d", afterWrite, afterFree)
	}
	pid2 := s.Allocate() // recycles pid
	if pid2 != pid {
		t.Fatalf("expected free-list recycling of %d, got %d", pid, pid2)
	}
	if got := s.Version(pid2); got <= afterFree {
		t.Fatalf("recycled allocate did not advance version: %d -> %d", afterFree, got)
	}
}

func TestVersionOutOfRange(t *testing.T) {
	s := NewStore()
	if got := s.Version(InvalidPage); got != 0 {
		t.Fatalf("Version(InvalidPage) = %d, want 0", got)
	}
	if got := s.Version(99); got != 0 {
		t.Fatalf("Version(unallocated) = %d, want 0", got)
	}
	s.BumpVersion(99) // must not panic
}

// TestPrefetchCountsSeparately pins the readahead accounting: a prefetch
// moves Prefetches(), not Stats.Reads, and the later demand Fetch is a Hit.
func TestPrefetchCountsSeparately(t *testing.T) {
	s := NewStore()
	pid := s.Allocate()
	p := NewPool(s, 4)
	if err := p.Prefetch(pid); err != nil {
		t.Fatal(err)
	}
	if got := p.Prefetches(); got != 1 {
		t.Fatalf("Prefetches = %d, want 1", got)
	}
	if st := p.Stats(); st.Reads != 0 || st.Hits != 0 {
		t.Fatalf("prefetch leaked into Stats: %v", st)
	}
	// Prefetching an already-cached page is a free no-op.
	if err := p.Prefetch(pid); err != nil {
		t.Fatal(err)
	}
	if got := p.Prefetches(); got != 1 {
		t.Fatalf("no-op prefetch counted: Prefetches = %d, want 1", got)
	}
	pg, err := p.Fetch(pid)
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
	if st := p.Stats(); st.Reads != 0 || st.Hits != 1 {
		t.Fatalf("demand fetch after prefetch: %v, want hits=1 reads=0", st)
	}
}

func TestPrefetchInvalidPage(t *testing.T) {
	s := NewStore()
	p := NewPool(s, 2)
	if err := p.Prefetch(42); !errors.Is(err, ErrInvalidPage) {
		t.Fatalf("Prefetch(invalid) = %v, want ErrInvalidPage", err)
	}
	// The failed prefetch must leave the pool usable.
	pid := s.Allocate()
	pg, err := p.Fetch(pid)
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
}

// TestResizePinnedFails is the regression test for Resize vs pinned frames:
// the resize must be refused with a clear error BEFORE any shard is cleared,
// so the pool (contents, stats, clock state) is untouched on failure.
func TestResizePinnedFails(t *testing.T) {
	s := NewStore()
	p := NewStripedPool(s, 8, 4)
	// Populate several shards, keep one page pinned.
	var pinned *Page
	for i := 0; i < 6; i++ {
		pg, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			pinned = pg
		} else {
			pg.Unpin(true)
		}
	}
	before := p.Stats()
	err := p.Resize(2)
	if err == nil {
		t.Fatal("Resize with a pinned page succeeded; want error")
	}
	if !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("Resize error %q does not mention pinned pages", err)
	}
	// Nothing may have changed: capacity, stats, and the pinned page's frame.
	if p.Frames() != 8 {
		t.Fatalf("failed Resize changed capacity to %d", p.Frames())
	}
	if got := p.Stats(); got != before {
		t.Fatalf("failed Resize moved stats: %v -> %v (a partial clear wrote back dirty frames)", before, got)
	}
	if p.PinnedPages() != 1 {
		t.Fatalf("PinnedPages = %d, want 1", p.PinnedPages())
	}
	// The pinned page must still be writable and unpinnable — its frame was
	// not reallocated out from under it.
	pinned.Data[0] = 0xCD
	pinned.Unpin(true)
	if err := p.Resize(2); err != nil {
		t.Fatalf("Resize after unpin: %v", err)
	}
	if p.Frames() != 2 {
		t.Fatalf("Frames = %d after successful resize, want 2", p.Frames())
	}
}

package pager

import (
	"errors"
	"strings"
	"testing"
)

func TestStoreAllocateFreeReuse(t *testing.T) {
	s := NewStore()
	p1 := s.Allocate()
	p2 := s.Allocate()
	if p1 == InvalidPage || p2 == InvalidPage || p1 == p2 {
		t.Fatalf("Allocate returned %d, %d", p1, p2)
	}
	if s.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", s.NumPages())
	}
	if err := s.Free(p1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if s.NumPages() != 1 {
		t.Errorf("NumPages after free = %d, want 1", s.NumPages())
	}
	p3 := s.Allocate()
	if p3 != p1 {
		t.Errorf("Allocate after free = %d, want reused id %d", p3, p1)
	}
}

func TestStoreFreedPageIsZeroOnReuse(t *testing.T) {
	s := NewStore()
	pid := s.Allocate()
	buf := make([]byte, PageSize)
	buf[0] = 0xFF
	if err := s.WriteAt(pid, buf); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := s.Free(pid); err != nil {
		t.Fatalf("Free: %v", err)
	}
	pid2 := s.Allocate()
	if pid2 != pid {
		t.Fatalf("expected id reuse")
	}
	if err := s.ReadAt(pid2, buf); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if buf[0] != 0 {
		t.Errorf("reused page not zeroed")
	}
}

func TestStoreInvalidAccess(t *testing.T) {
	s := NewStore()
	buf := make([]byte, PageSize)
	if err := s.ReadAt(InvalidPage, buf); !errors.Is(err, ErrInvalidPage) {
		t.Errorf("ReadAt(0) err = %v, want ErrInvalidPage", err)
	}
	if err := s.ReadAt(99, buf); !errors.Is(err, ErrInvalidPage) {
		t.Errorf("ReadAt(99) err = %v, want ErrInvalidPage", err)
	}
	pid := s.Allocate()
	if err := s.Free(pid); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := s.Free(pid); !errors.Is(err, ErrInvalidPage) {
		t.Errorf("double Free err = %v, want ErrInvalidPage", err)
	}
	if err := s.WriteAt(pid, buf); !errors.Is(err, ErrInvalidPage) {
		t.Errorf("WriteAt freed page err = %v, want ErrInvalidPage", err)
	}
}

func TestStoreRejectsWrongBufferSize(t *testing.T) {
	s := NewStore()
	pid := s.Allocate()
	if err := s.ReadAt(pid, make([]byte, 10)); err == nil {
		t.Errorf("ReadAt with short buffer succeeded")
	}
	if err := s.WriteAt(pid, make([]byte, 10)); err == nil {
		t.Errorf("WriteAt with short buffer succeeded")
	}
}

func TestPoolFetchCountsReadsAndHits(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 4)
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	pid := pg.ID
	pg.Data[0] = 42
	pg.Unpin(true)

	// Still cached: a fetch is a hit.
	pg, err = pool.Fetch(pid)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if pg.Data[0] != 42 {
		t.Errorf("page content lost in pool")
	}
	pg.Unpin(false)
	st := pool.Stats()
	if st.Reads != 0 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 0 reads 1 hit", st)
	}
}

func TestPoolEvictionWritesBackDirty(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 2)
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	pid := pg.ID
	pg.Data[0] = 7
	pg.Unpin(true)

	// Fill the pool with other pages to force eviction of pid.
	for i := 0; i < 4; i++ {
		q, err := pool.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		q.Unpin(false)
	}
	if pool.Stats().Writes == 0 {
		t.Errorf("dirty eviction did not count a write")
	}

	// Re-fetch: must come back from the store with contents intact.
	before := pool.Stats()
	pg, err = pool.Fetch(pid)
	if err != nil {
		t.Fatalf("Fetch after eviction: %v", err)
	}
	if pg.Data[0] != 7 {
		t.Errorf("written-back page lost contents")
	}
	pg.Unpin(false)
	if got := pool.Stats().Sub(before); got.Reads != 1 {
		t.Errorf("re-fetch stats = %+v, want 1 read", got)
	}
}

func TestPoolExhaustion(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 2)
	a, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	b, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	if _, err := pool.NewPage(); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("third NewPage err = %v, want ErrPoolExhausted", err)
	}
	a.Unpin(false)
	if _, err := pool.NewPage(); err != nil {
		t.Errorf("NewPage after unpin: %v", err)
	}
	b.Unpin(false)
}

func TestPoolDoubleUnpinPanics(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 2)
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	pg.Unpin(false)
	defer func() {
		if recover() == nil {
			t.Errorf("double Unpin did not panic")
		}
	}()
	pg.Unpin(false)
}

func TestPoolPinCountAllowsMultiplePins(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 2)
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	pg2, err := pool.Fetch(pg.ID)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if pool.PinnedPages() != 1 {
		t.Errorf("PinnedPages = %d, want 1", pool.PinnedPages())
	}
	pg.Unpin(false)
	if pool.PinnedPages() != 1 {
		t.Errorf("after one unpin PinnedPages = %d, want 1 (pin count 1 left)", pool.PinnedPages())
	}
	pg2.Unpin(true)
	if pool.PinnedPages() != 0 {
		t.Errorf("PinnedPages = %d, want 0", pool.PinnedPages())
	}
}

func TestPoolFreePage(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 2)
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	pid := pg.ID
	if err := pool.FreePage(pid); err == nil {
		t.Errorf("FreePage of pinned page succeeded")
	}
	pg.Unpin(false)
	if err := pool.FreePage(pid); err != nil {
		t.Fatalf("FreePage: %v", err)
	}
	if _, err := pool.Fetch(pid); !errors.Is(err, ErrInvalidPage) {
		t.Errorf("Fetch freed page err = %v, want ErrInvalidPage", err)
	}
}

func TestPoolFlushAll(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 4)
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	pid := pg.ID
	pg.Data[100] = 9
	pg.Unpin(true)
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	buf := make([]byte, PageSize)
	if err := s.ReadAt(pid, buf); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if buf[100] != 9 {
		t.Errorf("FlushAll did not persist page contents")
	}
	// Second flush is a no-op (page now clean).
	before := pool.Stats()
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("second FlushAll: %v", err)
	}
	if got := pool.Stats().Sub(before); got.Writes != 0 {
		t.Errorf("second flush wrote %d pages, want 0", got.Writes)
	}
}

func TestPoolFlushAllFailsOnPinnedDirty(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 4)
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	if err := pool.FlushAll(); err == nil {
		t.Errorf("FlushAll with pinned dirty page succeeded, want error")
	}
	pg.Unpin(false)
}

func TestPoolClockGivesSecondChance(t *testing.T) {
	// 3 frames, pages A,B,C fill them with the hand back at frame 0.
	// Inserting D sweeps once (clearing all reference bits), evicts A, and
	// leaves the hand pointing at B's frame. Re-referencing B sets its bit
	// again. Inserting E starts its sweep at B: a FIFO-at-hand policy would
	// evict B, but clock grants B a second chance and takes C instead.
	s := NewStore()
	pool := NewPool(s, 3)

	mk := func() PageID {
		pg, err := pool.NewPage()
		if err != nil {
			t.Fatalf("NewPage: %v", err)
		}
		pg.Unpin(false)
		return pg.ID
	}
	_ = mk()  // A
	b := mk() // B
	_ = mk()  // C
	_ = mk()  // D: evicts A, hand now at B's frame

	pg, err := pool.Fetch(b)
	if err != nil {
		t.Fatalf("Fetch b: %v", err)
	}
	pg.Unpin(false)

	_ = mk() // E: must evict C, not B

	before := pool.Stats()
	pg, err = pool.Fetch(b)
	if err != nil {
		t.Fatalf("Fetch b after E: %v", err)
	}
	pg.Unpin(false)
	got := pool.Stats().Sub(before)
	if got.Hits != 1 || got.Reads != 0 {
		t.Errorf("B was evicted despite second chance (stats %+v)", got)
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{Reads: 5, Writes: 3, Hits: 10}
	b := Stats{Reads: 2, Writes: 1, Hits: 4}
	if got := a.Sub(b); got != (Stats{3, 2, 6}) {
		t.Errorf("Sub = %+v", got)
	}
	if got := a.Add(b); got != (Stats{7, 4, 14}) {
		t.Errorf("Add = %+v", got)
	}
	if a.IOs() != 8 {
		t.Errorf("IOs = %d, want 8", a.IOs())
	}
	if a.String() == "" {
		t.Errorf("String empty")
	}
}

func TestStatsHitRate(t *testing.T) {
	if hr := (Stats{}).HitRate(); hr != 0 {
		t.Errorf("empty HitRate = %g, want 0", hr)
	}
	s := Stats{Reads: 25, Hits: 75, Writes: 1000}
	if hr := s.HitRate(); hr != 0.75 {
		t.Errorf("HitRate = %g, want 0.75 (writes must not count)", hr)
	}
	if got := s.String(); !strings.Contains(got, "hitrate=0.750") {
		t.Errorf("String() = %q, missing hitrate", got)
	}
}

func TestPoolEvictionsCounter(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 2)
	pids := make([]PageID, 4)
	for i := range pids {
		pids[i] = s.Allocate()
	}
	// Touch three distinct pages through a two-frame pool: the third fetch
	// must displace one cached page.
	for _, pid := range pids[:3] {
		pg, err := pool.Fetch(pid)
		if err != nil {
			t.Fatal(err)
		}
		pg.Unpin(false)
	}
	if ev := pool.Evictions(); ev != 1 {
		t.Errorf("Evictions = %d, want 1", ev)
	}
	// Evictions are deliberately NOT part of Stats: the paper's I/O figures
	// count reads and write-backs only, and the determinism pins depend on it.
	if st := pool.Stats(); st != (Stats{Reads: 3}) {
		t.Errorf("Stats = %+v, want reads-only accounting", st)
	}
	// A fourth distinct page cannot be cached, so the full pool must evict
	// again to admit it.
	pg, err := pool.Fetch(pids[3])
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
	if ev := pool.Evictions(); ev != 2 {
		t.Errorf("Evictions after fourth page = %d, want 2", ev)
	}
}

func TestResetStatsKeepsPoolWarm(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 4)
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	pid := pg.ID
	pg.Unpin(false)
	pool.ResetStats()
	pg, err = pool.Fetch(pid)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	pg.Unpin(false)
	st := pool.Stats()
	if st.Reads != 0 || st.Hits != 1 {
		t.Errorf("after reset, fetch of warm page: %+v, want a hit", st)
	}
}

func TestPoolClear(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 4)
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	pid := pg.ID
	pg.Data[3] = 5

	// Clear with a pinned page must fail.
	if err := pool.Clear(); err == nil {
		t.Errorf("Clear with pinned page succeeded")
	}
	pg.Unpin(true)
	if err := pool.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}

	// Contents persisted, but the next fetch is a cold read.
	before := pool.Stats()
	pg, err = pool.Fetch(pid)
	if err != nil {
		t.Fatalf("Fetch after clear: %v", err)
	}
	if pg.Data[3] != 5 {
		t.Errorf("Clear lost page contents")
	}
	pg.Unpin(false)
	if got := pool.Stats().Sub(before); got.Reads != 1 || got.Hits != 0 {
		t.Errorf("fetch after clear: %+v, want one cold read", got)
	}
}

func TestPoolResize(t *testing.T) {
	s := NewStore()
	pool := NewPool(s, 2)
	pg, err := pool.NewPage()
	if err != nil {
		t.Fatalf("NewPage: %v", err)
	}
	pid := pg.ID
	pg.Data[0] = 1
	pg.Unpin(true)
	if err := pool.Resize(8); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	if pool.Frames() != 8 {
		t.Errorf("Frames = %d, want 8", pool.Frames())
	}
	pg, err = pool.Fetch(pid)
	if err != nil {
		t.Fatalf("Fetch after resize: %v", err)
	}
	if pg.Data[0] != 1 {
		t.Errorf("Resize lost page contents")
	}
	pg.Unpin(false)
	if err := pool.Resize(0); err != nil {
		t.Fatalf("Resize(0): %v", err)
	}
	if pool.Frames() != DefaultPoolFrames {
		t.Errorf("Resize(0) frames = %d, want default %d", pool.Frames(), DefaultPoolFrames)
	}
}

func TestNewPoolDefaults(t *testing.T) {
	pool := NewPool(NewStore(), 0)
	if pool.Frames() != DefaultPoolFrames {
		t.Errorf("default frames = %d, want %d", pool.Frames(), DefaultPoolFrames)
	}
	if pool.Store() == nil {
		t.Errorf("Store() returned nil")
	}
}

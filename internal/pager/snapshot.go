package pager

import "fmt"

// Snapshot returns the raw page images (nil entries are freed pages) and the
// free list, for persistence. Callers must flush any pools over this store
// first so the images are current; the returned slices are deep copies.
func (s *Store) Snapshot() (pages [][]byte, free []PageID) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pages = make([][]byte, len(s.pages))
	for i, p := range s.pages {
		if p == nil {
			continue
		}
		cp := make([]byte, PageSize)
		copy(cp, p)
		pages[i] = cp
	}
	free = append([]PageID(nil), s.free...)
	return pages, free
}

// RestoreStore rebuilds a store from a snapshot. Page images must be
// PageSize bytes (or nil for freed slots), and the free list must name
// exactly the nil slots.
func RestoreStore(pages [][]byte, free []PageID) (*Store, error) {
	s := NewStore()
	s.pages = make([][]byte, len(pages))
	freeSet := make(map[PageID]bool, len(free))
	for _, f := range free {
		if f == InvalidPage || int(f) > len(pages) {
			return nil, fmt.Errorf("pager: free list names invalid page %d", f)
		}
		freeSet[f] = true
	}
	for i, p := range pages {
		pid := PageID(i + 1)
		if p == nil {
			if !freeSet[pid] {
				return nil, fmt.Errorf("pager: page %d is nil but not on the free list", pid)
			}
			continue
		}
		if len(p) != PageSize {
			return nil, fmt.Errorf("pager: page %d image is %d bytes, want %d", pid, len(p), PageSize)
		}
		if freeSet[pid] {
			return nil, fmt.Errorf("pager: page %d is on the free list but has an image", pid)
		}
		cp := make([]byte, PageSize)
		copy(cp, p)
		s.pages[i] = cp
	}
	s.free = append([]PageID(nil), free...)
	// Versions restart at zero: a restored store has no live pool or decode
	// cache over it yet, so no stale (PageID, version) keys can exist.
	s.versions = make([]uint64, len(pages))
	return s, nil
}

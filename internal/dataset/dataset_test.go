package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformShape(t *testing.T) {
	d := Uniform(1, 1000)
	if d.Domain != 5 || len(d.Tuples) != 1000 {
		t.Fatalf("Uniform: domain=%d n=%d", d.Domain, len(d.Tuples))
	}
	for i, u := range d.Tuples {
		if u.Len() != 5 {
			t.Fatalf("tuple %d has %d non-zero items, want 5 (dense)", i, u.Len())
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("tuple %d invalid: %v", i, err)
		}
		if math.Abs(u.Mass()-1) > 1e-9 {
			t.Fatalf("tuple %d mass %g", i, u.Mass())
		}
	}
}

func TestPairwiseShape(t *testing.T) {
	d := Pairwise(2, 1000)
	combos := map[[2]uint32]bool{}
	for i, u := range d.Tuples {
		if u.Len() != 2 {
			t.Fatalf("tuple %d has %d items, want 2", i, u.Len())
		}
		ps := u.Pairs()
		// Roughly equal probabilities.
		if math.Abs(ps[0].Prob-ps[1].Prob) > 0.11 {
			t.Errorf("tuple %d probabilities %g/%g not roughly equal", i, ps[0].Prob, ps[1].Prob)
		}
		combos[[2]uint32{ps[0].Item, ps[1].Item}] = true
	}
	if len(combos) > 5 {
		t.Errorf("Pairwise produced %d distinct combinations, want at most 5", len(combos))
	}
}

func TestGen3FillFactor(t *testing.T) {
	if f := gen3Fill(10); f != 3 {
		t.Errorf("fill(10) = %g, want 3", f)
	}
	if f := gen3Fill(500); f != 10 {
		t.Errorf("fill(500) = %g, want 10", f)
	}
	if f := gen3Fill(100); f <= 3 || f >= 10 {
		t.Errorf("fill(100) = %g, want in (3, 10)", f)
	}

	for _, domain := range []int{5, 10, 50, 200, 500} {
		d := Gen3(3, 2000, domain)
		var total float64
		for i, u := range d.Tuples {
			if err := u.Validate(); err != nil {
				t.Fatalf("domain %d tuple %d invalid: %v", domain, i, err)
			}
			if mx, ok := u.MaxItem(); ok && int(mx) >= domain {
				t.Fatalf("domain %d tuple %d has item %d outside domain", domain, i, mx)
			}
			total += float64(u.Len())
		}
		mean := total / float64(len(d.Tuples))
		want := gen3Fill(domain)
		// Geometric sizes truncated at the domain; the mean should be in the
		// right ballpark.
		if mean < want*0.5 || mean > want*1.6 {
			t.Errorf("domain %d: mean fill %g, expected near %g", domain, mean, want)
		}
	}
}

func TestCRM1Sparse(t *testing.T) {
	d := CRM1Like(4, 5000)
	if d.Domain != CRMCategories {
		t.Fatalf("domain = %d", d.Domain)
	}
	var totalLen, domProb float64
	for i, u := range d.Tuples {
		if err := u.Validate(); err != nil {
			t.Fatalf("tuple %d invalid: %v", i, err)
		}
		totalLen += float64(u.Len())
		_, p, err := u.Mode()
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		domProb += p
	}
	meanLen := totalLen / float64(len(d.Tuples))
	meanDom := domProb / float64(len(d.Tuples))
	if meanLen > 4 {
		t.Errorf("CRM1 mean support %g, want sparse (< 4)", meanLen)
	}
	if meanDom < 0.55 {
		t.Errorf("CRM1 mean dominant probability %g, want confident (> 0.55)", meanDom)
	}
}

func TestCRM2Dense(t *testing.T) {
	d := CRM2Like(5, 3000)
	var totalLen float64
	for i, u := range d.Tuples {
		if err := u.Validate(); err != nil {
			t.Fatalf("tuple %d invalid: %v", i, err)
		}
		totalLen += float64(u.Len())
	}
	meanLen := totalLen / float64(len(d.Tuples))
	if meanLen < 10 || meanLen > 30 {
		t.Errorf("CRM2 mean support %g, want ~15 of 50 (dense relative to CRM1)", meanLen)
	}
}

func TestCRMContrast(t *testing.T) {
	// The property Figure 6 vs 7 rests on: CRM1 much sparser than CRM2.
	c1 := CRM1Like(6, 2000)
	c2 := CRM2Like(6, 2000)
	mean := func(d *Dataset) float64 {
		var s float64
		for _, u := range d.Tuples {
			s += float64(u.Len())
		}
		return s / float64(len(d.Tuples))
	}
	m1, m2 := mean(c1), mean(c2)
	if m2 < 8*m1 {
		t.Errorf("density contrast too weak: CRM1 %g vs CRM2 %g non-zero items", m1, m2)
	}
}

func TestDeterminism(t *testing.T) {
	a := Uniform(42, 100)
	b := Uniform(42, 100)
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			t.Fatalf("same seed produced different tuples at %d", i)
		}
	}
	c := Uniform(43, 100)
	same := true
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(c.Tuples[i]) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical datasets")
	}
}

func TestQueryDrawsFromDataset(t *testing.T) {
	d := Pairwise(7, 50)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		q := d.Query(r)
		found := false
		for _, u := range d.Tuples {
			if u.Equal(q) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("Query returned a UDA not in the dataset")
		}
	}
}

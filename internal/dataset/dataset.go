// Package dataset generates the workloads of the paper's evaluation (§4).
//
// The two synthetic extremes:
//
//   - Uniform: 10k tuples over a 5-item domain, every item's probability
//     chosen randomly (dense, unstructured — the inverted index's worst
//     case).
//   - Pairwise: 10k tuples over 5 items, each tuple holding exactly 2
//     non-zero items with roughly equal probabilities, drawn from only 5
//     distinct item combinations (sparse, highly clustered).
//
// Gen3 is the domain-size scaling family: item groups are picked at random
// from the domain, group sizes are geometrically distributed with an
// expected fill factor that grows from 3 (at domain 10) to 10 (at domain
// 500), and probabilities inside a group are random.
//
// The paper's real datasets are 100k customer-complaint texts from a cell
// phone carrier, mapped to 50 categories by a trained classifier (CRM1) and
// by unsupervised fuzzy clustering (CRM2). That corpus is proprietary, so
// CRM1Like and CRM2Like reproduce the property the paper credits for the
// indexes' behaviour: CRM1 is sparse and confident ("exhibits less
// uncertainty … a sparse dataset"), CRM2 is dense and high-entropy ("more
// dense", ~10× more expensive to query). CRM1Like draws a dominant class
// with a short geometric tail of runners-up over Zipf-skewed class
// popularity; CRM2Like draws near-complete fuzzy membership vectors with a
// boosted home cluster.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"ucat/internal/uda"
)

// Paper-standard sizes.
const (
	// SyntheticSize is the tuple count of the Uniform and Pairwise datasets.
	SyntheticSize = 10000
	// CRMSize is the tuple count of the CRM datasets.
	CRMSize = 100000
	// CRMCategories is the domain size of both CRM datasets.
	CRMCategories = 50
)

// Dataset is a generated workload: a name, the domain size, and the tuples.
// Tuple ids are implicit positions.
type Dataset struct {
	Name   string
	Domain int
	Tuples []uda.UDA
}

// Query draws a query UDA the way the paper does: an existing tuple serves
// as the query point ("which pairs of employees have a given minimum
// probability of potentially working for the same department" is a tuple
// queried against the relation).
func (d *Dataset) Query(r *rand.Rand) uda.UDA {
	return d.Tuples[r.Intn(len(d.Tuples))]
}

// simplex fills out with a random point on the k-simplex scaled to mass 1,
// with all coordinates bounded away from zero.
func simplex(r *rand.Rand, k int) []float64 {
	out := make([]float64, k)
	var sum float64
	for i := range out {
		v := r.Float64() + 1e-3
		out[i] = v
		sum += v
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Uniform generates the Uniform dataset: n tuples over a 5-item domain with
// all five probabilities chosen randomly.
func Uniform(seed int64, n int) *Dataset {
	r := rand.New(rand.NewSource(seed))
	const domain = 5
	tuples := make([]uda.UDA, n)
	for i := range tuples {
		probs := simplex(r, domain)
		pairs := make([]uda.Pair, domain)
		for j, p := range probs {
			pairs[j] = uda.Pair{Item: uint32(j), Prob: p}
		}
		tuples[i] = uda.MustNew(pairs...)
	}
	return &Dataset{Name: "Uniform", Domain: domain, Tuples: tuples}
}

// Pairwise generates the Pairwise dataset: n tuples over 5 items, each with
// exactly 2 non-zero entries of roughly equal probability, restricted to 5
// of the possible item combinations.
func Pairwise(seed int64, n int) *Dataset {
	r := rand.New(rand.NewSource(seed))
	const domain = 5
	// Fix five distinct unordered pairs from the C(5,2)=10 possibilities.
	combos := [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	tuples := make([]uda.UDA, n)
	for i := range tuples {
		c := combos[r.Intn(len(combos))]
		// Roughly equal: jitter around 0.5.
		p := 0.5 + (r.Float64()-0.5)*0.1
		tuples[i] = uda.MustNew(
			uda.Pair{Item: c[0], Prob: p},
			uda.Pair{Item: c[1], Prob: 1 - p},
		)
	}
	return &Dataset{Name: "Pairwise", Domain: domain, Tuples: tuples}
}

// gen3Fill interpolates the expected group size from 3 at domain 10 to 10
// at domain 500 (log-linearly), clamped to [3, 10] outside that range.
func gen3Fill(domain int) float64 {
	switch {
	case domain <= 10:
		return 3
	case domain >= 500:
		return 10
	default:
		return 3 + 7*math.Log(float64(domain)/10)/math.Log(50)
	}
}

// geometricSize draws a geometrically distributed size with the given mean,
// at least 1 and at most the domain size.
func geometricSize(r *rand.Rand, mean float64, domain int) int {
	p := 1 / mean
	size := 1
	for r.Float64() > p && size < domain {
		size++
	}
	return size
}

// Gen3 generates the domain-size scaling dataset: groups of items are
// picked at random with geometrically distributed sizes, and each tuple
// carries random probabilities over one group's items.
func Gen3(seed int64, n, domain int) *Dataset {
	r := rand.New(rand.NewSource(seed))
	mean := gen3Fill(domain)
	// A fixed population of item groups; tuples draw a group at random.
	numGroups := 4 * domain
	if numGroups > 200 {
		numGroups = 200
	}
	groups := make([][]uint32, numGroups)
	for g := range groups {
		size := geometricSize(r, mean, domain)
		seen := make(map[uint32]struct{}, size)
		items := make([]uint32, 0, size)
		for len(items) < size {
			it := uint32(r.Intn(domain))
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			items = append(items, it)
		}
		groups[g] = items
	}
	tuples := make([]uda.UDA, n)
	for i := range tuples {
		items := groups[r.Intn(len(groups))]
		probs := simplex(r, len(items))
		pairs := make([]uda.Pair, len(items))
		for j, it := range items {
			pairs[j] = uda.Pair{Item: it, Prob: probs[j]}
		}
		tuples[i] = uda.MustNew(pairs...)
	}
	return &Dataset{Name: fmt.Sprintf("Gen3-%d", domain), Domain: domain, Tuples: tuples}
}

// zipfWeights returns normalized Zipf(s) popularity weights for k classes.
func zipfWeights(k int, s float64) []float64 {
	w := make([]float64, k)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// pickWeighted draws an index proportionally to the weights (which sum to 1).
func pickWeighted(r *rand.Rand, w []float64) int {
	x := r.Float64()
	for i, p := range w {
		x -= p
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}

// CRM1Like simulates the classification-based CRM dataset: n tuples over 50
// categories, each with one dominant class (the classifier's prediction)
// and a short geometric tail of runner-up classes. Class popularity is
// Zipf-skewed, as real complaint categories are.
func CRM1Like(seed int64, n int) *Dataset {
	r := rand.New(rand.NewSource(seed))
	popularity := zipfWeights(CRMCategories, 1.0)
	tuples := make([]uda.UDA, n)
	for i := range tuples {
		dominant := pickWeighted(r, popularity)
		// Classifier confidence: mostly high.
		conf := 0.55 + 0.43*r.Float64()
		// 0–4 runner-up classes share the rest.
		tail := geometricSize(r, 1.8, 5) - 1
		pairs := []uda.Pair{{Item: uint32(dominant), Prob: conf}}
		if tail > 0 {
			rest := simplex(r, tail)
			seen := map[int]struct{}{dominant: {}}
			for j := 0; j < tail; j++ {
				c := pickWeighted(r, popularity)
				if _, dup := seen[c]; dup {
					continue
				}
				seen[c] = struct{}{}
				pairs = append(pairs, uda.Pair{Item: uint32(c), Prob: (1 - conf) * rest[j]})
			}
		}
		tuples[i] = uda.MustNew(pairs...)
	}
	return &Dataset{Name: "CRM1", Domain: CRMCategories, Tuples: tuples}
}

// CRM2Like simulates the fuzzy-clustering CRM dataset: n tuples with dense
// membership over 50 clusters. Fuzzy memberships of real documents are a
// smooth function of distance to the cluster centers, so documents with the
// same dominant topic share similar *whole* membership vectors. The
// generator reproduces that: each of the 50 topics has an archetype
// membership profile (its own cluster boosted, a fixed random tail over the
// others); a tuple is a multiplicatively perturbed copy of its topic's
// archetype. Memberships below 2% are treated as noise and dropped (fuzzy
// clusterers report only significant memberships) and the remainder is
// renormalized, leaving ~15 non-zero clusters per tuple — roughly an order
// of magnitude denser than CRM1, the contrast Figures 6 vs 7 rest on.
func CRM2Like(seed int64, n int) *Dataset {
	r := rand.New(rand.NewSource(seed))
	// Archetype membership profiles, one per topic.
	archetypes := make([][]float64, CRMCategories)
	for t := range archetypes {
		w := make([]float64, CRMCategories)
		for c := range w {
			w[c] = r.ExpFloat64()
		}
		w[t] *= 10 // the home cluster dominates the profile
		archetypes[t] = w
	}
	tuples := make([]uda.UDA, n)
	for i := range tuples {
		arch := archetypes[r.Intn(CRMCategories)]
		weights := make([]float64, CRMCategories)
		var sum float64
		for c := range weights {
			// Multiplicative per-document noise around the archetype.
			w := arch[c] * math.Exp(0.5*r.NormFloat64())
			weights[c] = w
			sum += w
		}
		pairs := make([]uda.Pair, 0, CRMCategories)
		var kept float64
		for c, w := range weights {
			if p := w / sum; p >= 0.02 {
				pairs = append(pairs, uda.Pair{Item: uint32(c), Prob: p})
				kept += p
			}
		}
		for j := range pairs {
			pairs[j].Prob /= kept
		}
		tuples[i] = uda.MustNew(pairs...)
	}
	return &Dataset{Name: "CRM2", Domain: CRMCategories, Tuples: tuples}
}

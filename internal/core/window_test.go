package core

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/pdrtree"
	"ucat/internal/uda"
)

func windowKinds(t *testing.T) []*Relation {
	t.Helper()
	var rels []*Relation
	for _, opts := range []Options{
		{Kind: ScanOnly},
		{Kind: InvertedIndex},
		{Kind: PDRTree},
		{Kind: PDRTree, PDR: pdrtree.Config{Compression: pdrtree.DiscretizedCompression, Bits: 6}},
	} {
		r, err := NewRelation(opts)
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		rels = append(rels, r)
	}
	return rels
}

func TestWindowPETQMatchesNaive(t *testing.T) {
	rels := windowKinds(t)
	data := fill(t, rels, 700, 25, 5, 77)
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		q := uda.Random(r, 25, 4)
		for _, c := range []uint32{0, 1, 3, 10} {
			for _, tau := range []float64{0, 0.05, 0.3} {
				var want []Match
				for tid, u := range data {
					if p := uda.WithinProb(q, u, c); p > tau {
						want = append(want, Match{TID: tid, Prob: p})
					}
				}
				for _, rel := range rels {
					got, err := rel.WindowPETQ(q, c, tau)
					if err != nil {
						t.Fatalf("%v WindowPETQ(c=%d, tau=%g): %v", rel.Kind(), c, tau, err)
					}
					if len(got) != len(want) {
						t.Fatalf("%v WindowPETQ(c=%d, tau=%g): %d matches, want %d",
							rel.Kind(), c, tau, len(got), len(want))
					}
					for _, m := range got {
						if math.Abs(uda.WithinProb(q, data[m.TID], c)-m.Prob) > 1e-9 {
							t.Fatalf("%v WindowPETQ misreports probability for %d", rel.Kind(), m.TID)
						}
					}
				}
			}
		}
	}
}

func TestWindowTopKMatchesNaive(t *testing.T) {
	rels := windowKinds(t)
	data := fill(t, rels, 500, 20, 4, 31)
	q := uda.Random(rand.New(rand.NewSource(6)), 20, 3)
	const c = 2
	want, err := rels[0].WindowTopK(q, c, 15) // scan is the reference
	if err != nil {
		t.Fatalf("scan WindowTopK: %v", err)
	}
	for _, rel := range rels[1:] {
		got, err := rel.WindowTopK(q, c, 15)
		if err != nil {
			t.Fatalf("%v WindowTopK: %v", rel.Kind(), err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v WindowTopK: %d results, want %d", rel.Kind(), len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
				t.Errorf("%v WindowTopK result %d prob %g, want %g",
					rel.Kind(), i, got[i].Prob, want[i].Prob)
			}
			if math.Abs(uda.WithinProb(q, data[got[i].TID], c)-got[i].Prob) > 1e-9 {
				t.Errorf("%v WindowTopK result %d misreports probability", rel.Kind(), i)
			}
		}
	}
}

func TestWindowZeroEqualsPETQ(t *testing.T) {
	rels := windowKinds(t)
	fill(t, rels, 300, 15, 4, 9)
	q := uda.Random(rand.New(rand.NewSource(2)), 15, 3)
	for _, rel := range rels {
		plain, err := rel.PETQ(q, 0.05)
		if err != nil {
			t.Fatalf("PETQ: %v", err)
		}
		window, err := rel.WindowPETQ(q, 0, 0.05)
		if err != nil {
			t.Fatalf("WindowPETQ: %v", err)
		}
		if len(plain) != len(window) {
			t.Fatalf("%v: window c=0 gave %d matches, PETQ gave %d", rel.Kind(), len(window), len(plain))
		}
		for i := range plain {
			if plain[i].TID != window[i].TID || math.Abs(plain[i].Prob-window[i].Prob) > 1e-12 {
				t.Fatalf("%v: window c=0 diverges from PETQ at %d", rel.Kind(), i)
			}
		}
	}
}

func TestWindowValidation(t *testing.T) {
	rel, err := NewRelation(Options{Kind: PDRTree})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	if _, err := rel.WindowPETQ(uda.Certain(1), 2, -1); err == nil {
		t.Errorf("negative tau accepted")
	}
	if _, err := rel.WindowTopK(uda.Certain(1), 2, 0); err == nil {
		t.Errorf("k=0 accepted")
	}
	// Signature compression folds the domain and breaks adjacency: window
	// queries must refuse rather than silently answer wrong.
	sig, err := NewRelation(Options{Kind: PDRTree,
		PDR: pdrtree.Config{Compression: pdrtree.SignatureCompression, Buckets: 8}})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	if _, err := sig.WindowPETQ(uda.Certain(1), 2, 0); err == nil {
		t.Errorf("window query under signature compression accepted")
	}
	if _, err := sig.WindowTopK(uda.Certain(1), 2, 3); err == nil {
		t.Errorf("window top-k under signature compression accepted")
	}
}

package core

import (
	"sync"

	"ucat/internal/uda"
)

// SyncRelation wraps a Relation for concurrent use: queries run under a
// shared (read) lock and may proceed in parallel — the buffer pool is
// thread-safe and queries touch no other mutable state — while mutations
// (Insert, Delete, Rebuild, Save) take the exclusive lock.
type SyncRelation struct {
	mu  sync.RWMutex
	rel *Relation
}

// Synchronized wraps rel. The caller must stop using rel directly.
func Synchronized(rel *Relation) *SyncRelation {
	return &SyncRelation{rel: rel}
}

// Kind returns the access method backing the relation.
func (s *SyncRelation) Kind() Kind { return s.rel.Kind() }

// Len returns the number of live tuples.
func (s *SyncRelation) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rel.Len()
}

// Insert appends a tuple and returns its assigned id.
func (s *SyncRelation) Insert(u uda.UDA) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rel.Insert(u)
}

// Delete removes a tuple.
func (s *SyncRelation) Delete(tid uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rel.Delete(tid)
}

// Get fetches a tuple's distribution.
func (s *SyncRelation) Get(tid uint32) (uda.UDA, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rel.Get(tid)
}

// PETQ answers the probabilistic equality threshold query.
func (s *SyncRelation) PETQ(q uda.UDA, tau float64) ([]Match, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rel.PETQ(q, tau)
}

// TopK answers PETQ-top-k.
func (s *SyncRelation) TopK(q uda.UDA, k int) ([]Match, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rel.TopK(q, k)
}

// WindowPETQ answers the relaxed window-equality query.
func (s *SyncRelation) WindowPETQ(q uda.UDA, c uint32, tau float64) ([]Match, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rel.WindowPETQ(q, c, tau)
}

// DSTQ answers the distributional similarity threshold query.
func (s *SyncRelation) DSTQ(q uda.UDA, td float64, div uda.Divergence) ([]Neighbor, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rel.DSTQ(q, td, div)
}

// DSTopK answers DSQ-top-k.
func (s *SyncRelation) DSTopK(q uda.UDA, k int, div uda.Divergence) ([]Neighbor, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rel.DSTopK(q, k, div)
}

// Scan visits every live tuple under the read lock; fn must not call back
// into the relation's mutating methods.
func (s *SyncRelation) Scan(fn func(tid uint32, u uda.UDA) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rel.Scan(fn)
}

// Rebuild compacts the relation in place.
func (s *SyncRelation) Rebuild() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rel.Rebuild()
}

// SaveFile snapshots the relation to a file.
func (s *SyncRelation) SaveFile(path string) error {
	s.mu.Lock() // Save flushes the pool, which conflicts with pinned readers
	defer s.mu.Unlock()
	return s.rel.SaveFile(path)
}

// Unwrap returns the underlying relation for single-threaded phases (e.g.
// bulk maintenance). The caller takes responsibility for exclusion.
func (s *SyncRelation) Unwrap() *Relation { return s.rel }

// Live: the durable write path — a Relation that accepts inserts, updates,
// and deletes while queries run.
//
// The design is delta-main (DESIGN.md §21, DURABILITY.md §5): the current
// state is an immutable base Relation plus an append-only delta of operations
// not yet folded in. Writers append to the WAL, wait for group commit, then
// publish the operations into the delta; readers snapshot (base, visible
// delta prefix) without taking any lock the writer holds during fsync. An
// operation becomes visible exactly when it is durable — never before — so
// a crash can only lose operations no caller was ever told succeeded.
//
// Periodically the checkpointer freezes the delta, folds it into a clone of
// the base (the original serves queries throughout), atomically swaps the
// new base in as a new epoch, writes a checkpoint file, and truncates the
// WAL (DURABILITY.md §6). Recovery loads the newest checkpoint and replays
// the WAL tail into a fresh delta (DURABILITY.md §7), reproducing the
// pre-crash answers bit for bit.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ucat/internal/uda"
	"ucat/internal/wal"
)

// Op is one live write: an insert (TID assigned by Apply), an update, or a
// delete. U is ignored for deletes.
type Op struct {
	Kind wal.Type
	TID  uint32
	U    uda.UDA
}

// delta is the append-only operation log between two folds. The writer
// appends under the Live mutex; readers see the committed prefix lock-free.
// ops[i] carries LSN baseLSN+1+i.
type delta struct {
	baseLSN uint64
	// arr is the published slice header. The writer appends in place (only
	// ever writing indices ≥ committed) and re-publishes the header; readers
	// never look past committed, so the two touch disjoint elements.
	arr       atomic.Pointer[[]Op]
	committed atomic.Int64 // ops visible to readers: every one is durable
	// frozenLen is the delta's final length, written once under the writer
	// mutex at freeze time and read by viewers only through a state pointer
	// published after it (so the write is always visible).
	frozenLen int
}

func newDelta(baseLSN uint64) *delta {
	d := &delta{baseLSN: baseLSN}
	empty := []Op{}
	d.arr.Store(&empty)
	return d
}

// append extends the delta (writer mutex held).
func (d *delta) append(ops []Op) {
	buf := *d.arr.Load()
	buf = append(buf, ops...)
	d.arr.Store(&buf)
}

// publish lifts the committed count to at least n (CAS-max: concurrent
// group-commit riders may finish out of order).
func (d *delta) publish(n int64) {
	for {
		old := d.committed.Load()
		if old >= n || d.committed.CompareAndSwap(old, n) {
			return
		}
	}
}

// visible returns the committed prefix.
func (d *delta) visible() []Op {
	c := d.committed.Load()
	if c == 0 {
		return nil
	}
	a := *d.arr.Load()
	return a[:c]
}

// liveState is one immutable generation of the delta-main structure. prev is
// non-nil only while a fold is in flight (or after a failed one): it is the
// frozen delta being folded into the next base.
type liveState struct {
	base *Relation
	prev *delta
	cur  *delta
}

// LiveOptions configures OpenLive.
type LiveOptions struct {
	// Dir holds the WAL segments and checkpoint files. Required.
	Dir string
	// WAL configures the log (fsync mode, group window, segment size); its
	// Dir field is overridden with Dir.
	WAL wal.Options
	// CheckpointEvery folds the delta into a new base every N operations.
	// 0 disables automatic folds (Checkpoint can still be called).
	CheckpointEvery int
	// Origin is the starting snapshot when Dir has no checkpoint. OriginPath
	// is its lazy-loading alternative (preferred: it is not read at all when
	// a newer checkpoint exists). With neither, RelOptions creates an empty
	// relation.
	Origin     *Relation
	OriginPath string
	// RelOptions configures the empty origin when no snapshot is given.
	RelOptions *Options
	// OnSwap, if set, is called after every fold with the new base relation,
	// before Checkpoint returns — the serving layer rebuilds its shared pool
	// here. Called from the checkpointer goroutine; must not call back into
	// Apply or Checkpoint.
	OnSwap func(next *Relation)
}

// Live is a relation accepting durable writes while queries run. Apply and
// the read side are safe for concurrent use; Checkpoint self-serializes.
type Live struct {
	opts LiveOptions
	wal  *wal.Log

	state   atomic.Pointer[liveState]
	prevGen atomic.Pointer[liveState] // one-generation history for ViewOn
	epoch   atomic.Uint64             // folds completed
	folding atomic.Bool

	// mu is the writer lock: op validation, WAL append, delta append, and
	// the freeze step of a fold. Never held across an fsync.
	mu          sync.Mutex
	nextTID     uint32
	appendedLSN uint64
	// mods records the liveness outcome of every operation ever appended
	// (true = live, false = deleted), consulted before the base for
	// validation. Entries are never removed — tuple ids are never reused —
	// mirroring the tuplestore's tombstone set.
	mods map[uint32]bool
}

// OpenLive recovers (or starts) a live relation in opts.Dir per
// DURABILITY.md §7: load the newest checkpoint (else the origin), replay the
// WAL tail into the delta — every replayed operation was durable, so all are
// visible — and open a fresh WAL segment after the replayed stream.
func OpenLive(opts LiveOptions) (*Live, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("core: LiveOptions.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: open live: %w", err)
	}
	opts.WAL.Dir = opts.Dir

	base, baseLSN, err := loadNewestCheckpoint(opts.Dir)
	if err != nil {
		return nil, err
	}
	if base == nil {
		switch {
		case opts.Origin != nil:
			base = opts.Origin
		case opts.OriginPath != "":
			base, err = LoadRelationFile(opts.OriginPath)
			if err != nil {
				return nil, fmt.Errorf("core: open live: origin: %w", err)
			}
		case opts.RelOptions != nil:
			base, err = NewRelation(*opts.RelOptions)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("core: open live: no checkpoint in %s and no origin given", opts.Dir)
		}
	}

	lv := &Live{
		opts:    opts,
		nextTID: base.nextTID,
		mods:    make(map[uint32]bool),
	}
	cur := newDelta(baseLSN)
	count := int64(0)
	info, err := wal.Replay(opts.Dir, baseLSN, func(lsn uint64, rec wal.Record) error {
		op := Op{Kind: rec.Type, TID: rec.TID}
		if rec.Type != wal.TypeDelete {
			u, err := uda.New(rec.Pairs...)
			if err != nil {
				// The record passed CRC yet fails the validation every append
				// performs: format skew or corruption, not a torn write.
				return fmt.Errorf("%w: LSN %d: %v", wal.ErrCorrupt, lsn, err)
			}
			op.U = u
		}
		cur.append([]Op{op})
		lv.mods[op.TID] = op.Kind != wal.TypeDelete
		if op.Kind == wal.TypeInsert && op.TID >= lv.nextTID {
			lv.nextTID = op.TID + 1
		}
		count++
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: open live: %w", err)
	}
	cur.committed.Store(count)
	lv.appendedLSN = info.LastLSN

	log, err := wal.Open(opts.WAL, info.LastLSN+1)
	if err != nil {
		return nil, fmt.Errorf("core: open live: %w", err)
	}
	lv.wal = log
	lv.state.Store(&liveState{base: base, cur: cur})
	return lv, nil
}

// Base returns the current base relation (the epoch anchor: the serving
// layer keys its shared pool on it and passes it back to ViewOn).
func (lv *Live) Base() *Relation { return lv.state.Load().base }

// SetOnSwap installs (or replaces) the fold callback after open — the serving
// layer is constructed after OpenLive, so it wires its epoch swap here before
// accepting writes.
func (lv *Live) SetOnSwap(fn func(next *Relation)) {
	lv.mu.Lock()
	lv.opts.OnSwap = fn
	lv.mu.Unlock()
}

// Epoch returns the number of folds completed since open.
func (lv *Live) Epoch() uint64 { return lv.epoch.Load() }

// WAL exposes the underlying log for stats reporting.
func (lv *Live) WAL() *wal.Log { return lv.wal }

// DeltaLen returns the number of visible operations not yet folded into the
// base (the ucat_ingest_delta_ops gauge).
func (lv *Live) DeltaLen() int {
	st := lv.state.Load()
	n := st.cur.committed.Load()
	if st.prev != nil {
		if n > 0 {
			n += int64(st.prev.frozenLen)
		} else {
			n += st.prev.committed.Load()
		}
	}
	return int(n)
}

// Len returns the number of live tuples in the current visible state.
func (lv *Live) Len() int { return lv.View().Len() }

// Apply validates ops, appends them to the WAL, waits for group commit, and
// publishes them — in that order, so an acknowledged operation is always
// durable (DURABILITY.md §4, §5). It returns the ops' tuple ids (freshly
// assigned for inserts) and the last LSN. The batch is atomic: either every
// op is appended or none is. Safe for concurrent use; concurrent callers
// share fsyncs via the WAL's group commit.
func (lv *Live) Apply(ops []Op) ([]uint32, uint64, error) {
	if len(ops) == 0 {
		return nil, 0, fmt.Errorf("core: apply: empty batch")
	}
	lv.mu.Lock()
	st := lv.state.Load()
	savedTID := lv.nextTID
	tids := make([]uint32, len(ops))
	recs := make([]wal.Record, len(ops))
	applied := make([]Op, len(ops))
	// Validate against the latest appended state (mods over base), including
	// earlier ops of this same batch.
	batch := make(map[uint32]bool, len(ops))
	aliveNow := func(tid uint32) bool {
		if v, ok := batch[tid]; ok {
			return v
		}
		if v, ok := lv.mods[tid]; ok {
			return v
		}
		return st.base.tuples.Has(tid)
	}
	for i, op := range ops {
		switch op.Kind {
		case wal.TypeInsert:
			if err := op.U.Validate(); err != nil {
				lv.nextTID = savedTID
				lv.mu.Unlock()
				return nil, 0, fmt.Errorf("core: apply op %d: %w", i, err)
			}
			op.TID = lv.nextTID
			lv.nextTID++
		case wal.TypeUpdate:
			if err := op.U.Validate(); err != nil {
				lv.nextTID = savedTID
				lv.mu.Unlock()
				return nil, 0, fmt.Errorf("core: apply op %d: %w", i, err)
			}
			if !aliveNow(op.TID) {
				lv.nextTID = savedTID
				lv.mu.Unlock()
				return nil, 0, fmt.Errorf("core: apply op %d: update of unknown tuple %d", i, op.TID)
			}
		case wal.TypeDelete:
			if !aliveNow(op.TID) {
				lv.nextTID = savedTID
				lv.mu.Unlock()
				return nil, 0, fmt.Errorf("core: apply op %d: delete of unknown tuple %d", i, op.TID)
			}
			op.U = uda.UDA{}
		default:
			lv.nextTID = savedTID
			lv.mu.Unlock()
			return nil, 0, fmt.Errorf("core: apply op %d: unknown op kind 0x%02x", i, byte(op.Kind))
		}
		batch[op.TID] = op.Kind != wal.TypeDelete
		tids[i] = op.TID
		recs[i] = wal.Record{Type: op.Kind, TID: op.TID, Pairs: op.U.Pairs()}
		applied[i] = op
	}
	_, last, err := lv.wal.Append(recs)
	if err != nil {
		lv.nextTID = savedTID
		lv.mu.Unlock()
		return nil, 0, err
	}
	for tid, alive := range batch {
		lv.mods[tid] = alive
	}
	// Capture the delta we append to: a concurrent fold may freeze it before
	// our Sync returns, and the publish must land on that same delta.
	target := st.cur
	target.append(applied)
	lv.appendedLSN = last
	pending := last - target.baseLSN // includes everything appended before us
	lv.mu.Unlock()

	if err := lv.wal.Sync(last); err != nil {
		// Never published: the ops stay invisible, and the sticky WAL error
		// keeps every later append from succeeding past them.
		return nil, 0, err
	}
	target.publish(int64(pending))

	if lv.opts.CheckpointEvery > 0 && int(last-target.baseLSN) >= lv.opts.CheckpointEvery {
		// Best-effort background fold: a failed fold leaves a frozen prev the
		// next trigger resumes, and reads stay correct either way.
		go func() { _ = lv.Checkpoint() }()
	}
	return tids, last, nil
}

// Checkpoint folds the frozen delta into a clone of the base, swaps the new
// base in, writes a checkpoint file, and truncates the WAL (DURABILITY.md
// §6). Queries keep running against the old state until the atomic swap; the
// fold never blocks Apply except for the brief freeze step. Concurrent calls
// coalesce: at most one fold runs, extra calls return immediately.
func (lv *Live) Checkpoint() error {
	if !lv.folding.CompareAndSwap(false, true) {
		return nil
	}
	defer lv.folding.Store(false)

	st := lv.state.Load()
	var frozen *delta
	var cut uint64
	if st.prev != nil {
		// A previous fold failed after freezing; resume it. Its extent ends
		// where cur begins.
		frozen = st.prev
		cut = st.cur.baseLSN
	} else {
		lv.mu.Lock()
		if lv.appendedLSN == st.cur.baseLSN {
			lv.mu.Unlock()
			return nil // nothing to fold
		}
		cut = lv.appendedLSN
		frozen = st.cur
		frozen.frozenLen = len(*frozen.arr.Load())
		newCur := newDelta(cut)
		st2 := &liveState{base: st.base, prev: frozen, cur: newCur}
		lv.state.Store(st2)
		// Seal the WAL segment at the cut so TruncateThrough can retire
		// everything the fold covers.
		if err := lv.wal.Rotate(); err != nil {
			lv.mu.Unlock()
			return err
		}
		lv.mu.Unlock()
		st = st2
	}

	// Everything being folded must be durable before it can appear in a
	// checkpoint a future recovery trusts instead of the WAL.
	if err := lv.wal.Sync(cut); err != nil {
		// Publish what did reach the platter; the log is poisoned, so this
		// is the delta's final visible extent.
		durable := lv.wal.DurableLSN()
		if durable > frozen.baseLSN {
			n := int64(durable - frozen.baseLSN)
			if n > int64(frozen.frozenLen) {
				n = int64(frozen.frozenLen)
			}
			frozen.publish(n)
		}
		return err
	}
	frozen.publish(int64(frozen.frozenLen))

	next, err := lv.fold(st.base, *frozen.arr.Load())
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := lv.writeCheckpoint(next, cut); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}

	// Swap the fold in. prevGen keeps the outgoing generation reachable so a
	// reader that captured the old base an instant ago can still build its
	// view (ViewOn); it is published before the new state so there is no
	// window where the old base resolves to nothing.
	st3 := &liveState{base: next, cur: st.cur}
	lv.prevGen.Store(st)
	lv.state.Store(st3)
	lv.epoch.Add(1)
	lv.mu.Lock()
	onSwap := lv.opts.OnSwap
	lv.mu.Unlock()
	if onSwap != nil {
		onSwap(next)
	}

	if _, err := lv.wal.TruncateThrough(cut); err != nil {
		return err
	}
	return pruneCheckpoints(lv.opts.Dir, cut)
}

// fold applies the frozen ops, in LSN order, to a clone of base.
func (lv *Live) fold(base *Relation, ops []Op) (*Relation, error) {
	next, err := base.Clone()
	if err != nil {
		return nil, err
	}
	for _, op := range ops {
		switch op.Kind {
		case wal.TypeInsert:
			err = next.insertWithID(op.TID, op.U)
		case wal.TypeUpdate:
			err = next.Update(op.TID, op.U)
		case wal.TypeDelete:
			err = next.Delete(op.TID)
		}
		if err != nil {
			return nil, fmt.Errorf("folding %s %d: %w", op.Kind, op.TID, err)
		}
	}
	// The checkpoint must hand recovery the id cursor as of the cut: folded
	// inserts are truncated from the WAL, so it cannot be reconstructed.
	lv.mu.Lock()
	next.nextTID = lv.tidCursorAfter(ops, base.nextTID)
	lv.mu.Unlock()
	return next, nil
}

// tidCursorAfter computes the next fresh tuple id after the folded ops.
func (lv *Live) tidCursorAfter(ops []Op, base uint32) uint32 {
	next := base
	for _, op := range ops {
		if op.Kind == wal.TypeInsert && op.TID >= next {
			next = op.TID + 1
		}
	}
	return next
}

// writeCheckpoint persists rel as the checkpoint at cut: tmp file, fsync,
// atomic rename, directory fsync — so a crash leaves either the old
// checkpoint set or the new one, never a half-written file.
func (lv *Live) writeCheckpoint(rel *Relation, cut uint64) error {
	path := filepath.Join(lv.opts.Dir, checkpointName(cut))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := rel.Save(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return syncDirPath(lv.opts.Dir)
}

func syncDirPath(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close closes the WAL. Callers stop accepting writes first; queries against
// the current state remain valid.
func (lv *Live) Close() error { return lv.wal.Close() }

// checkpointName renders the canonical checkpoint file name for a cut LSN.
func checkpointName(lsn uint64) string {
	return fmt.Sprintf("checkpoint-%016x.ucat", lsn)
}

func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ucat") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ucat")
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// loadNewestCheckpoint loads the highest-LSN checkpoint in dir, or (nil, 0)
// when there is none.
func loadNewestCheckpoint(dir string) (*Relation, uint64, error) {
	type cp struct {
		path string
		lsn  uint64
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("core: open live: %w", err)
	}
	var cps []cp
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseCheckpointName(e.Name()); ok {
			cps = append(cps, cp{path: filepath.Join(dir, e.Name()), lsn: lsn})
		}
	}
	if len(cps) == 0 {
		return nil, 0, nil
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].lsn < cps[j].lsn })
	newest := cps[len(cps)-1]
	rel, err := LoadRelationFile(newest.path)
	if err != nil {
		return nil, 0, fmt.Errorf("core: open live: checkpoint %s: %w", newest.path, err)
	}
	return rel, newest.lsn, nil
}

// pruneCheckpoints removes checkpoint files older than keep.
func pruneCheckpoints(dir string, keep uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseCheckpointName(e.Name()); ok && lsn < keep {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

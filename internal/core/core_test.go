package core

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/invidx"
	"ucat/internal/pdrtree"
	"ucat/internal/uda"
)

// allKinds returns one relation of each access method.
func allKinds(t *testing.T) []*Relation {
	t.Helper()
	var rels []*Relation
	for _, opts := range []Options{
		{Kind: ScanOnly},
		{Kind: InvertedIndex},
		{Kind: InvertedIndex, InvStrategy: invidx.BruteForce},
		{Kind: InvertedIndex, InvStrategy: invidx.NRA},
		{Kind: PDRTree},
		{Kind: PDRTree, PDR: pdrtree.Config{Compression: pdrtree.SignatureCompression, Buckets: 8}},
	} {
		r, err := NewRelation(opts)
		if err != nil {
			t.Fatalf("NewRelation(%+v): %v", opts, err)
		}
		rels = append(rels, r)
	}
	return rels
}

func fill(t *testing.T, rels []*Relation, n, domain, maxPairs int, seed int64) map[uint32]uda.UDA {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	data := make(map[uint32]uda.UDA, n)
	for i := 0; i < n; i++ {
		u := uda.Random(r, domain, maxPairs)
		for _, rel := range rels {
			tid, err := rel.Insert(u)
			if err != nil {
				t.Fatalf("%v Insert: %v", rel.Kind(), err)
			}
			if tid != uint32(i) {
				t.Fatalf("%v assigned tid %d, want %d", rel.Kind(), tid, i)
			}
		}
		data[uint32(i)] = u
	}
	return data
}

func TestAllKindsAgreeOnPETQ(t *testing.T) {
	rels := allKinds(t)
	data := fill(t, rels, 800, 20, 5, 3)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		q := uda.Random(r, 20, 4)
		for _, tau := range []float64{0, 0.05, 0.2} {
			var want []Match
			for tid, u := range data {
				if p := uda.EqualityProb(q, u); p > tau {
					want = append(want, Match{TID: tid, Prob: p})
				}
			}
			for _, rel := range rels {
				got, err := rel.PETQ(q, tau)
				if err != nil {
					t.Fatalf("%v PETQ: %v", rel.Kind(), err)
				}
				if len(got) != len(want) {
					t.Fatalf("%v: %d matches, want %d (tau=%g)", rel.Kind(), len(got), len(want), tau)
				}
			}
		}
	}
}

func TestAllKindsAgreeOnTopK(t *testing.T) {
	rels := allKinds(t)
	data := fill(t, rels, 500, 15, 4, 11)
	q := uda.Random(rand.New(rand.NewSource(2)), 15, 3)
	want, err := rels[0].TopK(q, 25) // scan is the reference
	if err != nil {
		t.Fatalf("scan TopK: %v", err)
	}
	for _, rel := range rels[1:] {
		got, err := rel.TopK(q, 25)
		if err != nil {
			t.Fatalf("%v TopK: %v", rel.Kind(), err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v TopK: %d results, want %d", rel.Kind(), len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
				t.Errorf("%v TopK result %d prob %g, want %g", rel.Kind(), i, got[i].Prob, want[i].Prob)
			}
			if math.Abs(uda.EqualityProb(q, data[got[i].TID])-got[i].Prob) > 1e-9 {
				t.Errorf("%v TopK result %d misreports probability", rel.Kind(), i)
			}
		}
	}
}

func TestAllKindsAgreeOnDSTQ(t *testing.T) {
	rels := allKinds(t)
	fill(t, rels, 400, 12, 4, 21)
	q := uda.Random(rand.New(rand.NewSource(7)), 12, 4)
	for _, div := range []uda.Divergence{uda.L1, uda.L2, uda.KL} {
		want, err := rels[0].DSTQ(q, 0.8, div)
		if err != nil {
			t.Fatalf("scan DSTQ: %v", err)
		}
		for _, rel := range rels[1:] {
			got, err := rel.DSTQ(q, 0.8, div)
			if err != nil {
				t.Fatalf("%v DSTQ(%v): %v", rel.Kind(), div, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v DSTQ(%v): %d results, want %d", rel.Kind(), div, len(got), len(want))
			}
			for i := range want {
				if got[i].TID != want[i].TID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Errorf("%v DSTQ(%v) result %d = %v, want %v", rel.Kind(), div, i, got[i], want[i])
				}
			}
		}

		wantK, err := rels[0].DSTopK(q, 7, div)
		if err != nil {
			t.Fatalf("scan DSTopK: %v", err)
		}
		for _, rel := range rels[1:] {
			got, err := rel.DSTopK(q, 7, div)
			if err != nil {
				t.Fatalf("%v DSTopK(%v): %v", rel.Kind(), div, err)
			}
			if len(got) != len(wantK) {
				t.Fatalf("%v DSTopK(%v): %d results, want %d", rel.Kind(), div, len(got), len(wantK))
			}
			for i := range wantK {
				if math.Abs(got[i].Dist-wantK[i].Dist) > 1e-9 {
					t.Errorf("%v DSTopK(%v) result %d dist %g, want %g",
						rel.Kind(), div, i, got[i].Dist, wantK[i].Dist)
				}
			}
		}
	}
}

func TestDeleteAcrossKinds(t *testing.T) {
	rels := allKinds(t)
	data := fill(t, rels, 300, 10, 4, 31)
	q := uda.Random(rand.New(rand.NewSource(1)), 10, 3)
	for tid := uint32(0); tid < 300; tid += 4 {
		for _, rel := range rels {
			if err := rel.Delete(tid); err != nil {
				t.Fatalf("%v Delete(%d): %v", rel.Kind(), tid, err)
			}
		}
		delete(data, tid)
	}
	var want []Match
	for tid, u := range data {
		if p := uda.EqualityProb(q, u); p > 0.05 {
			want = append(want, Match{TID: tid, Prob: p})
		}
	}
	for _, rel := range rels {
		if rel.Len() != len(data) {
			t.Errorf("%v Len = %d, want %d", rel.Kind(), rel.Len(), len(data))
		}
		got, err := rel.PETQ(q, 0.05)
		if err != nil {
			t.Fatalf("%v PETQ: %v", rel.Kind(), err)
		}
		if len(got) != len(want) {
			t.Errorf("%v after deletes: %d matches, want %d", rel.Kind(), len(got), len(want))
		}
		// Deleting a gone tuple errors.
		if err := rel.Delete(0); err == nil {
			t.Errorf("%v double delete succeeded", rel.Kind())
		}
	}
}

func TestGetAndScan(t *testing.T) {
	rel, err := NewRelation(Options{Kind: PDRTree})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	u := uda.MustNew(uda.Pair{Item: 1, Prob: 0.4}, uda.Pair{Item: 2, Prob: 0.6})
	tid, err := rel.Insert(u)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err := rel.Get(tid)
	if err != nil || !got.Equal(u) {
		t.Errorf("Get = (%v, %v)", got, err)
	}
	n := 0
	if err := rel.Scan(func(uint32, uda.UDA) bool { n++; return true }); err != nil || n != 1 {
		t.Errorf("Scan visited %d, err=%v", n, err)
	}
}

func TestValidationErrors(t *testing.T) {
	rel, err := NewRelation(Options{})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	if _, err := rel.PETQ(uda.Certain(1), -1); err == nil {
		t.Errorf("negative tau accepted")
	}
	if _, err := rel.TopK(uda.Certain(1), 0); err == nil {
		t.Errorf("k=0 accepted")
	}
	if _, err := rel.DSTQ(uda.Certain(1), -1, uda.L1); err == nil {
		t.Errorf("negative td accepted")
	}
	if _, err := rel.DSTopK(uda.Certain(1), 0, uda.L1); err == nil {
		t.Errorf("DSTopK k=0 accepted")
	}
	if _, err := NewRelation(Options{Kind: Kind(99)}); err == nil {
		t.Errorf("unknown kind accepted")
	}
	if _, err := NewRelation(Options{Kind: PDRTree, PDR: pdrtree.Config{Bits: 20}}); err == nil {
		t.Errorf("bad PDR config accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{ScanOnly: "scan", InvertedIndex: "inverted", PDRTree: "pdr-tree"} {
		if k.String() != want {
			t.Errorf("String = %q, want %q", k.String(), want)
		}
	}
	if Kind(9).String() == "" {
		t.Errorf("unknown Kind String empty")
	}
}

func TestPETJAcrossKinds(t *testing.T) {
	// Table 1(b) example: employees with uncertain departments; which pairs
	// might work in the same department?
	shoes, sales, clothes, hardware, hr := uint32(0), uint32(1), uint32(2), uint32(3), uint32(4)
	employees := []uda.UDA{
		uda.MustNew(uda.Pair{Item: shoes, Prob: 0.5}, uda.Pair{Item: sales, Prob: 0.5}),    // Jim
		uda.MustNew(uda.Pair{Item: sales, Prob: 0.4}, uda.Pair{Item: clothes, Prob: 0.6}),  // Tom
		uda.MustNew(uda.Pair{Item: hardware, Prob: 0.6}, uda.Pair{Item: sales, Prob: 0.4}), // Lin
		uda.MustNew(uda.Pair{Item: hr, Prob: 1.0}),                                         // Nancy
	}
	build := func(kind Kind) *Relation {
		rel, err := NewRelation(Options{Kind: kind})
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		for _, e := range employees {
			if _, err := rel.Insert(e); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		return rel
	}

	// Reference: full nested loop.
	tau := 0.15
	type key struct{ l, r uint32 }
	want := map[key]float64{}
	for i, a := range employees {
		for j, b := range employees {
			if p := uda.EqualityProb(a, b); p > tau {
				want[key{uint32(i), uint32(j)}] = p
			}
		}
	}

	for _, lk := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
		for _, rk := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
			got, err := PETJ(build(lk), build(rk), tau)
			if err != nil {
				t.Fatalf("PETJ(%v, %v): %v", lk, rk, err)
			}
			if len(got) != len(want) {
				t.Fatalf("PETJ(%v, %v): %d pairs, want %d: %v", lk, rk, len(got), len(want), got)
			}
			for _, p := range got {
				w, ok := want[key{p.Left, p.Right}]
				if !ok || math.Abs(w-p.Prob) > 1e-9 {
					t.Errorf("PETJ(%v, %v) pair %+v, want prob %g", lk, rk, p, w)
				}
			}
		}
	}
}

func TestPEJTopK(t *testing.T) {
	left, err := NewRelation(Options{Kind: InvertedIndex})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	right, err := NewRelation(Options{Kind: PDRTree})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r := rand.New(rand.NewSource(17))
	var ls, rs []uda.UDA
	for i := 0; i < 60; i++ {
		lu, ru := uda.Random(r, 8, 3), uda.Random(r, 8, 3)
		ls, rs = append(ls, lu), append(rs, ru)
		if _, err := left.Insert(lu); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if _, err := right.Insert(ru); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	const k = 10
	got, err := PEJTopK(left, right, k)
	if err != nil {
		t.Fatalf("PEJTopK: %v", err)
	}
	if len(got) != k {
		t.Fatalf("PEJTopK returned %d pairs, want %d", len(got), k)
	}
	// Reference: all pair probabilities sorted descending.
	var all []float64
	for _, a := range ls {
		for _, b := range rs {
			all = append(all, uda.EqualityProb(a, b))
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j] > all[i] {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	for i := 0; i < k; i++ {
		if math.Abs(got[i].Prob-all[i]) > 1e-9 {
			t.Errorf("PEJTopK pair %d prob %g, want %g", i, got[i].Prob, all[i])
		}
		if math.Abs(uda.EqualityProb(ls[got[i].Left], rs[got[i].Right])-got[i].Prob) > 1e-9 {
			t.Errorf("PEJTopK pair %d misreports probability", i)
		}
	}
}

func TestDSTJ(t *testing.T) {
	mk := func(kind Kind) *Relation {
		rel, err := NewRelation(Options{Kind: kind})
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		return rel
	}
	left, right := mk(ScanOnly), mk(PDRTree)
	r := rand.New(rand.NewSource(9))
	var ls, rs []uda.UDA
	for i := 0; i < 50; i++ {
		lu, ru := uda.Random(r, 6, 3), uda.Random(r, 6, 3)
		ls, rs = append(ls, lu), append(rs, ru)
		left.Insert(lu)  //nolint:errcheck
		right.Insert(ru) //nolint:errcheck
	}
	td := 0.5
	got, err := DSTJ(left, right, td, uda.L1)
	if err != nil {
		t.Fatalf("DSTJ: %v", err)
	}
	count := 0
	for _, a := range ls {
		for _, b := range rs {
			if uda.L1Distance(a, b) <= td {
				count++
			}
		}
	}
	if len(got) != count {
		t.Errorf("DSTJ returned %d pairs, want %d", len(got), count)
	}
	for _, p := range got {
		if math.Abs(uda.L1Distance(ls[p.Left], rs[p.Right])-p.Dist) > 1e-9 {
			t.Errorf("DSTJ pair %+v misreports distance", p)
		}
	}
}

func TestDSJTopK(t *testing.T) {
	mk := func(kind Kind) *Relation {
		rel, err := NewRelation(Options{Kind: kind})
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		return rel
	}
	left, right := mk(ScanOnly), mk(PDRTree)
	r := rand.New(rand.NewSource(13))
	var ls, rs []uda.UDA
	for i := 0; i < 40; i++ {
		lu, ru := uda.Random(r, 6, 3), uda.Random(r, 6, 3)
		ls, rs = append(ls, lu), append(rs, ru)
		if _, err := left.Insert(lu); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if _, err := right.Insert(ru); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	const k = 8
	got, err := DSJTopK(left, right, k, uda.L1)
	if err != nil {
		t.Fatalf("DSJTopK: %v", err)
	}
	if len(got) != k {
		t.Fatalf("DSJTopK returned %d pairs, want %d", len(got), k)
	}
	// Reference: all pair distances sorted ascending.
	var all []float64
	for _, a := range ls {
		for _, b := range rs {
			all = append(all, uda.L1Distance(a, b))
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j] < all[i] {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	for i := 0; i < k; i++ {
		if math.Abs(got[i].Dist-all[i]) > 1e-9 {
			t.Errorf("DSJTopK pair %d dist %g, want %g", i, got[i].Dist, all[i])
		}
		if math.Abs(uda.L1Distance(ls[got[i].Left], rs[got[i].Right])-got[i].Dist) > 1e-9 {
			t.Errorf("DSJTopK pair %d misreports distance", i)
		}
	}
	if _, err := DSJTopK(left, right, 0, uda.L1); err == nil {
		t.Errorf("DSJTopK k=0 accepted")
	}
}

func TestJoinValidation(t *testing.T) {
	rel, _ := NewRelation(Options{})
	if _, err := PETJ(rel, rel, -1); err == nil {
		t.Errorf("negative join tau accepted")
	}
	if _, err := PEJTopK(rel, rel, 0); err == nil {
		t.Errorf("join k=0 accepted")
	}
	if _, err := DSTJ(rel, rel, -1, uda.L1); err == nil {
		t.Errorf("negative join td accepted")
	}
}

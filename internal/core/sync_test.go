package core

import (
	"math/rand"
	"sync"
	"testing"

	"ucat/internal/uda"
)

// TestSyncRelationConcurrentReadersAndWriters hammers a SyncRelation from
// parallel query and mutation goroutines. Run with -race.
func TestSyncRelationConcurrentReadersAndWriters(t *testing.T) {
	base, err := NewRelation(Options{Kind: InvertedIndex, PoolFrames: 256})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	rel := Synchronized(base)
	seed := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		if _, err := rel.Insert(uda.Random(seed, 15, 4)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)

	// 4 reader goroutines running the full query mix.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(gseed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(gseed))
			for i := 0; i < 150; i++ {
				q := uda.Random(r, 15, 3)
				if _, err := rel.PETQ(q, 0.1); err != nil {
					errs <- err
					return
				}
				if _, err := rel.TopK(q, 5); err != nil {
					errs <- err
					return
				}
				if _, err := rel.DSTQ(q, 0.5, uda.L1); err != nil {
					errs <- err
					return
				}
				if _, err := rel.WindowPETQ(q, 1, 0.1); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g) + 10)
	}
	// 2 writer goroutines inserting and deleting.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(gseed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(gseed))
			for i := 0; i < 100; i++ {
				tid, err := rel.Insert(uda.Random(r, 15, 4))
				if err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					if err := rel.Delete(tid); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g) + 50)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent access: %v", err)
	}
	if rel.Kind() != InvertedIndex {
		t.Errorf("Kind = %v", rel.Kind())
	}
	if rel.Unwrap() != base {
		t.Errorf("Unwrap returned a different relation")
	}
	// Final read-side sanity: Len matches a scan.
	n := 0
	if err := rel.Scan(func(uint32, uda.UDA) bool { n++; return true }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != rel.Len() {
		t.Errorf("Scan saw %d tuples, Len says %d", n, rel.Len())
	}
}

func TestSyncRelationRebuildAndSave(t *testing.T) {
	base, err := NewRelation(Options{Kind: PDRTree})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	rel := Synchronized(base)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		if _, err := rel.Insert(uda.Random(r, 10, 3)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for tid := uint32(0); tid < 200; tid++ {
		if err := rel.Delete(tid); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if _, err := rel.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if rel.Len() != 100 {
		t.Errorf("Len = %d", rel.Len())
	}
	if _, err := rel.Get(250); err != nil {
		t.Errorf("Get after rebuild: %v", err)
	}
}

package core

import (
	"fmt"

	"ucat/internal/query"
	"ucat/internal/uda"
)

// JoinPair is one result of a probabilistic join: tuple ids from the left
// and right relations and their equality probability (or distance for
// similarity joins, in Dist).
type JoinPair struct {
	Left  uint32
	Right uint32
	Prob  float64
}

// PETJ computes the probabilistic equality threshold join (Definition 6):
// all pairs (l, r) with Pr(l.a = r.a) > tau. The left relation is scanned
// once and each tuple is run as a PETQ against the right relation, so the
// right side's index does the pruning — an index nested-loop join. Pairs
// are returned in left-id order, then descending probability.
//
// As the paper notes, join results are correlated through shared tuples;
// lineage tracking is out of scope, matching the paper's model.
func PETJ(left, right *Relation, tau float64) ([]JoinPair, error) {
	if tau < 0 {
		return nil, fmt.Errorf("core: negative join threshold %g", tau)
	}
	if right.Kind() == InvertedIndex {
		return petjBatched(left, right, tau)
	}
	var out []JoinPair
	var qerr error
	err := left.Scan(func(ltid uint32, u uda.UDA) bool {
		ms, err := right.PETQ(u, tau)
		if err != nil {
			qerr = err
			return false
		}
		for _, m := range ms {
			out = append(out, JoinPair{Left: ltid, Right: m.TID, Prob: m.Prob})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if qerr != nil {
		return nil, qerr
	}
	return out, nil
}

// petjJoinBatch is how many outer tuples share one pass over the inner
// relation's inverted lists. Larger batches amortize list I/O further at
// the cost of per-batch score-table memory.
const petjJoinBatch = 64

// petjBatched runs PETJ with multi-query optimization against an inverted
// inner relation: outer tuples are grouped and each group's queries share a
// single scan of every inverted list they touch (invidx.MultiPETQ), instead
// of re-reading the lists once per outer tuple.
func petjBatched(left, right *Relation, tau float64) ([]JoinPair, error) {
	var out []JoinPair
	var ltids []uint32
	var batch []uda.UDA
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		taus := make([]float64, len(batch))
		for i := range taus {
			taus[i] = tau
		}
		results, err := right.inv.MultiPETQ(batch, taus)
		if err != nil {
			return err
		}
		for i, ms := range results {
			for _, m := range ms {
				out = append(out, JoinPair{Left: ltids[i], Right: m.TID, Prob: m.Prob})
			}
		}
		ltids = ltids[:0]
		batch = batch[:0]
		return nil
	}
	var qerr error
	err := left.Scan(func(ltid uint32, u uda.UDA) bool {
		ltids = append(ltids, ltid)
		batch = append(batch, u)
		if len(batch) == petjJoinBatch {
			if err := flush(); err != nil {
				qerr = err
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if qerr != nil {
		return nil, qerr
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// PEJTopK computes PEJ-top-k: the k pairs with the highest equality
// probability across the whole cross product, ties broken arbitrarily.
func PEJTopK(left, right *Relation, k int) ([]JoinPair, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive k %d", k)
	}
	// Per-pair accumulator keyed by (left, right).
	type pair struct{ l, r uint32 }
	tk := query.NewTopK(k)
	keys := make(map[uint32]pair) // dense surrogate id → pair
	var next uint32
	var qerr error
	err := left.Scan(func(ltid uint32, u uda.UDA) bool {
		// Each left tuple needs only its k best partners.
		ms, err := right.TopK(u, k)
		if err != nil {
			qerr = err
			return false
		}
		for _, m := range ms {
			id := next
			next++
			keys[id] = pair{l: ltid, r: m.TID}
			tk.Offer(query.Match{TID: id, Prob: m.Prob})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if qerr != nil {
		return nil, qerr
	}
	best := tk.Results()
	out := make([]JoinPair, len(best))
	for i, m := range best {
		p := keys[m.TID]
		out[i] = JoinPair{Left: p.l, Right: p.r, Prob: m.Prob}
	}
	return out, nil
}

// SimilarityPair is one result of a distributional similarity join.
type SimilarityPair struct {
	Left  uint32
	Right uint32
	Dist  float64
}

// DSJTopK computes the distributional similarity top-k join (the paper's
// DSJ-top-k): the k pairs with the smallest distributional distance across
// the cross product, ties broken arbitrarily.
func DSJTopK(left, right *Relation, k int, div uda.Divergence) ([]SimilarityPair, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive k %d", k)
	}
	type pair struct{ l, r uint32 }
	nk := query.NewNearestK(k)
	keys := make(map[uint32]pair)
	var next uint32
	var qerr error
	err := left.Scan(func(ltid uint32, u uda.UDA) bool {
		// A pair in the global top-k is in its left tuple's top-k.
		ns, err := right.DSTopK(u, k, div)
		if err != nil {
			qerr = err
			return false
		}
		for _, n := range ns {
			id := next
			next++
			keys[id] = pair{l: ltid, r: n.TID}
			nk.Offer(query.Neighbor{TID: id, Dist: n.Dist})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if qerr != nil {
		return nil, qerr
	}
	best := nk.Results()
	out := make([]SimilarityPair, len(best))
	for i, n := range best {
		p := keys[n.TID]
		out[i] = SimilarityPair{Left: p.l, Right: p.r, Dist: n.Dist}
	}
	return out, nil
}

// DSTJ computes the distributional similarity threshold join: all pairs
// whose distributional distance is at most td.
func DSTJ(left, right *Relation, td float64, div uda.Divergence) ([]SimilarityPair, error) {
	if td < 0 {
		return nil, fmt.Errorf("core: negative join distance threshold %g", td)
	}
	var out []SimilarityPair
	var qerr error
	err := left.Scan(func(ltid uint32, u uda.UDA) bool {
		ns, err := right.DSTQ(u, td, div)
		if err != nil {
			qerr = err
			return false
		}
		for _, n := range ns {
			out = append(out, SimilarityPair{Left: ltid, Right: n.TID, Dist: n.Dist})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if qerr != nil {
		return nil, qerr
	}
	return out, nil
}

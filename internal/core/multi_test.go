package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ucat/internal/uda"
)

// newTestMulti builds a 2-attribute relation (inverted + PDR) with random
// data, returning the ground truth values.
func newTestMulti(t *testing.T, n int, seed int64) (*MultiRelation, map[uint32][]uda.UDA) {
	t.Helper()
	m, err := NewMultiRelation(
		Options{Kind: InvertedIndex},
		Options{Kind: PDRTree},
	)
	if err != nil {
		t.Fatalf("NewMultiRelation: %v", err)
	}
	r := rand.New(rand.NewSource(seed))
	truth := make(map[uint32][]uda.UDA)
	for i := 0; i < n; i++ {
		vals := []uda.UDA{uda.Random(r, 12, 4), uda.Random(r, 8, 3)}
		tid, err := m.Insert(vals...)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		truth[tid] = vals
	}
	return m, truth
}

func conjunctiveProb(qs []uda.UDA, vals []uda.UDA) float64 {
	p := 1.0
	for i := range qs {
		p *= uda.EqualityProb(qs[i], vals[i])
	}
	return p
}

func TestConjunctivePETQMatchesNaive(t *testing.T) {
	m, truth := newTestMulti(t, 600, 5)
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		qs := []uda.UDA{uda.Random(r, 12, 3), uda.Random(r, 8, 3)}
		for _, tau := range []float64{0, 0.01, 0.05, 0.2} {
			var want []Match
			for tid, vals := range truth {
				if p := conjunctiveProb(qs, vals); p > tau {
					want = append(want, Match{TID: tid, Prob: p})
				}
			}
			sort.Slice(want, func(i, j int) bool {
				if want[i].Prob != want[j].Prob {
					return want[i].Prob > want[j].Prob
				}
				return want[i].TID < want[j].TID
			})
			got, err := m.ConjunctivePETQ(qs, tau)
			if err != nil {
				t.Fatalf("ConjunctivePETQ: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("tau=%g: %d matches, want %d", tau, len(got), len(want))
			}
			for i := range want {
				if got[i].TID != want[i].TID || math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
					t.Fatalf("tau=%g match %d = %v, want %v", tau, i, got[i], want[i])
				}
			}
		}
	}
}

func TestConjunctiveTopKMatchesNaive(t *testing.T) {
	m, truth := newTestMulti(t, 500, 7)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		qs := []uda.UDA{uda.Random(r, 12, 3), uda.Random(r, 8, 3)}
		for _, k := range []int{1, 5, 25} {
			var all []float64
			for _, vals := range truth {
				if p := conjunctiveProb(qs, vals); p > 0 {
					all = append(all, p)
				}
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(all)))
			want := all
			if len(want) > k {
				want = want[:k]
			}
			got, err := m.ConjunctiveTopK(qs, k)
			if err != nil {
				t.Fatalf("ConjunctiveTopK: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Prob-want[i]) > 1e-9 {
					t.Fatalf("k=%d result %d prob %g, want %g", k, i, got[i].Prob, want[i])
				}
				if math.Abs(conjunctiveProb(qs, mustGet(t, m, got[i].TID))-got[i].Prob) > 1e-9 {
					t.Fatalf("k=%d result %d misreports probability", k, i)
				}
			}
		}
	}
}

func mustGet(t *testing.T, m *MultiRelation, tid uint32) []uda.UDA {
	t.Helper()
	vals, err := m.Get(tid)
	if err != nil {
		t.Fatalf("Get(%d): %v", tid, err)
	}
	return vals
}

func TestMultiDeleteAndGet(t *testing.T) {
	m, truth := newTestMulti(t, 100, 11)
	if m.Len() != 100 || m.Attrs() != 2 {
		t.Fatalf("Len=%d Attrs=%d", m.Len(), m.Attrs())
	}
	vals := mustGet(t, m, 42)
	if !vals[0].Equal(truth[42][0]) || !vals[1].Equal(truth[42][1]) {
		t.Errorf("Get(42) returned wrong values")
	}
	if err := m.Delete(42); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if m.Len() != 99 {
		t.Errorf("Len after delete = %d", m.Len())
	}
	if _, err := m.Get(42); err == nil {
		t.Errorf("Get of deleted tuple succeeded")
	}
	if err := m.Delete(42); err == nil {
		t.Errorf("double Delete succeeded")
	}
	// The deleted tuple never reappears in queries.
	qs := []uda.UDA{truth[42][0], truth[42][1]}
	got, err := m.ConjunctivePETQ(qs, 0)
	if err != nil {
		t.Fatalf("ConjunctivePETQ: %v", err)
	}
	for _, g := range got {
		if g.TID == 42 {
			t.Errorf("deleted tuple returned by query")
		}
	}
}

func TestMultiValidation(t *testing.T) {
	if _, err := NewMultiRelation(); err == nil {
		t.Errorf("zero attributes accepted")
	}
	m, _ := newTestMulti(t, 10, 1)
	if _, err := m.Insert(uda.Certain(1)); err == nil {
		t.Errorf("wrong arity Insert accepted")
	}
	q := []uda.UDA{uda.Certain(1), uda.Certain(1)}
	if _, err := m.ConjunctivePETQ(q[:1], 0); err == nil {
		t.Errorf("wrong arity query accepted")
	}
	if _, err := m.ConjunctivePETQ(q, -1); err == nil {
		t.Errorf("negative tau accepted")
	}
	if _, err := m.ConjunctiveTopK(q, 0); err == nil {
		t.Errorf("k=0 accepted")
	}
	if _, err := m.ConjunctiveTopK(q[:1], 3); err == nil {
		t.Errorf("wrong arity TopK accepted")
	}
	if m.Attr(0) == nil || m.Attr(1) == nil {
		t.Errorf("Attr returned nil")
	}
}

func TestMultiAttributeSelectivityOrdering(t *testing.T) {
	// Documented contract: attribute 0's index drives the plan. A certain
	// query on attribute 0 must touch far fewer candidates than the naive
	// cross-check would.
	m, truth := newTestMulti(t, 1000, 13)
	qs := []uda.UDA{uda.Certain(3), uda.Certain(2)}
	got, err := m.ConjunctivePETQ(qs, 0.3)
	if err != nil {
		t.Fatalf("ConjunctivePETQ: %v", err)
	}
	for _, g := range got {
		p := conjunctiveProb(qs, truth[g.TID])
		if p <= 0.3 {
			t.Errorf("tuple %d returned with product %g ≤ 0.3", g.TID, p)
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/uda"
)

func TestBulkLoadMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	values := make([]uda.UDA, 3000)
	for i := range values {
		values[i] = uda.Random(r, 25, 5)
	}
	for _, kind := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
		bulk, err := BulkLoad(Options{Kind: kind, PoolFrames: 512}, values)
		if err != nil {
			t.Fatalf("%v BulkLoad: %v", kind, err)
		}
		inc, err := NewRelation(Options{Kind: kind, PoolFrames: 512})
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		for _, u := range values {
			if _, err := inc.Insert(u); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		if bulk.Len() != inc.Len() {
			t.Fatalf("%v: bulk Len %d, incremental %d", kind, bulk.Len(), inc.Len())
		}

		for trial := 0; trial < 5; trial++ {
			q := uda.Random(r, 25, 4)
			want, err := inc.PETQ(q, 0.05)
			if err != nil {
				t.Fatalf("incremental PETQ: %v", err)
			}
			got, err := bulk.PETQ(q, 0.05)
			if err != nil {
				t.Fatalf("bulk PETQ: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v: bulk PETQ %d matches, incremental %d", kind, len(got), len(want))
			}
			for i := range want {
				if got[i].TID != want[i].TID || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
					t.Fatalf("%v: bulk match %d = %v, want %v", kind, i, got[i], want[i])
				}
			}
		}

		// The bulk relation remains fully mutable.
		tid, err := bulk.Insert(uda.Certain(7))
		if err != nil {
			t.Fatalf("%v Insert after bulk: %v", kind, err)
		}
		if tid != 3000 {
			t.Errorf("%v: post-bulk tid = %d, want 3000", kind, tid)
		}
		if err := bulk.Delete(5); err != nil {
			t.Fatalf("%v Delete after bulk: %v", kind, err)
		}
	}
}

func TestBulkLoadPacksTighter(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	values := make([]uda.UDA, 20000)
	for i := range values {
		values[i] = uda.Random(r, 30, 6)
	}
	for _, kind := range []Kind{InvertedIndex, PDRTree} {
		bulk, err := BulkLoad(Options{Kind: kind, PoolFrames: 512}, values)
		if err != nil {
			t.Fatalf("%v BulkLoad: %v", kind, err)
		}
		inc, err := NewRelation(Options{Kind: kind, PoolFrames: 512})
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		for _, u := range values {
			if _, err := inc.Insert(u); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		bp := bulk.Pool().Store().NumPages()
		ip := inc.Pool().Store().NumPages()
		if bp >= ip {
			t.Errorf("%v: bulk used %d pages, incremental %d; expected tighter packing", kind, bp, ip)
		}
	}
}

func TestBulkLoadPDRQueriesNoWorseThanIncremental(t *testing.T) {
	// Mode-ordered packing should cluster at least as well as incremental
	// insertion for equality queries on certain values.
	r := rand.New(rand.NewSource(29))
	values := make([]uda.UDA, 20000)
	for i := range values {
		values[i] = uda.Random(r, 30, 4)
	}
	measure := func(rel *Relation) uint64 {
		pool := rel.Pool()
		var total uint64
		for item := uint32(0); item < 10; item++ {
			if err := pool.Resize(100); err != nil {
				t.Fatal(err)
			}
			pool.ResetStats()
			if _, err := rel.PETQ(uda.Certain(item), 0.5); err != nil {
				t.Fatal(err)
			}
			total += pool.Stats().IOs()
		}
		return total
	}
	bulk, err := BulkLoad(Options{Kind: PDRTree, PoolFrames: 512}, values)
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	inc, err := NewRelation(Options{Kind: PDRTree, PoolFrames: 512})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	for _, u := range values {
		if _, err := inc.Insert(u); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	bio, iio := measure(bulk), measure(inc)
	if float64(bio) > 1.5*float64(iio) {
		t.Errorf("bulk-loaded tree costs %d I/Os vs incremental %d; clustering regressed badly", bio, iio)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	for _, kind := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
		rel, err := BulkLoad(Options{Kind: kind}, nil)
		if err != nil {
			t.Fatalf("%v empty BulkLoad: %v", kind, err)
		}
		if rel.Len() != 0 {
			t.Errorf("%v: Len = %d", kind, rel.Len())
		}
		if _, err := rel.Insert(uda.Certain(1)); err != nil {
			t.Errorf("%v: Insert into empty bulk relation: %v", kind, err)
		}
	}
}

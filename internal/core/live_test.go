package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ucat/internal/tuplestore"
	"ucat/internal/uda"
	"ucat/internal/wal"
)

// fastWAL keeps unit tests off the fsync path (correctness is identical; the
// recovery crash tests exercise real fsync through the child process).
var fastWAL = wal.Options{Fsync: wal.FsyncNever, GroupWindow: -1}

func openTestLive(t *testing.T, dir string, kind Kind, every int) *Live {
	t.Helper()
	lv, err := OpenLive(LiveOptions{
		Dir:             dir,
		WAL:             fastWAL,
		CheckpointEvery: every,
		RelOptions:      &Options{Kind: kind},
	})
	if err != nil {
		t.Fatal(err)
	}
	return lv
}

// randomOps mutates lv with a deterministic op stream and returns the
// surviving state.
func randomOps(t *testing.T, lv *Live, rng *rand.Rand, n int) map[uint32]uda.UDA {
	t.Helper()
	want := map[uint32]uda.UDA{}
	var live []uint32
	for i := 0; i < n; i++ {
		var op Op
		switch r := rng.Intn(10); {
		case r < 6 || len(live) == 0:
			op = Op{Kind: wal.TypeInsert, U: randUDA(rng, 30)}
		case r < 8:
			op = Op{Kind: wal.TypeUpdate, TID: live[rng.Intn(len(live))], U: randUDA(rng, 30)}
		default:
			op = Op{Kind: wal.TypeDelete, TID: live[rng.Intn(len(live))]}
		}
		tids, _, err := lv.Apply([]Op{op})
		if err != nil {
			t.Fatalf("op %d (%s): %v", i, op.Kind, err)
		}
		tid := tids[0]
		switch op.Kind {
		case wal.TypeDelete:
			delete(want, tid)
			for j, l := range live {
				if l == tid {
					live = append(live[:j], live[j+1:]...)
					break
				}
			}
		default:
			if _, ok := want[tid]; !ok {
				live = append(live, tid)
			}
			want[tid] = op.U
		}
	}
	return want
}

// rebuild constructs a frozen relation holding exactly the surviving state.
func rebuild(t *testing.T, kind Kind, want map[uint32]uda.UDA) *Relation {
	t.Helper()
	ref, err := NewRelation(Options{Kind: kind})
	if err != nil {
		t.Fatal(err)
	}
	tids := make([]uint32, 0, len(want))
	for tid := range want {
		tids = append(tids, tid)
	}
	for i := 1; i < len(tids); i++ { // insertion sort: keep test deps stdlib-small
		for j := i; j > 0 && tids[j] < tids[j-1]; j-- {
			tids[j], tids[j-1] = tids[j-1], tids[j]
		}
	}
	for _, tid := range tids {
		if err := ref.insertWithID(tid, want[tid]); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

// assertViewMatches checks the live view answers all six kinds identically
// to the rebuilt reference.
func assertViewMatches(t *testing.T, v *LiveView, ref *Relation, rng *rand.Rand) {
	t.Helper()
	eng := v.Reader()
	for trial := 0; trial < 5; trial++ {
		q := randUDA(rng, 30)
		tau := rng.Float64() * 0.5
		k := 1 + rng.Intn(10)
		c := uint32(1 + rng.Intn(3))
		td := 0.5 + rng.Float64()

		gm, err1 := eng.PETQ(q, tau)
		wm, err2 := ref.PETQ(q, tau)
		check(t, "PETQ", gm, wm, err1, err2)

		gm, err1 = eng.TopK(q, k)
		wm, err2 = ref.TopK(q, k)
		check(t, "TopK", gm, wm, err1, err2)

		gm, err1 = eng.WindowPETQ(q, c, tau)
		wm, err2 = ref.WindowPETQ(q, c, tau)
		check(t, "WindowPETQ", gm, wm, err1, err2)

		gm, err1 = eng.WindowTopK(q, c, k)
		wm, err2 = ref.WindowTopK(q, c, k)
		check(t, "WindowTopK", gm, wm, err1, err2)

		gn, err1 := eng.DSTQ(q, td, uda.L1)
		wn, err2 := ref.DSTQ(q, td, uda.L1)
		check(t, "DSTQ", gn, wn, err1, err2)

		gn, err1 = eng.DSTopK(q, k, uda.L1)
		wn, err2 = ref.DSTopK(q, k, uda.L1)
		check(t, "DSTopK", gn, wn, err1, err2)
	}
}

// TestLiveMatchesRebuild: merged queries over base+overlay answer exactly
// like a frozen relation rebuilt from the surviving tuples, for all three
// access methods, with no fold (pure overlay) and with folds interleaved.
func TestLiveMatchesRebuild(t *testing.T) {
	for _, kind := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
		for _, every := range []int{0, 40} {
			name := kind.String()
			if every > 0 {
				name += "/folding"
			}
			t.Run(name, func(t *testing.T) {
				lv := openTestLive(t, t.TempDir(), kind, 0)
				defer lv.Close()
				rng := rand.New(rand.NewSource(int64(11 + every)))
				want := map[uint32]uda.UDA{}
				for round := 0; round < 4; round++ {
					for tid, u := range randomOps(t, lv, rng, 60) {
						want[tid] = u
					}
					// randomOps returns only its own additions; recompute the
					// authoritative state from the view instead.
					want = stateOf(t, lv)
					if every > 0 {
						if err := lv.Checkpoint(); err != nil {
							t.Fatalf("checkpoint: %v", err)
						}
					}
					assertViewMatches(t, lv.View(), rebuild(t, kind, want), rng)
				}
			})
		}
	}
}

// stateOf reads the full surviving state through the view's Scan.
func stateOf(t *testing.T, lv *Live) map[uint32]uda.UDA {
	t.Helper()
	got := map[uint32]uda.UDA{}
	err := lv.View().Scan(func(tid uint32, u uda.UDA) bool {
		got[tid] = u
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestLiveRecovery: close mid-stream, reopen, and check the recovered state
// and answers match a never-closed twin — with and without checkpoints.
func TestLiveRecovery(t *testing.T) {
	for _, every := range []int{0, 25} {
		name := "nofold"
		if every > 0 {
			name = "folding"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			lv := openTestLive(t, dir, InvertedIndex, 0)
			rng := rand.New(rand.NewSource(42))
			randomOps(t, lv, rng, 120)
			if every > 0 {
				if err := lv.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				randomOps(t, lv, rng, 30) // tail beyond the checkpoint
			}
			want := stateOf(t, lv)
			wantLen := lv.Len()
			if err := lv.Close(); err != nil {
				t.Fatal(err)
			}

			lv2, err := OpenLive(LiveOptions{
				Dir: dir, WAL: fastWAL,
				RelOptions: &Options{Kind: InvertedIndex},
			})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer lv2.Close()
			if lv2.Len() != wantLen {
				t.Fatalf("recovered Len = %d, want %d", lv2.Len(), wantLen)
			}
			got := stateOf(t, lv2)
			if len(got) != len(want) {
				t.Fatalf("recovered %d tuples, want %d", len(got), len(want))
			}
			for tid, u := range want {
				g, ok := got[tid]
				if !ok || !reflect.DeepEqual(g.Pairs(), u.Pairs()) {
					t.Fatalf("tuple %d: recovered %v, want %v", tid, g, u)
				}
			}
			assertViewMatches(t, lv2.View(), rebuild(t, InvertedIndex, want), rng)

			// Writes must continue after recovery with fresh, unused ids.
			tids, _, err := lv2.Apply([]Op{{Kind: wal.TypeInsert, U: uda.Certain(1)}})
			if err != nil {
				t.Fatal(err)
			}
			if _, clash := want[tids[0]]; clash {
				t.Fatalf("recovered id cursor reused tid %d", tids[0])
			}
		})
	}
}

// TestLiveRecoverTwiceIdentical: recovering the same directory twice yields
// identical answers (recovery is deterministic).
func TestLiveRecoverTwiceIdentical(t *testing.T) {
	dir := t.TempDir()
	lv := openTestLive(t, dir, PDRTree, 0)
	rng := rand.New(rand.NewSource(9))
	randomOps(t, lv, rng, 80)
	if err := lv.Close(); err != nil {
		t.Fatal(err)
	}
	open := func() map[uint32]uda.UDA {
		l, err := OpenLive(LiveOptions{Dir: dir, WAL: fastWAL, RelOptions: &Options{Kind: PDRTree}})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return stateOf(t, l)
	}
	a, b := open(), open()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two recoveries of the same directory diverged")
	}
}

// TestLiveValidation: updates/deletes of unknown ids fail without consuming
// LSNs or ids; failed batches are atomic.
func TestLiveValidation(t *testing.T) {
	lv := openTestLive(t, t.TempDir(), ScanOnly, 0)
	defer lv.Close()
	if _, _, err := lv.Apply([]Op{{Kind: wal.TypeUpdate, TID: 5, U: uda.Certain(1)}}); err == nil {
		t.Fatal("update of unknown tuple succeeded")
	}
	if _, _, err := lv.Apply([]Op{{Kind: wal.TypeDelete, TID: 5}}); err == nil {
		t.Fatal("delete of unknown tuple succeeded")
	}
	// A batch failing on op 2 must not apply op 1.
	_, _, err := lv.Apply([]Op{
		{Kind: wal.TypeInsert, U: uda.Certain(1)},
		{Kind: wal.TypeDelete, TID: 9999},
	})
	if err == nil {
		t.Fatal("bad batch succeeded")
	}
	if lv.Len() != 0 || lv.DeltaLen() != 0 {
		t.Fatalf("failed batch leaked state: len=%d delta=%d", lv.Len(), lv.DeltaLen())
	}
	// Within-batch references work: insert then update then delete it.
	tids, _, err := lv.Apply([]Op{
		{Kind: wal.TypeInsert, U: uda.Certain(1)},
		{Kind: wal.TypeInsert, U: uda.Certain(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lv.Apply([]Op{
		{Kind: wal.TypeUpdate, TID: tids[0], U: uda.Certain(3)},
		{Kind: wal.TypeDelete, TID: tids[1]},
	}); err != nil {
		t.Fatal(err)
	}
	if lv.Len() != 1 {
		t.Fatalf("Len = %d, want 1", lv.Len())
	}
	u, err := lv.View().Get(tids[0])
	if err != nil || u.Prob(3) != 1 {
		t.Fatalf("Get(%d) = %v, %v", tids[0], u, err)
	}
	if _, err := lv.View().Get(tids[1]); !errors.Is(err, tuplestore.ErrNotFound) {
		t.Fatalf("deleted tuple Get err = %v", err)
	}
}

// TestLiveConcurrentWritesAndReads hammers Apply from several goroutines
// while readers continuously build views and run queries, with automatic
// folding enabled — the race detector's playground.
func TestLiveConcurrentWritesAndReads(t *testing.T) {
	lv := openTestLive(t, t.TempDir(), InvertedIndex, 50)
	defer lv.Close()
	const writers = 4
	n := 150
	if testing.Short() {
		n = 40
	}
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	// Readers: constantly snapshot and query.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := lv.View()
				q := randUDA(rng, 30)
				if _, err := v.Reader().PETQ(q, 0.1); err != nil {
					t.Errorf("reader PETQ: %v", err)
					return
				}
				if _, err := v.Reader().TopK(q, 5); err != nil {
					t.Errorf("reader TopK: %v", err)
					return
				}
				v.Len()
			}
		}(int64(100 + r))
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []uint32
			for i := 0; i < n; i++ {
				var op Op
				switch {
				case len(mine) == 0 || rng.Intn(10) < 6:
					op = Op{Kind: wal.TypeInsert, U: randUDA(rng, 30)}
				case rng.Intn(2) == 0:
					op = Op{Kind: wal.TypeUpdate, TID: mine[rng.Intn(len(mine))], U: randUDA(rng, 30)}
				default:
					j := rng.Intn(len(mine))
					op = Op{Kind: wal.TypeDelete, TID: mine[j]}
					mine = append(mine[:j], mine[j+1:]...)
				}
				tids, _, err := lv.Apply([]Op{op})
				if err != nil {
					t.Errorf("writer: %v", err)
					return
				}
				if op.Kind == wal.TypeInsert {
					mine = append(mine, tids[0])
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	// Settle: force a final fold and verify the folded base alone (empty
	// overlay) matches a rebuild.
	if err := lv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := stateOf(t, lv)
	rng := rand.New(rand.NewSource(77))
	assertViewMatches(t, lv.View(), rebuild(t, InvertedIndex, want), rng)
}

// TestCheckpointPrunesWALAndFiles: after a fold, old segments and old
// checkpoints are gone and recovery uses the checkpoint alone.
func TestCheckpointPrunesWALAndFiles(t *testing.T) {
	dir := t.TempDir()
	lv := openTestLive(t, dir, ScanOnly, 0)
	rng := rand.New(rand.NewSource(5))
	randomOps(t, lv, rng, 50)
	if err := lv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	randomOps(t, lv, rng, 50)
	if err := lv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := stateOf(t, lv)
	if lv.Epoch() != 2 {
		t.Fatalf("Epoch = %d, want 2", lv.Epoch())
	}
	if err := lv.Close(); err != nil {
		t.Fatal(err)
	}
	var ckpts, segs int
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if _, ok := parseCheckpointName(e.Name()); ok {
			ckpts++
		}
		if filepath.Ext(e.Name()) == ".log" {
			segs++
		}
	}
	if ckpts != 1 {
		t.Fatalf("%d checkpoint files on disk, want 1", ckpts)
	}
	if segs == 0 || segs > 2 {
		t.Fatalf("%d wal segments on disk, want 1-2 (tail only)", segs)
	}
	lv2, err := OpenLive(LiveOptions{Dir: dir, WAL: fastWAL, RelOptions: &Options{Kind: ScanOnly}})
	if err != nil {
		t.Fatal(err)
	}
	defer lv2.Close()
	if got := stateOf(t, lv2); !reflect.DeepEqual(got, want) {
		t.Fatal("state after checkpoint-only recovery diverged")
	}
}

// TestOnSwapCalled: the fold callback fires with the new base, and ViewOn
// accepts both the old and new anchors across the swap.
func TestOnSwapCalled(t *testing.T) {
	dir := t.TempDir()
	var swapped []*Relation
	lv, err := OpenLive(LiveOptions{
		Dir: dir, WAL: fastWAL,
		RelOptions: &Options{Kind: ScanOnly},
		OnSwap:     func(next *Relation) { swapped = append(swapped, next) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()
	oldBase := lv.Base()
	rng := rand.New(rand.NewSource(1))
	randomOps(t, lv, rng, 20)
	if err := lv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(swapped) != 1 || swapped[0] != lv.Base() || lv.Base() == oldBase {
		t.Fatalf("OnSwap calls %d, base identity wrong", len(swapped))
	}
	if _, ok := lv.ViewOn(oldBase); !ok {
		t.Fatal("ViewOn rejected the previous-generation base")
	}
	if _, ok := lv.ViewOn(lv.Base()); !ok {
		t.Fatal("ViewOn rejected the current base")
	}
	v, _ := lv.ViewOn(oldBase)
	v2, _ := lv.ViewOn(lv.Base())
	if v.Len() != v2.Len() {
		t.Fatalf("old-anchor view Len %d != new-anchor %d", v.Len(), v2.Len())
	}
}

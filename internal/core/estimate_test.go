package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ucat/internal/uda"
)

func TestEstimateSelectivityAccuracy(t *testing.T) {
	rel, err := NewRelation(Options{Kind: PDRTree, PoolFrames: 512})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r := rand.New(rand.NewSource(8))
	data := make([]uda.UDA, 20000)
	for i := range data {
		data[i] = uda.Random(r, 20, 5)
		if _, err := rel.Insert(data[i]); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for trial := 0; trial < 5; trial++ {
		q := uda.Random(r, 20, 4)
		for _, tau := range []float64{0.02, 0.05, 0.1} {
			est, err := rel.EstimateSelectivity(q, tau)
			if err != nil {
				t.Fatalf("EstimateSelectivity: %v", err)
			}
			truth := 0
			for _, u := range data {
				if uda.EqualityProb(q, u) > tau {
					truth++
				}
			}
			actual := float64(truth) / float64(len(data))
			// 512 samples: allow 5 standard errors ≈ 11 points absolute.
			if math.Abs(est-actual) > 0.11 {
				t.Errorf("tau=%g: estimate %.3f vs actual %.3f", tau, est, actual)
			}
		}
	}
}

func TestEstimateThresholdHitsTarget(t *testing.T) {
	rel, err := NewRelation(Options{Kind: InvertedIndex, PoolFrames: 512})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r := rand.New(rand.NewSource(6))
	var data []uda.UDA
	for i := 0; i < 10000; i++ {
		u := uda.Random(r, 15, 4)
		data = append(data, u)
		if _, err := rel.Insert(u); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	q := uda.Random(r, 15, 3)
	for _, sel := range []float64{0.01, 0.05, 0.1} {
		tau, err := rel.EstimateThreshold(q, sel)
		if err != nil {
			t.Fatalf("EstimateThreshold: %v", err)
		}
		got := 0
		for _, u := range data {
			if uda.EqualityProb(q, u) > tau {
				got++
			}
		}
		actual := float64(got) / float64(len(data))
		if math.Abs(actual-sel) > 0.1 {
			t.Errorf("sel=%g: calibrated tau %g selects %.3f", sel, tau, actual)
		}
	}
	// Targets above the share of tuples overlapping q at all are
	// unachievable under the strict > predicate; tau then bottoms out at 0.
	tau, err := rel.EstimateThreshold(q, 0.9)
	if err != nil || tau != 0 {
		t.Errorf("unachievable selectivity: tau = %g (%v), want 0", tau, err)
	}
}

func TestEstimateValidationAndEdges(t *testing.T) {
	rel, err := NewRelation(Options{})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	if _, err := rel.EstimateSelectivity(uda.Certain(1), -1); err == nil {
		t.Errorf("negative tau accepted")
	}
	if _, err := rel.EstimateThreshold(uda.Certain(1), 2); err == nil {
		t.Errorf("selectivity > 1 accepted")
	}
	// Empty relation: estimates are zero, not errors.
	if est, err := rel.EstimateSelectivity(uda.Certain(1), 0.1); err != nil || est != 0 {
		t.Errorf("empty estimate = (%g, %v)", est, err)
	}
	if tau, err := rel.EstimateThreshold(uda.Certain(1), 0.5); err != nil || tau != 0 {
		t.Errorf("empty threshold = (%g, %v)", tau, err)
	}
	// Selectivity 1 selects (almost) everything: tau must be 0.
	if _, err := rel.Insert(uda.Certain(1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if tau, err := rel.EstimateThreshold(uda.Certain(1), 1); err != nil || tau != 0 {
		t.Errorf("sel=1 threshold = (%g, %v), want 0", tau, err)
	}
}

func TestEstimateSurvivesSaveLoad(t *testing.T) {
	rel, err := NewRelation(Options{Kind: PDRTree})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if _, err := rel.Insert(uda.Random(r, 10, 3)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := rel.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadRelation(&buf)
	if err != nil {
		t.Fatalf("LoadRelation: %v", err)
	}
	q := uda.Certain(3)
	a, err := rel.EstimateSelectivity(q, 0.3)
	if err != nil {
		t.Fatalf("EstimateSelectivity: %v", err)
	}
	b, err := loaded.EstimateSelectivity(q, 0.3)
	if err != nil {
		t.Fatalf("loaded EstimateSelectivity: %v", err)
	}
	// Samples differ (reloaded one is rebuilt from the heap) but both must
	// land near the true selectivity.
	if math.Abs(a-b) > 0.15 {
		t.Errorf("estimates diverge badly across reload: %.3f vs %.3f", a, b)
	}
}

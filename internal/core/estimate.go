package core

import (
	"fmt"
	"math/rand"

	"ucat/internal/uda"
)

// reservoirSize is the number of tuples kept for selectivity estimation.
// 512 samples bound the standard error of a selectivity estimate by
// ~sqrt(p(1−p)/512) ≤ 2.2 percentage points.
const reservoirSize = 512

// reservoir is a classic Vitter reservoir sample over the inserted tuples.
// It is maintained on Insert only; deletions make it slightly stale, which
// is acceptable for estimation (Rebuild refreshes it).
type reservoir struct {
	rng   *rand.Rand
	seen  int
	items []uda.UDA
}

func newReservoir() *reservoir {
	return &reservoir{rng: rand.New(rand.NewSource(1))}
}

func (r *reservoir) observe(u uda.UDA) {
	r.seen++
	if len(r.items) < reservoirSize {
		r.items = append(r.items, u)
		return
	}
	if j := r.rng.Intn(r.seen); j < reservoirSize {
		r.items[j] = u
	}
}

// EstimateSelectivity predicts the fraction of tuples a PETQ(q, tau) would
// return, from a reservoir sample of the inserted data — no I/O is
// performed. With the default 512-tuple sample the estimate's standard
// error is at most ~2 percentage points; use it to pick thresholds or to
// decide between access paths, not as an exact count.
func (r *Relation) EstimateSelectivity(q uda.UDA, tau float64) (float64, error) {
	if tau < 0 {
		return 0, fmt.Errorf("core: negative threshold %g", tau)
	}
	if r.sample == nil || len(r.sample.items) == 0 {
		return 0, nil
	}
	hits := 0
	for _, u := range r.sample.items {
		if uda.EqualityProb(q, u) > tau {
			hits++
		}
	}
	return float64(hits) / float64(len(r.sample.items)), nil
}

// EstimateThreshold inverts EstimateSelectivity: it returns a threshold tau
// for which PETQ(q, tau) selects roughly the given fraction of the
// relation. It is how a caller reproduces the paper's selectivity-calibrated
// workloads without scanning: the probabilities of the sampled tuples are
// ranked and the appropriate order statistic returned.
//
// Selectivities above the fraction of tuples that overlap q at all are
// unachievable under the strict > predicate; the returned tau bottoms out
// at 0, which selects every overlapping tuple.
func (r *Relation) EstimateThreshold(q uda.UDA, selectivity float64) (float64, error) {
	if selectivity < 0 || selectivity > 1 {
		return 0, fmt.Errorf("core: selectivity %g outside [0, 1]", selectivity)
	}
	if r.sample == nil || len(r.sample.items) == 0 {
		return 0, nil
	}
	probs := make([]float64, len(r.sample.items))
	for i, u := range r.sample.items {
		probs[i] = uda.EqualityProb(q, u)
	}
	// Selection sort down to the needed rank: the sample is tiny.
	rank := int(selectivity * float64(len(probs)))
	if rank >= len(probs) {
		return 0, nil
	}
	for i := 0; i <= rank; i++ {
		for j := i + 1; j < len(probs); j++ {
			if probs[j] > probs[i] {
				probs[i], probs[j] = probs[j], probs[i]
			}
		}
	}
	return probs[rank], nil
}

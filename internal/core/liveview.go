// LiveView: a consistent read snapshot of a live relation — the immutable
// base plus an overlay of the committed delta prefix (DURABILITY.md §5).
//
// The overlay is tiny (it is bounded by the checkpoint interval) and fully
// in memory, so merged queries pay base-index I/O plus an O(delta) in-memory
// pass: the base answers through the paper's index structures exactly as a
// frozen relation would, then overlaid tuples are masked out and recomputed
// with the same probability functions the scan baseline uses. Both result
// orders are total (prob desc / dist asc, ties by tuple id), so the merge is
// deterministic: a live view answers bit-identically to a relation rebuilt
// from the same surviving tuples.
package core

import (
	"fmt"
	"sort"

	"ucat/internal/query"
	"ucat/internal/tuplestore"
	"ucat/internal/uda"
	"ucat/internal/wal"
)

// QueryEngine is the six-kind query surface shared by frozen readers
// (*Reader) and live merged readers (*LiveReader); the serving layer
// dispatches against it.
type QueryEngine interface {
	PETQ(q uda.UDA, tau float64) ([]Match, error)
	TopK(q uda.UDA, k int) ([]Match, error)
	WindowPETQ(q uda.UDA, c uint32, tau float64) ([]Match, error)
	WindowTopK(q uda.UDA, c uint32, k int) ([]Match, error)
	DSTQ(q uda.UDA, td float64, div uda.Divergence) ([]Neighbor, error)
	DSTopK(q uda.UDA, k int, div uda.Divergence) ([]Neighbor, error)
}

// overlayEnt is one overlaid tuple: its latest distribution and whether it
// is live (false = deleted; it must be masked out of base answers).
type overlayEnt struct {
	u    uda.UDA
	live bool
}

// LiveView is an immutable snapshot: base relation + overlay. Safe for
// concurrent use; build one per query (it is cheap: the overlay map is the
// only allocation and its size is the visible delta).
type LiveView struct {
	base    *Relation
	overlay map[uint32]overlayEnt
}

// View snapshots the current visible state.
func (lv *Live) View() *LiveView {
	v, _ := lv.ViewOn(lv.state.Load().base)
	return v
}

// ViewOn builds a view anchored at the given base relation, which must be
// the current base or the immediately previous one (a reader may capture an
// epoch an instant before a fold swaps it). ok is false if rel is neither —
// the caller reloads its epoch and retries.
func (lv *Live) ViewOn(rel *Relation) (*LiveView, bool) {
	st := lv.state.Load()
	if st.base != rel {
		st = lv.prevGen.Load()
		if st == nil || st.base != rel {
			return nil, false
		}
	}
	return makeView(st), true
}

// makeView assembles the overlay from the state's visible operations.
//
// Visibility is prefix-ordered across the fold boundary: if any operation of
// cur is committed, every operation of the frozen prev is durable (the WAL
// is sequential and cur's LSNs are larger), so the whole frozen prefix is
// used even if its own committed counter lags the riders still publishing.
func makeView(st *liveState) *LiveView {
	var ops []Op
	if st.prev != nil {
		if st.cur.committed.Load() > 0 {
			a := *st.prev.arr.Load()
			ops = a[:st.prev.frozenLen]
		} else {
			ops = st.prev.visible()
		}
	}
	cur := st.cur.visible()
	overlay := make(map[uint32]overlayEnt, len(ops)+len(cur))
	apply := func(batch []Op) {
		for _, op := range batch {
			overlay[op.TID] = overlayEnt{u: op.U, live: op.Kind != wal.TypeDelete}
		}
	}
	apply(ops)
	apply(cur)
	return &LiveView{base: st.base, overlay: overlay}
}

// Base returns the view's anchor relation.
func (v *LiveView) Base() *Relation { return v.base }

// OverlayLen returns the number of overlaid tuple ids.
func (v *LiveView) OverlayLen() int { return len(v.overlay) }

// Len returns the number of live tuples in the view.
func (v *LiveView) Len() int {
	n := v.base.Len()
	for tid, e := range v.overlay {
		inBase := v.base.tuples.Has(tid)
		if e.live && !inBase {
			n++
		}
		if !e.live && inBase {
			n--
		}
	}
	return n
}

// Get fetches a tuple's distribution as of the view.
func (v *LiveView) Get(tid uint32) (uda.UDA, error) {
	if e, ok := v.overlay[tid]; ok {
		if !e.live {
			return uda.UDA{}, fmt.Errorf("%w: %d", tuplestore.ErrNotFound, tid)
		}
		return e.u, nil
	}
	return v.base.Get(tid)
}

// Scan visits every live tuple: the base heap in page order (overlaid ids
// skipped), then the overlay's live tuples in ascending id order.
func (v *LiveView) Scan(fn func(tid uint32, u uda.UDA) bool) error {
	stopped := false
	err := v.base.Scan(func(tid uint32, u uda.UDA) bool {
		if _, ok := v.overlay[tid]; ok {
			return true
		}
		if !fn(tid, u) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	tids := make([]uint32, 0, len(v.overlay))
	for tid, e := range v.overlay {
		if e.live {
			tids = append(tids, tid)
		}
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		if !fn(tid, v.overlay[tid].u) {
			return nil
		}
	}
	return nil
}

// Bind attaches the view to a base reader (built by the caller with its own
// pool view, instrumentation, and context — exactly as for a frozen
// relation; the reader must be over the view's base). With an empty overlay
// the reader itself is returned: the read path is byte-for-byte the frozen
// one, including its I/O accounting.
func (v *LiveView) Bind(rd *Reader) QueryEngine {
	if len(v.overlay) == 0 {
		return rd
	}
	return &LiveReader{v: v, rd: rd}
}

// Reader returns a merged query engine reading base pages through the
// relation's own pool (the no-server path; tests and tools).
func (v *LiveView) Reader() QueryEngine { return v.Bind(v.base.Reader(nil)) }

// LiveReader answers the six query kinds against a live view: base answers
// come from the bound Reader (index traversals, per-query I/O accounting,
// context cancellation — all unchanged), overlaid tuples are masked and
// recomputed in memory with the same scalar functions the scan baseline
// uses, and the merge re-sorts under the canonical total orders.
type LiveReader struct {
	v  *LiveView
	rd *Reader
}

// windowProb returns the window-equality probability function matching the
// bound engine's accumulation: the inverted index sums w_i·t_i over the
// smeared query's support (invidx/window.go), which groups the additions
// differently from uda.WithinProb's q-major product sums — equal in exact
// arithmetic, up to an ulp apart in floats. The overlay must reproduce the
// base path bit for bit, so it follows the same order per kind.
func (lr *LiveReader) windowProb(q uda.UDA, c uint32) func(u uda.UDA) float64 {
	if lr.rd.rel.opts.Kind == InvertedIndex {
		w := uda.Smear(q, c)
		return func(u uda.UDA) float64 {
			var s float64
			for _, p := range w {
				//ucatlint:ignore floatcmp skipping exact zeros mirrors the posting-list walk, which never visits absent items; an epsilon would change the float accumulation order vs the base path
				if up := u.Prob(p.Item); up != 0 {
					s += p.Prob * up
				}
			}
			return s
		}
	}
	return func(u uda.UDA) float64 { return uda.WithinProb(q, u, c) }
}

// mergeMatches masks overlaid ids out of the base answer, appends overlay
// candidates passing keep, and re-sorts canonically.
func (lr *LiveReader) mergeMatches(base []Match, prob func(u uda.UDA) float64, keep func(p float64) bool) []Match {
	out := base[:0]
	for _, m := range base {
		if _, ok := lr.v.overlay[m.TID]; !ok {
			out = append(out, m)
		}
	}
	for tid, e := range lr.v.overlay {
		if !e.live {
			continue
		}
		if p := prob(e.u); keep(p) {
			out = append(out, Match{TID: tid, Prob: p})
		}
	}
	query.SortMatches(out)
	return out
}

// PETQ merges the base threshold answer with the overlay (Definition 4
// semantics preserved: Pr > tau, descending probability).
func (lr *LiveReader) PETQ(q uda.UDA, tau float64) ([]Match, error) {
	base, err := lr.rd.PETQ(q, tau)
	if err != nil {
		return nil, err
	}
	return lr.mergeMatches(base,
		func(u uda.UDA) float64 { return uda.EqualityProb(q, u) },
		func(p float64) bool { return p > tau }), nil
}

// TopK asks the base for k+|overlay| answers — enough that masking the
// overlaid ids can never starve the merged top k — then merges and truncates.
func (lr *LiveReader) TopK(q uda.UDA, k int) ([]Match, error) {
	base, err := lr.rd.TopK(q, k+len(lr.v.overlay))
	if err != nil {
		return nil, err
	}
	res := lr.mergeMatches(base,
		func(u uda.UDA) float64 { return uda.EqualityProb(q, u) },
		func(p float64) bool { return p > 0 })
	if len(res) > k {
		res = res[:k]
	}
	return res, nil
}

// WindowPETQ is PETQ under the window-relaxed probability.
func (lr *LiveReader) WindowPETQ(q uda.UDA, c uint32, tau float64) ([]Match, error) {
	base, err := lr.rd.WindowPETQ(q, c, tau)
	if err != nil {
		return nil, err
	}
	return lr.mergeMatches(base, lr.windowProb(q, c),
		func(p float64) bool { return p > tau }), nil
}

// WindowTopK is TopK under the window-relaxed probability.
func (lr *LiveReader) WindowTopK(q uda.UDA, c uint32, k int) ([]Match, error) {
	base, err := lr.rd.WindowTopK(q, c, k+len(lr.v.overlay))
	if err != nil {
		return nil, err
	}
	res := lr.mergeMatches(base, lr.windowProb(q, c),
		func(p float64) bool { return p > 0 })
	if len(res) > k {
		res = res[:k]
	}
	return res, nil
}

// DSTQ merges the base similarity answer with overlay distances.
func (lr *LiveReader) DSTQ(q uda.UDA, td float64, div uda.Divergence) ([]Neighbor, error) {
	base, err := lr.rd.DSTQ(q, td, div)
	if err != nil {
		return nil, err
	}
	out := base[:0]
	for _, n := range base {
		if _, ok := lr.v.overlay[n.TID]; !ok {
			out = append(out, n)
		}
	}
	for tid, e := range lr.v.overlay {
		if !e.live {
			continue
		}
		if d := div.Distance(q, e.u); d <= td {
			out = append(out, Neighbor{TID: tid, Dist: d})
		}
	}
	query.SortNeighbors(out)
	return out, nil
}

// DSTopK asks the base for k+|overlay| neighbors, merges, and truncates.
func (lr *LiveReader) DSTopK(q uda.UDA, k int, div uda.Divergence) ([]Neighbor, error) {
	base, err := lr.rd.DSTopK(q, k+len(lr.v.overlay), div)
	if err != nil {
		return nil, err
	}
	out := base[:0]
	for _, n := range base {
		if _, ok := lr.v.overlay[n.TID]; !ok {
			out = append(out, n)
		}
	}
	for tid, e := range lr.v.overlay {
		if !e.live {
			continue
		}
		out = append(out, Neighbor{TID: tid, Dist: div.Distance(q, e.u)})
	}
	query.SortNeighbors(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

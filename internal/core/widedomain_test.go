package core

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/pdrtree"
	"ucat/internal/uda"
)

// TestHugeItemCodes exercises item codes across the full uint32 range —
// sparse gigantic domains arise when items are hashes (e.g. token ids).
func TestHugeItemCodes(t *testing.T) {
	top := ^uint32(0)
	tuples := []uda.UDA{
		uda.MustNew(uda.Pair{Item: 0, Prob: 0.5}, uda.Pair{Item: top, Prob: 0.5}),
		uda.MustNew(uda.Pair{Item: top - 1, Prob: 1}),
		uda.MustNew(uda.Pair{Item: 1 << 31, Prob: 0.7}, uda.Pair{Item: 12345, Prob: 0.3}),
	}
	for _, kind := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
		rel, err := NewRelation(Options{Kind: kind})
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		for _, u := range tuples {
			if _, err := rel.Insert(u); err != nil {
				t.Fatalf("%v Insert: %v", kind, err)
			}
		}
		got, err := rel.PETQ(uda.Certain(top), 0.4)
		if err != nil {
			t.Fatalf("%v PETQ: %v", kind, err)
		}
		if len(got) != 1 || got[0].TID != 0 || math.Abs(got[0].Prob-0.5) > 1e-12 {
			t.Errorf("%v PETQ at max item = %v", kind, got)
		}
		// Windowed query across the top of the domain must not wrap.
		win, err := rel.WindowPETQ(uda.Certain(top), 1, 0.4)
		if err != nil {
			t.Fatalf("%v WindowPETQ: %v", kind, err)
		}
		if len(win) != 2 {
			t.Errorf("%v window at max item found %d matches, want 2 (items max and max-1)", kind, len(win))
		}
		for _, m := range win {
			if m.TID == 2 {
				t.Errorf("%v window wrapped around the domain", kind)
			}
		}
	}
}

// TestSparseGigaDomain runs a realistic sparse workload over a domain of a
// billion item codes; the inverted index handles it natively and the
// PDR-tree needs signature compression to keep fan-out.
func TestSparseGigaDomain(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const n = 2000
	gen := func() uda.UDA {
		a := uint32(r.Int31())
		b := uint32(r.Int31())
		if b == a {
			b++
		}
		p := 0.3 + 0.4*r.Float64()
		return uda.MustNew(uda.Pair{Item: a, Prob: p}, uda.Pair{Item: b, Prob: 1 - p})
	}
	data := make([]uda.UDA, n)
	for i := range data {
		data[i] = gen()
	}
	for _, opts := range []Options{
		{Kind: InvertedIndex},
		{Kind: PDRTree, PDR: pdrtree.Config{Compression: pdrtree.SignatureCompression, Buckets: 128}},
	} {
		rel, err := NewRelation(opts)
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		for _, u := range data {
			if _, err := rel.Insert(u); err != nil {
				t.Fatalf("%v Insert: %v", opts.Kind, err)
			}
		}
		// Query a known tuple against itself: it must be its own best match.
		for _, probe := range []uint32{0, 500, 1999} {
			q := data[probe]
			top, err := rel.TopK(q, 1)
			if err != nil {
				t.Fatalf("%v TopK: %v", opts.Kind, err)
			}
			want := uda.SelfEqualityProb(q)
			if len(top) != 1 || math.Abs(top[0].Prob-want) > 1e-9 {
				t.Errorf("%v TopK self-match = %v, want prob %g", opts.Kind, top, want)
			}
		}
	}
}

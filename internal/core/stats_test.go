package core

import (
	"math/rand"
	"strings"
	"testing"

	"ucat/internal/uda"
)

func TestIndexStatsAllKinds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, kind := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
		rel, err := NewRelation(Options{Kind: kind, PoolFrames: 512})
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		for i := 0; i < 2000; i++ {
			if _, err := rel.Insert(uda.Random(r, 20, 5)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		st, err := rel.IndexStats()
		if err != nil {
			t.Fatalf("%v IndexStats: %v", kind, err)
		}
		if st.Kind != kind || st.Tuples != 2000 {
			t.Errorf("%v stats = %+v", kind, st)
		}
		if st.StorePages <= 0 || st.StoreBytes != int64(st.StorePages)*8192 {
			t.Errorf("%v page accounting: %+v", kind, st)
		}
		if st.Detail == "" || st.String() == "" {
			t.Errorf("%v stats missing detail", kind)
		}
	}
}

func TestPDRStatsShape(t *testing.T) {
	rel, err := NewRelation(Options{Kind: PDRTree, PoolFrames: 512})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		if _, err := rel.Insert(uda.Random(r, 10, 5)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	st, err := rel.IndexStats()
	if err != nil {
		t.Fatalf("IndexStats: %v", err)
	}
	for _, want := range []string{"height=", "leaves=", "fanout="} {
		if !strings.Contains(st.Detail, want) {
			t.Errorf("PDR detail %q missing %q", st.Detail, want)
		}
	}
}

func TestInvertedStatsShape(t *testing.T) {
	rel, err := NewRelation(Options{Kind: InvertedIndex, PoolFrames: 512})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if _, err := rel.Insert(uda.Random(r, 8, 3)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	st, err := rel.IndexStats()
	if err != nil {
		t.Fatalf("IndexStats: %v", err)
	}
	if !strings.Contains(st.Detail, "lists=8") {
		t.Errorf("expected 8 lists in detail %q", st.Detail)
	}
}

package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ucat/internal/pdrtree"
	"ucat/internal/uda"
)

// TestSoakModelBased drives relations through long randomized sequences of
// inserts, deletes, queries, rebuilds and save/load cycles, checking every
// query against an in-memory oracle. This is the closest thing to running
// the system in production for a while.
func TestSoakModelBased(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	configs := []Options{
		{Kind: ScanOnly},
		{Kind: InvertedIndex},
		{Kind: PDRTree},
		{Kind: PDRTree, PDR: pdrtree.Config{
			Divergence: uda.L1, Split: pdrtree.TopDown,
			Compression: pdrtree.DiscretizedCompression, Bits: 5,
		}},
	}
	for ci, opts := range configs {
		opts := opts
		r := rand.New(rand.NewSource(int64(100 + ci)))
		rel, err := NewRelation(opts)
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		oracle := map[uint32]uda.UDA{}
		var live []uint32 // ids currently in the oracle

		checkQueries := func(step int) {
			q := uda.Random(r, 18, 4)
			tau := r.Float64() * 0.3

			want := 0
			var bestProb float64
			for _, u := range oracle {
				p := uda.EqualityProb(q, u)
				if p > tau {
					want++
				}
				if p > bestProb {
					bestProb = p
				}
			}
			got, err := rel.PETQ(q, tau)
			if err != nil {
				t.Fatalf("cfg %d step %d PETQ: %v", ci, step, err)
			}
			if len(got) != want {
				t.Fatalf("cfg %d step %d: PETQ %d matches, oracle %d", ci, step, len(got), want)
			}
			for _, m := range got {
				if math.Abs(uda.EqualityProb(q, oracle[m.TID])-m.Prob) > 1e-9 {
					t.Fatalf("cfg %d step %d: PETQ misreports tuple %d", ci, step, m.TID)
				}
			}
			if len(oracle) > 0 && bestProb > 0 {
				top, err := rel.TopK(q, 1)
				if err != nil {
					t.Fatalf("cfg %d step %d TopK: %v", ci, step, err)
				}
				if len(top) != 1 || math.Abs(top[0].Prob-bestProb) > 1e-9 {
					t.Fatalf("cfg %d step %d: TopK(1) = %v, oracle best %g", ci, step, top, bestProb)
				}
			}
		}

		const steps = 1200
		for step := 0; step < steps; step++ {
			switch op := r.Intn(100); {
			case op < 55: // insert
				u := uda.Random(r, 18, 4)
				tid, err := rel.Insert(u)
				if err != nil {
					t.Fatalf("cfg %d step %d Insert: %v", ci, step, err)
				}
				if _, dup := oracle[tid]; dup {
					t.Fatalf("cfg %d step %d: tid %d reused", ci, step, tid)
				}
				oracle[tid] = u
				live = append(live, tid)
			case op < 80 && len(live) > 0: // delete
				i := r.Intn(len(live))
				tid := live[i]
				if err := rel.Delete(tid); err != nil {
					t.Fatalf("cfg %d step %d Delete(%d): %v", ci, step, tid, err)
				}
				delete(oracle, tid)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case op < 85: // query burst
				checkQueries(step)
			case op < 88 && len(oracle) > 20: // rebuild
				if _, err := rel.Rebuild(); err != nil {
					t.Fatalf("cfg %d step %d Rebuild: %v", ci, step, err)
				}
			case op < 91: // save/load cycle
				var buf bytes.Buffer
				if err := rel.Save(&buf); err != nil {
					t.Fatalf("cfg %d step %d Save: %v", ci, step, err)
				}
				loaded, err := LoadRelation(&buf)
				if err != nil {
					t.Fatalf("cfg %d step %d Load: %v", ci, step, err)
				}
				rel = loaded
			default: // point lookups
				if len(live) > 0 {
					tid := live[r.Intn(len(live))]
					u, err := rel.Get(tid)
					if err != nil {
						t.Fatalf("cfg %d step %d Get(%d): %v", ci, step, tid, err)
					}
					if !u.Equal(oracle[tid]) {
						t.Fatalf("cfg %d step %d: Get(%d) returned wrong tuple", ci, step, tid)
					}
				}
			}
		}
		if rel.Len() != len(oracle) {
			t.Fatalf("cfg %d: final Len %d, oracle %d", ci, rel.Len(), len(oracle))
		}
		checkQueries(steps)
	}
}

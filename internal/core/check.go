package core

import (
	"errors"
	"fmt"
	"math/rand"

	"ucat/internal/tuplestore"
	"ucat/internal/uda"
)

// ErrNotFound is returned by Get and Delete for unknown tuple ids.
var ErrNotFound = tuplestore.ErrNotFound

// CheckIntegrity verifies that the index and the base heap agree: the tuple
// counts match, and for up to sampleSize randomly chosen live tuples the
// index actually returns the tuple when queried with its own distribution
// (a tuple's self-equality probability is a score it provably attains, so a
// PETQ just below it must surface the tuple). sampleSize ≤ 0 checks every
// tuple. The check performs I/O like any other query and returns the number
// of tuples probed.
func (r *Relation) CheckIntegrity(sampleSize int) (int, error) {
	// Count agreement between heap and index.
	switch r.opts.Kind {
	case InvertedIndex:
		if r.inv.Len() != r.tuples.Len() {
			return 0, fmt.Errorf("core: inverted index holds %d tuples, heap %d", r.inv.Len(), r.tuples.Len())
		}
	case PDRTree:
		if r.pdr.Len() != r.tuples.Len() {
			return 0, fmt.Errorf("core: PDR-tree holds %d tuples, heap %d", r.pdr.Len(), r.tuples.Len())
		}
	}

	// Collect candidate ids.
	var tids []uint32
	var values []uda.UDA
	err := r.tuples.Scan(func(tid uint32, u uda.UDA) bool {
		tids = append(tids, tid)
		values = append(values, u)
		return true
	})
	if err != nil {
		return 0, err
	}
	idx := make([]int, len(tids))
	for i := range idx {
		idx[i] = i
	}
	if sampleSize > 0 && sampleSize < len(idx) {
		rng := rand.New(rand.NewSource(int64(len(idx))))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		idx = idx[:sampleSize]
	}

	probed := 0
	for _, i := range idx {
		tid, u := tids[i], values[i]
		self := uda.SelfEqualityProb(u)
		if self <= 0 {
			continue // empty distribution cannot be surfaced by equality search
		}
		// Query strictly below the attainable score.
		tau := self * (1 - 1e-9)
		ms, err := r.PETQ(u, tau)
		if err != nil {
			return probed, err
		}
		found := false
		for _, m := range ms {
			if m.TID == tid {
				found = true
				break
			}
		}
		if !found {
			return probed, fmt.Errorf("core: tuple %d present in heap but not surfaced by the %s index", tid, r.opts.Kind)
		}
		probed++
	}
	return probed, nil
}

// IsNotFound reports whether err denotes a missing tuple.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

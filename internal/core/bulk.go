package core

import (
	"fmt"

	"ucat/internal/invidx"
	"ucat/internal/pager"
	"ucat/internal/pdrtree"
	"ucat/internal/tuplestore"
	"ucat/internal/uda"
)

// Rebuild compacts the relation in place after heavy churn: the tuple heap
// is rewritten without tombstone slack and the index is reconstructed with
// the packed bulk builders. Tuple ids are preserved; queries before and
// after are equivalent. It returns the number of pages reclaimed.
func (r *Relation) Rebuild() (int, error) {
	before := r.pool.Store().NumPages()
	// Refresh the estimation sample from the live tuples.
	r.sample = newReservoir()
	err := r.tuples.Scan(func(_ uint32, u uda.UDA) bool {
		r.sample.observe(u)
		return true
	})
	if err != nil {
		return 0, err
	}
	switch r.opts.Kind {
	case ScanOnly:
		if _, err := r.tuples.Compact(); err != nil {
			return 0, err
		}
	case InvertedIndex:
		if err := r.inv.Rebuild(); err != nil {
			return 0, err
		}
	case PDRTree:
		// Collect live tuples, drop the tree, compact the heap, bulk-build.
		var tuples []pdrtree.Tuple
		err := r.tuples.Scan(func(tid uint32, u uda.UDA) bool {
			tuples = append(tuples, pdrtree.Tuple{TID: tid, Value: u})
			return true
		})
		if err != nil {
			return 0, err
		}
		if err := r.pdr.Drop(); err != nil {
			return 0, err
		}
		if _, err := r.tuples.Compact(); err != nil {
			return 0, err
		}
		tree, err := pdrtree.BulkLoad(r.pool, r.opts.PDR, tuples)
		if err != nil {
			return 0, err
		}
		r.pdr = tree
	default:
		return 0, fmt.Errorf("core: unknown index kind %v", r.opts.Kind)
	}
	return before - r.pool.Store().NumPages(), nil
}

// BulkLoad builds a relation from a complete set of tuples in one pass,
// assigning sequential tuple ids. For the indexed kinds it uses the
// bottom-up bulk builders, which are substantially faster than repeated
// Insert and produce better-packed pages. The relation accepts further
// inserts and deletes afterwards like any other.
func BulkLoad(opts Options, values []uda.UDA) (*Relation, error) {
	pool := pager.NewPool(pager.NewStore(), opts.PoolFrames)
	r := &Relation{opts: opts, pool: pool, nextTID: uint32(len(values)), sample: newReservoir()}
	for _, u := range values {
		r.sample.observe(u)
	}
	switch opts.Kind {
	case ScanOnly:
		r.tuples = tuplestore.New(pool)
		for i, u := range values {
			if err := r.tuples.Put(uint32(i), u); err != nil {
				return nil, err
			}
		}
	case InvertedIndex:
		tuples := make([]invidx.Tuple, len(values))
		for i, u := range values {
			tuples[i] = invidx.Tuple{TID: uint32(i), Value: u}
		}
		ix, err := invidx.Build(pool, tuples)
		if err != nil {
			return nil, err
		}
		r.inv = ix
		r.tuples = ix.Tuples()
	case PDRTree:
		r.tuples = tuplestore.New(pool)
		tuples := make([]pdrtree.Tuple, len(values))
		for i, u := range values {
			if err := r.tuples.Put(uint32(i), u); err != nil {
				return nil, err
			}
			tuples[i] = pdrtree.Tuple{TID: uint32(i), Value: u}
		}
		tree, err := pdrtree.BulkLoad(pool, opts.PDR, tuples)
		if err != nil {
			return nil, err
		}
		r.pdr = tree
		r.opts.PDR = tree.Config()
	default:
		return nil, fmt.Errorf("core: unknown index kind %v", opts.Kind)
	}
	return r, nil
}

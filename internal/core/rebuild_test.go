package core

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/uda"
)

func TestRebuildReclaimsAndPreservesAnswers(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, kind := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
		rel, err := NewRelation(Options{Kind: kind, PoolFrames: 512})
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		data := make(map[uint32]uda.UDA)
		for i := 0; i < 4000; i++ {
			u := uda.Random(r, 20, 5)
			tid, err := rel.Insert(u)
			if err != nil {
				t.Fatalf("Insert: %v", err)
			}
			data[tid] = u
		}
		// Heavy churn: delete 70%.
		for tid := uint32(0); tid < 4000; tid++ {
			if tid%10 < 7 {
				if err := rel.Delete(tid); err != nil {
					t.Fatalf("Delete: %v", err)
				}
				delete(data, tid)
			}
		}

		q := uda.Random(r, 20, 4)
		want, err := rel.PETQ(q, 0.05)
		if err != nil {
			t.Fatalf("PETQ before rebuild: %v", err)
		}

		reclaimed, err := rel.Rebuild()
		if err != nil {
			t.Fatalf("%v Rebuild: %v", kind, err)
		}
		if reclaimed <= 0 {
			t.Errorf("%v Rebuild reclaimed %d pages after 70%% deletions", kind, reclaimed)
		}

		got, err := rel.PETQ(q, 0.05)
		if err != nil {
			t.Fatalf("PETQ after rebuild: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: rebuild changed answers: %d vs %d", kind, len(got), len(want))
		}
		for i := range want {
			if got[i].TID != want[i].TID || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
				t.Fatalf("%v: rebuild changed match %d: %v vs %v", kind, i, got[i], want[i])
			}
		}

		// Still fully mutable.
		if _, err := rel.Insert(uda.Certain(3)); err != nil {
			t.Fatalf("%v Insert after rebuild: %v", kind, err)
		}
		if err := rel.Delete(got[0].TID); err != nil {
			t.Fatalf("%v Delete after rebuild: %v", kind, err)
		}
		if rel.Len() != len(data) {
			t.Errorf("%v Len = %d, want %d", kind, rel.Len(), len(data))
		}
	}
}

func TestRebuildNoChurnIsStable(t *testing.T) {
	rel, err := NewRelation(Options{Kind: PDRTree, PoolFrames: 512})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if _, err := rel.Insert(uda.Random(r, 15, 4)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if _, err := rel.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if rel.Len() != 1000 {
		t.Errorf("Len = %d", rel.Len())
	}
	// Rebuilding twice is fine.
	if _, err := rel.Rebuild(); err != nil {
		t.Fatalf("second Rebuild: %v", err)
	}
}

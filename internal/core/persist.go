package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ucat/internal/invidx"
	"ucat/internal/pager"
	"ucat/internal/pdrtree"
	"ucat/internal/tuplestore"
	"ucat/internal/uda"
)

// Relations persist as a gob-encoded snapshot: the raw page images of the
// shared store plus each component's metadata (list roots, tuple locations,
// tree root and configuration). The format is versioned so later releases
// can evolve it.

const snapshotVersion = 1

type relationSnapshot struct {
	Version    int
	Kind       int
	NextTID    uint32
	PoolFrames int

	StorePages [][]byte
	StoreFree  []uint32

	// Exactly one of the following is meaningful, per Kind.
	Tuples *tuplestore.Snapshot // ScanOnly and PDRTree (the base heap)
	Inv    *invidx.Snapshot     // InvertedIndex (includes its heap)
	PDR    *pdrtree.Snapshot    // PDRTree
}

// Save writes the relation to w. All dirty pages are flushed first; the
// relation remains usable afterwards.
func (r *Relation) Save(w io.Writer) error {
	if err := r.pool.FlushAll(); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	pages, free := r.pool.Store().Snapshot()
	snap := relationSnapshot{
		Version:    snapshotVersion,
		Kind:       int(r.opts.Kind),
		NextTID:    r.nextTID,
		PoolFrames: r.opts.PoolFrames,
		StorePages: pages,
	}
	for _, f := range free {
		snap.StoreFree = append(snap.StoreFree, uint32(f))
	}
	switch r.opts.Kind {
	case ScanOnly:
		t := r.tuples.Snapshot()
		snap.Tuples = &t
	case InvertedIndex:
		iv := r.inv.Snapshot()
		snap.Inv = &iv
	case PDRTree:
		t := r.tuples.Snapshot()
		snap.Tuples = &t
		p := r.pdr.Snapshot()
		snap.PDR = &p
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// SaveFile writes the relation to a file, creating or truncating it.
func (r *Relation) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Save(f); err != nil {
		_ = f.Close() // the Save error takes precedence over the close error
		return err
	}
	return f.Close()
}

// LoadRelation reads a relation previously written by Save.
func LoadRelation(rd io.Reader) (*Relation, error) {
	var snap relationSnapshot
	if err := gob.NewDecoder(rd).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: load: unsupported snapshot version %d", snap.Version)
	}
	free := make([]pager.PageID, 0, len(snap.StoreFree))
	for _, f := range snap.StoreFree {
		free = append(free, pager.PageID(f))
	}
	store, err := pager.RestoreStore(snap.StorePages, free)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	pool := pager.NewPool(store, snap.PoolFrames)

	kind := Kind(snap.Kind)
	r := &Relation{
		opts:    Options{Kind: kind, PoolFrames: snap.PoolFrames},
		pool:    pool,
		nextTID: snap.NextTID,
	}
	switch kind {
	case ScanOnly:
		if snap.Tuples == nil {
			return nil, fmt.Errorf("core: load: scan snapshot missing tuple heap")
		}
		tuples, err := tuplestore.Restore(pool, *snap.Tuples)
		if err != nil {
			return nil, err
		}
		r.tuples = tuples
	case InvertedIndex:
		if snap.Inv == nil {
			return nil, fmt.Errorf("core: load: inverted snapshot missing index")
		}
		ix, err := invidx.Restore(pool, *snap.Inv)
		if err != nil {
			return nil, err
		}
		r.inv = ix
		r.tuples = ix.Tuples()
	case PDRTree:
		if snap.Tuples == nil || snap.PDR == nil {
			return nil, fmt.Errorf("core: load: PDR snapshot missing heap or tree")
		}
		tuples, err := tuplestore.Restore(pool, *snap.Tuples)
		if err != nil {
			return nil, err
		}
		tree, err := pdrtree.Restore(pool, *snap.PDR)
		if err != nil {
			return nil, err
		}
		r.tuples = tuples
		r.pdr = tree
		r.opts.PDR = tree.Config()
	default:
		return nil, fmt.Errorf("core: load: unknown index kind %d", snap.Kind)
	}
	// Rebuild the estimation sample from the loaded tuples (a one-time
	// sequential pass over the heap).
	r.sample = newReservoir()
	err = r.tuples.Scan(func(_ uint32, u uda.UDA) bool {
		r.sample.observe(u)
		return true
	})
	if err != nil {
		return nil, err
	}
	// Loaded relations get a fresh decode cache under default options (the
	// snapshot format predates the cache and carries no cache settings; a
	// fresh cache is always coherent — it starts empty).
	r.applyCacheOptions()
	return r, nil
}

// LoadRelationFile reads a relation from a file written by SaveFile.
func LoadRelationFile(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//ucatlint:ignore droppederr read-only file: a close error cannot lose data
	defer f.Close()
	return LoadRelation(f)
}

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

// buildCtxRelation fills a relation with enough tuples to span many heap
// pages, flushes it, and returns a fresh read view over the shared store.
func buildCtxRelation(t *testing.T, kind Kind) (*Relation, *pager.Pool) {
	t.Helper()
	rel, err := NewRelation(Options{Kind: kind, PoolFrames: 256})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	// A small domain over many tuples gives long inverted lists and broad
	// PDR-tree subtrees, so a low-tau PETQ touches many pages under every
	// access method.
	for i := 0; i < 4000; i++ {
		u := uda.MustNew(
			uda.Pair{Item: uint32(i % 8), Prob: 0.6},
			uda.Pair{Item: uint32(i%8) + 1, Prob: 0.4},
		)
		if _, err := rel.Insert(u); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := rel.Pool().FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	return rel, pager.NewPool(rel.Pool().Store(), pager.DefaultPoolFrames)
}

// countingView counts fetches and cancels the bound context after a set
// number of them, simulating a deadline firing mid-scan.
type countingView struct {
	v       pager.View
	fetches int
	after   int
	cancel  context.CancelFunc
}

func (cv *countingView) Fetch(pid pager.PageID) (*pager.Page, error) {
	cv.fetches++
	if cv.fetches == cv.after {
		cv.cancel()
	}
	return cv.v.Fetch(pid)
}

func TestCancelledContextFailsBeforeAnyFetch(t *testing.T) {
	rel, view := buildCtxRelation(t, ScanOnly)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := uda.MustNew(uda.Pair{Item: 3, Prob: 1})
	_, err := rel.Reader(view).WithContext(ctx).PETQ(q, 0.1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PETQ with cancelled context: err = %v, want context.Canceled", err)
	}
	if st := view.Stats(); st.Reads != 0 {
		t.Fatalf("cancelled query still read %d pages from the store", st.Reads)
	}
}

func TestCancelMidScanStopsEarly(t *testing.T) {
	for _, kind := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
		t.Run(kind.String(), func(t *testing.T) {
			rel, view := buildCtxRelation(t, kind)

			// Full-scan baseline: how many fetches does the query cost?
			q := uda.MustNew(uda.Pair{Item: 3, Prob: 1})
			base := &countingView{v: view, after: -1, cancel: func() {}}
			if _, err := rel.Reader(base).PETQ(q, 0.01); err != nil {
				t.Fatalf("baseline PETQ: %v", err)
			}
			if base.fetches < 4 {
				t.Skipf("query touches only %d pages; too small to observe early stop", base.fetches)
			}

			// Cancel after two fetches: the query must stop well short.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cv := &countingView{v: view, after: 2, cancel: cancel}
			_, err := rel.Reader(cv).WithContext(ctx).PETQ(q, 0.01)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("PETQ after mid-scan cancel: err = %v, want context.Canceled", err)
			}
			if cv.fetches >= base.fetches {
				t.Fatalf("cancelled query fetched %d pages; baseline is %d (did not stop early)",
					cv.fetches, base.fetches)
			}
		})
	}
}

func TestDeadlineExceededSurfaces(t *testing.T) {
	rel, view := buildCtxRelation(t, ScanOnly)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	q := uda.MustNew(uda.Pair{Item: 3, Prob: 1})
	_, err := rel.Reader(view).WithContext(ctx).PETQ(q, 0.1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PETQ past deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestWithContextBackgroundIsIdentity(t *testing.T) {
	rel, view := buildCtxRelation(t, ScanOnly)
	rd := rel.Reader(view)
	if got := rd.WithContext(context.Background()); got != rd {
		t.Fatalf("WithContext(Background) returned a new Reader; want the same one")
	}
	if got := rd.WithContext(nil); got != rd { //nolint — deliberate nil ctx contract check
		t.Fatalf("WithContext(nil) returned a new Reader; want the same one")
	}
}

package core

// Crash-recovery test per DURABILITY.md §1 and §7: a child process applies a
// deterministic op stream with real fsyncs, acknowledging each durable batch
// on stdout; the parent SIGKILLs it at a random moment, recovers the
// directory, and checks
//
//   1. every acknowledged batch survived (durability: §1 G1),
//   2. the recovered state is an exact prefix of the op stream (atomicity +
//      order: §1 G2, §7 — never a partial batch, never a gap),
//   3. all six query kinds answer bit-identically to a twin that applied the
//      same prefix and never crashed (§1 G3).
//
// The child checkpoints periodically in one variant, so kills land before,
// during, and after folds and checkpoint writes.

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"ucat/internal/uda"
	"ucat/internal/wal"
)

const (
	crashEnv     = "UCAT_CRASH_CHILD"
	crashBatches = 400
	crashSeed    = 1234
)

// crashStream regenerates the child's deterministic op stream: batch i is
// ops[i]. Only the seed is shared between parent and child. Insert ids are
// predicted by mirroring Apply's cursor (ids are assigned densely from 0 on
// an empty origin), so updates and deletes can reference them up front.
func crashStream(seed int64, n int) [][]Op {
	rng := rand.New(rand.NewSource(seed))
	var live []uint32
	next := uint32(0)
	batches := make([][]Op, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + rng.Intn(3)
		batch := make([]Op, 0, k)
		for j := 0; j < k; j++ {
			switch r := rng.Intn(10); {
			case r < 6 || len(live) == 0:
				batch = append(batch, Op{Kind: wal.TypeInsert, U: randUDA(rng, 40)})
				live = append(live, next)
				next++
			case r < 8:
				batch = append(batch, Op{Kind: wal.TypeUpdate, TID: live[rng.Intn(len(live))], U: randUDA(rng, 40)})
			default:
				j := rng.Intn(len(live))
				batch = append(batch, Op{Kind: wal.TypeDelete, TID: live[j]})
				live = append(live[:j], live[j+1:]...)
			}
		}
		batches = append(batches, batch)
	}
	return batches
}

// TestMain hijacks the process when re-exec'd as the crash child.
func TestMain(m *testing.M) {
	if dir := os.Getenv(crashEnv); dir != "" {
		crashChild(dir)
		return
	}
	os.Exit(m.Run())
}

// crashChild runs the deterministic stream with real group-commit fsyncs,
// printing "ACK <batch-index> <lsn>" after each durable batch. It never
// exits on its own fast enough to matter; the parent kills it.
func crashChild(dir string) {
	every := 0
	if v := os.Getenv(crashEnv + "_EVERY"); v != "" {
		every, _ = strconv.Atoi(v)
	}
	lv, err := OpenLive(LiveOptions{
		Dir:             dir,
		WAL:             wal.Options{Fsync: wal.FsyncGroup, GroupWindow: -1},
		CheckpointEvery: every,
		RelOptions:      &Options{Kind: InvertedIndex},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child open: %v\n", err)
		os.Exit(1)
	}
	out := bufio.NewWriter(os.Stdout)
	for i, batch := range crashStream(crashSeed, crashBatches) {
		if _, lsn, err := lv.Apply(batch); err != nil {
			fmt.Fprintf(os.Stderr, "child apply %d: %v\n", i, err)
			os.Exit(1)
		} else {
			fmt.Fprintf(out, "ACK %d %d\n", i, lsn)
			out.Flush()
		}
	}
	fmt.Fprintln(out, "DONE")
	out.Flush()
	// Linger so the parent's kill always finds a process.
	time.Sleep(10 * time.Second)
}

// TestCrashRecovery is the kill -9 harness (parent side).
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Run("nofold", func(t *testing.T) { crashOnce(t, 0, 25*time.Millisecond) })
		return
	}
	for _, tc := range []struct {
		name  string
		every int
	}{
		{"nofold", 0},
		{"folding", 60}, // several folds before the kill lands
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(time.Now().UnixNano()))
			for i := 0; i < 3; i++ {
				delay := time.Duration(1+rng.Intn(120)) * time.Millisecond
				crashOnce(t, tc.every, delay)
			}
		})
	}
}

func crashOnce(t *testing.T, every int, delay time.Duration) {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		crashEnv+"="+dir,
		fmt.Sprintf("%s_EVERY=%d", crashEnv, every))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Read ACKs until the kill lands; the child dies mid-write.
	acked := -1
	ackCh := make(chan int, crashBatches+1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "ACK ") {
				f := strings.Fields(line)
				n, _ := strconv.Atoi(f[1])
				ackCh <- n
			}
		}
		close(ackCh)
	}()
	time.Sleep(delay)
	_ = cmd.Process.Kill() // SIGKILL: no cleanup, no final flush
	_ = cmd.Wait()
	for n := range ackCh {
		acked = n
	}

	// Recover. Every acknowledged batch must be present; beyond that the
	// recovered stream may include un-acked batches that reached the platter
	// before the kill — but only as a contiguous prefix of the op stream.
	lv, err := OpenLive(LiveOptions{
		Dir:        dir,
		WAL:        wal.Options{Fsync: wal.FsyncNever, GroupWindow: -1},
		RelOptions: &Options{Kind: InvertedIndex},
	})
	if err != nil {
		t.Fatalf("recovery after kill at %v (acked %d): %v", delay, acked, err)
	}
	defer lv.Close()

	stream := crashStream(crashSeed, crashBatches)
	appended := lv.wal.Stats().AppendedLSN // = last replayed LSN after recovery
	var lsn uint64
	recoveredBatches := -1
	for i, b := range stream {
		if lsn+uint64(len(b)) > appended {
			break
		}
		lsn += uint64(len(b))
		recoveredBatches = i
	}
	// Batches are atomic: the replayed stream must end exactly on a batch
	// boundary, never inside one.
	if lsn != appended {
		t.Fatalf("recovered LSN %d is not a batch boundary (nearest %d; acked %d, kill %v)",
			appended, lsn, acked, delay)
	}
	if recoveredBatches < acked {
		t.Fatalf("durability violated: acked batch %d lost, recovered through %d", acked, recoveredBatches)
	}

	// Twin: apply the same prefix to a fresh engine that never crashed.
	twinDir := t.TempDir()
	twin, err := OpenLive(LiveOptions{
		Dir:        twinDir,
		WAL:        wal.Options{Fsync: wal.FsyncNever, GroupWindow: -1},
		RelOptions: &Options{Kind: InvertedIndex},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	for i := 0; i <= recoveredBatches; i++ {
		if _, _, err := twin.Apply(stream[i]); err != nil {
			t.Fatalf("twin apply %d: %v", i, err)
		}
	}

	if got, want := stateOf(t, lv), stateOf(t, twin); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state diverged from twin after %d batches (acked %d, kill %v)",
			recoveredBatches+1, acked, delay)
	}
	rng := rand.New(rand.NewSource(99))
	assertEnginesMatch(t, lv.View().Reader(), twin.View().Reader(), rng)
}

// assertEnginesMatch compares two engines across all six kinds.
func assertEnginesMatch(t *testing.T, got, want QueryEngine, rng *rand.Rand) {
	t.Helper()
	for trial := 0; trial < 5; trial++ {
		q := randUDA(rng, 40)
		tau := rng.Float64() * 0.5
		k := 1 + rng.Intn(10)
		c := uint32(1 + rng.Intn(3))
		td := 0.5 + rng.Float64()

		gm, err1 := got.PETQ(q, tau)
		wm, err2 := want.PETQ(q, tau)
		check(t, "PETQ", gm, wm, err1, err2)

		gm, err1 = got.TopK(q, k)
		wm, err2 = want.TopK(q, k)
		check(t, "TopK", gm, wm, err1, err2)

		gm, err1 = got.WindowPETQ(q, c, tau)
		wm, err2 = want.WindowPETQ(q, c, tau)
		check(t, "WindowPETQ", gm, wm, err1, err2)

		gm, err1 = got.WindowTopK(q, c, k)
		wm, err2 = want.WindowTopK(q, c, k)
		check(t, "WindowTopK", gm, wm, err1, err2)

		gn, err1 := got.DSTQ(q, td, uda.L1)
		wn, err2 := want.DSTQ(q, td, uda.L1)
		check(t, "DSTQ", gn, wn, err1, err2)

		gn, err1 = got.DSTopK(q, k, uda.L1)
		wn, err2 = want.DSTopK(q, k, uda.L1)
		check(t, "DSTopK", gn, wn, err1, err2)
	}
}

// Reader: the relation's read-only query surface bound to a pool view.
//
// The paper's evaluation discipline gives *each query* its own 100-frame
// buffer manager (§4), which makes read-only queries embarrassingly
// parallel: N workers can each run queries against a private pager.Pool
// over the shared page store, with I/O counted per query exactly as in the
// sequential run. Reader is how that is expressed — it routes every page
// fetch of a query (index traversals, list scans, heap probes) through an
// injected pager.View instead of the relation's construction pool.
package core

import (
	"fmt"

	"ucat/internal/obs"
	"ucat/internal/pager"
	"ucat/internal/query"
	"ucat/internal/uda"
)

// Reader answers read-only queries against the relation through a pool view.
// A Reader is cheap (three words) and not safe for concurrent use; make one
// per query or per worker. Readers must not be used across mutations of the
// relation.
type Reader struct {
	rel  *Relation
	view pager.View
	rec  *obs.Recorder // nil unless the view is obs-instrumented
}

// Reader returns a read-only query handle whose page fetches go through v.
// A nil view reads through the relation's own pool. To run queries in
// parallel, give each worker its own view over the shared store:
//
//	view := pager.NewPool(rel.Pool().Store(), rel.Pool().Frames())
//	rd := rel.Reader(view)
//
// To trace a query, wrap the view first: obs.InstrumentView(view, rec).
func (r *Relation) Reader(v pager.View) *Reader {
	if v == nil {
		v = r.pool
	}
	return &Reader{rel: r, view: v, rec: obs.RecorderOf(v)}
}

// Scan visits every live tuple in heap order through the reader's view.
func (rd *Reader) Scan(fn func(tid uint32, u uda.UDA) bool) error {
	return rd.rel.tuples.ScanVia(rd.view, fn)
}

// Get fetches a tuple's distribution by id through the reader's view.
func (rd *Reader) Get(tid uint32) (uda.UDA, error) {
	return rd.rel.tuples.GetVia(rd.view, tid)
}

// PETQ answers the probabilistic equality threshold query (Definition 4):
// all tuples t with Pr(q = t) > tau, with exact probabilities, in descending
// probability order.
//
//ucatlint:hotpath
func (rd *Reader) PETQ(q uda.UDA, tau float64) ([]Match, error) {
	if tau < 0 {
		return nil, fmt.Errorf("core: negative threshold %g", tau)
	}
	switch rd.rel.opts.Kind {
	case InvertedIndex:
		return rd.rel.inv.Reader(rd.view).PETQ(q, tau, rd.rel.opts.InvStrategy)
	case PDRTree:
		return rd.rel.pdr.Reader(rd.view).PETQ(q, tau)
	default:
		return rd.scanPETQ(q, tau)
	}
}

// PEQ is the probabilistic equality query (Definition 3): all tuples with
// non-zero equality probability.
func (rd *Reader) PEQ(q uda.UDA) ([]Match, error) { return rd.PETQ(q, 0) }

// TopK answers PETQ-top-k: the k tuples with the highest equality
// probability (ties at the kth position broken arbitrarily).
//
//ucatlint:hotpath
func (rd *Reader) TopK(q uda.UDA, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive k %d", k)
	}
	switch rd.rel.opts.Kind {
	case InvertedIndex:
		return rd.rel.inv.Reader(rd.view).TopK(q, k, rd.rel.opts.InvStrategy)
	case PDRTree:
		return rd.rel.pdr.Reader(rd.view).TopK(q, k)
	default:
		return rd.scanTopK(q, k)
	}
}

// scanPETQ is the index-less baseline: one pass over the base heap.
func (rd *Reader) scanPETQ(q uda.UDA, tau float64) ([]Match, error) {
	sp := rd.rec.StartSpan("core.scan.petq")
	defer sp.End()
	sp.AttrF("tau", tau)
	var res []Match
	err := rd.Scan(func(tid uint32, u uda.UDA) bool {
		rd.rec.Add("scan.tuples", 1)
		if p := uda.EqualityProb(q, u); p > tau {
			res = append(res, Match{TID: tid, Prob: p})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	query.SortMatches(res)
	return res, nil
}

func (rd *Reader) scanTopK(q uda.UDA, k int) ([]Match, error) {
	sp := rd.rec.StartSpan("core.scan.topk")
	defer sp.End()
	sp.AttrF("k", float64(k))
	tk := query.NewTopK(k)
	err := rd.Scan(func(tid uint32, u uda.UDA) bool {
		rd.rec.Add("scan.tuples", 1)
		tk.Offer(Match{TID: tid, Prob: uda.EqualityProb(q, u)})
		return true
	})
	if err != nil {
		return nil, err
	}
	return tk.Results(), nil
}

// WindowPETQ answers the relaxed window-equality threshold query on ordered
// domains (§2 of the paper): all tuples t with Pr(|q − t.a| ≤ c) > tau,
// treating item codes as positions on a total order. WindowPETQ(q, 0, tau)
// is plain PETQ.
//
//ucatlint:hotpath
func (rd *Reader) WindowPETQ(q uda.UDA, c uint32, tau float64) ([]Match, error) {
	if tau < 0 {
		return nil, fmt.Errorf("core: negative threshold %g", tau)
	}
	switch rd.rel.opts.Kind {
	case InvertedIndex:
		return rd.rel.inv.Reader(rd.view).WindowPETQ(q, c, tau)
	case PDRTree:
		return rd.rel.pdr.Reader(rd.view).WindowPETQ(q, c, tau)
	default:
		var res []Match
		err := rd.Scan(func(tid uint32, u uda.UDA) bool {
			if p := uda.WithinProb(q, u, c); p > tau {
				res = append(res, Match{TID: tid, Prob: p})
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		query.SortMatches(res)
		return res, nil
	}
}

// WindowTopK returns the k tuples with the highest window-equality
// probability Pr(|q − t.a| ≤ c).
//
//ucatlint:hotpath
func (rd *Reader) WindowTopK(q uda.UDA, c uint32, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive k %d", k)
	}
	switch rd.rel.opts.Kind {
	case InvertedIndex:
		return rd.rel.inv.Reader(rd.view).WindowTopK(q, c, k)
	case PDRTree:
		return rd.rel.pdr.Reader(rd.view).WindowTopK(q, c, k)
	default:
		tk := query.NewTopK(k)
		err := rd.Scan(func(tid uint32, u uda.UDA) bool {
			tk.Offer(Match{TID: tid, Prob: uda.WithinProb(q, u, c)})
			return true
		})
		if err != nil {
			return nil, err
		}
		return tk.Results(), nil
	}
}

// DSTQ answers the distributional similarity threshold query (Definition 5):
// all tuples whose distance from q under div is at most td, ascending by
// distance. The PDR-tree prunes subtrees for the metric divergences (L1,
// L2); other access methods scan.
//
//ucatlint:hotpath
func (rd *Reader) DSTQ(q uda.UDA, td float64, div uda.Divergence) ([]Neighbor, error) {
	if td < 0 {
		return nil, fmt.Errorf("core: negative distance threshold %g", td)
	}
	if rd.rel.opts.Kind == PDRTree {
		return rd.rel.pdr.Reader(rd.view).DSTQ(q, td, div)
	}
	var res []Neighbor
	err := rd.Scan(func(tid uint32, u uda.UDA) bool {
		if d := div.Distance(q, u); d <= td {
			res = append(res, Neighbor{TID: tid, Dist: d})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	query.SortNeighbors(res)
	return res, nil
}

// DSTopK answers DSQ-top-k: the k tuples distributionally closest to q.
//
//ucatlint:hotpath
func (rd *Reader) DSTopK(q uda.UDA, k int, div uda.Divergence) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive k %d", k)
	}
	if rd.rel.opts.Kind == PDRTree {
		return rd.rel.pdr.Reader(rd.view).DSTopK(q, k, div)
	}
	nk := query.NewNearestK(k)
	err := rd.Scan(func(tid uint32, u uda.UDA) bool {
		nk.Offer(Neighbor{TID: tid, Dist: div.Distance(q, u)})
		return true
	})
	if err != nil {
		return nil, err
	}
	return nk.Results(), nil
}

package core

import (
	"fmt"
)

// IndexStats is an access-method-agnostic description of a relation's
// physical layout.
type IndexStats struct {
	Kind       Kind
	Tuples     int
	StorePages int   // allocated pages across heap and index
	StoreBytes int64 // total allocated bytes
	Detail     string
}

func (s IndexStats) String() string {
	return fmt.Sprintf("%s: tuples=%d pages=%d bytes=%d (%s)",
		s.Kind, s.Tuples, s.StorePages, s.StoreBytes, s.Detail)
}

// IndexStats reports the relation's physical shape. For the PDR-tree this
// walks the tree (costing I/O); the other methods report from memory.
func (r *Relation) IndexStats() (IndexStats, error) {
	st := IndexStats{
		Kind:       r.opts.Kind,
		Tuples:     r.Len(),
		StorePages: r.pool.Store().NumPages(),
		StoreBytes: r.pool.Store().Bytes(),
	}
	switch r.opts.Kind {
	case InvertedIndex:
		st.Detail = r.inv.Stats().String()
	case PDRTree:
		ts, err := r.pdr.Stats()
		if err != nil {
			return IndexStats{}, err
		}
		st.Detail = ts.String()
	default:
		st.Detail = fmt.Sprintf("heap-pages=%d", st.StorePages)
	}
	return st, nil
}

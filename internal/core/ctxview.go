// Context plumbing for read-only queries.
//
// Every page access of a read-only query flows through its Reader's injected
// pager.View (the PR-2 concurrency boundary), which gives one choke point to
// make *all* query kinds cancellable without touching a single index
// traversal: wrap the view so each Fetch first checks the context. A long
// scan, an NRA sweep or a PDR-tree descent then stops at the next page
// boundary after cancellation — pages hold many tuples, so the check is
// amortized far below the cost of the work it bounds.
package core

import (
	"context"

	"ucat/internal/obs"
	"ucat/internal/pager"
)

// ctxView is a pager.View that fails fetches once its context is done. It
// forwards the optional capabilities (Stats, Evictions, Prefetch, Recorder)
// so instrumentation and readahead keep working through the wrapper.
type ctxView struct {
	ctx context.Context
	v   pager.View
}

// Fetch implements pager.View: it returns ctx.Err() once the context is
// cancelled or past its deadline, and otherwise delegates to the wrapped
// view.
func (cv *ctxView) Fetch(pid pager.PageID) (*pager.Page, error) {
	if err := cv.ctx.Err(); err != nil {
		return nil, err
	}
	return cv.v.Fetch(pid)
}

// viewStats / viewEvictions / viewPrefetch mirror the optional view
// capabilities obs.InstrumentView forwards; keeping them identical means a
// ctxView can wrap an instrumented view (or vice versa) without losing
// tracing, I/O attribution or readahead.
type viewStats interface{ Stats() pager.Stats }
type viewEvictions interface{ Evictions() uint64 }
type viewPrefetch interface {
	Prefetch(pid pager.PageID) error
}

// Stats passes through the wrapped view's I/O counters (zero when the view
// cannot report them).
func (cv *ctxView) Stats() pager.Stats {
	if st, ok := cv.v.(viewStats); ok {
		return st.Stats()
	}
	return pager.Stats{}
}

// Evictions passes through the wrapped view's eviction counter.
func (cv *ctxView) Evictions() uint64 {
	if ev, ok := cv.v.(viewEvictions); ok {
		return ev.Evictions()
	}
	return 0
}

// Prefetch forwards readahead hints; prefetch is best-effort by contract, so
// a done context simply drops the hint.
func (cv *ctxView) Prefetch(pid pager.PageID) error {
	if cv.ctx.Err() != nil {
		return nil
	}
	if pf, ok := cv.v.(viewPrefetch); ok {
		return pf.Prefetch(pid)
	}
	return nil
}

// Recorder exposes the wrapped view's trace recorder so obs.RecorderOf keeps
// discovering instrumentation through the context wrapper.
func (cv *ctxView) Recorder() *obs.Recorder { return obs.RecorderOf(cv.v) }

// WithContext returns a Reader whose page fetches fail with ctx.Err() once
// ctx is cancelled or its deadline passes. Long scans and index traversals
// stop at the next page access, so a server can bound every query with a
// per-request deadline:
//
//	rd := rel.Reader(view).WithContext(ctx)
//	ms, err := rd.PETQ(q, tau) // err is ctx.Err() if the deadline hit
//
// A nil or Background context returns the Reader unchanged (no wrapper, no
// per-fetch check).
func (rd *Reader) WithContext(ctx context.Context) *Reader {
	if ctx == nil || ctx == context.Background() {
		return rd
	}
	return &Reader{rel: rd.rel, view: &ctxView{ctx: ctx, v: rd.view}, rec: rd.rec}
}

package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ucat/internal/uda"
)

// randUDA builds a small random distribution over items [0, domain).
func randUDA(rng *rand.Rand, domain int) uda.UDA {
	n := 1 + rng.Intn(4)
	seen := map[uint32]bool{}
	var pairs []uda.Pair
	rest := 1.0
	for i := 0; i < n; i++ {
		item := uint32(rng.Intn(domain))
		if seen[item] {
			continue
		}
		seen[item] = true
		p := rest
		if i < n-1 {
			p = rest * (0.2 + 0.6*rng.Float64())
		}
		rest -= p
		pairs = append(pairs, uda.Pair{Item: item, Prob: p})
	}
	return uda.MustNew(pairs...)
}

// TestUpdateMatchesRebuild applies a random insert/update/delete stream to a
// mutated relation and to a fresh relation built from the surviving state,
// then checks all six query kinds agree bit-for-bit.
func TestUpdateMatchesRebuild(t *testing.T) {
	for _, kind := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			rel, err := NewRelation(Options{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			want := map[uint32]uda.UDA{} // surviving state
			var liveIDs []uint32
			for i := 0; i < 300; i++ {
				switch op := rng.Intn(10); {
				case op < 6 || len(liveIDs) == 0: // insert
					u := randUDA(rng, 30)
					tid, err := rel.Insert(u)
					if err != nil {
						t.Fatalf("op %d insert: %v", i, err)
					}
					want[tid] = u
					liveIDs = append(liveIDs, tid)
				case op < 8: // update
					tid := liveIDs[rng.Intn(len(liveIDs))]
					u := randUDA(rng, 30)
					if err := rel.Update(tid, u); err != nil {
						t.Fatalf("op %d update %d: %v", i, tid, err)
					}
					want[tid] = u
				default: // delete
					j := rng.Intn(len(liveIDs))
					tid := liveIDs[j]
					if err := rel.Delete(tid); err != nil {
						t.Fatalf("op %d delete %d: %v", i, tid, err)
					}
					delete(want, tid)
					liveIDs = append(liveIDs[:j], liveIDs[j+1:]...)
				}
			}
			ref, err := NewRelation(Options{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			for _, tid := range liveIDs {
				if err := ref.insertWithID(tid, want[tid]); err != nil {
					t.Fatal(err)
				}
			}
			assertSameAnswers(t, rel, ref, rng)
		})
	}
}

// assertSameAnswers runs all six query kinds against both relations with a
// few random parameter draws and requires identical results.
func assertSameAnswers(t *testing.T, got, want *Relation, rng *rand.Rand) {
	t.Helper()
	for trial := 0; trial < 5; trial++ {
		q := randUDA(rng, 30)
		tau := rng.Float64() * 0.5
		k := 1 + rng.Intn(10)
		c := uint32(1 + rng.Intn(3))
		td := 0.5 + rng.Float64()

		gm, err1 := got.PETQ(q, tau)
		wm, err2 := want.PETQ(q, tau)
		check(t, "PETQ", gm, wm, err1, err2)

		gm, err1 = got.TopK(q, k)
		wm, err2 = want.TopK(q, k)
		check(t, "TopK", gm, wm, err1, err2)

		gm, err1 = got.WindowPETQ(q, c, tau)
		wm, err2 = want.WindowPETQ(q, c, tau)
		check(t, "WindowPETQ", gm, wm, err1, err2)

		gm, err1 = got.WindowTopK(q, c, k)
		wm, err2 = want.WindowTopK(q, c, k)
		check(t, "WindowTopK", gm, wm, err1, err2)

		gn, err1 := got.DSTQ(q, td, uda.L1)
		wn, err2 := want.DSTQ(q, td, uda.L1)
		check(t, "DSTQ", gn, wn, err1, err2)

		gn, err1 = got.DSTopK(q, k, uda.L1)
		wn, err2 = want.DSTopK(q, k, uda.L1)
		check(t, "DSTopK", gn, wn, err1, err2)
	}
}

func check[T any](t *testing.T, kind string, got, want []T, err1, err2 error) {
	t.Helper()
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: errs %v / %v", kind, err1, err2)
	}
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s diverged:\n got %v\nwant %v", kind, got, want)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rel, err := NewRelation(Options{Kind: InvertedIndex})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		if _, err := rel.Insert(randUDA(rng, 20)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := rel.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not show through the original, and vice versa.
	if err := c.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.Insert(randUDA(rng, 20)); err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 51 || c.Len() != 49 {
		t.Fatalf("Len: rel=%d clone=%d, want 51/49", rel.Len(), c.Len())
	}
	if _, err := rel.Get(0); err != nil {
		t.Fatalf("original lost tuple 0: %v", err)
	}
	if _, err := c.Get(0); err == nil {
		t.Fatal("clone still has deleted tuple 0")
	}
}

package core

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"ucat/internal/pdrtree"
	"ucat/internal/uda"
)

func testSaveLoadRoundTrip(t *testing.T, opts Options) {
	t.Helper()
	rel, err := NewRelation(opts)
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r := rand.New(rand.NewSource(123))
	data := make(map[uint32]uda.UDA)
	for i := 0; i < 800; i++ {
		u := uda.Random(r, 15, 4)
		tid, err := rel.Insert(u)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		data[tid] = u
	}
	// Exercise deletions so tombstones round-trip too.
	for tid := uint32(0); tid < 100; tid += 7 {
		if err := rel.Delete(tid); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		delete(data, tid)
	}

	var buf bytes.Buffer
	if err := rel.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadRelation(&buf)
	if err != nil {
		t.Fatalf("LoadRelation: %v", err)
	}
	if loaded.Kind() != opts.Kind {
		t.Errorf("loaded Kind = %v, want %v", loaded.Kind(), opts.Kind)
	}
	if loaded.Len() != len(data) {
		t.Errorf("loaded Len = %d, want %d", loaded.Len(), len(data))
	}

	// Queries agree between original and loaded.
	q := uda.Random(r, 15, 3)
	want, err := rel.PETQ(q, 0.05)
	if err != nil {
		t.Fatalf("PETQ original: %v", err)
	}
	got, err := loaded.PETQ(q, 0.05)
	if err != nil {
		t.Fatalf("PETQ loaded: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded PETQ: %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].TID != want[i].TID || math.Abs(got[i].Prob-want[i].Prob) > 1e-12 {
			t.Fatalf("loaded match %d = %v, want %v", i, got[i], want[i])
		}
	}

	// The loaded relation accepts new tuples without id collisions.
	newTID, err := loaded.Insert(uda.Certain(3))
	if err != nil {
		t.Fatalf("Insert into loaded: %v", err)
	}
	if _, clash := data[newTID]; clash {
		t.Errorf("loaded relation reused tid %d", newTID)
	}
	if _, err := loaded.Get(newTID); err != nil {
		t.Errorf("Get of new tuple: %v", err)
	}
}

func TestSaveLoadScanOnly(t *testing.T) { testSaveLoadRoundTrip(t, Options{Kind: ScanOnly}) }
func TestSaveLoadInverted(t *testing.T) { testSaveLoadRoundTrip(t, Options{Kind: InvertedIndex}) }
func TestSaveLoadPDR(t *testing.T)      { testSaveLoadRoundTrip(t, Options{Kind: PDRTree}) }
func TestSaveLoadPDRCompressed(t *testing.T) {
	testSaveLoadRoundTrip(t, Options{
		Kind: PDRTree,
		PDR:  pdrtree.Config{Compression: pdrtree.SignatureCompression, Buckets: 8},
	})
}

func TestSaveLoadFile(t *testing.T) {
	rel, err := NewRelation(Options{Kind: PDRTree})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	if _, err := rel.Insert(uda.Certain(5)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	path := filepath.Join(t.TempDir(), "rel.ucat")
	if err := rel.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadRelationFile(path)
	if err != nil {
		t.Fatalf("LoadRelationFile: %v", err)
	}
	ms, err := loaded.PETQ(uda.Certain(5), 0.5)
	if err != nil || len(ms) != 1 {
		t.Errorf("loaded PETQ = (%v, %v)", ms, err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadRelation(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Errorf("garbage accepted")
	}
	var empty bytes.Buffer
	if _, err := LoadRelation(&empty); err == nil {
		t.Errorf("empty input accepted")
	}
}

func TestPDRConfigSurvivesReload(t *testing.T) {
	cfg := pdrtree.Config{
		Divergence:  uda.L2,
		Split:       pdrtree.TopDown,
		Compression: pdrtree.DiscretizedCompression,
		Bits:        5,
	}
	rel, err := NewRelation(Options{Kind: PDRTree, PDR: cfg})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		if _, err := rel.Insert(uda.Random(r, 40, 5)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := rel.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadRelation(&buf)
	if err != nil {
		t.Fatalf("LoadRelation: %v", err)
	}
	// Inserting into the loaded tree must use the same boundary encoding —
	// a mismatch would corrupt inner nodes immediately.
	for i := 0; i < 300; i++ {
		if _, err := loaded.Insert(uda.Random(r, 40, 5)); err != nil {
			t.Fatalf("Insert into loaded: %v", err)
		}
	}
	q := uda.Random(r, 40, 4)
	if _, err := loaded.PETQ(q, 0.05); err != nil {
		t.Fatalf("PETQ after reload+insert: %v", err)
	}
}

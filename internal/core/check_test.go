package core

import (
	"math/rand"
	"testing"

	"ucat/internal/uda"
)

func TestCheckIntegrityPasses(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, kind := range []Kind{ScanOnly, InvertedIndex, PDRTree} {
		rel, err := NewRelation(Options{Kind: kind, PoolFrames: 512})
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		for i := 0; i < 800; i++ {
			if _, err := rel.Insert(uda.Random(r, 15, 4)); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		for tid := uint32(0); tid < 100; tid += 3 {
			if err := rel.Delete(tid); err != nil {
				t.Fatalf("Delete: %v", err)
			}
		}
		probed, err := rel.CheckIntegrity(64)
		if err != nil {
			t.Fatalf("%v CheckIntegrity: %v", kind, err)
		}
		if probed == 0 {
			t.Errorf("%v: probed no tuples", kind)
		}
		// Full check too.
		if _, err := rel.CheckIntegrity(0); err != nil {
			t.Fatalf("%v full CheckIntegrity: %v", kind, err)
		}
	}
}

func TestCheckIntegrityDetectsMissingIndexEntry(t *testing.T) {
	// Build a PDR relation, then delete a tuple from the *tree only* by
	// reaching under the hood: the heap still has it, so the check must
	// flag the divergence.
	rel, err := NewRelation(Options{Kind: PDRTree})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	r := rand.New(rand.NewSource(9))
	var us []uda.UDA
	for i := 0; i < 50; i++ {
		u := uda.Random(r, 10, 3)
		us = append(us, u)
		if _, err := rel.Insert(u); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := rel.pdr.Delete(7, us[7]); err != nil {
		t.Fatalf("tree Delete: %v", err)
	}
	if _, err := rel.CheckIntegrity(0); err == nil {
		t.Errorf("CheckIntegrity missed a heap/index divergence")
	}
}

func TestIsNotFound(t *testing.T) {
	rel, err := NewRelation(Options{})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	_, err = rel.Get(99)
	if !IsNotFound(err) {
		t.Errorf("Get(99) err = %v, want not-found", err)
	}
	if IsNotFound(nil) {
		t.Errorf("IsNotFound(nil) = true")
	}
}

package core_test

import (
	"fmt"
	"log"

	"ucat/internal/core"
	"ucat/internal/uda"
)

// The paper's Table 1(a): an uncertain Problem attribute over the domain
// {Brake, Tires, Trans, Suspension, Exhaust} = {0, 1, 2, 3, 4}.
func ExampleRelation_PETQ() {
	rel, err := core.NewRelation(core.Options{Kind: core.PDRTree})
	if err != nil {
		log.Fatal(err)
	}
	tuples := []uda.UDA{
		uda.MustNew(uda.Pair{Item: 0, Prob: 0.5}, uda.Pair{Item: 1, Prob: 0.5}), // Explorer
		uda.MustNew(uda.Pair{Item: 2, Prob: 0.2}, uda.Pair{Item: 3, Prob: 0.8}), // Camry
		uda.MustNew(uda.Pair{Item: 4, Prob: 0.4}, uda.Pair{Item: 0, Prob: 0.6}), // Civic
		uda.MustNew(uda.Pair{Item: 2, Prob: 1.0}),                               // Caravan
	}
	for _, u := range tuples {
		if _, err := rel.Insert(u); err != nil {
			log.Fatal(err)
		}
	}
	// All tuples highly likely to have a brake problem (item 0).
	matches, err := rel.PETQ(uda.Certain(0), 0.4)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("tuple %d: %.2f\n", m.TID, m.Prob)
	}
	// Output:
	// tuple 2: 0.60
	// tuple 0: 0.50
}

func ExampleRelation_TopK() {
	rel, err := core.NewRelation(core.Options{Kind: core.InvertedIndex})
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []uda.UDA{
		uda.MustNew(uda.Pair{Item: 1, Prob: 0.9}, uda.Pair{Item: 2, Prob: 0.1}),
		uda.MustNew(uda.Pair{Item: 1, Prob: 0.3}, uda.Pair{Item: 3, Prob: 0.7}),
		uda.MustNew(uda.Pair{Item: 2, Prob: 1.0}),
	} {
		if _, err := rel.Insert(u); err != nil {
			log.Fatal(err)
		}
	}
	q := uda.MustNew(uda.Pair{Item: 1, Prob: 0.8}, uda.Pair{Item: 2, Prob: 0.2})
	top, err := rel.TopK(q, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range top {
		fmt.Printf("tuple %d: %.2f\n", m.TID, m.Prob)
	}
	// Output:
	// tuple 0: 0.74
	// tuple 1: 0.24
}

func ExamplePETJ() {
	// Table 1(b): employees with uncertain departments; which pairs might
	// work in the same one?
	mk := func() *core.Relation {
		rel, err := core.NewRelation(core.Options{Kind: core.PDRTree})
		if err != nil {
			log.Fatal(err)
		}
		return rel
	}
	employees := mk()
	for _, u := range []uda.UDA{
		uda.MustNew(uda.Pair{Item: 0, Prob: 0.5}, uda.Pair{Item: 1, Prob: 0.5}), // Jim: Shoes/Sales
		uda.MustNew(uda.Pair{Item: 1, Prob: 0.4}, uda.Pair{Item: 2, Prob: 0.6}), // Tom: Sales/Clothes
	} {
		if _, err := employees.Insert(u); err != nil {
			log.Fatal(err)
		}
	}
	pairs, err := core.PETJ(employees, employees, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		if p.Left < p.Right { // one direction only
			fmt.Printf("employees %d and %d: %.2f\n", p.Left, p.Right, p.Prob)
		}
	}
	// Output:
	// employees 0 and 1: 0.20
}

func ExampleRelation_DSTQ() {
	rel, err := core.NewRelation(core.Options{Kind: core.PDRTree})
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []uda.UDA{
		uda.MustNew(uda.Pair{Item: 0, Prob: 0.6}, uda.Pair{Item: 1, Prob: 0.4}),
		uda.MustNew(uda.Pair{Item: 0, Prob: 0.1}, uda.Pair{Item: 1, Prob: 0.9}),
	} {
		if _, err := rel.Insert(u); err != nil {
			log.Fatal(err)
		}
	}
	q := uda.MustNew(uda.Pair{Item: 0, Prob: 0.5}, uda.Pair{Item: 1, Prob: 0.5})
	near, err := rel.DSTQ(q, 0.25, uda.L1)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range near {
		fmt.Printf("tuple %d at L1 distance %.2f\n", n.TID, n.Dist)
	}
	// Output:
	// tuple 0 at L1 distance 0.20
}

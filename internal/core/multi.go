package core

import (
	"fmt"

	"ucat/internal/query"
	"ucat/internal/uda"
)

// MultiRelation implements the paper's stated future work ("the extension of
// these indexing techniques for multiple uncertain attributes", §6): a
// relation with several uncertain discrete attributes, each backed by its
// own index, with conjunctive probabilistic equality queries across them.
//
// Under the paper's independence assumption the probability that a tuple
// matches a conjunctive query is the product of the per-attribute equality
// probabilities: Pr(∧_i a_i = q_i) = Π_i Pr(a_i = q_i).
type MultiRelation struct {
	attrs []*Relation
	live  map[uint32]struct{}
	next  uint32
}

// NewMultiRelation creates a relation with one uncertain attribute per
// option set. At least one attribute is required.
func NewMultiRelation(opts ...Options) (*MultiRelation, error) {
	if len(opts) == 0 {
		return nil, fmt.Errorf("core: multi-relation needs at least one attribute")
	}
	m := &MultiRelation{live: make(map[uint32]struct{})}
	for i, o := range opts {
		rel, err := NewRelation(o)
		if err != nil {
			return nil, fmt.Errorf("core: attribute %d: %w", i, err)
		}
		m.attrs = append(m.attrs, rel)
	}
	return m, nil
}

// Attrs returns the number of uncertain attributes.
func (m *MultiRelation) Attrs() int { return len(m.attrs) }

// Attr exposes one attribute's underlying relation (for per-attribute
// queries and I/O statistics).
func (m *MultiRelation) Attr(i int) *Relation { return m.attrs[i] }

// Len returns the number of live tuples.
func (m *MultiRelation) Len() int { return len(m.live) }

// Insert appends a tuple with one UDA per attribute and returns its id.
func (m *MultiRelation) Insert(values ...uda.UDA) (uint32, error) {
	if len(values) != len(m.attrs) {
		return 0, fmt.Errorf("core: %d values for %d attributes", len(values), len(m.attrs))
	}
	tid := m.next
	for i, v := range values {
		if err := m.attrs[i].insertWithID(tid, v); err != nil {
			// Roll back the attributes already written.
			for j := 0; j < i; j++ {
				if derr := m.attrs[j].Delete(tid); derr != nil {
					return 0, fmt.Errorf("core: insert failed (%v) and rollback failed: %w", err, derr)
				}
			}
			return 0, err
		}
	}
	m.live[tid] = struct{}{}
	m.next++
	return tid, nil
}

// Delete removes a tuple from every attribute index.
func (m *MultiRelation) Delete(tid uint32) error {
	if _, ok := m.live[tid]; !ok {
		return fmt.Errorf("core: tuple %d not found", tid)
	}
	for i := range m.attrs {
		if err := m.attrs[i].Delete(tid); err != nil {
			return fmt.Errorf("core: attribute %d: %w", i, err)
		}
	}
	delete(m.live, tid)
	return nil
}

// Get fetches all attribute values of a tuple.
func (m *MultiRelation) Get(tid uint32) ([]uda.UDA, error) {
	out := make([]uda.UDA, len(m.attrs))
	for i := range m.attrs {
		v, err := m.attrs[i].Get(tid)
		if err != nil {
			return nil, fmt.Errorf("core: attribute %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// ConjunctivePETQ returns all tuples with Π_i Pr(a_i = q_i) > tau, with the
// exact product probability, in descending order.
//
// Every per-attribute factor is at most 1, so each factor of a qualifying
// tuple must itself exceed tau: the query runs PETQ(q_0, tau) on the first
// attribute's index and verifies the survivors against the remaining
// attributes, multiplying factors and abandoning a candidate as soon as its
// running product drops to tau or below. Put the most selective attribute
// first for the cheapest plan.
func (m *MultiRelation) ConjunctivePETQ(qs []uda.UDA, tau float64) ([]Match, error) {
	if len(qs) != len(m.attrs) {
		return nil, fmt.Errorf("core: %d query attributes for %d-attribute relation", len(qs), len(m.attrs))
	}
	if tau < 0 {
		return nil, fmt.Errorf("core: negative threshold %g", tau)
	}
	candidates, err := m.attrs[0].PETQ(qs[0], tau)
	if err != nil {
		return nil, err
	}
	var res []Match
	for _, c := range candidates {
		prob, qualified, err := m.product(c, qs, tau)
		if err != nil {
			return nil, err
		}
		if qualified {
			res = append(res, Match{TID: c.TID, Prob: prob})
		}
	}
	query.SortMatches(res)
	return res, nil
}

// product multiplies the remaining attributes' factors into the candidate's
// first-attribute probability, stopping early once the product cannot
// strictly exceed tau.
func (m *MultiRelation) product(c Match, qs []uda.UDA, tau float64) (float64, bool, error) {
	prob := c.Prob
	for i := 1; i < len(m.attrs); i++ {
		if prob <= tau {
			return 0, false, nil
		}
		v, err := m.attrs[i].Get(c.TID)
		if err != nil {
			return 0, false, err
		}
		prob *= uda.EqualityProb(qs[i], v)
	}
	return prob, prob > tau, nil
}

// ConjunctiveTopK returns the k tuples with the highest conjunctive
// probability Π_i Pr(a_i = q_i), ties at the kth position broken
// arbitrarily.
//
// It iteratively deepens a top-k' query on the first attribute: since the
// product is bounded by the first factor, once the kth best product so far
// is at least the (k'+1)-largest first-attribute factor, no unseen tuple can
// improve the answer.
func (m *MultiRelation) ConjunctiveTopK(qs []uda.UDA, k int) ([]Match, error) {
	if len(qs) != len(m.attrs) {
		return nil, fmt.Errorf("core: %d query attributes for %d-attribute relation", len(qs), len(m.attrs))
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive k %d", k)
	}
	for kp := 4 * k; ; kp *= 2 {
		heads, err := m.attrs[0].TopK(qs[0], kp)
		if err != nil {
			return nil, err
		}
		tk := query.NewTopK(k)
		for _, c := range heads {
			prob, _, err := m.product(c, qs, 0)
			if err != nil {
				return nil, err
			}
			tk.Offer(Match{TID: c.TID, Prob: prob})
		}
		// Unseen tuples have first factor ≤ the weakest head we retrieved;
		// if the first attribute ran dry we have seen everything.
		if len(heads) < kp {
			return tk.Results(), nil
		}
		frontier := heads[len(heads)-1].Prob
		if tk.Full() && tk.Threshold() >= frontier {
			return tk.Results(), nil
		}
		if kp > m.Len()*2 {
			return tk.Results(), nil
		}
	}
}

// Package core is the public face of the library: uncertain relations with
// probabilistic equality queries, top-k queries, distributional similarity
// queries, and joins, backed by either of the paper's two index structures
// (probabilistic inverted index, PDR-tree) or by a plain scan.
//
// A Relation models one table with a single uncertain discrete attribute
// (the paper's setting): a paged base heap holding the tuples plus an
// optional secondary index. All page traffic flows through one buffer pool
// whose statistics give the per-query disk I/O counts the paper reports.
//
// Typical use:
//
//	rel, _ := core.NewRelation(core.Options{Kind: core.PDRTree})
//	tid, _ := rel.Insert(uda.MustNew(uda.Pair{Item: brake, Prob: 0.5}, uda.Pair{Item: tires, Prob: 0.5}))
//	matches, _ := rel.PETQ(query, 0.3)   // tuples equal to query with prob > 0.3
//	top, _ := rel.TopK(query, 10)        // 10 most probable matches
package core

import (
	"errors"
	"fmt"

	"ucat/internal/invidx"
	"ucat/internal/pager"
	"ucat/internal/pdrtree"
	"ucat/internal/query"
	"ucat/internal/tuplestore"
	"ucat/internal/uda"
)

// Match is a query answer: tuple id and equality probability.
type Match = query.Match

// Neighbor is a similarity-query answer: tuple id and distance.
type Neighbor = query.Neighbor

// Kind selects the access method backing a Relation.
type Kind int

const (
	// ScanOnly keeps no index: every query scans the base heap. It is the
	// baseline the paper's indexes are measured against.
	ScanOnly Kind = iota
	// InvertedIndex uses the probabilistic inverted index (§3.1).
	InvertedIndex
	// PDRTree uses the Probabilistic Distribution R-tree (§3.2).
	PDRTree
)

func (k Kind) String() string {
	switch k {
	case ScanOnly:
		return "scan"
	case InvertedIndex:
		return "inverted"
	case PDRTree:
		return "pdr-tree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options configures a new Relation.
type Options struct {
	// Kind selects the access method. Default ScanOnly.
	Kind Kind
	// PoolFrames sizes the buffer pool; 0 means the paper's 100 frames.
	PoolFrames int
	// InvStrategy is the inverted-index search strategy for PETQ/TopK.
	// Default HighestProbFirst.
	InvStrategy invidx.Strategy
	// PDR configures the PDR-tree (divergence, insert/split policies,
	// compression). The zero value is the paper's best combination.
	PDR pdrtree.Config
}

// Relation is a single-uncertain-attribute relation with an optional index.
// It is not safe for concurrent use.
type Relation struct {
	opts    Options
	pool    *pager.Pool
	tuples  *tuplestore.Store
	inv     *invidx.Index
	pdr     *pdrtree.Tree
	nextTID uint32
	sample  *reservoir // for selectivity estimation
}

// NewRelation creates an empty relation.
func NewRelation(opts Options) (*Relation, error) {
	pool := pager.NewPool(pager.NewStore(), opts.PoolFrames)
	r := &Relation{opts: opts, pool: pool, sample: newReservoir()}
	switch opts.Kind {
	case ScanOnly:
		r.tuples = tuplestore.New(pool)
	case InvertedIndex:
		r.inv = invidx.New(pool)
		r.tuples = r.inv.Tuples() // the index shares the base heap
	case PDRTree:
		tree, err := pdrtree.New(pool, opts.PDR)
		if err != nil {
			return nil, err
		}
		r.pdr = tree
		r.tuples = tuplestore.New(pool)
	default:
		return nil, fmt.Errorf("core: unknown index kind %v", opts.Kind)
	}
	return r, nil
}

// Kind returns the access method backing the relation.
func (r *Relation) Kind() Kind { return r.opts.Kind }

// Pool returns the relation's buffer pool, whose Stats give the disk I/O
// counts of the queries run so far.
func (r *Relation) Pool() *pager.Pool { return r.pool }

// Len returns the number of live tuples.
func (r *Relation) Len() int { return r.tuples.Len() }

// SetInvStrategy switches the inverted-index search strategy for subsequent
// queries. It is a no-op for other kinds.
func (r *Relation) SetInvStrategy(s invidx.Strategy) { r.opts.InvStrategy = s }

// Insert appends a tuple and returns its assigned id.
func (r *Relation) Insert(u uda.UDA) (uint32, error) {
	tid := r.nextTID
	if err := r.insertWithID(tid, u); err != nil {
		return 0, err
	}
	r.nextTID++
	return tid, nil
}

func (r *Relation) insertWithID(tid uint32, u uda.UDA) error {
	if err := u.Validate(); err != nil {
		return fmt.Errorf("core: insert: %w", err)
	}
	if r.sample != nil {
		r.sample.observe(u)
	}
	switch r.opts.Kind {
	case ScanOnly:
		return r.tuples.Put(tid, u)
	case InvertedIndex:
		return r.inv.Insert(tid, u) // puts into the shared heap too
	case PDRTree:
		if err := r.tuples.Put(tid, u); err != nil {
			return err
		}
		if err := r.pdr.Insert(tid, u); err != nil {
			// Roll the heap insert back so the structures stay consistent.
			if derr := r.tuples.Delete(tid); derr != nil {
				return errors.Join(err, derr)
			}
			return err
		}
		return nil
	default:
		return fmt.Errorf("core: unknown index kind %v", r.opts.Kind)
	}
}

// Get fetches a tuple's distribution by id.
func (r *Relation) Get(tid uint32) (uda.UDA, error) { return r.tuples.Get(tid) }

// Delete removes a tuple from the relation and its index.
func (r *Relation) Delete(tid uint32) error {
	switch r.opts.Kind {
	case InvertedIndex:
		return r.inv.Delete(tid)
	case PDRTree:
		u, err := r.tuples.Get(tid)
		if err != nil {
			return err
		}
		if err := r.pdr.Delete(tid, u); err != nil {
			return err
		}
		return r.tuples.Delete(tid)
	default:
		return r.tuples.Delete(tid)
	}
}

// Scan visits every live tuple in heap order.
func (r *Relation) Scan(fn func(tid uint32, u uda.UDA) bool) error {
	return r.tuples.Scan(fn)
}

// PETQ answers the probabilistic equality threshold query (Definition 4):
// all tuples t with Pr(q = t) > tau, with exact probabilities, in descending
// probability order.
func (r *Relation) PETQ(q uda.UDA, tau float64) ([]Match, error) {
	if tau < 0 {
		return nil, fmt.Errorf("core: negative threshold %g", tau)
	}
	switch r.opts.Kind {
	case InvertedIndex:
		return r.inv.PETQ(q, tau, r.opts.InvStrategy)
	case PDRTree:
		return r.pdr.PETQ(q, tau)
	default:
		return r.scanPETQ(q, tau)
	}
}

// PEQ is the probabilistic equality query (Definition 3): all tuples with
// non-zero equality probability.
func (r *Relation) PEQ(q uda.UDA) ([]Match, error) { return r.PETQ(q, 0) }

// TopK answers PETQ-top-k: the k tuples with the highest equality
// probability (ties at the kth position broken arbitrarily).
func (r *Relation) TopK(q uda.UDA, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive k %d", k)
	}
	switch r.opts.Kind {
	case InvertedIndex:
		return r.inv.TopK(q, k, r.opts.InvStrategy)
	case PDRTree:
		return r.pdr.TopK(q, k)
	default:
		return r.scanTopK(q, k)
	}
}

// scanPETQ is the index-less baseline: one pass over the base heap.
func (r *Relation) scanPETQ(q uda.UDA, tau float64) ([]Match, error) {
	var res []Match
	err := r.tuples.Scan(func(tid uint32, u uda.UDA) bool {
		if p := uda.EqualityProb(q, u); p > tau {
			res = append(res, Match{TID: tid, Prob: p})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	query.SortMatches(res)
	return res, nil
}

func (r *Relation) scanTopK(q uda.UDA, k int) ([]Match, error) {
	tk := query.NewTopK(k)
	err := r.tuples.Scan(func(tid uint32, u uda.UDA) bool {
		tk.Offer(Match{TID: tid, Prob: uda.EqualityProb(q, u)})
		return true
	})
	if err != nil {
		return nil, err
	}
	return tk.Results(), nil
}

// WindowPETQ answers the relaxed window-equality threshold query on ordered
// domains (§2 of the paper): all tuples t with Pr(|q − t.a| ≤ c) > tau,
// treating item codes as positions on a total order. WindowPETQ(q, 0, tau)
// is plain PETQ.
func (r *Relation) WindowPETQ(q uda.UDA, c uint32, tau float64) ([]Match, error) {
	if tau < 0 {
		return nil, fmt.Errorf("core: negative threshold %g", tau)
	}
	switch r.opts.Kind {
	case InvertedIndex:
		return r.inv.WindowPETQ(q, c, tau)
	case PDRTree:
		return r.pdr.WindowPETQ(q, c, tau)
	default:
		var res []Match
		err := r.tuples.Scan(func(tid uint32, u uda.UDA) bool {
			if p := uda.WithinProb(q, u, c); p > tau {
				res = append(res, Match{TID: tid, Prob: p})
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		query.SortMatches(res)
		return res, nil
	}
}

// WindowTopK returns the k tuples with the highest window-equality
// probability Pr(|q − t.a| ≤ c).
func (r *Relation) WindowTopK(q uda.UDA, c uint32, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive k %d", k)
	}
	switch r.opts.Kind {
	case InvertedIndex:
		return r.inv.WindowTopK(q, c, k)
	case PDRTree:
		return r.pdr.WindowTopK(q, c, k)
	default:
		tk := query.NewTopK(k)
		err := r.tuples.Scan(func(tid uint32, u uda.UDA) bool {
			tk.Offer(Match{TID: tid, Prob: uda.WithinProb(q, u, c)})
			return true
		})
		if err != nil {
			return nil, err
		}
		return tk.Results(), nil
	}
}

// DSTQ answers the distributional similarity threshold query (Definition 5):
// all tuples whose distance from q under div is at most td, ascending by
// distance. The PDR-tree prunes subtrees for the metric divergences (L1,
// L2); other access methods scan.
func (r *Relation) DSTQ(q uda.UDA, td float64, div uda.Divergence) ([]Neighbor, error) {
	if td < 0 {
		return nil, fmt.Errorf("core: negative distance threshold %g", td)
	}
	if r.opts.Kind == PDRTree {
		return r.pdr.DSTQ(q, td, div)
	}
	var res []Neighbor
	err := r.tuples.Scan(func(tid uint32, u uda.UDA) bool {
		if d := div.Distance(q, u); d <= td {
			res = append(res, Neighbor{TID: tid, Dist: d})
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	query.SortNeighbors(res)
	return res, nil
}

// DSTopK answers DSQ-top-k: the k tuples distributionally closest to q.
func (r *Relation) DSTopK(q uda.UDA, k int, div uda.Divergence) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive k %d", k)
	}
	if r.opts.Kind == PDRTree {
		return r.pdr.DSTopK(q, k, div)
	}
	nk := query.NewNearestK(k)
	err := r.tuples.Scan(func(tid uint32, u uda.UDA) bool {
		nk.Offer(Neighbor{TID: tid, Dist: div.Distance(q, u)})
		return true
	})
	if err != nil {
		return nil, err
	}
	return nk.Results(), nil
}

// Package core is the public face of the library: uncertain relations with
// probabilistic equality queries, top-k queries, distributional similarity
// queries, and joins, backed by either of the paper's two index structures
// (probabilistic inverted index, PDR-tree) or by a plain scan.
//
// A Relation models one table with a single uncertain discrete attribute
// (the paper's setting): a paged base heap holding the tuples plus an
// optional secondary index. All page traffic flows through one buffer pool
// whose statistics give the per-query disk I/O counts the paper reports.
//
// Typical use:
//
//	rel, _ := core.NewRelation(core.Options{Kind: core.PDRTree})
//	tid, _ := rel.Insert(uda.MustNew(uda.Pair{Item: brake, Prob: 0.5}, uda.Pair{Item: tires, Prob: 0.5}))
//	matches, _ := rel.PETQ(query, 0.3)   // tuples equal to query with prob > 0.3
//	top, _ := rel.TopK(query, 10)        // 10 most probable matches
package core

import (
	"errors"
	"fmt"

	"ucat/internal/dcache"
	"ucat/internal/invidx"
	"ucat/internal/obs"
	"ucat/internal/pager"
	"ucat/internal/pdrtree"
	"ucat/internal/query"
	"ucat/internal/tuplestore"
	"ucat/internal/uda"
)

// Match is a query answer: tuple id and equality probability.
type Match = query.Match

// Neighbor is a similarity-query answer: tuple id and distance.
type Neighbor = query.Neighbor

// Kind selects the access method backing a Relation.
type Kind int

const (
	// ScanOnly keeps no index: every query scans the base heap. It is the
	// baseline the paper's indexes are measured against.
	ScanOnly Kind = iota
	// InvertedIndex uses the probabilistic inverted index (§3.1).
	InvertedIndex
	// PDRTree uses the Probabilistic Distribution R-tree (§3.2).
	PDRTree
)

func (k Kind) String() string {
	switch k {
	case ScanOnly:
		return "scan"
	case InvertedIndex:
		return "inverted"
	case PDRTree:
		return "pdr-tree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options configures a new Relation.
type Options struct {
	// Kind selects the access method. Default ScanOnly.
	Kind Kind
	// PoolFrames sizes the buffer pool; 0 means the paper's 100 frames.
	PoolFrames int
	// InvStrategy is the inverted-index search strategy for PETQ/TopK.
	// Default HighestProbFirst.
	InvStrategy invidx.Strategy
	// PDR configures the PDR-tree (divergence, insert/split policies,
	// compression). The zero value is the paper's best combination.
	PDR pdrtree.Config
	// NoDecodeCache disables the relation-wide decoded-page cache. The zero
	// value (cache ON) is the recommended configuration: the cache sits above
	// the buffer pool and skips deserialization only — every page is still
	// fetched through the pool, so the paper's I/O counts are bit-identical
	// either way. Disabling it exists for A/B benchmarking (ucatbench
	// -decodecache=false) and memory-constrained embedding.
	NoDecodeCache bool
	// DecodeCacheBytes bounds the decoded-page cache's memory;
	// 0 means dcache.DefaultBytes.
	DecodeCacheBytes int
	// Readahead enables sibling-leaf prefetch on inverted-list B+-tree scans.
	// Off by default: prefetch reads are counted outside the paper's I/O
	// metric, but the default stays conservative so figure runs exercise the
	// exact demand-fetch sequence of the paper unless explicitly opted in.
	Readahead bool
}

// Relation is a single-uncertain-attribute relation with an optional index.
// It is not safe for concurrent use.
type Relation struct {
	opts    Options
	pool    *pager.Pool
	tuples  *tuplestore.Store
	inv     *invidx.Index
	pdr     *pdrtree.Tree
	nextTID uint32
	sample  *reservoir // for selectivity estimation
	cache   *dcache.Cache
}

// NewRelation creates an empty relation.
func NewRelation(opts Options) (*Relation, error) {
	pool := pager.NewPool(pager.NewStore(), opts.PoolFrames)
	r := &Relation{opts: opts, pool: pool, sample: newReservoir()}
	switch opts.Kind {
	case ScanOnly:
		r.tuples = tuplestore.New(pool)
	case InvertedIndex:
		r.inv = invidx.New(pool)
		r.tuples = r.inv.Tuples() // the index shares the base heap
	case PDRTree:
		tree, err := pdrtree.New(pool, opts.PDR)
		if err != nil {
			return nil, err
		}
		r.pdr = tree
		r.tuples = tuplestore.New(pool)
	default:
		return nil, fmt.Errorf("core: unknown index kind %v", opts.Kind)
	}
	r.applyCacheOptions()
	return r, nil
}

// applyCacheOptions creates the relation-wide decoded-page cache (unless
// disabled) and injects it — plus the readahead setting — into every
// component. One cache serves the whole relation: page ids are unique per
// store, so heap pages, inverted-list leaves and PDR-tree nodes share the
// budget without colliding. Cache counters are mirrored into the process
// metrics registry (ucat_dcache_* on /metrics).
func (r *Relation) applyCacheOptions() {
	if !r.opts.NoDecodeCache {
		r.cache = dcache.New(int64(r.opts.DecodeCacheBytes))
		r.cache.Instrument(obs.Default)
	}
	switch r.opts.Kind {
	case ScanOnly:
		r.tuples.SetCache(r.cache)
	case InvertedIndex:
		r.inv.SetCache(r.cache) // covers the shared heap and every list
		r.inv.SetReadahead(r.opts.Readahead)
	case PDRTree:
		r.tuples.SetCache(r.cache)
		r.pdr.SetCache(r.cache)
	}
}

// DecodeCache returns the relation's decoded-page cache, or nil when the
// relation was created with NoDecodeCache. Its Stats expose hit/miss/evict
// counts for benchmark reporting.
func (r *Relation) DecodeCache() *dcache.Cache { return r.cache }

// Kind returns the access method backing the relation.
func (r *Relation) Kind() Kind { return r.opts.Kind }

// indexPageCost is the GDSF re-materialization cost of an index page
// relative to a heap page's 1. The ratio is a heuristic from the decode
// profiles behind BENCH_cache.json: materializing a B+-tree/PDR-tree node
// (boundary vectors, fanout entries, probability tables) costs several times
// a heap page's flat row decode. GDSF only needs the ordering to be roughly
// right — index pages should outlive heap pages at equal recency — not the
// constant to be exact.
const indexPageCost = 4

// PageCostFunc returns a decode-cost estimator for the relation's pages,
// suitable for pager.Pool.SetCostFunc on a GDSF shared pool: heap data
// pages cost 1, everything else in the store (B+-tree and PDR-tree nodes,
// posting pages) costs indexPageCost. The heap-page set is snapshotted at
// call time, which is exact for the read-only serving path; call it again
// after ingesting tuples.
func (r *Relation) PageCostFunc() pager.CostFunc {
	heap := r.tuples.DataPageSet()
	return func(pid pager.PageID, data []byte) float64 {
		if _, ok := heap[pid]; ok {
			return 1
		}
		return indexPageCost
	}
}

// Pool returns the relation's buffer pool, whose Stats give the disk I/O
// counts of the queries run so far.
func (r *Relation) Pool() *pager.Pool { return r.pool }

// Len returns the number of live tuples.
func (r *Relation) Len() int { return r.tuples.Len() }

// SetInvStrategy switches the inverted-index search strategy for subsequent
// queries. It is a no-op for other kinds.
func (r *Relation) SetInvStrategy(s invidx.Strategy) { r.opts.InvStrategy = s }

// Insert appends a tuple and returns its assigned id.
func (r *Relation) Insert(u uda.UDA) (uint32, error) {
	tid := r.nextTID
	if err := r.insertWithID(tid, u); err != nil {
		return 0, err
	}
	r.nextTID++
	return tid, nil
}

func (r *Relation) insertWithID(tid uint32, u uda.UDA) error {
	if err := u.Validate(); err != nil {
		return fmt.Errorf("core: insert: %w", err)
	}
	if r.sample != nil {
		r.sample.observe(u)
	}
	switch r.opts.Kind {
	case ScanOnly:
		return r.tuples.Put(tid, u)
	case InvertedIndex:
		return r.inv.Insert(tid, u) // puts into the shared heap too
	case PDRTree:
		if err := r.tuples.Put(tid, u); err != nil {
			return err
		}
		if err := r.pdr.Insert(tid, u); err != nil {
			// Roll the heap insert back so the structures stay consistent.
			if derr := r.tuples.Delete(tid); derr != nil {
				return errors.Join(err, derr)
			}
			return err
		}
		return nil
	default:
		return fmt.Errorf("core: unknown index kind %v", r.opts.Kind)
	}
}

// Get fetches a tuple's distribution by id.
func (r *Relation) Get(tid uint32) (uda.UDA, error) { return r.tuples.Get(tid) }

// Delete removes a tuple from the relation and its index.
func (r *Relation) Delete(tid uint32) error {
	switch r.opts.Kind {
	case InvertedIndex:
		return r.inv.Delete(tid)
	case PDRTree:
		u, err := r.tuples.Get(tid)
		if err != nil {
			return err
		}
		if err := r.pdr.Delete(tid, u); err != nil {
			return err
		}
		return r.tuples.Delete(tid)
	default:
		return r.tuples.Delete(tid)
	}
}

// Scan visits every live tuple in heap order.
func (r *Relation) Scan(fn func(tid uint32, u uda.UDA) bool) error {
	return r.tuples.Scan(fn)
}

// PETQ answers the probabilistic equality threshold query (Definition 4)
// through the relation's own pool. See Reader.PETQ.
func (r *Relation) PETQ(q uda.UDA, tau float64) ([]Match, error) {
	return r.Reader(nil).PETQ(q, tau)
}

// PEQ is the probabilistic equality query (Definition 3): all tuples with
// non-zero equality probability.
func (r *Relation) PEQ(q uda.UDA) ([]Match, error) { return r.PETQ(q, 0) }

// TopK answers PETQ-top-k through the relation's own pool. See Reader.TopK.
func (r *Relation) TopK(q uda.UDA, k int) ([]Match, error) {
	return r.Reader(nil).TopK(q, k)
}

// WindowPETQ answers the relaxed window-equality threshold query through the
// relation's own pool. See Reader.WindowPETQ.
func (r *Relation) WindowPETQ(q uda.UDA, c uint32, tau float64) ([]Match, error) {
	return r.Reader(nil).WindowPETQ(q, c, tau)
}

// WindowTopK answers the relaxed window-equality top-k query through the
// relation's own pool. See Reader.WindowTopK.
func (r *Relation) WindowTopK(q uda.UDA, c uint32, k int) ([]Match, error) {
	return r.Reader(nil).WindowTopK(q, c, k)
}

// DSTQ answers the distributional similarity threshold query through the
// relation's own pool. See Reader.DSTQ.
func (r *Relation) DSTQ(q uda.UDA, td float64, div uda.Divergence) ([]Neighbor, error) {
	return r.Reader(nil).DSTQ(q, td, div)
}

// DSTopK answers DSQ-top-k through the relation's own pool. See
// Reader.DSTopK.
func (r *Relation) DSTopK(q uda.UDA, k int, div uda.Divergence) ([]Neighbor, error) {
	return r.Reader(nil).DSTopK(q, k, div)
}

package core

import (
	"bytes"
	"errors"
	"fmt"

	"ucat/internal/uda"
)

// Update replaces a live tuple's distribution in place, keeping its id. The
// heap record is repointed (tuplestore.Replace) and the index entries for the
// old distribution are swapped for the new ones. Like Insert/Delete, it is
// not safe for concurrent use; the live write path serializes all mutations
// behind its writer lock (DESIGN.md §21).
func (r *Relation) Update(tid uint32, u uda.UDA) error {
	if err := u.Validate(); err != nil {
		return fmt.Errorf("core: update: %w", err)
	}
	switch r.opts.Kind {
	case ScanOnly:
		return r.tuples.Replace(tid, u)
	case InvertedIndex:
		return r.inv.Update(tid, u)
	case PDRTree:
		old, err := r.tuples.Get(tid)
		if err != nil {
			return err
		}
		if err := r.pdr.Delete(tid, old); err != nil {
			return err
		}
		if err := r.tuples.Replace(tid, u); err != nil {
			// Re-insert the old entry so the tree matches the untouched heap.
			if rerr := r.pdr.Insert(tid, old); rerr != nil {
				return errors.Join(err, rerr)
			}
			return err
		}
		return r.pdr.Insert(tid, u)
	default:
		return fmt.Errorf("core: unknown index kind %v", r.opts.Kind)
	}
}

// Clone returns a deep, independent copy of the relation: its own store,
// pool, components, and decode cache, with the original's behavioral options
// carried over. The checkpointer folds buffered operations into a clone while
// queries keep reading the original (DESIGN.md §21, DURABILITY.md §6).
func (r *Relation) Clone() (*Relation, error) {
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		return nil, fmt.Errorf("core: clone: %w", err)
	}
	c, err := LoadRelation(&buf)
	if err != nil {
		return nil, fmt.Errorf("core: clone: %w", err)
	}
	// The snapshot records structure (kind, frames, PDR config) but not the
	// behavioral options; carry them over and rebuild the cache under them.
	c.opts = r.opts
	c.applyCacheOptions()
	return c, nil
}

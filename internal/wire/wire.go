// Package wire implements ucatwire, ucat's compact binary query protocol.
//
// A ucatwire message is one frame: an 8-byte header (2-byte magic "UW", a
// version byte, a frame-type byte, and a fixed little-endian uint32 body
// length) followed by the body. Bodies are varint-encoded: integers use the
// unsigned varint of encoding/binary, probabilities and distances are raw
// IEEE-754 bits as fixed 8-byte little-endian words (so answers survive the
// round trip bit-for-bit — the serving determinism checks compare exact
// floats). Errors, Retry-After hints, and trace IDs travel in-band inside
// response frames; the transport status is not part of the protocol.
//
// The encoders are append-style (AppendRequest/AppendResponse) so a pooled
// buffer can absorb every allocation of the steady-state encode path; the
// decoders are bounded — a declared element count never pre-allocates more
// than the remaining bytes could actually encode, so corrupt or adversarial
// frames cannot over-allocate (FuzzDecodeFrame holds that line).
//
// This package is deliberately dependency-light: no encoding/json, no fmt —
// it sits on the serving hot path and the ucatlint hotlog/hotalloc checks
// audit everything reachable from the Append*/Decode* entry points.
package wire

import (
	"encoding/binary"
	"errors"
	"math"

	"ucat/internal/uda"
)

// ContentType is the HTTP media type that selects the binary protocol on
// ucatd's listener; requests and responses both carry it.
const ContentType = "application/x-ucatwire"

// Version is the protocol revision encoded in every frame header. A server
// answers a frame of an unknown version with an in-band error (its own frames
// stay at the version it speaks); clients should fall back to JSON.
const Version = 1

// Frame types.
const (
	FrameQuery    = 0x01 // request body: a query
	FrameResponse = 0x02 // response body: an answer or an in-band error
)

// HeaderLen is the fixed frame-header size: magic (2) + version (1) +
// frame type (1) + body length (4, little-endian uint32).
const HeaderLen = 8

// MaxFrameBytes bounds a frame body, mirroring the server's 1 MiB JSON body
// cap. DecodeFrame rejects larger declared lengths before touching the body.
const MaxFrameBytes = 1 << 20

// Frame magic: 'U', 'W'.
const (
	magic0 = 'U'
	magic1 = 'W'
)

// Kind identifies the query kind inside a frame. The byte values are part of
// the protocol — append-only, never renumber.
type Kind byte

// The kind bytes, mirroring the JSON protocol's kind strings in the server's
// canonical order. numKinds bounds decode-side validation.
const (
	KindPETQ       Kind = 0
	KindTopK       Kind = 1
	KindWindow     Kind = 2
	KindWindowTopK Kind = 3
	KindDSTQ       Kind = 4
	KindNeighbor   Kind = 5

	numKinds = 6
)

// String returns the kind's canonical name, the same strings the JSON
// protocol and the server metrics use. It never formats: unknown kinds
// collapse to a literal.
func (k Kind) String() string {
	switch k {
	case KindPETQ:
		return "petq"
	case KindTopK:
		return "topk"
	case KindWindow:
		return "window"
	case KindWindowTopK:
		return "windowtopk"
	case KindDSTQ:
		return "dstq"
	case KindNeighbor:
		return "neighbor"
	}
	return "unknown"
}

// KindOf maps a canonical kind name to its wire code; ok is false for names
// the protocol does not know.
func KindOf(name string) (Kind, bool) {
	switch name {
	case "petq":
		return KindPETQ, true
	case "topk":
		return KindTopK, true
	case "window":
		return KindWindow, true
	case "windowtopk":
		return KindWindowTopK, true
	case "dstq":
		return KindDSTQ, true
	case "neighbor":
		return KindNeighbor, true
	}
	return 0, false
}

// Static decode errors. Sentinels, not formatted messages: the decode path
// must not allocate per failure, and callers match with errors.Is.
var (
	ErrShortFrame    = errors.New("wire: frame shorter than header")
	ErrBadMagic      = errors.New("wire: bad frame magic")
	ErrVersion       = errors.New("wire: unsupported protocol version")
	ErrBadFrameType  = errors.New("wire: unknown frame type")
	ErrFrameTooLarge = errors.New("wire: declared body length exceeds MaxFrameBytes")
	ErrFrameLength   = errors.New("wire: declared body length does not match frame")
	ErrTruncated     = errors.New("wire: body truncated")
	ErrBadKind       = errors.New("wire: unknown query kind")
	ErrBadDivergence = errors.New("wire: unknown divergence code")
	ErrValueRange    = errors.New("wire: integer field out of range")
	ErrTrailingBytes = errors.New("wire: trailing bytes after body")
)

// Request is a decoded query frame. Pairs is the raw distribution — the
// server validates it through uda.New, exactly like the JSON path parses the
// item:prob string — and the per-kind parameters mirror QueryRequest.
type Request struct {
	Kind      Kind
	Pairs     []uda.Pair
	Tau       float64 // petq, window
	K         int     // topk, windowtopk, neighbor
	C         uint32  // window, windowtopk
	TD        float64 // dstq
	Div       uda.Divergence
	Limit     int
	TimeoutMS int64
	Explain   bool
}

// Match is one equality answer: tuple id (varint) and equality probability
// (fixed64 bits). The JSON tags make it the server's wire type for both
// protocols, so answers need no conversion between them.
type Match struct {
	TID  uint32  `json:"tid"`
	Prob float64 `json:"prob"`
}

// Neighbor is one similarity answer: tuple id and distributional distance.
type Neighbor struct {
	TID  uint32  `json:"tid"`
	Dist float64 `json:"dist"`
}

// Response is a decoded response frame. Status carries HTTP semantics
// in-band (0 means 200 OK); RetryAfterSec is the binary Retry-After header.
// Matches/Neighbors/IO/trace fields mirror QueryResponse.
type Response struct {
	Kind          Kind
	TraceID       uint64
	Status        int // 0 or 200 = OK; else the HTTP-equivalent error code
	RetryAfterSec int
	Err           string
	Count         int
	Truncated     bool
	Matches       []Match
	Neighbors     []Neighbor
	HasIO         bool
	Reads         uint64
	Hits          uint64
	ElapsedNS     int64
	Batched       bool
	BatchSize     int
	Slow          bool
	Explain       string
}

// Request body flags.
const flagReqExplain = 1 << 0

// Response body flags.
const (
	flagTruncated = 1 << 0
	flagBatched   = 1 << 1
	flagSlow      = 1 << 2
	flagErr       = 1 << 3
	flagExplain   = 1 << 4
	flagIO        = 1 << 5
)

// minPairBytes is the smallest possible encoding of one (id, float64) element
// — a 1-byte varint id plus 8 fixed bytes. Decoders divide the remaining body
// by it to bound pre-allocation.
const minPairBytes = 9

// AppendPairs encodes a distribution as a count followed by one
// (varint item, fixed64 probability bits) element per pair — the exact
// encoding query frames use for distributions. It is exported for the WAL,
// whose records persist distributions with the same bit-exact layout.
func AppendPairs(dst []byte, pairs []uda.Pair) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pairs)))
	for _, p := range pairs {
		dst = binary.AppendUvarint(dst, uint64(p.Item))
		dst = appendFixed64(dst, p.Prob)
	}
	return dst
}

// DecodePairs decodes a pair list written by AppendPairs from the front of
// buf, returning the pairs and the number of bytes consumed. The declared
// count is bounded by what the remaining bytes could actually encode, like
// every ucatwire decoder, so a corrupt count cannot over-allocate.
func DecodePairs(buf []byte) ([]uda.Pair, int, error) {
	c := cursor{b: buf}
	n := c.count(minPairBytes)
	var pairs []uda.Pair
	if c.err == nil && n > 0 {
		pairs = make([]uda.Pair, 0, n)
	}
	for i := 0; i < n && c.err == nil; i++ {
		item := c.uint32v()
		prob := c.fixed64()
		pairs = append(pairs, uda.Pair{Item: item, Prob: prob})
	}
	if c.err != nil {
		return nil, 0, c.err
	}
	return pairs, c.off, nil
}

// appendHeader starts a frame, reserving the 4 length bytes; patchLen fills
// them once the body is complete.
func appendHeader(dst []byte, frameType byte) ([]byte, int) {
	dst = append(dst, magic0, magic1, Version, frameType, 0, 0, 0, 0)
	return dst, len(dst) - 4
}

func patchLen(b []byte, lenOff int) []byte {
	binary.LittleEndian.PutUint32(b[lenOff:], uint32(len(b)-lenOff-4))
	return b
}

func appendFixed64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendRequest encodes req as a complete query frame onto dst and returns
// the extended buffer. Only the fields the kind uses are encoded.
func AppendRequest(dst []byte, req *Request) []byte {
	b, off := appendHeader(dst, FrameQuery)
	b = append(b, byte(req.Kind))
	var flags byte
	if req.Explain {
		flags |= flagReqExplain
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(req.TimeoutMS))
	b = binary.AppendUvarint(b, uint64(req.Limit))
	b = binary.AppendUvarint(b, uint64(len(req.Pairs)))
	for _, p := range req.Pairs {
		b = binary.AppendUvarint(b, uint64(p.Item))
		b = appendFixed64(b, p.Prob)
	}
	switch req.Kind {
	case KindPETQ:
		b = appendFixed64(b, req.Tau)
	case KindTopK:
		b = binary.AppendUvarint(b, uint64(req.K))
	case KindWindow:
		b = binary.AppendUvarint(b, uint64(req.C))
		b = appendFixed64(b, req.Tau)
	case KindWindowTopK:
		b = binary.AppendUvarint(b, uint64(req.C))
		b = binary.AppendUvarint(b, uint64(req.K))
	case KindDSTQ:
		b = appendFixed64(b, req.TD)
		b = append(b, byte(req.Div))
	case KindNeighbor:
		b = binary.AppendUvarint(b, uint64(req.K))
		b = append(b, byte(req.Div))
	}
	return patchLen(b, off)
}

// AppendResponse encodes resp as a complete response frame onto dst. A
// Status of 0 or 200 encodes as success; anything else carries the status,
// Retry-After hint, and error text in-band.
func AppendResponse(dst []byte, resp *Response) []byte {
	b, off := appendHeader(dst, FrameResponse)
	b = append(b, byte(resp.Kind))
	hasErr := resp.Status != 0 && resp.Status != 200
	var flags byte
	if resp.Truncated {
		flags |= flagTruncated
	}
	if resp.Batched {
		flags |= flagBatched
	}
	if resp.Slow {
		flags |= flagSlow
	}
	if hasErr {
		flags |= flagErr
	}
	if resp.Explain != "" {
		flags |= flagExplain
	}
	if resp.HasIO {
		flags |= flagIO
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, resp.TraceID)
	if hasErr {
		b = binary.AppendUvarint(b, uint64(resp.Status))
		b = binary.AppendUvarint(b, uint64(resp.RetryAfterSec))
		b = appendString(b, resp.Err)
	}
	b = binary.AppendUvarint(b, uint64(resp.Count))
	b = binary.AppendUvarint(b, uint64(len(resp.Matches)))
	for _, m := range resp.Matches {
		b = binary.AppendUvarint(b, uint64(m.TID))
		b = appendFixed64(b, m.Prob)
	}
	b = binary.AppendUvarint(b, uint64(len(resp.Neighbors)))
	for _, n := range resp.Neighbors {
		b = binary.AppendUvarint(b, uint64(n.TID))
		b = appendFixed64(b, n.Dist)
	}
	if resp.HasIO {
		b = binary.AppendUvarint(b, resp.Reads)
		b = binary.AppendUvarint(b, resp.Hits)
	}
	b = binary.AppendUvarint(b, uint64(resp.ElapsedNS))
	if resp.Batched {
		b = binary.AppendUvarint(b, uint64(resp.BatchSize))
	}
	if resp.Explain != "" {
		b = appendString(b, resp.Explain)
	}
	return patchLen(b, off)
}

// DecodeFrame validates the header of a complete frame and returns its type
// and body. The buffer must hold exactly one frame: a declared length that
// over- or under-shoots the buffer is an error, not a partial decode.
func DecodeFrame(buf []byte) (frameType byte, body []byte, err error) {
	if len(buf) < HeaderLen {
		return 0, nil, ErrShortFrame
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return 0, nil, ErrBadMagic
	}
	if buf[2] != Version {
		return 0, nil, ErrVersion
	}
	frameType = buf[3]
	if frameType != FrameQuery && frameType != FrameResponse {
		return 0, nil, ErrBadFrameType
	}
	n := binary.LittleEndian.Uint32(buf[4:])
	if n > MaxFrameBytes {
		return 0, nil, ErrFrameTooLarge
	}
	if int64(n) != int64(len(buf)-HeaderLen) {
		return 0, nil, ErrFrameLength
	}
	return frameType, buf[HeaderLen:], nil
}

// cursor walks a frame body with a sticky error, so decode code reads
// straight-line without per-field error plumbing.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.fail(ErrTruncated)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail(ErrTruncated)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) fixed64() float64 {
	if c.err != nil {
		return 0
	}
	if c.remaining() < 8 {
		c.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return math.Float64frombits(v)
}

// uint32v decodes a varint that must fit uint32.
func (c *cursor) uint32v() uint32 {
	v := c.uvarint()
	if v > math.MaxUint32 {
		c.fail(ErrValueRange)
	}
	return uint32(v)
}

// intv decodes a varint that must fit a non-negative int32 — the range of
// every count-like field (k, limit, counts, status, batch size).
func (c *cursor) intv() int {
	v := c.uvarint()
	if v > math.MaxInt32 {
		c.fail(ErrValueRange)
	}
	return int(v)
}

// str decodes a length-prefixed string. It allocates (strings are immutable);
// only rare fields — error text, explain trees — are strings.
func (c *cursor) str() string {
	n := c.intv()
	if c.err != nil {
		return ""
	}
	if n > c.remaining() {
		c.fail(ErrTruncated)
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

// count decodes an element count and bounds it by what the remaining bytes
// could possibly encode at minBytes per element, so a corrupt count cannot
// drive pre-allocation past the frame's own size.
func (c *cursor) count(minBytes int) int {
	n := c.intv()
	if c.err != nil {
		return 0
	}
	if n > c.remaining()/minBytes {
		c.fail(ErrTruncated)
		return 0
	}
	return n
}

func (c *cursor) finish() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return ErrTrailingBytes
	}
	return nil
}

// DecodeRequest decodes a query-frame body into req, reusing req's Pairs
// slice when capacity allows. On error req's contents are unspecified.
func DecodeRequest(body []byte, req *Request) error {
	c := cursor{b: body}
	k := Kind(c.byte())
	if c.err == nil && k >= numKinds {
		return ErrBadKind
	}
	flags := c.byte()
	req.Kind = k
	req.Explain = flags&flagReqExplain != 0
	t := c.uvarint()
	if t > math.MaxInt32 { // milliseconds; anything larger is garbage
		c.fail(ErrValueRange)
	}
	req.TimeoutMS = int64(t)
	req.Limit = c.intv()
	req.Tau, req.K, req.C, req.TD, req.Div = 0, 0, 0, 0, 0
	n := c.count(minPairBytes)
	pairs := req.Pairs[:0]
	if cap(pairs) < n {
		pairs = make([]uda.Pair, 0, n)
	}
	for i := 0; i < n && c.err == nil; i++ {
		item := c.uint32v()
		prob := c.fixed64()
		pairs = append(pairs, uda.Pair{Item: item, Prob: prob})
	}
	req.Pairs = pairs
	switch k {
	case KindPETQ:
		req.Tau = c.fixed64()
	case KindTopK:
		req.K = c.intv()
	case KindWindow:
		req.C = c.uint32v()
		req.Tau = c.fixed64()
	case KindWindowTopK:
		req.C = c.uint32v()
		req.K = c.intv()
	case KindDSTQ:
		req.TD = c.fixed64()
		req.Div = uda.Divergence(c.byte())
	case KindNeighbor:
		req.K = c.intv()
		req.Div = uda.Divergence(c.byte())
	}
	if c.err == nil && (k == KindDSTQ || k == KindNeighbor) && req.Div > uda.KL {
		return ErrBadDivergence
	}
	return c.finish()
}

// DecodeResponse decodes a response-frame body into resp, reusing resp's
// Matches and Neighbors slices when capacity allows.
func DecodeResponse(body []byte, resp *Response) error {
	c := cursor{b: body}
	k := Kind(c.byte())
	if c.err == nil && k >= numKinds {
		return ErrBadKind
	}
	flags := c.byte()
	resp.Kind = k
	resp.Truncated = flags&flagTruncated != 0
	resp.Batched = flags&flagBatched != 0
	resp.Slow = flags&flagSlow != 0
	resp.HasIO = flags&flagIO != 0
	resp.TraceID = c.uvarint()
	resp.Status, resp.RetryAfterSec, resp.Err = 0, 0, ""
	if flags&flagErr != 0 {
		resp.Status = c.intv()
		resp.RetryAfterSec = c.intv()
		resp.Err = c.str()
	}
	resp.Count = c.intv()
	nm := c.count(minPairBytes)
	ms := resp.Matches[:0]
	if cap(ms) < nm {
		ms = make([]Match, 0, nm)
	}
	for i := 0; i < nm && c.err == nil; i++ {
		tid := c.uint32v()
		prob := c.fixed64()
		ms = append(ms, Match{TID: tid, Prob: prob})
	}
	resp.Matches = ms
	nn := c.count(minPairBytes)
	ns := resp.Neighbors[:0]
	if cap(ns) < nn {
		ns = make([]Neighbor, 0, nn)
	}
	for i := 0; i < nn && c.err == nil; i++ {
		tid := c.uint32v()
		dist := c.fixed64()
		ns = append(ns, Neighbor{TID: tid, Dist: dist})
	}
	resp.Neighbors = ns
	resp.Reads, resp.Hits = 0, 0
	if resp.HasIO {
		resp.Reads = c.uvarint()
		resp.Hits = c.uvarint()
	}
	e := c.uvarint()
	if e > math.MaxInt64/2 {
		c.fail(ErrValueRange)
	}
	resp.ElapsedNS = int64(e)
	resp.BatchSize = 0
	if resp.Batched {
		resp.BatchSize = c.intv()
	}
	resp.Explain = ""
	if flags&flagExplain != 0 {
		resp.Explain = c.str()
	}
	return c.finish()
}

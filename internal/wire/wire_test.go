package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"

	"ucat/internal/uda"
)

// sampleRequests covers all six kinds with every per-kind parameter set.
func sampleRequests() []Request {
	pairs := []uda.Pair{{Item: 3, Prob: 0.25}, {Item: 7, Prob: 0.5}, {Item: 1000000, Prob: 0.125}}
	return []Request{
		{Kind: KindPETQ, Pairs: pairs, Tau: 0.3, Limit: 100, TimeoutMS: 250},
		{Kind: KindTopK, Pairs: pairs, K: 10, Explain: true},
		{Kind: KindWindow, Pairs: pairs, C: 2, Tau: 0.125},
		{Kind: KindWindowTopK, Pairs: pairs, C: 4, K: 3, Limit: 7},
		{Kind: KindDSTQ, Pairs: pairs, TD: 0.75, Div: uda.KL},
		{Kind: KindNeighbor, Pairs: pairs, K: 5, Div: uda.L2, TimeoutMS: 1},
		{Kind: KindPETQ, Pairs: nil, Tau: 0}, // empty distribution is decodable; validation is the server's job
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range sampleRequests() {
		frame := AppendRequest(nil, &want)
		typ, body, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%v: DecodeFrame: %v", want.Kind, err)
		}
		if typ != FrameQuery {
			t.Fatalf("%v: frame type = %#x, want FrameQuery", want.Kind, typ)
		}
		var got Request
		if err := DecodeRequest(body, &got); err != nil {
			t.Fatalf("%v: DecodeRequest: %v", want.Kind, err)
		}
		if len(got.Pairs) == 0 {
			got.Pairs = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", want.Kind, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Kind: KindPETQ, TraceID: 42, Count: 2,
			Matches: []Match{{TID: 9, Prob: 0.75}, {TID: 11, Prob: 0.25}},
			HasIO:   true, Reads: 7, Hits: 3, ElapsedNS: 12345},
		{Kind: KindTopK, TraceID: 1, Count: 1000, Truncated: true,
			Matches: []Match{{TID: 1, Prob: 1}}, Batched: true, BatchSize: 8, Slow: true},
		{Kind: KindNeighbor, TraceID: 7, Count: 1,
			Neighbors: []Neighbor{{TID: 2, Dist: 0.5}}, Explain: "serve.neighbor 1ms"},
		{Kind: KindWindow, TraceID: 3, Status: 429, RetryAfterSec: 2, Err: "admission queue full; retry later"},
		{Kind: KindDSTQ, TraceID: 0, Status: 400, Err: "bad query distribution"},
		{Kind: KindPETQ}, // all-zero response
	}
	for i, want := range cases {
		frame := AppendResponse(nil, &want)
		typ, body, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("case %d: DecodeFrame: %v", i, err)
		}
		if typ != FrameResponse {
			t.Fatalf("case %d: frame type = %#x, want FrameResponse", i, typ)
		}
		var got Response
		if err := DecodeResponse(body, &got); err != nil {
			t.Fatalf("case %d: DecodeResponse: %v", i, err)
		}
		if len(got.Matches) == 0 {
			got.Matches = nil
		}
		if len(got.Neighbors) == 0 {
			got.Neighbors = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestRoundTripBitExactFloats pins the fixed64 encoding: denormals, negative
// zero, and values with no short decimal rendering must survive exactly.
func TestRoundTripBitExactFloats(t *testing.T) {
	probs := []float64{0.1, 1.0 / 3.0, math.Nextafter(0.5, 1), 5e-324, math.Copysign(0, -1)}
	ms := make([]Match, len(probs))
	for i, p := range probs {
		ms[i] = Match{TID: uint32(i), Prob: p}
	}
	frame := AppendResponse(nil, &Response{Kind: KindPETQ, Count: len(ms), Matches: ms})
	_, body, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := DecodeResponse(body, &got); err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		if math.Float64bits(got.Matches[i].Prob) != math.Float64bits(p) {
			t.Errorf("prob %d: bits changed: got %x want %x",
				i, math.Float64bits(got.Matches[i].Prob), math.Float64bits(p))
		}
	}
}

// TestDecodeReusesSlices pins the decode-into contract: a second decode into
// the same Request must not allocate new pair storage when capacity suffices.
func TestDecodeReusesSlices(t *testing.T) {
	big := AppendRequest(nil, &sampleRequests()[0])
	var req Request
	if err := DecodeRequest(big[HeaderLen:], &req); err != nil {
		t.Fatal(err)
	}
	p0 := &req.Pairs[0]
	if err := DecodeRequest(big[HeaderLen:], &req); err != nil {
		t.Fatal(err)
	}
	if p0 != &req.Pairs[0] {
		t.Error("second decode reallocated the pairs slice despite sufficient capacity")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	good := AppendRequest(nil, &sampleRequests()[0])
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"short", good[:4], ErrShortFrame},
		{"magic", append([]byte{'X', 'W'}, good[2:]...), ErrBadMagic},
		{"version", append([]byte{'U', 'W', 99}, good[3:]...), ErrVersion},
		{"type", append([]byte{'U', 'W', Version, 0x7f}, good[4:]...), ErrBadFrameType},
		{"length", good[:len(good)-1], ErrFrameLength},
		{"trailing", append(append([]byte{}, good...), 0), ErrFrameLength},
	}
	// Oversized declared length.
	over := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(over[4:], MaxFrameBytes+1)
	cases = append(cases, struct {
		name string
		buf  []byte
		want error
	}{"toolarge", over, ErrFrameTooLarge})

	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	var req Request
	// Unknown kind byte.
	if err := DecodeRequest([]byte{numKinds, 0, 0, 0, 0}, &req); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad kind: err = %v, want ErrBadKind", err)
	}
	// Pair count larger than the remaining bytes could encode: must error
	// before allocating, not after.
	body := []byte{byte(KindTopK), 0, 0, 0}
	body = binary.AppendUvarint(body, 1<<30) // npairs
	if err := DecodeRequest(body, &req); !errors.Is(err, ErrTruncated) {
		t.Errorf("huge pair count: err = %v, want ErrTruncated", err)
	}
	// Truncated mid-pair.
	good := AppendRequest(nil, &sampleRequests()[0])
	if err := DecodeRequest(good[HeaderLen:len(good)-12], &req); !errors.Is(err, ErrTruncated) {
		t.Errorf("mid-pair cut: err = %v, want ErrTruncated", err)
	}
	// Trailing junk after a valid body.
	withJunk := append(append([]byte{}, good[HeaderLen:]...), 0xee)
	if err := DecodeRequest(withJunk, &req); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("trailing: err = %v, want ErrTrailingBytes", err)
	}
	// Bad divergence code.
	bad := sampleRequests()[4]
	bad.Div = uda.KL + 1
	frame := AppendRequest(nil, &bad)
	if err := DecodeRequest(frame[HeaderLen:], &req); !errors.Is(err, ErrBadDivergence) {
		t.Errorf("bad divergence: err = %v, want ErrBadDivergence", err)
	}
}

func TestKindNames(t *testing.T) {
	names := []string{"petq", "topk", "window", "windowtopk", "dstq", "neighbor"}
	for i, name := range names {
		k := Kind(i)
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", i, k.String(), name)
		}
		got, ok := KindOf(name)
		if !ok || got != k {
			t.Errorf("KindOf(%q) = %v,%v, want %v,true", name, got, ok, k)
		}
	}
	if Kind(numKinds).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
	if _, ok := KindOf("gibberish"); ok {
		t.Error("KindOf accepted an unknown name")
	}
}

// TestAppendEncodersDoNotAllocate pins the codec half of the zero-alloc
// response path: encoding into a buffer with capacity must not allocate.
func TestAppendEncodersDoNotAllocate(t *testing.T) {
	resp := Response{Kind: KindPETQ, TraceID: 99, Count: 64, HasIO: true,
		Reads: 10, Hits: 50, ElapsedNS: 12345, Matches: make([]Match, 64)}
	for i := range resp.Matches {
		resp.Matches[i] = Match{TID: uint32(i), Prob: 1 / float64(i+1)}
	}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendResponse(buf[:0], &resp)
	})
	if allocs != 0 {
		t.Errorf("AppendResponse into sized buffer: %v allocs/run, want 0", allocs)
	}
	req := sampleRequests()[0]
	allocs = testing.AllocsPerRun(200, func() {
		buf = AppendRequest(buf[:0], &req)
	})
	if allocs != 0 {
		t.Errorf("AppendRequest into sized buffer: %v allocs/run, want 0", allocs)
	}
}

package wire

import (
	"testing"

	"ucat/internal/uda"
)

// FuzzDecodeFrame drives arbitrary bytes through the full frame decode path:
// header validation, then body decode as whichever frame type the header
// claims. The decoder must never panic and never allocate more than the
// input itself could encode — the count() bound is what the fuzzer is really
// leaning on. Round-trip consistency is checked when a decode succeeds: a
// frame the decoder accepts must re-encode to an equivalent frame.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with valid frames of both types plus near-miss corruptions.
	pairs := []uda.Pair{{Item: 1, Prob: 0.5}, {Item: 9, Prob: 0.25}}
	f.Add(AppendRequest(nil, &Request{Kind: KindPETQ, Pairs: pairs, Tau: 0.3}))
	f.Add(AppendRequest(nil, &Request{Kind: KindNeighbor, Pairs: pairs, K: 3, Div: uda.KL}))
	f.Add(AppendResponse(nil, &Response{Kind: KindTopK, TraceID: 7, Count: 1,
		Matches: []Match{{TID: 4, Prob: 1}}, HasIO: true, Reads: 2, Hits: 1}))
	f.Add(AppendResponse(nil, &Response{Kind: KindWindow, Status: 503, RetryAfterSec: 1, Err: "draining"}))
	f.Add([]byte{'U', 'W', Version, FrameQuery, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{'U', 'W', Version, FrameQuery, 0, 0, 0, 0})
	f.Add([]byte{})

	var req Request
	var resp Response
	f.Fuzz(func(t *testing.T, data []byte) {
		frameType, body, err := DecodeFrame(data)
		if err != nil {
			return
		}
		switch frameType {
		case FrameQuery:
			if err := DecodeRequest(body, &req); err != nil {
				return
			}
			re := AppendRequest(nil, &req)
			var again Request
			if _, b2, err := DecodeFrame(re); err != nil {
				t.Fatalf("re-encoded request frame invalid: %v", err)
			} else if err := DecodeRequest(b2, &again); err != nil {
				t.Fatalf("re-encoded request body invalid: %v", err)
			}
		case FrameResponse:
			if err := DecodeResponse(body, &resp); err != nil {
				return
			}
			re := AppendResponse(nil, &resp)
			var again Response
			if _, b2, err := DecodeFrame(re); err != nil {
				t.Fatalf("re-encoded response frame invalid: %v", err)
			} else if err := DecodeResponse(b2, &again); err != nil {
				t.Fatalf("re-encoded response body invalid: %v", err)
			}
		}
	})
}

package query

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
)

func TestSortNeighbors(t *testing.T) {
	ns := []Neighbor{{TID: 3, Dist: 0.5}, {TID: 1, Dist: 0.1}, {TID: 2, Dist: 0.5}}
	SortNeighbors(ns)
	want := []Neighbor{{1, 0.1}, {2, 0.5}, {3, 0.5}}
	for i := range want {
		if ns[i] != want[i] {
			t.Errorf("ns[%d] = %v, want %v", i, ns[i], want[i])
		}
	}
}

func TestNearestKBasics(t *testing.T) {
	nk := NewNearestK(2)
	if _, full := nk.Threshold(); full {
		t.Errorf("fresh NearestK reports a threshold")
	}
	nk.Offer(Neighbor{TID: 1, Dist: 0.9})
	nk.Offer(Neighbor{TID: 2, Dist: 0.5})
	thr, full := nk.Threshold()
	if !full || thr != 0.9 {
		t.Errorf("Threshold = (%g, %v), want (0.9, true)", thr, full)
	}
	nk.Offer(Neighbor{TID: 3, Dist: 0.1}) // evicts 0.9
	thr, _ = nk.Threshold()
	if thr != 0.5 {
		t.Errorf("Threshold after eviction = %g, want 0.5", thr)
	}
	got := nk.Results()
	want := []Neighbor{{3, 0.1}, {2, 0.5}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Results = %v, want %v", got, want)
	}
}

func TestNearestKTieBreaksByTID(t *testing.T) {
	nk := NewNearestK(1)
	nk.Offer(Neighbor{TID: 9, Dist: 0.5})
	nk.Offer(Neighbor{TID: 2, Dist: 0.5})
	got := nk.Results()
	if len(got) != 1 || got[0].TID != 2 {
		t.Errorf("Results = %v, want tid 2", got)
	}
}

func TestNearestKAgainstFullSort(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(20)
		all := make([]Neighbor, n)
		nk := NewNearestK(k)
		for i := range all {
			all[i] = Neighbor{TID: uint32(i), Dist: float64(r.Intn(100)) / 100}
			nk.Offer(all[i])
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Dist != all[j].Dist {
				return all[i].Dist < all[j].Dist
			}
			return all[i].TID < all[j].TID
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := nk.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestNewNearestKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewNearestK(0) did not panic")
		}
	}()
	NewNearestK(0)
}

func TestNewNearestKPanicsOnNegativeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewNearestK(-3) did not panic")
		}
	}()
	NewNearestK(-3)
}

// TestNearestKFull covers the Full transition: not full while fewer than k
// neighbors are held, full exactly at k, and still full (not over-full)
// after further offers.
func TestNearestKFull(t *testing.T) {
	nk := NewNearestK(2)
	if nk.Full() {
		t.Errorf("empty NearestK reports Full")
	}
	nk.Offer(Neighbor{TID: 1, Dist: 0.3})
	if nk.Full() {
		t.Errorf("NearestK with 1/2 reports Full")
	}
	nk.Offer(Neighbor{TID: 2, Dist: 0.6})
	if !nk.Full() {
		t.Errorf("NearestK with 2/2 does not report Full")
	}
	nk.Offer(Neighbor{TID: 3, Dist: 0.1})
	if !nk.Full() || len(nk.h) != 2 {
		t.Errorf("NearestK grew past k: len=%d Full=%v", len(nk.h), nk.Full())
	}
}

// TestNearestKRejectsWorse covers Offer's rejection branch: a candidate no
// better than the current worst — strictly farther, or equidistant with a
// larger tid — must leave the retained set untouched.
func TestNearestKRejectsWorse(t *testing.T) {
	nk := NewNearestK(2)
	nk.Offer(Neighbor{TID: 1, Dist: 0.2})
	nk.Offer(Neighbor{TID: 2, Dist: 0.4})
	nk.Offer(Neighbor{TID: 3, Dist: 0.9}) // strictly worse
	nk.Offer(Neighbor{TID: 9, Dist: 0.4}) // tie on distance, larger tid
	got := nk.Results()
	want := []Neighbor{{1, 0.2}, {2, 0.4}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Results = %v, want %v", got, want)
	}
}

// TestNeighborHeapPop exercises the heap.Interface Pop method (NearestK
// itself only replaces the root, so Pop is otherwise reachable only through
// container/heap clients).
func TestNeighborHeapPop(t *testing.T) {
	h := neighborHeap{}
	heap.Init(&h)
	for _, n := range []Neighbor{{1, 0.2}, {2, 0.8}, {3, 0.5}, {4, 0.8}} {
		heap.Push(&h, n)
	}
	// Max-heap on distance, ties by larger tid first: pops arrive worst
	// first.
	want := []Neighbor{{4, 0.8}, {2, 0.8}, {3, 0.5}, {1, 0.2}}
	for i, w := range want {
		got := heap.Pop(&h).(Neighbor)
		if got != w {
			t.Fatalf("pop %d = %v, want %v", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Errorf("heap not drained: %d left", h.Len())
	}
}

// TestNearestKOrderedDomainWindow drives NearestK with the distances an
// ordered-domain window query produces — |q − t| over a line of item codes —
// and checks the pruning threshold tightens monotonically to the kth-nearest
// window offset. This is the access pattern of DSTopK on ordered domains
// (window relaxation, §2): the bound lets the scan skip tuples whose whole
// window lies beyond the current kth distance.
func TestNearestKOrderedDomainWindow(t *testing.T) {
	const q, k = 50, 3
	nk := NewNearestK(k)
	prev := -1.0
	full := false
	// Items arrive in domain order, so distances first shrink toward q then
	// grow; the threshold must never loosen once the heap is full.
	for item := 0; item <= 100; item++ {
		d := float64(item - q)
		if d < 0 {
			d = -d
		}
		nk.Offer(Neighbor{TID: uint32(item), Dist: d})
		if thr, ok := nk.Threshold(); ok {
			if full && thr > prev {
				t.Fatalf("threshold loosened: %g after %g (item %d)", thr, prev, item)
			}
			prev, full = thr, true
		}
	}
	got := nk.Results()
	// Nearest three positions to 50 are 50 (d=0), then 49 and 51 (d=1); the
	// d=1 tie resolves to the smaller tid first in the canonical order.
	want := []Neighbor{{50, 0}, {49, 1}, {51, 1}}
	if len(got) != k {
		t.Fatalf("Results len = %d, want %d", len(got), k)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Results[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if thr, ok := nk.Threshold(); !ok || thr != 1 {
		t.Errorf("final Threshold = (%g, %v), want (1, true)", thr, ok)
	}
}

package query

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortNeighbors(t *testing.T) {
	ns := []Neighbor{{TID: 3, Dist: 0.5}, {TID: 1, Dist: 0.1}, {TID: 2, Dist: 0.5}}
	SortNeighbors(ns)
	want := []Neighbor{{1, 0.1}, {2, 0.5}, {3, 0.5}}
	for i := range want {
		if ns[i] != want[i] {
			t.Errorf("ns[%d] = %v, want %v", i, ns[i], want[i])
		}
	}
}

func TestNearestKBasics(t *testing.T) {
	nk := NewNearestK(2)
	if _, full := nk.Threshold(); full {
		t.Errorf("fresh NearestK reports a threshold")
	}
	nk.Offer(Neighbor{TID: 1, Dist: 0.9})
	nk.Offer(Neighbor{TID: 2, Dist: 0.5})
	thr, full := nk.Threshold()
	if !full || thr != 0.9 {
		t.Errorf("Threshold = (%g, %v), want (0.9, true)", thr, full)
	}
	nk.Offer(Neighbor{TID: 3, Dist: 0.1}) // evicts 0.9
	thr, _ = nk.Threshold()
	if thr != 0.5 {
		t.Errorf("Threshold after eviction = %g, want 0.5", thr)
	}
	got := nk.Results()
	want := []Neighbor{{3, 0.1}, {2, 0.5}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Results = %v, want %v", got, want)
	}
}

func TestNearestKTieBreaksByTID(t *testing.T) {
	nk := NewNearestK(1)
	nk.Offer(Neighbor{TID: 9, Dist: 0.5})
	nk.Offer(Neighbor{TID: 2, Dist: 0.5})
	got := nk.Results()
	if len(got) != 1 || got[0].TID != 2 {
		t.Errorf("Results = %v, want tid 2", got)
	}
}

func TestNearestKAgainstFullSort(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(20)
		all := make([]Neighbor, n)
		nk := NewNearestK(k)
		for i := range all {
			all[i] = Neighbor{TID: uint32(i), Dist: float64(r.Intn(100)) / 100}
			nk.Offer(all[i])
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Dist != all[j].Dist {
				return all[i].Dist < all[j].Dist
			}
			return all[i].TID < all[j].TID
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := nk.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestNewNearestKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewNearestK(0) did not panic")
		}
	}()
	NewNearestK(0)
}

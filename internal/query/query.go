// Package query holds the small vocabulary shared by both index structures:
// query results and the dynamic-threshold top-k accumulator.
//
// The paper executes top-k queries "essentially using threshold queries …
// by dynamically adjusting the threshold T to the kth highest probability in
// the current result set, as the index processes candidates" (§2). TopK
// implements that accumulator.
package query

import (
	"container/heap"
	"sort"
)

// Match is one query answer: a tuple id and its equality probability with
// the query distribution.
type Match struct {
	TID  uint32
	Prob float64
}

// SortMatches orders matches by descending probability, breaking ties by
// ascending tuple id, the canonical result order.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Prob != ms[j].Prob { //ucatlint:ignore floatcmp exact tie-break for a deterministic sort order
			return ms[i].Prob > ms[j].Prob
		}
		return ms[i].TID < ms[j].TID
	})
}

// matchHeap is a min-heap on probability (ties: larger tid first, so the
// weakest entry — lowest prob, largest tid — sits at the root).
type matchHeap []Match

func (h matchHeap) Len() int { return len(h) }
func (h matchHeap) Less(i, j int) bool {
	if h[i].Prob != h[j].Prob { //ucatlint:ignore floatcmp exact tie-break for a deterministic heap order
		return h[i].Prob < h[j].Prob
	}
	return h[i].TID > h[j].TID
}
func (h matchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *matchHeap) Push(x interface{}) { *h = append(*h, x.(Match)) }
func (h *matchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK accumulates the k best matches seen so far and exposes the paper's
// dynamically rising threshold.
type TopK struct {
	n int
	h matchHeap
}

// NewTopK returns an accumulator for the k highest-probability matches.
// k must be positive.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("query: NewTopK requires k > 0")
	}
	return &TopK{n: k, h: make(matchHeap, 0, k)}
}

// Offer considers a candidate match. Matches with zero probability are never
// retained (Pr(q = t) = 0 means the tuple cannot equal the query).
func (t *TopK) Offer(m Match) {
	if m.Prob <= 0 {
		return
	}
	if len(t.h) < t.n {
		heap.Push(&t.h, m)
		return
	}
	// Replace the weakest held match if m beats it under the heap order.
	root := t.h[0]
	//ucatlint:ignore floatcmp exact tie-break keeps replacement consistent with the heap order
	if root.Prob < m.Prob || (root.Prob == m.Prob && root.TID > m.TID) {
		t.h[0] = m
		heap.Fix(&t.h, 0)
	}
}

// Threshold returns the current pruning threshold: the kth best probability
// once k matches are held, else 0. A candidate whose probability cannot
// exceed this value cannot enter the top k.
func (t *TopK) Threshold() float64 {
	if len(t.h) < t.n {
		return 0
	}
	return t.h[0].Prob
}

// Full reports whether k matches have been collected.
func (t *TopK) Full() bool { return len(t.h) == t.n }

// Results returns the collected matches in canonical order.
func (t *TopK) Results() []Match {
	out := make([]Match, len(t.h))
	copy(out, t.h)
	SortMatches(out)
	return out
}

package query

import (
	"container/heap"
	"sort"
)

// Neighbor is one answer of a distributional similarity query: a tuple id
// and its distributional distance from the query (Definition 5, DSTQ).
type Neighbor struct {
	TID  uint32
	Dist float64
}

// SortNeighbors orders by ascending distance, ties by ascending tuple id.
func SortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist { //ucatlint:ignore floatcmp exact tie-break for a deterministic sort order
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].TID < ns[j].TID
	})
}

// neighborHeap is a max-heap on distance (ties: larger tid first), so the
// *worst* retained neighbor sits at the root.
type neighborHeap []Neighbor

func (h neighborHeap) Len() int { return len(h) }
func (h neighborHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist { //ucatlint:ignore floatcmp exact tie-break for a deterministic heap order
		return h[i].Dist > h[j].Dist
	}
	return h[i].TID > h[j].TID
}
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NearestK accumulates the k nearest neighbors seen so far, exposing the
// current kth-smallest distance as a pruning threshold (DSQ-top-k).
type NearestK struct {
	n int
	h neighborHeap
}

// NewNearestK returns an accumulator for the k smallest-distance neighbors.
func NewNearestK(k int) *NearestK {
	if k <= 0 {
		panic("query: NewNearestK requires k > 0")
	}
	return &NearestK{n: k, h: make(neighborHeap, 0, k)}
}

// Offer considers a candidate neighbor.
func (t *NearestK) Offer(n Neighbor) {
	if len(t.h) < t.n {
		heap.Push(&t.h, n)
		return
	}
	root := t.h[0]
	//ucatlint:ignore floatcmp exact tie-break keeps replacement consistent with the heap order
	if root.Dist > n.Dist || (root.Dist == n.Dist && root.TID > n.TID) {
		t.h[0] = n
		heap.Fix(&t.h, 0)
	}
}

// Threshold returns the current pruning bound: the kth smallest distance
// once k neighbors are held, else +Inf behaviourally (represented by
// ok=false).
func (t *NearestK) Threshold() (float64, bool) {
	if len(t.h) < t.n {
		return 0, false
	}
	return t.h[0].Dist, true
}

// Full reports whether k neighbors have been collected.
func (t *NearestK) Full() bool { return len(t.h) == t.n }

// Results returns the collected neighbors in canonical order.
func (t *NearestK) Results() []Neighbor {
	out := make([]Neighbor, len(t.h))
	copy(out, t.h)
	SortNeighbors(out)
	return out
}

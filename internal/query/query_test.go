package query

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortMatches(t *testing.T) {
	ms := []Match{{TID: 3, Prob: 0.5}, {TID: 1, Prob: 0.9}, {TID: 2, Prob: 0.5}}
	SortMatches(ms)
	want := []Match{{1, 0.9}, {2, 0.5}, {3, 0.5}}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("ms[%d] = %v, want %v", i, ms[i], want[i])
		}
	}
}

func TestTopKBasics(t *testing.T) {
	tk := NewTopK(2)
	if tk.Full() {
		t.Errorf("fresh TopK reports Full")
	}
	if tk.Threshold() != 0 {
		t.Errorf("fresh Threshold = %g, want 0", tk.Threshold())
	}
	tk.Offer(Match{TID: 1, Prob: 0.3})
	tk.Offer(Match{TID: 2, Prob: 0.5})
	if !tk.Full() {
		t.Errorf("TopK(2) with 2 offers not Full")
	}
	if tk.Threshold() != 0.3 {
		t.Errorf("Threshold = %g, want 0.3", tk.Threshold())
	}
	tk.Offer(Match{TID: 3, Prob: 0.4}) // evicts 0.3
	if tk.Threshold() != 0.4 {
		t.Errorf("Threshold after eviction = %g, want 0.4", tk.Threshold())
	}
	got := tk.Results()
	want := []Match{{2, 0.5}, {3, 0.4}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Results = %v, want %v", got, want)
	}
}

func TestTopKIgnoresZeroProb(t *testing.T) {
	tk := NewTopK(3)
	tk.Offer(Match{TID: 1, Prob: 0})
	tk.Offer(Match{TID: 2, Prob: -1})
	if len(tk.Results()) != 0 {
		t.Errorf("zero/negative probabilities retained: %v", tk.Results())
	}
}

func TestTopKTieBreaksByTID(t *testing.T) {
	tk := NewTopK(1)
	tk.Offer(Match{TID: 9, Prob: 0.5})
	tk.Offer(Match{TID: 2, Prob: 0.5}) // same prob, lower tid wins
	got := tk.Results()
	if len(got) != 1 || got[0].TID != 2 {
		t.Errorf("Results = %v, want tid 2", got)
	}
	tk.Offer(Match{TID: 5, Prob: 0.5}) // does not beat tid 2
	got = tk.Results()
	if got[0].TID != 2 {
		t.Errorf("tid 5 displaced tid 2 at equal prob")
	}
}

func TestTopKAgainstFullSort(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		k := 1 + r.Intn(20)
		all := make([]Match, n)
		tk := NewTopK(k)
		for i := range all {
			all[i] = Match{TID: uint32(i), Prob: float64(1+r.Intn(1000)) / 1000}
			tk.Offer(all[i])
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Prob != all[j].Prob {
				return all[i].Prob > all[j].Prob
			}
			return all[i].TID < all[j].TID
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestNewTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewTopK(0) did not panic")
		}
	}()
	NewTopK(0)
}

// Package obs is the observability layer: a stdlib-only metrics registry,
// per-query trace spans, and an instrumented pager view that binds both to
// any read-only query without code changes in the index packages.
//
// The paper's entire evaluation (§4) is an observability exercise — it
// compares index structures by counting page I/Os per query — and this
// package generalizes that instrument: every hot path (inverted-index
// strategy selection and list advances, PDR-tree prune/descend decisions,
// B-tree node visits, buffer-pool fetch/hit traffic) can report into a span
// tree with per-span I/O attribution, and long-running processes export
// counters, gauges and log₂-bucketed histograms over HTTP.
//
// # Zero overhead when disabled
//
// Everything in this package is nil-safe: a nil *Recorder and a nil *Span
// accept every method call as a no-op, so instrumented code performs exactly
// one pointer check (and zero allocations) per event when tracing is off.
// That contract is pinned by TestDisabledPathZeroAllocs and the
// BenchmarkDisabled* benchmarks, and enforced in CI by `make obs-smoke` —
// the figure harness's bit-identical determinism guarantee depends on the
// disabled path doing nothing at all.
//
// # Binding
//
// Tracing binds at the pager.View injection point introduced for the
// parallel query harness: wrap any view with InstrumentView and hand it to
// core.Relation.Reader / invidx.Index.Reader / pdrtree.Tree.Reader as usual.
// Index code discovers the recorder with RecorderOf(view), which returns nil
// for plain views — no configuration, no globals, no code changes at call
// sites that do not trace.
package obs

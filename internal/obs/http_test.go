package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ucat_test_total").Add(9)
	reg.Histogram("ucat_test_hist").Observe(4)

	ds, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ds.Close() }()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "ucat_test_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if n, err := ParseText(strings.NewReader(body)); err != nil || n == 0 {
		t.Errorf("/metrics not parseable: %d, %v", n, err)
	}

	code, body = get("/metrics.json")
	if code != http.StatusOK || !strings.Contains(body, "ucat_test_hist") {
		t.Errorf("/metrics.json status %d body %q", code, body)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "ucat_metrics") {
		t.Errorf("/debug/vars status %d, missing published registry", code)
	}

	code, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"math/bits"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histSlots is the number of log₂ buckets: slot i holds values whose bit
// length is i, i.e. slot 0 holds 0, slot i holds [2^(i-1), 2^i).
const histSlots = 65

// Histogram is a lock-free log₂-bucketed histogram for latencies and I/O
// counts. Observations cost three atomic adds; quantiles are estimated at
// the geometric midpoint of the containing bucket, which is exact enough to
// separate p50 from p99 on the heavy-tailed distributions queries produce.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histSlots]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// HistSnapshot is a consistent-enough copy of a histogram: each field is
// individually exact; with observations in flight the fields may be from
// slightly different instants (same contract as pager.Stats).
type HistSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Mean    float64           `json:"mean"`
	P50     float64           `json:"p50"`
	P95     float64           `json:"p95"`
	P99     float64           `json:"p99"`
	Buckets map[string]uint64 `json:"buckets,omitempty"` // upper bound → count (non-empty slots only)
}

// Snapshot captures the histogram's current counts and quantile estimates.
func (h *Histogram) Snapshot() HistSnapshot {
	var counts [histSlots]uint64
	snap := HistSnapshot{Buckets: make(map[string]uint64)}
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	snap.Count = h.count.Load()
	snap.Sum = h.sum.Load()
	if snap.Count > 0 {
		snap.Mean = float64(snap.Sum) / float64(snap.Count)
	}
	// Quantiles over the snapshot of the buckets; total from the buckets so
	// the walk is self-consistent even while observations race.
	var total uint64
	for _, c := range counts {
		total += c
	}
	snap.P50 = histQuantile(counts, total, 0.50)
	snap.P95 = histQuantile(counts, total, 0.95)
	snap.P99 = histQuantile(counts, total, 0.99)
	for i, c := range counts {
		if c > 0 {
			snap.Buckets[strconv.FormatUint(slotUpper(i), 10)] = c
		}
	}
	return snap
}

// QuantileUpperBound returns the inclusive upper bound of the log₂ bucket
// containing the q-quantile observation, or 0 when the histogram is empty.
// Unlike Snapshot's geometric-midpoint estimates this is a conservative
// cutoff — no recorded value inside the quantile's own bucket exceeds it —
// which is what the flight recorder's tail-sampling threshold needs: "keep
// the tree iff latency landed beyond the trailing p99 bucket". It allocates
// nothing (the bucket scan runs on a stack array).
func (h *Histogram) QuantileUpperBound(q float64) uint64 {
	var counts [histSlots]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return slotUpper(i)
		}
	}
	return slotUpper(histSlots - 1)
}

// slotUpper returns the inclusive upper bound of slot i.
func slotUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// histQuantile estimates the q-quantile by nearest rank over the buckets,
// returning the geometric midpoint of the containing bucket.
func histQuantile(counts [histSlots]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(i-1))
			return lo * math.Sqrt2 // geometric midpoint of [2^(i-1), 2^i)
		}
	}
	return float64(slotUpper(histSlots - 1))
}

// metricName validates registry names: a conservative Prometheus-compatible
// subset.
var metricName = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// Registry is a named collection of counters, gauges and histograms.
// Metric registration and lookup are mutex-guarded; the metrics themselves
// are atomic, so recording never takes the registry lock.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	published bool

	// Func-backed metrics: read on every scrape instead of being pushed to.
	// They exist for values some other subsystem already maintains (the
	// shared buffer pool's occupancy and eviction counters, say) — mirroring
	// those into push-style counters would mean a second copy that can skew.
	counterFns map[string]func() uint64
	gaugeFns   map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		counterFns: make(map[string]func() uint64),
		gaugeFns:   make(map[string]func() int64),
	}
}

// Default is the process-wide registry the experiment harness and the debug
// endpoints share.
var Default = NewRegistry()

func validName(name string) {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	validName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, clash := r.counterFns[name]; clash {
		panic(fmt.Sprintf("obs: counter name %q already a func-backed counter", name))
	}
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	validName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, clash := r.gaugeFns[name]; clash {
		panic(fmt.Sprintf("obs: gauge name %q already a func-backed gauge", name))
	}
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	validName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a read-on-scrape counter backed by fn, which must be
// fast, concurrency-safe and monotonic. Registering a name again replaces
// the function (a restarted server re-binds its metrics, like Counter does
// by returning the existing instance). The name must not collide with a
// push-style counter.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	validName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, clash := r.counters[name]; clash {
		panic(fmt.Sprintf("obs: CounterFunc name %q already a push counter", name))
	}
	r.counterFns[name] = fn
}

// GaugeFunc registers a read-on-scrape gauge backed by fn, which must be
// fast and concurrency-safe. Same replacement and collision rules as
// CounterFunc.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	validName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, clash := r.gauges[name]; clash {
		panic(fmt.Sprintf("obs: GaugeFunc name %q already a push gauge", name))
	}
	r.gaugeFns[name] = fn
}

// snapshot collects every metric under sorted names. Func-backed metrics are
// evaluated here, under the read lock — registration (the write lock) cannot
// race them, but the functions themselves must tolerate concurrent snapshot
// callers.
func (r *Registry) snapshot() (counters map[string]uint64, gauges map[string]int64, hists map[string]HistSnapshot) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	counters = make(map[string]uint64, len(r.counters)+len(r.counterFns))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	for n, fn := range r.counterFns {
		counters[n] = fn()
	}
	gauges = make(map[string]int64, len(r.gauges)+len(r.gaugeFns))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	for n, fn := range r.gaugeFns {
		gauges[n] = fn()
	}
	hists = make(map[string]HistSnapshot, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h.Snapshot()
	}
	return counters, gauges, hists
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the registry in the Prometheus-flavoured text format
// served at /metrics: `# TYPE` comments, `name value` samples, cumulative
// `_bucket{le="..."}` lines and `_p50/_p95/_p99` quantile estimates for
// histograms. ParseText accepts everything WriteText emits.
func (r *Registry) WriteText(w io.Writer) error {
	counters, gauges, hists := r.snapshot()
	bw := bufio.NewWriter(w)
	for _, n := range sortedKeys(counters) {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, counters[n])
	}
	for _, n := range sortedKeys(gauges) {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", n, n, gauges[n])
	}
	for _, n := range sortedKeys(hists) {
		s := hists[n]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		fmt.Fprintf(bw, "%s_count %d\n", n, s.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", n, s.Sum)
		var cum uint64
		for _, ub := range sortedBucketBounds(s.Buckets) {
			cum += s.Buckets[strconv.FormatUint(ub, 10)]
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", n, ub, cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, s.Count)
		fmt.Fprintf(bw, "%s_p50 %g\n", n, s.P50)
		fmt.Fprintf(bw, "%s_p95 %g\n", n, s.P95)
		fmt.Fprintf(bw, "%s_p99 %g\n", n, s.P99)
	}
	return bw.Flush()
}

func sortedBucketBounds(buckets map[string]uint64) []uint64 {
	out := make([]uint64, 0, len(buckets))
	for k := range buckets {
		ub, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			continue // impossible for snapshots we build; defensive
		}
		out = append(out, ub)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// jsonPayload is the JSON export shape (also what expvar publishes).
type jsonPayload struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// WriteJSON renders the whole registry as one JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	counters, gauges, hists := r.snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonPayload{Counters: counters, Gauges: gauges, Histograms: hists})
}

// expvarNames guards the process-global expvar namespace: expvar panics on
// a duplicate Publish, and distinct registries (servers in tests, say) may
// reasonably ask for the same exported name. First publisher wins; later
// calls under the same name are no-ops.
var expvarNames sync.Map

// PublishExpvar exposes the registry as one expvar variable (a JSON object
// under the given name) on the standard /debug/vars endpoint. Publishing
// twice — from this registry or any other — is a no-op; expvar forbids
// re-publishing a name, and the first publisher keeps it.
func (r *Registry) PublishExpvar(name string) {
	r.mu.Lock()
	already := r.published
	r.published = true
	r.mu.Unlock()
	if already {
		return
	}
	if _, taken := expvarNames.LoadOrStore(name, r); taken {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		counters, gauges, hists := r.snapshot()
		return jsonPayload{Counters: counters, Gauges: gauges, Histograms: hists}
	}))
}

// textSample matches one non-comment /metrics line:
// `name value` or `name{label="x"} value`.
var textSample = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"\})? [-+]?([0-9]*\.)?[0-9]+([eE][-+]?[0-9]+)?$`)

// ParseText validates the /metrics text format, returning the number of
// samples and an error naming the first malformed line. CI's `make metrics`
// target uses it to keep the endpoint machine-readable.
func ParseText(rd io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(rd)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !textSample.MatchString(text) {
			return samples, fmt.Errorf("obs: metrics line %d not parseable: %q", line, text)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is a live debug endpoint: pprof, expvar and the metrics text
// format on one listener.
type DebugServer struct {
	Addr string // actual listen address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
}

// RegisterDebug mounts the debug endpoints on an existing mux:
//
//	/metrics           the registry in text format
//	/metrics.json      the registry as JSON
//	/debug/vars        expvar (includes the registry via PublishExpvar)
//	/debug/pprof/...   net/http/pprof profiles
//
// It is the composable half of ServeDebug, for servers (ucatd) that want the
// debug surface on their own listener next to their own routes. A registry of
// nil uses Default.
func RegisterDebug(mux *http.ServeMux, reg *Registry) {
	if reg == nil {
		reg = Default
	}
	reg.PublishExpvar("ucat_metrics")
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			// Headers are already gone; nothing useful to do but drop the conn.
			return
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			return
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeDebug starts an HTTP server on addr exposing the RegisterDebug
// endpoints. The server runs on its own goroutine until Close. A registry of
// nil uses Default.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	RegisterDebug(mux, reg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() {
		// http.ErrServerClosed after Close is the normal shutdown path.
		_ = ds.srv.Serve(ln)
	}()
	return ds, nil
}

// Close stops the debug server and releases its listener.
func (ds *DebugServer) Close() error { return ds.srv.Close() }

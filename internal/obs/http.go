package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugServer is a live debug endpoint: pprof, expvar and the metrics text
// format on one listener.
type DebugServer struct {
	Addr string // actual listen address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
}

// RegisterDebug mounts the debug endpoints on an existing mux:
//
//	/metrics           the registry in text format
//	/metrics.json      the registry as JSON
//	/debug/vars        expvar (includes the registry via PublishExpvar)
//	/debug/pprof/...   net/http/pprof profiles
//
// It is the composable half of ServeDebug, for servers (ucatd) that want the
// debug surface on their own listener next to their own routes. A registry of
// nil uses Default.
func RegisterDebug(mux *http.ServeMux, reg *Registry) {
	if reg == nil {
		reg = Default
	}
	reg.PublishExpvar("ucat_metrics")
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			// Headers are already gone; nothing useful to do but drop the conn.
			return
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			return
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// RegisterFlight mounts the flight recorder's HTTP surface on a mux:
//
//	/debug/requests        JSON list of retained request records, filterable
//	                       by ?kind=, ?outcome= (incl. "slow"), ?minms=, ?limit=
//	/debug/requests/{id}   one record by trace ID, span tree included when kept
//	/debug/build           the binary's build identity (obs.ReadBuild)
//
// ucatd mounts this next to RegisterDebug on its own mux; tests mount it on
// a bare mux to drive the endpoints directly.
func RegisterFlight(mux *http.ServeMux, fr *FlightRecorder) {
	mux.HandleFunc("/debug/build", BuildHandler)
	if fr == nil {
		return
	}
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		ft := FlightFilter{Kind: q.Get("kind"), Outcome: q.Get("outcome")}
		if v := q.Get("minms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, "bad minms: "+err.Error(), http.StatusBadRequest)
				return
			}
			ft.MinLatency = time.Duration(ms * float64(time.Millisecond))
		}
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
				return
			}
			ft.Limit = n
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(fr.Snapshot(ft))
	})
	mux.HandleFunc("/debug/requests/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
			return
		}
		rec, ok := fr.Get(id)
		if !ok {
			http.Error(w, "no such request record", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rec)
	})
}

// ServeDebug starts an HTTP server on addr exposing the RegisterDebug
// endpoints. The server runs on its own goroutine until Close. A registry of
// nil uses Default.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	RegisterDebug(mux, reg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go func() {
		// http.ErrServerClosed after Close is the normal shutdown path.
		_ = ds.srv.Serve(ln)
	}()
	return ds, nil
}

// Close stops the debug server and releases its listener.
func (ds *DebugServer) Close() error { return ds.srv.Close() }

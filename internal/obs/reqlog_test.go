package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// logLines decodes every JSON line the handler wrote.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestRequestLoggerSamplesSuccesses(t *testing.T) {
	var buf bytes.Buffer
	rl := NewRequestLogger(slog.New(slog.NewJSONHandler(&buf, nil)), 4)
	for i := 0; i < 8; i++ {
		rl.Log(RequestRecord{ID: uint64(i + 1), Kind: "petq", Outcome: OutcomeOK})
	}
	lines := logLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("1-in-4 sampling over 8 successes logged %d lines, want 2", len(lines))
	}
	for _, l := range lines {
		if l["level"] != "INFO" || l["kind"] != "petq" {
			t.Fatalf("sampled success line %v, want INFO petq", l)
		}
	}
}

func TestRequestLoggerAlwaysLogsNotable(t *testing.T) {
	var buf bytes.Buffer
	// sampleN <= 0 drops every ordinary success, but notable records — errors,
	// timeouts, shed load, slow successes — always log.
	rl := NewRequestLogger(slog.New(slog.NewJSONHandler(&buf, nil)), -1)
	rl.Log(RequestRecord{ID: 1, Kind: "petq", Outcome: OutcomeOK})
	rl.Log(RequestRecord{ID: 2, Kind: "petq", Outcome: OutcomeError, Err: "boom"})
	rl.Log(RequestRecord{ID: 3, Kind: "petq", Outcome: OutcomeTimeout})
	rl.Log(RequestRecord{ID: 4, Kind: "petq", Outcome: OutcomeRejected})
	rl.Log(RequestRecord{ID: 5, Kind: "petq", Outcome: OutcomeOK, Slow: true,
		LatencyNS: int64(5 * time.Millisecond), Tau: 0.3, Batch: "rider", BatchSize: 4})
	lines := logLines(t, &buf)
	if len(lines) != 4 {
		t.Fatalf("logged %d lines, want 4 (every record but the sampled-out success)", len(lines))
	}
	wantLevel := map[float64]string{2: "ERROR", 3: "ERROR", 4: "WARN", 5: "WARN"}
	for _, l := range lines {
		id := l["trace_id"].(float64)
		if l["level"] != wantLevel[id] {
			t.Errorf("trace %v logged at %v, want %v", id, l["level"], wantLevel[id])
		}
	}
	last := lines[len(lines)-1]
	if last["slow"] != true || last["batch"] != "rider" || last["tau"].(float64) != 0.3 {
		t.Errorf("slow rider line missing attributes: %v", last)
	}
}

func TestRequestLoggerNilSafe(t *testing.T) {
	var rl *RequestLogger
	rl.Log(RequestRecord{ID: 1, Outcome: OutcomeError}) // must not panic
	if NewRequestLogger(nil, 1) != nil {
		t.Fatalf("NewRequestLogger(nil) should return a nil (drop-everything) logger")
	}
}

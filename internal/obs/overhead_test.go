package obs

import "testing"

// TestDisabledPathZeroAllocs pins the zero-overhead contract: every tracing
// call on a nil recorder/span must allocate nothing. CI's obs-smoke job runs
// this test; a regression here taxes every query in every benchmark, traced
// or not.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var rec *Recorder
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := rec.StartSpan("q")
		sp.Attr("strategy", "nra")
		sp.AttrF("tau", 0.5)
		sp.Add("steps", 1)
		sp.Max("frontier", 3)
		rec.Add("advances", 1)
		rec.Max("candidates", 7)
		sp.End()
	}); allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan measures the cost of the full per-query tracing call
// pattern when tracing is off (nil recorder). Run with -benchmem: the
// reported allocs/op must be 0.
func BenchmarkDisabledSpan(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := rec.StartSpan("q")
		sp.Attr("strategy", "nra")
		sp.AttrF("tau", 0.5)
		rec.Add("advances", 1)
		sp.End()
	}
}

// BenchmarkEnabledSpan is the enabled-path counterpart, for judging the
// tracing tax when a query is actually being explained.
func BenchmarkEnabledSpan(b *testing.B) {
	rec := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := rec.StartSpan("q")
		sp.Attr("strategy", "nra")
		sp.AttrF("tau", 0.5)
		rec.Add("advances", 1)
		sp.End()
		// Keep the trace from growing without bound across iterations.
		if len(rec.roots) > 1024 {
			rec.roots = rec.roots[:0]
		}
	}
}

// BenchmarkDisabledCounterAdd isolates the cheapest and hottest call — the
// per-list-advance counter bump — on the disabled path.
func BenchmarkDisabledCounterAdd(b *testing.B) {
	var rec *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Add("inv.advances", 1)
	}
}

package obs

import (
	"testing"

	"ucat/internal/pager"
)

// prepStore allocates n pages in a fresh store.
func prepStore(t *testing.T, n int) (*pager.Store, []pager.PageID) {
	t.Helper()
	store := pager.NewStore()
	pids := make([]pager.PageID, n)
	for i := range pids {
		pids[i] = store.Allocate()
	}
	return store, pids
}

func TestInstrumentViewNilRecorderIsPassthrough(t *testing.T) {
	store, _ := prepStore(t, 1)
	pool := pager.NewPool(store, 2)
	if v := InstrumentView(pool, nil); v != pager.View(pool) {
		t.Fatalf("InstrumentView(pool, nil) wrapped the view")
	}
}

func TestInstrumentViewAttributesHitsAndMisses(t *testing.T) {
	store, pids := prepStore(t, 3)
	pool := pager.NewPool(store, 2)
	rec := NewRecorder()
	v := InstrumentView(pool, rec)

	sp := rec.StartSpan("q")
	// First fetch: miss. Second fetch of same page: hit.
	for _, pid := range []pager.PageID{pids[0], pids[0], pids[1]} {
		pg, err := v.Fetch(pid)
		if err != nil {
			t.Fatal(err)
		}
		pg.Unpin(false)
	}
	sp.End()

	if sp.Fetches != 3 || sp.Reads != 2 || sp.Hits != 1 {
		t.Fatalf("span fetches=%d reads=%d hits=%d, want 3/2/1", sp.Fetches, sp.Reads, sp.Hits)
	}
	st := pool.Stats()
	if st.Reads != sp.Reads || st.Hits != sp.Hits {
		t.Fatalf("pool stats %+v disagree with span (reads=%d hits=%d)", st, sp.Reads, sp.Hits)
	}
}

func TestInstrumentViewStatsPassthrough(t *testing.T) {
	store, pids := prepStore(t, 1)
	pool := pager.NewPool(store, 2)
	rec := NewRecorder()
	v := InstrumentView(pool, rec)
	pg, err := v.Fetch(pids[0])
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
	vs, ok := v.(interface{ Stats() pager.Stats })
	if !ok {
		t.Fatalf("instrumented view does not expose Stats")
	}
	if vs.Stats() != pool.Stats() {
		t.Fatalf("Stats passthrough mismatch: %v vs %v", vs.Stats(), pool.Stats())
	}
}

func TestRecorderOf(t *testing.T) {
	store, _ := prepStore(t, 1)
	pool := pager.NewPool(store, 2)
	if RecorderOf(pool) != nil {
		t.Fatalf("bare pool reported a recorder")
	}
	rec := NewRecorder()
	v := InstrumentView(pool, rec)
	if RecorderOf(v) != rec {
		t.Fatalf("RecorderOf did not find the bound recorder")
	}
}

func TestInstrumentViewAttributesEvictions(t *testing.T) {
	store, pids := prepStore(t, 3)
	pool := pager.NewPool(store, 2) // two frames: the third page must evict
	rec := NewRecorder()
	v := InstrumentView(pool, rec)
	sp := rec.StartSpan("q")
	for _, pid := range pids {
		pg, err := v.Fetch(pid)
		if err != nil {
			t.Fatal(err)
		}
		pg.Unpin(false)
	}
	sp.End()
	if got := sp.Counter("pager.evictions"); got != 1 {
		t.Fatalf("pager.evictions = %d, want 1", got)
	}
}

func TestInstrumentViewOrphanTraffic(t *testing.T) {
	store, pids := prepStore(t, 1)
	pool := pager.NewPool(store, 2)
	rec := NewRecorder()
	v := InstrumentView(pool, rec)
	// Fetch with no span open: must land in the orphan bucket, not vanish.
	pg, err := v.Fetch(pids[0])
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
	reads, hits := rec.SumIO()
	if reads != 1 || hits != 0 {
		t.Fatalf("orphan SumIO = %d,%d want 1,0", reads, hits)
	}
}

package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Recorder collects one query's trace: a tree of spans plus any events that
// fire outside an open span. A Recorder is cheap, single-query scoped and
// NOT safe for concurrent use — make one per query, exactly like the
// per-query pool views it rides along with.
//
// All methods are nil-safe: calling them on a nil *Recorder is a no-op that
// performs a single pointer check and never allocates, so instrumented hot
// paths cost nothing when tracing is off.
type Recorder struct {
	roots  []*Span
	cur    *Span
	orphan counters // events recorded while no span was open
	free   []*Span  // recycled spans Reset collected, reused by StartSpan
}

// NewRecorder returns an empty recorder ready to collect spans.
func NewRecorder() *Recorder { return &Recorder{} }

// Span is one timed node of the trace tree. I/O fields are exclusive: each
// page fetch is attributed to the innermost span open at the time, so
// summing Reads over a whole tree equals the pager.Stats delta of the query
// (the property TestSpanReadsEqualPoolStatsDelta pins).
type Span struct {
	Name     string
	Children []*Span

	// Pager traffic attributed to this span by an instrumented view.
	Fetches uint64 // view.Fetch calls
	Reads   uint64 // fetches that missed the pool (the paper's I/Os)
	Hits    uint64 // fetches served inside the pool

	attrs    []spanAttr
	counters counters
	start    time.Time
	dur      time.Duration
	rec      *Recorder
	parent   *Span
	ended    bool
}

// spanAttr is one key=value annotation. Values are either strings or
// numbers; numbers are kept unformatted so recording them never allocates.
type spanAttr struct {
	key   string
	str   string
	num   float64
	isNum bool
}

// counter is one named event tally on a span.
type counter struct {
	name string
	val  int64
	max  bool // value is a high-water mark, not a sum
}

type counters []counter

func (cs *counters) add(name string, delta int64) {
	for i := range *cs {
		if (*cs)[i].name == name {
			(*cs)[i].val += delta
			return
		}
	}
	*cs = append(*cs, counter{name: name, val: delta})
}

func (cs *counters) maxOf(name string, v int64) {
	for i := range *cs {
		if (*cs)[i].name == name {
			if v > (*cs)[i].val {
				(*cs)[i].val = v
			}
			return
		}
	}
	*cs = append(*cs, counter{name: name, val: v, max: true})
}

// StartSpan opens a span as a child of the currently open span (or as a new
// root) and makes it current. The caller must end it with a matching
// `defer sp.End()` in the same function — the ucatlint `spanend` check
// enforces exactly that pattern.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	var s *Span
	if n := len(r.free); n > 0 {
		s = r.free[n-1]
		r.free = r.free[:n-1]
		s.Name, s.rec, s.parent, s.start = name, r, r.cur, time.Now()
	} else {
		s = &Span{Name: name, rec: r, parent: r.cur, start: time.Now()}
	}
	if r.cur != nil {
		r.cur.Children = append(r.cur.Children, s)
	} else {
		r.roots = append(r.roots, s)
	}
	r.cur = s
	return s
}

// End closes the span, fixing its duration and restoring its parent as the
// recorder's current span. End on a nil or already-ended span is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	if s.rec != nil && s.rec.cur == s {
		s.rec.cur = s.parent
	}
}

// Attr annotates the span with a string key=value pair.
func (s *Span) Attr(key, val string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, spanAttr{key: key, str: val})
}

// AttrF annotates the span with a numeric key=value pair. The value is kept
// as a float64 so the disabled path never formats (or allocates).
func (s *Span) AttrF(key string, val float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, spanAttr{key: key, num: val, isNum: true})
}

// Add accumulates a named event counter on the span.
func (s *Span) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.counters.add(name, delta)
}

// Max records a high-water mark (e.g. the largest frontier a traversal held).
func (s *Span) Max(name string, v int64) {
	if s == nil {
		return
	}
	s.counters.maxOf(name, v)
}

// Duration returns how long the span was open (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Counter returns the value of a named counter (0 when absent).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.counters {
		if c.name == name {
			return c.val
		}
	}
	return 0
}

// Reset empties the recorder for reuse by the next query, recycling every
// recorded span (and its attribute/counter storage) into an internal
// freelist so subsequent StartSpan calls allocate nothing in steady state.
// This is what lets the serving layer keep span recording always on: the
// flight recorder resets and pools recorders instead of rebuilding them per
// request. Any *Span previously returned by this recorder is invalid after
// Reset.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for _, s := range r.roots {
		r.recycle(s)
	}
	r.roots = r.roots[:0]
	r.cur = nil
	r.orphan = r.orphan[:0]
}

// recycle clears one span subtree and pushes every node onto the freelist,
// keeping each span's slice capacity so reuse does not re-grow it.
func (r *Recorder) recycle(s *Span) {
	for _, c := range s.Children {
		r.recycle(c)
	}
	children := s.Children[:0]
	attrs := s.attrs[:0]
	cs := s.counters[:0]
	*s = Span{}
	s.Children, s.attrs, s.counters = children, attrs, cs
	r.free = append(r.free, s)
}

// Add accumulates an event on the recorder's currently open span; events
// fired while no span is open are kept separately and rendered as
// "(outside spans)". This is the hook hot paths without their own span use
// (B-tree cursors, list advances).
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	if r.cur != nil {
		r.cur.counters.add(name, delta)
		return
	}
	r.orphan.add(name, delta)
}

// Max records a high-water mark on the currently open span.
func (r *Recorder) Max(name string, v int64) {
	if r == nil {
		return
	}
	if r.cur != nil {
		r.cur.counters.maxOf(name, v)
		return
	}
	r.orphan.maxOf(name, v)
}

// Current returns the innermost open span (nil when none, or on a nil
// recorder).
func (r *Recorder) Current() *Span {
	if r == nil {
		return nil
	}
	return r.cur
}

// Roots returns the top-level spans recorded so far.
func (r *Recorder) Roots() []*Span {
	if r == nil {
		return nil
	}
	return r.roots
}

// addIO attributes one fetch outcome to the innermost open span. Called by
// instrumented views only, which are never built over a nil recorder.
func (r *Recorder) addIO(reads, hits uint64) {
	s := r.cur
	if s == nil {
		// No span open: keep the traffic visible rather than dropping it.
		r.orphan.add("unattributed.fetches", 1)
		r.orphan.add("unattributed.reads", int64(reads))
		r.orphan.add("unattributed.hits", int64(hits))
		return
	}
	s.Fetches++
	s.Reads += reads
	s.Hits += hits
}

// SumIO walks the span tree and returns the total page reads and pool hits
// attributed to it. Over a full recorder trace this equals the pager.Stats
// delta of the traced query.
func (s *Span) SumIO() (reads, hits uint64) {
	if s == nil {
		return 0, 0
	}
	reads, hits = s.Reads, s.Hits
	for _, c := range s.Children {
		cr, ch := c.SumIO()
		reads += cr
		hits += ch
	}
	return reads, hits
}

// SumIO totals the page reads and pool hits across every span of the trace,
// including traffic recorded outside any span.
func (r *Recorder) SumIO() (reads, hits uint64) {
	if r == nil {
		return 0, 0
	}
	for _, s := range r.roots {
		sr, sh := s.SumIO()
		reads += sr
		hits += sh
	}
	for _, c := range r.orphan {
		switch c.name {
		case "unattributed.reads":
			reads += uint64(c.val)
		case "unattributed.hits":
			hits += uint64(c.val)
		}
	}
	return reads, hits
}

// WriteTree renders the recorder's span forest as an indented tree, one span
// per line with its attributes, I/O attribution, duration and counters —
// the payload of ucatshell's EXPLAIN.
func (r *Recorder) WriteTree(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, s := range r.roots {
		if err := writeSpan(w, s, 0); err != nil {
			return err
		}
	}
	if len(r.orphan) > 0 {
		if _, err := fmt.Fprintf(w, "(outside spans)%s\n", formatCounters(r.orphan)); err != nil {
			return err
		}
	}
	return nil
}

func writeSpan(w io.Writer, s *Span, depth int) error {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.Name)
	for _, a := range s.attrs {
		if a.isNum {
			fmt.Fprintf(&b, " %s=%g", a.key, a.num)
		} else {
			fmt.Fprintf(&b, " %s=%s", a.key, a.str)
		}
	}
	fmt.Fprintf(&b, "  reads=%d hits=%d fetches=%d t=%s", s.Reads, s.Hits, s.Fetches, s.dur.Round(time.Microsecond))
	b.WriteString(formatCounters(s.counters))
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range s.Children {
		if err := writeSpan(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func formatCounters(cs counters) string {
	if len(cs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("  [")
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(' ')
		}
		if c.max {
			fmt.Fprintf(&b, "%s≤%d", c.name, c.val)
		} else {
			fmt.Fprintf(&b, "%s=%d", c.name, c.val)
		}
	}
	b.WriteByte(']')
	return b.String()
}

package obs

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"testing"
)

func TestReadBuild(t *testing.T) {
	info := ReadBuild()
	if info.GoVersion == "" {
		t.Fatalf("build info missing go version")
	}
	if info.OS != runtime.GOOS || info.Arch != runtime.GOARCH {
		t.Fatalf("build info os/arch = %s/%s, want %s/%s", info.OS, info.Arch, runtime.GOOS, runtime.GOARCH)
	}
	if info.MaxProcs < 1 {
		t.Fatalf("MaxProcs = %d, want >= 1", info.MaxProcs)
	}
	// The walk is cached; a second read must agree except for MaxProcs.
	again := ReadBuild()
	again.MaxProcs = info.MaxProcs
	if again != info {
		t.Fatalf("ReadBuild not stable: %+v vs %+v", info, again)
	}
}

func TestShortRevision(t *testing.T) {
	rev := ShortRevision()
	if rev == "" {
		t.Fatalf("ShortRevision returned empty (want a hash prefix or \"unknown\")")
	}
	if rev != "unknown" && len(rev) > 12 {
		t.Fatalf("ShortRevision %q longer than 12 chars", rev)
	}
}

func TestBuildHandler(t *testing.T) {
	rr := httptest.NewRecorder()
	BuildHandler(rr, nil)
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var info BuildInfo
	if err := json.Unmarshal(rr.Body.Bytes(), &info); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info.GoVersion == "" || info.MaxProcs < 1 {
		t.Fatalf("handler served incomplete build info: %+v", info)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if reg.Counter("reqs") != c {
		t.Errorf("Counter not idempotent")
	}
	g := reg.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
}

func TestInvalidMetricNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic for invalid name")
		}
	}()
	NewRegistry().Counter("bad name!")
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	// 95 observations of 10, five of 100000: p50 lands in 10's bucket, the
	// nearest-rank p95 and p99 (ranks 95 and 99 of 100) hit the outliers.
	for i := 0; i < 95; i++ {
		h.Observe(10)
	}
	for i := 0; i < 5; i++ {
		h.Observe(100000)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 95*10+5*100000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if s.P50 < 8 || s.P50 > 16 {
		t.Errorf("p50 = %g, want within 10's log2 bucket", s.P50)
	}
	if s.P99 < 65536 {
		t.Errorf("p99 = %g, want in the outlier bucket", s.P99)
	}
	if s.Mean < 5000 || s.Mean > 5010 {
		t.Errorf("mean = %g", s.Mean)
	}
	if len(s.Buckets) != 2 {
		t.Errorf("buckets = %v, want 2 non-empty", s.Buckets)
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
	h.Observe(0)
	s = h.Snapshot()
	if s.Count != 1 || s.P50 != 0 {
		t.Fatalf("zero observation snapshot: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestWriteTextRoundTripsThroughParseText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ucat_queries_total").Add(3)
	reg.Gauge("ucat_pool_frames").Set(100)
	h := reg.Histogram("ucat_query_ios")
	h.Observe(5)
	h.Observe(90)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ucat_queries_total counter",
		"ucat_queries_total 3",
		"# TYPE ucat_pool_frames gauge",
		"ucat_pool_frames 100",
		"# TYPE ucat_query_ios histogram",
		"ucat_query_ios_count 2",
		"ucat_query_ios_sum 95",
		`ucat_query_ios_bucket{le="+Inf"} 2`,
		"ucat_query_ios_p50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	n, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseText rejected own output: %v", err)
	}
	// 1 counter + 1 gauge + count+sum+2 buckets+Inf+3 quantiles = 10 samples.
	if n != 10 {
		t.Errorf("ParseText samples = %d, want 10", n)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		"1leading_digit 2",
		`x{unclosed="} 1`,
		"name 1 2 3",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
	// Comments and blanks are fine.
	if n, err := ParseText(strings.NewReader("# HELP x\n\nx 1\n")); err != nil || n != 1 {
		t.Errorf("ParseText = %d, %v", n, err)
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	reg.Histogram("h").Observe(7)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Counters   map[string]uint64       `json:"counters"`
		Gauges     map[string]int64        `json:"gauges"`
		Histograms map[string]HistSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if payload.Counters["c"] != 1 {
		t.Errorf("counters = %v", payload.Counters)
	}
	if payload.Histograms["h"].Count != 1 {
		t.Errorf("histograms = %v", payload.Histograms)
	}
}

func TestSlotUpperBounds(t *testing.T) {
	if slotUpper(0) != 0 {
		t.Errorf("slotUpper(0) = %d", slotUpper(0))
	}
	if slotUpper(1) != 1 {
		t.Errorf("slotUpper(1) = %d", slotUpper(1))
	}
	if slotUpper(4) != 15 {
		t.Errorf("slotUpper(4) = %d", slotUpper(4))
	}
	if slotUpper(64) != math.MaxUint64 {
		t.Errorf("slotUpper(64) = %d", slotUpper(64))
	}
}

package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// RequestLogger emits one structured slog line per completed request, with
// sampling: non-OK outcomes and slow requests always log, ordinary successes
// log 1-in-N. It is safe for concurrent use and nil-safe (a nil logger drops
// everything), so the serving path calls it unconditionally.
type RequestLogger struct {
	l *slog.Logger
	n uint64        // log every n-th ordinary success; 0 disables them
	c atomic.Uint64 // success tally driving the 1-in-N gate
}

// NewRequestLogger wraps l with 1-in-sampleN success sampling. sampleN <= 0
// drops ordinary successes entirely; sampleN == 1 logs everything.
func NewRequestLogger(l *slog.Logger, sampleN int) *RequestLogger {
	if l == nil {
		return nil
	}
	n := uint64(0)
	if sampleN > 0 {
		n = uint64(sampleN)
	}
	return &RequestLogger{l: l, n: n}
}

// Log emits the record's request line. Level encodes triage priority: ERROR
// for failed/timed-out requests, WARN for load-shedding outcomes and slow
// successes, INFO for the sampled ordinary successes.
func (rl *RequestLogger) Log(rec RequestRecord) {
	if rl == nil {
		return
	}
	var level slog.Level
	switch rec.Outcome {
	case OutcomeOK:
		if rec.Slow {
			level = slog.LevelWarn
		} else {
			level = slog.LevelInfo
			if rl.n == 0 || rl.c.Add(1)%rl.n != 0 {
				return
			}
		}
	case OutcomeError, OutcomeTimeout:
		level = slog.LevelError
	default: // rejected, shed, canceled
		level = slog.LevelWarn
	}
	attrs := make([]any, 0, 16)
	attrs = append(attrs,
		slog.Uint64("trace_id", rec.ID),
		slog.String("kind", rec.Kind),
		slog.String("outcome", rec.Outcome),
		slog.Duration("latency", time.Duration(rec.LatencyNS)),
		slog.Duration("queue_wait", time.Duration(rec.QueueNS)),
		slog.Uint64("reads", rec.Reads),
		slog.Uint64("hits", rec.Hits),
		slog.Int("results", rec.Results),
	)
	if rec.Proto != "" {
		attrs = append(attrs, slog.String("proto", rec.Proto))
	}
	//ucatlint:ignore floatcmp zero is the exact "no threshold" sentinel (never computed), not a measured value
	if rec.Tau != 0 {
		attrs = append(attrs, slog.Float64("tau", rec.Tau))
	}
	if rec.Batch != "" {
		attrs = append(attrs, slog.String("batch", rec.Batch), slog.Int("batch_size", rec.BatchSize))
	}
	if rec.Slow {
		attrs = append(attrs, slog.Bool("slow", true))
	}
	if rec.Err != "" {
		attrs = append(attrs, slog.String("error", rec.Err))
	}
	rl.l.Log(context.Background(), level, "request", attrs...)
}

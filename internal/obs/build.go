package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo is the process's build identity as /debug/build and ucatd's
// /v1/version report it — enough to tie a BENCH_*.json run or a bug report
// back to an exact commit and toolchain from the server side.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Main is the main module path ("ucat").
	Main string `json:"module"`
	// Version is the main module version ("(devel)" for a working-tree build).
	Version string `json:"version,omitempty"`
	// Revision is the VCS commit hash, when the binary was built inside a
	// checkout with VCS stamping on.
	Revision string `json:"revision,omitempty"`
	// VCSTime is the commit timestamp (RFC 3339).
	VCSTime string `json:"vcs_time,omitempty"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
	// OS, Arch and MaxProcs describe the runtime environment: GOOS, GOARCH
	// and the GOMAXPROCS in force when the info was read.
	OS       string `json:"os"`
	Arch     string `json:"arch"`
	MaxProcs int    `json:"maxprocs"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// ReadBuild returns the process's build info. The debug.ReadBuildInfo walk
// runs once; only MaxProcs is re-read per call (it can change at runtime).
func ReadBuild() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{
			GoVersion: runtime.Version(),
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			buildInfo.GoVersion = bi.GoVersion
			buildInfo.Main = bi.Main.Path
			buildInfo.Version = bi.Main.Version
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					buildInfo.Revision = s.Value
				case "vcs.time":
					buildInfo.VCSTime = s.Value
				case "vcs.modified":
					buildInfo.Dirty = s.Value == "true"
				}
			}
		}
	})
	info := buildInfo
	info.MaxProcs = runtime.GOMAXPROCS(0)
	return info
}

// ShortRevision returns the build's abbreviated commit hash (12 hex chars,
// like git's default), or "unknown" outside a VCS-stamped build — the form
// startup log lines and dashboards want.
func ShortRevision() string {
	rev := ReadBuild().Revision
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev
}

// BuildHandler serves ReadBuild as JSON; RegisterFlight mounts it at
// /debug/build and ucatd aliases it at /v1/version.
func BuildHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ReadBuild())
}

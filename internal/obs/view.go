package obs

import "ucat/internal/pager"

// viewStats is the optional capability an underlying view can expose so the
// wrapper can tell pool hits from store reads. *pager.Pool implements it.
type viewStats interface {
	Stats() pager.Stats
}

// viewEvictions is the optional capability for frame-pressure attribution.
// *pager.Pool implements it; evictions are deliberately outside pager.Stats
// (the paper's I/O metric) and surface only as a span counter.
type viewEvictions interface {
	Evictions() uint64
}

// recorderCarrier is how RecorderOf discovers tracing on a view without the
// index packages importing anything: any view that can return its recorder
// participates.
type recorderCarrier interface {
	Recorder() *Recorder
}

// instrumentedView routes fetches through the wrapped view, attributing
// each one's hit/miss outcome to the recorder's innermost open span.
type instrumentedView struct {
	v     pager.View
	rec   *Recorder
	stats viewStats     // nil when the wrapped view cannot report stats
	evs   viewEvictions // nil when the wrapped view cannot report evictions
}

// InstrumentView binds a recorder to a pool view: every Fetch through the
// returned view is attributed (fetch, read-or-hit) to the recorder's
// current span. When the wrapped view exposes Stats() — *pager.Pool does —
// hits and misses are told apart exactly by the per-fetch stats delta;
// otherwise every fetch is counted conservatively as a fetch only.
//
// A nil recorder returns v unchanged, so the disabled path adds no wrapper,
// no indirection, and no allocations.
func InstrumentView(v pager.View, rec *Recorder) pager.View {
	if rec == nil {
		return v
	}
	iv := &instrumentedView{v: v, rec: rec}
	if st, ok := v.(viewStats); ok {
		iv.stats = st
	}
	if ev, ok := v.(viewEvictions); ok {
		iv.evs = ev
	}
	return iv
}

// Fetch implements pager.View.
func (iv *instrumentedView) Fetch(pid pager.PageID) (*pager.Page, error) {
	if iv.stats == nil {
		pg, err := iv.v.Fetch(pid)
		if err == nil {
			iv.rec.addIO(0, 0)
		}
		return pg, err
	}
	var evBefore uint64
	if iv.evs != nil {
		evBefore = iv.evs.Evictions()
	}
	before := iv.stats.Stats()
	pg, err := iv.v.Fetch(pid)
	if err != nil {
		return nil, err
	}
	after := iv.stats.Stats()
	d := after.Sub(before)
	iv.rec.addIO(d.Reads, d.Hits)
	if iv.evs != nil {
		if ev := iv.evs.Evictions() - evBefore; ev > 0 {
			// Frame pressure: the span that forced the clock to displace a
			// cached page gets charged for it.
			iv.rec.Add("pager.evictions", int64(ev))
		}
	}
	return pg, nil
}

// viewPrefetch is the optional readahead capability; *pager.Pool implements
// it. The wrapper forwards the hint so opt-in leaf readahead keeps working
// under instrumentation, attributing issued prefetches to the current span
// (they are NOT I/Os — the pager counts them outside Stats on purpose).
type viewPrefetch interface {
	Prefetch(pid pager.PageID) error
}

// Prefetch forwards the readahead hint to the wrapped view. Views without
// the capability ignore the hint (prefetch is best-effort by contract).
func (iv *instrumentedView) Prefetch(pid pager.PageID) error {
	pf, ok := iv.v.(viewPrefetch)
	if !ok {
		return nil
	}
	err := pf.Prefetch(pid)
	if err == nil {
		iv.rec.Add("pager.prefetches", 1)
	}
	return err
}

// Recorder returns the bound recorder (the RecorderOf discovery hook).
func (iv *instrumentedView) Recorder() *Recorder { return iv.rec }

// Stats passes through the wrapped view's counters so code that inspects a
// query's I/O (the experiment harness, EXPLAIN) sees the real pool totals.
func (iv *instrumentedView) Stats() pager.Stats {
	if iv.stats == nil {
		return pager.Stats{}
	}
	return iv.stats.Stats()
}

// RecorderOf extracts the trace recorder bound to a view, or nil when the
// view is not instrumented. It is a single type assertion — the only cost
// tracing-aware code pays per Reader or cursor when tracing is off.
func RecorderOf(v pager.View) *Recorder {
	if rc, ok := v.(recorderCarrier); ok {
		return rc.Recorder()
	}
	return nil
}

package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request flight recorder: an always-on, bounded-overhead
// record of the last N requests a server answered, with tail-based span
// sampling. Every request gets a monotonic trace ID and a pooled trace
// Recorder; at completion the request's record (kind, latency, queue wait,
// per-session I/O delta, outcome, batch fate) is filed into a lock-striped
// ring, and its span tree is DROPPED unless the request turned out notable —
// slower than a per-kind self-tuning threshold (the trailing p99 bucket) or
// non-OK — in which case the rendered tree rides along into dedicated
// "notable" rings (slowest-per-kind, and every errored/timed-out/shed
// request). The common path — record filed, tree dropped — is pinned at
// near-zero allocations by TestFlightCommonPathAllocs.

// Request outcome labels, the closed vocabulary of RequestRecord.Outcome.
const (
	OutcomeOK       = "ok"       // answered 200
	OutcomeError    = "error"    // execution failed (500)
	OutcomeTimeout  = "timeout"  // deadline exceeded (408)
	OutcomeCanceled = "canceled" // client went away mid-flight
	OutcomeRejected = "rejected" // admission queue full (429)
	OutcomeShed     = "shed"     // refused while draining (503)
)

// OutcomeSlow is the pseudo-outcome the /debug/requests `outcome` filter
// accepts for "records retained by the slowest-per-kind rings" — slowness is
// a property (RequestRecord.Slow), not an outcome, but operators ask for
// "the slow ones" the same way they ask for "the errored ones".
const OutcomeSlow = "slow"

// RequestRecord is one completed request as the flight recorder retains it
// and /debug/requests serves it. Strings are immutable snapshots; the struct
// is copied by value into the rings, so a served record never aliases live
// request state.
type RequestRecord struct {
	// ID is the monotonic per-process trace ID (also the request's pprof
	// goroutine label and the /v1/query response's trace_id).
	ID uint64 `json:"id"`
	// Kind is the query kind ("petq", "topk", ...).
	Kind string `json:"kind"`
	// Proto is the request's wire protocol ("json" or "binary"); "" on
	// records predating content negotiation or not tied to the listener.
	Proto string `json:"proto,omitempty"`
	// Tau is the probability threshold for the kinds that carry one.
	Tau float64 `json:"tau,omitempty"`
	// Start is when the request was admitted.
	Start time.Time `json:"start"`
	// LatencyNS is admission-to-completion, nanoseconds.
	LatencyNS int64 `json:"latency_ns"`
	// QueueNS is admission-to-worker-pickup, nanoseconds.
	QueueNS int64 `json:"queue_wait_ns"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Reads and Hits are the request's own pager.Session I/O delta: store
	// reads (the paper's I/Os) and pool hits, exact under concurrency.
	Reads uint64 `json:"reads"`
	Hits  uint64 `json:"hits"`
	// Results is the full answer size (before any response limit).
	Results int `json:"results"`
	// Batch is the request's micro-batching fate: "" (executed directly),
	// "leader" (its traversal served the whole batch) or "rider" (coalesced
	// onto a leader's traversal). BatchSize is the batch's waiter count.
	Batch     string `json:"batch,omitempty"`
	BatchSize int    `json:"batch_size,omitempty"`
	// Slow reports that LatencyNS reached the per-kind tail-sampling
	// threshold in force at completion.
	Slow bool `json:"slow,omitempty"`
	// Err is the error message for non-OK outcomes.
	Err string `json:"error,omitempty"`
	// Tree is the request's span tree (the ucatshell EXPLAIN renderer),
	// retained only on notable records; "" means it was dropped.
	Tree string `json:"tree,omitempty"`
}

// FlightConfig configures a FlightRecorder. The zero value of every field
// picks a sensible default, documented per field.
type FlightConfig struct {
	// Records bounds the main completed-request ring, TOTAL across stripes.
	// 0 means 512.
	Records int

	// Stripes is the main ring's lock-stripe count (records land in the
	// stripe of their trace ID, so concurrent completions rarely contend).
	// 0 means 8, clamped to Records.
	Stripes int

	// SlowPerKind bounds each per-kind slowest-requests ring. 0 means 16.
	SlowPerKind int

	// Errors bounds the ring that captures every errored, timed-out,
	// canceled, rejected or shed request. 0 means 64.
	Errors int

	// SlowThreshold picks the tail-sampling rule: 0 means self-tuning (per
	// kind, the trailing p99 bucket's upper bound — requests beyond it keep
	// their span trees); > 0 is a fixed threshold; < 0 marks every request
	// slow, keeping every tree (ucatd's -slowms 0).
	SlowThreshold time.Duration

	// AdaptEvery is how many completions of a kind pass between threshold
	// re-computations in self-tuning mode. 0 means 256.
	AdaptEvery int

	// Registry receives the recorder's metrics under MetricsPrefix; nil
	// registers nothing.
	Registry *Registry

	// MetricsPrefix names the recorder's metrics family. "" means
	// "ucat_flight".
	MetricsPrefix string

	// Now is the clock, for deterministic tests. nil means time.Now.
	Now func() time.Time
}

// withDefaults returns cfg with every zero field replaced by its default.
func (cfg FlightConfig) withDefaults() FlightConfig {
	if cfg.Records <= 0 {
		cfg.Records = 512
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 8
	}
	if cfg.Stripes > cfg.Records {
		cfg.Stripes = cfg.Records
	}
	if cfg.SlowPerKind <= 0 {
		cfg.SlowPerKind = 16
	}
	if cfg.Errors <= 0 {
		cfg.Errors = 64
	}
	if cfg.AdaptEvery <= 0 {
		cfg.AdaptEvery = 256
	}
	if cfg.MetricsPrefix == "" {
		cfg.MetricsPrefix = "ucat_flight"
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// FlightRecorder retains the last-N completed request records plus notable
// rings (slowest per kind, all non-OK), hands out pooled per-request Flight
// handles, and self-tunes the per-kind tail-sampling threshold. All methods
// are safe for concurrent use.
type FlightRecorder struct {
	cfg  FlightConfig
	seq  atomic.Uint64
	pool sync.Pool // *Flight

	stripes []flightRing // main ring, striped by ID
	errs    flightRing   // every non-OK record
	kinds   sync.Map     // kind string → *kindState

	// Metrics (nil when no registry was configured).
	completed *Counter // <prefix>_completed_total
	slow      *Counter // <prefix>_slow_total
	kept      *Counter // <prefix>_trees_kept_total
	dropped   *Counter // <prefix>_trees_dropped_total
	errors    *Counter // <prefix>_errors_total
}

// kindState is the per-query-kind tail-sampling state: the trailing latency
// histogram the threshold adapts from, the threshold itself, and the kind's
// slowest-requests ring.
type kindState struct {
	hist      Histogram
	threshold atomic.Int64 // ns; latency >= threshold is slow
	n         atomic.Uint64
	slowRing  flightRing
}

// flightRing is one bounded, mutex-guarded ring of records.
type flightRing struct {
	mu   sync.Mutex
	recs []RequestRecord // grows to cap, then wraps
	next int             // slot the next record overwrites once full
	cap  int
}

// put files one record (copied by value).
func (r *flightRing) put(rec *RequestRecord) {
	if r.cap == 0 {
		return
	}
	r.mu.Lock()
	if len(r.recs) < r.cap {
		r.recs = append(r.recs, *rec)
	} else {
		r.recs[r.next] = *rec
		r.next = (r.next + 1) % r.cap
	}
	r.mu.Unlock()
}

// collect appends every retained record matching the filter to out.
func (r *flightRing) collect(out []RequestRecord, match func(*RequestRecord) bool) []RequestRecord {
	r.mu.Lock()
	for i := range r.recs {
		if match == nil || match(&r.recs[i]) {
			out = append(out, r.recs[i])
		}
	}
	r.mu.Unlock()
	return out
}

// get returns the retained record with the given trace ID, if present.
func (r *flightRing) get(id uint64) (RequestRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.recs {
		if r.recs[i].ID == id {
			return r.recs[i], true
		}
	}
	return RequestRecord{}, false
}

// NewFlightRecorder builds a recorder with the given configuration and, when
// a registry is configured, registers its metrics family.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	fr := &FlightRecorder{cfg: cfg}
	fr.stripes = make([]flightRing, cfg.Stripes)
	per := (cfg.Records + cfg.Stripes - 1) / cfg.Stripes
	for i := range fr.stripes {
		fr.stripes[i].cap = per
	}
	fr.errs.cap = cfg.Errors
	fr.pool.New = func() any { return &Flight{fr: fr} }
	if reg := cfg.Registry; reg != nil {
		p := cfg.MetricsPrefix
		fr.completed = reg.Counter(p + "_completed_total")
		fr.slow = reg.Counter(p + "_slow_total")
		fr.kept = reg.Counter(p + "_trees_kept_total")
		fr.dropped = reg.Counter(p + "_trees_dropped_total")
		fr.errors = reg.Counter(p + "_errors_total")
		reg.GaugeFunc(p+"_records", func() int64 {
			var n int64
			for i := range fr.stripes {
				fr.stripes[i].mu.Lock()
				n += int64(len(fr.stripes[i].recs))
				fr.stripes[i].mu.Unlock()
			}
			return n
		})
	}
	return fr
}

// Flight is one in-flight request's handle: the record being assembled
// (embedded, so callers fill fields directly) plus an always-on span
// Recorder. A Flight is single-request scoped and not safe for concurrent
// use; it is recycled by Complete and must not be touched afterwards.
type Flight struct {
	RequestRecord
	fr  *FlightRecorder
	rec Recorder
}

// Recorder returns the flight's span recorder, for InstrumentView.
func (f *Flight) Recorder() *Recorder { return &f.rec }

// Begin opens a flight for one admitted request: a fresh monotonic trace ID,
// the admission timestamp, and a pooled recorder whose spans recycle — the
// steady-state Begin/Complete cycle allocates nothing.
func (fr *FlightRecorder) Begin(kind string) *Flight {
	f := fr.pool.Get().(*Flight)
	f.ID = fr.seq.Add(1)
	f.Kind = kind
	f.Start = fr.cfg.Now()
	return f
}

// kindState returns (creating on first use) the tail-sampling state for a
// kind. Creation registers the kind's threshold gauge when metrics are on.
func (fr *FlightRecorder) kindState(kind string) *kindState {
	if v, ok := fr.kinds.Load(kind); ok {
		return v.(*kindState)
	}
	ks := &kindState{}
	ks.slowRing.cap = fr.cfg.SlowPerKind
	if v, loaded := fr.kinds.LoadOrStore(kind, ks); loaded {
		return v.(*kindState)
	}
	if reg := fr.cfg.Registry; reg != nil && metricName.MatchString(kind) {
		reg.GaugeFunc(fr.cfg.MetricsPrefix+"_slow_threshold_ns_"+kind,
			ks.threshold.Load)
	}
	return ks
}

// SlowThreshold reports the tail-sampling threshold currently in force for a
// kind: requests at or beyond it keep their span trees. In self-tuning mode
// this starts at zero (the first requests of a kind are always interesting)
// and converges on the trailing p99 bucket's upper bound.
func (fr *FlightRecorder) SlowThreshold(kind string) time.Duration {
	if fr.cfg.SlowThreshold > 0 {
		return fr.cfg.SlowThreshold
	}
	if fr.cfg.SlowThreshold < 0 {
		return 0
	}
	return time.Duration(fr.kindState(kind).threshold.Load())
}

// Complete finishes the flight: it classifies slowness against the kind's
// threshold, keeps or drops the span tree (kept — rendered once, as text —
// only on slow or non-OK records, or when the caller pre-set Tree, as batch
// riders inheriting their leader's tree do), files the record into the main
// ring and any notable ring it belongs in, feeds the threshold adaptation,
// and recycles the handle. It returns the record exactly as filed. The
// Flight must not be used after Complete.
func (f *Flight) Complete() RequestRecord {
	fr := f.fr
	if f.LatencyNS == 0 {
		f.LatencyNS = fr.cfg.Now().Sub(f.Start).Nanoseconds()
	}
	ks := fr.kindState(f.Kind)
	ks.hist.Observe(uint64(f.LatencyNS))

	// Slow classification, against the threshold in force BEFORE this
	// observation (a request should not move its own goalposts).
	switch {
	case fr.cfg.SlowThreshold > 0:
		f.Slow = f.LatencyNS >= fr.cfg.SlowThreshold.Nanoseconds()
	case fr.cfg.SlowThreshold < 0:
		f.Slow = true
	default:
		f.Slow = f.LatencyNS >= ks.threshold.Load()
	}

	// Self-tuning: every AdaptEvery completions of this kind, move the
	// threshold to just past the trailing p99 bucket — conservative (a full
	// bucket above the midpoint estimate), so steady traffic is not half
	// "slow" merely for sharing the p99's bucket.
	if fr.cfg.SlowThreshold == 0 {
		if n := ks.n.Add(1); n%uint64(fr.cfg.AdaptEvery) == 0 {
			ks.threshold.Store(int64(ks.hist.QuantileUpperBound(0.99)) + 1)
		}
	}

	// Tail sampling: the tree survives only on notable records.
	notable := f.Slow || f.Outcome != OutcomeOK
	if notable && f.Tree == "" && len(f.rec.Roots()) > 0 {
		var b strings.Builder
		if err := f.rec.WriteTree(&b); err == nil {
			f.Tree = b.String()
		}
	}
	if !notable {
		f.Tree = ""
	}
	if fr.completed != nil {
		fr.completed.Inc()
		if f.Tree != "" {
			fr.kept.Inc()
		} else {
			fr.dropped.Inc()
		}
	}

	// File the record, then the notable copies.
	rec := f.RequestRecord
	fr.stripes[rec.ID%uint64(len(fr.stripes))].put(&rec)
	if rec.Slow {
		ks.slowRing.put(&rec)
		if fr.slow != nil {
			fr.slow.Inc()
		}
	}
	if rec.Outcome != OutcomeOK {
		fr.errs.put(&rec)
		if fr.errors != nil {
			fr.errors.Inc()
		}
	}

	// Recycle: clear the record, reset the recorder (spans go back to its
	// freelist), return the handle to the pool.
	f.RequestRecord = RequestRecord{}
	f.rec.Reset()
	fr.pool.Put(f)
	return rec
}

// FlightFilter selects records from Snapshot. The zero value selects the
// newest records of the main ring.
type FlightFilter struct {
	// Kind keeps only records of one query kind ("" keeps all).
	Kind string
	// Outcome selects the source and filter: "" reads the main ring
	// unfiltered; OutcomeSlow reads the slowest-per-kind rings; any other
	// outcome label reads the error ring filtered to that outcome
	// (OutcomeOK reads the main ring filtered to successes).
	Outcome string
	// MinLatency keeps only records at least this slow.
	MinLatency time.Duration
	// Limit bounds the result, newest (highest ID) first. 0 means 100.
	Limit int
}

// match reports whether a record passes the filter's kind/latency/outcome
// predicates (ring selection is Snapshot's job).
func (ft *FlightFilter) match(r *RequestRecord) bool {
	if ft.Kind != "" && r.Kind != ft.Kind {
		return false
	}
	if r.LatencyNS < ft.MinLatency.Nanoseconds() {
		return false
	}
	if ft.Outcome != "" && ft.Outcome != OutcomeSlow && r.Outcome != ft.Outcome {
		return false
	}
	return true
}

// Snapshot copies out the records the filter selects, newest first.
func (fr *FlightRecorder) Snapshot(ft FlightFilter) []RequestRecord {
	var out []RequestRecord
	switch ft.Outcome {
	case OutcomeSlow:
		fr.kinds.Range(func(_, v any) bool {
			out = v.(*kindState).slowRing.collect(out, ft.match)
			return true
		})
	case "", OutcomeOK:
		for i := range fr.stripes {
			out = fr.stripes[i].collect(out, ft.match)
		}
	default:
		out = fr.errs.collect(out, ft.match)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	limit := ft.Limit
	if limit <= 0 {
		limit = 100
	}
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Get returns the retained record with the given trace ID. Notable rings are
// searched first: they hold the span-tree-bearing copy and outlive the main
// ring's churn, so a slow query from a while ago is still retrievable after
// thousands of fast ones displaced it from the main ring.
func (fr *FlightRecorder) Get(id uint64) (RequestRecord, bool) {
	var found RequestRecord
	ok := false
	fr.kinds.Range(func(_, v any) bool {
		if r, hit := v.(*kindState).slowRing.get(id); hit {
			found, ok = r, true
			return false
		}
		return true
	})
	if ok {
		return found, true
	}
	if r, hit := fr.errs.get(id); hit {
		return r, true
	}
	return fr.stripes[id%uint64(len(fr.stripes))].get(id)
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// completeOne drives one request through the recorder with a preset latency
// and outcome, returning the filed record.
func completeOne(fr *FlightRecorder, kind string, lat time.Duration, outcome string) RequestRecord {
	f := fr.Begin(kind)
	sp := f.Recorder().StartSpan("serve." + kind)
	sp.Add("probes", 3)
	sp.End()
	f.LatencyNS = lat.Nanoseconds()
	f.Outcome = outcome
	if outcome != OutcomeOK {
		f.Err = outcome + " injected"
	}
	return f.Complete()
}

func TestFlightCommonPathAllocs(t *testing.T) {
	// The acceptance pin: recorder always on, span recorded, tree dropped —
	// the path every ordinary request takes — must add at most 2 allocations.
	// The fixed one-hour threshold keeps every request un-slow so no tree is
	// ever rendered; warmup (AllocsPerRun runs the body once first) fills the
	// handle pool and the span freelist.
	fr := NewFlightRecorder(FlightConfig{SlowThreshold: time.Hour})
	if allocs := testing.AllocsPerRun(1000, func() {
		f := fr.Begin("petq")
		sp := f.Recorder().StartSpan("serve.petq")
		sp.Add("probes", 1)
		sp.End()
		f.Reads, f.Hits = 3, 5
		f.Outcome = OutcomeOK
		f.Complete()
	}); allocs > 2 {
		t.Fatalf("flight common path (record filed, tree dropped) allocates %.1f allocs/request, want <= 2", allocs)
	}
}

func BenchmarkFlightCommonPath(b *testing.B) {
	// Companion benchmark to TestFlightCommonPathAllocs; run with -benchmem
	// for the allocs/op evidence in DESIGN.md §19.
	fr := NewFlightRecorder(FlightConfig{SlowThreshold: time.Hour})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := fr.Begin("petq")
		sp := f.Recorder().StartSpan("serve.petq")
		sp.Add("probes", 1)
		sp.End()
		f.Outcome = OutcomeOK
		f.Complete()
	}
}

func BenchmarkFlightNotablePath(b *testing.B) {
	// The tail path: every request classified slow, tree rendered and kept.
	// This is the cost a request pays only once it already blew the p99.
	fr := NewFlightRecorder(FlightConfig{SlowThreshold: -1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := fr.Begin("petq")
		sp := f.Recorder().StartSpan("serve.petq")
		sp.Add("probes", 1)
		sp.End()
		f.Outcome = OutcomeOK
		f.Complete()
	}
}

func TestTailSamplingThresholdAdaptation(t *testing.T) {
	// Deterministic clock: latencies are preset on the flight, so the clock
	// only feeds Start timestamps.
	fake := time.Unix(1700000000, 0)
	fr := NewFlightRecorder(FlightConfig{
		AdaptEvery: 4,
		Now:        func() time.Time { return fake },
	})

	// Self-tuning starts at threshold 0: the first requests of a kind are
	// always notable, so an operator sees trees immediately after startup.
	if got := fr.SlowThreshold("petq"); got != 0 {
		t.Fatalf("initial threshold = %v, want 0", got)
	}
	rec := completeOne(fr, "petq", time.Microsecond, OutcomeOK)
	if !rec.Slow || rec.Tree == "" {
		t.Fatalf("pre-adaptation request: slow=%v tree=%q, want slow with a kept tree", rec.Slow, rec.Tree)
	}

	// Three more 1µs completions trip the AdaptEvery=4 re-computation: the
	// threshold moves to just past the p99 bucket of the trailing histogram.
	for i := 0; i < 3; i++ {
		completeOne(fr, "petq", time.Microsecond, OutcomeOK)
	}
	thr := fr.SlowThreshold("petq")
	if thr <= time.Microsecond {
		t.Fatalf("adapted threshold = %v, want > 1µs (past the p99 bucket)", thr)
	}

	// Steady traffic at the old latency is no longer slow; its tree drops.
	rec = completeOne(fr, "petq", time.Microsecond, OutcomeOK)
	if rec.Slow || rec.Tree != "" {
		t.Fatalf("post-adaptation 1µs request: slow=%v tree=%q, want fast with no tree", rec.Slow, rec.Tree)
	}
	// A genuine outlier beyond the threshold keeps its tree.
	rec = completeOne(fr, "petq", thr+time.Millisecond, OutcomeOK)
	if !rec.Slow || rec.Tree == "" {
		t.Fatalf("outlier request: slow=%v tree=%q, want slow with a kept tree", rec.Slow, rec.Tree)
	}

	// Kinds adapt independently: a fresh kind is back at threshold 0.
	if got := fr.SlowThreshold("topk"); got != 0 {
		t.Fatalf("fresh kind threshold = %v, want 0", got)
	}
}

func TestFixedAndKeepAllThresholds(t *testing.T) {
	// Fixed cutoff: only requests at or beyond it are slow.
	fixed := NewFlightRecorder(FlightConfig{SlowThreshold: time.Millisecond})
	if rec := completeOne(fixed, "petq", time.Microsecond, OutcomeOK); rec.Slow {
		t.Fatalf("1µs under a 1ms fixed threshold classified slow")
	}
	if rec := completeOne(fixed, "petq", 2*time.Millisecond, OutcomeOK); !rec.Slow || rec.Tree == "" {
		t.Fatalf("2ms over a 1ms fixed threshold: want slow with a tree")
	}
	// Negative threshold (ucatd -slowms 0): every request keeps its tree.
	all := NewFlightRecorder(FlightConfig{SlowThreshold: -1})
	if rec := completeOne(all, "petq", time.Nanosecond, OutcomeOK); !rec.Slow || rec.Tree == "" {
		t.Fatalf("keep-everything mode dropped a tree")
	}
}

func TestErrorsAlwaysKeepTrees(t *testing.T) {
	// Non-OK outcomes are notable regardless of latency.
	fr := NewFlightRecorder(FlightConfig{SlowThreshold: time.Hour})
	rec := completeOne(fr, "petq", time.Microsecond, OutcomeError)
	if rec.Slow {
		t.Fatalf("fast errored request classified slow")
	}
	if rec.Tree == "" {
		t.Fatalf("errored request dropped its span tree")
	}
	got := fr.Snapshot(FlightFilter{Outcome: OutcomeError})
	if len(got) != 1 || got[0].ID != rec.ID {
		t.Fatalf("error ring holds %v, want the one errored record", got)
	}
}

func TestSnapshotFiltersAndLimit(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SlowThreshold: time.Millisecond})
	for i := 0; i < 10; i++ {
		completeOne(fr, "petq", time.Microsecond, OutcomeOK)
	}
	completeOne(fr, "topk", time.Microsecond, OutcomeOK)
	slow := completeOne(fr, "petq", 5*time.Millisecond, OutcomeOK)
	completeOne(fr, "petq", time.Microsecond, OutcomeTimeout)

	if got := fr.Snapshot(FlightFilter{Kind: "topk"}); len(got) != 1 || got[0].Kind != "topk" {
		t.Fatalf("kind filter returned %v", got)
	}
	if got := fr.Snapshot(FlightFilter{MinLatency: time.Millisecond}); len(got) != 1 || got[0].ID != slow.ID {
		t.Fatalf("min-latency filter returned %v", got)
	}
	if got := fr.Snapshot(FlightFilter{Outcome: OutcomeSlow}); len(got) != 1 || got[0].ID != slow.ID || got[0].Tree == "" {
		t.Fatalf("outcome=slow returned %v, want the slow record with its tree", got)
	}
	if got := fr.Snapshot(FlightFilter{Outcome: OutcomeTimeout}); len(got) != 1 || got[0].Outcome != OutcomeTimeout {
		t.Fatalf("outcome=timeout returned %v", got)
	}
	if got := fr.Snapshot(FlightFilter{Outcome: OutcomeOK}); len(got) != 12 {
		t.Fatalf("outcome=ok returned %d records, want 12", len(got))
	}
	got := fr.Snapshot(FlightFilter{Limit: 3})
	if len(got) != 3 {
		t.Fatalf("limit=3 returned %d records", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].ID >= got[i-1].ID {
			t.Fatalf("snapshot not newest-first: %d then %d", got[i-1].ID, got[i].ID)
		}
	}
}

func TestMainRingWrapsButNotableRingsRetain(t *testing.T) {
	// An 8-record main ring churns; the slow ring keeps the notable record
	// retrievable by ID long after the main ring forgot it.
	fr := NewFlightRecorder(FlightConfig{Records: 8, Stripes: 2, SlowThreshold: time.Millisecond})
	slow := completeOne(fr, "petq", 5*time.Millisecond, OutcomeOK)
	for i := 0; i < 100; i++ {
		completeOne(fr, "petq", time.Microsecond, OutcomeOK)
	}
	if got := fr.Snapshot(FlightFilter{Limit: 1000}); len(got) > 8 {
		t.Fatalf("main ring holds %d records, capacity 8", len(got))
	}
	rec, ok := fr.Get(slow.ID)
	if !ok || rec.Tree == "" {
		t.Fatalf("slow record %d lost after main-ring churn (ok=%v tree=%q)", slow.ID, ok, rec.Tree)
	}
	if _, ok := fr.Get(9999); ok {
		t.Fatalf("Get invented a record for an unknown ID")
	}
}

func TestFlightConcurrentCompletions(t *testing.T) {
	// Hammer completions from many goroutines while snapshots and lookups
	// race them; the race detector (CI runs this under -race) is the judge,
	// plus a count cross-check at the end.
	fr := NewFlightRecorder(FlightConfig{Records: 64, SlowThreshold: time.Millisecond})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				kind := "petq"
				if i%3 == 0 {
					kind = "topk"
				}
				lat := time.Microsecond
				outcome := OutcomeOK
				switch i % 50 {
				case 7:
					lat = 5 * time.Millisecond
				case 13:
					outcome = OutcomeError
				}
				completeOne(fr, kind, lat, outcome)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			fr.Snapshot(FlightFilter{})
			fr.Snapshot(FlightFilter{Outcome: OutcomeSlow})
			fr.Get(uint64(i + 1))
		}
	}()
	wg.Wait()
	<-done
	if got := fr.Snapshot(FlightFilter{Limit: 1000}); len(got) == 0 || len(got) > 64 {
		t.Fatalf("main ring holds %d records after churn, want 1..64", len(got))
	}
}

// newFlightMux mounts a populated recorder the way ucatd does.
func newFlightMux(fr *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterFlight(mux, fr)
	return mux
}

func TestFlightHTTPListAndFilters(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SlowThreshold: time.Millisecond})
	for i := 0; i < 5; i++ {
		completeOne(fr, "petq", time.Microsecond, OutcomeOK)
	}
	slow := completeOne(fr, "topk", 10*time.Millisecond, OutcomeOK)
	ts := httptest.NewServer(newFlightMux(fr))
	defer ts.Close()

	get := func(t *testing.T, url string) []RequestRecord {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		var recs []RequestRecord
		if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
		return recs
	}

	if recs := get(t, ts.URL+"/debug/requests"); len(recs) != 6 {
		t.Fatalf("/debug/requests returned %d records, want 6", len(recs))
	}
	if recs := get(t, ts.URL+"/debug/requests?kind=topk"); len(recs) != 1 || recs[0].Kind != "topk" {
		t.Fatalf("kind filter: %v", recs)
	}
	if recs := get(t, ts.URL+"/debug/requests?outcome=slow"); len(recs) != 1 || recs[0].ID != slow.ID {
		t.Fatalf("outcome=slow filter: %v", recs)
	}
	if recs := get(t, ts.URL+"/debug/requests?minms=1"); len(recs) != 1 || recs[0].ID != slow.ID {
		t.Fatalf("minms filter: %v", recs)
	}
	if recs := get(t, ts.URL+"/debug/requests?limit=2"); len(recs) != 2 {
		t.Fatalf("limit filter returned %d records", len(recs))
	}
}

func TestFlightHTTPByIDAndErrors(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{SlowThreshold: -1})
	rec := completeOne(fr, "petq", time.Millisecond, OutcomeOK)
	ts := httptest.NewServer(newFlightMux(fr))
	defer ts.Close()

	resp, err := http.Get(fmt.Sprintf("%s/debug/requests/%d", ts.URL, rec.ID))
	if err != nil {
		t.Fatalf("GET by id: %v", err)
	}
	var got RequestRecord
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode by id: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.ID != rec.ID || got.Tree == "" {
		t.Fatalf("GET by id: status %d record %+v, want the record with its span tree", resp.StatusCode, got)
	}

	for url, want := range map[string]int{
		"/debug/requests/424242":    http.StatusNotFound,
		"/debug/requests/xyzzy":     http.StatusBadRequest,
		"/debug/requests?minms=abc": http.StatusBadRequest,
		"/debug/requests?limit=abc": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, want)
		}
	}
}

func TestFlightMetricsFamily(t *testing.T) {
	reg := NewRegistry()
	fr := NewFlightRecorder(FlightConfig{
		SlowThreshold: time.Millisecond,
		Registry:      reg,
		MetricsPrefix: "testflight",
	})
	completeOne(fr, "petq", time.Microsecond, OutcomeOK)
	completeOne(fr, "petq", 10*time.Millisecond, OutcomeOK)
	completeOne(fr, "petq", time.Microsecond, OutcomeError)

	counters, gauges, _ := reg.snapshot()
	wantCounters := map[string]uint64{
		"testflight_completed_total":     3,
		"testflight_slow_total":          1,
		"testflight_trees_kept_total":    2, // the slow one and the errored one
		"testflight_trees_dropped_total": 1,
		"testflight_errors_total":        1,
	}
	for name, want := range wantCounters {
		if got := counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := gauges["testflight_records"]; got != 3 {
		t.Errorf("testflight_records = %d, want 3", got)
	}
	if _, ok := gauges["testflight_slow_threshold_ns_petq"]; !ok {
		t.Errorf("per-kind threshold gauge missing")
	}
}

package obs_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ucat/internal/core"
	"ucat/internal/obs"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

// buildRelation fills a relation of the given kind with a deterministic mix
// of distributions, flushes dirty pages, and returns it.
func buildRelation(t *testing.T, kind core.Kind) *core.Relation {
	t.Helper()
	rel, err := core.NewRelation(core.Options{Kind: kind})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		a := uint32(i % 17)
		b := uint32((i + 5) % 17)
		if a == b {
			b = (b + 1) % 17
		}
		pa := 0.2 + float64(i%7)*0.1
		u := uda.MustNew(uda.Pair{Item: a, Prob: pa}, uda.Pair{Item: b, Prob: 1 - pa})
		if _, err := rel.Insert(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := rel.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestSpanReadsEqualPoolStatsDelta is the EXPLAIN accounting contract: the
// page reads and hits summed over a query's span tree (plus any unattributed
// orphan traffic) must exactly equal the buffer pool's Stats delta for that
// query, for PETQ over both the inverted index and the PDR-tree. If this
// drifts, EXPLAIN is lying about the I/O the paper's figures report.
func TestSpanReadsEqualPoolStatsDelta(t *testing.T) {
	query := uda.MustNew(uda.Pair{Item: 3, Prob: 0.6}, uda.Pair{Item: 8, Prob: 0.4})
	for _, kind := range []core.Kind{core.InvertedIndex, core.PDRTree} {
		t.Run(kind.String(), func(t *testing.T) {
			rel := buildRelation(t, kind)
			// Fresh per-query pool over the shared store, exactly as the
			// paper's harness and ucatshell EXPLAIN do.
			view := pager.NewPool(rel.Pool().Store(), pager.DefaultPoolFrames)
			rec := obs.NewRecorder()
			rd := rel.Reader(obs.InstrumentView(view, rec))

			before := view.Stats()
			matches, err := rd.PETQ(query, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if len(matches) == 0 {
				t.Fatalf("query matched nothing; test data is degenerate")
			}
			after := view.Stats()

			reads, hits := rec.SumIO()
			wantReads := after.Reads - before.Reads
			wantHits := after.Hits - before.Hits
			if reads != wantReads || hits != wantHits {
				var b strings.Builder
				_ = rec.WriteTree(&b)
				t.Fatalf("span tree sums reads=%d hits=%d, pool delta reads=%d hits=%d\n%s",
					reads, hits, wantReads, wantHits, b.String())
			}
			if reads == 0 {
				t.Fatalf("query performed no reads; accounting test is vacuous")
			}
		})
	}
}

// TestSpanReadsTopKAndRepeatQuery extends the accounting contract to TopK and
// to a second query on a warm pool, where hits dominate.
func TestSpanReadsTopKAndRepeatQuery(t *testing.T) {
	query := uda.MustNew(uda.Pair{Item: 3, Prob: 0.6}, uda.Pair{Item: 8, Prob: 0.4})
	for _, kind := range []core.Kind{core.InvertedIndex, core.PDRTree} {
		t.Run(kind.String(), func(t *testing.T) {
			rel := buildRelation(t, kind)
			view := pager.NewPool(rel.Pool().Store(), pager.DefaultPoolFrames)
			rec := obs.NewRecorder()
			rd := rel.Reader(obs.InstrumentView(view, rec))

			for round := 0; round < 2; round++ {
				before := view.Stats()
				if _, err := rd.TopK(query, 5); err != nil {
					t.Fatal(err)
				}
				after := view.Stats()
				reads, hits := rec.SumIO()
				if reads != after.Reads || hits != after.Hits {
					t.Fatalf("round %d: cumulative span IO %d/%d != pool stats %d/%d",
						round, reads, hits, after.Reads, after.Hits)
				}
				if round == 1 && after.Hits == before.Hits {
					t.Fatalf("warm repeat produced no pool hits: %+v", after)
				}
			}
		})
	}
}

// TestSpanTreeNamesQueryStrategy checks that the root span of each access
// method carries the attributes EXPLAIN prints.
func TestSpanTreeNamesQueryStrategy(t *testing.T) {
	query := uda.MustNew(uda.Pair{Item: 3, Prob: 0.6}, uda.Pair{Item: 8, Prob: 0.4})
	want := map[core.Kind]string{
		core.InvertedIndex: "invidx.petq",
		core.PDRTree:       "pdrtree.petq",
		core.ScanOnly:      "core.scan.petq",
	}
	for kind, name := range want {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			rel := buildRelation(t, kind)
			view := pager.NewPool(rel.Pool().Store(), pager.DefaultPoolFrames)
			rec := obs.NewRecorder()
			rd := rel.Reader(obs.InstrumentView(view, rec))
			if _, err := rd.PETQ(query, 0.1); err != nil {
				t.Fatal(err)
			}
			roots := rec.Roots()
			if len(roots) != 1 || roots[0].Name != name {
				t.Fatalf("roots = %v, want single %q", roots, name)
			}
			var b strings.Builder
			if err := rec.WriteTree(&b); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.String(), "tau=0.1") {
				t.Errorf("tree missing tau attr:\n%s", b.String())
			}
		})
	}
}

// TestSpanReadsSharedPoolSessions extends the accounting contract to the
// serving configuration: many goroutines querying concurrently through
// per-goroutine Sessions over ONE shared striped pool. Each goroutine's span
// tree must sum to its own Session's Stats delta (exact even under
// contention, because the tally is session-local), and the sessions together
// must account for every fetch the shared pool saw.
func TestSpanReadsSharedPoolSessions(t *testing.T) {
	query := uda.MustNew(uda.Pair{Item: 3, Prob: 0.6}, uda.Pair{Item: 8, Prob: 0.4})
	for _, kind := range []core.Kind{core.InvertedIndex, core.PDRTree} {
		t.Run(kind.String(), func(t *testing.T) {
			rel := buildRelation(t, kind)
			// Undersized and striped, like the server's pool: evictions and
			// cross-stripe traffic happen while sessions hold pins.
			pool := pager.NewSharedPool(rel.Pool().Store(), 24, 2, pager.LRU)
			before := pool.Stats()

			const goroutines = 6
			var wg sync.WaitGroup
			var sumReads, sumHits atomic.Uint64
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					sess := pool.Session()
					rec := obs.NewRecorder()
					rd := rel.Reader(obs.InstrumentView(sess, rec))
					if _, err := rd.PETQ(query, 0.1); err != nil {
						t.Error(err)
						return
					}
					reads, hits := rec.SumIO()
					delta := sess.Stats()
					if reads != delta.Reads || hits != delta.Hits {
						t.Errorf("span tree sums reads=%d hits=%d, session delta reads=%d hits=%d",
							reads, hits, delta.Reads, delta.Hits)
					}
					sumReads.Add(delta.Reads)
					sumHits.Add(delta.Hits)
				}()
			}
			wg.Wait()

			after := pool.Stats()
			if got, want := sumReads.Load(), after.Reads-before.Reads; got != want {
				t.Fatalf("sessions sum %d reads, pool delta %d", got, want)
			}
			if got, want := sumHits.Load(), after.Hits-before.Hits; got != want {
				t.Fatalf("sessions sum %d hits, pool delta %d", got, want)
			}
			if sumReads.Load() == 0 {
				t.Fatalf("no reads performed; accounting test is vacuous")
			}
			if pool.Pins() != 0 {
				t.Fatalf("%d pins leaked", pool.Pins())
			}
		})
	}
}

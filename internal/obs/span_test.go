package obs

import (
	"strings"
	"testing"
)

func TestSpanTreeShape(t *testing.T) {
	rec := NewRecorder()
	root := rec.StartSpan("root")
	if rec.Current() != root {
		t.Fatalf("Current() = %v, want root", rec.Current())
	}
	child := rec.StartSpan("child")
	if rec.Current() != child {
		t.Fatalf("Current() = %v, want child", rec.Current())
	}
	grand := rec.StartSpan("grand")
	grand.End()
	child.End()
	if rec.Current() != root {
		t.Fatalf("after child End, Current() = %v, want root", rec.Current())
	}
	sib := rec.StartSpan("sibling")
	sib.End()
	root.End()
	if rec.Current() != nil {
		t.Fatalf("after root End, Current() = %v, want nil", rec.Current())
	}

	roots := rec.Roots()
	if len(roots) != 1 || roots[0] != root {
		t.Fatalf("Roots() = %v, want [root]", roots)
	}
	if len(root.Children) != 2 || root.Children[0] != child || root.Children[1] != sib {
		t.Fatalf("root children = %v", root.Children)
	}
	if len(child.Children) != 1 || child.Children[0] != grand {
		t.Fatalf("child children = %v", child.Children)
	}
}

func TestSpanEndIdempotentAndOrdered(t *testing.T) {
	rec := NewRecorder()
	a := rec.StartSpan("a")
	b := rec.StartSpan("b")
	a.End() // out of order: b is still current, a.End must not steal it
	if rec.Current() != b {
		t.Fatalf("Current() = %v, want b after out-of-order a.End", rec.Current())
	}
	b.End()
	// a ended while b was current, so cur never returned to a's parent via a.
	// b.End restores b.parent == a, but a is already ended; this is the
	// documented cost of breaking LIFO order — the lint check prevents it.
	a.End() // idempotent
	b.End() // idempotent
	if a.Duration() < 0 || b.Duration() < 0 {
		t.Fatalf("negative durations")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var rec *Recorder
	sp := rec.StartSpan("x")
	if sp != nil {
		t.Fatalf("nil recorder StartSpan = %v, want nil", sp)
	}
	sp.End()
	sp.Attr("k", "v")
	sp.AttrF("n", 1)
	sp.Add("c", 1)
	sp.Max("m", 2)
	if sp.Duration() != 0 || sp.Counter("c") != 0 {
		t.Fatalf("nil span reported values")
	}
	rec.Add("c", 1)
	rec.Max("m", 1)
	if rec.Current() != nil || rec.Roots() != nil {
		t.Fatalf("nil recorder exposes state")
	}
	if r, h := rec.SumIO(); r != 0 || h != 0 {
		t.Fatalf("nil recorder SumIO = %d,%d", r, h)
	}
	if err := rec.WriteTree(nil); err != nil {
		t.Fatalf("nil recorder WriteTree: %v", err)
	}
}

func TestCountersAndMax(t *testing.T) {
	rec := NewRecorder()
	sp := rec.StartSpan("s")
	rec.Add("steps", 2)
	rec.Add("steps", 3)
	rec.Max("frontier", 4)
	rec.Max("frontier", 2) // lower; must not regress
	sp.End()
	if got := sp.Counter("steps"); got != 5 {
		t.Errorf("steps = %d, want 5", got)
	}
	if got := sp.Counter("frontier"); got != 4 {
		t.Errorf("frontier = %d, want 4", got)
	}
	// Events outside any span land in the orphan bucket and render.
	rec.Add("late", 1)
	var b strings.Builder
	if err := rec.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"s  ", "steps=5", "frontier≤4", "(outside spans)", "late=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTree output missing %q:\n%s", want, out)
		}
	}
}

func TestSumIOIncludesOrphans(t *testing.T) {
	rec := NewRecorder()
	sp := rec.StartSpan("q")
	rec.addIO(1, 0)
	rec.addIO(0, 1)
	sp.End()
	rec.addIO(1, 0) // outside any span
	reads, hits := rec.SumIO()
	if reads != 2 || hits != 1 {
		t.Fatalf("SumIO = %d,%d want 2,1", reads, hits)
	}
	sr, sh := sp.SumIO()
	if sr != 1 || sh != 1 {
		t.Fatalf("span SumIO = %d,%d want 1,1", sr, sh)
	}
	if sp.Fetches != 2 {
		t.Fatalf("Fetches = %d, want 2", sp.Fetches)
	}
}

func TestWriteTreeAttrs(t *testing.T) {
	rec := NewRecorder()
	sp := rec.StartSpan("petq")
	sp.Attr("strategy", "nra")
	sp.AttrF("tau", 0.25)
	sp.End()
	var b strings.Builder
	if err := rec.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"petq", "strategy=nra", "tau=0.25", "reads=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTree missing %q in %q", want, out)
		}
	}
}

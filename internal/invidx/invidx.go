// Package invidx implements the probabilistic inverted index of §3.1 of
// "Indexing Uncertain Categorical Data" (Singh et al., ICDE 2007).
//
// The structure is an inverted file over the categorical domain: for each
// item d ∈ D there is a list d.list = {(tid, p) | Pr(tid = d) = p > 0},
// sorted by *descending* probability — the key departure from a classical
// document-id-ordered inverted index. Each list is stored as a disk B+-tree
// (the paper: "these lists … are organized as dynamic structures such as
// B-trees"), with (descending probability, tuple id) packed into the key so
// an in-order scan yields the paper's order. A paged tuple heap provides the
// random accesses the search heuristics use to verify candidates.
//
// The outer directory mapping items to list roots — the paper's "inverted
// array" of categories — is kept in memory: it is O(|D|) small and its
// counterpart in a real system is resident after the first query. All list
// and tuple accesses go through the buffer pool and are counted as I/O.
//
// Four search strategies from the paper are implemented (brute force,
// highest-prob-first, row pruning, column pruning) plus the no-random-access
// rank-join variant; see search.go.
package invidx

import (
	"encoding/binary"
	"fmt"
	"math"

	"ucat/internal/btree"
	"ucat/internal/dcache"
	"ucat/internal/obs"
	"ucat/internal/pager"
	"ucat/internal/query"
	"ucat/internal/tuplestore"
	"ucat/internal/uda"
)

// Index is a probabilistic inverted index plus its tuple heap. It is not
// safe for concurrent use by writers; concurrent read-only queries each use
// their own Reader.
type Index struct {
	pool   *pager.Pool
	dir    map[uint32]*btree.Tree
	tuples *tuplestore.Store
	// cache/readahead are inherited by every inverted list, including ones
	// created lazily after the setters ran. The cache holds decoded list
	// leaves and heap pages (page ids are unique per store, so one cache
	// serves everything); readahead is the opt-in sibling prefetch on list
	// scans.
	cache     *dcache.Cache
	readahead bool
}

// New creates an empty index performing all I/O through pool.
func New(pool *pager.Pool) *Index {
	return &Index{
		pool:   pool,
		dir:    make(map[uint32]*btree.Tree),
		tuples: tuplestore.New(pool),
	}
}

// Reader binds the index's read-only query algorithms to a pool view: every
// page fetch a query performs — list scans, cursor advances, tuple probes —
// goes through the view instead of the index's construction pool. Handing
// each concurrent query a Reader over a private 100-frame pool reproduces the
// paper's per-query buffer-manager accounting (§4) while N queries run in
// parallel over the same store. A Reader is cheap (two words) and not safe
// for concurrent use; make one per query.
type Reader struct {
	ix   *Index
	view pager.View
	rec  *obs.Recorder // nil unless the view is obs-instrumented
	// arena backs verify()'s probe decodes (tuplestore.GetArena), reused
	// probe after probe so warm probes allocate nothing after the first few.
	arena []uda.Pair
}

// Reader returns a read-only query handle whose page fetches go through v.
// A nil view reads through the index's own pool. If the view carries a trace
// recorder (obs.InstrumentView), query spans and hot-path events are
// recorded; otherwise tracing calls are single-pointer-check no-ops.
func (ix *Index) Reader(v pager.View) *Reader {
	if v == nil {
		v = ix.pool
	}
	return &Reader{ix: ix, view: v, rec: obs.RecorderOf(v)}
}

// Len returns the number of indexed tuples.
func (ix *Index) Len() int { return ix.tuples.Len() }

// Pool returns the buffer pool the index performs I/O through.
func (ix *Index) Pool() *pager.Pool { return ix.pool }

// Tuples exposes the underlying tuple heap (shared with the naive-scan
// baseline and with join processing).
func (ix *Index) Tuples() *tuplestore.Store { return ix.tuples }

// Lists returns the number of non-empty inverted lists (distinct items).
func (ix *Index) Lists() int { return len(ix.dir) }

// packKey encodes (probability, tid) into a B-tree key whose ascending
// lexicographic order is descending probability, ties by ascending tid.
// Probabilities are in (0, 1], so their IEEE-754 bits are sign-free and
// order-preserving; complementing them reverses the order.
func packKey(prob float64, tid uint32) btree.Key {
	var k btree.Key
	binary.BigEndian.PutUint64(k[:8], ^math.Float64bits(prob))
	binary.BigEndian.PutUint32(k[8:12], tid)
	return k
}

// unpackKey reverses packKey.
func unpackKey(k btree.Key) (prob float64, tid uint32) {
	prob = math.Float64frombits(^binary.BigEndian.Uint64(k[:8]))
	tid = binary.BigEndian.Uint32(k[8:12])
	return prob, tid
}

// Insert adds the tuple to the heap and dissects it into the inverted lists:
// for each pair (d, p) the pair (tid, p) is inserted into d's B-tree.
func (ix *Index) Insert(tid uint32, u uda.UDA) error {
	if err := u.Validate(); err != nil {
		return fmt.Errorf("invidx: insert %d: %w", tid, err)
	}
	if err := ix.tuples.Put(tid, u); err != nil {
		return err
	}
	for _, p := range u.Pairs() {
		list, err := ix.list(p.Item)
		if err != nil {
			return err
		}
		if _, err := list.Insert(packKey(p.Prob, tid)); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the tuple from every list it occurs in and tombstones it in
// the heap.
func (ix *Index) Delete(tid uint32) error {
	u, err := ix.tuples.Get(tid)
	if err != nil {
		return err
	}
	for _, p := range u.Pairs() {
		list, ok := ix.dir[p.Item]
		if !ok {
			return fmt.Errorf("invidx: delete %d: missing list for item %d", tid, p.Item)
		}
		removed, err := list.Delete(packKey(p.Prob, tid))
		if err != nil {
			return err
		}
		if !removed {
			return fmt.Errorf("invidx: delete %d: entry missing from list %d", tid, p.Item)
		}
	}
	return ix.tuples.Delete(tid)
}

// Update replaces a live tuple's distribution: its old entries are removed
// from the inverted lists, the heap record is repointed at the new version
// (tuplestore.Replace), and the new pairs are dissected into the lists. The
// tuple id is unchanged.
func (ix *Index) Update(tid uint32, u uda.UDA) error {
	if err := u.Validate(); err != nil {
		return fmt.Errorf("invidx: update %d: %w", tid, err)
	}
	old, err := ix.tuples.Get(tid)
	if err != nil {
		return err
	}
	for _, p := range old.Pairs() {
		list, ok := ix.dir[p.Item]
		if !ok {
			return fmt.Errorf("invidx: update %d: missing list for item %d", tid, p.Item)
		}
		removed, err := list.Delete(packKey(p.Prob, tid))
		if err != nil {
			return err
		}
		if !removed {
			return fmt.Errorf("invidx: update %d: entry missing from list %d", tid, p.Item)
		}
	}
	if err := ix.tuples.Replace(tid, u); err != nil {
		return err
	}
	for _, p := range u.Pairs() {
		list, err := ix.list(p.Item)
		if err != nil {
			return err
		}
		if _, err := list.Insert(packKey(p.Prob, tid)); err != nil {
			return err
		}
	}
	return nil
}

// SetCache attaches a decoded-object cache to the tuple heap and every
// inverted list, present and future. Nil disables cached decoding.
func (ix *Index) SetCache(c *dcache.Cache) {
	ix.cache = c
	ix.tuples.SetCache(c)
	for _, t := range ix.dir {
		t.SetCache(c)
	}
}

// SetReadahead toggles the opt-in sibling-leaf prefetch on every inverted
// list's scans, present and future.
func (ix *Index) SetReadahead(on bool) {
	ix.readahead = on
	for _, t := range ix.dir {
		t.SetReadahead(on)
	}
}

// list returns item's B-tree, creating it on first use. New lists inherit
// the index's cache and readahead settings.
func (ix *Index) list(item uint32) (*btree.Tree, error) {
	if t, ok := ix.dir[item]; ok {
		return t, nil
	}
	t, err := btree.New(ix.pool)
	if err != nil {
		return nil, err
	}
	t.SetCache(ix.cache)
	t.SetReadahead(ix.readahead)
	ix.dir[item] = t
	return t, nil
}

// Get fetches a tuple's distribution from the heap (one page access).
func (ix *Index) Get(tid uint32) (uda.UDA, error) { return ix.tuples.Get(tid) }

// PETQ answers the probabilistic equality threshold query through the
// index's own pool. See Reader.PETQ.
func (ix *Index) PETQ(q uda.UDA, tau float64, s Strategy) ([]query.Match, error) {
	return ix.Reader(nil).PETQ(q, tau, s)
}

// TopK answers PETQ-top-k through the index's own pool. See Reader.TopK.
func (ix *Index) TopK(q uda.UDA, k int, s Strategy) ([]query.Match, error) {
	return ix.Reader(nil).TopK(q, k, s)
}

// WindowPETQ answers the relaxed equality threshold query through the
// index's own pool. See Reader.WindowPETQ.
func (ix *Index) WindowPETQ(q uda.UDA, c uint32, tau float64) ([]query.Match, error) {
	return ix.Reader(nil).WindowPETQ(q, c, tau)
}

// WindowTopK answers the relaxed equality top-k query through the index's
// own pool. See Reader.WindowTopK.
func (ix *Index) WindowTopK(q uda.UDA, c uint32, k int) ([]query.Match, error) {
	return ix.Reader(nil).WindowTopK(q, c, k)
}

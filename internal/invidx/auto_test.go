package invidx

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

func TestAutoMatchesNaive(t *testing.T) {
	ix := newTestIndex(t, 200)
	data := buildRandom(t, ix, 1500, 25, 5, 61)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		q := uda.Random(r, 25, 4)
		for _, tau := range []float64{0, 0.05, 0.2} {
			want := naivePETQ(data, q, tau)
			got, err := ix.PETQ(q, tau, Auto)
			if err != nil {
				t.Fatalf("Auto PETQ: %v", err)
			}
			matchesEqual(t, "auto", got, want)
		}
		top, err := ix.TopK(q, 10, Auto)
		if err != nil {
			t.Fatalf("Auto TopK: %v", err)
		}
		want := naivePETQ(data, q, 0)
		if len(want) > 10 {
			want = want[:10]
		}
		if len(top) != len(want) {
			t.Fatalf("Auto TopK: %d results, want %d", len(top), len(want))
		}
		for i := range want {
			if math.Abs(top[i].Prob-want[i].Prob) > 1e-9 {
				t.Fatalf("Auto TopK result %d prob %g, want %g", i, top[i].Prob, want[i].Prob)
			}
		}
	}
}

func TestAutoPicksByListLength(t *testing.T) {
	// Sparse index with short lists → frontier search.
	sparse := New(pager.NewPool(pager.NewStore(), 100))
	for i := 0; i < 200; i++ {
		if err := sparse.Insert(uint32(i), uda.Certain(uint32(i%100))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	q := uda.Certain(5)
	if got := sparse.Reader(nil).chooseStrategy(q); got != HighestProbFirst {
		t.Errorf("sparse index chose %v, want highest-prob-first", got)
	}

	// Dense index with long lists → rank join.
	dense := New(pager.NewPool(pager.NewStore(), 100))
	u := uda.MustNew(uda.Pair{Item: 0, Prob: 0.5}, uda.Pair{Item: 1, Prob: 0.5})
	for i := 0; i < 20000; i++ {
		if err := dense.Insert(uint32(i), u); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if got := dense.Reader(nil).chooseStrategy(u); got != NRA {
		t.Errorf("dense index chose %v, want nra", got)
	}
}

func TestAutoString(t *testing.T) {
	if Auto.String() != "auto" {
		t.Errorf("Auto.String() = %q", Auto.String())
	}
}

package invidx

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/btree"
	"ucat/internal/pager"
	"ucat/internal/query"
	"ucat/internal/uda"
)

func newTestIndex(t *testing.T, frames int) *Index {
	t.Helper()
	return New(pager.NewPool(pager.NewStore(), frames))
}

// buildRandom populates the index with n random tuples and returns them.
func buildRandom(t *testing.T, ix *Index, n, domain, maxPairs int, seed int64) map[uint32]uda.UDA {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	data := make(map[uint32]uda.UDA, n)
	for i := 0; i < n; i++ {
		u := uda.Random(r, domain, maxPairs)
		data[uint32(i)] = u
		if err := ix.Insert(uint32(i), u); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	return data
}

// naivePETQ computes the reference answer by full evaluation.
func naivePETQ(data map[uint32]uda.UDA, q uda.UDA, tau float64) []query.Match {
	var res []query.Match
	for tid, u := range data {
		if p := uda.EqualityProb(q, u); p > tau {
			res = append(res, query.Match{TID: tid, Prob: p})
		}
	}
	query.SortMatches(res)
	return res
}

func matchesEqual(t *testing.T, label string, got, want []query.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].TID != want[i].TID || math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
			t.Fatalf("%s: match %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestKeyPackingOrder(t *testing.T) {
	// Ascending key order must be descending probability, then ascending tid.
	ks := []btree.Key{
		packKey(0.9, 5),
		packKey(0.9, 7),
		packKey(0.5, 1),
		packKey(0.1, 99),
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1].Compare(ks[i]) >= 0 {
			t.Errorf("key %d not before key %d", i-1, i)
		}
	}
	p, tid := unpackKey(packKey(0.123456789, 4242))
	if p != 0.123456789 || tid != 4242 {
		t.Errorf("unpack = (%g, %d)", p, tid)
	}
	// Probability 1 (certain value) round-trips.
	p, tid = unpackKey(packKey(1, 1))
	if p != 1 || tid != 1 {
		t.Errorf("unpack certain = (%g, %d)", p, tid)
	}
}

func TestAllStrategiesMatchNaive(t *testing.T) {
	ix := newTestIndex(t, 200)
	data := buildRandom(t, ix, 2000, 30, 6, 42)
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		q := uda.Random(r, 30, 5)
		for _, tau := range []float64{0, 0.01, 0.05, 0.1, 0.3, 0.9} {
			want := naivePETQ(data, q, tau)
			for _, s := range Strategies {
				got, err := ix.PETQ(q, tau, s)
				if err != nil {
					t.Fatalf("PETQ(%v, %g): %v", s, tau, err)
				}
				matchesEqual(t, s.String(), got, want)
			}
		}
	}
}

func TestTopKMatchesNaive(t *testing.T) {
	ix := newTestIndex(t, 200)
	data := buildRandom(t, ix, 1500, 25, 5, 7)
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 8; trial++ {
		q := uda.Random(r, 25, 4)
		for _, k := range []int{1, 5, 20, 100} {
			want := naivePETQ(data, q, 0)
			if len(want) > k {
				want = want[:k]
			}
			for _, s := range Strategies {
				got, err := ix.TopK(q, k, s)
				if err != nil {
					t.Fatalf("TopK(%v, %d): %v", s, k, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s TopK(%d): %d results, want %d", s, k, len(got), len(want))
				}
				// Ties at the boundary may be broken differently per
				// strategy: compare the probability sequence, and verify
				// each reported probability is exact.
				for i := range want {
					if math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
						t.Fatalf("%s TopK(%d) result %d prob = %g, want %g",
							s, k, i, got[i].Prob, want[i].Prob)
					}
					if math.Abs(uda.EqualityProb(q, data[got[i].TID])-got[i].Prob) > 1e-9 {
						t.Fatalf("%s TopK(%d) result %d reports wrong probability", s, k, i)
					}
				}
			}
		}
	}
}

func TestPETQWithCertainData(t *testing.T) {
	// Certain tuples (probability 1 on one item) behave like a classical
	// equality index.
	ix := newTestIndex(t, 100)
	for i := 0; i < 100; i++ {
		if err := ix.Insert(uint32(i), uda.Certain(uint32(i%10))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	q := uda.Certain(3)
	for _, s := range Strategies {
		got, err := ix.PETQ(q, 0.5, s)
		if err != nil {
			t.Fatalf("PETQ(%v): %v", s, err)
		}
		if len(got) != 10 {
			t.Fatalf("%v found %d tuples, want 10", s, len(got))
		}
		for _, m := range got {
			if m.TID%10 != 3 || m.Prob != 1 {
				t.Errorf("%v returned %+v", s, m)
			}
		}
	}
}

func TestPETQThresholdBoundaryIsStrict(t *testing.T) {
	ix := newTestIndex(t, 100)
	u := uda.MustNew(uda.Pair{Item: 1, Prob: 0.5}, uda.Pair{Item: 2, Prob: 0.5})
	if err := ix.Insert(0, u); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	q := uda.Certain(1)
	// Pr(q = u) = 0.5 exactly: must NOT qualify at tau = 0.5 (Definition 4
	// uses strict >).
	for _, s := range Strategies {
		got, err := ix.PETQ(q, 0.5, s)
		if err != nil {
			t.Fatalf("PETQ(%v): %v", s, err)
		}
		if len(got) != 0 {
			t.Errorf("%v returned %v at tau=0.5, want empty (strict threshold)", s, got)
		}
		got, err = ix.PETQ(q, 0.49, s)
		if err != nil {
			t.Fatalf("PETQ(%v): %v", s, err)
		}
		if len(got) != 1 {
			t.Errorf("%v returned %v at tau=0.49, want one match", s, got)
		}
	}
}

func TestPETQValidatesInput(t *testing.T) {
	ix := newTestIndex(t, 50)
	q := uda.Certain(1)
	if _, err := ix.PETQ(q, -0.1, BruteForce); err == nil {
		t.Errorf("negative threshold accepted")
	}
	if _, err := ix.TopK(q, 0, BruteForce); err == nil {
		t.Errorf("k=0 accepted")
	}
	if _, err := ix.PETQ(q, 0.5, Strategy(99)); err == nil {
		t.Errorf("unknown strategy accepted")
	}
	if _, err := ix.TopK(q, 1, Strategy(99)); err == nil {
		t.Errorf("unknown strategy accepted by TopK")
	}
}

func TestEmptyQueryAndEmptyIndex(t *testing.T) {
	ix := newTestIndex(t, 50)
	var empty uda.UDA
	for _, s := range Strategies {
		got, err := ix.PETQ(empty, 0, s)
		if err != nil || len(got) != 0 {
			t.Errorf("%v on empty index = (%v, %v)", s, got, err)
		}
	}
	buildRandom(t, ix, 100, 10, 3, 1)
	for _, s := range Strategies {
		got, err := ix.PETQ(empty, 0, s)
		if err != nil || len(got) != 0 {
			t.Errorf("%v with empty query = (%v, %v)", s, got, err)
		}
		top, err := ix.TopK(empty, 5, s)
		if err != nil || len(top) != 0 {
			t.Errorf("%v TopK with empty query = (%v, %v)", s, top, err)
		}
	}
}

func TestInsertValidatesUDA(t *testing.T) {
	ix := newTestIndex(t, 50)
	if err := ix.Insert(1, uda.UDA{}); err != nil {
		t.Fatalf("empty UDA insert should be legal (no mass): %v", err)
	}
	// A duplicate tid must fail.
	if err := ix.Insert(1, uda.Certain(1)); err == nil {
		t.Errorf("duplicate tid accepted")
	}
	// An empty tuple has no list entries; deleting it touches only the heap.
	if err := ix.Delete(1); err != nil {
		t.Fatalf("delete of empty-UDA tuple: %v", err)
	}
	if ix.Len() != 0 {
		t.Errorf("Len = %d, want 0", ix.Len())
	}
	// Queries never surface empty tuples (Pr = 0 with everything).
	if err := ix.Insert(2, uda.UDA{}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err := ix.PETQ(uda.Certain(1), 0, BruteForce)
	if err != nil || len(got) != 0 {
		t.Errorf("PETQ over empty tuples = (%v, %v)", got, err)
	}
}

func TestDeleteRemovesFromQueries(t *testing.T) {
	ix := newTestIndex(t, 200)
	data := buildRandom(t, ix, 500, 20, 5, 17)
	q := uda.Random(rand.New(rand.NewSource(3)), 20, 4)

	before, err := ix.PETQ(q, 0.01, BruteForce)
	if err != nil {
		t.Fatalf("PETQ: %v", err)
	}
	if len(before) == 0 {
		t.Fatalf("test needs a non-empty result; adjust seed")
	}
	victim := before[0].TID
	if err := ix.Delete(victim); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	delete(data, victim)

	for _, s := range Strategies {
		got, err := ix.PETQ(q, 0.01, s)
		if err != nil {
			t.Fatalf("PETQ(%v): %v", s, err)
		}
		matchesEqual(t, s.String(), got, naivePETQ(data, q, 0.01))
		for _, m := range got {
			if m.TID == victim {
				t.Fatalf("%v still returns deleted tuple", s)
			}
		}
	}
	if err := ix.Delete(victim); err == nil {
		t.Errorf("double Delete succeeded")
	}
	if ix.Len() != 499 {
		t.Errorf("Len = %d, want 499", ix.Len())
	}
}

func TestPruningBeatsBruteForceOnLongTails(t *testing.T) {
	// The pruning strategies pay a random access per candidate, so they win
	// exactly when lists carry long tails of insignificant probabilities
	// that brute force must read but pruning can skip (§3.1: "These
	// optimizations are especially useful when the data or query is likely
	// to contain many insignificantly low probability values").
	//
	// Workload: every tuple puts 0.01 on item 0 and the rest on another
	// item; only 10 "special" tuples put 0.95 on item 0. Item 0's list is
	// tens of pages long, but only 10 entries exceed tau = 0.5.
	ix := newTestIndex(t, 0) // paper's 100-frame pool
	const n = 20000
	for i := 0; i < n; i++ {
		var u uda.UDA
		if i%2000 == 0 { // 10 specials
			u = uda.MustNew(uda.Pair{Item: 0, Prob: 0.95}, uda.Pair{Item: 1 + uint32(i%9), Prob: 0.05})
		} else {
			u = uda.MustNew(uda.Pair{Item: 0, Prob: 0.01}, uda.Pair{Item: 1 + uint32(i%9), Prob: 0.99})
		}
		if err := ix.Insert(uint32(i), u); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	q := uda.Certain(0)
	const tau = 0.5
	pool := ix.Pool()

	measure := func(s Strategy) uint64 {
		if err := pool.Clear(); err != nil {
			t.Fatalf("Clear: %v", err)
		}
		pool.ResetStats()
		got, err := ix.PETQ(q, tau, s)
		if err != nil {
			t.Fatalf("PETQ(%v): %v", s, err)
		}
		if len(got) != 10 {
			t.Fatalf("%v found %d matches, want 10", s, len(got))
		}
		return pool.Stats().IOs()
	}

	bf := measure(BruteForce)
	for _, s := range []Strategy{HighestProbFirst, ColumnPruning, NRA} {
		if got := measure(s); got >= bf {
			t.Errorf("%v used %d I/Os, brute force %d; expected fewer", s, got, bf)
		}
	}
}

func TestNRAWideQueryFallback(t *testing.T) {
	// More than 64 query items exercises the fallback path.
	ix := newTestIndex(t, 200)
	r := rand.New(rand.NewSource(21))
	data := make(map[uint32]uda.UDA)
	for i := 0; i < 300; i++ {
		u := uda.Random(r, 80, 10)
		data[uint32(i)] = u
		if err := ix.Insert(uint32(i), u); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	pairs := make([]uda.Pair, 80)
	for i := range pairs {
		pairs[i] = uda.Pair{Item: uint32(i), Prob: 1.0 / 80}
	}
	q := uda.MustNew(pairs...)
	got, err := ix.PETQ(q, 0.005, NRA)
	if err != nil {
		t.Fatalf("PETQ: %v", err)
	}
	matchesEqual(t, "nra-wide", got, naivePETQ(data, q, 0.005))
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		BruteForce:       "inv-index-search",
		HighestProbFirst: "highest-prob-first",
		RowPruning:       "row-pruning",
		ColumnPruning:    "column-pruning",
		NRA:              "nra",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("String(%d) = %q, want %q", s, s.String(), want)
		}
	}
	if Strategy(42).String() == "" {
		t.Errorf("unknown strategy String empty")
	}
}

func TestPartialMassTuples(t *testing.T) {
	// Tuples with missing values (mass < 1) are first-class.
	ix := newTestIndex(t, 100)
	u := uda.MustNew(uda.Pair{Item: 1, Prob: 0.3}) // 0.7 missing
	if err := ix.Insert(0, u); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	q := uda.Certain(1)
	for _, s := range Strategies {
		got, err := ix.PETQ(q, 0.2, s)
		if err != nil {
			t.Fatalf("PETQ(%v): %v", s, err)
		}
		if len(got) != 1 || math.Abs(got[0].Prob-0.3) > 1e-9 {
			t.Errorf("%v = %v, want one match at 0.3", s, got)
		}
	}
}

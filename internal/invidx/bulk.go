package invidx

import (
	"fmt"
	"sort"

	"ucat/internal/btree"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

// Tuple pairs a tuple id with its uncertain attribute value, for bulk
// loading.
type Tuple struct {
	TID   uint32
	Value uda.UDA
}

// Build constructs an index over the tuples in one pass: the heap is filled
// sequentially and every inverted list is bulk-loaded as a packed B-tree,
// avoiding the per-insert descents and splits of incremental construction.
func Build(pool *pager.Pool, tuples []Tuple) (*Index, error) {
	ix := New(pool)
	perItem := make(map[uint32][]btree.Key)
	for _, t := range tuples {
		if err := t.Value.Validate(); err != nil {
			return nil, fmt.Errorf("invidx: build tuple %d: %w", t.TID, err)
		}
		if err := ix.tuples.Put(t.TID, t.Value); err != nil {
			return nil, err
		}
		for _, p := range t.Value.Pairs() {
			perItem[p.Item] = append(perItem[p.Item], packKey(p.Prob, t.TID))
		}
	}
	for item, keys := range perItem {
		sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
		tree, err := btree.BulkLoad(pool, keys)
		if err != nil {
			return nil, fmt.Errorf("invidx: build list %d: %w", item, err)
		}
		ix.dir[item] = tree
	}
	return ix, nil
}

package invidx

import (
	"fmt"

	"ucat/internal/btree"
	"ucat/internal/obs"
	"ucat/internal/query"
	"ucat/internal/uda"
)

// Strategy selects one of the paper's inverted-index search algorithms.
type Strategy int

const (
	// BruteForce is "Inv-index-search": read the full list of every query
	// item, accumulating per-tuple scores by joining the lists. It never
	// needs random accesses but always pays for whole lists.
	BruteForce Strategy = iota
	// HighestProbFirst simultaneously scans the query items' lists in
	// descending probability order, always advancing the list whose frontier
	// maximizes q_j · p'_j, and stops by the paper's Lemma 1 as soon as no
	// unseen tuple can reach the threshold. Each new candidate costs one
	// random access.
	HighestProbFirst
	// RowPruning runs the brute-force search but only over lists whose item
	// has query probability above the threshold; candidates are verified by
	// random access.
	RowPruning
	// ColumnPruning reads every query item's list but only the prefix with
	// probability above the threshold; candidates are verified by random
	// access.
	ColumnPruning
	// NRA is the no-random-access variant: a rank join over the list
	// frontiers with per-candidate lower/upper bounds ("lack"), discarding
	// candidates whose upper bound falls below the threshold and deferring
	// random accesses to a final small survivor set (refs [12, 17] of the
	// paper).
	NRA
	// Auto picks between HighestProbFirst and NRA per query from the list
	// statistics: the paper observes that "depending on the nature of
	// queries and data, one may be preferable over others" (§3). When the
	// query's lists hold few entries in total, the frontier search's
	// per-candidate random accesses are cheap and its early stop wins; when
	// the lists are long (dense or skewed data), probing every candidate
	// dwarfs joining the lists, so the rank join is used.
	Auto
)

// String returns the name used in the paper/benchmarks for the strategy.
func (s Strategy) String() string {
	switch s {
	case BruteForce:
		return "inv-index-search"
	case HighestProbFirst:
		return "highest-prob-first"
	case RowPruning:
		return "row-pruning"
	case ColumnPruning:
		return "column-pruning"
	case NRA:
		return "nra"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all implemented search strategies, for tests and
// benchmarks that sweep them.
var Strategies = []Strategy{BruteForce, HighestProbFirst, RowPruning, ColumnPruning, NRA}

// PETQ answers the probabilistic equality threshold query (Definition 4):
// all tuples t with Pr(q = t) > tau, with their exact probabilities, in
// descending probability order. tau must be non-negative; PETQ(q, 0) is the
// plain probabilistic equality query PEQ (Definition 3).
//
//ucatlint:hotpath
func (r *Reader) PETQ(q uda.UDA, tau float64, s Strategy) ([]query.Match, error) {
	if tau < 0 {
		return nil, fmt.Errorf("invidx: negative threshold %g", tau)
	}
	auto := s == Auto
	if auto {
		s = r.chooseStrategy(q)
	}
	sp := r.rec.StartSpan("invidx.petq")
	defer sp.End()
	sp.Attr("strategy", s.String())
	sp.AttrF("tau", tau)
	if auto {
		sp.Attr("auto", "true")
	}
	var res []query.Match
	var err error
	switch s {
	case BruteForce:
		res, err = r.bruteForce(q, tau)
	case HighestProbFirst:
		res, err = r.highestProbFirst(q, tau)
	case RowPruning:
		res, err = r.rowPruning(q, tau)
	case ColumnPruning:
		res, err = r.columnPruning(q, tau)
	case NRA:
		res, err = r.nra(q, tau)
	default:
		return nil, fmt.Errorf("invidx: unknown strategy %v", s)
	}
	if err != nil {
		return nil, err
	}
	query.SortMatches(res)
	return res, nil
}

// TopK answers PETQ-top-k: k tuples with the highest equality probability to
// q (ties at the kth position broken arbitrarily), implemented as a
// threshold query whose threshold rises dynamically to the kth best
// probability seen, per §2 of the paper.
//
//ucatlint:hotpath
func (r *Reader) TopK(q uda.UDA, k int, s Strategy) ([]query.Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("invidx: non-positive k %d", k)
	}
	if s == Auto {
		s = r.chooseStrategy(q)
	}
	sp := r.rec.StartSpan("invidx.topk")
	defer sp.End()
	sp.Attr("strategy", s.String())
	sp.AttrF("k", float64(k))
	switch s {
	case BruteForce:
		return r.bruteForceTopK(q, k)
	case HighestProbFirst:
		return r.frontierTopK(q, k, true)
	case ColumnPruning:
		return r.frontierTopK(q, k, false)
	case RowPruning:
		return r.rowPruningTopK(q, k)
	case NRA:
		return r.nraTopK(q, k)
	default:
		return nil, fmt.Errorf("invidx: unknown strategy %v", s)
	}
}

// chooseStrategy implements Auto: compare the worst-case random-access cost
// of the frontier search (one probe per distinct candidate, bounded by the
// total entries in the query's lists) with the list-joining cost (pages of
// those lists) and keep probing only while it is cheap.
func (r *Reader) chooseStrategy(q uda.UDA) Strategy {
	var entries, pages int
	for _, p := range q.Pairs() {
		if tree, ok := r.ix.dir[p.Item]; ok {
			n := tree.Len()
			entries += n
			pages += 1 + n/btree.MaxLeafKeys
		}
	}
	// Each probe costs up to one page. Allow probes up to a small multiple
	// of the pure list-join cost — the early stop usually avoids most of
	// them on sparse data.
	if entries <= 4*pages {
		return HighestProbFirst
	}
	return NRA
}

// listCursor walks one inverted list in descending probability order,
// exposing the frontier pair (the paper's "current pointer").
type listCursor struct {
	item uint32
	qp   float64 // the query's probability for this item
	cur  *btree.Cursor
	prob float64 // frontier probability p'_j
	tid  uint32
	ok   bool
	rec  *obs.Recorder // nil unless the query is traced
}

// advance moves the frontier to the next pair; ok goes false at list end.
// Every advance is one "current pointer" step of the paper's frontier
// searches; traced queries tally them as inv.advances.
func (lc *listCursor) advance() error {
	lc.rec.Add("inv.advances", 1)
	k, ok, err := lc.cur.Next()
	if err != nil {
		return err
	}
	lc.ok = ok
	if ok {
		lc.prob, lc.tid = unpackKey(k)
	} else {
		lc.prob, lc.tid = 0, 0
	}
	return nil
}

// openCursors builds one positioned cursor per query item that has a
// non-empty list. The cursors are carved out of one bulk allocation (its
// capacity is fixed up front, so the interior pointers stay valid).
func (r *Reader) openCursors(q uda.UDA) ([]*listCursor, error) {
	bulk := make([]listCursor, 0, q.Len())
	var cs []*listCursor
	for _, p := range q.Pairs() {
		tree, ok := r.ix.dir[p.Item]
		if !ok || tree.Len() == 0 {
			continue
		}
		bulk = append(bulk, listCursor{item: p.Item, qp: p.Prob, cur: tree.NewCursorVia(r.view, btree.Key{}), rec: r.rec})
		lc := &bulk[len(bulk)-1]
		if err := lc.advance(); err != nil {
			return nil, err
		}
		if lc.ok {
			cs = append(cs, lc)
		}
	}
	return cs, nil
}

// bruteForce joins the full lists of all query items. The per-tuple
// accumulated score Σ_j q_j · t_j over exactly the query's items *is* the
// equality probability, so no random accesses are needed.
func (r *Reader) bruteForce(q uda.UDA, tau float64) ([]query.Match, error) {
	scores, err := r.accumulate(q, nil)
	if err != nil {
		return nil, err
	}
	var res []query.Match
	for tid, sc := range scores {
		if sc > tau {
			res = append(res, query.Match{TID: tid, Prob: sc})
		}
	}
	return res, nil
}

func (r *Reader) bruteForceTopK(q uda.UDA, k int) ([]query.Match, error) {
	scores, err := r.accumulate(q, nil)
	if err != nil {
		return nil, err
	}
	tk := query.NewTopK(k)
	for tid, sc := range scores {
		tk.Offer(query.Match{TID: tid, Prob: sc})
	}
	return tk.Results(), nil
}

// accumulate scans the full list of every query item (or only those for
// which keep returns true) and sums q_j · t_j per tuple.
func (r *Reader) accumulate(q uda.UDA, keep func(qp float64) bool) (map[uint32]float64, error) {
	scores := make(map[uint32]float64)
	for _, p := range q.Pairs() {
		if keep != nil && !keep(p.Prob) {
			continue
		}
		tree, ok := r.ix.dir[p.Item]
		if !ok {
			continue
		}
		r.rec.Add("inv.lists", 1)
		qp := p.Prob
		//ucatlint:ignore hotalloc one callback per posting list (not per entry); captured accumulator state is the point
		err := tree.ScanVia(r.view, btree.Key{}, func(k btree.Key) bool {
			r.rec.Add("inv.entries", 1)
			prob, tid := unpackKey(k)
			scores[tid] += qp * prob
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return scores, nil
}

// highestProbFirst implements the paper's Highest-prob-first search: advance
// the most promising frontier, verify each newly seen tuple by random
// access, and stop when Lemma 1 guarantees no unseen tuple can qualify.
func (r *Reader) highestProbFirst(q uda.UDA, tau float64) ([]query.Match, error) {
	cs, err := r.openCursors(q)
	if err != nil {
		return nil, err
	}
	seen := make(map[uint32]struct{})
	var res []query.Match
	for {
		best := -1
		var bestVal float64
		bound := 0.0
		for i, lc := range cs {
			if !lc.ok {
				continue
			}
			v := lc.qp * lc.prob
			bound += v
			if best == -1 || v > bestVal {
				best, bestVal = i, v
			}
		}
		// Lemma 1: an unseen tuple's score is at most the frontier bound.
		if best == -1 || bound <= tau {
			break
		}
		lc := cs[best]
		tid := lc.tid
		if err := lc.advance(); err != nil {
			return nil, err
		}
		if _, dup := seen[tid]; dup {
			continue
		}
		seen[tid] = struct{}{}
		m, qualifies, err := r.verify(q, tid, tau)
		if err != nil {
			return nil, err
		}
		if qualifies {
			res = append(res, m)
		}
	}
	return res, nil
}

// verify performs the random access for a candidate and evaluates the exact
// equality probability against the threshold. The probe decodes into the
// reader's reused arena (tuplestore.GetArena): the distribution is consumed
// right here, so the buffer can be recycled probe after probe.
func (r *Reader) verify(q uda.UDA, tid uint32, tau float64) (query.Match, bool, error) {
	r.rec.Add("inv.probes", 1)
	u, arena, err := r.ix.tuples.GetArena(r.view, tid, r.arena[:0])
	r.arena = arena
	if err != nil {
		return query.Match{}, false, err
	}
	p := uda.EqualityProb(q, u)
	return query.Match{TID: tid, Prob: p}, p > tau, nil
}

// rowPruning scans only the lists of items with q_j > tau: a tuple all of
// whose query-overlapping items have q_j ≤ tau has score
// Σ q_j·t_j ≤ tau·Σ t_j ≤ tau, so it cannot strictly exceed the threshold.
// When at least one list was skipped, the accumulated scores are only lower
// bounds and every candidate is verified by random access.
func (r *Reader) rowPruning(q uda.UDA, tau float64) ([]query.Match, error) {
	pruned := false
	scores, err := r.accumulate(q, func(qp float64) bool {
		if qp > tau {
			return true
		}
		pruned = true
		return false
	})
	if err != nil {
		return nil, err
	}
	var res []query.Match
	for tid, sc := range scores {
		if !pruned {
			if sc > tau {
				res = append(res, query.Match{TID: tid, Prob: sc})
			}
			continue
		}
		m, qualifies, err := r.verify(q, tid, tau)
		if err != nil {
			return nil, err
		}
		if qualifies {
			res = append(res, m)
		}
	}
	return res, nil
}

// rowPruningTopK processes whole lists in descending query-probability
// order, raising the threshold as results accumulate and stopping when the
// remaining lists' query probabilities can no longer beat it.
func (r *Reader) rowPruningTopK(q uda.UDA, k int) ([]query.Match, error) {
	pairs := q.PairsByProb()
	tk := query.NewTopK(k)
	seen := make(map[uint32]struct{})
	for _, p := range pairs {
		// A tuple absent from all processed lists has score ≤ Σ_rest q_j·t_j
		// ≤ max_rest q_j; with lists in descending q_j that maximum is p.Prob.
		if tk.Full() && p.Prob <= tk.Threshold() {
			break
		}
		tree, ok := r.ix.dir[p.Item]
		if !ok {
			continue
		}
		var verr error
		//ucatlint:ignore hotalloc one callback per posting list (not per entry); captured accumulator state is the point
		err := tree.ScanVia(r.view, btree.Key{}, func(key btree.Key) bool {
			_, tid := unpackKey(key)
			if _, dup := seen[tid]; dup {
				return true
			}
			seen[tid] = struct{}{}
			m, _, err := r.verify(q, tid, 0)
			if err != nil {
				verr = err
				return false
			}
			tk.Offer(m)
			return true
		})
		if err != nil {
			return nil, err
		}
		if verr != nil {
			return nil, verr
		}
	}
	return tk.Results(), nil
}

// columnPruning reads only the prefix of each query item's list with
// probability above tau: a qualifying tuple has Σ q_j·t_j > tau with
// Σ q_j ≤ 1, so some overlapping item must have t_j > tau and the tuple
// appears in that list's prefix. Candidates are verified by random access.
func (r *Reader) columnPruning(q uda.UDA, tau float64) ([]query.Match, error) {
	seen := make(map[uint32]struct{})
	var res []query.Match
	for _, p := range q.Pairs() {
		tree, ok := r.ix.dir[p.Item]
		if !ok {
			continue
		}
		var verr error
		//ucatlint:ignore hotalloc one callback per posting list (not per entry); captured accumulator state is the point
		err := tree.ScanVia(r.view, btree.Key{}, func(key btree.Key) bool {
			prob, tid := unpackKey(key)
			if prob <= tau {
				return false // rest of the column is below the threshold
			}
			if _, dup := seen[tid]; dup {
				return true
			}
			seen[tid] = struct{}{}
			m, qualifies, err := r.verify(q, tid, tau)
			if err != nil {
				verr = err
				return false
			}
			if qualifies {
				res = append(res, m)
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if verr != nil {
			return nil, verr
		}
	}
	return res, nil
}

// frontierTopK is the shared top-k driver for highest-prob-first and
// column-pruning: advance frontiers in best-first order, verify new
// candidates, and stop once no unseen tuple can beat the kth best.
// When scaled is true frontiers are ranked by q_j·p'_j and the stop test is
// Lemma 1's Σ q_j·p'_j ≤ τ; otherwise ranking and stopping use the raw
// frontier probability (column pruning: an unseen tuple's score is at most
// max_j p'_j because Σ q_j ≤ 1).
func (r *Reader) frontierTopK(q uda.UDA, k int, scaled bool) ([]query.Match, error) {
	cs, err := r.openCursors(q)
	if err != nil {
		return nil, err
	}
	tk := query.NewTopK(k)
	seen := make(map[uint32]struct{})
	for {
		best := -1
		var bestVal, bound, maxFrontier float64
		for i, lc := range cs {
			if !lc.ok {
				continue
			}
			v := lc.prob
			if scaled {
				v = lc.qp * lc.prob
			}
			bound += lc.qp * lc.prob
			if lc.prob > maxFrontier {
				maxFrontier = lc.prob
			}
			if best == -1 || v > bestVal {
				best, bestVal = i, v
			}
		}
		if best == -1 {
			break
		}
		if tk.Full() {
			stop := bound
			if !scaled {
				stop = maxFrontier
			}
			if stop <= tk.Threshold() {
				break
			}
		}
		lc := cs[best]
		tid := lc.tid
		if err := lc.advance(); err != nil {
			return nil, err
		}
		if _, dup := seen[tid]; dup {
			continue
		}
		seen[tid] = struct{}{}
		m, _, err := r.verify(q, tid, 0)
		if err != nil {
			return nil, err
		}
		tk.Offer(m)
	}
	return tk.Results(), nil
}

// nraCandidate tracks a tuple mid-join: the score accumulated from lists
// where it has been seen, and which lists could still contribute — the
// paper's "lack" bookkeeping.
type nraCandidate struct {
	partial float64
	seen    uint64 // bitmask over cursor indices
}

// nra is the no-random-access threshold search (rank join with early-out,
// refs [12, 17]). Phase 1 (discovery) descends the frontiers while new
// tuples can still qualify (Lemma 1), maintaining per-candidate lower/upper
// bounds and dropping candidates whose upper bound cannot exceed tau. Phase
// 2 (resolution) keeps draining only the lists that surviving candidates
// still lack contributions from — discarding a list "when no tuples in the
// candidate set reference it" — and performs random accesses only once the
// candidate set is small (or to confirm a candidate whose lower bound
// already beats tau).
func (r *Reader) nra(q uda.UDA, tau float64) ([]query.Match, error) {
	cs, err := r.openCursors(q)
	if err != nil {
		return nil, err
	}
	if len(cs) > 64 {
		// The bitmask caps the number of lists; fall back to the safe
		// strategy for absurdly wide queries.
		return r.highestProbFirst(q, tau)
	}
	cand := make(map[uint32]*nraCandidate)
	done := make(map[uint32]struct{}) // discarded
	// refs[i] counts candidates that have not yet been seen in list i.
	refs := make([]int, len(cs))
	var res []query.Match

	// maxRA caps the final random accesses: once the unresolved candidate
	// set is this small, probing beats draining long list tails.
	const maxRA = 32
	const sweepEvery = 4096
	step := 0

	// Phase 1: discovery. New candidates are admitted while the frontier
	// bound exceeds tau (Lemma 1). Candidates are never resolved by random
	// access here — their partial sums keep growing as the lists drain, and
	// a candidate's partial is exact as soon as every list it has not been
	// seen in is exhausted (every consumed pair is credited to its tuple, so
	// an unseen entry can only lie below a live frontier).
	for {
		best := -1
		var bestVal float64
		bound := 0.0
		for i, lc := range cs {
			if !lc.ok {
				continue
			}
			v := lc.qp * lc.prob
			bound += v
			if best == -1 || v > bestVal {
				best, bestVal = i, v
			}
		}
		if best == -1 || bound <= tau {
			break
		}
		lc := cs[best]
		tid := lc.tid
		contribution := lc.qp * lc.prob
		if err := lc.advance(); err != nil {
			return nil, err
		}
		if _, over := done[tid]; over {
			continue
		}
		c := cand[tid]
		if c == nil {
			c = &nraCandidate{}
			cand[tid] = c
			for i, l := range cs {
				if l.ok {
					refs[i]++
				}
			}
		}
		if c.seen&(1<<uint(best)) == 0 {
			c.seen |= 1 << uint(best)
			refs[best]--
		}
		c.partial += contribution

		step++
		if step%sweepEvery == 0 {
			r.nraSweep(cs, cand, done, refs, tau, false)
		}
	}
	r.nraSweep(cs, cand, done, refs, tau, false)

	// Phase 2: resolution. No new candidates are admitted; keep draining
	// the lists that surviving candidates still reference (a list is
	// effectively discarded once no candidate references it) until every
	// candidate is discarded or exactly resolved — or few enough remain to
	// resolve by random access.
	for len(cand) > maxRA {
		best := -1
		var bestVal float64
		for i, lc := range cs {
			if !lc.ok || refs[i] == 0 {
				continue // list exhausted or no candidate references it
			}
			if v := lc.qp * lc.prob; best == -1 || v > bestVal {
				best, bestVal = i, v
			}
		}
		if best == -1 {
			break // all partials are exact now
		}
		lc := cs[best]
		tid := lc.tid
		contribution := lc.qp * lc.prob
		if err := lc.advance(); err != nil {
			return nil, err
		}
		if c, live := cand[tid]; live && c.seen&(1<<uint(best)) == 0 {
			c.seen |= 1 << uint(best)
			refs[best]--
			c.partial += contribution
		}
		step++
		if step%sweepEvery == 0 {
			r.nraSweep(cs, cand, done, refs, tau, false)
		}
	}

	// Emit. Candidates that still reference a live list were left for the
	// random-access finish (the set is at most maxRA); the rest carry exact
	// partials.
	for tid, c := range cand {
		unresolved := false
		for i, lc := range cs {
			if lc.ok && c.seen&(1<<uint(i)) == 0 {
				unresolved = true
				break
			}
		}
		if unresolved {
			m, qualifies, err := r.verify(q, tid, tau)
			if err != nil {
				return nil, err
			}
			if qualifies {
				res = append(res, m)
			}
			continue
		}
		if c.partial > tau {
			res = append(res, query.Match{TID: tid, Prob: c.partial})
		}
	}
	return res, nil
}

// nraDrop removes a candidate and releases its list references.
func (r *Reader) nraDrop(cs []*listCursor, cand map[uint32]*nraCandidate, refs []int, tid uint32) {
	c, ok := cand[tid]
	if !ok {
		return
	}
	for i := range cs {
		if c.seen&(1<<uint(i)) == 0 {
			refs[i]--
		}
	}
	delete(cand, tid)
}

// nraSweep discards candidates whose upper bound (partial plus the best the
// unseen, still-referenced lists could contribute) cannot exceed tau. For
// large candidate sets the per-candidate unseen-list walk is replaced by the
// (sound, slightly weaker) global residual Σ_live q_j·p'_j, keeping sweeps
// linear in the candidate count.
func (r *Reader) nraSweep(cs []*listCursor, cand map[uint32]*nraCandidate, done map[uint32]struct{}, refs []int, tau float64, strict bool) {
	r.rec.Add("inv.sweeps", 1)
	r.rec.Max("inv.candidates", int64(len(cand)))
	exact := len(cand) <= 1024
	var residual float64
	for _, lc := range cs {
		if lc.ok {
			residual += lc.qp * lc.prob
		}
	}
	for tid, c := range cand {
		ub := c.partial
		if exact {
			for i, lc := range cs {
				if !lc.ok || c.seen&(1<<uint(i)) != 0 {
					continue
				}
				ub += lc.qp * lc.prob
			}
		} else {
			ub += residual
		}
		if ub <= tau && (!strict || ub < tau) {
			done[tid] = struct{}{}
			r.nraDrop(cs, cand, refs, tid)
		}
	}
}

// nraTopK is the rank-join top-k: the pruning threshold is the kth largest
// candidate lower bound (partial sum), which only rises as the lists drain.
// Discovery stops when Lemma 1's frontier bound cannot beat it; resolution
// drains the lists surviving candidates reference until every partial is
// exact, and the k best exact scores win. No random accesses are needed.
func (r *Reader) nraTopK(q uda.UDA, k int) ([]query.Match, error) {
	cs, err := r.openCursors(q)
	if err != nil {
		return nil, err
	}
	if len(cs) > 64 {
		return r.frontierTopK(q, k, true)
	}
	cand := make(map[uint32]*nraCandidate)
	done := make(map[uint32]struct{})
	refs := make([]int, len(cs))

	const sweepEvery = 4096
	step := 0
	tau := 0.0 // kth largest partial seen at the last sweep; rises monotonically

	sweep := func() {
		if t := kthLargestPartial(cand, k); t > tau {
			tau = t
		}
		// Strict discard: the threshold is achieved by live candidates, so a
		// candidate whose upper bound merely equals it may be one of the k
		// that define it.
		r.nraSweep(cs, cand, done, refs, tau, true)
	}

	// Discovery.
	for {
		best := -1
		var bestVal float64
		bound := 0.0
		for i, lc := range cs {
			if !lc.ok {
				continue
			}
			v := lc.qp * lc.prob
			bound += v
			if best == -1 || v > bestVal {
				best, bestVal = i, v
			}
		}
		if best == -1 || bound <= tau {
			break
		}
		lc := cs[best]
		tid := lc.tid
		contribution := lc.qp * lc.prob
		if err := lc.advance(); err != nil {
			return nil, err
		}
		if _, over := done[tid]; over {
			continue
		}
		c := cand[tid]
		if c == nil {
			c = &nraCandidate{}
			cand[tid] = c
			for i, l := range cs {
				if l.ok {
					refs[i]++
				}
			}
		}
		if c.seen&(1<<uint(best)) == 0 {
			c.seen |= 1 << uint(best)
			refs[best]--
		}
		c.partial += contribution

		step++
		if step%sweepEvery == 0 {
			sweep()
		}
	}
	sweep()

	// Resolution: drain referenced lists until every partial is exact.
	for {
		best := -1
		var bestVal float64
		for i, lc := range cs {
			if !lc.ok || refs[i] == 0 {
				continue
			}
			if v := lc.qp * lc.prob; best == -1 || v > bestVal {
				best, bestVal = i, v
			}
		}
		if best == -1 {
			break
		}
		lc := cs[best]
		tid := lc.tid
		contribution := lc.qp * lc.prob
		if err := lc.advance(); err != nil {
			return nil, err
		}
		if c, live := cand[tid]; live && c.seen&(1<<uint(best)) == 0 {
			c.seen |= 1 << uint(best)
			refs[best]--
			c.partial += contribution
		}
		step++
		if step%sweepEvery == 0 {
			sweep()
		}
	}

	tk := query.NewTopK(k)
	for tid, c := range cand {
		tk.Offer(query.Match{TID: tid, Prob: c.partial})
	}
	return tk.Results(), nil
}

// kthLargestPartial returns the kth largest partial among the candidates
// (0 when fewer than k candidates exist), via quickselect.
func kthLargestPartial(cand map[uint32]*nraCandidate, k int) float64 {
	if len(cand) < k {
		return 0
	}
	vals := make([]float64, 0, len(cand))
	for _, c := range cand {
		vals = append(vals, c.partial)
	}
	return quickselectDesc(vals, k-1)
}

// quickselectDesc returns the element that would sit at index i if vals were
// sorted in descending order. It partitions in place.
func quickselectDesc(vals []float64, i int) float64 {
	lo, hi := 0, len(vals)-1
	for lo < hi {
		pivot := vals[(lo+hi)/2]
		l, r := lo, hi
		for l <= r {
			for vals[l] > pivot {
				l++
			}
			for vals[r] < pivot {
				r--
			}
			if l <= r {
				vals[l], vals[r] = vals[r], vals[l]
				l++
				r--
			}
		}
		switch {
		case i <= r:
			hi = r
		case i >= l:
			lo = l
		default:
			return vals[i]
		}
	}
	return vals[i]
}

package invidx

import (
	"fmt"

	"ucat/internal/btree"
	"ucat/internal/query"
	"ucat/internal/uda"
)

// WindowPETQ answers the paper's relaxed equality query on ordered domains
// (§2): all tuples t with Pr(|q − t| ≤ c) > tau. Window equality is a plain
// weighted dot product against the box-filtered query
// w = Smear(q, c) — Pr(|q−t| ≤ c) = Σ_i w_i · t_i — so the search joins the
// inverted lists of w's support with w as the per-list weight, exactly like
// the brute-force equality search with a wider query.
func (r *Reader) WindowPETQ(q uda.UDA, c uint32, tau float64) ([]query.Match, error) {
	if tau < 0 {
		return nil, fmt.Errorf("invidx: negative threshold %g", tau)
	}
	w := uda.Smear(q, c)
	scores := make(map[uint32]float64)
	for _, p := range w {
		tree, ok := r.ix.dir[p.Item]
		if !ok {
			continue
		}
		weight := p.Prob
		//ucatlint:ignore hotalloc one callback per posting list (not per entry); captured accumulator state is the point
		err := tree.ScanVia(r.view, btree.Key{}, func(k btree.Key) bool {
			prob, tid := unpackKey(k)
			scores[tid] += weight * prob
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	var res []query.Match
	for tid, sc := range scores {
		if sc > tau {
			res = append(res, query.Match{TID: tid, Prob: sc})
		}
	}
	query.SortMatches(res)
	return res, nil
}

// WindowTopK returns the k tuples with the highest window-equality
// probability Pr(|q − t| ≤ c).
func (r *Reader) WindowTopK(q uda.UDA, c uint32, k int) ([]query.Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("invidx: non-positive k %d", k)
	}
	all, err := r.WindowPETQ(q, c, 0)
	if err != nil {
		return nil, err
	}
	tk := query.NewTopK(k)
	for _, m := range all {
		tk.Offer(m)
	}
	return tk.Results(), nil
}

package invidx

import "fmt"

// Stats describes the index's physical shape.
type Stats struct {
	Tuples     int     // indexed UDAs
	Lists      int     // non-empty inverted lists (distinct items)
	Entries    int     // total (tid, prob) entries across all lists
	MeanLength float64 // mean entries per list
	MaxLength  int     // longest list
	HeapPages  int     // tuple heap data pages
}

func (s Stats) String() string {
	return fmt.Sprintf("tuples=%d lists=%d entries=%d mean-list=%.1f max-list=%d heap-pages=%d",
		s.Tuples, s.Lists, s.Entries, s.MeanLength, s.MaxLength, s.HeapPages)
}

// Stats reports the index's shape without I/O: list lengths are tracked by
// the B-trees in memory.
func (ix *Index) Stats() Stats {
	st := Stats{
		Tuples:    ix.tuples.Len(),
		Lists:     len(ix.dir),
		HeapPages: ix.tuples.Pages(),
	}
	for _, tree := range ix.dir {
		n := tree.Len()
		st.Entries += n
		if n > st.MaxLength {
			st.MaxLength = n
		}
	}
	if st.Lists > 0 {
		st.MeanLength = float64(st.Entries) / float64(st.Lists)
	}
	return st
}

package invidx

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/uda"
)

func TestMultiPETQMatchesSingleQueries(t *testing.T) {
	ix := newTestIndex(t, 300)
	buildRandom(t, ix, 1200, 20, 5, 71)
	r := rand.New(rand.NewSource(5))
	qs := make([]uda.UDA, 40)
	taus := make([]float64, len(qs))
	for i := range qs {
		qs[i] = uda.Random(r, 20, 4)
		taus[i] = r.Float64() * 0.25
	}
	got, err := ix.MultiPETQ(qs, taus)
	if err != nil {
		t.Fatalf("MultiPETQ: %v", err)
	}
	if len(got) != len(qs) {
		t.Fatalf("MultiPETQ returned %d result sets", len(got))
	}
	for qi := range qs {
		want, err := ix.PETQ(qs[qi], taus[qi], BruteForce)
		if err != nil {
			t.Fatalf("PETQ: %v", err)
		}
		if len(got[qi]) != len(want) {
			t.Fatalf("query %d: %d matches, want %d", qi, len(got[qi]), len(want))
		}
		for i := range want {
			if got[qi][i].TID != want[i].TID || math.Abs(got[qi][i].Prob-want[i].Prob) > 1e-9 {
				t.Fatalf("query %d match %d = %v, want %v", qi, i, got[qi][i], want[i])
			}
		}
	}
}

func TestMultiPETQSharesListScans(t *testing.T) {
	// A batch of m identical-support queries must cost about one query's
	// I/O, not m.
	ix := newTestIndex(t, 0) // 100-frame pool
	buildRandom(t, ix, 20000, 10, 4, 3)
	pool := ix.Pool()

	q := uda.MustNew(uda.Pair{Item: 1, Prob: 0.5}, uda.Pair{Item: 2, Prob: 0.5})
	const m = 64
	qs := make([]uda.UDA, m)
	taus := make([]float64, m)
	for i := range qs {
		qs[i] = q
		taus[i] = 0.2
	}

	if err := pool.Clear(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if _, err := ix.PETQ(q, 0.2, BruteForce); err != nil {
		t.Fatal(err)
	}
	single := pool.Stats().IOs()

	if err := pool.Clear(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if _, err := ix.MultiPETQ(qs, taus); err != nil {
		t.Fatal(err)
	}
	batched := pool.Stats().IOs()

	if batched > 2*single {
		t.Errorf("batch of %d cost %d I/Os vs %d for one query; scans not shared", m, batched, single)
	}
}

func TestMultiPETQValidation(t *testing.T) {
	ix := newTestIndex(t, 50)
	qs := []uda.UDA{uda.Certain(1)}
	if _, err := ix.MultiPETQ(qs, []float64{0.1, 0.2}); err == nil {
		t.Errorf("mismatched lengths accepted")
	}
	if _, err := ix.MultiPETQ(qs, []float64{-1}); err == nil {
		t.Errorf("negative threshold accepted")
	}
	got, err := ix.MultiPETQ(nil, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("empty batch = (%v, %v)", got, err)
	}
}

package invidx

import (
	"sort"

	"ucat/internal/btree"
	"ucat/internal/uda"
)

// Rebuild compacts the tuple heap and reconstructs every inverted list as a
// freshly packed B-tree, reclaiming the space left behind by deletions and
// lazy B-tree maintenance. Equivalent to dropping and bulk-rebuilding the
// index, in place.
func (ix *Index) Rebuild() error {
	// Collect the live postings before touching anything.
	perItem := make(map[uint32][]btree.Key)
	err := ix.tuples.Scan(func(tid uint32, u uda.UDA) bool {
		for _, p := range u.Pairs() {
			perItem[p.Item] = append(perItem[p.Item], packKey(p.Prob, tid))
		}
		return true
	})
	if err != nil {
		return err
	}
	if _, err := ix.tuples.Compact(); err != nil {
		return err
	}
	for item, tree := range ix.dir {
		if err := tree.Drop(); err != nil {
			return err
		}
		delete(ix.dir, item)
	}
	for item, keys := range perItem {
		sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
		tree, err := btree.BulkLoad(ix.pool, keys)
		if err != nil {
			return err
		}
		ix.dir[item] = tree
	}
	return nil
}

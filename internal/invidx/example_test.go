package invidx_test

import (
	"fmt"
	"log"

	"ucat/internal/invidx"
	"ucat/internal/pager"
	"ucat/internal/uda"
)

func ExampleIndex_PETQ() {
	pool := pager.NewPool(pager.NewStore(), 100)
	ix := invidx.New(pool)
	tuples := []uda.UDA{
		uda.MustNew(uda.Pair{Item: 1, Prob: 0.9}, uda.Pair{Item: 2, Prob: 0.1}),
		uda.MustNew(uda.Pair{Item: 1, Prob: 0.2}, uda.Pair{Item: 3, Prob: 0.8}),
		uda.MustNew(uda.Pair{Item: 4, Prob: 1.0}),
	}
	for tid, u := range tuples {
		if err := ix.Insert(uint32(tid), u); err != nil {
			log.Fatal(err)
		}
	}
	// Auto picks a strategy from the list statistics; all strategies return
	// identical answers.
	matches, err := ix.PETQ(uda.Certain(1), 0.5, invidx.Auto)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("tuple %d: %.1f\n", m.TID, m.Prob)
	}
	// Output:
	// tuple 0: 0.9
}

func ExampleIndex_MultiPETQ() {
	pool := pager.NewPool(pager.NewStore(), 100)
	ix := invidx.New(pool)
	for tid, u := range []uda.UDA{
		uda.MustNew(uda.Pair{Item: 1, Prob: 0.6}, uda.Pair{Item: 2, Prob: 0.4}),
		uda.MustNew(uda.Pair{Item: 2, Prob: 1.0}),
	} {
		if err := ix.Insert(uint32(tid), u); err != nil {
			log.Fatal(err)
		}
	}
	// Two queries answered in one shared pass over the lists.
	qs := []uda.UDA{uda.Certain(1), uda.Certain(2)}
	results, err := ix.MultiPETQ(qs, []float64{0.5, 0.5})
	if err != nil {
		log.Fatal(err)
	}
	for qi, ms := range results {
		for _, m := range ms {
			fmt.Printf("query %d: tuple %d at %.1f\n", qi, m.TID, m.Prob)
		}
	}
	// Output:
	// query 0: tuple 0 at 0.6
	// query 1: tuple 1 at 1.0
}

package invidx

import (
	"strings"
	"testing"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

func mustUDA(t *testing.T, pairs ...uda.Pair) uda.UDA {
	t.Helper()
	u, err := uda.New(pairs...)
	if err != nil {
		t.Fatalf("uda.New: %v", err)
	}
	return u
}

func TestStatsEmptyIndex(t *testing.T) {
	ix := New(pager.NewPool(pager.NewStore(), 0))
	st := ix.Stats()
	if st.Tuples != 0 || st.Lists != 0 || st.Entries != 0 || st.MaxLength != 0 {
		t.Errorf("empty index stats = %+v, want all zero", st)
	}
	if st.MeanLength != 0 {
		t.Errorf("empty index MeanLength = %v, want 0 (no division by zero lists)", st.MeanLength)
	}
}

func TestStatsCountsShape(t *testing.T) {
	ix := New(pager.NewPool(pager.NewStore(), 0))
	// Three tuples over items {1, 2, 3}:
	//   t0: items 1, 2     t1: items 1, 3     t2: item 1
	// → list(1) has 3 entries, list(2) has 1, list(3) has 1.
	tuples := []uda.UDA{
		mustUDA(t, uda.Pair{Item: 1, Prob: 0.5}, uda.Pair{Item: 2, Prob: 0.5}),
		mustUDA(t, uda.Pair{Item: 1, Prob: 0.4}, uda.Pair{Item: 3, Prob: 0.6}),
		mustUDA(t, uda.Pair{Item: 1, Prob: 1.0}),
	}
	for tid, u := range tuples {
		if err := ix.Insert(uint32(tid), u); err != nil {
			t.Fatalf("Insert(%d): %v", tid, err)
		}
	}
	st := ix.Stats()
	if st.Tuples != 3 {
		t.Errorf("Tuples = %d, want 3", st.Tuples)
	}
	if st.Lists != 3 {
		t.Errorf("Lists = %d, want 3", st.Lists)
	}
	if st.Entries != 5 {
		t.Errorf("Entries = %d, want 5", st.Entries)
	}
	if st.MaxLength != 3 {
		t.Errorf("MaxLength = %d, want 3 (item 1's list)", st.MaxLength)
	}
	if want := 5.0 / 3.0; st.MeanLength < want-1e-9 || st.MeanLength > want+1e-9 {
		t.Errorf("MeanLength = %v, want %v", st.MeanLength, want)
	}
	if st.HeapPages <= 0 {
		t.Errorf("HeapPages = %d, want > 0 after inserts", st.HeapPages)
	}
}

func TestStatsTracksDeletes(t *testing.T) {
	ix := New(pager.NewPool(pager.NewStore(), 0))
	for tid := uint32(0); tid < 4; tid++ {
		u := mustUDA(t, uda.Pair{Item: 7, Prob: 0.5}, uda.Pair{Item: 8 + tid, Prob: 0.5})
		if err := ix.Insert(tid, u); err != nil {
			t.Fatalf("Insert(%d): %v", tid, err)
		}
	}
	before := ix.Stats()
	if before.Tuples != 4 || before.MaxLength != 4 {
		t.Fatalf("pre-delete stats = %+v", before)
	}
	if err := ix.Delete(2); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	after := ix.Stats()
	if after.Tuples != 3 {
		t.Errorf("Tuples after delete = %d, want 3", after.Tuples)
	}
	if after.Entries != before.Entries-2 {
		t.Errorf("Entries after delete = %d, want %d", after.Entries, before.Entries-2)
	}
	if after.MaxLength != 3 {
		t.Errorf("MaxLength after delete = %d, want 3", after.MaxLength)
	}
}

func TestStatsStringIsReadable(t *testing.T) {
	st := Stats{Tuples: 2, Lists: 3, Entries: 4, MeanLength: 1.5, MaxLength: 2, HeapPages: 1}
	s := st.String()
	for _, want := range []string{"tuples=2", "lists=3", "entries=4", "mean-list=1.5", "max-list=2", "heap-pages=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats.String() = %q, missing %q", s, want)
		}
	}
}

func TestStatsNeedsNoIO(t *testing.T) {
	ix := New(pager.NewPool(pager.NewStore(), 0))
	for tid := uint32(0); tid < 8; tid++ {
		u := mustUDA(t, uda.Pair{Item: tid % 3, Prob: 0.7}, uda.Pair{Item: 100 + tid, Prob: 0.3})
		if err := ix.Insert(tid, u); err != nil {
			t.Fatalf("Insert(%d): %v", tid, err)
		}
	}
	ix.Pool().ResetStats()
	_ = ix.Stats()
	if io := ix.Pool().Stats().IOs(); io != 0 {
		t.Errorf("Stats() performed %d I/Os, want 0 (shape is tracked in memory)", io)
	}
}

package invidx

import (
	"math"
	"math/rand"
	"testing"

	"ucat/internal/pager"
	"ucat/internal/uda"
)

// TestQuickStrategiesAgreeWithNaive is a randomized end-to-end property:
// for random datasets, random queries and random thresholds, every search
// strategy returns exactly the naive answer.
func TestQuickStrategiesAgreeWithNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 15; trial++ {
		domain := 2 + r.Intn(40)
		maxPairs := 1 + r.Intn(8)
		n := 50 + r.Intn(500)
		ix := New(pager.NewPool(pager.NewStore(), 100))
		data := make(map[uint32]uda.UDA, n)
		for i := 0; i < n; i++ {
			u := uda.Random(r, domain, maxPairs)
			data[uint32(i)] = u
			if err := ix.Insert(uint32(i), u); err != nil {
				t.Fatalf("trial %d Insert: %v", trial, err)
			}
		}
		// Random deletions keep the index honest.
		for i := 0; i < n/10; i++ {
			tid := uint32(r.Intn(n))
			if _, ok := data[tid]; !ok {
				continue
			}
			if err := ix.Delete(tid); err != nil {
				t.Fatalf("trial %d Delete: %v", trial, err)
			}
			delete(data, tid)
		}

		for qi := 0; qi < 3; qi++ {
			q := uda.Random(r, domain, maxPairs)
			tau := r.Float64() * 0.3
			want := naivePETQ(data, q, tau)
			for _, s := range Strategies {
				got, err := ix.PETQ(q, tau, s)
				if err != nil {
					t.Fatalf("trial %d %v: %v", trial, s, err)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d %v tau=%g: %d matches, want %d",
						trial, s, tau, len(got), len(want))
				}
				for i := range want {
					if got[i].TID != want[i].TID || math.Abs(got[i].Prob-want[i].Prob) > 1e-9 {
						t.Fatalf("trial %d %v: match %d = %v, want %v", trial, s, i, got[i], want[i])
					}
				}
			}

			k := 1 + r.Intn(20)
			wantK := naivePETQ(data, q, 0)
			if len(wantK) > k {
				wantK = wantK[:k]
			}
			for _, s := range Strategies {
				got, err := ix.TopK(q, k, s)
				if err != nil {
					t.Fatalf("trial %d %v TopK: %v", trial, s, err)
				}
				if len(got) != len(wantK) {
					t.Fatalf("trial %d %v TopK(%d): %d results, want %d",
						trial, s, k, len(got), len(wantK))
				}
				for i := range wantK {
					if math.Abs(got[i].Prob-wantK[i].Prob) > 1e-9 {
						t.Fatalf("trial %d %v TopK: prob %g, want %g",
							trial, s, got[i].Prob, wantK[i].Prob)
					}
				}
			}
		}
	}
}

// TestQuickNoFalseDropsUnderTinyPool runs searches under a minimal buffer
// pool: eviction pressure must never change answers, only cost.
func TestQuickNoFalseDropsUnderTinyPool(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	ix := New(pager.NewPool(pager.NewStore(), 8))
	data := make(map[uint32]uda.UDA)
	for i := 0; i < 2000; i++ {
		u := uda.Random(r, 15, 4)
		data[uint32(i)] = u
		if err := ix.Insert(uint32(i), u); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for trial := 0; trial < 5; trial++ {
		q := uda.Random(r, 15, 3)
		want := naivePETQ(data, q, 0.05)
		for _, s := range Strategies {
			got, err := ix.PETQ(q, 0.05, s)
			if err != nil {
				t.Fatalf("%v under tiny pool: %v", s, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v under tiny pool: %d matches, want %d", s, len(got), len(want))
			}
		}
	}
	if ix.Pool().PinnedPages() != 0 {
		t.Errorf("pin leak: %d pages pinned after queries", ix.Pool().PinnedPages())
	}
}

package invidx

import (
	"ucat/internal/btree"
	"ucat/internal/pager"
	"ucat/internal/tuplestore"
)

// Snapshot is the index's persistent metadata: the inverted directory's list
// roots and the tuple heap's metadata. The page contents live in the
// pager.Store.
type Snapshot struct {
	Roots  map[uint32]uint32 // item → B-tree root page id
	Tuples tuplestore.Snapshot
}

// Snapshot captures the index's metadata for persistence.
func (ix *Index) Snapshot() Snapshot {
	snap := Snapshot{
		Roots:  make(map[uint32]uint32, len(ix.dir)),
		Tuples: ix.tuples.Snapshot(),
	}
	for item, tree := range ix.dir {
		snap.Roots[item] = uint32(tree.Root())
	}
	return snap
}

// Restore rebuilds an index over the given pool from a snapshot. Each list's
// key count is recomputed by scanning it once.
func Restore(pool *pager.Pool, snap Snapshot) (*Index, error) {
	ix := New(pool)
	tuples, err := tuplestore.Restore(pool, snap.Tuples)
	if err != nil {
		return nil, err
	}
	ix.tuples = tuples
	for item, root := range snap.Roots {
		tree, err := btree.Open(pool, pager.PageID(root))
		if err != nil {
			return nil, err
		}
		ix.dir[item] = tree
	}
	return ix, nil
}

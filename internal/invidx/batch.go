package invidx

import (
	"fmt"

	"ucat/internal/btree"
	"ucat/internal/query"
	"ucat/internal/uda"
)

// MultiPETQ answers many threshold queries in one shared pass: every
// inverted list any query needs is scanned exactly once, accumulating
// q_j · t_j into each interested query's score table simultaneously. For a
// batch of m queries over shared lists this costs the I/O of one
// brute-force query instead of m — the classic multi-query optimization for
// index nested-loop joins, where the outer relation produces thousands of
// probes against the same lists.
//
// taus holds one threshold per query (all must be non-negative). The result
// has one match slice per query, each in canonical descending-probability
// order with exact probabilities.
//
//ucatlint:hotpath
func (ix *Index) MultiPETQ(qs []uda.UDA, taus []float64) ([][]query.Match, error) {
	if len(qs) != len(taus) {
		return nil, fmt.Errorf("invidx: %d queries with %d thresholds", len(qs), len(taus))
	}
	for i, tau := range taus {
		if tau < 0 {
			return nil, fmt.Errorf("invidx: negative threshold %g for query %d", tau, i)
		}
	}

	// Invert the batch: item → (query index, query probability) pairs.
	type interest struct {
		qi int
		qp float64
	}
	byItem := make(map[uint32][]interest)
	for qi, q := range qs {
		for _, p := range q.Pairs() {
			byItem[p.Item] = append(byItem[p.Item], interest{qi: qi, qp: p.Prob})
		}
	}

	scores := make([]map[uint32]float64, len(qs))
	for i := range scores {
		//ucatlint:ignore hotalloc one accumulator map per query is the batch algorithm's working set; result size is unknown up front
		scores[i] = make(map[uint32]float64)
	}
	for item, interested := range byItem {
		tree, ok := ix.dir[item]
		if !ok {
			continue
		}
		//ucatlint:ignore hotalloc one callback per posting list (not per entry); the closure is what lets one scan serve many queries
		err := tree.Scan(btree.Key{}, func(k btree.Key) bool {
			prob, tid := unpackKey(k)
			for _, in := range interested {
				scores[in.qi][tid] += in.qp * prob
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}

	out := make([][]query.Match, len(qs))
	for qi := range qs {
		var res []query.Match
		for tid, sc := range scores[qi] {
			if sc > taus[qi] {
				res = append(res, query.Match{TID: tid, Prob: sc})
			}
		}
		query.SortMatches(res)
		out[qi] = res
	}
	return out, nil
}

package btree

import (
	"ucat/internal/obs"
	"ucat/internal/pager"
)

// Cursor streams keys ≥ start in ascending order, one at a time. Unlike
// Scan, a Cursor lets callers interleave several list scans — the
// highest-prob-first and NRA searches of the probabilistic inverted index
// advance many per-item cursors in merge order.
//
// A Cursor does not pin pages between Next calls; it re-fetches its current
// leaf on each call, which is a buffer-pool hit unless the page was evicted
// in between (in which case the re-read is honestly counted as an I/O).
// Cursors must not be used across tree mutations.
//
// The per-call fetch is kept for that honest I/O accounting, but the leaf's
// KEYS are parsed only once per leaf: into the tree's decode cache when one
// is attached, else into cursor-local scratch. Because cursors never span
// mutations, a decoded image stays valid for as long as the cursor sits on
// the leaf, even across eviction and re-fetch.
type Cursor struct {
	tree    *Tree
	view    pager.View
	pid     pager.PageID
	idx     int
	started bool
	start   Key
	done    bool
	rec     *obs.Recorder // nil unless the view is obs-instrumented

	leafPid  pager.PageID // which leaf leafKeys/leafLink describe (0 = none)
	leafKeys []Key
	leafLink pager.PageID
	scratch  decodedLeaf // backing for the cache-disabled path
}

// NewCursor returns a cursor positioned before the first key ≥ start,
// fetching pages through the tree's own pool.
func (t *Tree) NewCursor(start Key) *Cursor { return t.NewCursorVia(t.pool, start) }

// NewCursorVia returns a cursor whose page fetches are routed through the
// given view, so concurrent read-only scans can each use a private buffer
// pool over the shared store.
func (t *Tree) NewCursorVia(v pager.View, start Key) *Cursor {
	return &Cursor{tree: t, view: v, start: start, rec: obs.RecorderOf(v)}
}

// Next returns the next key in order. ok is false when the cursor is
// exhausted.
func (c *Cursor) Next() (k Key, ok bool, err error) {
	if c.done {
		return Key{}, false, nil
	}
	if !c.started {
		if err := c.seek(); err != nil {
			return Key{}, false, err
		}
		c.started = true
	}
	for c.pid != pager.InvalidPage {
		if err := c.loadLeaf(); err != nil {
			return Key{}, false, err
		}
		if c.idx < len(c.leafKeys) {
			k = c.leafKeys[c.idx]
			c.idx++
			return k, true, nil
		}
		next := c.leafLink
		c.pid = next
		c.idx = 0
		c.leafPid = pager.InvalidPage
		if next != pager.InvalidPage {
			c.rec.Add("btree.nodes", 1) // stepped to the next leaf
		}
	}
	c.done = true
	return Key{}, false, nil
}

// loadLeaf fetches the cursor's current leaf — on every call, preserving the
// honest re-fetch I/O accounting — and refreshes the decoded key image if
// the cursor moved to a new leaf since the last call.
func (c *Cursor) loadLeaf() error {
	pg, err := c.view.Fetch(c.pid)
	if err != nil {
		return err
	}
	if c.leafPid == c.pid {
		pg.Unpin(false)
		return nil
	}
	t := c.tree
	if t.cache != nil {
		ver := t.pool.Store().Version(c.pid)
		if cv, ok := t.cache.Get(c.pid, ver); ok {
			pg.Unpin(false)
			dl := cv.(*decodedLeaf)
			c.leafKeys, c.leafLink = dl.keys, dl.link
		} else {
			dl := &decodedLeaf{}
			decodeLeaf(pg.Data, dl)
			pg.Unpin(false)
			t.cache.Put(c.pid, ver, dl, dl.memSize())
			c.leafKeys, c.leafLink = dl.keys, dl.link
		}
	} else {
		decodeLeaf(pg.Data, &c.scratch)
		pg.Unpin(false)
		c.leafKeys, c.leafLink = c.scratch.keys, c.scratch.link
	}
	c.leafPid = c.pid
	t.maybePrefetch(c.view, c.leafLink)
	return nil
}

// seek descends to the leaf containing the start key.
func (c *Cursor) seek() error {
	pid := c.tree.root
	for {
		c.rec.Add("btree.nodes", 1)
		pg, err := c.view.Fetch(pid)
		if err != nil {
			return err
		}
		if nodeKind(pg.Data) == leafKind {
			c.pid = pid
			c.idx = leafSearch(pg.Data, c.start)
			pg.Unpin(false)
			return nil
		}
		next := innerChild(pg.Data, innerSearch(pg.Data, c.start))
		pg.Unpin(false)
		pid = next
	}
}

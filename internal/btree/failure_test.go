package btree

import (
	"errors"
	"testing"

	"ucat/internal/pager"
)

// TestInsertFailsCleanlyWhenPoolExhausted: splitting a leaf pins two pages
// at once, so under a one-frame pool inserts eventually fail. The failure
// must be the typed pool error, not a panic or corruption.
func TestInsertFailsCleanlyWhenPoolExhausted(t *testing.T) {
	pool := pager.NewPool(pager.NewStore(), 1)
	tr, err := New(pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var sawExhausted bool
	for v := 0; v < 2*MaxLeafKeys; v++ {
		_, err := tr.Insert(intKey(uint64(v)))
		if err != nil {
			if !errors.Is(err, pager.ErrPoolExhausted) {
				t.Fatalf("Insert error = %v, want ErrPoolExhausted", err)
			}
			sawExhausted = true
			break
		}
	}
	if !sawExhausted {
		t.Fatalf("tree split under a 1-frame pool without error")
	}
	// The pool must not be left with pinned pages after the failure.
	if got := pool.PinnedPages(); got != 0 {
		t.Errorf("pin leak after failed insert: %d", got)
	}
}

// TestOpenInvalidRoot: attaching to a bogus root must fail, not crash.
func TestOpenInvalidRoot(t *testing.T) {
	pool := pager.NewPool(pager.NewStore(), 4)
	if _, err := Open(pool, 999); !errors.Is(err, pager.ErrInvalidPage) {
		t.Errorf("Open(999) err = %v, want ErrInvalidPage", err)
	}
}

// TestCorruptNodeKindDetected: a page with an invalid kind byte surfaces as
// an error from CheckInvariants rather than nonsense results.
func TestCorruptNodeKindDetected(t *testing.T) {
	pool := pager.NewPool(pager.NewStore(), 4)
	tr, err := New(pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := tr.Insert(intKey(1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// Corrupt the root's kind byte directly in the store.
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if err := pool.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	buf := make([]byte, pager.PageSize)
	if err := pool.Store().ReadAt(tr.Root(), buf); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	buf[0] = 99
	if err := pool.Store().WriteAt(tr.Root(), buf); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := tr.CheckInvariants(); err == nil {
		t.Errorf("corrupt kind byte passed CheckInvariants")
	}
}

package btree

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"ucat/internal/pager"
)

func newTestTree(t *testing.T, frames int) *Tree {
	t.Helper()
	pool := pager.NewPool(pager.NewStore(), frames)
	tr, err := New(pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func intKey(v uint64) Key {
	var k Key
	binary.BigEndian.PutUint64(k[:8], v)
	return k
}

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, 10)
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	found, err := tr.Contains(intKey(1))
	if err != nil || found {
		t.Errorf("Contains on empty = (%v, %v)", found, err)
	}
	if _, ok, err := tr.Min(); err != nil || ok {
		t.Errorf("Min on empty = ok=%v err=%v", ok, err)
	}
	n := 0
	if err := tr.Scan(Key{}, func(Key) bool { n++; return true }); err != nil || n != 0 {
		t.Errorf("Scan on empty visited %d keys, err=%v", n, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestInsertContainsScan(t *testing.T) {
	tr := newTestTree(t, 50)
	const n = 10000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, v := range perm {
		ok, err := tr.Insert(intKey(uint64(v)))
		if err != nil {
			t.Fatalf("Insert(%d): %v", v, err)
		}
		if !ok {
			t.Fatalf("Insert(%d) reported duplicate", v)
		}
	}
	if tr.Len() != n {
		t.Errorf("Len = %d, want %d", tr.Len(), n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after inserts: %v", err)
	}

	// Every key present; absent keys absent.
	for _, v := range []uint64{0, 1, n / 2, n - 1} {
		found, err := tr.Contains(intKey(v))
		if err != nil || !found {
			t.Errorf("Contains(%d) = (%v, %v), want present", v, found, err)
		}
	}
	found, err := tr.Contains(intKey(n))
	if err != nil || found {
		t.Errorf("Contains(%d) = (%v, %v), want absent", n, found, err)
	}

	// Full scan is sorted and complete.
	var got []uint64
	if err := tr.Scan(Key{}, func(k Key) bool {
		got = append(got, binary.BigEndian.Uint64(k[:8]))
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != n {
		t.Fatalf("Scan visited %d keys, want %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("Scan output not sorted")
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := newTestTree(t, 10)
	if ok, err := tr.Insert(intKey(5)); err != nil || !ok {
		t.Fatalf("first Insert = (%v, %v)", ok, err)
	}
	if ok, err := tr.Insert(intKey(5)); err != nil || ok {
		t.Errorf("duplicate Insert = (%v, %v), want (false, nil)", ok, err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestScanFromStart(t *testing.T) {
	tr := newTestTree(t, 50)
	for v := 0; v < 1000; v += 2 { // even keys only
		if _, err := tr.Insert(intKey(uint64(v))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Start at an absent odd key: first visited must be the next even one.
	var first uint64
	found := false
	if err := tr.Scan(intKey(501), func(k Key) bool {
		first = binary.BigEndian.Uint64(k[:8])
		found = true
		return false
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if !found || first != 502 {
		t.Errorf("Scan from 501 first = (%d, %v), want 502", first, found)
	}
	// Start beyond the last key: nothing visited.
	n := 0
	if err := tr.Scan(intKey(9999), func(Key) bool { n++; return true }); err != nil || n != 0 {
		t.Errorf("Scan past end visited %d, err=%v", n, err)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newTestTree(t, 50)
	for v := 0; v < 5000; v++ {
		if _, err := tr.Insert(intKey(uint64(v))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	n := 0
	if err := tr.Scan(Key{}, func(Key) bool { n++; return n < 10 }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 10 {
		t.Errorf("early-stopped Scan visited %d, want 10", n)
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := newTestTree(t, 50)
	for v := 0; v < 100; v++ {
		if _, err := tr.Insert(intKey(uint64(v))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	ok, err := tr.Delete(intKey(50))
	if err != nil || !ok {
		t.Fatalf("Delete = (%v, %v)", ok, err)
	}
	if tr.Len() != 99 {
		t.Errorf("Len = %d, want 99", tr.Len())
	}
	found, err := tr.Contains(intKey(50))
	if err != nil || found {
		t.Errorf("deleted key still present")
	}
	// Deleting again is a no-op.
	ok, err = tr.Delete(intKey(50))
	if err != nil || ok {
		t.Errorf("second Delete = (%v, %v), want (false, nil)", ok, err)
	}
}

func TestDeleteAllAndReinsert(t *testing.T) {
	tr := newTestTree(t, 50)
	const n = 3000
	for v := 0; v < n; v++ {
		if _, err := tr.Insert(intKey(uint64(v))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	pagesBefore := tr.Pool().Store().NumPages()
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, v := range perm {
		ok, err := tr.Delete(intKey(uint64(v)))
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v, %v)", v, ok, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len after deleting all = %d, want 0", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after full delete: %v", err)
	}
	pagesAfter := tr.Pool().Store().NumPages()
	if pagesAfter >= pagesBefore {
		t.Errorf("no pages reclaimed: %d before, %d after", pagesBefore, pagesAfter)
	}

	// The tree remains usable.
	for v := 0; v < 500; v++ {
		if _, err := tr.Insert(intKey(uint64(v * 3))); err != nil {
			t.Fatalf("reinsert: %v", err)
		}
	}
	if tr.Len() != 500 {
		t.Errorf("Len after reinsert = %d, want 500", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after reinsert: %v", err)
	}
}

func TestRandomizedInsertDeleteAgainstMap(t *testing.T) {
	tr := newTestTree(t, 64)
	r := rand.New(rand.NewSource(11))
	model := map[uint64]bool{}
	for op := 0; op < 20000; op++ {
		v := uint64(r.Intn(2000))
		if r.Intn(2) == 0 {
			ok, err := tr.Insert(intKey(v))
			if err != nil {
				t.Fatalf("Insert: %v", err)
			}
			if ok == model[v] {
				t.Fatalf("Insert(%d) ok=%v but model present=%v", v, ok, model[v])
			}
			model[v] = true
		} else {
			ok, err := tr.Delete(intKey(v))
			if err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if ok != model[v] {
				t.Fatalf("Delete(%d) ok=%v but model present=%v", v, ok, model[v])
			}
			delete(model, v)
		}
	}
	if tr.Len() != len(model) {
		t.Errorf("Len = %d, model has %d", tr.Len(), len(model))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	var got []uint64
	if err := tr.Scan(Key{}, func(k Key) bool {
		got = append(got, binary.BigEndian.Uint64(k[:8]))
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != len(model) {
		t.Fatalf("Scan visited %d, model has %d", len(got), len(model))
	}
	for _, v := range got {
		if !model[v] {
			t.Errorf("Scan produced key %d not in model", v)
		}
	}
}

func TestMin(t *testing.T) {
	tr := newTestTree(t, 20)
	for _, v := range []uint64{500, 3, 77} {
		if _, err := tr.Insert(intKey(v)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	k, ok, err := tr.Min()
	if err != nil || !ok || binary.BigEndian.Uint64(k[:8]) != 3 {
		t.Errorf("Min = (%v, %v, %v), want key 3", k, ok, err)
	}
}

func TestOpenRecomputesSize(t *testing.T) {
	pool := pager.NewPool(pager.NewStore(), 20)
	tr, err := New(pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for v := 0; v < 1234; v++ {
		if _, err := tr.Insert(intKey(uint64(v))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	reopened, err := Open(pool, tr.Root())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if reopened.Len() != 1234 {
		t.Errorf("reopened Len = %d, want 1234", reopened.Len())
	}
}

func TestTreeSurvivesTinyPool(t *testing.T) {
	// Pin footprint must stay within a very small pool even while splitting.
	tr := newTestTree(t, 4)
	for v := 0; v < 20000; v++ {
		if _, err := tr.Insert(intKey(uint64(v))); err != nil {
			t.Fatalf("Insert(%d) under tiny pool: %v", v, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if got := tr.Pool().PinnedPages(); got != 0 {
		t.Errorf("pin leak: %d pages still pinned", got)
	}
}

func TestNodeCapacityConstants(t *testing.T) {
	if MaxLeafKeys < 100 || MaxInnerKeys < 100 {
		t.Errorf("suspicious capacities: leaf=%d inner=%d", MaxLeafKeys, MaxInnerKeys)
	}
	if headerSize+MaxLeafKeys*leafEntry > pager.PageSize {
		t.Errorf("leaf layout overflows page")
	}
	if headerSize+MaxInnerKeys*innerEntry > pager.PageSize {
		t.Errorf("inner layout overflows page")
	}
}

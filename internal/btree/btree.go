// Package btree implements a disk-resident B+-tree over the pager substrate.
//
// The paper organizes each inverted list as a B-tree ("In practice, these
// lists (both inner or outer) are organized as dynamic structures such as
// B-trees, allowing efficient searches, insertions, and deletions", §3.1).
// This package provides that structure: a B+-tree of fixed-size 16-byte keys
// ordered lexicographically, with leaf sibling links for range scans. The
// probabilistic inverted index packs (descending probability, tuple id) into
// keys so an in-order scan yields the list in the paper's order.
//
// Keys are unique; the tree stores no separate values (callers encode the
// payload into the key). Deletion is lazy: underfull nodes are tolerated and
// pages are reclaimed only when they become empty, which keeps the structure
// simple while preserving all ordering invariants.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"ucat/internal/dcache"
	"ucat/internal/obs"
	"ucat/internal/pager"
)

// KeySize is the fixed key width in bytes.
const KeySize = 16

// Key is a fixed-size key ordered by bytes.Compare.
type Key [KeySize]byte

// Compare returns -1, 0 or 1 comparing k with other lexicographically.
func (k Key) Compare(other Key) int { return bytes.Compare(k[:], other[:]) }

// Page layout (pager.PageSize bytes):
//
//	offset 0: kind      byte   (leafKind or innerKind)
//	offset 1: pad       byte
//	offset 2: count     uint16 number of keys
//	offset 4: link      uint32 leaf: right sibling page id (0 = none)
//	                           inner: leftmost child page id
//	offset 8: entries
//
// Leaf entries are KeySize bytes each, sorted ascending.
// Inner entries are KeySize+4 bytes: separator key followed by the child page
// id whose subtree contains keys ≥ that separator (and < the next separator).
const (
	leafKind  = 1
	innerKind = 2

	headerSize = 8
	leafEntry  = KeySize
	innerEntry = KeySize + 4

	// MaxLeafKeys and MaxInnerKeys are the node capacities implied by the
	// page size.
	MaxLeafKeys  = (pager.PageSize - headerSize) / leafEntry
	MaxInnerKeys = (pager.PageSize - headerSize) / innerEntry
)

// Tree is a B+-tree handle. It is not safe for concurrent use by writers;
// concurrent read-only scans go through ScanVia/NewCursorVia with private
// views.
type Tree struct {
	pool *pager.Pool
	root pager.PageID
	size int // number of keys; maintained in memory
	// cache, when non-nil, holds decoded leaf images keyed by (page, store
	// version), consulted AFTER each fetch so scan I/O accounting is
	// unchanged. Write paths work on raw page bytes through Unpin(true),
	// which bumps the version — no explicit invalidation exists or is
	// needed.
	cache *dcache.Cache
	// readahead, when true, issues a Prefetch hint for the right sibling as
	// each leaf is decoded during scans/cursor walks. Off by default: a
	// prefetch turns the next leaf's demand fetch into a pool hit, which
	// (intentionally) changes the paper's I/O figures.
	readahead bool
}

// SetCache attaches a decoded-leaf cache (typically shared relation-wide).
// Nil disables cached decoding.
func (t *Tree) SetCache(c *dcache.Cache) { t.cache = c }

// SetReadahead enables or disables the sibling-leaf prefetch hint on scans.
func (t *Tree) SetReadahead(on bool) { t.readahead = on }

// Prefetcher is the optional view capability leaf readahead uses; *pager.Pool
// implements it. Views without it simply never prefetch.
type Prefetcher interface {
	Prefetch(pid pager.PageID) error
}

// decodedLeaf is the cache value for one leaf page: its keys in order plus
// the right-sibling link. Shared across queries; immutable once published.
type decodedLeaf struct {
	keys []Key
	link pager.PageID
}

func (dl *decodedLeaf) memSize() int64 { return 64 + int64(len(dl.keys))*KeySize }

// decodeLeaf parses a leaf page image into dst, reusing dst.keys capacity.
func decodeLeaf(data []byte, dst *decodedLeaf) {
	n := nodeCount(data)
	if cap(dst.keys) < n {
		dst.keys = make([]Key, n)
	} else {
		dst.keys = dst.keys[:n]
	}
	for i := range dst.keys {
		dst.keys[i] = leafKey(data, i)
	}
	dst.link = nodeLink(data)
}

// searchKeys returns the position of the first key ≥ k in a decoded leaf.
func searchKeys(keys []Key, k Key) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i].Compare(k) >= 0 })
}

// cachedLeaf fetches the leaf through v (the fetch is counted exactly as an
// uncached access) and returns its decoded image from the cache, decoding
// and inserting on a miss. Only call with t.cache != nil.
func (t *Tree) cachedLeaf(v pager.View, pid pager.PageID) (*decodedLeaf, error) {
	pg, err := v.Fetch(pid)
	if err != nil {
		return nil, err
	}
	ver := t.pool.Store().Version(pid)
	if cv, ok := t.cache.Get(pid, ver); ok {
		pg.Unpin(false)
		return cv.(*decodedLeaf), nil
	}
	dl := &decodedLeaf{}
	decodeLeaf(pg.Data, dl)
	pg.Unpin(false)
	t.cache.Put(pid, ver, dl, dl.memSize())
	return dl, nil
}

// maybePrefetch issues the opt-in readahead hint for a leaf's right sibling.
// It is best-effort: a view without the Prefetch capability, or a pool too
// pinned to take the page, simply skips the hint.
func (t *Tree) maybePrefetch(v pager.View, link pager.PageID) {
	if !t.readahead || link == pager.InvalidPage {
		return
	}
	if pf, ok := v.(Prefetcher); ok {
		_ = pf.Prefetch(link) // a failed hint must never fail the scan
	}
}

// New creates an empty tree whose root is a fresh leaf page.
func New(pool *pager.Pool) (*Tree, error) {
	pg, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	initNode(pg.Data, leafKind)
	root := pg.ID
	pg.Unpin(true)
	return &Tree{pool: pool, root: root}, nil
}

// Open attaches to an existing tree rooted at root. The key count is
// recomputed by a full scan, costing I/O proportional to the leaf count.
func Open(pool *pager.Pool, root pager.PageID) (*Tree, error) {
	t := &Tree{pool: pool, root: root}
	n := 0
	if err := t.Scan(Key{}, func(Key) bool { n++; return true }); err != nil {
		return nil, err
	}
	t.size = n
	return t, nil
}

// Root returns the current root page id (it changes when the root splits).
func (t *Tree) Root() pager.PageID { return t.root }

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// Pool returns the buffer pool the tree performs I/O through.
func (t *Tree) Pool() *pager.Pool { return t.pool }

func initNode(data []byte, kind byte) {
	clear(data[:headerSize])
	data[0] = kind
}

func nodeKind(data []byte) byte   { return data[0] }
func nodeCount(data []byte) int   { return int(binary.LittleEndian.Uint16(data[2:])) }
func setCount(data []byte, n int) { binary.LittleEndian.PutUint16(data[2:], uint16(n)) }
func nodeLink(data []byte) pager.PageID {
	return pager.PageID(binary.LittleEndian.Uint32(data[4:]))
}
func setLink(data []byte, pid pager.PageID) {
	binary.LittleEndian.PutUint32(data[4:], uint32(pid))
}

func leafKey(data []byte, i int) Key {
	var k Key
	copy(k[:], data[headerSize+i*leafEntry:])
	return k
}

func setLeafKey(data []byte, i int, k Key) {
	copy(data[headerSize+i*leafEntry:], k[:])
}

func innerKey(data []byte, i int) Key {
	var k Key
	copy(k[:], data[headerSize+i*innerEntry:])
	return k
}

func innerChild(data []byte, i int) pager.PageID {
	// i == -1 addresses the leftmost child stored in the header link.
	if i < 0 {
		return nodeLink(data)
	}
	off := headerSize + i*innerEntry + KeySize
	return pager.PageID(binary.LittleEndian.Uint32(data[off:]))
}

func setInnerEntry(data []byte, i int, k Key, child pager.PageID) {
	off := headerSize + i*innerEntry
	copy(data[off:], k[:])
	binary.LittleEndian.PutUint32(data[off+KeySize:], uint32(child))
}

// leafSearch returns the position of the first key ≥ k.
func leafSearch(data []byte, k Key) int {
	lo, hi := 0, nodeCount(data)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(data, mid).Compare(k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// innerSearch returns the index of the child to descend into for key k:
// the child at the largest separator ≤ k, or -1 for the leftmost child.
func innerSearch(data []byte, k Key) int {
	lo, hi := 0, nodeCount(data)
	for lo < hi {
		mid := (lo + hi) / 2
		if innerKey(data, mid).Compare(k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Contains reports whether k is present.
func (t *Tree) Contains(k Key) (bool, error) { return t.ContainsVia(t.pool, k) }

// ContainsVia is Contains with every page fetch routed through the given
// view, so concurrent read-only lookups can each use a private buffer pool
// over the shared store.
//
//ucatlint:hotpath
func (t *Tree) ContainsVia(v pager.View, k Key) (bool, error) {
	pid := t.root
	for {
		pg, err := v.Fetch(pid)
		if err != nil {
			return false, err
		}
		if nodeKind(pg.Data) == leafKind {
			i := leafSearch(pg.Data, k)
			found := i < nodeCount(pg.Data) && leafKey(pg.Data, i) == k
			pg.Unpin(false)
			return found, nil
		}
		pid = innerChild(pg.Data, innerSearch(pg.Data, k))
		pg.Unpin(false)
	}
}

// splitResult carries a completed child split up to the parent.
type splitResult struct {
	split    bool
	sep      Key          // first key of the new right node
	newChild pager.PageID // the new right node
}

// Insert adds k to the tree. It returns false if the key was already
// present (the tree is unchanged).
func (t *Tree) Insert(k Key) (bool, error) {
	inserted, res, err := t.insert(t.root, k)
	if err != nil || !inserted {
		return inserted, err
	}
	if res.split {
		// Grow a new root.
		pg, err := t.pool.NewPage()
		if err != nil {
			return false, err
		}
		initNode(pg.Data, innerKind)
		setLink(pg.Data, t.root) // leftmost child = old root
		setInnerEntry(pg.Data, 0, res.sep, res.newChild)
		setCount(pg.Data, 1)
		t.root = pg.ID
		pg.Unpin(true)
	}
	t.size++
	return true, nil
}

func (t *Tree) insert(pid pager.PageID, k Key) (bool, splitResult, error) {
	pg, err := t.pool.Fetch(pid)
	if err != nil {
		return false, splitResult{}, err
	}
	data := pg.Data

	if nodeKind(data) == leafKind {
		n := nodeCount(data)
		i := leafSearch(data, k)
		if i < n && leafKey(data, i) == k {
			pg.Unpin(false)
			return false, splitResult{}, nil // duplicate
		}
		if n < MaxLeafKeys {
			insertLeafAt(data, i, k)
			pg.Unpin(true)
			return true, splitResult{}, nil
		}
		// Split the leaf, then insert into the proper half.
		res, err := t.splitLeaf(pg, k)
		if err != nil {
			return false, splitResult{}, err
		}
		return true, res, nil
	}

	// Inner node: descend.
	ci := innerSearch(data, k)
	child := innerChild(data, ci)
	// Unpin before recursing to keep the pin footprint at one page per
	// level only during the local work; we re-fetch after.
	pg.Unpin(false)

	inserted, childRes, err := t.insert(child, k)
	if err != nil || !inserted || !childRes.split {
		return inserted, splitResult{}, err
	}

	// The child split: install (sep, newChild) here.
	pg, err = t.pool.Fetch(pid)
	if err != nil {
		return false, splitResult{}, err
	}
	data = pg.Data
	n := nodeCount(data)
	if n < MaxInnerKeys {
		insertInnerAt(data, childRes.sep, childRes.newChild)
		pg.Unpin(true)
		return true, splitResult{}, nil
	}
	res, err := t.splitInner(pg, childRes.sep, childRes.newChild)
	if err != nil {
		return false, splitResult{}, err
	}
	return true, res, nil
}

// insertLeafAt shifts entries right and writes k at position i.
func insertLeafAt(data []byte, i int, k Key) {
	n := nodeCount(data)
	base := headerSize
	copy(data[base+(i+1)*leafEntry:base+(n+1)*leafEntry], data[base+i*leafEntry:base+n*leafEntry])
	setLeafKey(data, i, k)
	setCount(data, n+1)
}

// insertInnerAt inserts a (separator, child) entry keeping separator order.
func insertInnerAt(data []byte, sep Key, child pager.PageID) {
	n := nodeCount(data)
	i := innerSearch(data, sep) + 1
	base := headerSize
	copy(data[base+(i+1)*innerEntry:base+(n+1)*innerEntry], data[base+i*innerEntry:base+n*innerEntry])
	setInnerEntry(data, i, sep, child)
	setCount(data, n+1)
}

// splitLeaf splits a full, pinned leaf and inserts k into the correct half.
// The caller's page is unpinned on return.
func (t *Tree) splitLeaf(pg *pager.Page, k Key) (splitResult, error) {
	right, err := t.pool.NewPage()
	if err != nil {
		pg.Unpin(false)
		return splitResult{}, err
	}
	initNode(right.Data, leafKind)

	data := pg.Data
	n := nodeCount(data)
	mid := n / 2
	// Move upper half to the right node.
	copy(right.Data[headerSize:], data[headerSize+mid*leafEntry:headerSize+n*leafEntry])
	setCount(right.Data, n-mid)
	setCount(data, mid)
	// Chain sibling links: left → right → old successor.
	setLink(right.Data, nodeLink(data))
	setLink(data, right.ID)

	sep := leafKey(right.Data, 0)
	if k.Compare(sep) < 0 {
		insertLeafAt(data, leafSearch(data, k), k)
	} else {
		insertLeafAt(right.Data, leafSearch(right.Data, k), k)
	}
	res := splitResult{split: true, sep: sep, newChild: right.ID}
	right.Unpin(true)
	pg.Unpin(true)
	return res, nil
}

// splitInner splits a full, pinned inner node and installs (sep, child) into
// the correct half. The caller's page is unpinned on return.
func (t *Tree) splitInner(pg *pager.Page, sep Key, child pager.PageID) (splitResult, error) {
	right, err := t.pool.NewPage()
	if err != nil {
		pg.Unpin(false)
		return splitResult{}, err
	}
	initNode(right.Data, innerKind)

	data := pg.Data
	n := nodeCount(data)
	mid := n / 2
	// The separator at mid is promoted: its child becomes the right node's
	// leftmost child, and entries after mid move right.
	promoted := innerKey(data, mid)
	setLink(right.Data, innerChild(data, mid))
	copy(right.Data[headerSize:], data[headerSize+(mid+1)*innerEntry:headerSize+n*innerEntry])
	setCount(right.Data, n-mid-1)
	setCount(data, mid)

	if sep.Compare(promoted) < 0 {
		insertInnerAt(data, sep, child)
	} else {
		insertInnerAt(right.Data, sep, child)
	}
	res := splitResult{split: true, sep: promoted, newChild: right.ID}
	right.Unpin(true)
	pg.Unpin(true)
	return res, nil
}

// Delete removes k. It returns false if the key was not present. Empty
// leaves are unlinked from their parent and freed; an inner root with no
// separators collapses into its single child.
func (t *Tree) Delete(k Key) (bool, error) {
	deleted, emptied, err := t.delete(t.root, k)
	if err != nil || !deleted {
		return deleted, err
	}
	t.size--
	if emptied {
		// The root leaf is empty — legal state, nothing to collapse.
		return true, nil
	}
	// Collapse trivial inner roots.
	for {
		pg, err := t.pool.Fetch(t.root)
		if err != nil {
			return true, err
		}
		if nodeKind(pg.Data) != innerKind || nodeCount(pg.Data) > 0 {
			pg.Unpin(false)
			return true, nil
		}
		only := nodeLink(pg.Data)
		old := t.root
		pg.Unpin(false)
		if err := t.pool.FreePage(old); err != nil {
			return true, err
		}
		t.root = only
	}
}

// delete removes k under pid. emptied reports that pid ended up with zero
// keys (for a leaf) so the parent should unlink it.
func (t *Tree) delete(pid pager.PageID, k Key) (deleted, emptied bool, err error) {
	pg, err := t.pool.Fetch(pid)
	if err != nil {
		return false, false, err
	}
	data := pg.Data

	if nodeKind(data) == leafKind {
		n := nodeCount(data)
		i := leafSearch(data, k)
		if i >= n || leafKey(data, i) != k {
			pg.Unpin(false)
			return false, false, nil
		}
		base := headerSize
		copy(data[base+i*leafEntry:base+(n-1)*leafEntry], data[base+(i+1)*leafEntry:base+n*leafEntry])
		setCount(data, n-1)
		pg.Unpin(true)
		return true, n-1 == 0, nil
	}

	ci := innerSearch(data, k)
	child := innerChild(data, ci)
	pg.Unpin(false)

	deleted, childEmptied, err := t.delete(child, k)
	if err != nil || !deleted || !childEmptied {
		return deleted, false, err
	}

	// Unlink the emptied child. Note the leftmost child (ci == -1) is kept
	// even when empty: it anchors the key range below the first separator.
	if ci < 0 {
		return true, false, nil
	}
	pg, err = t.pool.Fetch(pid)
	if err != nil {
		return true, false, err
	}
	data = pg.Data
	// The emptied leaf is mid-chain in the sibling links; splice it out by
	// pointing its left neighbour past it.
	if err := t.spliceLeaf(data, ci, child); err != nil {
		pg.Unpin(true)
		return true, false, err
	}
	n := nodeCount(data)
	base := headerSize
	copy(data[base+ci*innerEntry:base+(n-1)*innerEntry], data[base+(ci+1)*innerEntry:base+n*innerEntry])
	setCount(data, n-1)
	nowEmpty := n-1 == 0
	pg.Unpin(true)
	if err := t.pool.FreePage(child); err != nil {
		return true, false, err
	}
	// An inner node with zero separators still has its leftmost child, so it
	// is never reported emptied; root collapse handles the top level.
	_ = nowEmpty
	return true, false, nil
}

// spliceLeaf repairs the leaf sibling chain around the child at separator
// index ci which is about to be removed. The left neighbour is the child at
// ci-1 (or the leftmost child); only leaves carry sibling links.
func (t *Tree) spliceLeaf(parent []byte, ci int, removed pager.PageID) error {
	leftPid := innerChild(parent, ci-1)
	left, err := t.pool.Fetch(leftPid)
	if err != nil {
		return err
	}
	if nodeKind(left.Data) != leafKind {
		// Children are inner nodes; no sibling chain at this level.
		left.Unpin(false)
		return nil
	}
	rm, err := t.pool.Fetch(removed)
	if err != nil {
		left.Unpin(false)
		return err
	}
	setLink(left.Data, nodeLink(rm.Data))
	rm.Unpin(false)
	left.Unpin(true)
	return nil
}

// Scan visits keys ≥ start in ascending order, calling fn for each; fn
// returns false to stop early.
func (t *Tree) Scan(start Key, fn func(Key) bool) error {
	return t.ScanVia(t.pool, start, fn)
}

// ScanVia is Scan with every page fetch routed through the given view, so
// concurrent read-only scans can each use a private buffer pool over the
// shared store.
//
//ucatlint:hotpath
func (t *Tree) ScanVia(v pager.View, start Key, fn func(Key) bool) error {
	rec := obs.RecorderOf(v)
	// Descend to the leaf containing start.
	pid := t.root
	for {
		rec.Add("btree.nodes", 1)
		pg, err := v.Fetch(pid)
		if err != nil {
			return err
		}
		if nodeKind(pg.Data) == leafKind {
			pg.Unpin(false)
			break
		}
		next := innerChild(pg.Data, innerSearch(pg.Data, start))
		pg.Unpin(false)
		pid = next
	}
	// Walk the sibling chain. The first leaf was already counted by the
	// descent; each later iteration is one more node visit. Leaves are
	// decoded once each — through the shared cache when attached, otherwise
	// into a scan-local scratch image reused leaf to leaf.
	var scratch decodedLeaf
	first := true
	for pid != pager.InvalidPage {
		if !first {
			rec.Add("btree.nodes", 1)
		}
		first = false
		var keys []Key
		var link pager.PageID
		if t.cache != nil {
			dl, err := t.cachedLeaf(v, pid)
			if err != nil {
				return err
			}
			keys, link = dl.keys, dl.link
		} else {
			pg, err := v.Fetch(pid)
			if err != nil {
				return err
			}
			decodeLeaf(pg.Data, &scratch)
			pg.Unpin(false)
			keys, link = scratch.keys, scratch.link
		}
		t.maybePrefetch(v, link)
		for i := searchKeys(keys, start); i < len(keys); i++ {
			if !fn(keys[i]) {
				return nil
			}
		}
		pid = link
	}
	return nil
}

// Drop frees every page of the tree. The tree must not be used afterwards.
func (t *Tree) Drop() error {
	if err := t.drop(t.root); err != nil {
		return err
	}
	t.root = pager.InvalidPage
	t.size = 0
	return nil
}

func (t *Tree) drop(pid pager.PageID) error {
	pg, err := t.pool.Fetch(pid)
	if err != nil {
		return err
	}
	var children []pager.PageID
	if nodeKind(pg.Data) == innerKind {
		for i := -1; i < nodeCount(pg.Data); i++ {
			children = append(children, innerChild(pg.Data, i))
		}
	}
	pg.Unpin(false)
	for _, c := range children {
		if err := t.drop(c); err != nil {
			return err
		}
	}
	return t.pool.FreePage(pid)
}

// Min returns the smallest key, or ok=false for an empty tree.
func (t *Tree) Min() (k Key, ok bool, err error) {
	err = t.Scan(Key{}, func(found Key) bool {
		k, ok = found, true
		return false
	})
	return k, ok, err
}

// CheckInvariants walks the whole tree verifying structural invariants:
// key ordering within nodes, separator bounds across levels, and kind
// consistency. Intended for tests.
func (t *Tree) CheckInvariants() error {
	var minK, maxK *Key
	_, err := t.check(t.root, minK, maxK)
	return err
}

func (t *Tree) check(pid pager.PageID, lo, hi *Key) (depth int, err error) {
	pg, err := t.pool.Fetch(pid)
	if err != nil {
		return 0, err
	}
	defer pg.Unpin(false)
	data := pg.Data
	n := nodeCount(data)
	inRange := func(k Key) error {
		if lo != nil && k.Compare(*lo) < 0 {
			return fmt.Errorf("btree: page %d key %x below lower bound %x", pid, k, *lo)
		}
		if hi != nil && k.Compare(*hi) >= 0 {
			return fmt.Errorf("btree: page %d key %x at/above upper bound %x", pid, k, *hi)
		}
		return nil
	}
	switch nodeKind(data) {
	case leafKind:
		for i := 0; i < n; i++ {
			k := leafKey(data, i)
			if err := inRange(k); err != nil {
				return 0, err
			}
			if i > 0 && leafKey(data, i-1).Compare(k) >= 0 {
				return 0, fmt.Errorf("btree: page %d leaf keys out of order at %d", pid, i)
			}
		}
		return 1, nil
	case innerKind:
		var depths []int
		for i := 0; i < n; i++ {
			k := innerKey(data, i)
			if err := inRange(k); err != nil {
				return 0, err
			}
			if i > 0 && innerKey(data, i-1).Compare(k) >= 0 {
				return 0, fmt.Errorf("btree: page %d separators out of order at %d", pid, i)
			}
		}
		for i := -1; i < n; i++ {
			clo, chi := lo, hi
			if i >= 0 {
				k := innerKey(data, i)
				clo = &k
			}
			if i+1 < n {
				k := innerKey(data, i+1)
				chi = &k
			}
			d, err := t.check(innerChild(data, i), clo, chi)
			if err != nil {
				return 0, err
			}
			depths = append(depths, d)
		}
		for _, d := range depths[1:] {
			if d != depths[0] {
				return 0, fmt.Errorf("btree: page %d has children at unequal depths", pid)
			}
		}
		return depths[0] + 1, nil
	default:
		return 0, fmt.Errorf("btree: page %d has unknown kind %d", pid, nodeKind(data))
	}
}

package btree

import (
	"fmt"

	"ucat/internal/pager"
)

// Bulk loading fills nodes to 90%: the headroom keeps the first post-load
// inserts from immediately splitting every node.

// BulkLoad builds a tree from keys that are already sorted and unique,
// packing leaves to ~90% and constructing the inner levels bottom-up. It is
// much faster than repeated Insert (no top-down descents, no splits) and
// produces a better-packed tree.
func BulkLoad(pool *pager.Pool, keys []Key) (*Tree, error) {
	for i := 1; i < len(keys); i++ {
		if keys[i-1].Compare(keys[i]) >= 0 {
			return nil, fmt.Errorf("btree: bulk load input not sorted/unique at index %d", i)
		}
	}
	if len(keys) == 0 {
		return New(pool)
	}

	perLeaf := MaxLeafKeys * 9 / 10
	if perLeaf < 1 {
		perLeaf = 1
	}

	// Level 0: packed leaves with sibling links.
	type childRef struct {
		first Key
		pid   pager.PageID
	}
	var level []childRef
	var prevLeaf pager.PageID
	for off := 0; off < len(keys); off += perLeaf {
		end := off + perLeaf
		if end > len(keys) {
			end = len(keys)
		}
		pg, err := pool.NewPage()
		if err != nil {
			return nil, err
		}
		initNode(pg.Data, leafKind)
		for i, k := range keys[off:end] {
			setLeafKey(pg.Data, i, k)
		}
		setCount(pg.Data, end-off)
		pid := pg.ID
		pg.Unpin(true)

		if prevLeaf != pager.InvalidPage {
			prev, err := pool.Fetch(prevLeaf)
			if err != nil {
				return nil, err
			}
			setLink(prev.Data, pid)
			prev.Unpin(true)
		}
		prevLeaf = pid
		level = append(level, childRef{first: keys[off], pid: pid})
	}

	// Build inner levels until one node remains.
	perInner := MaxInnerKeys * 9 / 10
	if perInner < 3 {
		perInner = 3
	}
	for len(level) > 1 {
		var next []childRef
		for off := 0; off < len(level); {
			size := perInner
			rem := len(level) - off
			switch {
			case rem <= perInner:
				size = rem
			case rem == perInner+1:
				// Avoid stranding a lone child in the final group: shrink
				// this one so two remain.
				size = perInner - 1
			}
			group := level[off : off+size]
			off += size

			pg, err := pool.NewPage()
			if err != nil {
				return nil, err
			}
			initNode(pg.Data, innerKind)
			setLink(pg.Data, group[0].pid) // leftmost child
			for i, c := range group[1:] {
				setInnerEntry(pg.Data, i, c.first, c.pid)
			}
			setCount(pg.Data, len(group)-1)
			pid := pg.ID
			pg.Unpin(true)
			next = append(next, childRef{first: group[0].first, pid: pid})
		}
		level = next
	}

	t := &Tree{pool: pool, root: level[0].pid, size: len(keys)}
	return t, nil
}

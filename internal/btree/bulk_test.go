package btree

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"ucat/internal/pager"
)

func sortedKeys(n int) []Key {
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = intKey(uint64(i * 3))
	}
	return ks
}

func TestBulkLoadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, MaxLeafKeys, MaxLeafKeys + 1, 5000, 100000} {
		pool := pager.NewPool(pager.NewStore(), 64)
		tr, err := BulkLoad(pool, sortedKeys(n))
		if err != nil {
			t.Fatalf("BulkLoad(%d): %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: invariants: %v", n, err)
		}
		// Full ordered scan.
		i := 0
		if err := tr.Scan(Key{}, func(k Key) bool {
			if got := binary.BigEndian.Uint64(k[:8]); got != uint64(i*3) {
				t.Fatalf("n=%d: scan[%d] = %d, want %d", n, i, got, i*3)
			}
			i++
			return true
		}); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if i != n {
			t.Fatalf("n=%d: scanned %d keys", n, i)
		}
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	pool := pager.NewPool(pager.NewStore(), 16)
	if _, err := BulkLoad(pool, []Key{intKey(2), intKey(1)}); err == nil {
		t.Errorf("unsorted input accepted")
	}
	if _, err := BulkLoad(pool, []Key{intKey(1), intKey(1)}); err == nil {
		t.Errorf("duplicate input accepted")
	}
}

func TestBulkLoadedTreeAcceptsMutations(t *testing.T) {
	pool := pager.NewPool(pager.NewStore(), 64)
	tr, err := BulkLoad(pool, sortedKeys(20000))
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	r := rand.New(rand.NewSource(5))
	// Insert keys in the gaps, delete some existing ones.
	for i := 0; i < 3000; i++ {
		v := uint64(r.Intn(20000)*3 + 1) // never collides with bulk keys
		if _, err := tr.Insert(intKey(v)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for i := 0; i < 2000; i++ {
		v := uint64(r.Intn(20000) * 3)
		if _, err := tr.Delete(intKey(v)); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after mutations: %v", err)
	}
	// Scan stays sorted.
	var prev Key
	first := true
	if err := tr.Scan(Key{}, func(k Key) bool {
		if !first && prev.Compare(k) >= 0 {
			t.Fatalf("scan out of order")
		}
		prev, first = k, false
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
}

func TestBulkLoadPacksBetterThanInserts(t *testing.T) {
	const n = 100000
	keys := sortedKeys(n)

	bulkPool := pager.NewPool(pager.NewStore(), 64)
	if _, err := BulkLoad(bulkPool, keys); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	insPool := pager.NewPool(pager.NewStore(), 64)
	tr, err := New(insPool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, k := range keys {
		if _, err := tr.Insert(k); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	bulkPages := bulkPool.Store().NumPages()
	insPages := insPool.Store().NumPages()
	if bulkPages >= insPages {
		t.Errorf("bulk load used %d pages, inserts %d; expected tighter packing", bulkPages, insPages)
	}
}

package btree

import (
	"encoding/binary"
	"testing"

	"ucat/internal/pager"
)

func TestCursorFullWalk(t *testing.T) {
	tr := newTestTree(t, 50)
	const n = 5000
	for v := 0; v < n; v++ {
		if _, err := tr.Insert(intKey(uint64(v))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	c := tr.NewCursor(Key{})
	for want := uint64(0); want < n; want++ {
		k, ok, err := c.Next()
		if err != nil || !ok {
			t.Fatalf("Next at %d = (ok=%v, err=%v)", want, ok, err)
		}
		if got := binary.BigEndian.Uint64(k[:8]); got != want {
			t.Fatalf("cursor key = %d, want %d", got, want)
		}
	}
	if _, ok, err := c.Next(); err != nil || ok {
		t.Errorf("cursor past end = (ok=%v, err=%v), want exhausted", ok, err)
	}
	// Next after exhaustion stays exhausted.
	if _, ok, _ := c.Next(); ok {
		t.Errorf("exhausted cursor produced a key")
	}
}

func TestCursorSeekMidway(t *testing.T) {
	tr := newTestTree(t, 50)
	for v := 0; v < 1000; v += 10 {
		if _, err := tr.Insert(intKey(uint64(v))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	c := tr.NewCursor(intKey(95)) // between 90 and 100
	k, ok, err := c.Next()
	if err != nil || !ok || binary.BigEndian.Uint64(k[:8]) != 100 {
		t.Errorf("Next = (%v, %v, %v), want key 100", k, ok, err)
	}
}

func TestCursorEmptyTree(t *testing.T) {
	tr := newTestTree(t, 10)
	c := tr.NewCursor(Key{})
	if _, ok, err := c.Next(); err != nil || ok {
		t.Errorf("cursor over empty tree = (ok=%v, err=%v)", ok, err)
	}
}

func TestInterleavedCursors(t *testing.T) {
	// Two trees scanned in lockstep, as the inverted index does per item.
	pool := pager.NewPool(pager.NewStore(), 20)
	t1, err := New(pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t2, err := New(pool)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for v := 0; v < 2000; v++ {
		if _, err := t1.Insert(intKey(uint64(2 * v))); err != nil {
			t.Fatalf("Insert t1: %v", err)
		}
		if _, err := t2.Insert(intKey(uint64(2*v + 1))); err != nil {
			t.Fatalf("Insert t2: %v", err)
		}
	}
	c1 := t1.NewCursor(Key{})
	c2 := t2.NewCursor(Key{})
	for want := uint64(0); want < 4000; want++ {
		var k Key
		var ok bool
		var err error
		if want%2 == 0 {
			k, ok, err = c1.Next()
		} else {
			k, ok, err = c2.Next()
		}
		if err != nil || !ok {
			t.Fatalf("Next at %d: ok=%v err=%v", want, ok, err)
		}
		if got := binary.BigEndian.Uint64(k[:8]); got != want {
			t.Fatalf("interleaved key = %d, want %d", got, want)
		}
	}
}

func TestCursorSurvivesEviction(t *testing.T) {
	// A tiny pool forces the cursor's current leaf to be evicted between
	// calls; Next must transparently re-read it.
	tr := newTestTree(t, 3)
	const n = 3000
	for v := 0; v < n; v++ {
		if _, err := tr.Insert(intKey(uint64(v))); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	c := tr.NewCursor(Key{})
	count := 0
	for {
		k, ok, err := c.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		if got := binary.BigEndian.Uint64(k[:8]); got != uint64(count) {
			t.Fatalf("key = %d, want %d", got, count)
		}
		count++
		if count%17 == 0 {
			// Churn the pool so the cursor's page is evicted.
			other := tr.NewCursor(intKey(uint64(n - 1)))
			if _, _, err := other.Next(); err != nil {
				t.Fatalf("churn cursor: %v", err)
			}
		}
	}
	if count != n {
		t.Errorf("cursor visited %d keys, want %d", count, n)
	}
}

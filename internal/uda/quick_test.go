package uda

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickCfg generates random valid UDAs for every argument of a property,
// regardless of declared parameter types (all properties here take UDAs).
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(Random(r, 50, 8))
			}
		},
	}
}

func TestQuickRandomIsValid(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		u := Random(r, 1+r.Intn(100), 1+r.Intn(10))
		if err := u.Validate(); err != nil {
			t.Fatalf("Random produced invalid UDA: %v", err)
		}
		if math.Abs(u.Mass()-1) > 1e-9 {
			t.Fatalf("Random mass = %g, want 1", u.Mass())
		}
	}
}

func TestQuickEqualitySymmetric(t *testing.T) {
	f := func(u, v UDA) bool {
		return math.Abs(EqualityProb(u, v)-EqualityProb(v, u)) < 1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualityBounds(t *testing.T) {
	f := func(u, v UDA) bool {
		p := EqualityProb(u, v)
		return p >= 0 && p <= MaxEqualityProb(u)+1e-12 && p <= MaxEqualityProb(v)+1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickDotUpperBoundsEquality(t *testing.T) {
	// Dot against any pointwise over-estimate of v must dominate Pr(u=v):
	// this is the soundness core of PDR-tree pruning (Lemma 2).
	f := func(u, v UDA) bool {
		boundary := v.Pairs()
		for i := range boundary {
			boundary[i].Prob = math.Min(1, boundary[i].Prob*1.25)
		}
		return Dot(u, boundary) >= EqualityProb(u, v)-1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickL1L2Metric(t *testing.T) {
	f := func(u, v, w UDA) bool {
		// Symmetry, identity, triangle inequality for both metrics.
		if math.Abs(L1Distance(u, v)-L1Distance(v, u)) > 1e-12 {
			return false
		}
		if math.Abs(L2Distance(u, v)-L2Distance(v, u)) > 1e-12 {
			return false
		}
		if L1Distance(u, u) != 0 || L2Distance(u, u) != 0 {
			return false
		}
		if L1Distance(u, w) > L1Distance(u, v)+L1Distance(v, w)+1e-12 {
			return false
		}
		return L2Distance(u, w) <= L2Distance(u, v)+L2Distance(v, w)+1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickKLNonNegative(t *testing.T) {
	// Gibbs' inequality: KL ≥ 0 for complete distributions (Random always
	// produces mass-1 distributions).
	f := func(u, v UDA) bool {
		kl := KLDivergence(u, v)
		return kl >= -1e-12 // may be +Inf, which passes
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickOrderPartition(t *testing.T) {
	f := func(u, v UDA) bool {
		sum := GreaterProb(u, v) + LessProb(u, v) + EqualityProb(u, v)
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickWithinProbMonotoneInWindow(t *testing.T) {
	f := func(u, v UDA) bool {
		prev := WithinProb(u, v, 0)
		for _, c := range []uint32{1, 2, 5, 10, 50} {
			cur := WithinProb(u, v, c)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickCodecRoundTripExact(t *testing.T) {
	f := func(u UDA) bool {
		buf, err := AppendEncode(nil, u)
		if err != nil {
			return false
		}
		got, n, err := Decode(buf)
		return err == nil && n == len(buf) && got.Equal(u)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickTopPreservesValidity(t *testing.T) {
	f := func(u UDA) bool {
		for n := 0; n <= u.Len(); n++ {
			if err := u.Top(n).Validate(); err != nil {
				return false
			}
		}
		norm, err := u.Normalize()
		return err == nil && math.Abs(norm.Mass()-1) < 1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

package uda

import "testing"

func TestDecodeIntoMatchesDecode(t *testing.T) {
	u := MustNew(Pair{1, 0.2}, Pair{5, 0.3}, Pair{9, 0.5})
	buf, err := AppendEncode(nil, u)
	if err != nil {
		t.Fatal(err)
	}
	var arena []Pair
	got, arena, n, err := DecodeInto(buf, arena)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	if !got.Equal(u) {
		t.Fatalf("DecodeInto = %v, want %v", got, u)
	}
	if len(arena) != u.Len() {
		t.Fatalf("arena holds %d pairs, want %d", len(arena), u.Len())
	}
}

// TestDecodeIntoBatch decodes several UDAs into one arena, the way a page
// decode does, and checks earlier results survive arena growth.
func TestDecodeIntoBatch(t *testing.T) {
	us := []UDA{
		MustNew(Pair{1, 0.5}, Pair{2, 0.5}),
		MustNew(Pair{3, 1}),
		MustNew(Pair{4, 0.25}, Pair{5, 0.25}, Pair{6, 0.5}),
	}
	var buf []byte
	var err error
	for _, u := range us {
		if buf, err = AppendEncode(buf, u); err != nil {
			t.Fatal(err)
		}
	}
	arena := make([]Pair, 0, 1) // deliberately tiny: force mid-batch growth
	var got []UDA
	off := 0
	for off < len(buf) {
		var u UDA
		var n int
		u, arena, n, err = DecodeInto(buf[off:], arena)
		if err != nil {
			t.Fatal(err)
		}
		off += n
		got = append(got, u)
	}
	if len(got) != len(us) {
		t.Fatalf("decoded %d UDAs, want %d", len(got), len(us))
	}
	for i := range us {
		if !got[i].Equal(us[i]) {
			t.Fatalf("UDA %d: got %v, want %v (stale alias after arena growth?)", i, got[i], us[i])
		}
	}
}

func TestDecodeIntoErrors(t *testing.T) {
	arena := make([]Pair, 0, 8)
	if _, _, _, err := DecodeInto(nil, arena); err == nil {
		t.Fatal("nil buffer decoded")
	}
	if _, _, _, err := DecodeInto([]byte{5, 0}, arena); err == nil {
		t.Fatal("truncated payload decoded")
	}
	// Corrupt payload (unsorted items) must fail validation AND roll the
	// arena back so the caller's batch is not polluted.
	u1 := MustNew(Pair{9, 0.5}, Pair{10, 0.5})
	buf, err := AppendEncode(nil, u1)
	if err != nil {
		t.Fatal(err)
	}
	buf[2], buf[2+12] = buf[2+12], buf[2] // swap low bytes of the two items
	_, arena2, _, err := DecodeInto(buf, arena[:0])
	if err == nil {
		t.Fatal("corrupt payload decoded")
	}
	if len(arena2) != 0 {
		t.Fatalf("arena not rolled back on error: %d pairs left", len(arena2))
	}
}

// TestDecodeIntoZeroAllocs is the fail-fast pin behind BenchmarkDecodeInto:
// decoding into a warm arena must not allocate at all. If this fails, the
// zero-alloc decode path has regressed and every per-tuple decode in the
// pdrtree leaf scan pays an allocation again — fix the regression, do not
// relax the pin.
func TestDecodeIntoZeroAllocs(t *testing.T) {
	u := MustNew(Pair{1, 0.25}, Pair{2, 0.25}, Pair{3, 0.5})
	buf, err := AppendEncode(nil, u)
	if err != nil {
		t.Fatal(err)
	}
	arena := make([]Pair, 0, 16)
	allocs := testing.AllocsPerRun(200, func() {
		_, _, _, err := DecodeInto(buf, arena[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto with warm arena: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkDecode vs BenchmarkDecodeInto make the satellite comparison
// visible in `make bench-smoke`: Decode allocates one []Pair per call;
// DecodeInto amortizes to zero with a reused arena. If DecodeInto's
// allocs/op climbs above 0 the TestDecodeIntoZeroAllocs pin above fails the
// build — these benchmarks are the numbers behind that pin.
func BenchmarkDecode(b *testing.B) {
	u := MustNew(Pair{1, 0.25}, Pair{2, 0.25}, Pair{3, 0.5})
	buf, err := AppendEncode(nil, u)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	u := MustNew(Pair{1, 0.25}, Pair{2, 0.25}, Pair{3, 0.5})
	buf, err := AppendEncode(nil, u)
	if err != nil {
		b.Fatal(err)
	}
	arena := make([]Pair, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodeInto(buf, arena[:0]); err != nil {
			b.Fatal(err)
		}
	}
}
